package pathslice

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/* binary once into a temp dir and
// returns their paths by name.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	tools := []string{"pathslice", "blastlite", "benchgen", "minirun", "cfadump"}
	out := make(map[string]string, len(tools))
	for _, tool := range tools {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, b)
		}
		out[tool] = bin
	}
	return out
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	return string(b), err
}

// runExit is run for the pipeline binaries, which encode their verdict
// in the exit code (docs/ROBUSTNESS.md): it asserts the expected code
// instead of treating every non-zero exit as a failure.
func runExit(t *testing.T, wantCode int, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v\n%s", err, b)
		}
		code = ee.ExitCode()
	}
	if code != wantCode {
		t.Fatalf("exit code %d, want %d\n%s", code, wantCode, b)
	}
	return string(b)
}

func TestCLIsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	tools := buildTools(t)

	t.Run("pathslice-ex2", func(t *testing.T) {
		// A feasible slice exits 3 under the shared exit-code scheme.
		out := runExit(t, 3, tools["pathslice"], "-long", "-unroll", "2", "testdata/ex2.mc")
		if !strings.Contains(out, "FEASIBLE") {
			t.Errorf("Ex2 slice must be feasible:\n%s", out)
		}
	})

	t.Run("pathslice-safe", func(t *testing.T) {
		out := runExit(t, 0, tools["pathslice"], "-long", "-unroll", "2", "-early", "testdata/safe.mc")
		if !strings.Contains(out, "INFEASIBLE") {
			t.Errorf("safe.mc candidate must be infeasible:\n%s", out)
		}
	})

	t.Run("pathslice-trace-annotations", func(t *testing.T) {
		out, err := run(t, tools["pathslice"], "-trace", "testdata/overdraft.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"==>", "live", "step"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -trace output:\n%s", want, out)
			}
		}
	})

	t.Run("blastlite-safe-program", func(t *testing.T) {
		out, err := run(t, tools["blastlite"], "testdata/safe.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "safe") {
			t.Errorf("verdict missing:\n%s", out)
		}
	})

	t.Run("blastlite-file-property", func(t *testing.T) {
		// The buggyuse cluster has a real bug, so the run exits 3.
		out := runExit(t, 3, tools["blastlite"], "-file-property", "testdata/fileprop.mc")
		if !strings.Contains(out, "cluster safeuse") || !strings.Contains(out, "cluster buggyuse") {
			t.Errorf("clusters missing:\n%s", out)
		}
		// buggyuse must be reported, safeuse must not.
		if !strings.Contains(out, "error") {
			t.Errorf("buggyuse not reported:\n%s", out)
		}
	})

	t.Run("benchgen-list-and-emit", func(t *testing.T) {
		out, err := run(t, tools["benchgen"], "-list")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, name := range []string{"fcron", "wuftpd", "gcc", "muh"} {
			if !strings.Contains(out, name) {
				t.Errorf("missing %s in -list:\n%s", name, out)
			}
		}
		out, err = run(t, tools["benchgen"], "-scale", "0.1", "fcron")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "void main()") {
			t.Errorf("no program emitted:\n%s", out)
		}
	})

	t.Run("minirun-witness-replay", func(t *testing.T) {
		// The overdraft bug: amount = 101 overdraws the balance.
		out, err := run(t, tools["minirun"], "-in", "101", "testdata/overdraft.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "REACHED ERROR") {
			t.Errorf("input 101 must reach the error:\n%s", out)
		}
		out, err = run(t, tools["minirun"], "-in", "5", "testdata/overdraft.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "exited normally") {
			t.Errorf("input 5 must be fine:\n%s", out)
		}
	})

	t.Run("cfadump-text-and-dot", func(t *testing.T) {
		out, err := run(t, tools["cfadump"], "testdata/ex2.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "cfa main") {
			t.Errorf("text dump missing:\n%s", out)
		}
		out, err = run(t, tools["cfadump"], "-dot", "-slice", "testdata/ex2.mc")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "digraph program") || !strings.Contains(out, "color=red, penwidth=2") {
			t.Errorf("dot output missing slice highlight:\n%s", out)
		}
	})
}
