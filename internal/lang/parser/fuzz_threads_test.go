package parser

import "testing"

// FuzzParseThreads is FuzzParse's concurrency sibling: arbitrary bytes
// biased toward spawn/join shapes. Same contract — the parser never
// panics, and never both succeeds and returns a nil program.
func FuzzParseThreads(f *testing.F) {
	seeds := []string{
		"void w() { } void main() { spawn w(); join; }",
		"int g; void w() { g = 1; } void main() { spawn w(); spawn w(); join; if (g > 0) { error; } }",
		"void w(int a) { } void main() { spawn w(nondet()); join; }",
		"void main() { spawn main(); join; }",
		"void main() { join; }",
		"void main() { spawn; }",
		"void main() { spawn w(; join }",
		"void main() { spawn w() }",
		"int main() { int spawn; spawn = 1; return spawn; }",
		"void w() { join; } void main() { spawn w(); }",
		"void main() { if (1) { spawn w(); } else { join; } }",
		"void main() { while (0) { spawn w(); join; } }",
		"spawn join",
		"\x00spawn\xffjoin",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program with nil error")
		}
	})
}
