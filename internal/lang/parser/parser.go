// Package parser implements a recursive-descent parser for MiniC.
//
// Grammar (EBNF; `[]` optional, `{}` repetition):
//
//	program   = { topdecl } .
//	topdecl   = globaldecl | funcdecl .
//	globaldecl= type ident [ "=" [ "-" ] INT ] ";" .
//	funcdecl  = ("void" | type) ident "(" [ params ] ")" block .
//	type      = "int" [ "*" ] .
//	params    = param { "," param } .
//	param     = type ident .
//	block     = "{" { stmt } "}" .
//	stmt      = type ident [ "=" expr ] ";"
//	          | [ "*" ] ident "=" ( expr | call ) ";"
//	          | call ";"
//	          | "if" "(" expr ")" blockish [ "else" blockish ]
//	          | "while" "(" expr ")" blockish
//	          | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" blockish
//	          | "return" [ expr ] ";"
//	          | "break" ";" | "continue" ";"
//	          | "assume" "(" expr ")" ";" | "assert" "(" expr ")" ";"
//	          | "error" ";" | "skip" ";"
//	          | block .
//	blockish  = block | stmt .        // non-block bodies are wrapped
//	call      = ident "(" [ expr { "," expr } ] ")" .
//	expr      = C expression over || && ! == != < <= > >= + - * / % unary- & *ident,
//	            plus "nondet()" .
//
// Calls may appear only as statements or as the entire right-hand side
// of an assignment (as in the paper's language, where a call is a CFA
// operation, not a subexpression).
package parser

import (
	"fmt"
	"strconv"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/lexer"
	"pathslice/internal/lang/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of syntax errors.
type ErrorList []*Error

// Error implements the error interface, reporting the first error and
// the total count.
func (el ErrorList) Error() string {
	if len(el) == 1 {
		return el[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", el[0].Error(), len(el)-1)
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

// Parse parses a MiniC compilation unit. On syntax errors it returns a
// partial program and an ErrorList.
func Parse(src []byte) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	p := &parser{toks: toks}
	for _, le := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for tests and
// embedded example programs.
func MustParse(src string) *ast.Program {
	prog, err := Parse([]byte(src))
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return prog
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Position, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: let the caller's recovery skip.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

// sync skips tokens until a likely statement boundary.
func (p *parser) sync() {
	for {
		switch p.cur().Kind {
		case token.SEMI:
			p.next()
			return
		case token.RBRACE, token.EOF:
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.cur().Kind != token.EOF {
		start := p.pos
		switch p.cur().Kind {
		case token.KWINT, token.KWVOID:
			typ, pos := p.parseType()
			name := p.expect(token.IDENT)
			if p.cur().Kind == token.LPAREN {
				prog.Funcs = append(prog.Funcs, p.parseFuncRest(typ, name.Lit, pos))
			} else {
				prog.Globals = append(prog.Globals, p.parseGlobalRest(typ, name.Lit, pos))
			}
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
			p.sync()
		}
		if p.pos == start { // no progress; avoid livelock
			p.next()
		}
	}
	return prog
}

// parseType parses "int", "int *", or "void".
func (p *parser) parseType() (ast.Type, token.Position) {
	t := p.next()
	pos := t.Pos
	switch t.Kind {
	case token.KWVOID:
		return ast.TypeVoid, pos
	case token.KWINT:
		if p.cur().Kind == token.STAR {
			p.next()
			return ast.TypeIntPtr, pos
		}
		return ast.TypeInt, pos
	}
	p.errorf(pos, "expected type, found %s", t)
	return ast.TypeInt, pos
}

func (p *parser) parseGlobalRest(typ ast.Type, name string, pos token.Position) *ast.GlobalDecl {
	g := &ast.GlobalDecl{Name: name, Type: typ, PosInfo: pos}
	if typ == ast.TypeVoid {
		p.errorf(pos, "global %s cannot have type void", name)
	}
	if p.cur().Kind == token.ASSIGN {
		p.next()
		neg := false
		if p.cur().Kind == token.MINUS {
			neg = true
			p.next()
		}
		lit := p.expect(token.INT)
		v, _ := strconv.ParseInt(lit.Lit, 10, 64)
		if neg {
			v = -v
		}
		g.Init = &ast.IntLit{Value: v, PosInfo: lit.Pos}
	}
	p.expect(token.SEMI)
	return g
}

func (p *parser) parseFuncRest(result ast.Type, name string, pos token.Position) *ast.FuncDecl {
	f := &ast.FuncDecl{Name: name, Result: result, PosInfo: pos}
	p.expect(token.LPAREN)
	if p.cur().Kind != token.RPAREN {
		for {
			typ, tpos := p.parseType()
			if typ == ast.TypeVoid {
				p.errorf(tpos, "parameter cannot have type void")
			}
			id := p.expect(token.IDENT)
			f.Params = append(f.Params, ast.Param{Name: id.Lit, Type: typ})
			if p.cur().Kind != token.COMMA {
				break
			}
			p.next()
		}
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	blk := &ast.BlockStmt{PosInfo: lb.Pos}
	for p.cur().Kind != token.RBRACE && p.cur().Kind != token.EOF {
		start := p.pos
		blk.Stmts = append(blk.Stmts, p.parseStmt())
		if p.pos == start {
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return blk
}

// parseBlockish parses a block, or wraps a single statement in one.
func (p *parser) parseBlockish() *ast.BlockStmt {
	if p.cur().Kind == token.LBRACE {
		return p.parseBlock()
	}
	s := p.parseStmt()
	return &ast.BlockStmt{Stmts: []ast.Stmt{s}, PosInfo: s.Pos()}
}

func (p *parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.KWINT:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	case token.IDENT, token.STAR:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	case token.KWIF:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		then := p.parseBlockish()
		var els *ast.BlockStmt
		if p.cur().Kind == token.KWELSE {
			p.next()
			els = p.parseBlockish()
		}
		return &ast.IfStmt{Cond: cond, Then: then, Else: els, PosInfo: t.Pos}
	case token.KWWHILE:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlockish()
		return &ast.WhileStmt{Cond: cond, Body: body, PosInfo: t.Pos}
	case token.KWFOR:
		p.next()
		p.expect(token.LPAREN)
		var init, post ast.Stmt
		var cond ast.Expr
		if p.cur().Kind != token.SEMI {
			init = p.parseSimpleStmt()
		}
		p.expect(token.SEMI)
		if p.cur().Kind != token.SEMI {
			cond = p.parseExpr()
		}
		p.expect(token.SEMI)
		if p.cur().Kind != token.RPAREN {
			post = p.parseSimpleStmt()
		}
		p.expect(token.RPAREN)
		body := p.parseBlockish()
		return &ast.ForStmt{Init: init, Cond: cond, Post: post, Body: body, PosInfo: t.Pos}
	case token.KWRETURN:
		p.next()
		var v ast.Expr
		if p.cur().Kind != token.SEMI {
			v = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{Value: v, PosInfo: t.Pos}
	case token.KWBREAK:
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{PosInfo: t.Pos}
	case token.KWCONTINUE:
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{PosInfo: t.Pos}
	case token.KWASSUME:
		p.next()
		p.expect(token.LPAREN)
		pred := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.AssumeStmt{Pred: pred, PosInfo: t.Pos}
	case token.KWASSERT:
		p.next()
		p.expect(token.LPAREN)
		pred := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.AssertStmt{Pred: pred, PosInfo: t.Pos}
	case token.KWSPAWN:
		p.next()
		if p.cur().Kind != token.IDENT || p.peek().Kind != token.LPAREN {
			p.errorf(p.cur().Pos, "expected call after spawn, found %s", p.cur())
			p.sync()
			return &ast.SkipStmt{PosInfo: t.Pos}
		}
		call := p.parseCall()
		p.expect(token.SEMI)
		return &ast.SpawnStmt{Call: call, PosInfo: t.Pos}
	case token.KWJOIN:
		p.next()
		p.expect(token.SEMI)
		return &ast.JoinStmt{PosInfo: t.Pos}
	case token.KWERROR:
		p.next()
		p.expect(token.SEMI)
		return &ast.ErrorStmt{PosInfo: t.Pos}
	case token.KWSKIP:
		p.next()
		p.expect(token.SEMI)
		return &ast.SkipStmt{PosInfo: t.Pos}
	case token.LBRACE:
		return p.parseBlock()
	case token.KWGOTO:
		p.errorf(t.Pos, "goto is reserved and not supported")
		p.sync()
		return &ast.SkipStmt{PosInfo: t.Pos}
	}
	p.errorf(t.Pos, "expected statement, found %s", t)
	p.sync()
	return &ast.SkipStmt{PosInfo: t.Pos}
}

// parseSimpleStmt parses a declaration, assignment, or call without the
// trailing semicolon (shared by statement and for-clause positions).
func (p *parser) parseSimpleStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.KWINT:
		typ, pos := p.parseType()
		id := p.expect(token.IDENT)
		d := &ast.DeclStmt{Name: id.Lit, Type: typ, PosInfo: pos}
		if p.cur().Kind == token.ASSIGN {
			p.next()
			d.Init = p.parseExprOrCall()
		}
		return d
	case token.STAR:
		p.next()
		id := p.expect(token.IDENT)
		p.expect(token.ASSIGN)
		rhs := p.parseExprOrCall()
		return &ast.AssignStmt{Deref: true, LHS: id.Lit, RHS: rhs, PosInfo: t.Pos}
	case token.IDENT:
		if p.peek().Kind == token.LPAREN {
			call := p.parseCall()
			return &ast.ExprStmt{Call: call, PosInfo: t.Pos}
		}
		id := p.next()
		p.expect(token.ASSIGN)
		rhs := p.parseExprOrCall()
		return &ast.AssignStmt{LHS: id.Lit, RHS: rhs, PosInfo: t.Pos}
	}
	p.errorf(t.Pos, "expected simple statement, found %s", t)
	p.sync()
	return &ast.SkipStmt{PosInfo: t.Pos}
}

// parseExprOrCall parses the right-hand side of an assignment: a call
// to a procedure, or an ordinary expression.
func (p *parser) parseExprOrCall() ast.Expr {
	if p.cur().Kind == token.IDENT && p.peek().Kind == token.LPAREN {
		call := p.parseCall()
		if binPower(p.cur().Kind) > 0 {
			p.errorf(p.cur().Pos, "call %s(...) cannot appear inside an expression; assign its result first", call.Callee)
			p.sync()
		}
		return call
	}
	return p.parseExpr()
}

func (p *parser) parseCall() *ast.CallExpr {
	id := p.expect(token.IDENT)
	p.expect(token.LPAREN)
	call := &ast.CallExpr{Callee: id.Lit, PosInfo: id.Pos}
	if p.cur().Kind != token.RPAREN {
		for {
			call.Args = append(call.Args, p.parseExpr())
			if p.cur().Kind != token.COMMA {
				break
			}
			p.next()
		}
	}
	p.expect(token.RPAREN)
	return call
}

// ---------------------------------------------------------------------------
// Expressions: precedence climbing.

// binding powers, lowest first: || < && < comparisons < + - < * / %.
func binPower(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.PERCENT:
		return 5
	}
	return 0
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPower int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		pw := binPower(op)
		if pw == 0 || pw < minPower {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinary(pw + 1)
		lhs = &ast.Binary{Op: op, X: lhs, Y: rhs, PosInfo: opTok.Pos}
	}
}

func (p *parser) parseUnary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.MINUS, token.NOT, token.STAR, token.AMP:
		p.next()
		x := p.parseUnary()
		return &ast.Unary{Op: t.Kind, X: x, PosInfo: t.Pos}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "integer literal out of range: %s", t.Lit)
		}
		return &ast.IntLit{Value: v, PosInfo: t.Pos}
	case token.IDENT:
		if p.peek().Kind == token.LPAREN {
			p.errorf(t.Pos, "call %s(...) cannot appear inside an expression; assign its result first", t.Lit)
			return p.parseCall()
		}
		p.next()
		return &ast.Ident{Name: t.Lit, PosInfo: t.Pos}
	case token.KWNONDET:
		p.next()
		p.expect(token.LPAREN)
		p.expect(token.RPAREN)
		return &ast.Nondet{PosInfo: t.Pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{Value: 0, PosInfo: t.Pos}
}
