package parser

import "testing"

// FuzzParse feeds arbitrary bytes to the MiniC parser. The contract
// under fuzzing (docs/ROBUSTNESS.md): the parser never panics and
// never both succeeds and returns a nil program — malformed input must
// surface as an error, not a crash.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int main() { int x; x = 1; if (x > 0) { error; } return x; }",
		"int f(int a, int b) { while (a < b) { a = a + 1; } return a; }",
		"int main() { int x; x = nondet(); assert(x == x); return 0; }",
		"int main() { lock(); unlock(); return 0; }",
		"int main() { int *p; *p = 3; return *p; }",
		"int main() { /* comment */ int x; x = 1 + 2 * 3 % 4 / 5; return -x; }",
		"int main() { if (1) error; else { } return 0; }",
		"int g() { return g(); } int main() { return g(); }",
		"int main() { int x; x = ((((1)))); return x; }",
		"int main( { return 0; }",
		"int main() { int x x = 1; }",
		"\x00\xff int",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program with nil error")
		}
	})
}
