package parser

import (
	"strings"
	"testing"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
)

const ex2Source = `
int x = 0;
int a;

void f() {
  skip;
}

void main() {
  a = nondet();
  if (a >= 0) {
    x = 1;
  }
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func TestParseEx2(t *testing.T) {
	prog, err := Parse([]byte(ex2Source))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Errorf("globals: got %d, want 2", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs: got %d, want 2", len(prog.Funcs))
	}
	main := prog.Func("main")
	if main == nil {
		t.Fatal("no main")
	}
	if len(main.Body.Stmts) != 4 {
		t.Errorf("main body stmts: got %d, want 4", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[2].(*ast.ForStmt); !ok {
		t.Errorf("stmt 2: got %T, want *ast.ForStmt", main.Body.Stmts[2])
	}
}

func TestParseRoundtrip(t *testing.T) {
	sources := []string{
		ex2Source,
		`int g = -5;
		 int h;
		 int *p;
		 int getval(int k) { return k + 1; }
		 void main() {
		   int v = getval(3);
		   p = &h;
		   *p = v * 2;
		   h = *p - 1;
		   while (h > 0) { h = h - 1; if (h == 2) { break; } else { continue; } }
		   assume(h <= 0);
		   assert(h == 0 || g < 0);
		 }`,
		`void main() { if (nondet()) error; else skip; }`,
	}
	for i, src := range sources {
		prog, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("source %d: parse: %v", i, err)
		}
		printed := ast.Print(prog)
		prog2, err := Parse([]byte(printed))
		if err != nil {
			t.Fatalf("source %d: reparse of printed form: %v\n%s", i, err, printed)
		}
		printed2 := ast.Print(prog2)
		if printed != printed2 {
			t.Errorf("source %d: print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", i, printed, printed2)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`void main() { int x = 1 + 2 * 3 - 4 / 2; assume(x > 0 && x < 10 || x == 0); }`)
	decl := prog.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	// 1 + 2*3 - 4/2 parses as ((1 + (2*3)) - (4/2)).
	want := "((1 + (2 * 3)) - (4 / 2))"
	if got := ast.ExprString(decl.Init); got != want {
		t.Errorf("arithmetic: got %s, want %s", got, want)
	}
	assume := prog.Funcs[0].Body.Stmts[1].(*ast.AssumeStmt)
	want = "(((x > 0) && (x < 10)) || (x == 0))"
	if got := ast.ExprString(assume.Pred); got != want {
		t.Errorf("logic: got %s, want %s", got, want)
	}
}

func TestParseUnary(t *testing.T) {
	prog := MustParse(`int *p; int y; void main() { int x = -1; x = !x; x = *p; p = &y; }`)
	body := prog.Funcs[0].Body.Stmts
	if d := body[0].(*ast.DeclStmt); ast.ExprString(d.Init) != "(-1)" {
		t.Errorf("neg: %s", ast.ExprString(d.Init))
	}
	if a := body[1].(*ast.AssignStmt); ast.ExprString(a.RHS) != "(!x)" {
		t.Errorf("not: %s", ast.ExprString(a.RHS))
	}
	if a := body[2].(*ast.AssignStmt); ast.ExprString(a.RHS) != "(*p)" {
		t.Errorf("deref: %s", ast.ExprString(a.RHS))
	}
	if a := body[3].(*ast.AssignStmt); ast.ExprString(a.RHS) != "(&y)" {
		t.Errorf("addr: %s", ast.ExprString(a.RHS))
	}
}

func TestParseCallForms(t *testing.T) {
	prog := MustParse(`
		int f(int a, int b) { return a; }
		void g() { skip; }
		void main() {
			g();
			int x = f(1, 2);
			x = f(x, x + 1);
		}`)
	body := prog.Func("main").Body.Stmts
	if _, ok := body[0].(*ast.ExprStmt); !ok {
		t.Errorf("stmt 0: %T", body[0])
	}
	d := body[1].(*ast.DeclStmt)
	if call, ok := d.Init.(*ast.CallExpr); !ok || call.Callee != "f" || len(call.Args) != 2 {
		t.Errorf("decl init call: %v", d.Init)
	}
	a := body[2].(*ast.AssignStmt)
	if call, ok := a.RHS.(*ast.CallExpr); !ok || len(call.Args) != 2 {
		t.Errorf("assign rhs call: %v", a.RHS)
	}
}

func TestParseCallInsideExprRejected(t *testing.T) {
	_, err := Parse([]byte(`int f() { return 1; } void main() { int x = f() + 1; }`))
	if err == nil {
		t.Fatal("call inside expression should be a syntax error")
	}
	if !strings.Contains(err.Error(), "cannot appear inside an expression") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`void main() { x = ; }`,
		`void main() { if x { skip; } }`,
		`void main( { skip; }`,
		`int 3x;`,
		`void main() { goto l; }`,
	}
	for i, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("case %d: expected syntax error for %q", i, src)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	prog := MustParse(`void main() { if (1) if (2) skip; else error; }`)
	outer := prog.Funcs[0].Body.Stmts[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if; must bind to inner")
	}
	inner := outer.Then.Stmts[0].(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseForVariants(t *testing.T) {
	prog := MustParse(`void main() {
		for (;;) { break; }
		for (int i = 0; i < 3; i = i + 1) skip;
		int j;
		for (j = 0; j < 2;) { j = j + 1; }
	}`)
	body := prog.Funcs[0].Body.Stmts
	f0 := body[0].(*ast.ForStmt)
	if f0.Init != nil || f0.Cond != nil || f0.Post != nil {
		t.Error("empty for clauses should all be nil")
	}
	f2 := body[3].(*ast.ForStmt)
	if f2.Post != nil {
		t.Error("missing post should be nil")
	}
	if _, ok := f2.Init.(*ast.AssignStmt); !ok {
		t.Errorf("for init: %T", f2.Init)
	}
}

func TestParseGlobalInitializers(t *testing.T) {
	prog := MustParse("int a = 3;\nint b = -7;\nint c;\nvoid main() { skip; }")
	if prog.Globals[0].Init.Value != 3 {
		t.Errorf("a init: %d", prog.Globals[0].Init.Value)
	}
	if prog.Globals[1].Init.Value != -7 {
		t.Errorf("b init: %d", prog.Globals[1].Init.Value)
	}
	if prog.Globals[2].Init != nil {
		t.Errorf("c should have nil init")
	}
}

func TestParsePointerDecls(t *testing.T) {
	prog := MustParse(`int *p; int x; void take(int *q) { *q = 1; } void main() { take(p); *p = x; }`)
	if prog.Globals[0].Type != ast.TypeIntPtr {
		t.Errorf("p type: %v", prog.Globals[0].Type)
	}
	f := prog.Func("take")
	if f.Params[0].Type != ast.TypeIntPtr {
		t.Errorf("param type: %v", f.Params[0].Type)
	}
	as := f.Body.Stmts[0].(*ast.AssignStmt)
	if !as.Deref || as.LHS != "q" {
		t.Errorf("deref assign: %+v", as)
	}
}

func TestTokenKindComparisonHelper(t *testing.T) {
	for _, k := range []token.Kind{token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ} {
		if !k.IsComparison() {
			t.Errorf("%s should be comparison", k)
		}
	}
	if token.PLUS.IsComparison() {
		t.Error("+ is not a comparison")
	}
}
