// Package ast declares the abstract syntax tree of MiniC, the small
// imperative language (integer variables, pointers to integers,
// non-recursive procedures) over which path slicing is formalized in
// the paper.
package ast

import (
	"pathslice/internal/lang/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Position
}

// Type is a MiniC type: int or *int (or void for procedure results).
type Type int

// The MiniC types.
const (
	TypeVoid Type = iota
	TypeInt
	TypeIntPtr
)

// String renders the type in source syntax.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeIntPtr:
		return "int *"
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is a decimal integer literal.
type IntLit struct {
	Value   int64
	PosInfo token.Position
}

// Ident is a reference to a variable.
type Ident struct {
	Name    string
	PosInfo token.Position
}

// Unary is a unary operation: -e, !e, *e (deref), &e (address-of).
type Unary struct {
	Op      token.Kind // MINUS, NOT, STAR, AMP
	X       Expr
	PosInfo token.Position
}

// Binary is a binary operation over the arithmetic, comparison and
// logical operators.
type Binary struct {
	Op      token.Kind
	X, Y    Expr
	PosInfo token.Position
}

// Nondet is the expression `nondet()`: an unconstrained integer input.
type Nondet struct {
	PosInfo token.Position
}

// CallExpr is a procedure call appearing in expression position; the
// parser only accepts it as the sole right-hand side of an assignment
// or as an expression statement.
type CallExpr struct {
	Callee  string
	Args    []Expr
	PosInfo token.Position
}

func (e *IntLit) Pos() token.Position   { return e.PosInfo }
func (e *Ident) Pos() token.Position    { return e.PosInfo }
func (e *Unary) Pos() token.Position    { return e.PosInfo }
func (e *Binary) Pos() token.Position   { return e.PosInfo }
func (e *Nondet) Pos() token.Position   { return e.PosInfo }
func (e *CallExpr) Pos() token.Position { return e.PosInfo }

func (*IntLit) exprNode()   {}
func (*Ident) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Nondet) exprNode()   {}
func (*CallExpr) exprNode() {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	Name    string
	Type    Type
	Init    Expr // may be nil
	PosInfo token.Position
}

// AssignStmt assigns to an lvalue: `x = e;` or `*p = e;`.
// RHS may be a CallExpr, in which case the statement is a call with a
// result: `x = f(args);`.
type AssignStmt struct {
	Deref   bool // assignment through *LHS
	LHS     string
	RHS     Expr
	PosInfo token.Position
}

// ExprStmt is a call used as a statement: `f(args);`.
type ExprStmt struct {
	Call    *CallExpr
	PosInfo token.Position
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond    Expr
	Then    *BlockStmt
	Else    *BlockStmt // may be nil
	PosInfo token.Position
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond    Expr
	Body    *BlockStmt
	PosInfo token.Position
}

// ForStmt is a C-style for loop. Init and Post are simple statements
// (declarations or assignments) and may be nil; Cond may be nil (true).
type ForStmt struct {
	Init    Stmt
	Cond    Expr
	Post    Stmt
	Body    *BlockStmt
	PosInfo token.Position
}

// ReturnStmt returns from the enclosing procedure, optionally with a value.
type ReturnStmt struct {
	Value   Expr // may be nil
	PosInfo token.Position
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	PosInfo token.Position
}

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct {
	PosInfo token.Position
}

// AssumeStmt blocks execution unless the predicate holds: `assume(p);`.
type AssumeStmt struct {
	Pred    Expr
	PosInfo token.Position
}

// AssertStmt checks the predicate and jumps to the error location if it
// fails: `assert(p);` is sugar for `if (!p) error;`.
type AssertStmt struct {
	Pred    Expr
	PosInfo token.Position
}

// SpawnStmt starts the call running on a fresh thread: `spawn f(args);`.
// The callee must be a void procedure; the spawned thread runs
// concurrently with the spawner until the spawner executes `join;`.
type SpawnStmt struct {
	Call    *CallExpr
	PosInfo token.Position
}

// JoinStmt blocks the current thread until every thread it has spawned
// so far has terminated: `join;`.
type JoinStmt struct {
	PosInfo token.Position
}

// ErrorStmt marks the target (error) location: `error;`.
type ErrorStmt struct {
	PosInfo token.Position
}

// SkipStmt is a no-op: `skip;`.
type SkipStmt struct {
	PosInfo token.Position
}

// BlockStmt is a brace-delimited statement sequence.
type BlockStmt struct {
	Stmts   []Stmt
	PosInfo token.Position
}

func (s *DeclStmt) Pos() token.Position     { return s.PosInfo }
func (s *AssignStmt) Pos() token.Position   { return s.PosInfo }
func (s *ExprStmt) Pos() token.Position     { return s.PosInfo }
func (s *IfStmt) Pos() token.Position       { return s.PosInfo }
func (s *WhileStmt) Pos() token.Position    { return s.PosInfo }
func (s *ForStmt) Pos() token.Position      { return s.PosInfo }
func (s *ReturnStmt) Pos() token.Position   { return s.PosInfo }
func (s *BreakStmt) Pos() token.Position    { return s.PosInfo }
func (s *ContinueStmt) Pos() token.Position { return s.PosInfo }
func (s *AssumeStmt) Pos() token.Position   { return s.PosInfo }
func (s *AssertStmt) Pos() token.Position   { return s.PosInfo }
func (s *SpawnStmt) Pos() token.Position    { return s.PosInfo }
func (s *JoinStmt) Pos() token.Position     { return s.PosInfo }
func (s *ErrorStmt) Pos() token.Position    { return s.PosInfo }
func (s *SkipStmt) Pos() token.Position     { return s.PosInfo }
func (s *BlockStmt) Pos() token.Position    { return s.PosInfo }

func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*AssumeStmt) stmtNode()   {}
func (*AssertStmt) stmtNode()   {}
func (*SpawnStmt) stmtNode()    {}
func (*JoinStmt) stmtNode()     {}
func (*ErrorStmt) stmtNode()    {}
func (*SkipStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a procedure parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a procedure definition.
type FuncDecl struct {
	Name    string
	Params  []Param
	Result  Type // TypeVoid if none
	Body    *BlockStmt
	PosInfo token.Position
}

// GlobalDecl is a global variable declaration with an optional constant
// initializer.
type GlobalDecl struct {
	Name    string
	Type    Type
	Init    *IntLit // may be nil (zero-initialized)
	PosInfo token.Position
}

func (d *FuncDecl) Pos() token.Position   { return d.PosInfo }
func (d *GlobalDecl) Pos() token.Position { return d.PosInfo }

// Program is a parsed MiniC compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
