package ast_test

import (
	"strings"
	"testing"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
)

// TestPrintAllStatementForms pins the printer output for every
// statement form in one program.
func TestPrintAllStatementForms(t *testing.T) {
	src := `
int g = 7;
int h;
int *p;

int getv(int k) {
  return k + 1;
}

void main() {
  int a = 1;
  int b;
  a = getv(a);
  *p = a;
  b = *p;
  if (a > 0) {
    skip;
  } else {
    error;
  }
  while (b < 10) {
    b = b + 1;
    if (b == 5) {
      break;
    }
    continue;
  }
  for (int i = 0; i < 3; i = i + 1) {
    h = h + i;
  }
  for (;;) {
    break;
  }
  assume(a != b);
  assert(a >= 0 || b >= 0);
  getv(2);
  return;
}
`
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	out := ast.Print(prog)
	for _, want := range []string{
		"int g = 7;",
		"int *p;",
		"int getv(int k) {",
		"return (k + 1);",
		"a = getv(a);",
		"*p = a;",
		"b = (*p);",
		"if ((a > 0)) {",
		"} else {",
		"error;",
		"while ((b < 10)) {",
		"break;",
		"continue;",
		"for (int i = 0; (i < 3); i = (i + 1)) {",
		"for (; ; ) {",
		"assume((a != b));",
		"assert(((a >= 0) || (b >= 0)));",
		"getv(2);",
		"return;",
		"skip;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed program missing %q:\n%s", want, out)
		}
	}
	// And the printed form reparses.
	if _, err := parser.Parse([]byte(out)); err != nil {
		t.Fatalf("printed program does not reparse: %v\n%s", err, out)
	}
}

func TestProgramFuncLookup(t *testing.T) {
	prog, err := parser.Parse([]byte(`void a() { skip; } void main() { a(); }`))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("a") == nil || prog.Func("main") == nil {
		t.Error("declared functions not found")
	}
	if prog.Func("nosuch") != nil {
		t.Error("phantom function")
	}
}

func TestTypeStrings(t *testing.T) {
	if ast.TypeInt.String() != "int" || ast.TypeIntPtr.String() != "int *" || ast.TypeVoid.String() != "void" {
		t.Errorf("type strings: %s %s %s", ast.TypeInt, ast.TypeIntPtr, ast.TypeVoid)
	}
}

func TestPositions(t *testing.T) {
	prog, err := parser.Parse([]byte("int g;\nvoid main() {\n  g = 1;\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Globals[0].Pos().Line != 1 {
		t.Errorf("global line: %d", prog.Globals[0].Pos().Line)
	}
	if prog.Funcs[0].Pos().Line != 2 {
		t.Errorf("func line: %d", prog.Funcs[0].Pos().Line)
	}
	assign := prog.Funcs[0].Body.Stmts[0]
	if assign.Pos().Line != 3 {
		t.Errorf("stmt line: %d", assign.Pos().Line)
	}
}

func TestExprStringForms(t *testing.T) {
	prog, err := parser.Parse([]byte(
		`int a; int *p; void main() { a = -a + !a * (*p) - (&a == p); }`))
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Funcs[0].Body.Stmts[0].(*ast.AssignStmt)
	got := ast.ExprString(as.RHS)
	if !strings.Contains(got, "(-a)") || !strings.Contains(got, "(!a)") ||
		!strings.Contains(got, "(*p)") || !strings.Contains(got, "(&a)") {
		t.Errorf("unary forms: %s", got)
	}
}
