package ast

import (
	"fmt"
	"strings"

	"pathslice/internal/lang/token"
)

// Print renders the program as MiniC source text. The output reparses
// to a structurally identical program (see the parser's roundtrip
// tests).
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		b.WriteString(printType(g.Type))
		b.WriteString(g.Name)
		if g.Init != nil {
			fmt.Fprintf(&b, " = %d", g.Init.Value)
		}
		b.WriteString(";\n")
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, f)
	}
	return b.String()
}

func printType(t Type) string {
	switch t {
	case TypeInt:
		return "int "
	case TypeIntPtr:
		return "int *"
	default:
		return "void "
	}
}

func printFunc(b *strings.Builder, f *FuncDecl) {
	b.WriteString(printType(f.Result))
	b.WriteString(f.Name)
	b.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(printType(p.Type))
		b.WriteString(p.Name)
	}
	b.WriteString(") ")
	printBlock(b, f.Body, 0)
	b.WriteString("\n")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *DeclStmt:
		b.WriteString(printType(s.Type))
		b.WriteString(s.Name)
		if s.Init != nil {
			b.WriteString(" = ")
			b.WriteString(ExprString(s.Init))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		if s.Deref {
			b.WriteString("*")
		}
		b.WriteString(s.LHS)
		b.WriteString(" = ")
		b.WriteString(ExprString(s.RHS))
		b.WriteString(";\n")
	case *ExprStmt:
		b.WriteString(ExprString(s.Call))
		b.WriteString(";\n")
	case *IfStmt:
		b.WriteString("if (")
		b.WriteString(ExprString(s.Cond))
		b.WriteString(") ")
		printBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			printBlock(b, s.Else, depth)
		}
		b.WriteString("\n")
	case *WhileStmt:
		b.WriteString("while (")
		b.WriteString(ExprString(s.Cond))
		b.WriteString(") ")
		printBlock(b, s.Body, depth)
		b.WriteString("\n")
	case *ForStmt:
		b.WriteString("for (")
		if s.Init != nil {
			b.WriteString(simpleStmtString(s.Init))
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(ExprString(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			b.WriteString(simpleStmtString(s.Post))
		}
		b.WriteString(") ")
		printBlock(b, s.Body, depth)
		b.WriteString("\n")
	case *ReturnStmt:
		b.WriteString("return")
		if s.Value != nil {
			b.WriteString(" ")
			b.WriteString(ExprString(s.Value))
		}
		b.WriteString(";\n")
	case *BreakStmt:
		b.WriteString("break;\n")
	case *ContinueStmt:
		b.WriteString("continue;\n")
	case *AssumeStmt:
		b.WriteString("assume(")
		b.WriteString(ExprString(s.Pred))
		b.WriteString(");\n")
	case *AssertStmt:
		b.WriteString("assert(")
		b.WriteString(ExprString(s.Pred))
		b.WriteString(");\n")
	case *SpawnStmt:
		b.WriteString("spawn ")
		b.WriteString(ExprString(s.Call))
		b.WriteString(";\n")
	case *JoinStmt:
		b.WriteString("join;\n")
	case *ErrorStmt:
		b.WriteString("error;\n")
	case *SkipStmt:
		b.WriteString("skip;\n")
	case *BlockStmt:
		printBlock(b, s, depth)
		b.WriteString("\n")
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */;\n", s)
	}
}

// simpleStmtString renders a for-clause statement without trailing ";\n".
func simpleStmtString(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s, 0)
	out := strings.TrimSuffix(strings.TrimSpace(b.String()), ";")
	return out
}

// ExprString renders an expression in source syntax with explicit
// parentheses around every binary operation, so precedence never needs
// to be reconstructed.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *Ident:
		return e.Name
	case *Nondet:
		return "nondet()"
	case *Unary:
		switch e.Op {
		case token.MINUS:
			return "(-" + ExprString(e.X) + ")"
		case token.NOT:
			return "(!" + ExprString(e.X) + ")"
		case token.STAR:
			return "(*" + ExprString(e.X) + ")"
		case token.AMP:
			return "(&" + ExprString(e.X) + ")"
		}
		return "?"
	case *Binary:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *CallExpr:
		var b strings.Builder
		b.WriteString(e.Callee)
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprString(a))
		}
		b.WriteString(")")
		return b.String()
	}
	return "?"
}

// EqualExpr reports structural equality of two expressions, ignoring
// positions.
func EqualExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *IntLit:
		b, ok := b.(*IntLit)
		return ok && a.Value == b.Value
	case *Ident:
		b, ok := b.(*Ident)
		return ok && a.Name == b.Name
	case *Nondet:
		_, ok := b.(*Nondet)
		return ok
	case *Unary:
		b, ok := b.(*Unary)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X)
	case *Binary:
		b, ok := b.(*Binary)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X) && EqualExpr(a.Y, b.Y)
	case *CallExpr:
		b, ok := b.(*CallExpr)
		if !ok || a.Callee != b.Callee || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !EqualExpr(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
