package ast_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/token"
)

// randExpr builds a random well-formed expression over the variables
// a, b and pointer p.
func randExpr(r *rand.Rand, depth int, wantPtr bool) ast.Expr {
	if wantPtr {
		switch r.Intn(3) {
		case 0:
			return &ast.Ident{Name: "p"}
		case 1:
			return &ast.Unary{Op: token.AMP, X: &ast.Ident{Name: "a"}}
		default:
			return &ast.IntLit{Value: 0}
		}
	}
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			// Non-negative: the parser produces negative values only as
			// unary minus, so negative literals are not parser-producible.
			return &ast.IntLit{Value: int64(r.Intn(10))}
		case 1:
			return &ast.Ident{Name: "a"}
		case 2:
			return &ast.Ident{Name: "b"}
		default:
			return &ast.Nondet{}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &ast.Unary{Op: token.MINUS, X: randExpr(r, depth-1, false)}
	case 1:
		return &ast.Unary{Op: token.NOT, X: randExpr(r, depth-1, false)}
	case 2:
		return &ast.Unary{Op: token.STAR, X: &ast.Ident{Name: "p"}}
	default:
		ops := []token.Kind{
			token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
			token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ,
			token.LAND, token.LOR,
		}
		return &ast.Binary{
			Op: ops[r.Intn(len(ops))],
			X:  randExpr(r, depth-1, false),
			Y:  randExpr(r, depth-1, false),
		}
	}
}

// TestQuickExprPrintParseRoundtrip: printing an expression and parsing
// it back yields a structurally equal expression.
func TestQuickExprPrintParseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		e := randExpr(r, 4, false)
		src := fmt.Sprintf("int a; int b; int *p; void main() { int z = %s; }", ast.ExprString(e))
		prog, err := parser.Parse([]byte(src))
		if err != nil {
			t.Fatalf("reparse failed for %s: %v", ast.ExprString(e), err)
		}
		decl := prog.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
		if !ast.EqualExpr(e, decl.Init) {
			t.Fatalf("roundtrip mismatch:\n  in:  %s\n  out: %s",
				ast.ExprString(e), ast.ExprString(decl.Init))
		}
	}
}

// TestQuickProgramPrintFixpoint: Print(Parse(Print(p))) == Print(p) for
// randomly assembled programs.
func TestQuickProgramPrintFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "int a; int b; int *p;\n")
		fmt.Fprintf(&b, "void main() {\n")
		n := 1 + r.Intn(5)
		for j := 0; j < n; j++ {
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "a = %s;\n", ast.ExprString(randExpr(r, 2, false)))
			case 1:
				fmt.Fprintf(&b, "if (%s) { b = 1; } else { b = 2; }\n",
					ast.ExprString(randExpr(r, 2, false)))
			case 2:
				fmt.Fprintf(&b, "while (a > 0) { a = a - 1; }\n")
			case 3:
				fmt.Fprintf(&b, "*p = %s;\n", ast.ExprString(randExpr(r, 2, false)))
			default:
				fmt.Fprintf(&b, "assume(%s);\n", ast.ExprString(randExpr(r, 2, false)))
			}
		}
		fmt.Fprintf(&b, "}\n")
		prog1, err := parser.Parse([]byte(b.String()))
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, b.String())
		}
		p1 := ast.Print(prog1)
		prog2, err := parser.Parse([]byte(p1))
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, p1)
		}
		p2 := ast.Print(prog2)
		if p1 != p2 {
			t.Fatalf("not a fixpoint:\n--1--\n%s\n--2--\n%s", p1, p2)
		}
	}
}

func TestEqualExprNegativeCases(t *testing.T) {
	a := &ast.Ident{Name: "a"}
	b := &ast.Ident{Name: "b"}
	if ast.EqualExpr(a, b) {
		t.Error("different idents equal")
	}
	if ast.EqualExpr(&ast.IntLit{Value: 1}, &ast.IntLit{Value: 2}) {
		t.Error("different literals equal")
	}
	if ast.EqualExpr(
		&ast.Binary{Op: token.PLUS, X: a, Y: b},
		&ast.Binary{Op: token.MINUS, X: a, Y: b}) {
		t.Error("different ops equal")
	}
	if ast.EqualExpr(a, &ast.IntLit{Value: 0}) {
		t.Error("different kinds equal")
	}
	call1 := &ast.CallExpr{Callee: "f", Args: []ast.Expr{a}}
	call2 := &ast.CallExpr{Callee: "f", Args: []ast.Expr{b}}
	if ast.EqualExpr(call1, call2) {
		t.Error("different call args equal")
	}
	if !ast.EqualExpr(call1, &ast.CallExpr{Callee: "f", Args: []ast.Expr{&ast.Ident{Name: "a"}}}) {
		t.Error("identical calls unequal")
	}
}
