// Package lexer implements a hand-written scanner for MiniC source.
//
// The scanner supports line comments (// ...), block comments (/* ... */),
// decimal integer literals, and the operator set of internal/lang/token.
package lexer

import (
	"fmt"

	"pathslice/internal/lang/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a MiniC source buffer into tokens.
type Lexer struct {
	src  []byte
	off  int // reading offset
	line int
	col  int
	errs []*Error
}

// New returns a Lexer over src.
func New(src []byte) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) pos() token.Position {
	return token.Position{Offset: l.off, Line: l.line, Column: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errorf(pos token.Position, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func isLetter(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns an
// EOF token; scanning past EOF keeps returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := pos.Offset
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := string(l.src[start:l.off])
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		start := pos.Offset
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: string(l.src[start:l.off]), Pos: pos}
	}

	two := func(next byte, withKind, soloKind token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: soloKind, Pos: pos}
	}

	switch c {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", '|')
		return token.Token{Kind: token.ILLEGAL, Lit: "|", Pos: pos}
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// ScanAll returns all tokens up to and including the terminating EOF.
func ScanAll(src []byte) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}
