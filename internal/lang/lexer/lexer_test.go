package lexer

import (
	"testing"

	"pathslice/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanOperators(t *testing.T) {
	src := "= == ! != < <= > >= && || + - * / % & ( ) { } , ;"
	toks, errs := ScanAll([]byte(src))
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.ASSIGN, token.EQ, token.NOT, token.NEQ, token.LT, token.LEQ,
		token.GT, token.GEQ, token.LAND, token.LOR, token.PLUS, token.MINUS,
		token.STAR, token.SLASH, token.PERCENT, token.AMP, token.LPAREN,
		token.RPAREN, token.LBRACE, token.RBRACE, token.COMMA, token.SEMI,
		token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	src := "int void if else while for return break continue assume assert error skip nondet foo _bar x1"
	toks, errs := ScanAll([]byte(src))
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.KWINT, token.KWVOID, token.KWIF, token.KWELSE, token.KWWHILE,
		token.KWFOR, token.KWRETURN, token.KWBREAK, token.KWCONTINUE,
		token.KWASSUME, token.KWASSERT, token.KWERROR, token.KWSKIP,
		token.KWNONDET, token.IDENT, token.IDENT, token.IDENT, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[14].Lit != "foo" || toks[15].Lit != "_bar" || toks[16].Lit != "x1" {
		t.Errorf("identifier literals wrong: %v %v %v", toks[14], toks[15], toks[16])
	}
}

func TestScanIntLiterals(t *testing.T) {
	toks, errs := ScanAll([]byte("0 42 1000"))
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Lit != "0" || toks[1].Lit != "42" || toks[2].Lit != "1000" {
		t.Errorf("literals: %v", toks)
	}
}

func TestScanComments(t *testing.T) {
	src := "x // line comment\n/* block\ncomment */ y"
	toks, errs := ScanAll([]byte(src))
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Lit != "x" || toks[1].Lit != "y" {
		t.Errorf("tokens: %v", toks)
	}
}

func TestScanPositions(t *testing.T) {
	src := "x\n  y"
	toks, _ := ScanAll([]byte(src))
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("x position: %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("y position: %v", toks[1].Pos)
	}
}

func TestScanErrors(t *testing.T) {
	_, errs := ScanAll([]byte("x @ y"))
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	_, errs = ScanAll([]byte("/* unterminated"))
	if len(errs) != 1 {
		t.Fatalf("want 1 error for unterminated comment, got %v", errs)
	}
	_, errs = ScanAll([]byte("a | b"))
	if len(errs) != 1 {
		t.Fatalf("want 1 error for single |, got %v", errs)
	}
}

func TestScanEOFIdempotent(t *testing.T) {
	l := New([]byte("x"))
	l.Next()
	for i := 0; i < 3; i++ {
		if got := l.Next(); got.Kind != token.EOF {
			t.Fatalf("call %d after end: got %v, want EOF", i, got)
		}
	}
}

func TestScanAdjacentOperators(t *testing.T) {
	// *p==0 must lex as STAR IDENT EQ INT, not ASSIGN twice.
	toks, errs := ScanAll([]byte("*p==0"))
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.STAR, token.IDENT, token.EQ, token.INT, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
