package types

import (
	"strings"
	"testing"

	"pathslice/internal/lang/parser"
)

func mustParse(t *testing.T, src string) *Info {
	t.Helper()
	prog := parser.MustParse(src)
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantError(t *testing.T, src, substr string) {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse failed (test wants a type error): %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("expected type error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err.Error(), substr)
	}
}

func TestCheckOK(t *testing.T) {
	info := mustParse(t, `
		int g = 1;
		int *p;
		int add(int a, int b) { return a + b; }
		void main() {
			int x = add(g, 2);
			p = &x;
			*p = *p + 1;
			if (p == 0) { error; }
			assume(x > 0);
		}`)
	if len(info.Funcs) != 2 {
		t.Errorf("funcs: %d", len(info.Funcs))
	}
	if info.Funcs["main"].Vars["x"].String() != "int" {
		t.Errorf("x type: %v", info.Funcs["main"].Vars["x"])
	}
	if !info.Funcs["main"].HasErr {
		t.Error("main should be marked as containing error")
	}
	if info.Funcs["add"].HasErr {
		t.Error("add has no error statement")
	}
}

func TestCheckUndeclared(t *testing.T) {
	wantError(t, `void main() { x = 1; }`, "undeclared variable x")
	wantError(t, `void main() { int y = z; }`, "undeclared variable z")
}

func TestCheckDuplicates(t *testing.T) {
	wantError(t, `int g; int g; void main() { skip; }`, "duplicate global")
	wantError(t, `void f() { skip; } void f() { skip; } void main() { skip; }`, "duplicate function")
	wantError(t, `void main() { int x; int x; }`, "duplicate local")
	wantError(t, `void f(int a, int a) { skip; } void main() { skip; }`, "duplicate parameter")
	wantError(t, `int f; void f() { skip; } void main() { skip; }`, "collides")
}

func TestCheckPointerRules(t *testing.T) {
	wantError(t, `int x; void main() { *x = 1; }`, "cannot dereference non-pointer")
	wantError(t, `int x; void main() { int y = *x; }`, "cannot dereference non-pointer")
	wantError(t, `int *p; void main() { int q = &p; }`, "address-of requires an int variable")
	wantError(t, `int *p; int x; void main() { x = p; }`, "cannot assign")
	wantError(t, `int *p; void main() { p = 5; }`, "cannot assign")
	// Null assignment is fine.
	mustParse(t, `int *p; void main() { p = 0; if (p != 0) { skip; } }`)
	// Pointer copy is fine.
	mustParse(t, `int *p; int *q; int x; void main() { p = &x; q = p; }`)
}

func TestCheckCallRules(t *testing.T) {
	wantError(t, `void main() { f(); }`, "undefined function f")
	wantError(t, `int f(int a) { return a; } void main() { int x = f(); }`, "expects 1 arguments")
	wantError(t, `void f() { skip; } void main() { int x = f(); }`, "void function")
	wantError(t, `int f() { return 1; } void main() { f(2); }`, "expects 0 arguments")
	wantError(t, `int f(int *p) { return 0; } void main() { int x = f(3); }`, "cannot assign")
}

func TestCheckReturnRules(t *testing.T) {
	wantError(t, `int f() { return; } void main() { skip; }`, "must return a value")
	wantError(t, `void f() { return 1; } void main() { skip; }`, "returns void")
	mustParse(t, `void f() { return; } void main() { f(); }`)
}

func TestCheckRecursionRejected(t *testing.T) {
	wantError(t, `void f() { f(); } void main() { f(); }`, "recursion")
	wantError(t, `void a() { b(); } void b() { a(); } void main() { a(); }`, "recursion")
}

func TestTopoOrder(t *testing.T) {
	info := mustParse(t, `
		void leaf() { skip; }
		void mid() { leaf(); }
		void main() { mid(); leaf(); }`)
	pos := make(map[string]int)
	for i, name := range info.TopoOrder {
		pos[name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["main"]) {
		t.Errorf("topo order wrong: %v", info.TopoOrder)
	}
}

func TestCallGraphDedup(t *testing.T) {
	info := mustParse(t, `void f() { skip; } void main() { f(); f(); f(); }`)
	if got := info.Funcs["main"].Calls; len(got) != 1 || got[0] != "f" {
		t.Errorf("calls: %v", got)
	}
}
