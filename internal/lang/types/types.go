// Package types implements symbol resolution and type checking for
// MiniC programs, and computes the static call graph.
//
// The checker enforces the paper's assumptions: non-recursive
// procedures, integer and pointer-to-integer variables only, and calls
// restricted to statement position. Local variable names are unique
// within each procedure (no block-level shadowing) so that the CFA
// builder can qualify them unambiguously.
package types

import (
	"fmt"
	"sort"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
)

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of semantic errors.
type ErrorList []*Error

// Error implements the error interface.
func (el ErrorList) Error() string {
	if len(el) == 1 {
		return el[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", el[0].Error(), len(el)-1)
}

// FuncInfo holds the resolved symbol table of one procedure.
type FuncInfo struct {
	Decl   *ast.FuncDecl
	Vars   map[string]ast.Type // params and locals
	Calls  []string            // callees, in source order, deduplicated
	HasErr bool                // contains an `error;` statement (possibly via assert)
}

// Info is the result of checking a program.
type Info struct {
	Prog    *ast.Program
	Globals map[string]ast.Type
	Funcs   map[string]*FuncInfo
	// TopoOrder lists function names so that callees precede callers
	// (valid because recursion is rejected).
	TopoOrder []string
}

// Check resolves and type-checks prog. On failure it returns a nil Info
// and an ErrorList.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:    prog,
			Globals: make(map[string]ast.Type),
			Funcs:   make(map[string]*FuncInfo),
		},
	}
	c.run()
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

// MustCheck parses nothing; it checks prog and panics on error.
// Intended for tests and embedded example programs.
func MustCheck(prog *ast.Program) *Info {
	info, err := Check(prog)
	if err != nil {
		panic(fmt.Sprintf("types.MustCheck: %v", err))
	}
	return info
}

type checker struct {
	info *Info
	errs ErrorList
	cur  *FuncInfo
}

func (c *checker) errorf(pos token.Position, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) run() {
	prog := c.info.Prog
	// Pass 1: global and function names.
	for _, g := range prog.Globals {
		if _, dup := c.info.Globals[g.Name]; dup {
			c.errorf(g.PosInfo, "duplicate global %s", g.Name)
			continue
		}
		c.info.Globals[g.Name] = g.Type
	}
	for _, f := range prog.Funcs {
		if _, dup := c.info.Funcs[f.Name]; dup {
			c.errorf(f.PosInfo, "duplicate function %s", f.Name)
			continue
		}
		if _, dup := c.info.Globals[f.Name]; dup {
			c.errorf(f.PosInfo, "function %s collides with a global variable", f.Name)
		}
		c.info.Funcs[f.Name] = &FuncInfo{Decl: f, Vars: make(map[string]ast.Type)}
	}
	// Pass 2: bodies.
	for _, f := range prog.Funcs {
		fi := c.info.Funcs[f.Name]
		if fi == nil || fi.Decl != f {
			continue // duplicate; already reported
		}
		c.cur = fi
		for _, p := range f.Params {
			if _, dup := fi.Vars[p.Name]; dup {
				c.errorf(f.PosInfo, "duplicate parameter %s in %s", p.Name, f.Name)
				continue
			}
			fi.Vars[p.Name] = p.Type
		}
		c.checkBlock(f.Body)
		c.cur = nil
	}
	c.checkRecursion()
}

func (c *checker) lookupVar(name string) (ast.Type, bool) {
	if c.cur != nil {
		if t, ok := c.cur.Vars[name]; ok {
			return t, true
		}
	}
	t, ok := c.info.Globals[name]
	return t, ok
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		if _, dup := c.cur.Vars[s.Name]; dup {
			c.errorf(s.PosInfo, "duplicate local %s in %s (MiniC forbids shadowing)", s.Name, c.cur.Decl.Name)
		} else {
			c.cur.Vars[s.Name] = s.Type
		}
		if s.Init != nil {
			c.checkAssignRHS(s.PosInfo, s.Type, s.Init)
		}
	case *ast.AssignStmt:
		lt, ok := c.lookupVar(s.LHS)
		if !ok {
			c.errorf(s.PosInfo, "undeclared variable %s", s.LHS)
			return
		}
		want := lt
		if s.Deref {
			if lt != ast.TypeIntPtr {
				c.errorf(s.PosInfo, "cannot dereference non-pointer %s", s.LHS)
			}
			want = ast.TypeInt
		}
		c.checkAssignRHS(s.PosInfo, want, s.RHS)
	case *ast.ExprStmt:
		c.checkCall(s.Call)
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkBlock(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Body)
	case *ast.ForStmt:
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.checkBlock(s.Body)
	case *ast.ReturnStmt:
		want := c.cur.Decl.Result
		if s.Value == nil {
			if want != ast.TypeVoid {
				c.errorf(s.PosInfo, "%s must return a value", c.cur.Decl.Name)
			}
			return
		}
		if want == ast.TypeVoid {
			c.errorf(s.PosInfo, "%s returns void but return has a value", c.cur.Decl.Name)
			return
		}
		c.checkAssignRHS(s.PosInfo, want, s.Value)
	case *ast.AssumeStmt:
		c.checkCond(s.Pred)
	case *ast.AssertStmt:
		c.checkCond(s.Pred)
		c.cur.HasErr = true
	case *ast.SpawnStmt:
		if got := c.checkCall(s.Call); got != ast.TypeVoid {
			c.errorf(s.PosInfo, "spawned function %s must be void (its result would be lost)", s.Call.Callee)
		}
	case *ast.JoinStmt:
		// Always legal; a join with no outstanding spawns is a no-op.
	case *ast.ErrorStmt:
		c.cur.HasErr = true
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.SkipStmt:
		// Loop nesting is validated by the CFA builder, which knows the
		// loop structure.
	case *ast.BlockStmt:
		c.checkBlock(s)
	}
}

// checkAssignRHS checks that rhs can be assigned to a target of type
// want. The literal 0 is a valid pointer (null).
func (c *checker) checkAssignRHS(pos token.Position, want ast.Type, rhs ast.Expr) {
	if call, ok := rhs.(*ast.CallExpr); ok {
		got := c.checkCall(call)
		if got == ast.TypeVoid {
			c.errorf(pos, "call to void function %s used as a value", call.Callee)
		} else if got != want && !c.nullOK(want, rhs) {
			c.errorf(pos, "cannot assign %s result of %s to %s target", got, call.Callee, want)
		}
		return
	}
	got := c.exprType(rhs)
	if got != want && !c.nullOK(want, rhs) {
		c.errorf(pos, "cannot assign %s expression to %s target", got, want)
	}
}

// nullOK reports whether rhs is the literal 0 being assigned to a
// pointer target.
func (c *checker) nullOK(want ast.Type, rhs ast.Expr) bool {
	lit, ok := rhs.(*ast.IntLit)
	return want == ast.TypeIntPtr && ok && lit.Value == 0
}

func (c *checker) checkCond(e ast.Expr) {
	if t := c.exprType(e); t == ast.TypeVoid {
		c.errorf(e.Pos(), "condition has no value")
	}
}

// checkCall checks arity/types of a call and records the edge in the
// call graph; it returns the callee's result type.
func (c *checker) checkCall(call *ast.CallExpr) ast.Type {
	fi, ok := c.info.Funcs[call.Callee]
	if !ok {
		c.errorf(call.PosInfo, "call to undefined function %s", call.Callee)
		for _, a := range call.Args {
			c.exprType(a)
		}
		return ast.TypeInt
	}
	decl := fi.Decl
	if len(call.Args) != len(decl.Params) {
		c.errorf(call.PosInfo, "%s expects %d arguments, got %d", call.Callee, len(decl.Params), len(call.Args))
	}
	for i, a := range call.Args {
		if i >= len(decl.Params) {
			c.exprType(a)
			continue
		}
		c.checkAssignRHS(a.Pos(), decl.Params[i].Type, a)
	}
	if c.cur != nil {
		found := false
		for _, prev := range c.cur.Calls {
			if prev == call.Callee {
				found = true
				break
			}
		}
		if !found {
			c.cur.Calls = append(c.cur.Calls, call.Callee)
		}
	}
	return decl.Result
}

// exprType infers the type of e, reporting errors for ill-typed
// subexpressions. Calls are rejected here (they may only appear where
// checkAssignRHS handles them).
func (c *checker) exprType(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.TypeInt
	case *ast.Nondet:
		return ast.TypeInt
	case *ast.Ident:
		t, ok := c.lookupVar(e.Name)
		if !ok {
			c.errorf(e.PosInfo, "undeclared variable %s", e.Name)
			return ast.TypeInt
		}
		return t
	case *ast.Unary:
		switch e.Op {
		case token.MINUS, token.NOT:
			if c.exprType(e.X) != ast.TypeInt {
				c.errorf(e.PosInfo, "operand of %s must be int", e.Op)
			}
			return ast.TypeInt
		case token.STAR:
			if c.exprType(e.X) != ast.TypeIntPtr {
				c.errorf(e.PosInfo, "cannot dereference non-pointer")
			}
			if _, ok := e.X.(*ast.Ident); !ok {
				c.errorf(e.PosInfo, "dereference must be of a variable (*p)")
			}
			return ast.TypeInt
		case token.AMP:
			id, ok := e.X.(*ast.Ident)
			if !ok {
				c.errorf(e.PosInfo, "address-of must be of a variable (&x)")
				return ast.TypeIntPtr
			}
			t, found := c.lookupVar(id.Name)
			if !found {
				c.errorf(e.PosInfo, "undeclared variable %s", id.Name)
			} else if t != ast.TypeInt {
				c.errorf(e.PosInfo, "address-of requires an int variable, %s is %s", id.Name, t)
			}
			return ast.TypeIntPtr
		}
	case *ast.Binary:
		xt := c.exprType(e.X)
		yt := c.exprType(e.Y)
		switch e.Op {
		case token.EQ, token.NEQ:
			// Pointer equality is allowed, including against literal 0.
			if xt != yt && !exprIsZero(e.X) && !exprIsZero(e.Y) {
				c.errorf(e.PosInfo, "mismatched operand types %s and %s for %s", xt, yt, e.Op)
			}
			return ast.TypeInt
		case token.LT, token.LEQ, token.GT, token.GEQ,
			token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
			token.LAND, token.LOR:
			if xt != ast.TypeInt || yt != ast.TypeInt {
				c.errorf(e.PosInfo, "operands of %s must be int", e.Op)
			}
			return ast.TypeInt
		}
	case *ast.CallExpr:
		c.errorf(e.PosInfo, "call %s(...) cannot appear inside an expression", e.Callee)
		return ast.TypeInt
	}
	return ast.TypeInt
}

func exprIsZero(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value == 0
}

// checkRecursion rejects recursive call cycles and fills TopoOrder with
// a callee-first ordering.
func (c *checker) checkRecursion() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []string
	var visit func(name string, stack []string)
	visit = func(name string, stack []string) {
		fi, ok := c.info.Funcs[name]
		if !ok {
			return
		}
		switch color[name] {
		case grey:
			c.errorf(fi.Decl.PosInfo, "recursion involving %s is not supported (cycle: %v)", name, append(stack, name))
			return
		case black:
			return
		}
		color[name] = grey
		for _, callee := range fi.Calls {
			visit(callee, append(stack, name))
		}
		color[name] = black
		order = append(order, name)
	}
	names := make([]string, 0, len(c.info.Funcs))
	for name := range c.info.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		visit(name, nil)
	}
	c.info.TopoOrder = order
}
