// Package token defines the lexical tokens of the MiniC language used
// throughout the path-slicing toolchain, together with source positions.
//
// MiniC is the small imperative language of the paper "Path Slicing"
// (Jhala & Majumdar, PLDI 2005): integer variables, pointers to
// integers, procedures with call-by-value parameters, and structured
// control flow. See internal/lang/parser for the grammar.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT // x, fopen, main
	INT   // 123

	// Operators and delimiters.
	ASSIGN  // =
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &

	EQ  // ==
	NEQ // !=
	LT  // <
	LEQ // <=
	GT  // >
	GEQ // >=

	LAND // &&
	LOR  // ||
	NOT  // !

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	COMMA  // ,
	SEMI   // ;

	// Keywords.
	KWINT      // int
	KWVOID     // void
	KWIF       // if
	KWELSE     // else
	KWWHILE    // while
	KWFOR      // for
	KWRETURN   // return
	KWBREAK    // break
	KWCONTINUE // continue
	KWASSUME   // assume
	KWASSERT   // assert
	KWERROR    // error
	KWSKIP     // skip
	KWNONDET   // nondet
	KWSPAWN    // spawn
	KWJOIN     // join
	KWGOTO     // goto (reserved, rejected by the parser)

	numKinds
)

var kindNames = [...]string{
	ILLEGAL:    "ILLEGAL",
	EOF:        "EOF",
	IDENT:      "IDENT",
	INT:        "INT",
	ASSIGN:     "=",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	PERCENT:    "%",
	AMP:        "&",
	EQ:         "==",
	NEQ:        "!=",
	LT:         "<",
	LEQ:        "<=",
	GT:         ">",
	GEQ:        ">=",
	LAND:       "&&",
	LOR:        "||",
	NOT:        "!",
	LPAREN:     "(",
	RPAREN:     ")",
	LBRACE:     "{",
	RBRACE:     "}",
	COMMA:      ",",
	SEMI:       ";",
	KWINT:      "int",
	KWVOID:     "void",
	KWIF:       "if",
	KWELSE:     "else",
	KWWHILE:    "while",
	KWFOR:      "for",
	KWRETURN:   "return",
	KWBREAK:    "break",
	KWCONTINUE: "continue",
	KWASSUME:   "assume",
	KWASSERT:   "assert",
	KWERROR:    "error",
	KWSKIP:     "skip",
	KWNONDET:   "nondet",
	KWSPAWN:    "spawn",
	KWJOIN:     "join",
	KWGOTO:     "goto",
}

// String returns the textual form of the token kind: the operator or
// keyword spelling for fixed tokens, or a class name for variable ones.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

var keywords = map[string]Kind{
	"int":      KWINT,
	"void":     KWVOID,
	"if":       KWIF,
	"else":     KWELSE,
	"while":    KWWHILE,
	"for":      KWFOR,
	"return":   KWRETURN,
	"break":    KWBREAK,
	"continue": KWCONTINUE,
	"assume":   KWASSUME,
	"assert":   KWASSERT,
	"error":    KWERROR,
	"skip":     KWSKIP,
	"nondet":   KWNONDET,
	"spawn":    KWSPAWN,
	"join":     KWJOIN,
	"goto":     KWGOTO,
}

// Lookup maps an identifier to its keyword kind, or IDENT if it is not
// a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Position describes a location in a source file. Line and Column are
// 1-based; Offset is the 0-based byte offset.
type Position struct {
	Offset int
	Line   int
	Column int
}

// String renders the position as "line:col".
func (p Position) String() string {
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}

// IsValid reports whether the position has been set.
func (p Position) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position and, for
// IDENT and INT tokens, its literal text.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsComparison reports whether the kind is one of the six comparison
// operators.
func (k Kind) IsComparison() bool {
	switch k {
	case EQ, NEQ, LT, LEQ, GT, GEQ:
		return true
	}
	return false
}
