// Package compile ties the frontend together: source text in, control
// flow automata out. It is the entry point used by the CLIs, examples,
// and tests.
package compile

import (
	"fmt"

	"pathslice/internal/cfa"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
	"pathslice/internal/obs"
)

// Source parses, checks, and lowers a MiniC program.
func Source(src string) (*cfa.Program, error) {
	sp := obs.StartSpan(obs.PhaseParse)
	prog, err := parser.Parse([]byte(src))
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	sp = obs.StartSpan(obs.PhaseTypecheck)
	info, err := types.Check(prog)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	sp = obs.StartSpan(obs.PhaseCFA)
	p, err := cfa.Build(info)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("cfa: %w", err)
	}
	return p, nil
}

// MustSource compiles src and panics on error; for tests and embedded
// example programs.
func MustSource(src string) *cfa.Program {
	p, err := Source(src)
	if err != nil {
		panic("compile.MustSource: " + err.Error())
	}
	return p
}
