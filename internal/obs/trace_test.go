package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerAggregatesPhases(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.StartSpan(PhaseSMT)
	sp.End()
	tr.StartSpan(PhaseSMT).End()
	tr.StartSpan(PhaseParse).End()
	stats := tr.PhaseStats()
	byPhase := map[string]PhaseStat{}
	for _, ps := range stats {
		byPhase[ps.Phase] = ps
	}
	if byPhase[PhaseSMT].Calls != 2 {
		t.Fatalf("smt calls = %d, want 2", byPhase[PhaseSMT].Calls)
	}
	if byPhase[PhaseParse].Calls != 1 {
		t.Fatalf("parse calls = %d, want 1", byPhase[PhaseParse].Calls)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	SetTracer(nil)
	sp := StartSpan(PhaseSMT)
	sp.End() // must not panic
	StartNamedSpan(PhaseCheck, "x").EndWith(map[string]any{"k": 1})
	Event("e", nil)
	RecordCounter("c", 1)
}

// decodeJSONL decodes every line of the tracer output, failing the
// test on any non-JSON line.
func decodeJSONL(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.StartNamedSpan(PhaseCheck, "check main#1").EndWith(map[string]any{"verdict": "safe"})
	tr.StartSpan(PhaseSMT).End() // aggregate-only: no event line
	tr.Event("bench-row", map[string]any{"profile": "fcron"})
	tr.RecordCounter("cegar_solver_calls", 42)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events := decodeJSONL(t, buf.Bytes())
	kinds := make([]string, len(events))
	for i, ev := range events {
		kinds[i] = ev["t"].(string)
	}
	want := []string{"start", "span", "event", "counter", "phases"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	span := events[1]
	if span["phase"] != PhaseCheck || span["name"] != "check main#1" {
		t.Fatalf("bad span event: %v", span)
	}
	if span["attrs"].(map[string]any)["verdict"] != "safe" {
		t.Fatalf("span attrs lost: %v", span)
	}
	counter := events[3]
	if counter["name"] != "cegar_solver_calls" || counter["value"].(float64) != 42 {
		t.Fatalf("bad counter event: %v", counter)
	}
	summary := events[len(events)-1]
	if summary["attrs"].(map[string]any)["cegar_solver_calls"].(float64) != 42 {
		t.Fatalf("summary lost counters: %v", summary)
	}
	phases := summary["phases"].([]any)
	if len(phases) != 2 { // check + smt
		t.Fatalf("summary phases = %v, want check and smt", phases)
	}
}

// TestTracerConcurrentEmitters runs named and aggregate spans, events,
// and counters from many goroutines at once — the -race run for the
// span recorder.
func TestTracerConcurrentEmitters(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	SetTracer(tr)
	defer SetTracer(nil)
	const emitters = 8
	const perG = 500
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				StartSpan(PhaseSMT).End()
				if j%100 == 0 {
					StartNamedSpan(PhaseCEGARIter, "iter").EndWith(map[string]any{"j": j})
					Event("tick", nil)
					RecordCounter("n", int64(j))
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	stats := tr.PhaseStats()
	var smtCalls int64
	for _, ps := range stats {
		if ps.Phase == PhaseSMT {
			smtCalls = ps.Calls
		}
	}
	if smtCalls != emitters*perG {
		t.Fatalf("smt calls = %d, want %d", smtCalls, emitters*perG)
	}
	decodeJSONL(t, buf.Bytes()) // every line must still be valid JSON
}

func TestWritePhaseTableSections(t *testing.T) {
	tr := NewTracer(nil)
	tr.StartSpan(PhaseReach).End()
	tr.StartSpan(PhaseSMT).End()
	tr.StartNamedSpan(PhaseCheck, "c").End()
	time.Sleep(time.Millisecond) // ensure nonzero wall
	var sb strings.Builder
	if err := tr.WritePhaseTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	iReach := strings.Index(out, "reach")
	iAcc := strings.Index(out, "(accounted)")
	iDetail := strings.Index(out, "nested detail")
	iSMT := strings.Index(out, "smt")
	iRoll := strings.Index(out, "roll-ups")
	iCheck := strings.Index(out, "check")
	if iReach < 0 || iAcc < 0 || iDetail < 0 || iSMT < 0 || iRoll < 0 || iCheck < 0 {
		t.Fatalf("table missing sections:\n%s", out)
	}
	// Leaves before the accounted line; detail and roll-ups after.
	if !(iReach < iAcc && iAcc < iDetail && iDetail < iSMT && iSMT < iRoll && iRoll < iCheck) {
		t.Fatalf("table sections out of order:\n%s", out)
	}
}

func TestTracerCloseIsIdempotentAndStopsEmitting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	tr.Event("after-close", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("tracer emitted after Close")
	}
	// Aggregation still works after Close.
	tr.StartSpan(PhaseSMT).End()
	if tr.PhaseStats()[0].Calls != 1 {
		t.Fatal("aggregation broken after Close")
	}
}
