package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer aggregates per-phase wall time and optionally streams
// structured JSONL events. All methods are safe for concurrent use.
//
// Every span contributes to the per-phase aggregate; only named spans
// (StartNamedSpan) additionally emit a JSONL "span" event, so hot
// phases like individual smt solves can be traced at aggregate cost
// without drowning the event log.
type Tracer struct {
	start time.Time

	mu       sync.Mutex
	w        io.Writer // nil: aggregate only
	phases   map[string]*PhaseStat
	counters map[string]int64
	werr     error
	closed   bool
}

// PhaseStat is the aggregate for one phase: how often it ran and how
// much wall time it consumed.
type PhaseStat struct {
	Phase string        `json:"phase"`
	Calls int64         `json:"calls"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// NewTracer returns a tracer streaming JSONL to w (nil for
// aggregation only). The tracer's epoch — the zero point of every
// event's at_us offset — is the call time.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		start:    now(),
		w:        w,
		phases:   make(map[string]*PhaseStat),
		counters: make(map[string]int64),
	}
	t.emit(traceEvent{T: "start", AtUS: 0})
	return t
}

// Span is one in-flight phase measurement. The zero Span (returned by
// the package helpers when no tracer is installed) is inert.
type Span struct {
	t     *Tracer
	phase string
	name  string
	start time.Time
}

// StartSpan opens an aggregate-only span.
func (t *Tracer) StartSpan(phase string) Span {
	return Span{t: t, phase: phase, start: now()}
}

// StartNamedSpan opens a span that also emits a JSONL event on End.
func (t *Tracer) StartNamedSpan(phase, name string) Span {
	if name == "" {
		name = phase
	}
	return Span{t: t, phase: phase, name: name, start: now()}
}

// End closes the span, folding its duration into the phase aggregate
// and, for named spans, emitting the JSONL event.
func (s Span) End() { s.EndWith(nil) }

// EndWith is End with extra attributes attached to the emitted event
// (ignored for aggregate-only spans).
func (s Span) EndWith(attrs map[string]any) {
	if s.t == nil {
		return
	}
	d := now().Sub(s.start)
	t := s.t
	t.mu.Lock()
	ps, ok := t.phases[s.phase]
	if !ok {
		ps = &PhaseStat{Phase: s.phase}
		t.phases[s.phase] = ps
	}
	ps.Calls++
	ps.Total += d
	if d > ps.Max {
		ps.Max = d
	}
	if s.name != "" {
		t.emitLocked(traceEvent{
			T:     "span",
			Phase: s.phase,
			Name:  s.name,
			AtUS:  s.start.Sub(t.start).Microseconds(),
			DurUS: d.Microseconds(),
			Attrs: attrs,
		})
	}
	t.mu.Unlock()
}

// traceEvent is one JSONL line. T discriminates the event kind:
// "start", "span", "event", "counter", or "phases" (the closing
// summary).
type traceEvent struct {
	T      string         `json:"t"`
	Phase  string         `json:"phase,omitempty"`
	Name   string         `json:"name,omitempty"`
	AtUS   int64          `json:"at_us"`
	DurUS  int64          `json:"dur_us,omitempty"`
	Value  *int64         `json:"value,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Phases []phaseRow     `json:"phases,omitempty"`
}

// phaseRow is one row of the closing "phases" summary event.
type phaseRow struct {
	Phase   string `json:"phase"`
	Calls   int64  `json:"calls"`
	TotalUS int64  `json:"total_us"`
	MaxUS   int64  `json:"max_us"`
}

// Event emits a free-form JSONL event.
func (t *Tracer) Event(name string, attrs map[string]any) {
	t.emit(traceEvent{T: "event", Name: name, AtUS: t.sinceStartUS(), Attrs: attrs})
}

// RecordCounter emits a counter observation as a JSONL event and
// remembers the latest value for the closing summary. Re-recording a
// name overwrites the remembered value, so cumulative totals can be
// recorded incrementally and only the final one lands in the summary
// table.
func (t *Tracer) RecordCounter(name string, v int64) {
	t.mu.Lock()
	t.counters[name] = v
	t.emitLocked(traceEvent{T: "counter", Name: name, AtUS: now().Sub(t.start).Microseconds(), Value: &v})
	t.mu.Unlock()
}

// Counters returns a copy of the recorded counter observations.
func (t *Tracer) Counters() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

func (t *Tracer) sinceStartUS() int64 { return now().Sub(t.start).Microseconds() }

// emit writes one JSONL line (no-op without a writer). The first
// write error is sticky and reported by Close.
func (t *Tracer) emit(ev traceEvent) {
	t.mu.Lock()
	t.emitLocked(ev)
	t.mu.Unlock()
}

func (t *Tracer) emitLocked(ev traceEvent) {
	if t.w == nil || t.werr != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		b = append(b, '\n')
		_, err = t.w.Write(b)
	}
	if err != nil && t.werr == nil {
		t.werr = err
	}
}

// PhaseStats returns the per-phase aggregates, sorted by descending
// total time.
func (t *Tracer) PhaseStats() []PhaseStat {
	t.mu.Lock()
	out := make([]PhaseStat, 0, len(t.phases))
	for _, ps := range t.phases {
		out = append(out, *ps)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Elapsed returns the wall time since the tracer was created.
func (t *Tracer) Elapsed() time.Duration { return now().Sub(t.start) }

// WritePhaseTable renders the aggregated per-phase breakdown in the
// style of the paper's Table 2: one row per phase with call count,
// total and mean time, and the share of wall-clock time. Only the
// leaf phases — which partition the pipeline's time without overlap —
// enter the "(accounted)" percentage sum. Detail phases (smt, wp),
// whose spans nest inside leaves, and roll-up phases (check,
// cegar-iteration), whose spans enclose leaves, are listed in
// separate sections so their shares are visible but not double
// counted.
func (t *Tracer) WritePhaseTable(w io.Writer) error {
	stats := t.PhaseStats()
	wall := t.Elapsed()
	var leaves, details, rollups []PhaseStat
	for _, ps := range stats {
		switch {
		case RollupPhases[ps.Phase]:
			rollups = append(rollups, ps)
		case DetailPhases[ps.Phase]:
			details = append(details, ps)
		default:
			leaves = append(leaves, ps)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-phase breakdown (wall %.3fs)\n", wall.Seconds())
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %7s\n", "phase", "calls", "total", "mean", "%wall")
	var accounted time.Duration
	for _, ps := range leaves {
		accounted += ps.Total
		fmt.Fprintf(&b, "%-16s %10d %12s %12s %6.1f%%\n",
			ps.Phase, ps.Calls, fmtDur(ps.Total), fmtDur(meanDur(ps)), pct(ps.Total, wall))
	}
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %6.1f%%\n", "(accounted)", "", fmtDur(accounted), "", pct(accounted, wall))
	if len(details) > 0 {
		fmt.Fprintf(&b, "nested detail (counted inside the phases above; not summed):\n")
		for _, ps := range details {
			fmt.Fprintf(&b, "%-16s %10d %12s %12s %6.1f%%\n",
				ps.Phase, ps.Calls, fmtDur(ps.Total), fmtDur(meanDur(ps)), pct(ps.Total, wall))
		}
	}
	if len(rollups) > 0 {
		fmt.Fprintf(&b, "roll-ups (enclose the phases above; not summed):\n")
		for _, ps := range rollups {
			fmt.Fprintf(&b, "%-16s %10d %12s %12s %6.1f%%\n",
				ps.Phase, ps.Calls, fmtDur(ps.Total), fmtDur(meanDur(ps)), pct(ps.Total, wall))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func meanDur(ps PhaseStat) time.Duration {
	if ps.Calls == 0 {
		return 0
	}
	return ps.Total / time.Duration(ps.Calls)
}

func pct(d, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(wall)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// Close emits the closing "phases" summary event (with the remembered
// counter observations attached) and reports the first write error,
// if any. The tracer keeps aggregating if used after Close, but emits
// no further events.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.werr
	}
	rows := make([]phaseRow, 0, len(t.phases))
	for _, ps := range t.phases {
		rows = append(rows, phaseRow{
			Phase:   ps.Phase,
			Calls:   ps.Calls,
			TotalUS: ps.Total.Microseconds(),
			MaxUS:   ps.Max.Microseconds(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Phase < rows[j].Phase })
	var attrs map[string]any
	if len(t.counters) > 0 {
		attrs = make(map[string]any, len(t.counters))
		for k, v := range t.counters {
			attrs[k] = v
		}
	}
	t.emitLocked(traceEvent{T: "phases", AtUS: now().Sub(t.start).Microseconds(), Phases: rows, Attrs: attrs})
	t.closed = true
	t.w = nil
	return t.werr
}
