package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. All methods are safe for concurrent
// use; metric handles are stable pointers, so the intended pattern is
// to look a metric up once (package-level var) and update it through
// the handle on the hot path.
//
// A disabled registry (SetEnabled(false), the initial state of the
// Default registry) turns every update into a single atomic load plus
// a branch; reads then observe whatever was recorded while enabled.
type Registry struct {
	on atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.on.Store(true)
	return r
}

// defaultRegistry is the process-wide registry. It starts disabled so
// uninstrumented runs pay only the atomic-load fast path; the
// binaries enable it when observability is requested (see Setup).
var defaultRegistry = func() *Registry {
	r := NewRegistry()
	r.on.Store(false)
	return r
}()

// Default returns the process-wide registry shared by the pipeline
// packages.
func Default() *Registry { return defaultRegistry }

// SetEnabled switches the registry's no-op mode. Disabling does not
// clear recorded values.
func (r *Registry) SetEnabled(on bool) { r.on.Store(on) }

// Enabled reports whether updates are being recorded.
func (r *Registry) Enabled() bool { return r.on.Load() }

// Reset zeroes every registered metric (for tests).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// Counter returns (registering on first use) the named monotonically
// increasing counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, on: &r.on}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, on: &r.on}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
// Buckets are powers of two over the observed unit (nanoseconds for
// ObserveDuration, the caller's unit for Observe).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, on: &r.on}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing counter with an atomic fast
// path.
type Counter struct {
	name string
	on   *atomic.Bool
	v    atomic.Int64
}

// Add increments the counter by n (no-op while the registry is
// disabled).
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value with atomic Set/Add/SetMax.
type Gauge struct {
	name string
	on   *atomic.Bool
	v    atomic.Int64
}

// Set stores v (no-op while the registry is disabled).
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (a high-water mark,
// e.g. the deepest solver-worker queue seen).
func (g *Gauge) SetMax(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the bucket count: bucket i holds observations v with
// 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1), covering the full int64
// range.
const histBuckets = 64

// Histogram is a fixed-bucket (power-of-two) histogram of
// non-negative int64 observations: latencies in nanoseconds, formula
// sizes, slice percentages. Observation is lock-free: one atomic add
// into the bucket plus count and sum updates.
type Histogram struct {
	name    string
	on      *atomic.Bool
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to zero; no-op
// while the registry is disabled).
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// bucketOf maps v to its bucket index: the number of bits needed to
// represent v (so bucket i has upper bound 2^i).
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1)
// from the bucket boundaries: the upper bound of the bucket in which
// the quantile falls.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i >= 63 {
				return int64(^uint64(0) >> 1)
			}
			return int64(1) << uint(i)
		}
	}
	return int64(1) << 62
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Snapshot is a point-in-time copy of every metric in the registry,
// sorted by name within each kind.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot. Buckets lists only the
// non-empty buckets as (upper bound, count) pairs.
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"n"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.v.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.v.Load()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				ub := int64(^uint64(0) >> 1)
				if i < 63 {
					ub = int64(1) << uint(i)
				}
				hv.Buckets = append(hv.Buckets, BucketCount{UpperBound: ub, Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (counters as `counter`, gauges as `gauge`,
// histograms as cumulative-bucket `histogram`).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.Name, b.UpperBound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			h.Name, h.Count, h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
