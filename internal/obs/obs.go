// Package obs is the observability layer for the slicer/CEGAR
// pipeline: a zero-dependency metrics registry plus span-based phase
// tracing, with export surfaces for both.
//
// The package has three parts:
//
//   - A concurrency-safe metrics Registry (counters, gauges, latency/
//     value histograms) with atomic fast paths. The registry can be
//     globally disabled, in which case every Add/Set/Observe reduces to
//     one atomic load and a predictable branch — the no-op mode costs
//     nanoseconds, so instrumentation can stay in hot paths
//     unconditionally. The process-wide default registry is reached
//     with Default() and is what the pipeline packages (smt, cegar,
//     core, wp, progslice, bench) register their metrics on.
//
//   - A span Tracer that aggregates per-phase wall time and call
//     counts (parse, typecheck, cfa, instrument, pathslice, wp, smt,
//     refine, cegar-iteration, check) and optionally streams structured
//     JSONL events to a writer — the `-trace-out` flag of the
//     blastlite, pathslice, and experiments binaries. Closing the
//     tracer emits the aggregated per-phase table (the analogue of the
//     paper's per-phase time breakdown, Table 2) both as a JSONL
//     summary event and as human-readable text via WritePhaseTable.
//
//   - Export surfaces: Serve starts an HTTP listener (the
//     `-metrics-addr` flag) with the registry in Prometheus text
//     format at /metrics, expvar at /debug/vars, and net/http/pprof
//     at /debug/pprof/.
//
// Instrumented code obtains spans through the package-level StartSpan/
// StartNamedSpan helpers, which consult a process-global tracer set
// with SetTracer. When no tracer is installed the helpers return a
// zero Span whose End is a no-op, so tracing costs one atomic pointer
// load when disabled. See docs/OBSERVABILITY.md for the full metric,
// span, and JSONL schema catalogue.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase names used by the pipeline's spans. The set mirrors the
// stages of the paper's per-phase breakdown: frontend (parse,
// typecheck, cfa), property instrumentation, and the CEGAR loop's
// inner phases (reach, pathslice, feasibility, refine) with their
// roll-ups (cegar-iteration, check) and nested detail (wp, smt).
const (
	PhaseParse       = "parse"
	PhaseTypecheck   = "typecheck"
	PhaseCFA         = "cfa"
	PhaseInstrument  = "instrument"
	PhaseReach       = "reach"
	PhasePathSlice   = "pathslice"
	PhaseFeasibility = "feasibility"
	PhaseWP          = "wp"
	PhaseSMT         = "smt"
	PhaseRefine      = "refine"
	PhaseCEGARIter   = "cegar-iteration"
	PhaseCheck       = "check"
)

// RollupPhases are the phases whose spans enclose other phases'
// spans (a check contains its iterations; an iteration contains
// reach/pathslice/feasibility/refine work). They are excluded from
// the percent-of-wall accounting in the phase table so the remaining
// leaf phases partition the wall time without double counting.
var RollupPhases = map[string]bool{
	PhaseCEGARIter: true,
	PhaseCheck:     true,
}

// DetailPhases are fine-grained phases whose spans nest INSIDE leaf
// phases (an smt solve runs inside reach, feasibility, refine, or
// pathslice's early-stop; a wp trace encoding runs inside
// feasibility). Their time is already counted by the enclosing leaf,
// so the phase table reports them in a separate detail section and
// excludes them from the percent-of-wall sum.
var DetailPhases = map[string]bool{
	PhaseWP:  true,
	PhaseSMT: true,
}

// global is the process-wide tracer consulted by StartSpan; nil means
// tracing is off.
var global atomic.Pointer[Tracer]

// SetTracer installs t as the process-global tracer (nil turns
// tracing off).
func SetTracer(t *Tracer) {
	if t == nil {
		global.Store(nil)
		return
	}
	global.Store(t)
}

// CurrentTracer returns the installed global tracer, or nil.
func CurrentTracer() *Tracer { return global.Load() }

// StartSpan opens an aggregate-only span on the global tracer. When
// no tracer is installed the returned Span is inert and End is free.
func StartSpan(phase string) Span {
	t := global.Load()
	if t == nil {
		return Span{}
	}
	return t.StartSpan(phase)
}

// StartNamedSpan opens a span that, in addition to the per-phase
// aggregation, emits one JSONL "span" event on End. Use for coarse
// spans (a whole check, one refinement iteration) — not per-solver-
// call work.
func StartNamedSpan(phase, name string) Span {
	t := global.Load()
	if t == nil {
		return Span{}
	}
	return t.StartNamedSpan(phase, name)
}

// Event emits a JSONL event on the global tracer (no-op without one).
func Event(name string, attrs map[string]any) {
	if t := global.Load(); t != nil {
		t.Event(name, attrs)
	}
}

// RecordCounter emits a JSONL counter observation on the global
// tracer (no-op without one).
func RecordCounter(name string, v int64) {
	if t := global.Load(); t != nil {
		t.RecordCounter(name, v)
	}
}

// now is indirected for tests that need deterministic durations.
var now = time.Now
