package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
)

// Handler returns an http.Handler exporting the registry and the
// process debug surfaces:
//
//	/metrics        registry in Prometheus text exposition format
//	/debug/vars     expvar JSON (includes the registry snapshot
//	                under the "pathslice" key)
//	/debug/pprof/   net/http/pprof profiles (cpu, heap, goroutine, …)
func Handler(r *Registry) http.Handler {
	publishExpvarOnce(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var expvarOnce sync.Once

// publishExpvarOnce exposes the registry snapshot through expvar
// exactly once per process (expvar.Publish panics on duplicates).
func publishExpvarOnce(r *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("pathslice", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Serve starts an HTTP listener for Handler(r) on addr and returns
// the bound address (useful with ":0") and a shutdown function. The
// server runs until the shutdown function is called or the process
// exits.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// WriteCounterTable prints every default-registry counter whose name
// starts with prefix as an aligned name/value table — the terminal
// counterpart of /metrics for one-shot CLI runs (used by the pipeline
// binaries' -solver-stats flag to report incremental-solver reuse).
func WriteCounterTable(w io.Writer, prefix string) error {
	for _, c := range Default().Snapshot().Counters {
		if !strings.HasPrefix(c.Name, prefix) {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-36s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	return nil
}

// Setup wires the standard observability flags of the pipeline
// binaries: traceOut (path for the JSONL event log, "" for off,
// "-" for stderr) and metricsAddr (HTTP listen address for Serve,
// "" for off). When either is requested the default registry is
// enabled. The returned shutdown function closes the tracer (emitting
// the "phases" summary event), prints the per-phase table to stderr
// when tracing was on, and stops the HTTP server; it is safe to call
// when both features are off.
func Setup(traceOut, metricsAddr string) (func() error, error) {
	var (
		tracer    *Tracer
		traceFile *os.File
		stopHTTP  func() error
	)
	if traceOut != "" {
		w := os.Stderr
		if traceOut != "-" {
			f, err := os.Create(traceOut)
			if err != nil {
				return nil, fmt.Errorf("obs: trace-out: %w", err)
			}
			traceFile = f
			w = f
		}
		tracer = NewTracer(w)
		SetTracer(tracer)
		Default().SetEnabled(true)
	}
	if metricsAddr != "" {
		Default().SetEnabled(true)
		bound, stop, err := Serve(metricsAddr, Default())
		if err != nil {
			return nil, err
		}
		stopHTTP = stop
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", bound)
	}
	shutdown := func() error {
		var firstErr error
		if tracer != nil {
			// Final registry totals ride along in the summary event so a
			// trace file is self-contained.
			for _, c := range Default().Snapshot().Counters {
				if c.Value != 0 {
					tracer.RecordCounter(c.Name, c.Value)
				}
			}
			firstErr = tracer.Close()
			SetTracer(nil)
			if err := tracer.WritePhaseTable(os.Stderr); err != nil && firstErr == nil {
				firstErr = err
			}
			if traceFile != nil {
				if err := traceFile.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if stopHTTP != nil {
			if err := stopHTTP(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return shutdown, nil
}
