package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge after SetMax(3) = %d, want 5 (max keeps larger)", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax(11) = %d, want 11", got)
	}
	h := r.Histogram("h_ns")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("histogram count/sum = %d/%d, want 5/1106", h.Count(), h.Sum())
	}
	if m := h.Mean(); m < 221 || m > 222 {
		t.Fatalf("histogram mean = %f, want ~221.2", m)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter handle")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("same name must return the same gauge handle")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("same name must return the same histogram handle")
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	c.Inc()
	g.Set(10)
	g.Add(1)
	g.SetMax(99)
	h.Observe(42)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded values: c=%d g=%d h=%d",
			c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

// TestRegistryConcurrentEmitters hammers one registry from many
// goroutines while another flips the enabled switch and snapshots —
// the -race run for the tentpole's "concurrency-safe registry" claim.
func TestRegistryConcurrentEmitters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat_ns")
	const (
		emitters = 8
		perG     = 2000
	)
	var wg sync.WaitGroup
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.SetMax(int64(id*perG + j))
				h.Observe(int64(j % 128))
				// Handle registration races too.
				r.Counter("hot_total").Add(0)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != emitters*perG {
		t.Fatalf("counter = %d, want %d", got, emitters*perG)
	}
	if h.Count() != emitters*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), emitters*perG)
	}
	if g.Value() != emitters*perG-1 {
		t.Fatalf("gauge max = %d, want %d", g.Value(), emitters*perG-1)
	}
}

func TestHistogramQuantileAndBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// Power-of-two buckets: the median of 1..1000 lands in the bucket
	// holding 512, i.e. the upper bound must be >= 500 and a power of 2.
	q := h.Quantile(0.5)
	if q < 500 || q > 1024 {
		t.Fatalf("p50 = %d, want within [500, 1024]", q)
	}
	if p100 := h.Quantile(1); p100 < 1000 {
		t.Fatalf("p100 = %d, want >= 1000", p100)
	}
}

func TestSnapshotAndPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-4)
	r.Histogram("c_ns").Observe(9)
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "a_total" || snap.Counters[0].Value != 3 {
		t.Fatalf("bad counter snapshot: %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != -4 {
		t.Fatalf("bad gauge snapshot: %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("bad histogram snapshot: %+v", snap.Histograms)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b gauge",
		"b -4",
		"# TYPE c_ns histogram",
		`c_ns_bucket{le="+Inf"} 1`,
		"c_ns_sum 9",
		"c_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
