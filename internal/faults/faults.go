// Package faults is a deterministic, seed-driven fault injector for
// the solving pipeline. It exists so the degradation guarantees of
// docs/ROBUSTNESS.md can be exercised on demand: injected faults force
// the failure modes a production deployment sees under load — solver
// Unknowns, hung solver calls, cache evictions, worker panics — without
// depending on timing or luck.
//
// Decisions are pure functions of (seed, kind, per-kind counter): with
// a fixed seed and a fixed query order the same calls fault on every
// run. Under concurrency the counter values goroutines observe may
// interleave differently, but the hit *fraction* stays at the
// configured rate and every consumer treats a hit as a sound
// weakening, so properties (slice supersets, verdict weakening) hold
// for any interleaving.
//
// An Injector is installed process-wide with Install (the binaries do
// this from their -fault-* flags) and consulted through the package
// functions; a nil/absent injector makes every check a single atomic
// load. Injection sites live in internal/smt (SolverUnknown,
// SolverStall, CacheEvict) and internal/cegar (WorkerPanic).
package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"pathslice/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind int

// The fault kinds.
const (
	// SolverUnknown forces a solver call to return StatusUnknown
	// without running the decision procedure.
	SolverUnknown Kind = iota
	// SolverStall makes a solver call hang for Config.Stall (bounded
	// by the caller's context), simulating a hung decision procedure.
	SolverStall
	// CacheEvict evicts the queried key from the solver result cache
	// before lookup, forcing a re-solve and exercising concurrent
	// eviction paths.
	CacheEvict
	// WorkerPanic panics inside a CEGAR solver-worker task; the pool
	// must recover it and degrade the predicate valuation to unknown.
	WorkerPanic

	// The wire kinds below are consumed by Proxy (proxy.go), the
	// network-level half of the campaign (docs/ROBUSTNESS.md): the
	// same seeded machinery, applied to TCP connections instead of
	// solver queries.

	// ConnReset aborts a proxied connection (RST, not FIN) — before
	// any byte or mid-response, depending on the draw.
	ConnReset
	// WireStall freezes a proxied response stream for the configured
	// stall duration, simulating a hung peer or a saturated link.
	WireStall
	// PartialWrite truncates a proxied response after a deterministic
	// prefix and aborts the connection.
	PartialWrite
	// CorruptByte flips one byte of a proxied stream — the fault the
	// end-to-end checksum headers exist to catch.
	CorruptByte

	numKinds
)

// String names the kind as it appears in flags and metrics.
func (k Kind) String() string {
	switch k {
	case SolverUnknown:
		return "solver-unknown"
	case SolverStall:
		return "solver-stall"
	case CacheEvict:
		return "cache-evict"
	case WorkerPanic:
		return "worker-panic"
	case ConnReset:
		return "conn-reset"
	case WireStall:
		return "wire-stall"
	case PartialWrite:
		return "partial-write"
	case CorruptByte:
		return "corrupt-byte"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Registry metrics (see docs/OBSERVABILITY.md): one total plus a
// per-kind breakdown, counted at the moment a fault fires.
var (
	mInjected = obs.Default().Counter("faults_injected_total")
	mPerKind  = [numKinds]*obs.Counter{
		SolverUnknown: obs.Default().Counter("faults_solver_unknown_total"),
		SolverStall:   obs.Default().Counter("faults_solver_stall_total"),
		CacheEvict:    obs.Default().Counter("faults_cache_evict_total"),
		WorkerPanic:   obs.Default().Counter("faults_worker_panic_total"),
		ConnReset:     obs.Default().Counter("faults_conn_reset_total"),
		WireStall:     obs.Default().Counter("faults_wire_stall_total"),
		PartialWrite:  obs.Default().Counter("faults_partial_write_total"),
		CorruptByte:   obs.Default().Counter("faults_corrupt_byte_total"),
	}
)

// Config describes an injection campaign.
type Config struct {
	// Seed drives every decision; the same seed and query order
	// reproduce the same faults.
	Seed int64
	// Rates maps each kind to its injection probability in [0, 1].
	// Absent kinds never fire.
	Rates map[Kind]float64
	// Stall is how long an injected SolverStall hangs (callers bound
	// it by their context deadline). Zero disables stalling even when
	// the SolverStall rate is positive.
	Stall time.Duration
}

// Injector makes deterministic fault decisions. Safe for concurrent
// use.
type Injector struct {
	seed     int64
	stall    time.Duration
	rates    [numKinds]uint64 // threshold in [0, 2^63): hit when hash < threshold
	draws    [numKinds]atomic.Uint64
	injected [numKinds]atomic.Int64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, stall: cfg.Stall}
	for k, r := range cfg.Rates {
		if k < 0 || k >= numKinds {
			continue
		}
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		in.rates[k] = uint64(r * float64(uint64(1)<<63))
	}
	return in
}

// Should reports (and records) whether the next operation of the given
// kind faults. Each call consumes one draw.
func (in *Injector) Should(k Kind) bool {
	if in == nil || k < 0 || k >= numKinds || in.rates[k] == 0 {
		return false
	}
	n := in.draws[k].Add(1)
	h := splitmix64(uint64(in.seed) ^ (uint64(k)+1)<<56 ^ n)
	if h>>1 >= in.rates[k] { // top 63 bits vs threshold
		return false
	}
	in.injected[k].Add(1)
	mInjected.Inc()
	mPerKind[k].Inc()
	return true
}

// StallDuration returns how long an injected SolverStall hangs.
func (in *Injector) StallDuration() time.Duration {
	if in == nil {
		return 0
	}
	return in.stall
}

// Injected returns how many faults of the kind have fired so far.
func (in *Injector) Injected(k Kind) int64 {
	if in == nil || k < 0 || k >= numKinds {
		return 0
	}
	return in.injected[k].Load()
}

// Draws returns how many decisions of the kind have been made so far,
// so callers can verify the observed injection fraction.
func (in *Injector) Draws(k Kind) int64 {
	if in == nil || k < 0 || k >= numKinds {
		return 0
	}
	return int64(in.draws[k].Load())
}

// splitmix64 is the SplitMix64 mixing function — a bijective avalanche
// over 64 bits, plenty for rate decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Process-wide installation

var active atomic.Pointer[Injector]

// Install makes in the process-wide injector consulted by the package
// functions (nil uninstalls). Returns the previous injector so tests
// can restore it.
func Install(in *Injector) *Injector { return active.Swap(in) }

// Uninstall removes the process-wide injector.
func Uninstall() { active.Store(nil) }

// Active returns the installed injector (nil when none).
func Active() *Injector { return active.Load() }

// Should consults the installed injector; with none installed it is a
// single atomic load returning false.
func Should(k Kind) bool { return active.Load().Should(k) }
