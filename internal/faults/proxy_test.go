package faults

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back, closing
// its write side when the client half-closes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln
}

// exchange dials the proxy, writes payload, half-closes, and reads the
// echo back.
func exchange(t *testing.T, addr string, payload []byte) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(payload); err != nil {
		return nil, err
	}
	halfCloseWrite(c)
	return io.ReadAll(c)
}

func TestProxyCleanPassThrough(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), nil)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	payload := bytes.Repeat([]byte("pathslice "), 100)
	got, err := exchange(t, p.Addr(), payload)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("clean proxy altered %d bytes", diffBytes(got, payload))
	}
}

func TestProxyCorruptsDeterministically(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	run := func() []int {
		in := New(Config{Seed: 7, Rates: map[Kind]float64{CorruptByte: 1}})
		p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), in)
		if err != nil {
			t.Fatalf("NewProxy: %v", err)
		}
		defer p.Close()
		var diffs []int
		payload := bytes.Repeat([]byte("pathslice "), 100) // 1000 bytes > any corruptAt
		for i := 0; i < 4; i++ {
			got, err := exchange(t, p.Addr(), payload)
			if err != nil {
				t.Fatalf("exchange %d: %v", i, err)
			}
			if len(got) != len(payload) {
				t.Fatalf("exchange %d: length changed %d -> %d", i, len(payload), len(got))
			}
			d := diffBytes(got, payload)
			if d != 1 {
				t.Fatalf("exchange %d: %d bytes corrupted, want exactly 1", i, d)
			}
			diffs = append(diffs, firstDiff(got, payload))
		}
		return diffs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption offsets not reproducible: %v vs %v", a, b)
		}
	}
}

func TestProxyResetsConnections(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	in := New(Config{Seed: 3, Rates: map[Kind]float64{ConnReset: 1}})
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), in)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	payload := bytes.Repeat([]byte("x"), 1000)
	got, err := exchange(t, p.Addr(), payload)
	if err == nil && len(got) == len(payload) {
		t.Fatal("rate-1 reset proxy completed a full exchange")
	}
	if in.Injected(ConnReset) == 0 {
		t.Fatal("no reset recorded")
	}
}

func TestProxySetTarget(t *testing.T) {
	ln1 := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", ln1.Addr().String(), nil)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	if _, err := exchange(t, p.Addr(), []byte("one")); err != nil {
		t.Fatalf("exchange via target 1: %v", err)
	}
	ln1.Close() // old daemon dies
	ln2 := echoServer(t)
	defer ln2.Close()
	p.SetTarget(ln2.Addr().String())
	got, err := exchange(t, p.Addr(), []byte("two"))
	if err != nil || string(got) != "two" {
		t.Fatalf("exchange via new target: %q, %v", got, err)
	}
}

func diffBytes(a, b []byte) int {
	n := 0
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			n++
		}
	}
	return n
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			return i
		}
	}
	return -1
}
