package faults

import (
	"flag"
	"time"
)

// FlagConfig registers the standard -fault-* flags on fs and returns a
// function to call after parsing: it yields the resulting Config, or
// nil when every rate is zero (no injection requested). All three
// binaries share this wiring so the flag surface stays identical
// (docs/ROBUSTNESS.md).
func FlagConfig(fs *flag.FlagSet) func() *Config {
	seed := fs.Int64("fault-seed", 1, "fault injection: deterministic seed")
	unknown := fs.Float64("fault-unknown", 0, "fault injection: rate in [0,1] of solver queries forced to unknown")
	stall := fs.Float64("fault-stall", 0, "fault injection: rate in [0,1] of solver queries that stall")
	stallFor := fs.Duration("fault-stall-for", 50*time.Millisecond, "fault injection: duration of an injected solver stall")
	evict := fs.Float64("fault-evict", 0, "fault injection: rate in [0,1] of cache lookups whose entry is evicted first")
	wpanic := fs.Float64("fault-panic", 0, "fault injection: rate in [0,1] of solver-worker tasks that panic")
	return func() *Config {
		if *unknown == 0 && *stall == 0 && *evict == 0 && *wpanic == 0 {
			return nil
		}
		return &Config{
			Seed:  *seed,
			Stall: *stallFor,
			Rates: map[Kind]float64{
				SolverUnknown: *unknown,
				SolverStall:   *stall,
				CacheEvict:    *evict,
				WorkerPanic:   *wpanic,
			},
		}
	}
}
