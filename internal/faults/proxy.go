package faults

// Proxy extends the injection campaign to the wire: a TCP forwarder
// that — driven by the same seeded, deterministic Injector machinery
// as the solver-level faults — resets connections, stalls streams,
// truncates writes, and flips bytes between a client and a daemon.
// cmd/chaossmoke puts a real slicerd and a real internal/client on
// either side of one and asserts the system-level contract: typed,
// retryable degradations and zero wrong verdicts, no matter what the
// network does (docs/ROBUSTNESS.md).
//
// Fault decisions are drawn per accepted connection, in accept order,
// so a fixed seed and a serial client replay the same schedule. The
// target is swappable (SetTarget) because chaos tests kill and
// restart the daemon on a new address mid-run.

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// connFaults is one connection's drawn fault plan.
type connFaults struct {
	resetEarly bool // RST before forwarding anything
	resetMid   bool // RST after resetAfter response bytes
	stall      bool // freeze the response stream once
	partial    bool // truncate the response after partialAfter bytes
	corrupt    bool // flip one byte of the response stream

	resetAfter   int
	partialAfter int
	corruptAt    int
	stallFor     time.Duration
}

// Proxy is the seed-driven faulty TCP forwarder. Create with NewProxy,
// point clients at Addr(), stop with Close.
type Proxy struct {
	ln     net.Listener
	in     *Injector
	target atomic.Value // string
	conns  atomic.Uint64
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards to
// target through the fault plan drawn from in. A nil injector forwards
// cleanly — useful as the control arm of a chaos run.
func NewProxy(listenAddr, target string, in *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, in: in}
	p.target.Store(target)
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the current upstream address.
func (p *Proxy) Target() string { return p.target.Load().(string) }

// SetTarget repoints the proxy at a new upstream — chaos tests restart
// the daemon on a fresh port and keep the same client-facing address.
func (p *Proxy) SetTarget(addr string) { p.target.Store(addr) }

// Conns returns how many connections have been accepted.
func (p *Proxy) Conns() uint64 { return p.conns.Load() }

// Close stops accepting and waits for in-flight connection handlers.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.conns.Add(1)
		plan := p.drawPlan(n)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, plan)
		}()
	}
}

// drawPlan consumes this connection's fault draws. Offsets come from a
// splitmix chain over (seed, conn index) so the same run positions
// faults identically; they are sized for HTTP exchanges in the
// hundreds-to-thousands of bytes.
func (p *Proxy) drawPlan(conn uint64) connFaults {
	var f connFaults
	if p.in == nil {
		return f
	}
	f.resetEarly = p.in.Should(ConnReset)
	f.resetMid = !f.resetEarly && p.in.Should(ConnReset)
	f.stall = p.in.Should(WireStall)
	f.partial = p.in.Should(PartialWrite)
	f.corrupt = p.in.Should(CorruptByte)
	h := splitmix64(uint64(p.in.seed)*0x9e3779b97f4a7c15 ^ conn)
	f.resetAfter = int(h % 512)
	h = splitmix64(h)
	f.partialAfter = int(h % 256)
	h = splitmix64(h)
	f.corruptAt = int(h % 600)
	f.stallFor = p.in.stall
	if f.stallFor <= 0 {
		f.stall = false
	}
	return f
}

func (p *Proxy) handle(client net.Conn, f connFaults) {
	if f.resetEarly {
		abortive(client)
		return
	}
	up, err := net.DialTimeout("tcp", p.Target(), 2*time.Second)
	if err != nil {
		// Upstream down (mid-restart): an abortive close gives the
		// client an honest connection error to retry on.
		abortive(client)
		return
	}

	done := make(chan struct{}, 2)
	// Request path: forwarded clean — request-side corruption is
	// exercised separately (the server's X-Content-SHA256 check has
	// its own unit tests); the proxy focuses its violence on the
	// response path, where a flipped verdict would be dangerous.
	go func() {
		_, _ = io.Copy(up, client)
		halfCloseWrite(up)
		done <- struct{}{}
	}()
	// Response path: the fault plan applies here.
	go func() {
		p.pump(client, up, f)
		done <- struct{}{}
	}()
	<-done
	<-done
	client.Close()
	up.Close()
}

// pump copies the response stream from src to dst, applying the plan.
func (p *Proxy) pump(dst, src net.Conn, f connFaults) {
	buf := make([]byte, 2048)
	total := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if f.corrupt && total+n > f.corruptAt {
				off := f.corruptAt - total
				if off < 0 || off >= n {
					off = n - 1
				}
				chunk[off] ^= 0x04 // flips a digit/letter, keeps it printable-ish
				f.corrupt = false
			}
			if f.stall {
				f.stall = false
				time.Sleep(f.stallFor)
			}
			if f.partial && total+n > f.partialAfter {
				keep := f.partialAfter - total
				if keep < 0 {
					keep = 0
				}
				_, _ = dst.Write(chunk[:keep])
				abortive(dst)
				abortive(src)
				return
			}
			if f.resetMid && total+n > f.resetAfter {
				keep := f.resetAfter - total
				if keep < 0 {
					keep = 0
				}
				_, _ = dst.Write(chunk[:keep])
				abortive(dst)
				abortive(src)
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			total += n
		}
		if err != nil {
			halfCloseWrite(dst)
			return
		}
	}
}

// abortive closes c with RST semantics (SO_LINGER 0) so the peer sees
// "connection reset", not a clean EOF a parser could mistake for a
// complete message.
func abortive(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// halfCloseWrite propagates EOF without tearing down the read side.
func halfCloseWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}
