// Package synth deterministically generates MiniC benchmark programs
// with the structural characteristics of the paper's evaluation
// subjects (Table 1): application programs of a given size and
// procedure count, whose file-handling code is scattered across
// "check" functions, interleaved with loops, arithmetic-heavy
// procedures that are hard to reason about statically, and deep call
// chains — the structures that make counterexample traces long and
// path slices short.
//
// The paper checked real C programs (fcron, wuftpd, make, privoxy,
// ijpeg, openssh, muh, gcc). Those sources and a C frontend are outside
// this reproduction's scope, so each benchmark is substituted by a
// generated program matching the paper's reported structure: LOC scale,
// number of procedures, number of check functions and instrumented
// sites, and the seeded property violations the paper found (3 in
// wuftpd, 1 in make, 2 in privoxy). See DESIGN.md §1 for why this
// preserves the evaluated behavior.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern classifies a check function's file-usage shape.
type Pattern int

// The file-usage patterns.
const (
	// PatternSafe: open, null-check, use, close.
	PatternSafe Pattern = iota
	// PatternNullCheckMissing: the wuftpd ftpd_popen bug (Fig. 4) — a
	// helper returns a possibly-NULL handle that is used unchecked.
	PatternNullCheckMissing
	// PatternDoubleClose: close on both sides of a join.
	PatternDoubleClose
	// PatternUseAfterClose: a use reachable after close.
	PatternUseAfterClose
	// PatternDiverging: safety depends on a loop iteration count, which
	// makes refinement enumerate loop unrollings — a timeout.
	PatternDiverging
	// PatternHeap: the handle escapes through a pointer (the muh
	// hash-table phenomenon): the checker cannot track it and reports a
	// false alarm.
	PatternHeap
)

// Profile describes one benchmark to generate.
type Profile struct {
	Name        string
	Description string
	// PaperLOC is the paper's reported size (before/after preprocess).
	PaperLOC string
	// PaperProcedures is the paper's modeled-procedure count.
	PaperProcedures int
	// PaperChecks is the paper's "Number of checks" (functions/sites).
	PaperChecks string
	// PaperResults is the paper's safe/error/timeout triple.
	PaperResults string
	// PaperRefinements is the paper's refinement count.
	PaperRefinements int

	// CheckFns is how many check functions to generate.
	CheckFns int
	// SitesPerFn is the instrumented sites per check function (approx).
	SitesPerFn int
	// Patterns assigns non-safe patterns to check function indices.
	Patterns map[int]Pattern
	// NoiseFns is the number of irrelevant arithmetic procedures.
	NoiseFns int
	// ComplexFns is the number of statically-hard procedures.
	ComplexFns int
	// ChainDepth adds a call chain of this depth in front of each check
	// function (deep call stacks, §4.2).
	ChainDepth int
	// LoopBound is the iteration bound of generated loops.
	LoopBound int
	// Seed drives all generation decisions.
	Seed int64
}

// Generate emits the MiniC source of the profile's program. The output
// calls the file intrinsics (fopen/fclose/fgets/...) and is meant to be
// run through instrument.Instrument.
func Generate(p Profile) string {
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	return g.run()
}

type gen struct {
	p   Profile
	rng *rand.Rand
	b   strings.Builder
}

func (g *gen) printf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *gen) run() string {
	p := g.p
	g.printf("// Generated benchmark %q (%s).\n", p.Name, p.Description)
	g.printf("// Paper subject: %s LOC, %d procedures, checks %s.\n\n",
		p.PaperLOC, p.PaperProcedures, p.PaperChecks)
	g.printf("int cfg0 = %d;\nint cfg1;\nint cfg2;\n\n", g.rng.Intn(5))

	for i := 0; i < p.NoiseFns; i++ {
		g.noiseFn(i)
	}
	for i := 0; i < p.ComplexFns; i++ {
		g.complexFn(i)
	}
	for i := 0; i < p.CheckFns; i++ {
		g.checkFn(i)
	}
	for i := 0; i < p.CheckFns; i++ {
		g.chainFns(i)
	}
	g.mainFn()
	return g.b.String()
}

// noiseFn is a terminating arithmetic loop with no file activity.
func (g *gen) noiseFn(i int) {
	bound := 1 + g.rng.Intn(g.p.LoopBound)
	g.printf("void noise%d() {\n", i)
	g.printf("  int t = %d;\n", g.rng.Intn(7))
	g.printf("  for (int j = 0; j < %d; j = j + 1) {\n", bound)
	g.printf("    t = t + j * %d;\n", 1+g.rng.Intn(4))
	g.printf("    if (t > %d) { t = t - %d; }\n", 50+g.rng.Intn(100), 10+g.rng.Intn(40))
	g.printf("  }\n")
	g.printf("  cfg2 = t;\n")
	g.printf("}\n\n")
}

// complexFn does nonlinear arithmetic that defeats static reasoning —
// the paper's `complex()` (Fig. 2).
func (g *gen) complexFn(i int) {
	g.printf("int complex%d(int n) {\n", i)
	g.printf("  int r = 1;\n")
	g.printf("  for (int j = 1; j <= n; j = j + 1) {\n")
	g.printf("    r = r * j %% %d + j / %d;\n", 97+i, 2+i%3)
	g.printf("  }\n")
	g.printf("  return r;\n")
	g.printf("}\n\n")
}

// checkFn generates one check function according to its pattern.
func (g *gen) checkFn(i int) {
	pattern := PatternSafe
	if pt, ok := g.p.Patterns[i]; ok {
		pattern = pt
	}
	switch pattern {
	case PatternNullCheckMissing:
		// Helper that may return NULL without the caller checking —
		// the ftpd_popen shape of Figure 4.
		g.printf("int popen%d() {\n", i)
		g.printf("  int h = fopen();\n")
		g.printf("  if (cfg0 > 2) {\n    return 0;\n  }\n")
		g.printf("  return h;\n")
		g.printf("}\n\n")
		g.printf("void check%d() {\n", i)
		g.printf("  int f = popen%d();\n", i)
		g.noiseCallsInline(i)
		g.printf("  int line = fgets(f);\n") // BUG: no null check
		g.printf("  cfg1 = line;\n")
		g.printf("  if (f != 0) { fclose(f); }\n")
		g.printf("}\n\n")
	case PatternDoubleClose:
		g.printf("void check%d() {\n", i)
		g.printf("  int f = fopen();\n")
		g.printf("  if (f != 0) {\n")
		g.printf("    fputs(f);\n")
		g.printf("    if (cfg0 > 1) { fclose(f); }\n")
		g.noiseCallsInline(i)
		g.printf("    fclose(f);\n") // BUG: double close when cfg0 > 1
		g.printf("  }\n")
		g.printf("}\n\n")
	case PatternUseAfterClose:
		g.printf("void check%d() {\n", i)
		g.printf("  int f = fopen();\n")
		g.printf("  if (f != 0) {\n")
		g.printf("    fclose(f);\n")
		g.noiseCallsInline(i)
		g.printf("    fprintf(f);\n") // BUG: use after close
		g.printf("  }\n")
		g.printf("}\n\n")
	case PatternDiverging:
		// Safe only because the loop opens exactly once; proving it
		// requires loop facts that plain predicate refinement keeps
		// enumerating.
		g.printf("void check%d() {\n", i)
		g.printf("  int f = 0;\n")
		g.printf("  int st = 0;\n")
		g.printf("  for (int j = 0; j < %d; j = j + 1) {\n", 4+g.p.LoopBound)
		g.printf("    if (j == cfg2 * cfg2 + 1) {\n")
		g.printf("      f = fopen();\n")
		g.printf("      if (f != 0) { st = 1; }\n")
		g.printf("    }\n")
		g.printf("  }\n")
		g.printf("  if (st == 1) {\n    fgets(f);\n    fclose(f);\n  }\n")
		g.printf("}\n\n")
	case PatternHeap:
		// The muh shape: the handle round-trips through the heap, so
		// the typestate is lost and a false alarm results.
		g.printf("int slot%d;\n", i)
		g.printf("int *tbl%d;\n", i)
		g.printf("void check%d() {\n", i)
		g.printf("  tbl%d = &slot%d;\n", i, i)
		g.printf("  int f = fopen();\n")
		g.printf("  if (f != 0) {\n")
		g.printf("    *tbl%d = f;\n", i)
		g.printf("    int h = *tbl%d;\n", i)
		g.printf("    fgets(h);\n")
		g.printf("    fclose(h);\n")
		g.printf("  }\n")
		g.printf("}\n\n")
	default: // PatternSafe
		g.printf("void check%d() {\n", i)
		g.printf("  int f = fopen();\n")
		g.printf("  if (f != 0) {\n")
		g.noiseCallsInline(i)
		for s := 0; s < g.p.SitesPerFn-2; s++ {
			switch g.rng.Intn(3) {
			case 0:
				g.printf("    fgets(f);\n")
			case 1:
				g.printf("    fputs(f);\n")
			default:
				g.printf("    fprintf(f);\n")
			}
			if g.p.NoiseFns > 0 && g.rng.Intn(2) == 0 {
				g.printf("    noise%d();\n", g.rng.Intn(g.p.NoiseFns))
			}
		}
		g.printf("    fclose(f);\n")
		g.printf("  }\n")
		g.printf("}\n\n")
	}
}

// noiseCallsInline sprinkles loop/noise/complex calls so the paths to
// the property operations are long.
func (g *gen) noiseCallsInline(i int) {
	if g.p.NoiseFns > 0 {
		g.printf("  noise%d();\n", i%g.p.NoiseFns)
	}
	if g.p.ComplexFns > 0 && g.rng.Intn(2) == 0 {
		g.printf("  cfg1 = complex%d(%d);\n", i%g.p.ComplexFns, 2+g.rng.Intn(5))
	}
	g.printf("  for (int w = 0; w < %d; w = w + 1) {\n    cfg2 = cfg2 + w;\n  }\n",
		1+g.rng.Intn(g.p.LoopBound))
}

// chainFns builds the deep call chain guarding check i (§4.2: "paths
// where the path to the target has a deep call stack").
func (g *gen) chainFns(i int) {
	depth := g.p.ChainDepth
	if depth <= 0 {
		return
	}
	// chain_i_d calls chain_i_(d+1) under a guard on its own local.
	for d := depth - 1; d >= 0; d-- {
		g.printf("void chain%d_%d(int k) {\n", i, d)
		g.printf("  int t = k + %d;\n", 1+g.rng.Intn(3))
		if d == depth-1 {
			g.printf("  if (t > 0) {\n    check%d();\n  }\n", i)
		} else {
			g.printf("  if (t > 0) {\n    chain%d_%d(t);\n  }\n", i, d+1)
		}
		g.printf("}\n\n")
	}
}

func (g *gen) mainFn() {
	g.printf("void main() {\n")
	g.printf("  cfg0 = nondet();\n")
	g.printf("  cfg1 = nondet();\n")
	if g.p.NoiseFns > 0 {
		g.printf("  for (int r = 0; r < %d; r = r + 1) {\n", 1+g.rng.Intn(3))
		g.printf("    noise%d();\n", g.rng.Intn(g.p.NoiseFns))
		g.printf("  }\n")
	}
	for i := 0; i < g.p.CheckFns; i++ {
		if g.p.ChainDepth > 0 {
			g.printf("  chain%d_0(%d);\n", i, 1+g.rng.Intn(4))
		} else {
			g.printf("  check%d();\n", i)
		}
	}
	g.printf("}\n")
}

// ---------------------------------------------------------------------------
// Paper profiles

// PaperProfiles returns the Table 1 subjects (plus muh and a gcc-class
// profile for Figure 6), scaled by the given factor: scale 1.0 aims at
// check-function counts matching the paper; smaller scales shrink the
// workload proportionally for fast runs. Scale does not change the
// seeded bug patterns.
func PaperProfiles(scale float64) []Profile {
	sc := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			return 1
		}
		return v
	}
	return []Profile{
		{
			Name: "fcron", Description: "cron daemon", PaperLOC: "12K/14K",
			PaperProcedures: 121, PaperChecks: "10/25", PaperResults: "10/0/0",
			PaperRefinements: 15,
			CheckFns:         sc(10), SitesPerFn: 3, NoiseFns: sc(14), ComplexFns: sc(2),
			ChainDepth: 2, LoopBound: 6, Seed: 101,
			Patterns: map[int]Pattern{},
		},
		{
			Name: "wuftpd", Description: "ftp server", PaperLOC: "24K/35K",
			PaperProcedures: 205, PaperChecks: "33/59", PaperResults: "30/3/0",
			PaperRefinements: 74,
			CheckFns:         sc(33), SitesPerFn: 2, NoiseFns: sc(24), ComplexFns: sc(3),
			ChainDepth: 3, LoopBound: 8, Seed: 102,
			// Bug indices are low so they survive workload scaling.
			Patterns: map[int]Pattern{
				1: PatternNullCheckMissing,
				4: PatternNullCheckMissing,
				9: PatternNullCheckMissing,
			},
		},
		{
			Name: "make", Description: "make", PaperLOC: "30K/39K",
			PaperProcedures: 296, PaperChecks: "19/44", PaperResults: "18/1/0",
			PaperRefinements: 35,
			CheckFns:         sc(19), SitesPerFn: 3, NoiseFns: sc(30), ComplexFns: sc(4),
			ChainDepth: 2, LoopBound: 7, Seed: 103,
			Patterns: map[int]Pattern{2: PatternUseAfterClose},
		},
		{
			Name: "privoxy", Description: "web proxy", PaperLOC: "38K/51K",
			PaperProcedures: 291, PaperChecks: "15/54", PaperResults: "13/2/0",
			PaperRefinements: 13,
			CheckFns:         sc(15), SitesPerFn: 4, NoiseFns: sc(28), ComplexFns: sc(3),
			ChainDepth: 2, LoopBound: 6, Seed: 104,
			Patterns: map[int]Pattern{
				1: PatternNullCheckMissing,
				3: PatternDoubleClose,
			},
		},
		{
			Name: "ijpeg", Description: "jpeg compression", PaperLOC: "31K/37K",
			PaperProcedures: 403, PaperChecks: "21/43", PaperResults: "21/0/0",
			PaperRefinements: 23,
			CheckFns:         sc(21), SitesPerFn: 2, NoiseFns: sc(40), ComplexFns: sc(8),
			ChainDepth: 1, LoopBound: 9, Seed: 105,
			Patterns: map[int]Pattern{},
		},
		{
			Name: "openssh", Description: "ssh server", PaperLOC: "50K/114K",
			PaperProcedures: 745, PaperChecks: "24/84", PaperResults: "23/0/1",
			PaperRefinements: 135,
			CheckFns:         sc(24), SitesPerFn: 4, NoiseFns: sc(70), ComplexFns: sc(10),
			ChainDepth: 4, LoopBound: 10, Seed: 106,
			Patterns: map[int]Pattern{3: PatternDiverging},
		},
	}
}

// MuhProfile is the §5 "Limitations" subject: an IRC proxy storing file
// pointers in a heap table, defeating the typestate instrumentation.
func MuhProfile(scale float64) Profile {
	sc := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			return 1
		}
		return v
	}
	pats := make(map[int]Pattern)
	// "9 checks failed" out of 14 check functions: make most of the
	// file handling flow through the table.
	for i := 0; i < sc(14); i++ {
		if i%3 != 2 {
			pats[i] = PatternHeap
		}
	}
	return Profile{
		Name: "muh", Description: "IRC proxy", PaperLOC: "-/15K",
		PaperProcedures: 152, PaperChecks: "14/25", PaperResults: "heap-imprecision false alarms",
		CheckFns: sc(14), SitesPerFn: 2, NoiseFns: sc(12), ComplexFns: sc(1),
		ChainDepth: 1, LoopBound: 5, Seed: 201, Patterns: pats,
	}
}

// GccProfile is the Figure 6 subject: a very large program (the paper:
// 2026 procedures, 703 sites in 132 functions) whose counterexamples
// reach tens of thousands of basic blocks.
func GccProfile(scale float64) Profile {
	sc := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			return 1
		}
		return v
	}
	return Profile{
		Name: "gcc", Description: "C compiler (Spec95)", PaperLOC: "~200K",
		PaperProcedures: 2026, PaperChecks: "132/703", PaperResults: "76/132 finished",
		CheckFns: sc(132), SitesPerFn: 5, NoiseFns: sc(180), ComplexFns: sc(20),
		ChainDepth: 5, LoopBound: 12, Seed: 301,
		Patterns: map[int]Pattern{},
	}
}
