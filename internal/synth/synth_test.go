package synth_test

import (
	"strings"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
	"pathslice/internal/synth"
)

// compileProfile generates, instruments, and builds a profile's
// program, failing the test on any stage error.
func compileProfile(t *testing.T, p synth.Profile) (*instrument.Result, *cfa.Program) {
	t.Helper()
	src := synth.Generate(p)
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("%s: parse: %v\n%s", p.Name, err, firstLines(src, 40))
	}
	ins, err := instrument.Instrument(prog)
	if err != nil {
		t.Fatalf("%s: instrument: %v", p.Name, err)
	}
	info, err := types.Check(ins.Prog)
	if err != nil {
		t.Fatalf("%s: typecheck: %v", p.Name, err)
	}
	cprog, err := cfa.Build(info)
	if err != nil {
		t.Fatalf("%s: cfa: %v", p.Name, err)
	}
	return ins, cprog
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestGenerateDeterministic(t *testing.T) {
	p := synth.PaperProfiles(0.2)[0]
	a := synth.Generate(p)
	b := synth.Generate(p)
	if a != b {
		t.Fatal("generation must be deterministic for a fixed profile")
	}
}

func TestAllPaperProfilesCompile(t *testing.T) {
	for _, p := range synth.PaperProfiles(0.2) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ins, cprog := compileProfile(t, p)
			if len(ins.Clusters) == 0 {
				t.Error("no check clusters generated")
			}
			if len(cprog.ErrorLocs()) == 0 {
				t.Error("no error locations after instrumentation")
			}
		})
	}
}

func TestMuhAndGccProfilesCompile(t *testing.T) {
	for _, p := range []synth.Profile{synth.MuhProfile(0.3), synth.GccProfile(0.05)} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ins, _ := compileProfile(t, p)
			if ins.TotalSites == 0 {
				t.Error("no sites")
			}
		})
	}
}

func TestBugProfilesContainBugPatterns(t *testing.T) {
	profiles := synth.PaperProfiles(1.0)
	// wuftpd has 3 null-check bugs.
	wuftpd := profiles[1]
	if wuftpd.Name != "wuftpd" {
		t.Fatalf("profile order changed: %s", wuftpd.Name)
	}
	bugs := 0
	for _, pt := range wuftpd.Patterns {
		if pt == synth.PatternNullCheckMissing {
			bugs++
		}
	}
	if bugs != 3 {
		t.Errorf("wuftpd needs 3 seeded null-check bugs, got %d", bugs)
	}
	src := synth.Generate(wuftpd)
	if !strings.Contains(src, "popen1()") {
		t.Error("missing ftpd_popen-style helper")
	}
}

func TestGeneratedLocGrowsWithScale(t *testing.T) {
	small := synth.Generate(synth.PaperProfiles(0.1)[5])
	large := synth.Generate(synth.PaperProfiles(0.5)[5])
	if strings.Count(large, "\n") <= strings.Count(small, "\n") {
		t.Errorf("scale must grow the program: %d vs %d lines",
			strings.Count(small, "\n"), strings.Count(large, "\n"))
	}
}

func TestLongPathsAvailable(t *testing.T) {
	// The generated programs must admit long candidate paths to error
	// locations (the long-trace regime of Figures 5/6).
	_, cprog := compileProfile(t, synth.PaperProfiles(0.2)[1]) // wuftpd-class
	locs := cprog.ErrorLocs()
	if len(locs) == 0 {
		t.Fatal("no error locations")
	}
	var short, long cfa.Path
	for _, loc := range locs {
		if p := cfa.FindPath(cprog, loc, cfa.FindOptions{}); p != nil {
			short = p
			long = cfa.FindPath(cprog, loc, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 6})
			break
		}
	}
	if short == nil || long == nil {
		t.Fatal("no reachable error location in generated program")
	}
	if len(long) < 2*len(short) {
		t.Errorf("PreferLong should give much longer paths: %d vs %d", len(long), len(short))
	}
	if err := long.Validate(cprog); err != nil {
		t.Fatalf("long path invalid: %v", err)
	}
}
