package service

// Warm-state snapshots (docs/DEPLOYMENT.md). The value of a resident
// slicerd is state that took solver time to build: frame-summary
// tables, shared solver verdicts, compiled programs with their
// analyses. A restart — deploy, OOM-kill, node drain — throws all of
// it away and the next minutes of traffic pay cold-start prices.
// SaveSnapshot serializes that state to a versioned file (periodically
// and on graceful drain); RestoreSnapshot rebuilds it on boot.
//
// The soundness contract mirrors internal/summ's element-wise key
// verification: nothing from disk is ever trusted into an answer.
//
//   - The file carries a magic string and format version; any mismatch
//     discards the whole snapshot (cold boot).
//   - Every record carries a content checksum computed field by field;
//     a record that fails it is dropped.
//   - A program record must recompile from its embedded source to the
//     exact source hash AND cfa.ProgramFingerprint it was saved under,
//     or it is dropped — so summaries can never attach to a program
//     whose edges mean something else.
//   - Summary records go through summ.Table.Restore, which re-derives
//     both key hashes and the fast-apply vector and re-validates the
//     structure; at lookup time they still face the table's element-
//     wise segment/live-set comparison like any live insert.
//   - Solver verdicts are keyed by canonical formula serializations
//     (logic.Key): an intact key matches exactly the formula it
//     encodes or nothing, and corrupt records never survive the
//     checksum.
//
// A corrupt, truncated, stale, or adversarially edited snapshot can
// therefore only shrink the restored set — misses, never wrong
// answers. TestSnapshotCorruption flips bytes across the file and
// proves it.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/smt"
	"pathslice/internal/summ"
)

const (
	// snapMagic identifies the file type; the trailing byte is the
	// framing version (bump on container-format changes).
	snapMagic = "pslicsnap\x01"
	// snapVersion is the semantic version of the records: bump it
	// whenever the meaning of a summary decision vector, a canonical
	// formula key, or the fingerprint scheme changes, so stale
	// snapshots from older binaries are discarded wholesale.
	snapVersion = 1
)

// snapFile is the gob payload following the magic string.
type snapFile struct {
	Version  int
	SavedAt  int64 // unix milliseconds, informational
	Programs []snapProgram
	Verdicts []snapVerdict
}

// snapProgram is one program-LRU entry: enough to recompile (Source)
// and to prove the recompilation is the program the summaries were
// recorded against (Key, Fingerprint).
type snapProgram struct {
	Key         string
	Fingerprint uint64
	Source      string
	Tables      []snapTable
}

// snapTable is one per-option-set summary table.
type snapTable struct {
	Opts slicerKey
	Sums []snapSummary
}

// snapSummary pairs a summary with its content checksum.
type snapSummary struct {
	S     summ.Summary
	Check uint64
}

// snapVerdict is one shared solver-cache entry with its checksum.
type snapVerdict struct {
	Key   string
	Sat   bool
	Check uint64
}

// ---------------------------------------------------------------------------
// Checksums
//
// FNV-1a folded field by field with explicit length framing, so two
// different records can never hash equal by sliding bytes between
// fields. This is an integrity check against corruption (the threat is
// bit rot and truncation, not an adversary with write access to the
// snapshot *and* the intent to forge a colliding record — such an
// adversary could replace the binary instead).

type chk struct{ h uint64 }

func newChk() chk { return chk{h: 0xcbf29ce484222325} }

func (c *chk) byte(b byte) {
	c.h = (c.h ^ uint64(b)) * 0x100000001b3
}

func (c *chk) u64(v uint64) {
	for i := 0; i < 8; i++ {
		c.byte(byte(v >> (8 * i)))
	}
}

func (c *chk) str(s string) {
	c.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		c.byte(s[i])
	}
}

func (c *chk) lvals(ls []cfa.Lvalue) {
	c.u64(uint64(len(ls)))
	for _, l := range ls {
		c.str(l.Var)
		if l.Deref {
			c.byte(1)
		} else {
			c.byte(0)
		}
	}
}

func summaryChecksum(s *summ.Summary) uint64 {
	c := newChk()
	c.str(s.Callee)
	c.u64(uint64(len(s.EdgeIDs)))
	for _, id := range s.EdgeIDs {
		c.u64(uint64(uint32(id)))
	}
	c.lvals(s.Live)
	c.u64(uint64(len(s.Dec)))
	for _, d := range s.Dec {
		c.byte(d)
	}
	c.lvals(s.Kills)
	c.lvals(s.Adds)
	e := s.Effects
	for _, v := range [...]int{
		e.TakenAssign, e.TakenAssume, e.TakenCall,
		e.TakenReturn, e.SkippedFrames, e.SkippedGuardChains,
	} {
		c.u64(uint64(int64(v)))
	}
	return c.h
}

func verdictChecksum(key string, sat bool) uint64 {
	c := newChk()
	c.str(key)
	if sat {
		c.byte(1)
	} else {
		c.byte(0)
	}
	return c.h
}

// ---------------------------------------------------------------------------
// Save

// SaveSnapshot serializes the warm state — program-LRU sources and
// summary tables plus shared solver-cache verdicts — to path,
// atomically (write temp file, rename). Checkers' abstract-post memos
// are deliberately not snapshotted: they key on in-memory predicate
// identities that do not survive a process, and rebuilding them is
// exactly what the restored solver cache accelerates.
func (s *Server) SaveSnapshot(path string) error {
	if path == "" {
		return fmt.Errorf("service: no snapshot path configured")
	}
	f := s.collectSnapshot()
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		mSnapSaveErrors.Inc()
		return fmt.Errorf("service: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		mSnapSaveErrors.Inc()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		mSnapSaveErrors.Inc()
		return err
	}
	s.snapSaves.Add(1)
	s.snapLastBytes.Store(int64(buf.Len()))
	mSnapSaves.Inc()
	mSnapBytes.Set(int64(buf.Len()))
	return nil
}

// collectSnapshot gathers a consistent-enough view of the warm state.
// Programs are listed most-recently-used first; summaries are the
// immutable entries of each table at collection time. Concurrent
// inserts may or may not make the cut — a snapshot is a warm-up hint,
// not a transaction log.
func (s *Server) collectSnapshot() *snapFile {
	f := &snapFile{Version: snapVersion, SavedAt: time.Now().UnixMilli()}

	s.mu.Lock()
	states := make([]*programState, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		states = append(states, el.Value.(*programState))
	}
	s.mu.Unlock()

	for _, ps := range states {
		sp := snapProgram{Key: ps.key, Fingerprint: ps.fp, Source: ps.src}
		ps.mu.Lock()
		type tableRef struct {
			k slicerKey
			t *summ.Table
		}
		var tables []tableRef
		for k, sl := range ps.slicers {
			if sl.Summ != nil {
				tables = append(tables, tableRef{k, sl.Summ})
			}
		}
		ps.mu.Unlock()
		for _, tr := range tables {
			st := snapTable{Opts: tr.k}
			for _, sum := range tr.t.Export() {
				st.Sums = append(st.Sums, snapSummary{S: *sum, Check: summaryChecksum(sum)})
			}
			if len(st.Sums) > 0 {
				sp.Tables = append(sp.Tables, st)
			}
		}
		f.Programs = append(f.Programs, sp)
	}

	for _, e := range s.cache.Export() {
		f.Verdicts = append(f.Verdicts, snapVerdict{
			Key: e.Key, Sat: e.Sat, Check: verdictChecksum(e.Key, e.Sat),
		})
	}
	return f
}

// ---------------------------------------------------------------------------
// Restore

// RestoreSnapshot loads warm state from path. It returns the number of
// records (programs + summaries + verdicts) accepted after
// verification; every rejected record is counted in the
// slicerd_snapshot_dropped_total metric and the stats snapshot. Any
// error — missing file, bad magic, version skew, undecodable payload —
// leaves the server in its current (typically cold) state.
func (s *Server) RestoreSnapshot(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if !bytes.HasPrefix(raw, []byte(snapMagic)) {
		s.dropRecords(1)
		return 0, fmt.Errorf("service: %s: not a slicerd snapshot", path)
	}
	var f snapFile
	if err := gob.NewDecoder(bytes.NewReader(raw[len(snapMagic):])).Decode(&f); err != nil {
		s.dropRecords(1)
		return 0, fmt.Errorf("service: %s: undecodable snapshot: %w", path, err)
	}
	if f.Version != snapVersion {
		s.dropRecords(1)
		return 0, fmt.Errorf("service: %s: snapshot version %d, want %d", path, f.Version, snapVersion)
	}

	accepted := 0

	// Programs were saved MRU-first; restore oldest-first so the LRU
	// ends up in the saved recency order.
	for i := len(f.Programs) - 1; i >= 0; i-- {
		n, ok := s.restoreProgram(&f.Programs[i])
		accepted += n
		if !ok {
			continue
		}
	}

	var verdicts []smt.CacheEntry
	for _, v := range f.Verdicts {
		if verdictChecksum(v.Key, v.Sat) != v.Check {
			s.dropRecords(1)
			continue
		}
		verdicts = append(verdicts, smt.CacheEntry{Key: v.Key, Sat: v.Sat})
	}
	nv := s.cache.Restore(verdicts)
	accepted += nv
	s.snapRestoredVerdicts.Add(int64(nv))
	mSnapRestVerdicts.Add(int64(nv))
	return accepted, nil
}

// restoreProgram verifies and installs one program record. The boolean
// reports whether the program itself was accepted.
func (s *Server) restoreProgram(sp *snapProgram) (int, bool) {
	if sp.Source == "" || int64(len(sp.Source)) > s.cfg.MaxSourceBytes ||
		sourceKey(sp.Source) != sp.Key {
		s.dropRecords(1)
		return 0, false
	}
	prog, err := compile.Source(sp.Source)
	if err != nil {
		s.dropRecords(1)
		return 0, false
	}
	if cfa.ProgramFingerprint(prog) != sp.Fingerprint {
		s.dropRecords(1)
		return 0, false
	}
	ps := &programState{
		key:      sp.Key,
		fp:       sp.Fingerprint,
		src:      sp.Source,
		prog:     prog,
		slicers:  make(map[slicerKey]*core.Slicer),
		checkers: make(map[checkerKey]*checkerBox),
	}

	s.mu.Lock()
	if _, exists := s.progs[sp.Key]; exists {
		// Already resident (restore raced live traffic, or a test
		// restored twice): keep the live state, skip the record.
		s.mu.Unlock()
		return 0, false
	}
	s.insertProgramLocked(ps)
	s.mu.Unlock()

	accepted := 1
	s.snapRestoredPrograms.Add(1)
	mSnapRestPrograms.Inc()

	numEdges := prog.NumEdges()
	for _, st := range sp.Tables {
		if !st.Opts.Summaries {
			s.dropRecords(int64(len(st.Sums)))
			continue
		}
		sl := ps.slicer(st.Opts) // builds the analyses once, like a live miss
		if sl.Summ == nil {
			s.dropRecords(int64(len(st.Sums)))
			continue
		}
		for i := range st.Sums {
			rec := &st.Sums[i]
			if summaryChecksum(&rec.S) != rec.Check || !edgeIDsValid(rec.S.EdgeIDs, numEdges) {
				s.dropRecords(1)
				continue
			}
			sum := rec.S // copy: the table owns what it inserts
			if !sl.Summ.Restore(&sum) {
				s.dropRecords(1)
				continue
			}
			accepted++
			s.snapRestoredSummaries.Add(1)
			mSnapRestSummaries.Inc()
		}
	}
	return accepted, true
}

func edgeIDsValid(ids []int32, numEdges int) bool {
	for _, id := range ids {
		if id < 0 || int(id) >= numEdges {
			return false
		}
	}
	return true
}

func (s *Server) dropRecords(n int64) {
	s.snapDropped.Add(n)
	mSnapDropped.Add(n)
}
