package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// srcCalls is the summary-bearing workload: the callee mutates a
// variable that is live at the error guard, so every taken return edge
// runs through the frame-summary table (irrelevant callees like
// srcLoop's `f() { skip; }` never do — their returns aren't taken).
const srcCalls = `
int x;
int a;
void bump() {
  x = x + 1;
}
void main() {
  x = 0;
  for (int i = 0; i < 12; i = i + 1) {
    bump();
  }
  if (a >= 0) {
    if (x > 100) {
      error;
    }
  }
}
`

// snapServer pairs a Server with its test listener so helpers can
// reach both.
type snapServer struct {
	s  *Server
	ts *httptest.Server
}

func newSnapServer(t *testing.T, cfg Config) *snapServer {
	s, ts := newTestServer(t, cfg)
	return &snapServer{s: s, ts: ts}
}

// warmUp drives enough traffic to populate every snapshot constituent:
// three programs in the LRU, frame summaries for srcCalls (its
// call-heavy long path), and Sat/Unsat verdicts in the shared solver
// cache.
func warmUp(t *testing.T, sv *snapServer) {
	t.Helper()
	postSlice(t, sv.ts, SliceRequest{Source: srcCalls, Long: true})
	postSlice(t, sv.ts, SliceRequest{Source: srcCalls, Long: true}) // records + replays summaries
	postSlice(t, sv.ts, SliceRequest{Source: srcBug})
	postSlice(t, sv.ts, SliceRequest{Source: srcSafe})
}

// sliceKeyResponse strips a SliceResponse down to the fields that must
// be bit-identical between a cold server and a snapshot-restored one:
// the verdicts and the slices themselves. Timing, request IDs, and
// reuse/warmth counters are expected to differ — that difference is
// the snapshot working.
type sliceKeyResponse struct {
	Verdict  string
	ExitCode int
	Targets  []sliceKeyTarget
}

type sliceKeyTarget struct {
	Target      string
	Feasibility string
	InputEdges  int
	SliceEdges  int
	InputBlocks int
	SliceBlocks int
	Slice       string
}

func keyOf(resp SliceResponse) sliceKeyResponse {
	k := sliceKeyResponse{Verdict: resp.Verdict, ExitCode: resp.ExitCode}
	for _, tgt := range resp.Targets {
		k.Targets = append(k.Targets, sliceKeyTarget{
			Target:      tgt.Target,
			Feasibility: tgt.Feasibility,
			InputEdges:  tgt.InputEdges,
			SliceEdges:  tgt.SliceEdges,
			InputBlocks: tgt.InputBlocks,
			SliceBlocks: tgt.SliceBlocks,
			Slice:       fmt.Sprint(tgt.Slice),
		})
	}
	return k
}

func TestSnapshotRoundTripWarmsEverything(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "warm.snap")

	warm := newSnapServer(t, Config{})
	warmUp(t, warm)
	if err := warm.s.SaveSnapshot(snap); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	restored := newSnapServer(t, Config{SnapshotPath: snap})
	st := restored.s.Stats().Snapshot
	if st == nil {
		t.Fatal("restored server reports no snapshot stats")
	}
	if st.RestoredPrograms != 3 {
		t.Fatalf("restored programs = %d, want 3", st.RestoredPrograms)
	}
	if st.RestoredSummaries == 0 {
		t.Fatal("no frame summaries restored (srcCalls's long path records them)")
	}
	if st.RestoredVerdicts == 0 {
		t.Fatal("no solver verdicts restored")
	}
	if st.DroppedRecords != 0 {
		t.Fatalf("clean snapshot dropped %d records", st.DroppedRecords)
	}

	// The very first request must already be warm on every axis the
	// snapshot covers: program LRU, frame summaries, solver verdicts.
	first := postSlice(t, restored.ts, SliceRequest{Source: srcCalls, Long: true})
	if !first.Reuse.ProgramCacheHit {
		t.Fatal("first request after restore missed the program cache")
	}
	if first.Reuse.SummaryHits == 0 {
		t.Fatal("first request after restore replayed no restored summaries")
	}
	if first.Reuse.SolverCacheHits == 0 {
		t.Fatal("first request after restore hit no restored solver verdicts")
	}

	// And restoration must not change any answer: bit-identical
	// verdicts and slices vs a cold server.
	cold := newSnapServer(t, Config{})
	for _, src := range []string{srcCalls, srcBug, srcSafe} {
		req := SliceRequest{Source: src, Long: src == srcCalls, IncludeSlice: true}
		got := keyOf(postSlice(t, restored.ts, req))
		want := keyOf(postSlice(t, cold.ts, req))
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("restored server diverged from cold server:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestSnapshotDeliberateCorruption(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "warm.snap")
	warm := newSnapServer(t, Config{})
	warmUp(t, warm)
	if err := warm.s.SaveSnapshot(snap); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	pristine, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	cold := newSnapServer(t, Config{})
	coldBug := keyOf(postSlice(t, cold.ts, SliceRequest{Source: srcBug, IncludeSlice: true}))
	coldSafe := keyOf(postSlice(t, cold.ts, SliceRequest{Source: srcSafe, IncludeSlice: true}))

	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad-magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xff; return c }},
		{"bad-version", func(b []byte) []byte { c := clone(b); c[len(snapMagic)+2] ^= 0xff; return c }},
		{"truncated-half", func(b []byte) []byte { return clone(b)[:len(b)/2] }},
		{"truncated-tail", func(b []byte) []byte { return clone(b)[: len(b)-7 : len(b)-7] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte("not a snapshot at all") }},
		{"flip-every-97th", func(b []byte) []byte {
			c := clone(b)
			for i := len(snapMagic); i < len(c); i += 97 {
				c[i] ^= 0x55
			}
			return c
		}},
		{"flip-payload-middle", func(b []byte) []byte { c := clone(b); c[len(c)/2] ^= 0x01; return c }},
		{"flip-near-end", func(b []byte) []byte { c := clone(b); c[len(c)-20] ^= 0x80; return c }},
		{"zero-run", func(b []byte) []byte {
			c := clone(b)
			for i := len(c) / 3; i < len(c)/3+64 && i < len(c); i++ {
				c[i] = 0
			}
			return c
		}},
	}

	sawDrop := false
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(snap, tc.mutate(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			// Boot must survive any corruption (no panic, no error
			// surfaced to New) ...
			s := newSnapServer(t, Config{SnapshotPath: snap})
			if st := s.s.Stats().Snapshot; st != nil && st.DroppedRecords > 0 {
				sawDrop = true
			}
			// ... and answers must be exactly the cold server's:
			// whatever survived restore can only be valid records.
			if got := keyOf(postSlice(t, s.ts, SliceRequest{Source: srcBug, IncludeSlice: true})); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", coldBug) {
				t.Fatalf("corrupt snapshot changed the buggy program's answer:\n got %+v\nwant %+v", got, coldBug)
			}
			if got := keyOf(postSlice(t, s.ts, SliceRequest{Source: srcSafe, IncludeSlice: true})); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", coldSafe) {
				t.Fatalf("corrupt snapshot changed the safe program's answer:\n got %+v\nwant %+v", got, coldSafe)
			}
		})
	}
	if !sawDrop {
		t.Fatal("no corruption variant dropped a record — the verification never engaged")
	}

	// A stale-but-intact snapshot for *different source text* must not
	// attach state to the wrong program: rewrite the pristine file,
	// boot a server, and confirm a changed program recompiles fresh.
	if err := os.WriteFile(snap, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	s := newSnapServer(t, Config{SnapshotPath: snap})
	changed := srcCalls + "\n// changed\n"
	resp := postSlice(t, s.ts, SliceRequest{Source: changed, Long: true})
	if resp.Reuse.ProgramCacheHit {
		t.Fatal("changed source must not hit restored program state")
	}
}

func TestSnapshotPeriodicLoop(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "warm.snap")
	s := newSnapServer(t, Config{SnapshotPath: snap, SnapshotInterval: 20 * time.Millisecond})
	postSlice(t, s.ts, SliceRequest{Source: srcBug})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic loop never wrote a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.s.Stats().Snapshot; st == nil || st.Saves == 0 || st.LastSaveBytes == 0 {
		t.Fatalf("snapshot stats don't reflect the periodic save: %+v", st)
	}
}

// TestRestartRecoveryUnderLoad is the mid-load kill/restart scenario:
// concurrent traffic, a drain racing it, a snapshot on the way down,
// and a restore that must (a) report warm-hit counters and (b) answer
// bit-identically to a cold server. Runs under -race via `make race`.
func TestRestartRecoveryUnderLoad(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "warm.snap")
	s1 := newSnapServer(t, Config{SnapshotPath: snap, SnapshotInterval: 10 * time.Millisecond, MaxInflight: 16})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				src := srcCalls
				if (g+i)%2 == 1 {
					src = srcBug
				}
				// Raw post: mid-drain requests legitimately answer a
				// typed 503; both outcomes are fine, wrong verdicts
				// are not.
				code, resp := post[SliceResponse](t, s1.ts.URL+"/v1/slice", SliceRequest{Source: src, Long: src == srcCalls})
				if code == http.StatusOK && src == srcBug && resp.Verdict == VerdictOK {
					t.Errorf("load goroutine %d: buggy program answered ok", g)
				}
			}
		}(g)
	}
	// Kill mid-load: drain while the goroutines are still posting.
	time.Sleep(15 * time.Millisecond)
	s1.s.Drain(2 * time.Second)
	wg.Wait()
	if err := s1.s.SaveSnapshot(snap); err != nil {
		t.Fatalf("shutdown snapshot: %v", err)
	}

	s2 := newSnapServer(t, Config{SnapshotPath: snap})
	st := s2.s.Stats().Snapshot
	if st == nil || st.RestoredPrograms == 0 || st.RestoredVerdicts == 0 {
		t.Fatalf("restart restored nothing: %+v", st)
	}
	first := postSlice(t, s2.ts, SliceRequest{Source: srcCalls, Long: true})
	if !first.Reuse.ProgramCacheHit {
		t.Fatal("warm-hit counter: first request after restart missed the program cache")
	}

	cold := newSnapServer(t, Config{})
	for _, src := range []string{srcCalls, srcBug} {
		req := SliceRequest{Source: src, Long: src == srcCalls, IncludeSlice: true}
		got := keyOf(postSlice(t, s2.ts, req))
		want := keyOf(postSlice(t, cold.ts, req))
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("restored server diverged from cold server:\n got %+v\nwant %+v", got, want)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
