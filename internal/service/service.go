// Package service implements slicerd, a long-running slice/verify
// daemon (cmd/slicerd, docs/API.md, docs/DEPLOYMENT.md). One-shot CLI
// runs pay the whole pipeline — parse, typecheck, CFA build, alias/
// mod-ref/dataflow analyses, solver warm-up — per invocation and then
// throw the hot state away. The service keeps it:
//
//   - a fingerprint-keyed LRU of program states: compiled CFAs with
//     their analyses, per-option core.Slicer instances (whose
//     summ.Table frame summaries warm up across requests), and
//     per-option cegar.Checker instances whose content-keyed
//     abstract-post memo persists across checks;
//   - one shared, sharded smt.Cache of solver verdicts, used by both
//     the CEGAR abstract post and the slice-feasibility path (verdicts
//     are pure facts about formulas, so sharing across programs is
//     sound);
//   - the logic hash-cons interner, kept alive forever by epoch GC
//     (logic.AdvanceInternEpoch / logic.CollectInterned) so it neither
//     grows without bound nor loses its hot entries to wholesale
//     flushes.
//
// Admission control repurposes the PR3 deadline/degradation contract
// (docs/ROBUSTNESS.md): at most MaxInflight sessions run concurrently;
// excess traffic is shed with a typed 503 whose body says "undecided"
// — the same sound give-up a deadline expiry produces — and every
// request runs under a per-request deadline. The service can refuse or
// degrade, but never answer wrong.
package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
)

// Registry metrics for the service (see docs/OBSERVABILITY.md).
var (
	mRequests        = obs.Default().Counter("slicerd_requests_total")
	mShed            = obs.Default().Counter("slicerd_load_shed_total")
	mDegraded        = obs.Default().Counter("slicerd_degraded_total")
	mProgHits        = obs.Default().Counter("slicerd_program_cache_hits_total")
	mProgMisses      = obs.Default().Counter("slicerd_program_cache_misses_total")
	mProgEvictions   = obs.Default().Counter("slicerd_program_evictions_total")
	mInternCollected = obs.Default().Counter("slicerd_intern_collected_total")
	mInflight        = obs.Default().Gauge("slicerd_inflight")
	mPrograms        = obs.Default().Gauge("slicerd_programs")
	mInternedNodes   = obs.Default().Gauge("slicerd_interned_nodes")
	mRequestNS       = obs.Default().Histogram("slicerd_request_ns")

	mDraining          = obs.Default().Gauge("slicerd_draining")
	mDrainShed         = obs.Default().Counter("slicerd_drain_shed_total")
	mSnapSaves         = obs.Default().Counter("slicerd_snapshot_saves_total")
	mSnapSaveErrors    = obs.Default().Counter("slicerd_snapshot_save_errors_total")
	mSnapBytes         = obs.Default().Gauge("slicerd_snapshot_bytes")
	mSnapRestPrograms  = obs.Default().Counter("slicerd_snapshot_restored_programs_total")
	mSnapRestSummaries = obs.Default().Counter("slicerd_snapshot_restored_summaries_total")
	mSnapRestVerdicts  = obs.Default().Counter("slicerd_snapshot_restored_verdicts_total")
	mSnapDropped       = obs.Default().Counter("slicerd_snapshot_dropped_total")
	mUnauthorized      = obs.Default().Counter("slicerd_unauthorized_total")
	mIntegrityRejects  = obs.Default().Counter("slicerd_integrity_rejects_total")
)

// Config tunes the daemon. Zero values take the defaults below; see
// docs/DEPLOYMENT.md for capacity guidance.
type Config struct {
	// MaxInflight bounds concurrently admitted slice/check sessions;
	// excess requests are shed with a typed 503 (default 8).
	MaxInflight int
	// DefaultDeadline applies to requests that set no deadline_ms
	// (default 30s); MaxDeadline clamps requested deadlines (default
	// 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxSourceBytes bounds uploaded program text (default 1 MiB);
	// MaxBodyBytes bounds the whole request body, traces included
	// (default 16 MiB).
	MaxSourceBytes int64
	MaxBodyBytes   int64
	// MaxPrograms bounds the program-state LRU (default 64). Evicting
	// a program drops its analyses, frame summaries, and checker memos
	// — but not the shared solver cache or the interner.
	MaxPrograms int
	// SolverCacheSize bounds the shared verdict cache (default
	// smt.DefaultCacheSize).
	SolverCacheSize int
	// MaxSolverWorkers caps the per-request solver_workers setting
	// (default 4).
	MaxSolverWorkers int
	// DisablePortfolio turns portfolio solving off for requests that do
	// not set "portfolio" themselves. The zero value keeps the default
	// of the tentpole: feasibility and entailment queries race the
	// solver strategies (docs/PERFORMANCE.md) unless a request (or the
	// operator via -portfolio=false) opts out.
	DisablePortfolio bool
	// InternKeepEpochs is the interner GC retention window: entries
	// unused for this many epochs are collected (default 4).
	InternKeepEpochs int
	// GCInterval is the epoch cadence of the background interner GC
	// loop; 0 disables the loop (callers may drive GCNow themselves).
	GCInterval time.Duration
	// SnapshotPath, when set, enables warm-state snapshots: boot
	// restores from the file (a missing/corrupt/stale file only costs
	// misses), and SaveSnapshot writes to it atomically.
	SnapshotPath string
	// SnapshotInterval, with SnapshotPath set, starts a background loop
	// that saves periodically; 0 means save only when the caller asks
	// (cmd/slicerd saves on drain).
	SnapshotInterval time.Duration
	// AuthToken, when set, requires `Authorization: Bearer <token>` on
	// every endpoint except /v1/healthz; failures get a typed 401.
	AuthToken string
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 64
	}
	if c.MaxSolverWorkers <= 0 {
		c.MaxSolverWorkers = 4
	}
	if c.InternKeepEpochs <= 0 {
		c.InternKeepEpochs = 4
	}
	return c
}

// Server is the daemon's state: the program LRU, the shared solver
// cache, the admission semaphore, and the interner GC loop. Create
// with New, expose with Handler, stop with Close.
type Server struct {
	cfg   Config
	cache *smt.Cache
	sem   chan struct{}
	start time.Time

	mu    sync.Mutex
	progs map[string]*list.Element // source hash → *programState element
	order *list.List               // front = most recently used

	stopGC chan struct{}
	gcDone chan struct{}

	stopSnap chan struct{}
	snapDone chan struct{}

	// Drain state: draining flips once (no new admissions), sessions
	// tracks in-flight work, and cancelling drainCtx force-degrades
	// stragglers through the PR3 deadline contract — they answer
	// soundly-degraded instead of being cut off mid-write.
	draining    atomic.Bool
	sessions    sync.WaitGroup
	drainCtx    context.Context
	drainCancel context.CancelFunc

	requests        atomic.Int64
	shed            atomic.Int64
	degraded        atomic.Int64
	internCollected atomic.Int64
	reqSeq          atomic.Int64

	snapRestoredPrograms  atomic.Int64
	snapRestoredSummaries atomic.Int64
	snapRestoredVerdicts  atomic.Int64
	snapDropped           atomic.Int64
	snapSaves             atomic.Int64
	snapLastBytes         atomic.Int64
}

// New builds a Server and, when cfg.GCInterval > 0, starts its
// background interner GC loop. With cfg.SnapshotPath set it restores
// warm state from the snapshot file (restore failures only cost
// misses) and, with cfg.SnapshotInterval > 0, starts the periodic
// snapshot-save loop. The obs default registry is enabled so the
// slicerd_* metrics accumulate.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	obs.Default().SetEnabled(true)
	s := &Server{
		cfg:   cfg,
		cache: smt.NewCache(cfg.SolverCacheSize),
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
		progs: make(map[string]*list.Element),
		order: list.New(),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if cfg.SnapshotPath != "" {
		// Restore never fails boot: every failure mode — absent file,
		// version skew, corruption, fingerprint mismatch — degrades to
		// a cold start for the affected records.
		_, _ = s.RestoreSnapshot(cfg.SnapshotPath)
	}
	if cfg.GCInterval > 0 {
		s.stopGC = make(chan struct{})
		s.gcDone = make(chan struct{})
		go s.gcLoop()
	}
	if cfg.SnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.stopSnap = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapLoop()
	}
	return s
}

// Close stops the background GC and snapshot loops; the server remains
// usable for requests (only the periodic work stops).
func (s *Server) Close() {
	if s.stopGC != nil {
		close(s.stopGC)
		<-s.gcDone
		s.stopGC = nil
	}
	if s.stopSnap != nil {
		close(s.stopSnap)
		<-s.snapDone
		s.stopSnap = nil
	}
}

// Draining reports whether the server has stopped admitting sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain stops admitting new sessions. In-flight sessions keep
// running; /v1/healthz flips to 503 "draining" so load balancers
// route away. Idempotent.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		mDraining.Set(1)
	}
}

// Drain performs the graceful-shutdown contract (docs/DEPLOYMENT.md):
// stop admitting, wait up to timeout for in-flight sessions to finish,
// then cancel the remainder — through the PR3 deadline threading they
// come back degraded-but-sound (supersets, weakened verdicts) rather
// than being cut off mid-answer. It returns true when every session
// finished within the timeout without being force-degraded.
func (s *Server) Drain(timeout time.Duration) bool {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.sessions.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
	}
	s.drainCancel()
	// Cancelled sessions unwind at the next solver/walker poll; give
	// them a bounded grace period so a wedged handler cannot hang
	// shutdown forever.
	select {
	case <-done:
	case <-time.After(timeout + 2*time.Second):
	}
	return false
}

func (s *Server) snapLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSnap:
			return
		case <-t.C:
			_ = s.SaveSnapshot(s.cfg.SnapshotPath)
		}
	}
}

func (s *Server) gcLoop() {
	defer close(s.gcDone)
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopGC:
			return
		case <-t.C:
			s.GCNow()
		}
	}
}

// GCNow advances the interner epoch and collects entries outside the
// retention window, returning the number collected. The background
// loop calls it every GCInterval; tests and embedders may call it
// directly.
func (s *Server) GCNow() int {
	logic.AdvanceInternEpoch()
	n := logic.CollectInterned(s.cfg.InternKeepEpochs)
	if n > 0 {
		s.internCollected.Add(int64(n))
		mInternCollected.Add(int64(n))
	}
	mInternedNodes.Set(int64(logic.InternedCount()))
	return n
}

// tryAcquire claims an admission slot without blocking; callers that
// get false must shed the request.
func (s *Server) tryAcquire() bool {
	select {
	case s.sem <- struct{}{}:
		mInflight.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	mInflight.Add(-1)
}

// portfolioOn resolves a request's tri-state "portfolio" field against
// the server default: explicit request value wins, omitted/null means
// on unless the operator disabled it (Config.DisablePortfolio).
func (s *Server) portfolioOn(req *bool) bool {
	if req != nil {
		return *req
	}
	return !s.cfg.DisablePortfolio
}

// ---------------------------------------------------------------------------
// Program-state cache

// programState is the long-lived per-program half of the shared state:
// the compiled CFA, lazily built per-option slicers (each owning its
// analyses and summ.Table), and per-option checkers (each owning its
// persistent abstract-post memo). Slicers are safe for concurrent
// use; a checker is not, so checkerBox serializes it.
type programState struct {
	key  string // source hash (cache key)
	fp   uint64 // cfa structural fingerprint (reported on the wire)
	src  string // exact source text (snapshots recompile from it)
	prog *cfa.Program

	mu       sync.Mutex
	slicers  map[slicerKey]*core.Slicer
	checkers map[checkerKey]*checkerBox
}

type slicerKey struct {
	Early, Skip, Summaries bool
	Portfolio              bool
}

type checkerKey struct {
	Slicing, DFS bool
	Portfolio    bool
	Workers      int
	MaxRefs      int
	MaxWork      int
	MaxPreds     int
}

type checkerBox struct {
	mu sync.Mutex
	c  *cegar.Checker
}

// sourceKey is the program-cache key: a content hash of the exact
// source text, so a warm lookup costs no parse.
func sourceKey(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:8])
}

// program returns the cached state for src, compiling on miss. The
// boolean reports a cache hit. Compilation happens outside the LRU
// lock; on a race the first inserted state wins.
func (s *Server) program(src string) (*programState, bool, error) {
	key := sourceKey(src)
	s.mu.Lock()
	if el, ok := s.progs[key]; ok {
		s.order.MoveToFront(el)
		ps := el.Value.(*programState)
		s.mu.Unlock()
		mProgHits.Inc()
		return ps, true, nil
	}
	s.mu.Unlock()

	mProgMisses.Inc()
	prog, err := compile.Source(src)
	if err != nil {
		return nil, false, err
	}
	ps := &programState{
		key:      key,
		fp:       cfa.ProgramFingerprint(prog),
		src:      src,
		prog:     prog,
		slicers:  make(map[slicerKey]*core.Slicer),
		checkers: make(map[checkerKey]*checkerBox),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.progs[key]; ok { // lost the compile race
		s.order.MoveToFront(el)
		return el.Value.(*programState), true, nil
	}
	s.insertProgramLocked(ps)
	return ps, false, nil
}

// insertProgramLocked adds ps to the LRU (caller holds s.mu), evicting
// the oldest entry past capacity.
func (s *Server) insertProgramLocked(ps *programState) {
	s.progs[ps.key] = s.order.PushFront(ps)
	if s.order.Len() > s.cfg.MaxPrograms {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.progs, oldest.Value.(*programState).key)
		mProgEvictions.Inc()
	}
	mPrograms.Set(int64(s.order.Len()))
}

// slicer returns (building on first use) the program's slicer for the
// given option key. Construction runs the alias/mod-ref/dataflow
// analyses once; the returned slicer — and its frame-summary table —
// is shared by every later request with the same options.
func (ps *programState) slicer(k slicerKey) *core.Slicer {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if sl, ok := ps.slicers[k]; ok {
		return sl
	}
	sl := core.NewWithOptions(ps.prog, core.Options{
		EarlyUnsatStop: k.Early,
		SkipFunctions:  k.Skip,
		Summaries:      k.Summaries,
		Portfolio:      k.Portfolio,
	})
	ps.slicers[k] = sl
	return sl
}

// checker returns (building on first use) the serialized checker box
// for the given option key. The checker shares the server's solver
// cache and keeps its abstract-post memo across requests.
func (ps *programState) checker(k checkerKey, cache *smt.Cache, slicerOpts core.Options) *checkerBox {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if box, ok := ps.checkers[k]; ok {
		return box
	}
	box := &checkerBox{c: cegar.New(ps.prog, cegar.Options{
		UseSlicing:     k.Slicing,
		DFS:            k.DFS,
		Portfolio:      k.Portfolio,
		SolverWorkers:  k.Workers,
		MaxRefinements: k.MaxRefs,
		MaxWork:        k.MaxWork,
		MaxPreds:       k.MaxPreds,
		SharedCache:    cache,
		SlicerOpts:     slicerOpts,
	})}
	ps.checkers[k] = box
	return box
}

// Stats snapshots the service counters for /v1/stats.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	programs := s.order.Len()
	s.mu.Unlock()
	cs := s.cache.Stats()
	return StatsResponse{
		UptimeMS:    float64(time.Since(s.start).Microseconds()) / 1000,
		Programs:    programs,
		MaxPrograms: s.cfg.MaxPrograms,
		Inflight:    len(s.sem),
		MaxInflight: s.cfg.MaxInflight,
		Requests:    s.requests.Load(),
		Shed:        s.shed.Load(),
		Degraded:    s.degraded.Load(),
		SolverCache: SolverCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
		},
		InternedNodes:   logic.InternedCount(),
		InternEpoch:     logic.InternEpoch(),
		InternCollected: s.internCollected.Load(),
		Draining:        s.draining.Load(),
		Snapshot:        s.snapshotStats(),
	}
}

// snapshotStats reports the snapshot subsystem, or nil when it has
// never been touched (no path configured, nothing restored).
func (s *Server) snapshotStats() *SnapshotStats {
	st := SnapshotStats{
		RestoredPrograms:  s.snapRestoredPrograms.Load(),
		RestoredSummaries: s.snapRestoredSummaries.Load(),
		RestoredVerdicts:  s.snapRestoredVerdicts.Load(),
		DroppedRecords:    s.snapDropped.Load(),
		Saves:             s.snapSaves.Load(),
		LastSaveBytes:     s.snapLastBytes.Load(),
	}
	if s.cfg.SnapshotPath == "" && st == (SnapshotStats{}) {
		return nil
	}
	return &st
}

// fingerprintHex renders the CFA fingerprint the way the PSTRC header
// and the API report it.
func fingerprintHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }
