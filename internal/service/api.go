package service

// The wire types of the slicerd HTTP API (docs/API.md). Every request
// body is decoded strictly (unknown fields are an error), so the JSON
// examples in the docs are validated against these exact structs by
// cmd/doccheck — the reference cannot drift from the code.

// SliceRequest is the body of POST /v1/slice: slice a candidate path
// to each error location of a MiniC program (or a single uploaded
// PSTRC trace) and decide feasibility of every slice.
type SliceRequest struct {
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// TraceB64, when set, is a base64-encoded PSTRC trace file recorded
	// against Source — sequential PSTRC01 (cfa.WriteTraceFile) or
	// multi-threaded PSTRC02 (cfa.WriteConcTraceFile). The service
	// slices exactly that trace instead of searching the CFA for
	// candidate paths per target: a sequential trace streams with a
	// bounded frame window; a concurrent trace runs the two-phase
	// cross-thread walk (docs/CONCURRENCY.md) and reports its
	// racy-edge structure.
	TraceB64 string `json:"trace_b64,omitempty"`
	// Long asks for loop-unrolling candidate paths (the DFS-model-
	// checker shape); Unroll bounds the unrolling (default 3).
	Long   bool `json:"long,omitempty"`
	Unroll int  `json:"unroll,omitempty"`
	// EarlyUnsatStop enables the §4.2 early-unsat-stop optimization.
	EarlyUnsatStop bool `json:"early_unsat_stop,omitempty"`
	// SkipFunctions enables the §4.2 function-skipping optimization
	// (sound, loses completeness).
	SkipFunctions bool `json:"skip_functions,omitempty"`
	// Summaries enables context-keyed frame summaries; omitted or null
	// means on — the warm summ.Table is the point of a resident
	// service. Set false to force plain walks.
	Summaries *bool `json:"summaries,omitempty"`
	// Portfolio races solver strategies per feasibility query
	// (incremental vs stateless vs interval prefilter; first sound
	// answer wins — docs/PERFORMANCE.md). Omitted or null means the
	// server default (-portfolio, on unless disabled); set false to
	// force the stateless solver alone. Verdicts are identical either
	// way.
	Portfolio *bool `json:"portfolio,omitempty"`
	// DeadlineMS bounds the request's wall-clock time in milliseconds.
	// 0 means the server default; values above the server maximum are
	// clamped. Expiry degrades — larger sound slice, unknown
	// feasibility — and never flips a verdict.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// IncludeSlice asks for the rendered slice edges per target.
	IncludeSlice bool `json:"include_slice,omitempty"`
}

// SliceTarget is the per-error-location outcome inside a
// SliceResponse.
type SliceTarget struct {
	// Target renders the error location ("fn:line").
	Target string `json:"target"`
	// Feasibility is "feasible" (the slice reaches the target: a bug),
	// "infeasible", "unknown", or "unreachable" (no CFA path exists).
	Feasibility string `json:"feasibility"`
	// Degraded reports a deadline expiry or an unanswerable analysis
	// query: the slice is a sound superset of the precise one.
	Degraded     bool    `json:"degraded,omitempty"`
	InputEdges   int     `json:"input_edges"`
	SliceEdges   int     `json:"slice_edges"`
	InputBlocks  int     `json:"input_blocks"`
	SliceBlocks  int     `json:"slice_blocks"`
	RatioPercent float64 `json:"ratio_percent"`
	// EarlyStopped reports an early-unsat stop: the slice prefix was
	// proven unsatisfiable after SolverChecks incremental checks.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	SolverChecks int  `json:"solver_checks,omitempty"`
	// SummaryHits/SummaryMisses count frame-summary lookups — warm
	// across requests for the same program.
	SummaryHits   int `json:"summary_hits"`
	SummaryMisses int `json:"summary_misses"`
	// Threads/RacyEdges/Regions describe a concurrent (PSTRC02) trace's
	// cross-thread structure: thread count, happens-before racy edges,
	// and the instruction regions they cut the total order into. Zero
	// for sequential requests. For concurrent traces the feasibility
	// verdict speaks only for the recorded interleaving.
	Threads   int `json:"threads,omitempty"`
	RacyEdges int `json:"racy_edges,omitempty"`
	Regions   int `json:"regions,omitempty"`
	// Witness is a satisfying initial state when the slice is feasible
	// and the verdict was solved fresh (cache hits carry no model).
	Witness map[string]int64 `json:"witness,omitempty"`
	// Slice holds the rendered slice edges (IncludeSlice only).
	Slice []string `json:"slice,omitempty"`
}

// SliceResponse is the body of a successful POST /v1/slice.
type SliceResponse struct {
	// RequestID is the correlation ID of this session: the caller's
	// X-Request-ID if one was sent, else generated. It is echoed in the
	// X-Request-ID response header and attached to the session's JSONL
	// trace event, so a response can be joined against server-side
	// traces.
	RequestID string `json:"request_id"`
	// ProgramFingerprint is the CFA structure hash (cfa
	// ProgramFingerprint) as 16 hex digits — the key under which the
	// service retains this program's warm state.
	ProgramFingerprint string `json:"program_fingerprint"`
	// Verdict aggregates the targets: "bug" if any slice is feasible,
	// else "undecided" if any verdict is unknown, else "ok".
	Verdict string `json:"verdict"`
	// ExitCode is the CLI-compatible mapping of Verdict: 0 ok, 3 bug,
	// 4 undecided (docs/ROBUSTNESS.md).
	ExitCode int `json:"exit_code"`
	// Degraded is set when any target degraded (deadline expiry or
	// unanswerable analysis query). Degraded answers are still sound.
	Degraded  bool          `json:"degraded"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Reuse     ReuseStats    `json:"reuse"`
	Targets   []SliceTarget `json:"targets"`
}

// CheckRequest is the body of POST /v1/check: run the CEGAR model
// checker (with path slicing in the counterexample analysis) on every
// error location of a MiniC program.
type CheckRequest struct {
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// UseSlicing, omitted or null, means on (the paper's
	// configuration). Set false for raw counterexample analysis.
	UseSlicing *bool `json:"use_slicing,omitempty"`
	// DFS makes the abstract search depth-first.
	DFS bool `json:"dfs,omitempty"`
	// MaxRefinements, MaxWork and MaxPreds bound the loop (0 keeps the
	// checker defaults).
	MaxRefinements int `json:"max_refinements,omitempty"`
	MaxWork        int `json:"max_work,omitempty"`
	MaxPreds       int `json:"max_preds,omitempty"`
	// SolverWorkers parallelizes per-predicate entailment queries,
	// capped by the server's -solver-workers flag.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// Portfolio races solver strategies per entailment query (see
	// SliceRequest.Portfolio). Omitted or null means the server
	// default; verdicts are identical either way.
	Portfolio *bool `json:"portfolio,omitempty"`
	// DeadlineMS bounds the request's wall-clock time in milliseconds
	// (0 = server default; clamped to the server maximum). Expiry
	// yields "timeout" verdicts — never a wrong one.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// IncludeWitness asks for the rendered witness slice on "error"
	// verdicts.
	IncludeWitness bool `json:"include_witness,omitempty"`
}

// CheckTarget is the per-error-location outcome inside a
// CheckResponse.
type CheckTarget struct {
	// Target renders the error location ("fn:line").
	Target string `json:"target"`
	// Verdict is the checker's verdict: "safe", "error", "timeout",
	// "diverged", or "unknown".
	Verdict     string `json:"verdict"`
	Refinements int    `json:"refinements"`
	Work        int    `json:"work"`
	Predicates  int    `json:"predicates"`
	SolverCalls int64  `json:"solver_calls"`
	// CacheHits counts solver-cache hits during this check — warm
	// across requests (and programs) through the shared cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// PostMemoHits counts abstract-post computations answered from the
	// checker's persistent memo — warm across requests.
	PostMemoHits int64 `json:"post_memo_hits"`
	// WitnessEdges is the length of the feasible witness slice on
	// "error"; Witness renders it (IncludeWitness only).
	WitnessEdges int      `json:"witness_edges,omitempty"`
	Witness      []string `json:"witness,omitempty"`
}

// CheckResponse is the body of a successful POST /v1/check.
type CheckResponse struct {
	// RequestID is the session's correlation ID (see SliceResponse).
	RequestID          string `json:"request_id"`
	ProgramFingerprint string `json:"program_fingerprint"`
	// Verdict aggregates the targets: "bug" if any check found a
	// feasible counterexample, else "undecided" if any check was
	// timeout/diverged/unknown, else "ok".
	Verdict  string `json:"verdict"`
	ExitCode int    `json:"exit_code"`
	// Degraded is set when any target's verdict was weakened by a
	// deadline, budget, or fault (timeout/diverged/unknown).
	Degraded  bool          `json:"degraded"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Reuse     ReuseStats    `json:"reuse"`
	Targets   []CheckTarget `json:"targets"`
}

// ReuseStats reports how much of a request was answered from the
// service's long-lived shared state — the measurable benefit of a
// resident daemon over one-shot CLI runs.
type ReuseStats struct {
	// ProgramCacheHit reports that the program's compiled CFA and
	// analyses (alias, mod-ref, dataflow) were already resident.
	ProgramCacheHit bool `json:"program_cache_hit"`
	// SolverCacheHits counts shared-cache verdict hits during this
	// request.
	SolverCacheHits int64 `json:"solver_cache_hits"`
	// SummaryHits counts frame-summary replays during this request;
	// SummaryContexts is the program's total memoized contexts.
	SummaryHits     int64 `json:"summary_hits"`
	SummaryContexts int   `json:"summary_contexts"`
	// PostMemoHits counts abstract-post memo hits during this request
	// (/v1/check only).
	PostMemoHits int64 `json:"post_memo_hits"`
	// InternedNodes is the current size of the hash-cons intern table
	// (epoch-collected; see docs/PERFORMANCE.md).
	InternedNodes int `json:"interned_nodes"`
}

// ErrorResponse is the body of every non-2xx API answer. Error is a
// stable machine-readable kind; Message is human-readable detail.
// Overload and admission failures carry Degraded semantics: the
// service refuses with "undecided" rather than ever answering wrong.
type ErrorResponse struct {
	// Error is one of "bad_request", "invalid_program",
	// "invalid_trace", "too_large", "overloaded", "draining",
	// "unauthorized", "integrity", "internal", or
	// "method_not_allowed".
	Error   string `json:"error"`
	Message string `json:"message"`
	// RequestID correlates the failure with server-side traces (empty
	// on errors raised before a session was admitted).
	RequestID string `json:"request_id,omitempty"`
	// Degraded, Verdict and ExitCode are set on load-shed and drain
	// (503) responses: verdict "undecided", exit code 4 — the same
	// typed give-up a deadline expiry produces, never a wrong answer.
	Degraded bool   `json:"degraded,omitempty"`
	Verdict  string `json:"verdict,omitempty"`
	ExitCode int    `json:"exit_code,omitempty"`
	// RetryAfterMS hints when shed traffic should retry.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
}

// HealthResponse is the body of GET /v1/healthz. While draining the
// endpoint answers HTTP 503 with status "draining", so load balancers
// stop routing to an instance that is finishing its in-flight work.
type HealthResponse struct {
	Status   string  `json:"status"` // "ok", or "draining" during shutdown
	Draining bool    `json:"draining,omitempty"`
	UptimeMS float64 `json:"uptime_ms"`
}

// StatsResponse is the body of GET /v1/stats: a point-in-time snapshot
// of the service's shared state and admission counters. The full
// metric catalogue is on the admin port's /metrics endpoint
// (docs/OBSERVABILITY.md).
type StatsResponse struct {
	UptimeMS    float64 `json:"uptime_ms"`
	Programs    int     `json:"programs"`
	MaxPrograms int     `json:"max_programs"`
	Inflight    int     `json:"inflight"`
	MaxInflight int     `json:"max_inflight"`
	// Requests counts admitted API requests; Shed counts requests
	// refused by admission control; Degraded counts responses that
	// carried a degraded (still sound) answer.
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	// SolverCache snapshots the shared verdict cache.
	SolverCache SolverCacheStats `json:"solver_cache"`
	// InternedNodes, InternEpoch and InternCollected describe the
	// hash-cons interner and its epoch GC.
	InternedNodes   int    `json:"interned_nodes"`
	InternEpoch     uint64 `json:"intern_epoch"`
	InternCollected int64  `json:"intern_collected"`
	// Draining reports that the server has stopped admitting sessions
	// and is finishing in-flight work (SIGTERM handling).
	Draining bool `json:"draining"`
	// Snapshot describes the warm-state snapshot subsystem; nil when
	// no snapshot path is configured and nothing was restored.
	Snapshot *SnapshotStats `json:"snapshot,omitempty"`
}

// SnapshotStats reports the warm-state snapshot subsystem: what boot
// restored and what the save loop has written (docs/DEPLOYMENT.md).
type SnapshotStats struct {
	// RestoredPrograms/Summaries/Verdicts count warm state accepted
	// from the boot snapshot after verification; DroppedRecords counts
	// records rejected by it (checksum, fingerprint, or structural
	// mismatch — each costs a cache miss, never a wrong answer).
	RestoredPrograms  int64 `json:"restored_programs"`
	RestoredSummaries int64 `json:"restored_summaries"`
	RestoredVerdicts  int64 `json:"restored_verdicts"`
	DroppedRecords    int64 `json:"dropped_records"`
	// Saves counts snapshot files written (periodic + shutdown);
	// LastSaveBytes is the size of the newest one.
	Saves         int64 `json:"saves"`
	LastSaveBytes int64 `json:"last_save_bytes"`
}

// SolverCacheStats mirrors the shared smt cache counters on the wire.
type SolverCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
}

// Verdict strings and exit codes shared with the CLIs
// (docs/ROBUSTNESS.md).
const (
	VerdictOK        = "ok"
	VerdictBug       = "bug"
	VerdictUndecided = "undecided"

	ExitOK        = 0
	ExitInternal  = 1
	ExitUsage     = 2
	ExitBug       = 3
	ExitUndecided = 4
)
