package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/faults"
	"pathslice/internal/interp"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// srcBug has one feasible error path; srcSafe needs one refinement to
// prove safety; srcLoop is the paper's Figure 1 shape (long unrolled
// candidate path, feasible slice).
const (
	srcBug = `
int a;
void main() {
  int x = 3;
  if (a == 0) {
    error;
  }
}
`
	srcSafe = `
int x = 0;
int a;
void main() {
  if (a >= 0) {
    x = 1;
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`
	srcLoop = `
int x;
int a;
void f() { skip; }
void main() {
  for (int i = 1; i <= 40; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func postSlice(t *testing.T, ts *httptest.Server, req SliceRequest) SliceResponse {
	t.Helper()
	code, out := post[SliceResponse](t, ts.URL+"/v1/slice", req)
	if code != http.StatusOK {
		t.Fatalf("slice status = %d", code)
	}
	return out
}

func postCheck(t *testing.T, ts *httptest.Server, req CheckRequest) CheckResponse {
	t.Helper()
	code, out := post[CheckResponse](t, ts.URL+"/v1/check", req)
	if code != http.StatusOK {
		t.Fatalf("check status = %d", code)
	}
	return out
}

// TestSliceParity: the service's slice answer is bit-for-bit the
// in-process core.SliceCtx answer — same slice edges, same stats, same
// feasibility verdict.
func TestSliceParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true, IncludeSlice: true})

	prog := compile.MustSource(srcLoop)
	sl := core.NewWithOptions(prog, core.Options{Summaries: true})
	target := prog.ErrorLocs()[0]
	path := cfa.WalkLongPath(prog, target, 3, 0)
	res, err := sl.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Stats

	if len(got.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(got.Targets))
	}
	tg := got.Targets[0]
	if tg.InputEdges != want.InputEdges || tg.SliceEdges != want.SliceEdges ||
		tg.InputBlocks != want.InputBlocks || tg.SliceBlocks != want.SliceBlocks {
		t.Fatalf("stats mismatch: service %+v, in-process %+v", tg, want)
	}
	var wantEdges []string
	for _, e := range res.Slice {
		wantEdges = append(wantEdges, e.String())
	}
	if fmt.Sprint(tg.Slice) != fmt.Sprint(wantEdges) {
		t.Fatalf("slice mismatch:\nservice    %v\nin-process %v", tg.Slice, wantEdges)
	}
	fr := smt.Solve(sl.TraceFormula(res.Slice))
	wantFeas := map[smt.Status]string{smt.StatusSat: "feasible", smt.StatusUnsat: "infeasible"}[fr.Status]
	if wantFeas == "" {
		wantFeas = "unknown"
	}
	if tg.Feasibility != wantFeas {
		t.Fatalf("feasibility = %q, in-process %q", tg.Feasibility, wantFeas)
	}
	if got.Verdict != VerdictBug || got.ExitCode != ExitBug {
		t.Fatalf("verdict = %q/%d, want bug/3", got.Verdict, got.ExitCode)
	}
}

// TestCheckParity: the service's CEGAR answer matches an in-process
// cegar.CheckCtx run with the same options, counter for counter.
func TestCheckParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := postCheck(t, ts, CheckRequest{Source: srcSafe})

	prog := compile.MustSource(srcSafe)
	c := cegar.New(prog, cegar.Options{UseSlicing: true, SlicerOpts: core.Options{Summaries: true}})
	want := c.Check(prog.ErrorLocs()[0])

	if len(got.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(got.Targets))
	}
	tg := got.Targets[0]
	if tg.Verdict != want.Verdict.String() {
		t.Fatalf("verdict = %q, in-process %q", tg.Verdict, want.Verdict)
	}
	if tg.Refinements != want.Refinements || tg.Work != want.Work ||
		tg.Predicates != want.Predicates || tg.SolverCalls != want.SolverCalls {
		t.Fatalf("counters mismatch: service %+v, in-process %+v", tg, want)
	}
	if got.Verdict != VerdictOK || got.ExitCode != ExitOK {
		t.Fatalf("verdict = %q/%d, want ok/0", got.Verdict, got.ExitCode)
	}
}

// TestWarmReuse: a second request for the same program is answered
// from resident state — program cache hit, solver-verdict cache hits,
// checker post-memo hits.
func TestWarmReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cold := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true})
	if cold.Reuse.ProgramCacheHit {
		t.Fatal("first request cannot hit the program cache")
	}
	warm := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true})
	if !warm.Reuse.ProgramCacheHit {
		t.Fatal("second request must hit the program cache")
	}
	if warm.Reuse.SolverCacheHits == 0 {
		t.Fatal("second request must hit the shared solver cache")
	}

	postCheck(t, ts, CheckRequest{Source: srcSafe})
	warmCheck := postCheck(t, ts, CheckRequest{Source: srcSafe})
	if !warmCheck.Reuse.ProgramCacheHit {
		t.Fatal("second check must hit the program cache")
	}
	if warmCheck.Reuse.PostMemoHits == 0 {
		t.Fatal("second check must hit the persistent abstract-post memo")
	}
	if warmCheck.Verdict != VerdictOK {
		t.Fatalf("warm verdict = %q, want ok (reuse must not change answers)", warmCheck.Verdict)
	}
}

// TestPortfolioOption: the per-request portfolio field is tri-state —
// omitted means the server default (on), and forcing it either way
// changes routing, never verdicts. Warm-reuse counters must keep
// firing with the portfolio on, and a portfolio-populated solver
// cache must serve the non-portfolio route (same canonical keys).
func TestPortfolioOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	on, off := true, false

	for _, src := range []string{srcBug, srcSafe, srcLoop} {
		def := postSlice(t, ts, SliceRequest{Source: src, Long: true})
		won := postSlice(t, ts, SliceRequest{Source: src, Long: true, Portfolio: &on})
		woff := postSlice(t, ts, SliceRequest{Source: src, Long: true, Portfolio: &off})
		if won.Verdict != def.Verdict || woff.Verdict != def.Verdict {
			t.Fatalf("portfolio option changed a slice verdict: default %q, on %q, off %q",
				def.Verdict, won.Verdict, woff.Verdict)
		}
	}

	// Warm reuse with the portfolio explicitly on: resident program,
	// and solver verdicts answered from the shared cache.
	warm := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true, Portfolio: &on})
	if !warm.Reuse.ProgramCacheHit {
		t.Fatal("warm portfolio slice must hit the program cache")
	}
	if warm.Reuse.SolverCacheHits == 0 {
		t.Fatal("warm portfolio slice must hit the shared solver cache")
	}
	// The cache those hits came from was populated through the
	// portfolio route; the stateless route must read it unchanged.
	offWarm := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true, Portfolio: &off})
	if offWarm.Reuse.SolverCacheHits == 0 {
		t.Fatal("portfolio-populated solver cache did not serve the stateless route")
	}

	conOn := postCheck(t, ts, CheckRequest{Source: srcSafe, Portfolio: &on})
	conOff := postCheck(t, ts, CheckRequest{Source: srcSafe, Portfolio: &off})
	if conOn.Verdict != conOff.Verdict {
		t.Fatalf("portfolio option changed a check verdict: on %q, off %q", conOn.Verdict, conOff.Verdict)
	}
	warmCheck := postCheck(t, ts, CheckRequest{Source: srcSafe, Portfolio: &on})
	if !warmCheck.Reuse.ProgramCacheHit || warmCheck.Reuse.PostMemoHits == 0 {
		t.Fatal("warm portfolio check must reuse the program cache and post memo")
	}

	// A server started with the portfolio disabled answers identically.
	_, tsOff := newTestServer(t, Config{DisablePortfolio: true})
	for _, src := range []string{srcBug, srcSafe} {
		a := postSlice(t, ts, SliceRequest{Source: src, Long: true})
		b := postSlice(t, tsOff, SliceRequest{Source: src, Long: true})
		if a.Verdict != b.Verdict {
			t.Fatalf("DisablePortfolio changed a verdict for %q: %q vs %q", src[:20], a.Verdict, b.Verdict)
		}
	}
}

// TestOverloadShed: with every session slot taken, requests are shed
// with the typed 503 — verdict "undecided", exit code 4, degraded —
// and served normally once a slot frees up.
func TestOverloadShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	if !s.tryAcquire() {
		t.Fatal("fresh server must have a free slot")
	}

	code, shed := post[ErrorResponse](t, ts.URL+"/v1/slice", SliceRequest{Source: srcBug})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", code)
	}
	if shed.Error != "overloaded" || !shed.Degraded ||
		shed.Verdict != VerdictUndecided || shed.ExitCode != ExitUndecided {
		t.Fatalf("shed body = %+v, want typed overloaded/undecided/4/degraded", shed)
	}

	s.release()
	got := postSlice(t, ts, SliceRequest{Source: srcBug})
	if got.Verdict != VerdictBug {
		t.Fatalf("after release verdict = %q, want bug", got.Verdict)
	}
	st := s.Stats()
	if st.Shed != 1 {
		t.Fatalf("stats.shed = %d, want 1", st.Shed)
	}
}

// TestFaultDegradesNeverWrong: with the fault injector forcing every
// solver query to unknown, the service answers "undecided"/degraded —
// it must never report "ok" for a buggy program or "bug" for a safe
// one under faults.
func TestFaultDegradesNeverWrong(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  1,
		Rates: map[faults.Kind]float64{faults.SolverUnknown: 1},
	}))
	defer faults.Install(prev)

	_, ts := newTestServer(t, Config{})

	got := postSlice(t, ts, SliceRequest{Source: srcBug})
	if got.Verdict == VerdictOK {
		t.Fatalf("fault-degraded slice of a buggy program reported %q — wrong verdict", got.Verdict)
	}
	if got.Verdict != VerdictUndecided || got.ExitCode != ExitUndecided || !got.Degraded {
		t.Fatalf("fault-degraded slice = %q/%d degraded=%v, want undecided/4/true",
			got.Verdict, got.ExitCode, got.Degraded)
	}

	chk := postCheck(t, ts, CheckRequest{Source: srcSafe, MaxRefinements: 5})
	if chk.Verdict == VerdictBug {
		t.Fatalf("fault-degraded check of a safe program reported %q — wrong verdict", chk.Verdict)
	}
	if chk.Verdict != VerdictUndecided || !chk.Degraded {
		t.Fatalf("fault-degraded check = %q degraded=%v, want undecided/true", chk.Verdict, chk.Degraded)
	}
}

// TestDeadlineDegrades: an already-expired deadline degrades to a
// sound superset slice and an unknown feasibility verdict.
func TestDeadlineDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultDeadline: time.Nanosecond})
	got := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true})
	if got.Verdict == VerdictOK {
		t.Fatalf("deadline-degraded slice reported %q — an expired clock must not prove anything", got.Verdict)
	}
	if !got.Degraded {
		t.Fatal("deadline expiry must mark the response degraded")
	}
	for _, tg := range got.Targets {
		if tg.Feasibility == "infeasible" {
			t.Fatal("deadline expiry cannot prove infeasibility")
		}
	}
}

// TestTraceUpload: a PSTRC trace uploaded as base64 is sliced by
// streaming and matches slicing the same path in memory.
func TestTraceUpload(t *testing.T) {
	prog := compile.MustSource(srcLoop)
	target := prog.ErrorLocs()[0]
	path := cfa.WalkLongPath(prog, target, 3, 0)
	name := filepath.Join(t.TempDir(), "t.pstrc")
	if err := cfa.WriteTraceFile(name, prog, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	got := postSlice(t, ts, SliceRequest{
		Source:       srcLoop,
		TraceB64:     base64.StdEncoding.EncodeToString(raw),
		IncludeSlice: true,
	})

	sl := core.NewWithOptions(prog, core.Options{Summaries: true})
	want, err := sl.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	var wantEdges []string
	for _, e := range want.Slice {
		wantEdges = append(wantEdges, e.String())
	}
	if len(got.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(got.Targets))
	}
	if fmt.Sprint(got.Targets[0].Slice) != fmt.Sprint(wantEdges) {
		t.Fatalf("streamed slice mismatch:\nservice    %v\nin-process %v", got.Targets[0].Slice, wantEdges)
	}
	if got.Verdict != VerdictBug {
		t.Fatalf("trace verdict = %q, want bug", got.Verdict)
	}
}

// TestConcurrentMixed hammers the service with interleaved slice and
// check requests over distinct programs (run under -race via
// RACE_PKGS): verdicts must stay exact for every request.
func TestConcurrentMixed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (w + i) % 3 {
				case 0:
					if got := postSlice(t, ts, SliceRequest{Source: srcBug}); got.Verdict != VerdictBug {
						t.Errorf("srcBug slice verdict = %q", got.Verdict)
					}
				case 1:
					if got := postSlice(t, ts, SliceRequest{Source: srcLoop, Long: true}); got.Verdict != VerdictBug {
						t.Errorf("srcLoop slice verdict = %q", got.Verdict)
					}
				case 2:
					if got := postCheck(t, ts, CheckRequest{Source: srcSafe}); got.Verdict != VerdictOK {
						t.Errorf("srcSafe check verdict = %q", got.Verdict)
					}
				}
				// Interleave interner GC with live traffic: collection
				// must never perturb results (it only loses sharing).
				if i%2 == 0 {
					s.GCNow()
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Programs != 3 {
		t.Fatalf("programs = %d, want 3", st.Programs)
	}
}

// TestInternGC: after enough epoch advances, the service collects
// intern-table entries and keeps counting them.
func TestInternGC(t *testing.T) {
	s, ts := newTestServer(t, Config{InternKeepEpochs: 1})
	postSlice(t, ts, SliceRequest{Source: srcBug})
	total := 0
	for i := 0; i < 3; i++ {
		total += s.GCNow()
	}
	if total == 0 {
		t.Fatal("epoch GC must collect the request's interned formulas")
	}
	if s.Stats().InternCollected != int64(total) {
		t.Fatal("stats must account collected interned nodes")
	}
}

// TestBadInputs: every malformed request gets its typed error.
func TestBadInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 256})

	cases := []struct {
		name    string
		body    string
		status  int
		errKind string
	}{
		{"unknown field", `{"source": "void main() { skip; }", "bogus": 1}`, http.StatusBadRequest, "bad_request"},
		{"empty source", `{}`, http.StatusBadRequest, "bad_request"},
		{"parse error", `{"source": "void main( {"}`, http.StatusUnprocessableEntity, "invalid_program"},
		{"no targets", `{"source": "void main() { skip; }"}`, http.StatusUnprocessableEntity, "invalid_program"},
		{"bad base64", `{"source": "void main() { error; }", "trace_b64": "!!!"}`, http.StatusBadRequest, "bad_request"},
		{"bad trace", `{"source": "void main() { error; }", "trace_b64": "AAAA"}`, http.StatusUnprocessableEntity, "invalid_trace"},
		{"oversized source", fmt.Sprintf(`{"source": %q}`, strings.Repeat("int x;\n", 100)), http.StatusRequestEntityTooLarge, "too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/slice", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status || e.Error != tc.errKind {
				t.Fatalf("got %d/%q, want %d/%q (%s)", resp.StatusCode, e.Error, tc.status, tc.errKind, e.Message)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/slice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/slice = %d, want 405", resp.StatusCode)
	}
}

// TestHealthAndStats: the two GET endpoints answer.
func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h HealthResponse
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
	postSlice(t, ts, SliceRequest{Source: srcBug})
	var st StatsResponse
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests < 1 || st.Programs != 1 || st.MaxInflight == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcTraceUpload: a multi-threaded PSTRC02 trace uploaded as
// base64 routes to the two-phase concurrent walk, reports its
// racy-edge structure, and matches the in-process ConcSlice verdict.
func TestConcTraceUpload(t *testing.T) {
	const srcConc = `
int g;
int done;
void wrk() {
  g = 42;
  done = 1;
}
void main() {
  spawn wrk();
  join;
  if (done == 1) {
    if (g == 42) { error; }
  }
}
`
	prog := compile.MustSource(srcConc)
	var tr cfa.ConcTrace
	for seed := uint64(0); seed < 64; seed++ {
		st := interp.NewState(prog, wp.NewAddrMap(prog))
		r := interp.ConcRun(prog, st, interp.ZeroInputs{}, interp.ConcRunOptions{RecordTrace: true, Seed: seed})
		if r.ReachedError {
			tr = r.Trace
			break
		}
	}
	if tr == nil {
		t.Fatal("no error interleaving found")
	}

	_, ts := newTestServer(t, Config{})
	got := postSlice(t, ts, SliceRequest{
		Source:       srcConc,
		TraceB64:     base64.StdEncoding.EncodeToString(cfa.AppendConcTrace(nil, prog, tr)),
		IncludeSlice: true,
	})
	if len(got.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(got.Targets))
	}
	tg := got.Targets[0]
	if tg.Threads < 2 || tg.RacyEdges == 0 || tg.Regions == 0 {
		t.Fatalf("concurrent structure missing from response: %+v", tg)
	}
	if got.Verdict != VerdictBug {
		t.Fatalf("verdict = %q, want bug (the recorded interleaving reaches error)", got.Verdict)
	}

	want, err := core.New(prog).ConcSlice(tr)
	if err != nil {
		t.Fatal(err)
	}
	if tg.SliceEdges != want.Stats.SliceEdges || tg.RacyEdges != want.Stats.RacyEdges {
		t.Fatalf("service/in-process divergence: got %d edges %d racy, want %d/%d",
			tg.SliceEdges, tg.RacyEdges, want.Stats.SliceEdges, want.Stats.RacyEdges)
	}
}
