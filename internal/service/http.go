package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
)

// Correlation and integrity headers (docs/API.md). Request IDs tie a
// wire exchange to its JSONL trace events; the checksum headers give
// end-to-end integrity over untrusted transports — a proxy or network
// that flips bytes produces a typed, retryable failure instead of a
// silently altered verdict.
const (
	// HeaderRequestID carries the per-session correlation ID. Clients
	// may supply one (sanitized, truncated to maxRequestIDLen); the
	// server generates one otherwise, and always echoes it.
	HeaderRequestID = "X-Request-ID"
	// HeaderContentSHA256, when a client sends it, is the hex SHA-256
	// of the request body; a mismatch is rejected 400 "integrity".
	HeaderContentSHA256 = "X-Content-SHA256"
	// HeaderChecksumSHA256 is the hex SHA-256 of the response body,
	// set on every JSON response for clients to verify.
	HeaderChecksumSHA256 = "X-Checksum-SHA256"

	maxRequestIDLen = 64
)

// Handler returns the API mux: POST /v1/slice, POST /v1/check,
// GET /v1/healthz, GET /v1/stats (docs/API.md). The admin surface —
// /metrics, /debug/vars, /debug/pprof — is a separate handler
// (obs.Handler), served by cmd/slicerd on its own port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/slice", func(w http.ResponseWriter, r *http.Request) {
		s.session(w, r, s.handleSlice)
	})
	mux.HandleFunc("/v1/check", func(w http.ResponseWriter, r *http.Request) {
		s.session(w, r, s.handleCheck)
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method_not_allowed", Message: "use GET"})
			return
		}
		// healthz needs no auth token: load balancers and kubelets probe
		// it, and it discloses only liveness.
		uptime := float64(time.Since(s.start).Microseconds()) / 1000
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{
				Status: "draining", Draining: true, UptimeMS: uptime,
			})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", UptimeMS: uptime})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method_not_allowed", Message: "use GET"})
			return
		}
		if !s.authorize(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// authorize enforces the bearer-token check when Config.AuthToken is
// set. The comparison is constant-time; a failure is a typed 401 the
// client maps to a non-retryable error.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.AuthToken == "" {
		return true
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.cfg.AuthToken
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1 {
		return true
	}
	mUnauthorized.Inc()
	writeError(w, http.StatusUnauthorized, ErrorResponse{
		Error: "unauthorized", Message: "missing or invalid bearer token",
	})
	return false
}

// requestID returns the session's correlation ID: the client's
// X-Request-ID if it is clean printable ASCII (truncated to
// maxRequestIDLen), or a fresh server-generated one.
func (s *Server) requestID(r *http.Request) string {
	id := r.Header.Get(HeaderRequestID)
	ok := id != ""
	for i := 0; ok && i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			ok = false
		}
	}
	if ok {
		if len(id) > maxRequestIDLen {
			id = id[:maxRequestIDLen]
		}
		return id
	}
	return fmt.Sprintf("%08x-%06d", uint32(s.start.UnixNano()), s.reqSeq.Add(1))
}

// reqID reads the session's correlation ID back off the response
// header session() installed; handlers use it to stamp responses.
func reqID(w http.ResponseWriter) string { return w.Header().Get(HeaderRequestID) }

// session wraps a slice/check handler with the service's admission
// contract: bounded in-flight sessions (overload sheds with a typed
// 503 "undecided" — a sound refusal, never a wrong answer), request
// metrics, and a panic barrier (the analysis layers contain their own
// panics; this is the last resort that keeps one request from taking
// the daemon down).
func (s *Server) session(w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request)) {
	rid := s.requestID(r)
	w.Header().Set(HeaderRequestID, rid)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method_not_allowed", Message: "use POST"})
		return
	}
	if !s.authorize(w, r) {
		return
	}
	if s.draining.Load() {
		// Draining is the same sound refusal as overload, under its own
		// typed kind so clients know to retry against a different
		// replica rather than the same one.
		s.shed.Add(1)
		mDrainShed.Inc()
		writeError(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:        "draining",
			Message:      "server is draining; retry elsewhere",
			Degraded:     true,
			Verdict:      VerdictUndecided,
			ExitCode:     ExitUndecided,
			RetryAfterMS: 500,
		})
		return
	}
	if !s.tryAcquire() {
		s.shed.Add(1)
		mShed.Inc()
		writeError(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:        "overloaded",
			Message:      fmt.Sprintf("all %d session slots busy; retry", s.cfg.MaxInflight),
			Degraded:     true,
			Verdict:      VerdictUndecided,
			ExitCode:     ExitUndecided,
			RetryAfterMS: 100,
		})
		return
	}
	defer s.release()
	// Registered after admission so Drain waits for admitted sessions
	// only. A request that passed the draining check just as the flag
	// flipped may slip past Drain's wait; cmd/slicerd's http.Server
	// Shutdown (which tracks connections, not sessions) backstops that
	// sliver.
	s.sessions.Add(1)
	defer s.sessions.Done()
	s.requests.Add(1)
	mRequests.Inc()
	start := time.Now()
	defer func() {
		mRequestNS.ObserveDuration(time.Since(start))
		obs.Event("service.request", map[string]any{
			"request_id": rid,
			"path":       r.URL.Path,
			"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
		})
		if rec := recover(); rec != nil {
			writeError(w, http.StatusInternalServerError, ErrorResponse{
				Error: "internal", Message: fmt.Sprint(rec),
			})
		}
	}()
	h(w, r)
}

// decode reads one strictly-validated JSON body. Unknown fields are
// rejected so clients notice typos (and docs/API.md examples must
// match the wire types exactly). When the client sent an
// X-Content-SHA256 header, the raw bytes are verified against it
// before any decoding: a body corrupted in transit is rejected with a
// typed 400 "integrity" the client treats as retryable, closing the
// request half of the end-to-end integrity loop.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: "too_large", Message: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return false
		}
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad_request", Message: err.Error()})
		return false
	}
	if want := r.Header.Get(HeaderContentSHA256); want != "" {
		sum := sha256.Sum256(raw)
		got := hex.EncodeToString(sum[:])
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			mIntegrityRejects.Inc()
			writeError(w, http.StatusBadRequest, ErrorResponse{
				Error:   "integrity",
				Message: fmt.Sprintf("request body hash %s does not match %s header", got, HeaderContentSHA256),
			})
			return false
		}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad_request", Message: err.Error()})
		return false
	}
	return true
}

// requestCtx applies the per-request deadline — the client's
// deadline_ms (clamped to MaxDeadline) or the server default — and
// links the session to the drain context: when Drain gives up waiting,
// cancelling drainCtx cancels every linked session, which then answers
// degraded-but-sound through the PR3 deadline contract.
func (s *Server) requestCtx(r *http.Request, deadlineMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.drainCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

func (s *Server) checkSource(w http.ResponseWriter, src string) bool {
	if src == "" {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad_request", Message: "source is required"})
		return false
	}
	if int64(len(src)) > s.cfg.MaxSourceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error: "too_large", Message: fmt.Sprintf("source exceeds %d bytes", s.cfg.MaxSourceBytes),
		})
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// POST /v1/slice

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	var req SliceRequest
	if !s.decode(w, r, &req) || !s.checkSource(w, req.Source) {
		return
	}
	// The clock starts before the program lookup so elapsed_ms charges
	// a cold request its compile + analyses cost — that difference is
	// most of what the warm path saves.
	start := time.Now()
	ps, progHit, err := s.program(req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_program", Message: err.Error()})
		return
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	summaries := req.Summaries == nil || *req.Summaries
	portfolio := s.portfolioOn(req.Portfolio)
	sl := ps.slicer(slicerKey{Early: req.EarlyUnsatStop, Skip: req.SkipFunctions, Summaries: summaries, Portfolio: portfolio})

	cacheBefore := s.cache.Stats()
	resp := SliceResponse{RequestID: reqID(w), ProgramFingerprint: fingerprintHex(ps.fp)}
	resp.Reuse.ProgramCacheHit = progHit

	if req.TraceB64 != "" {
		tgt, herr := s.sliceTrace(ctx, &req, ps, sl)
		if herr != nil {
			writeError(w, herr.status, herr.body)
			return
		}
		resp.Targets = append(resp.Targets, *tgt)
	} else {
		locs := ps.prog.ErrorLocs()
		if len(locs) == 0 {
			writeError(w, http.StatusUnprocessableEntity, ErrorResponse{
				Error: "invalid_program", Message: "no error locations (use `error;` or `assert(...)`)",
			})
			return
		}
		unroll := req.Unroll
		if unroll <= 0 {
			unroll = 3
		}
		for _, target := range locs {
			var path cfa.Path
			if req.Long {
				path = cfa.WalkLongPath(ps.prog, target, unroll, 0)
			}
			if path == nil {
				path = cfa.FindPath(ps.prog, target, cfa.FindOptions{})
			}
			if path == nil {
				resp.Targets = append(resp.Targets, SliceTarget{
					Target: target.String(), Feasibility: "unreachable",
				})
				continue
			}
			res, serr := sl.SliceCtx(ctx, path)
			if serr != nil {
				writeError(w, http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: serr.Error()})
				return
			}
			resp.Targets = append(resp.Targets, *s.sliceTarget(ctx, sl, target.String(), res, req.IncludeSlice))
		}
	}

	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.finishSlice(&resp, sl, cacheBefore)
	writeJSON(w, http.StatusOK, resp)
}

// sliceTarget folds one slicing result (and its feasibility verdict,
// solved through the shared cache) into a wire target.
func (s *Server) sliceTarget(ctx context.Context, sl *core.Slicer, target string, res *core.Result, includeSlice bool) *SliceTarget {
	st := res.Stats
	t := &SliceTarget{
		Target:        target,
		Degraded:      res.Degraded,
		InputEdges:    st.InputEdges,
		SliceEdges:    st.SliceEdges,
		InputBlocks:   st.InputBlocks,
		SliceBlocks:   st.SliceBlocks,
		RatioPercent:  100 * st.Ratio(),
		EarlyStopped:  st.EarlyStopped,
		SolverChecks:  st.SolverChecks,
		SummaryHits:   st.SummaryHits,
		SummaryMisses: st.SummaryMisses,
	}
	if includeSlice {
		for _, e := range res.Slice {
			t.Slice = append(t.Slice, e.String())
		}
	}
	switch {
	case res.KnownInfeasible:
		t.Feasibility = "infeasible"
	default:
		// The feasibility solve goes through the shared verdict cache:
		// a repeat of a known slice costs a lookup. Cache hits carry no
		// model, so Witness is only present on fresh feasible solves.
		// With portfolio on (the slicer's option), the miss path races
		// the solver strategies; results land under the same keys.
		f := sl.TraceFormula(res.Slice)
		var fr smt.Result
		if sl.Opts.Portfolio {
			fr = smt.CachedSolvePortfolioCtx(ctx, s.cache, f, sl.Opts.SolverLimits)
		} else {
			fr = smt.CachedSolveCtx(ctx, s.cache, f, sl.Opts.SolverLimits)
		}
		switch fr.Status {
		case smt.StatusSat:
			t.Feasibility = "feasible"
			t.Witness = fr.Model
		case smt.StatusUnsat:
			t.Feasibility = "infeasible"
		default:
			t.Feasibility = "unknown"
		}
	}
	return t
}

// httpError pairs a status code with its typed body for early returns.
type httpError struct {
	status int
	body   ErrorResponse
}

// sliceTrace slices an uploaded PSTRC trace by streaming it from a
// temporary file with a bounded frame window (docs/PERFORMANCE.md).
func (s *Server) sliceTrace(ctx context.Context, req *SliceRequest, ps *programState, sl *core.Slicer) (*SliceTarget, *httpError) {
	raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, ErrorResponse{Error: "bad_request", Message: "trace_b64: " + err.Error()}}
	}
	if cfa.IsConcTraceImage(raw) {
		return s.sliceConcTrace(ctx, req, ps, sl, raw)
	}
	tmp, err := os.CreateTemp("", "slicerd-*.pstrc")
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: err.Error()}}
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return nil, &httpError{http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: err.Error()}}
	}
	if err := tmp.Close(); err != nil {
		return nil, &httpError{http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: err.Error()}}
	}
	rd, err := cfa.OpenTraceFile(tmp.Name(), ps.prog)
	if err != nil {
		var tfe *cfa.TraceFormatError
		if errors.As(err, &tfe) {
			return nil, &httpError{http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_trace", Message: err.Error()}}
		}
		return nil, &httpError{http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: err.Error()}}
	}
	defer rd.Close()
	res, err := sl.SliceStream(ctx, rd)
	if err != nil {
		return nil, &httpError{http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_trace", Message: err.Error()}}
	}
	target := "?"
	if last := rd.Edge(rd.Len() - 1); last != nil {
		target = last.Dst.String()
	}
	return s.sliceTarget(ctx, sl, target, res, req.IncludeSlice), nil
}

// sliceConcTrace slices an uploaded multi-threaded PSTRC02 trace with
// the two-phase concurrent walk (docs/CONCURRENCY.md). The feasibility
// verdict covers the recorded interleaving only, so early-unsat
// shortcuts never apply here.
func (s *Server) sliceConcTrace(ctx context.Context, req *SliceRequest, ps *programState, sl *core.Slicer, raw []byte) (*SliceTarget, *httpError) {
	tr, err := cfa.DecodeConcTrace(raw, ps.prog)
	if err != nil {
		var tfe *cfa.TraceFormatError
		if errors.As(err, &tfe) {
			return nil, &httpError{http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_trace", Message: err.Error()}}
		}
		return nil, &httpError{http.StatusInternalServerError, ErrorResponse{Error: "internal", Message: err.Error()}}
	}
	res, err := sl.ConcSliceCtx(ctx, tr)
	if err != nil {
		return nil, &httpError{http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_trace", Message: err.Error()}}
	}
	target := "?"
	if len(tr) > 0 {
		target = tr[len(tr)-1].Edge.Dst.String()
	}
	st := res.Stats
	t := &SliceTarget{
		Target:       target,
		Degraded:     res.Degraded,
		InputEdges:   st.InputEdges,
		SliceEdges:   st.SliceEdges,
		InputBlocks:  st.InputBlocks,
		SliceBlocks:  st.SliceBlocks,
		RatioPercent: 100 * st.Ratio(),
		Threads:      st.Threads,
		RacyEdges:    st.RacyEdges,
		Regions:      st.Regions,
	}
	if req.IncludeSlice {
		for _, ev := range res.Slice {
			t.Slice = append(t.Slice, fmt.Sprintf("t%d %s", ev.TID, ev.Edge))
		}
	}
	fr, _ := sl.CheckConcFeasibility(res.Slice)
	switch fr.Status {
	case smt.StatusSat:
		t.Feasibility = "feasible"
		t.Witness = fr.Model
	case smt.StatusUnsat:
		t.Feasibility = "infeasible"
	default:
		t.Feasibility = "unknown"
	}
	return t, nil
}

// finishSlice aggregates verdict, exit code, degradation, and the
// reuse report over the per-target results.
func (s *Server) finishSlice(resp *SliceResponse, sl *core.Slicer, cacheBefore smt.CacheStats) {
	anyBug, anyUnknown := false, false
	for _, t := range resp.Targets {
		switch t.Feasibility {
		case "feasible":
			anyBug = true
		case "unknown":
			anyUnknown = true
		}
		if t.Degraded {
			resp.Degraded = true
		}
		resp.Reuse.SummaryHits += int64(t.SummaryHits)
	}
	if anyUnknown {
		resp.Degraded = true
	}
	switch {
	case anyBug:
		resp.Verdict, resp.ExitCode = VerdictBug, ExitBug
	case anyUnknown:
		resp.Verdict, resp.ExitCode = VerdictUndecided, ExitUndecided
	default:
		resp.Verdict, resp.ExitCode = VerdictOK, ExitOK
	}
	if resp.Degraded {
		s.degraded.Add(1)
		mDegraded.Inc()
	}
	if sl.Summ != nil {
		resp.Reuse.SummaryContexts = sl.Summ.Len()
	}
	s.fillReuse(&resp.Reuse, cacheBefore)
}

// fillReuse completes the shared-state half of a reuse report.
func (s *Server) fillReuse(ru *ReuseStats, cacheBefore smt.CacheStats) {
	after := s.cache.Stats()
	ru.SolverCacheHits = after.Hits - cacheBefore.Hits
	ru.InternedNodes = logic.InternedCount()
}

// ---------------------------------------------------------------------------
// POST /v1/check

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !s.decode(w, r, &req) || !s.checkSource(w, req.Source) {
		return
	}
	start := time.Now()
	ps, progHit, err := s.program(req.Source)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, ErrorResponse{Error: "invalid_program", Message: err.Error()})
		return
	}
	locs := ps.prog.ErrorLocs()
	if len(locs) == 0 {
		writeError(w, http.StatusUnprocessableEntity, ErrorResponse{
			Error: "invalid_program", Message: "no error locations (use `error;` or `assert(...)`)",
		})
		return
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	workers := req.SolverWorkers
	if workers > s.cfg.MaxSolverWorkers {
		workers = s.cfg.MaxSolverWorkers
	}
	key := checkerKey{
		Slicing:   req.UseSlicing == nil || *req.UseSlicing,
		DFS:       req.DFS,
		Portfolio: s.portfolioOn(req.Portfolio),
		Workers:   workers,
		MaxRefs:   req.MaxRefinements,
		MaxWork:   req.MaxWork,
		MaxPreds:  req.MaxPreds,
	}
	// The checker's counterexample slicer runs with frame summaries on:
	// with warm memo sharing across checks this is now the default
	// configuration (ROADMAP: gcc-scale item).
	box := ps.checker(key, s.cache, core.Options{Summaries: true, Portfolio: key.Portfolio})

	resp := CheckResponse{RequestID: reqID(w), ProgramFingerprint: fingerprintHex(ps.fp)}
	resp.Reuse.ProgramCacheHit = progHit
	cacheBefore := s.cache.Stats()

	// Checkers are stateful (persistent post memo, per-check scratch):
	// one check at a time per (program, options); concurrent requests
	// for the same pair queue here while other programs proceed.
	box.mu.Lock()
	defer box.mu.Unlock()
	anyBug, anyUndecided := false, false
	for _, target := range locs {
		res, cerr := box.c.CheckCtx(ctx, target)
		if cerr != nil {
			resp.Targets = append(resp.Targets, CheckTarget{
				Target: target.String(), Verdict: "unknown",
			})
			anyUndecided = true
			continue
		}
		t := CheckTarget{
			Target:       target.String(),
			Verdict:      res.Verdict.String(),
			Refinements:  res.Refinements,
			Work:         res.Work,
			Predicates:   res.Predicates,
			SolverCalls:  res.SolverCalls,
			CacheHits:    res.CacheHits,
			CacheMisses:  res.CacheMisses,
			PostMemoHits: res.PostMemoHits,
		}
		switch {
		case res.Verdict == cegar.VerdictUnsafe:
			anyBug = true
			t.WitnessEdges = len(res.Witness)
			if req.IncludeWitness {
				for _, e := range res.Witness {
					t.Witness = append(t.Witness, e.String())
				}
			}
		case !res.Verdict.Decided():
			anyUndecided = true
		}
		resp.Reuse.PostMemoHits += res.PostMemoHits
		resp.Targets = append(resp.Targets, t)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	switch {
	case anyBug:
		resp.Verdict, resp.ExitCode = VerdictBug, ExitBug
	case anyUndecided:
		resp.Verdict, resp.ExitCode = VerdictUndecided, ExitUndecided
		resp.Degraded = true
	default:
		resp.Verdict, resp.ExitCode = VerdictOK, ExitOK
	}
	if resp.Degraded {
		s.degraded.Add(1)
		mDegraded.Inc()
	}
	s.fillReuse(&resp.Reuse, cacheBefore)
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// JSON plumbing

// writeJSON renders v and stamps the response with its body checksum
// (X-Checksum-SHA256) so clients can detect transport corruption. The
// body is buffered first — headers must precede it on the wire.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Wire types marshal by construction; this is unreachable short
		// of memory corruption, and a 500 beats a half-written body.
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderChecksumSHA256, hex.EncodeToString(sum[:]))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeError writes a typed error body, stamping it with the session's
// request ID (installed on the response header by session()) so error
// responses correlate like successes do.
func writeError(w http.ResponseWriter, status int, body ErrorResponse) {
	if body.RequestID == "" {
		body.RequestID = w.Header().Get(HeaderRequestID)
	}
	writeJSON(w, status, body)
}
