package report_test

import (
	"strings"
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/report"
)

const prog = `
int x;
int a;
void f() { skip; }
void main() {
  for (int i = 1; i <= 5; i = i + 1) { f(); }
  if (a >= 0) {
    if (x == 0) { error; }
  }
}
`

func TestAnnotatedTrace(t *testing.T) {
	p := compile.MustSource(prog)
	path := cfa.WalkLongPath(p, p.ErrorLocs()[0], 2, 0)
	slicer := core.NewWithOptions(p, core.Options{RecordTrace: true})
	res, err := slicer.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	out := report.AnnotatedTrace(path, res)
	if !strings.Contains(out, "==>") {
		t.Errorf("no taken edges marked:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("no dropped edges marked:\n%s", out)
	}
	// The branch assumes carry the live sets the paper shows: a then
	// {a, x}.
	if !strings.Contains(out, "{a}") && !strings.Contains(out, "{a, x}") {
		t.Errorf("live-set annotations missing:\n%s", out)
	}
	// Every path index appears exactly once.
	for i := range path {
		needle := " " + itoa(i) + " "
		if !strings.Contains(out, needle) {
			t.Errorf("missing row for edge %d:\n%s", i, out)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestAnnotatedTraceWithoutRecording(t *testing.T) {
	p := compile.MustSource(prog)
	path := cfa.FindPathToError(p, cfa.FindOptions{})
	res, err := core.New(p).Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	out := report.AnnotatedTrace(path, res)
	if !strings.Contains(out, "RecordTrace") {
		t.Errorf("should point at the missing option: %q", out)
	}
}

func TestSliceSummary(t *testing.T) {
	p := compile.MustSource(prog)
	path := cfa.WalkLongPath(p, p.ErrorLocs()[0], 2, 0)
	slicer := core.NewWithOptions(p, core.Options{EarlyUnsatStop: true})
	res, err := slicer.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	out := report.SliceSummary(res)
	for _, want := range []string{"path:", "slice:", "taken:", "skipped:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCheckReport(t *testing.T) {
	p := compile.MustSource(prog)
	r := cegar.New(p, cegar.Options{UseSlicing: true}).Check(p.ErrorLocs()[0])
	out := report.CheckReport("demo", r)
	if !strings.Contains(out, "demo: error") {
		t.Errorf("verdict line wrong:\n%s", out)
	}
	if !strings.Contains(out, "witness slice") {
		t.Errorf("missing witness:\n%s", out)
	}
}

func TestTracePointsCoverSkips(t *testing.T) {
	// Skipped frames must appear as trace points too.
	p := compile.MustSource(prog)
	path := cfa.WalkLongPath(p, p.ErrorLocs()[0], 2, 0)
	slicer := core.NewWithOptions(p, core.Options{RecordTrace: true})
	res, err := slicer.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SkippedFrames == 0 {
		t.Fatal("test program should skip f's frames")
	}
	seen := make(map[int]bool)
	skipped := 0
	for _, tp := range res.Trace {
		if seen[tp.Index] {
			t.Fatalf("duplicate trace point for %d", tp.Index)
		}
		seen[tp.Index] = true
		if tp.Skipped {
			skipped++
		}
	}
	if len(seen) != len(path) {
		t.Errorf("trace covers %d of %d edges", len(seen), len(path))
	}
	if skipped == 0 {
		t.Error("no skipped trace points recorded")
	}
}
