// Package report renders counterexamples and their path slices for
// human consumption — the use case the paper motivates first: "in the
// cases where the tool returns a feasible path slice it is much easier
// for the user to go over the more succinct slice to ascertain the
// veracity of the counterexample" (§1).
//
// The annotated-trace rendering follows the paper's Figure 1(C) and
// 2(B): each path edge with the live-lvalue set and step location the
// slicer maintained when it decided the edge, taken edges marked solid
// and dropped edges dotted.
package report

import (
	"fmt"
	"strings"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/smt"
)

// AnnotatedTrace renders a slicing run with per-edge annotations. The
// Result must have been produced with Options.RecordTrace. The output
// lists edges in path (forward) order: taken edges are prefixed "==>",
// dropped edges "...", frame-skipped edges "   " — mirroring the solid
// and dotted edges of the paper's figures — with the live set and step
// location the backward pass had at that point.
func AnnotatedTrace(path cfa.Path, res *core.Result) string {
	if len(res.Trace) == 0 {
		return "(no trace recorded: set core.Options.RecordTrace)\n"
	}
	// Index the trace points by path position.
	byIndex := make(map[int]core.TracePoint, len(res.Trace))
	for _, tp := range res.Trace {
		byIndex[tp.Index] = tp
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-55s %-14s %s\n", "", "idx", "edge", "step", "live")
	for i, e := range path {
		tp, ok := byIndex[i]
		marker := "..."
		step := ""
		liveStr := ""
		switch {
		case !ok:
			marker = "?  " // unexamined (early stop)
		case tp.Taken:
			marker = "==>"
		case tp.Skipped:
			marker = "   "
		}
		if ok {
			step = tp.StepLoc.String()
			liveStr = tp.Live.String()
		}
		fmt.Fprintf(&b, "%-4s %-4d %-55s %-14s %s\n", marker, i, e.String(), step, liveStr)
	}
	return b.String()
}

// SliceSummary renders the outcome of slicing one path: sizes, ratio,
// and the §4.2 statistics.
func SliceSummary(res *core.Result) string {
	st := res.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "path: %d edges (%d blocks); slice: %d edges (%d blocks) = %.2f%%\n",
		st.InputEdges, st.InputBlocks, st.SliceEdges, st.SliceBlocks, 100*st.Ratio())
	fmt.Fprintf(&b, "taken: %d assigns, %d assumes, %d calls, %d returns; skipped: %d frames, %d guard chains\n",
		st.TakenAssign, st.TakenAssume, st.TakenCall, st.TakenReturn,
		st.SkippedFrames, st.SkippedGuardChains)
	if st.SolverChecks > 0 {
		fmt.Fprintf(&b, "incremental checks: %d", st.SolverChecks)
		if st.EarlyStopped {
			fmt.Fprintf(&b, " (stopped early: slice already unsatisfiable)")
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Verdict renders a feasibility result with its witness, phrased with
// the paper's completeness caveat.
func Verdict(r smt.Result) string {
	switch r.Status {
	case smt.StatusSat:
		return fmt.Sprintf("FEASIBLE: every state satisfying the slice reaches the target or diverges; witness %v", r.Model)
	case smt.StatusUnsat:
		return "INFEASIBLE: the path (and every variant of it) cannot reach the target"
	default:
		return "UNKNOWN: solver limits reached"
	}
}

// CheckReport renders one CEGAR check result, including the per-trace
// reduction statistics.
func CheckReport(name string, r *cegar.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (refinements %d, predicates %d, work %d)\n",
		name, r.Verdict, r.Refinements, r.Predicates, r.Work)
	for i, ts := range r.Traces {
		fmt.Fprintf(&b, "  counterexample %d: %d blocks -> %d blocks (%.2f%%)",
			i+1, ts.TraceBlocks, ts.SliceBlocks, ts.RatioPercent())
		if ts.Feasible {
			fmt.Fprintf(&b, "  [feasible: reported]")
		}
		fmt.Fprintf(&b, "\n")
	}
	if r.Verdict == cegar.VerdictUnsafe && len(r.Witness) > 0 {
		fmt.Fprintf(&b, "  witness slice:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Witness.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
