package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// randProgram emits a random small MiniC program with globals set from
// nondet() up front (so the solver's model fully determines execution),
// bounded loops, branches, helper calls, and one error statement under
// data conditions. All loops terminate.
func randProgram(r *rand.Rand) string {
	var b strings.Builder
	nGlobals := 2 + r.Intn(3)
	for i := 0; i < nGlobals; i++ {
		fmt.Fprintf(&b, "int g%d;\n", i)
	}
	gvar := func() string { return fmt.Sprintf("g%d", r.Intn(nGlobals)) }
	expr := func() string {
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(9)-4)
		case 1:
			return gvar()
		case 2:
			return fmt.Sprintf("%s + %d", gvar(), r.Intn(5)-2)
		default:
			return fmt.Sprintf("%s - %s", gvar(), gvar())
		}
	}
	cond := func() string {
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("%s %s %s", gvar(), ops[r.Intn(len(ops))], expr())
	}
	// A helper that may or may not touch a global.
	touches := r.Intn(2) == 0
	fmt.Fprintf(&b, "void helper() {\n")
	fmt.Fprintf(&b, "  int t = 0;\n  for (int i = 0; i < %d; i = i + 1) { t = t + i; }\n", 1+r.Intn(4))
	if touches {
		fmt.Fprintf(&b, "  %s = t;\n", gvar())
	}
	fmt.Fprintf(&b, "}\n")

	// Globals are left uninitialized: their initial values are the
	// unconstrained inputs, so the solver model's version-0 values fully
	// determine a (nondet-free) execution.
	fmt.Fprintf(&b, "void main() {\n")
	var stmt func(depth int)
	stmt = func(depth int) {
		switch r.Intn(6) {
		case 0:
			fmt.Fprintf(&b, "  %s = %s;\n", gvar(), expr())
		case 1:
			fmt.Fprintf(&b, "  if (%s) {\n", cond())
			stmt(depth + 1)
			fmt.Fprintf(&b, "  } else {\n")
			stmt(depth + 1)
			fmt.Fprintf(&b, "  }\n")
		case 2:
			v := fmt.Sprintf("w%d", r.Intn(1000))
			fmt.Fprintf(&b, "  for (int %s = 0; %s < %d; %s = %s + 1) { %s = %s + 1; }\n",
				v, v, 1+r.Intn(4), v, v, gvar(), gvar())
		case 3:
			fmt.Fprintf(&b, "  helper();\n")
		default:
			fmt.Fprintf(&b, "  %s = %s;\n", gvar(), expr())
		}
	}
	n := 3 + r.Intn(4)
	for i := 0; i < n; i++ {
		stmt(0)
	}
	fmt.Fprintf(&b, "  if (%s) {\n    if (%s) {\n      error;\n    }\n  }\n", cond(), cond())
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// TestTheorem1OnRandomPrograms checks the paper's Theorem 1 on a corpus
// of random programs and candidate paths:
//
//	sound:    UNSAT(slice) => UNSAT(path)
//	complete: SAT(slice)   => the model's initial state concretely
//	          reaches the target (all generated loops terminate, so
//	          the "modulo termination" caveat is vacuous here)
func TestTheorem1OnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	programs := 0
	pathsChecked := 0
	for i := 0; i < 120 && programs < 60; i++ {
		src := randProgram(r)
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatalf("generated program invalid: %v\n%s", err, src)
		}
		locs := prog.ErrorLocs()
		if len(locs) == 0 {
			continue
		}
		target := locs[0]
		var paths []cfa.Path
		if p := cfa.FindPath(prog, target, cfa.FindOptions{}); p != nil {
			paths = append(paths, p)
		}
		if p := cfa.WalkLongPath(prog, target, 2, 0); p != nil {
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			continue
		}
		programs++
		slicer := core.New(prog)
		for _, path := range paths {
			pathsChecked++
			res, err := slicer.Slice(path)
			if err != nil {
				t.Fatalf("slice: %v\n%s", err, src)
			}
			if !path.Subsequence(res.Slice) {
				t.Fatalf("not a subsequence\n%s", src)
			}
			rs, enc := slicer.CheckFeasibility(res.Slice)
			rp, _ := slicer.CheckFeasibility(path)
			// Soundness.
			if rs.Status == smt.StatusUnsat && rp.Status == smt.StatusSat {
				t.Fatalf("SOUNDNESS violation:\n%s\npath:\n%s\nslice:\n%s", src, path, res.Slice)
			}
			// Monotonicity: a feasible path has a feasible slice.
			if rp.Status == smt.StatusSat && rs.Status == smt.StatusUnsat {
				t.Fatalf("feasible path, infeasible slice:\n%s", src)
			}
			// Completeness, concretely.
			if rs.Status == smt.StatusSat {
				st := interp.NewState(prog, slicer.Addrs)
				for k, v := range enc.DecodeInitialState(rs.Model, prog) {
					st.Set(k, v)
				}
				run := interp.Run(prog, st, interp.ZeroInputs{},
					interp.RunOptions{MaxSteps: 200000})
				if !run.ReachedError {
					t.Fatalf("COMPLETENESS violation: feasible slice but model state does not reach target\n%s\nmodel: %v\nslice:\n%s",
						src, rs.Model, res.Slice)
				}
			}
		}
	}
	if programs < 30 {
		t.Fatalf("too few usable random programs: %d", programs)
	}
	t.Logf("checked %d programs, %d paths", programs, pathsChecked)
}

// TestBackwardEncoderMatchesForward verifies that the backward SSA
// encoding used by the early-stop optimization is equisatisfiable with
// the forward encoding, on slices of random programs.
func TestBackwardEncoderMatchesForward(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 60 && checked < 25; i++ {
		src := randProgram(r)
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatal(err)
		}
		locs := prog.ErrorLocs()
		if len(locs) == 0 {
			continue
		}
		path := cfa.FindPath(prog, locs[0], cfa.FindOptions{})
		if path == nil {
			continue
		}
		checked++
		slicer := core.New(prog)
		res, err := slicer.Slice(path)
		if err != nil {
			t.Fatal(err)
		}
		al := alias.Analyze(prog)
		addrs := wp.NewAddrMap(prog)
		fwd := wp.NewTraceEncoder(prog, al, addrs)
		fFwd := fwd.EncodeTrace(res.Slice.Ops())
		bwd := wp.NewTraceEncoder(prog, al, addrs)
		solver := smt.NewSolver()
		ops := res.Slice.Ops()
		for j := len(ops) - 1; j >= 0; j-- {
			solver.Assert(bwd.EncodeOpBackward(ops[j]))
		}
		rf := smt.Solve(fFwd)
		rb := solver.Check()
		if rf.Status != rb.Status {
			t.Fatalf("forward %s vs backward %s\n%s\nslice:\n%s",
				rf.Status, rb.Status, src, res.Slice)
		}
	}
	if checked < 10 {
		t.Fatalf("too few cases: %d", checked)
	}
}

// TestSliceNeverGrowsWithSkipFunctions is the §4.2 guarantee: the
// optimization only removes edges.
func TestSliceNeverGrowsWithSkipFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		src := randProgram(r)
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatal(err)
		}
		locs := prog.ErrorLocs()
		if len(locs) == 0 {
			continue
		}
		path := cfa.FindPath(prog, locs[0], cfa.FindOptions{})
		if path == nil {
			continue
		}
		base, err := core.New(prog).Slice(path)
		if err != nil {
			t.Fatal(err)
		}
		skip, err := core.NewWithOptions(prog, core.Options{SkipFunctions: true}).Slice(path)
		if err != nil {
			t.Fatal(err)
		}
		if skip.Stats.SliceEdges > base.Stats.SliceEdges {
			t.Fatalf("SkipFunctions grew the slice (%d > %d)\n%s",
				skip.Stats.SliceEdges, base.Stats.SliceEdges, src)
		}
		// Soundness of the skip slice still holds.
		rs, _ := core.New(prog).CheckFeasibility(skip.Slice)
		rp, _ := core.New(prog).CheckFeasibility(path)
		if rs.Status == smt.StatusUnsat && rp.Status == smt.StatusSat {
			t.Fatalf("skip slice unsound\n%s", src)
		}
	}
}
