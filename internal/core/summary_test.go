package core_test

import (
	"context"
	"path/filepath"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
)

// callHeavy repeatedly invokes a callee that modifies the live lvalue,
// so every iteration's frame is walked (return edge taken) and — with
// summaries on — every iteration after the first is a table hit.
const callHeavy = `
int x;

void bump() {
  x = x + 1;
}

void main() {
  x = 0;
  for (int i = 0; i < 12; i = i + 1) {
    bump();
  }
  if (x > 100) {
    error;
  }
}
`

// callHeavyMixed alternates a relevant callee with an irrelevant one
// and nests calls two deep, exercising summary recording inside an
// enclosing recording.
const callHeavyMixed = `
int x;
int y;

void bump() {
  x = x + 1;
}

void noise() {
  y = y * 2 + 1;
}

void outer() {
  bump();
  noise();
}

void main() {
  x = 0;
  y = 0;
  for (int i = 0; i < 8; i = i + 1) {
    outer();
  }
  if (x > 100) {
    error;
  }
}
`

// sameResult asserts two slicing results are bit-identical modulo the
// summary hit/miss counters themselves.
func sameResult(t *testing.T, name string, off, on *core.Result) {
	t.Helper()
	if len(off.Taken) != len(on.Taken) {
		t.Fatalf("%s: Taken length %d vs %d", name, len(off.Taken), len(on.Taken))
	}
	for i := range off.Taken {
		if off.Taken[i] != on.Taken[i] {
			t.Fatalf("%s: Taken[%d] differs: off=%v on=%v", name, i, off.Taken[i], on.Taken[i])
		}
	}
	if off.KnownInfeasible != on.KnownInfeasible {
		t.Fatalf("%s: KnownInfeasible differs: off=%v on=%v", name, off.KnownInfeasible, on.KnownInfeasible)
	}
	if off.Degraded != on.Degraded {
		t.Fatalf("%s: Degraded differs: off=%v on=%v", name, off.Degraded, on.Degraded)
	}
	if len(off.Live) != len(on.Live) {
		t.Fatalf("%s: Live size differs: off=%v on=%v", name, off.Live.Sorted(), on.Live.Sorted())
	}
	for l := range off.Live {
		if !on.Live.Has(l) {
			t.Fatalf("%s: Live lvalue %v missing with summaries on", name, l)
		}
	}
	a, b := off.Stats, on.Stats
	a.SummaryHits, a.SummaryMisses, a.WalkedEdges = 0, 0, 0
	b.SummaryHits, b.SummaryMisses, b.WalkedEdges = 0, 0, 0
	if a != b {
		t.Fatalf("%s: Stats differ:\n  off: %+v\n  on:  %+v", name, a, b)
	}
}

// TestSummariesBitIdentical is the differential gate at unit scale:
// for each program, each path shape, and each option set, the
// summary-on walk must reproduce the summary-off walk exactly.
func TestSummariesBitIdentical(t *testing.T) {
	srcs := map[string]string{
		"ex1":            ex1,
		"ex2Unshaded":    ex2Unshaded,
		"ex2Shaded":      ex2Shaded,
		"callHeavy":      callHeavy,
		"callHeavyMixed": callHeavyMixed,
	}
	optSets := []core.Options{
		{},
		{SkipFunctions: true},
		{EarlyUnsatStop: true, CheckEvery: 1},
		{EarlyUnsatStop: true, CheckEvery: 3, SkipFunctions: true},
	}
	for name, src := range srcs {
		prog := compile.MustSource(src)
		for _, long := range []bool{false, true} {
			p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: long, MaxEdgeUses: 2})
			if p == nil {
				continue
			}
			for oi, opts := range optSets {
				off := core.NewWithOptions(prog, opts)
				onOpts := opts
				onOpts.Summaries = true
				on := core.NewWithOptions(prog, onOpts)
				resOff, err := off.Slice(p)
				if err != nil {
					t.Fatalf("%s opts %d: off: %v", name, oi, err)
				}
				// Slice twice with the same Slicer so the second pass
				// exercises hits from a warm table.
				for pass := 0; pass < 2; pass++ {
					resOn, err := on.Slice(p)
					if err != nil {
						t.Fatalf("%s opts %d pass %d: on: %v", name, oi, pass, err)
					}
					sameResult(t, name, resOff, resOn)
				}
			}
		}
	}
}

// TestSummariesActuallyHit pins the perf mechanism itself: repeated
// frames of the same context must be served from the table.
func TestSummariesActuallyHit(t *testing.T) {
	prog := compile.MustSource(callHeavy)
	p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 2})
	if p == nil {
		t.Fatal("no path")
	}
	s := core.NewWithOptions(prog, core.Options{Summaries: true})
	res, err := s.Slice(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SummaryHits == 0 {
		t.Fatalf("expected summary hits on repeated calls, got stats %+v", res.Stats)
	}
	if res.Stats.SummaryHits < res.Stats.SummaryMisses {
		t.Fatalf("expected hits to dominate misses: %+v", res.Stats)
	}
	if s.Summ.Len() == 0 || s.Summ.Bytes() == 0 {
		t.Fatal("summary table should have recorded entries")
	}
	// A second path over the same program reuses the warm table.
	res2, err := s.Slice(p)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.SummaryMisses != 0 {
		t.Fatalf("warm table should serve every frame: %+v", res2.Stats)
	}
}

// TestSummariesOffByDefault: the memo must not exist unless requested,
// and never with RecordTrace (the annotated trace needs real walks).
func TestSummariesOffByDefault(t *testing.T) {
	prog := compile.MustSource(callHeavy)
	if s := core.New(prog); s.Summ != nil {
		t.Fatal("summary table built without Options.Summaries")
	}
	s := core.NewWithOptions(prog, core.Options{Summaries: true, RecordTrace: true})
	if s.Summ != nil {
		t.Fatal("summary table must be disabled under RecordTrace")
	}
	p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 2})
	res, err := s.Slice(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SummaryHits != 0 || res.Stats.SummaryMisses != 0 {
		t.Fatalf("no summary traffic expected: %+v", res.Stats)
	}
	if len(res.Trace) == 0 {
		t.Fatal("RecordTrace must still produce the annotated trace")
	}
}

// TestSliceStreamMatchesSliceCtx: the streaming walk over a trace file
// must reproduce the in-memory walk, with and without summaries.
func TestSliceStreamMatchesSliceCtx(t *testing.T) {
	for name, src := range map[string]string{"callHeavy": callHeavy, "ex1": ex1, "mixed": callHeavyMixed} {
		prog := compile.MustSource(src)
		p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 2})
		if p == nil {
			t.Fatalf("%s: no path", name)
		}
		file := filepath.Join(t.TempDir(), "trace.pstrc")
		if err := cfa.WriteTraceFile(file, prog, p); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		for _, summaries := range []bool{false, true} {
			s := core.NewWithOptions(prog, core.Options{Summaries: summaries})
			want, err := s.SliceCtx(context.Background(), p)
			if err != nil {
				t.Fatalf("%s: slice: %v", name, err)
			}
			r, err := cfa.OpenTraceFile(file, prog)
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			got, err := core.NewWithOptions(prog, core.Options{Summaries: summaries}).SliceStream(context.Background(), r)
			if cerr := r.Close(); cerr != nil {
				t.Fatalf("%s: close: %v", name, cerr)
			}
			if err != nil {
				t.Fatalf("%s: stream slice: %v", name, err)
			}
			sameResult(t, name, want, got)
			if len(want.Slice) != len(got.Slice) {
				t.Fatalf("%s: slice length %d vs %d", name, len(want.Slice), len(got.Slice))
			}
			for i := range want.Slice {
				if want.Slice[i].ID != got.Slice[i].ID {
					t.Fatalf("%s: slice edge %d differs", name, i)
				}
			}
			if r.FramesPeak() == 0 {
				t.Fatalf("%s: reader never loaded a block", name)
			}
		}
	}
}
