// Concurrent path slicing: the two-phase walk over interleaved
// multi-threaded traces (docs/CONCURRENCY.md).
//
// Phase 1 (inter-thread) computes the happens-before "racy edges" of
// the trace: conflicting cross-thread accesses to the same storage
// (at least one a write, linked to the immediately preceding
// conflicting access per location, so lock-induced ordering arrives
// for free through the lock shadow variables of internal/instrument)
// plus the spawn/join synchronization edges. The racy-edge endpoints
// split the total order into instruction regions — maximal runs in
// which slicing is a purely thread-local matter.
//
// Phase 2 runs the paper's backward walk per thread over the shared
// total order, newest event first: each thread carries its own live
// set and step location, and every Take decision is the sequential
// predicate (core.take) against the thread-local state. The racy
// edges are load-bearing: at the source of a write→read racy edge the
// walk asks whether the written variable is live in the reading
// thread, and if so forces the write into the slice exactly like a
// same-thread demand would. The transfer is per-variable, not a
// whole-live-set union: a write's cross-thread relevance is precisely
// "some reader still needs this location", and keeping the query that
// narrow makes every Take decision a function of the conflict partial
// order alone — reordering two adjacent events with no racy edge
// between them provably cannot change any decision, which is the
// commute invariant the oracle checks (internal/oracle). Kills stay
// thread-local (a cross-thread kill would be unsound), so concurrent
// slices are conservative supersets.
//
// Frame skipping at untaken returns survives for frames that are
// conflict-free — no write→read racy edge leaves the frame with its
// variable still demanded by the reading thread — and contain no
// spawn/join. The demand test is the same per-variable query the
// merge uses, so it too depends only on the conflict partial order;
// sync and read→write/write→write edges never block a skip, because
// dropping a read or an overwritten write cannot lose a demanded
// value. The same rule, applied to a thread's outermost return, skips
// entire irrelevant threads.
//
// The §4.2 optimizations (EarlyUnsatStop, SkipFunctions), frame
// summaries, and streaming apply only to sequential traces and are
// ignored here: an unsat verdict under the recorded interleaving
// would not prove all feasible interleavings unsat, and summary
// contexts are not stable under cross-thread merges.

package core

import (
	"context"
	"fmt"
	"time"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// Concurrency metrics (docs/OBSERVABILITY.md).
var (
	mConcSlices = obs.Default().Counter("slicer_conc_slices_total")
	mRacyEdges  = obs.Default().Counter("slicer_racy_edges_total")
	mRegions    = obs.Default().Counter("slicer_regions_total")
)

// RacyKind classifies a racy edge.
type RacyKind int

// The racy-edge kinds. Only write→read edges carry live-set transfer
// during the walk; all kinds constrain reordering and delimit regions.
const (
	// RacyWriteRead: the source writes a location the target reads.
	RacyWriteRead RacyKind = iota
	// RacyReadWrite: the source reads a location the target overwrites.
	RacyReadWrite
	// RacyWriteWrite: both access points write the same location.
	RacyWriteWrite
	// RacySync: spawn→first-child-event and last-child-event→join.
	RacySync
)

// String names the kind.
func (k RacyKind) String() string {
	switch k {
	case RacyWriteRead:
		return "write-read"
	case RacyReadWrite:
		return "read-write"
	case RacyWriteWrite:
		return "write-write"
	case RacySync:
		return "sync"
	}
	return "?"
}

// RacyEdge is a happens-before constraint between two trace positions
// on different threads: the event at From must stay ordered before the
// event at To in any reordering of the trace.
type RacyEdge struct {
	From, To int
	Var      string // conflicting concrete variable ("" for sync edges)
	Kind     RacyKind
}

// ConcStats extends Stats with the inter-thread phase's measures.
type ConcStats struct {
	Stats
	Threads   int
	RacyEdges int
	Regions   int
	// SkippedThreads counts whole threads dropped at an untaken
	// outermost return.
	SkippedThreads int
}

// ConcResult is the outcome of slicing one concurrent trace.
type ConcResult struct {
	// Slice is the kept sub-trace, in the original total order.
	Slice cfa.ConcTrace
	// Taken[i] reports whether trace event i is in the slice.
	Taken []bool
	// Live is the union of the per-thread live sets where each thread's
	// walk stopped: the lvalues whose initial values the slice depends
	// on.
	Live cfa.LvalSet
	// Racy holds the phase-1 racy edges of the input trace.
	Racy []RacyEdge
	// Degraded mirrors Result.Degraded: a deadline or unanswerable
	// relevance query forced conservative keeps.
	Degraded bool
	Stats    ConcStats
}

// eventAccess returns the concrete variables op reads and writes, with
// dereferences expanded through the points-to sets, for conflict
// detection. Spawn, join, call, and return events access nothing
// themselves — the callee's operations appear in the trace in person.
func (s *Slicer) eventAccess(op cfa.Op) (reads, writes []string) {
	for l := range op.Rd() {
		if l.Deref {
			reads = append(reads, s.Alias.Pts(l.Var)...)
		} else {
			reads = append(reads, l.Var)
		}
	}
	if op.Kind == cfa.OpAssign {
		writes = s.Alias.WrittenVars(op.LHS)
	}
	return reads, writes
}

// RacyEdges runs phase 1: the happens-before edges of the trace.
// Conflicting-access edges link each access to the immediately
// preceding cross-thread conflicting access per concrete variable;
// sync edges tie each spawn to its child's first event and each
// child's last event to the spawner's next join.
func (s *Slicer) RacyEdges(tr cfa.ConcTrace) []RacyEdge {
	type access struct {
		pos, tid int
	}
	var edges []RacyEdge
	lastWrite := make(map[string]access)
	readersSince := make(map[string][]access)
	for i, ev := range tr {
		reads, writes := s.eventAccess(ev.Edge.Op)
		for _, v := range reads {
			if w, ok := lastWrite[v]; ok && w.tid != ev.TID {
				edges = append(edges, RacyEdge{From: w.pos, To: i, Var: v, Kind: RacyWriteRead})
			}
			readersSince[v] = append(readersSince[v], access{pos: i, tid: ev.TID})
		}
		for _, v := range writes {
			if w, ok := lastWrite[v]; ok && w.tid != ev.TID {
				edges = append(edges, RacyEdge{From: w.pos, To: i, Var: v, Kind: RacyWriteWrite})
			}
			for _, r := range readersSince[v] {
				if r.tid != ev.TID {
					edges = append(edges, RacyEdge{From: r.pos, To: i, Var: v, Kind: RacyReadWrite})
				}
			}
			lastWrite[v] = access{pos: i, tid: ev.TID}
			delete(readersSince, v)
		}
	}
	// Sync edges. Thread IDs are positional (the k-th spawn creates
	// thread k), so one forward scan recovers the spawn structure.
	tidx := tr.ThreadIndex()
	spawns := 0
	for i, ev := range tr {
		if ev.Edge.Op.Kind != cfa.OpSpawn {
			continue
		}
		spawns++
		child := spawns
		if child >= len(tidx) || len(tidx[child]) == 0 {
			continue // the child never ran
		}
		first, last := tidx[child][0], tidx[child][len(tidx[child])-1]
		edges = append(edges, RacyEdge{From: i, To: first, Kind: RacySync})
		// The spawner's first join after the child's last event.
		for _, j := range tidx[ev.TID] {
			if j > last && tr[j].Edge.Op.Kind == cfa.OpJoin {
				edges = append(edges, RacyEdge{From: last, To: j, Kind: RacySync})
				break
			}
		}
	}
	return edges
}

// concRegions counts the instruction regions the racy edges cut the
// trace into: region boundaries fall immediately after each edge
// source and immediately before each edge target, and a region is a
// maximal boundary-free run of consecutive events.
func concRegions(n int, edges []RacyEdge) int {
	if n == 0 {
		return 0
	}
	breaks := make(map[int]bool)
	for _, e := range edges {
		if e.From < n-1 {
			breaks[e.From] = true
		}
		if e.To > 0 && e.To-1 < n-1 {
			breaks[e.To-1] = true
		}
	}
	return 1 + len(breaks)
}

// ConcSlice runs the two-phase concurrent walk over a validated trace.
func (s *Slicer) ConcSlice(tr cfa.ConcTrace) (*ConcResult, error) {
	return s.ConcSliceCtx(context.Background(), tr)
}

// ConcSliceCtx is ConcSlice under a context. Expiry mid-walk keeps
// every unexamined event — a sound, degraded superset, as in SliceCtx.
func (s *Slicer) ConcSliceCtx(ctx context.Context, tr cfa.ConcTrace) (res *ConcResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if verr := tr.Validate(s.Prog); verr != nil {
		return nil, fmt.Errorf("core: %w", verr)
	}
	sp := obs.StartSpan(obs.PhasePathSlice)
	start := time.Now()
	defer func() {
		mSliceNS.ObserveDuration(time.Since(start))
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			mRecoveredPanics.Inc()
			res, err = nil, fmt.Errorf("core: panic during concurrent slicing: %v", r)
		}
	}()
	w := &concWalker{s: s, tr: tr}
	return w.run(ctx)
}

// concWalker is the state of one concurrent backward pass.
type concWalker struct {
	s  *Slicer
	tr cfa.ConcTrace

	res      *ConcResult
	tidx     [][]int // thread -> trace positions, in order
	localIdx []int   // trace position -> index within its thread
	callIdx  [][]int // per thread: local §4 call structure
	// threadOps[t][k] counts spawn/join ops among thread t's first k
	// local events, for O(1) "does this frame contain thread ops" tests.
	threadOps [][]int

	live      []cfa.LvalSet
	pcStep    []*cfa.Loc
	dropUntil []int // per thread: local index floor of a committed skip, -1 none

	// wrFrom[pos] lists the write→read racy edges whose source is pos.
	wrFrom map[int][]RacyEdge
	// spawnChild[pos] is the thread created by the spawn event at pos.
	spawnChild map[int]int
	// stale supports UnsoundStaleThreadLiveSet: the first demand query
	// against thread u snapshots u's live set; later queries reuse it.
	stale map[int]cfa.LvalSet
}

func (w *concWalker) run(ctx context.Context) (*ConcResult, error) {
	s, tr := w.s, w.tr
	n := len(tr)
	nt := tr.NumThreads()

	w.res = &ConcResult{Taken: make([]bool, n), Live: cfa.NewLvalSet()}
	w.res.Stats.InputEdges = n
	w.res.Stats.Threads = nt

	w.tidx = tr.ThreadIndex()
	w.localIdx = make([]int, n)
	w.callIdx = make([][]int, nt)
	w.threadOps = make([][]int, nt)
	for t, idxs := range w.tidx {
		p := make(cfa.Path, len(idxs))
		ops := make([]int, len(idxs)+1)
		for k, pos := range idxs {
			w.localIdx[pos] = k
			p[k] = tr[pos].Edge
			ops[k+1] = ops[k]
			if kd := p[k].Op.Kind; kd == cfa.OpSpawn || kd == cfa.OpJoin {
				ops[k+1]++
			}
		}
		if len(p) > 0 {
			w.callIdx[t] = p.CallIdx()
		}
		w.threadOps[t] = ops
		w.res.Stats.InputBlocks += p.BasicBlocks()
	}

	// Phase 1: racy edges and regions.
	w.res.Racy = s.RacyEdges(tr)
	w.res.Stats.RacyEdges = len(w.res.Racy)
	w.res.Stats.Regions = concRegions(n, w.res.Racy)

	w.wrFrom = make(map[int][]RacyEdge)
	if s.Opts.Unsound != UnsoundDropRacyEdges {
		for _, re := range w.res.Racy {
			if re.Kind == RacyWriteRead {
				w.wrFrom[re.From] = append(w.wrFrom[re.From], re)
			}
		}
	}
	w.spawnChild = make(map[int]int)
	spawns := 0
	for i, ev := range tr {
		if ev.Edge.Op.Kind == cfa.OpSpawn {
			spawns++
			w.spawnChild[i] = spawns
		}
	}

	w.live = make([]cfa.LvalSet, nt)
	w.pcStep = make([]*cfa.Loc, nt)
	w.dropUntil = make([]int, nt)
	for t := 0; t < nt; t++ {
		w.live[t] = cfa.NewLvalSet()
		w.dropUntil[t] = -1
	}
	w.stale = make(map[int]cfa.LvalSet)

	// Phase 2: the backward walk over the total order.
	for i := n - 1; i >= 0; i-- {
		if ctx.Err() != nil {
			for j := i; j >= 0; j-- {
				if !w.res.Taken[j] {
					w.res.Taken[j] = true
					w.countTaken(tr[j].Edge.Op.Kind)
				}
			}
			w.res.Degraded = true
			break
		}
		ev := tr[i]
		t, li := ev.TID, w.localIdx[i]
		if w.dropUntil[t] >= 0 {
			// Inside a committed frame or thread skip.
			if li == w.dropUntil[t] {
				w.dropUntil[t] = -1
			}
			continue
		}
		if w.pcStep[t] == nil {
			w.pcStep[t] = ev.Edge.Dst
		}
		w.res.Stats.WalkedEdges++
		e, op := ev.Edge, ev.Edge.Op

		taken, degraded := false, false
		switch op.Kind {
		case cfa.OpSpawn:
			// The spawned child's residual demands flow into the spawner:
			// whatever the child's walk still needs at its creation point
			// must be preserved by the parent's earlier writes.
			if c, ok := w.spawnChild[i]; ok && c < len(w.live) {
				w.live[t].AddAll(w.live[c])
			}
			taken = true
		case cfa.OpJoin, cfa.OpCall:
			taken = true
		case cfa.OpReturn:
			taken = w.takeReturn(i, t, li)
		default:
			if w.crossDemand(i) {
				taken = true
			} else {
				taken, degraded = s.take(op, e, w.live[t], w.pcStep[t])
			}
		}
		if degraded {
			w.res.Degraded = true
		}
		if taken {
			w.res.Taken[i] = true
			w.countTaken(op.Kind)
			w.takeLiveThread(t, op)
			w.pcStep[t] = e.Src
			continue
		}
		if op.Kind == cfa.OpReturn {
			// Commit the skip: to the call edge for an inner frame, or
			// the whole thread for an outermost return.
			if c := w.callIdx[t][li]; c >= 0 {
				w.dropUntil[t] = c
				w.res.Stats.SkippedFrames++
			} else {
				w.dropUntil[t] = 0
				w.res.Stats.SkippedThreads++
			}
		}
	}

	for t := 0; t < nt; t++ {
		w.res.Live.AddAll(w.live[t])
	}
	for i, tk := range w.res.Taken {
		if tk {
			w.res.Slice = append(w.res.Slice, tr[i])
		}
	}
	w.res.Stats.SliceEdges = len(w.res.Slice)
	for t := 0; t < tr.NumThreads(); t++ {
		w.res.Stats.SliceBlocks += w.res.Slice.ThreadPath(t).BasicBlocks()
	}
	mConcSlices.Inc()
	mSlices.Inc()
	mInputEdges.Add(int64(n))
	mSliceEdges.Add(int64(w.res.Stats.SliceEdges))
	mRacyEdges.Add(int64(w.res.Stats.RacyEdges))
	mRegions.Add(int64(w.res.Stats.Regions))
	if n > 0 {
		mRatioPercent.Observe(int64(100 * w.res.Stats.Ratio()))
	}
	if w.res.Degraded {
		mDegraded.Inc()
	}
	return w.res, nil
}

// crossDemand reports whether the event at trace position i — the
// source of one or more write→read racy edges — writes a variable some
// reading thread still finds live. A positive answer forces the event
// into the slice: a cross-thread demand is as binding as a same-thread
// one. The query is per-variable against the reader's live set, so the
// answer depends only on the conflict partial order of the trace, not
// on where unrelated events happen to sit in the total order. Under
// UnsoundStaleThreadLiveSet the query runs against the snapshot taken
// at the first query of each thread — the planted staleness bug.
func (w *concWalker) crossDemand(i int) bool {
	for _, re := range w.wrFrom[i] {
		u := w.tr[re.To].TID
		set := w.live[u]
		if w.s.Opts.Unsound == UnsoundStaleThreadLiveSet {
			snap, ok := w.stale[u]
			if !ok {
				snap = w.live[u].Copy()
				w.stale[u] = snap
			}
			set = snap
		}
		if demandsVar(set, re.Var, w.s.Alias) {
			return true
		}
	}
	return false
}

// demandsVar reports whether a live set demands the concrete variable
// v, looking through pointer lvalues via the points-to sets.
func demandsVar(live cfa.LvalSet, v string, al *alias.Info) bool {
	for l := range live {
		if !l.Deref {
			if l.Var == v {
				return true
			}
			continue
		}
		for _, p := range al.Pts(l.Var) {
			if p == v {
				return true
			}
		}
	}
	return false
}

// takeReturn decides a return edge: keep it when the returning frame
// (or, for an outermost return, the whole thread) may write anything
// its own thread finds live, when any frame event sources a write→read
// racy edge, or when the frame contains spawn/join events that the
// slice must preserve. The racy test is pure edge existence, not
// current demand: a reading event below the return has not been walked
// yet, so its demand is unknowable at commit time, and existence is a
// property of the conflict structure alone — the same trace reordered
// across non-conflicting pairs has the same sourced-edge sets, which
// keeps the skip decision commute-invariant. A frame with an outgoing
// edge is simply walked event by event; each source then answers the
// precise per-variable demand query at its own position, where every
// later event has been processed.
func (w *concWalker) takeReturn(i, t, li int) bool {
	if w.s.Opts.Unsound == UnsoundSkipCallees {
		return false
	}
	if w.s.Mods.ModsAny(w.tr[i].Edge.Src.Fn.Name, w.live[t]) {
		return true
	}
	lo := w.callIdx[t][li] // -1 for an outermost return: drop to local 0
	if lo < 0 {
		lo = 0
	}
	// The range must not swallow spawn/join events.
	if w.threadOps[t][li+1]-w.threadOps[t][lo] > 0 {
		return true
	}
	// No dropped event may source a write→read edge: another thread
	// reads one of the frame's writes, so the skip could lose it.
	for k := lo; k <= li; k++ {
		if len(w.wrFrom[w.tidx[t][k]]) > 0 {
			return true
		}
	}
	return false
}

// takeLiveThread is takeLive against thread t's live set: kills are
// thread-local (a cross-thread kill would be unsound), reads are added.
func (w *concWalker) takeLiveThread(t int, op cfa.Op) {
	if op.Kind == cfa.OpAssign {
		for _, l := range w.s.Alias.MustWritten(op.LHS) {
			w.live[t].Remove(l)
		}
	}
	w.live[t].AddAll(op.Rd())
}

// countTaken charges one kept event to its per-kind counter.
func (w *concWalker) countTaken(k cfa.OpKind) {
	st := &w.res.Stats
	switch k {
	case cfa.OpAssign:
		st.TakenAssign++
	case cfa.OpAssume:
		st.TakenAssume++
	case cfa.OpCall:
		st.TakenCall++
	case cfa.OpReturn:
		st.TakenReturn++
	case cfa.OpSpawn:
		st.TakenSpawn++
	case cfa.OpJoin:
		st.TakenJoin++
	}
}

// CheckConcFeasibility asks the decision procedure about a concurrent
// trace's recorded linearization. Threads share all memory, so the
// trace's constraint formula is the sequential encoding of its
// total-order operation sequence (spawn and join encode as true). Note
// the verdict speaks only for this interleaving: an Unsat recorded
// order says nothing about other legal reorderings, which is exactly
// why the concurrent walk never early-stops.
func (s *Slicer) CheckConcFeasibility(tr cfa.ConcTrace) (smt.Result, *wp.TraceEncoder) {
	sp := obs.StartSpan(obs.PhaseFeasibility)
	defer sp.End()
	enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
	f := enc.EncodeTrace(tr.Ops())
	if s.Opts.Portfolio {
		return smt.SolvePortfolioCtx(context.Background(), f, s.Opts.SolverLimits), enc
	}
	return smt.SolveCtx(context.Background(), f, s.Opts.SolverLimits), enc
}
