package core_test

import (
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/smt"
)

// ex2Unshaded is the paper's Figure 1 program Ex2 WITHOUT the shaded
// code: x is never written and a is unconstrained, so the target is
// reachable — but only along paths with 1000 loop iterations.
const ex2Unshaded = `
int x;
int a;

void f() { skip; }

void main() {
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

// ex2Shaded adds the shaded code: x = 0 initially and x set to 1
// whenever a >= 0, making the target unreachable.
const ex2Shaded = `
int x = 0;
int a;

void f() { skip; }

void main() {
  if (a >= 0) {
    x = 1;
  }
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

// ex1 is the paper's Figure 2 program: complex computation on one
// branch, trivial constant on the other.
const ex1 = `
int a;
int x;

int complexfn(int n) {
  int r = 1;
  for (int i = 0; i < n; i = i + 1) {
    r = r * r + i;
  }
  return r;
}

void main() {
  a = nondet();
  if (a > 0) {
    x = complexfn(a);
  } else {
    x = 5;
  }
  if (x == 5) {
    error;
  }
}
`

func slicerFor(t *testing.T, src string) (*core.Slicer, *cfa.Program) {
	t.Helper()
	prog := compile.MustSource(src)
	return core.New(prog), prog
}

func errorPath(t *testing.T, prog *cfa.Program, long bool) cfa.Path {
	t.Helper()
	p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: long, MaxEdgeUses: 2})
	if p == nil {
		t.Fatal("no path to error location")
	}
	return p
}

// sliceHasFn reports whether any slice edge lies in the given function.
func sliceHasFn(p cfa.Path, fn string) bool {
	for _, e := range p {
		if e.Src.Fn.Name == fn {
			return true
		}
	}
	return false
}

func TestEx2UnshadedSlice(t *testing.T) {
	s, prog := slicerFor(t, ex2Unshaded)
	path := errorPath(t, prog, true) // unroll the loop like the paper's trace
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Subsequence(res.Slice) {
		t.Fatal("slice must be a subsequence of the path")
	}
	// The loop and f must be sliced away entirely.
	if sliceHasFn(res.Slice, "f") {
		t.Errorf("slice retains edges of irrelevant function f:\n%s", res.Slice)
	}
	for _, e := range res.Slice {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "main::i" {
			t.Errorf("slice retains loop counter assignment: %s", e)
		}
		if e.Op.Kind == cfa.OpCall {
			t.Errorf("slice retains call edge: %s", e)
		}
	}
	// The slice must be dramatically smaller than the unrolled path.
	if res.Stats.SliceEdges >= res.Stats.InputEdges/2 {
		t.Errorf("slice too large: %d of %d edges", res.Stats.SliceEdges, res.Stats.InputEdges)
	}
	// The path itself is infeasible (only 2 loop iterations), but the
	// slice must be feasible: the target is genuinely reachable.
	r, _ := s.CheckFeasibility(path)
	if r.Status != smt.StatusUnsat {
		t.Fatalf("the unrolled-twice path must be infeasible, got %s", r.Status)
	}
	r, enc := s.CheckFeasibility(res.Slice)
	if r.Status != smt.StatusSat {
		t.Fatalf("slice must be feasible (completeness): %s\n%s", r.Status, res.Slice)
	}
	// Completeness, concretely: the model's initial state must reach
	// the target in the interpreter (the program terminates).
	st := interp.NewState(prog, s.Addrs)
	for k, v := range enc.DecodeInitialState(r.Model, prog) {
		st.Set(k, v)
	}
	run := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{MaxSteps: 100000})
	if !run.ReachedError {
		t.Fatalf("completeness violated: model state does not reach the target (%+v)", run)
	}
}

func TestEx2ShadedSliceInfeasible(t *testing.T) {
	s, prog := slicerFor(t, ex2Shaded)
	path := errorPath(t, prog, true)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	// Loop still sliced away.
	if sliceHasFn(res.Slice, "f") {
		t.Errorf("slice retains f:\n%s", res.Slice)
	}
	// The slice must be infeasible: the two branches on a (and the
	// writes to x) are inconsistent, reflecting true unreachability.
	r, _ := s.CheckFeasibility(res.Slice)
	if r.Status != smt.StatusUnsat {
		t.Fatalf("shaded Ex2 slice must be infeasible, got %s:\n%s", r.Status, res.Slice)
	}
	// Soundness cross-check: the full path must also be infeasible.
	r2, _ := s.CheckFeasibility(path)
	if r2.Status != smt.StatusUnsat {
		t.Fatalf("soundness: slice unsat requires path unsat, got %s", r2.Status)
	}
}

func TestEx1ComplexSlicedAway(t *testing.T) {
	s, prog := slicerFor(t, ex1)
	// Find a path through the else branch (the short path: complexfn is
	// longer).
	path := errorPath(t, prog, false)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if sliceHasFn(path, "complexfn") {
		// The chosen path went through complexfn; force the else path
		// by checking that the slice at least drops complexfn when the
		// path avoids it. Find the else path explicitly.
		t.Skip("path finder picked the complex branch; covered by other tests")
	}
	if sliceHasFn(res.Slice, "complexfn") {
		t.Errorf("slice retains complexfn:\n%s", res.Slice)
	}
	r, enc := s.CheckFeasibility(res.Slice)
	if r.Status != smt.StatusSat {
		t.Fatalf("else-branch slice must be feasible: %s", r.Status)
	}
	// All states satisfying a <= 0 reach the target; check the model.
	st := interp.NewState(prog, s.Addrs)
	for k, v := range enc.DecodeInitialState(r.Model, prog) {
		st.Set(k, v)
	}
	// a is assigned from nondet: feed the model's first input.
	ins := &interp.SliceInputs{Vals: []int64{r.Model["$in1"]}}
	run := interp.Run(prog, st, ins, interp.RunOptions{MaxSteps: 100000})
	if !run.ReachedError {
		t.Fatalf("model state must reach the target: %+v", run)
	}
}

func TestIrrelevantCalleeFrameSkipped(t *testing.T) {
	s, prog := slicerFor(t, `
		int g;
		void noise() {
			int t = 0;
			for (int i = 0; i < 5; i = i + 1) { t = t + i; }
		}
		void main() {
			g = 1;
			noise();
			if (g == 1) { error; }
		}`)
	path := errorPath(t, prog, true)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if sliceHasFn(res.Slice, "noise") {
		t.Errorf("noise must be sliced away:\n%s", res.Slice)
	}
	if res.Stats.SkippedFrames == 0 {
		t.Error("expected a skipped frame")
	}
	// g := 1 must be kept.
	found := false
	for _, e := range res.Slice {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "g" {
			found = true
		}
	}
	if !found {
		t.Errorf("slice must keep g := 1:\n%s", res.Slice)
	}
	if r, _ := s.CheckFeasibility(res.Slice); r.Status != smt.StatusSat {
		t.Error("slice must be feasible")
	}
}

func TestRelevantCalleeKept(t *testing.T) {
	s, prog := slicerFor(t, `
		int g;
		void setit() { g = 1; }
		void main() {
			g = 0;
			setit();
			if (g == 1) { error; }
		}`)
	path := errorPath(t, prog, false)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sliceHasFn(res.Slice, "setit") {
		t.Fatalf("setit writes a live variable; its frame must be analyzed:\n%s", res.Slice)
	}
	// The call edge must be in the slice (calls are always taken when
	// their frame is entered).
	hasCall := false
	for _, e := range res.Slice {
		if e.Op.Kind == cfa.OpCall && e.Op.Callee == "setit" {
			hasCall = true
		}
	}
	if !hasCall {
		t.Error("call edge missing from slice")
	}
	if r, _ := s.CheckFeasibility(res.Slice); r.Status != smt.StatusSat {
		t.Error("slice must be feasible")
	}
}

func TestPointerWriteKept(t *testing.T) {
	s, prog := slicerFor(t, `
		int x; int y; int *p;
		void main() {
			x = 0;
			if (nondet()) { p = &x; } else { p = &y; }
			*p = 1;
			if (x == 1) { error; }
		}`)
	path := errorPath(t, prog, false)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	// *p = 1 may write the live x: must be kept.
	found := false
	for _, e := range res.Slice {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Deref {
			found = true
		}
	}
	if !found {
		t.Fatalf("store through *p may-aliases live x; must be kept:\n%s", res.Slice)
	}
}

func TestSoundnessOnRandomishPaths(t *testing.T) {
	// For a batch of programs and paths: if the slice trace is
	// infeasible, the full path trace must be infeasible.
	sources := []string{
		ex2Unshaded, ex2Shaded, ex1,
		`int a; int b;
		 void main() {
			a = 1;
			b = a + 1;
			while (b < 10) { b = b + 2; }
			if (b == 11) { error; }
		 }`,
		`int a;
		 void main() {
			a = nondet();
			if (a > 0) { a = a + 1; } else { a = a - 1; }
			if (a == 0) { error; }
		 }`,
	}
	for si, src := range sources {
		s, prog := slicerFor(t, src)
		for _, long := range []bool{false, true} {
			path := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: long, MaxEdgeUses: 2})
			if path == nil {
				continue
			}
			res, err := s.Slice(path)
			if err != nil {
				t.Fatalf("source %d: %v", si, err)
			}
			if !path.Subsequence(res.Slice) {
				t.Fatalf("source %d: slice not a subsequence", si)
			}
			rs, _ := s.CheckFeasibility(res.Slice)
			rp, _ := s.CheckFeasibility(path)
			if rs.Status == smt.StatusUnsat && rp.Status == smt.StatusSat {
				t.Errorf("source %d long=%v: SOUNDNESS VIOLATION: slice unsat, path sat\npath:\n%s\nslice:\n%s",
					si, long, path, res.Slice)
			}
			// The dual (not required, but a strong signal): if the path
			// is feasible the slice must be feasible (slice trace is
			// implied by path trace).
			if rp.Status == smt.StatusSat && rs.Status == smt.StatusUnsat {
				t.Errorf("source %d: feasible path with infeasible slice", si)
			}
		}
	}
}

func TestEarlyUnsatStop(t *testing.T) {
	src := `
		int a;
		void f() { skip; }
		void main() {
			a = 5;
			f();
			if (a == 5) {
				if (a == 6) {
					error;
				}
			}
		}`
	prog := compile.MustSource(src)
	s := core.NewWithOptions(prog, core.Options{EarlyUnsatStop: true})
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.KnownInfeasible {
		t.Fatalf("early stop must detect infeasibility (stats %+v)\nslice:\n%s", res.Stats, res.Slice)
	}
	if res.Stats.SolverChecks == 0 {
		t.Error("no solver checks recorded")
	}
	// The partial slice must still certify infeasibility.
	if r, _ := s.CheckFeasibility(res.Slice); r.Status != smt.StatusUnsat {
		t.Error("early-stopped slice must be unsatisfiable")
	}
}

func TestSkipFunctionsOptimization(t *testing.T) {
	// A deep call chain with guards irrelevant to the property: each
	// level calls the next under some condition on its own local.
	src := `
		int g;
		void level3() {
			if (g == 1) { error; }
		}
		void level2(int k) {
			int t = k + 1;
			if (t > 0) { level3(); }
		}
		void level1(int k) {
			int t = k * 2;
			if (t < 100) { level2(t); }
		}
		void main() {
			g = 1;
			level1(3);
		}`
	prog := compile.MustSource(src)
	base := core.New(prog)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	resBase, err := base.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	skip := core.NewWithOptions(prog, core.Options{SkipFunctions: true})
	resSkip, err := skip.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	if resSkip.Stats.SliceEdges > resBase.Stats.SliceEdges {
		t.Errorf("SkipFunctions must not grow the slice: %d > %d",
			resSkip.Stats.SliceEdges, resBase.Stats.SliceEdges)
	}
	if resSkip.Stats.SkippedGuardChains == 0 {
		t.Errorf("expected skipped guard chains; stats %+v\nbase slice:\n%s\nskip slice:\n%s",
			resSkip.Stats, resBase.Slice, resSkip.Slice)
	}
	// Soundness is preserved: the skip slice is sat here (bug is real).
	if r, _ := skip.CheckFeasibility(resSkip.Slice); r.Status != smt.StatusSat {
		t.Errorf("skip slice should be feasible: %s", r.Status)
	}
}

func TestStatsAndRatio(t *testing.T) {
	s, prog := slicerFor(t, ex2Unshaded)
	path := errorPath(t, prog, true)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.InputEdges != len(path) || st.SliceEdges != len(res.Slice) {
		t.Errorf("edge counts wrong: %+v", st)
	}
	if st.Ratio() <= 0 || st.Ratio() > 1 {
		t.Errorf("ratio out of range: %f", st.Ratio())
	}
	if st.InputBlocks <= 0 || st.SliceBlocks <= 0 {
		t.Errorf("block counts: %+v", st)
	}
	if st.TakenAssume == 0 {
		t.Error("the branch assumes must be taken")
	}
}

func TestSliceInvalidPathRejected(t *testing.T) {
	s, prog := slicerFor(t, ex2Unshaded)
	path := errorPath(t, prog, false)
	// Remove a middle edge: no longer a valid program path.
	bad := append(cfa.Path{}, path[:1]...)
	bad = append(bad, path[2:]...)
	if _, err := s.Slice(bad); err == nil {
		t.Fatal("invalid path must be rejected")
	}
	_ = prog
}

func TestDerefReadKeepsPointerLive(t *testing.T) {
	// Reading *p keeps both p and *p live, so assignments to p must be
	// taken.
	s, prog := slicerFor(t, `
		int x; int y; int *p;
		void main() {
			x = 3;
			p = &x;
			if (nondet()) { p = &y; }
			int v = *p;
			if (v == 3) { error; }
		}`)
	path := errorPath(t, prog, false)
	res, err := s.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	keptP := false
	for _, e := range res.Slice {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "p" {
			keptP = true
		}
	}
	if !keptP {
		t.Fatalf("assignments to p feed the deref and must be kept:\n%s", res.Slice)
	}
}
