package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/wp"
)

// concWriterJoined: the worker's writes are ordered before main's
// reads by the join, but they live on another thread, so only the
// racy-edge merges can carry main's demands into the worker.
const concWriterJoined = `
int g;
int done;

void worker() {
  g = 42;
  done = 1;
}

void main() {
  spawn worker();
  join;
  if (done == 1) {
    if (g == 42) {
      error;
    }
  }
}
`

// concRacy: the error is reachable only under interleavings where the
// worker's write lands before main samples g — a genuine race.
const concRacy = `
int g;

void worker() {
  g = 1;
}

void main() {
  int x;
  x = 0;
  spawn worker();
  x = g;
  join;
  if (x == 1) {
    error;
  }
}
`

// concIrrelevantThread spawns a thread whose writes nothing reads; its
// whole body should be sliced away when its span is atomic.
const concIrrelevantThread = `
int g;
int noise;

void chatter() {
  noise = 1;
  noise = noise + 1;
  noise = noise + 2;
}

void main() {
  g = 7;
  spawn chatter();
  join;
  if (g == 7) {
    error;
  }
}
`

// concErrorTrace drives ConcRun over seeds until one interleaving
// reaches the error location, and returns its recorded trace.
func concErrorTrace(t *testing.T, prog *cfa.Program, seeds int) cfa.ConcTrace {
	t.Helper()
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		st := interp.NewState(prog, wp.NewAddrMap(prog))
		r := interp.ConcRun(prog, st, interp.ZeroInputs{}, interp.ConcRunOptions{
			RecordTrace: true, Seed: seed,
		})
		if r.ReachedError {
			return r.Trace
		}
	}
	t.Fatalf("no interleaving reached the error location in %d seeds", seeds)
	return nil
}

func takenWriteOf(res *core.ConcResult, tr cfa.ConcTrace, lhs string) bool {
	for i, ev := range tr {
		op := ev.Edge.Op
		if op.Kind == cfa.OpAssign && op.LHS.Var == lhs && !op.LHS.Deref && res.Taken[i] {
			return true
		}
	}
	return false
}

// TestConcCrossThreadDemandKept: the worker's writes feed main's
// guards across the thread boundary; the write→read racy edges must
// pull them into the slice, and the planted DropRacyEdges mode must
// lose them (which the oracle campaign then catches as unsound).
func TestConcCrossThreadDemandKept(t *testing.T) {
	prog := compile.MustSource(concWriterJoined)
	tr := concErrorTrace(t, prog, 50)

	res, err := core.New(prog).ConcSlice(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Threads != 2 {
		t.Fatalf("Threads = %d, want 2", res.Stats.Threads)
	}
	if res.Stats.RacyEdges == 0 {
		t.Fatal("expected racy edges between worker writes and main reads")
	}
	if !takenWriteOf(res, tr, "g") || !takenWriteOf(res, tr, "done") {
		t.Fatalf("cross-thread writes missing from slice:\n%s", res.Slice)
	}
	if res.Stats.TakenSpawn == 0 || res.Stats.TakenJoin == 0 {
		t.Fatalf("spawn/join must always be kept: %+v", res.Stats)
	}

	bad := core.NewWithOptions(prog, core.Options{Unsound: core.UnsoundDropRacyEdges})
	bres, err := bad.ConcSlice(tr)
	if err != nil {
		t.Fatal(err)
	}
	if takenWriteOf(bres, tr, "g") {
		t.Fatal("UnsoundDropRacyEdges still kept the cross-thread write; the planted bug is inert")
	}
}

// TestConcRacyInterleavingSliced: a slice of a genuinely racy trace
// keeps the racing write, and replaying the slice's operation sequence
// still reaches the error.
func TestConcRacyInterleavingSliced(t *testing.T) {
	prog := compile.MustSource(concRacy)
	tr := concErrorTrace(t, prog, 200)

	res, err := core.New(prog).ConcSlice(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !takenWriteOf(res, tr, "g") {
		t.Fatalf("racing write g=1 missing from slice:\n%s", res.Slice)
	}
	st := interp.NewState(prog, wp.NewAddrMap(prog))
	if ok, err := st.ExecTrace(res.Slice.Ops(), interp.ZeroInputs{}); err != nil || !ok {
		t.Fatalf("slice replay failed: ok=%v err=%v", ok, err)
	}
}

// TestConcIrrelevantThreadSkipped: a thread nothing depends on is
// dropped whole at its untaken outermost return — provided its events
// are contiguous in the total order.
func TestConcIrrelevantThreadSkipped(t *testing.T) {
	prog := compile.MustSource(concIrrelevantThread)
	found := false
	for seed := uint64(0); seed < 100; seed++ {
		st := interp.NewState(prog, wp.NewAddrMap(prog))
		r := interp.ConcRun(prog, st, interp.ZeroInputs{}, interp.ConcRunOptions{
			RecordTrace: true, Seed: seed,
		})
		if !r.ReachedError {
			continue
		}
		tr := r.Trace
		// Only consider interleavings where the chatter thread ran as one
		// contiguous block.
		idx := tr.ThreadIndex()
		if len(idx) != 2 || len(idx[1]) == 0 {
			continue
		}
		if idx[1][len(idx[1])-1]-idx[1][0] != len(idx[1])-1 {
			continue
		}
		found = true
		res, err := core.New(prog).ConcSlice(tr)
		if err != nil {
			t.Fatal(err)
		}
		if takenWriteOf(res, tr, "noise") {
			t.Fatalf("seed %d: irrelevant thread body not sliced away:\n%s", seed, res.Slice)
		}
		if res.Stats.SkippedThreads == 0 {
			t.Fatalf("seed %d: expected a whole-thread skip, stats %+v", seed, res.Stats)
		}
		break
	}
	if !found {
		t.Skip("no seed produced a span-atomic chatter thread")
	}
}

// diffCorpus is the seed corpus for the single-threaded equivalence
// guarantee: programs from the paper plus the repository examples.
func diffCorpus(t *testing.T) map[string]*cfa.Program {
	t.Helper()
	progs := map[string]*cfa.Program{
		"ex2-unshaded": compile.MustSource(ex2Unshaded),
		"ex2-shaded":   compile.MustSource(ex2Shaded),
		"ex1":          compile.MustSource(ex1),
	}
	files, _ := filepath.Glob("../../testdata/*.mc")
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := compile.Source(string(src))
		if err != nil {
			continue // some examples need the oracle's harness stubs
		}
		progs[filepath.Base(f)] = prog
	}
	return progs
}

// TestConcLiftDifferential is the PR's regression keystone: slicing a
// lifted single-threaded trace through the concurrent walker must be
// bit-identical to the sequential slicer — same taken bits, same live
// set, same per-kind stats, same walked-edge and skipped-frame counts.
func TestConcLiftDifferential(t *testing.T) {
	for name, prog := range diffCorpus(t) {
		t.Run(name, func(t *testing.T) {
			for _, long := range []bool{false, true} {
				p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: long, MaxEdgeUses: 2})
				if p == nil {
					t.Skip("no error path")
				}
				s := core.New(prog)
				seq, err := s.Slice(p)
				if err != nil {
					t.Fatal(err)
				}
				conc, err := s.ConcSlice(cfa.LiftPath(p))
				if err != nil {
					t.Fatal(err)
				}
				if len(conc.Taken) != len(seq.Taken) {
					t.Fatalf("taken length %d vs %d", len(conc.Taken), len(seq.Taken))
				}
				for i := range seq.Taken {
					if seq.Taken[i] != conc.Taken[i] {
						t.Fatalf("long=%v: taken[%d] diverges: seq %v conc %v (%s)",
							long, i, seq.Taken[i], conc.Taken[i], p[i])
					}
				}
				if seq.Live.String() != conc.Live.String() {
					t.Fatalf("live sets diverge: seq %s conc %s", seq.Live, conc.Live)
				}
				ss, cs := seq.Stats, conc.Stats
				got := fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d",
					cs.WalkedEdges, cs.SkippedFrames, cs.TakenAssign, cs.TakenAssume,
					cs.TakenCall, cs.TakenReturn, cs.SliceEdges, cs.SliceBlocks)
				want := fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d",
					ss.WalkedEdges, ss.SkippedFrames, ss.TakenAssign, ss.TakenAssume,
					ss.TakenCall, ss.TakenReturn, ss.SliceEdges, ss.SliceBlocks)
				if got != want {
					t.Fatalf("stats diverge: conc %s vs seq %s", got, want)
				}
				if cs.RacyEdges != 0 || cs.Threads != 1 {
					t.Fatalf("lifted trace grew phantom concurrency: %+v", cs)
				}
			}
		})
	}
}

// TestConcStaleThreadLiveSetDiverges hunts interleavings on which the
// planted stale-snapshot bug actually changes the slice, proving the
// mode is not inert. The oracle campaign is what proves it unsound.
func TestConcStaleThreadLiveSetDiverges(t *testing.T) {
	prog := compile.MustSource(concStaleProbe)
	good := core.New(prog)
	bad := core.NewWithOptions(prog, core.Options{Unsound: core.UnsoundStaleThreadLiveSet})
	for seed := uint64(0); seed < 3000; seed++ {
		st := interp.NewState(prog, wp.NewAddrMap(prog))
		r := interp.ConcRun(prog, st, interp.ZeroInputs{}, interp.ConcRunOptions{
			RecordTrace: true, Seed: seed,
		})
		if !r.ReachedError {
			continue
		}
		g, err := good.ConcSlice(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bad.ConcSlice(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if g.Stats.SliceEdges > b.Stats.SliceEdges {
			return // the stale snapshot dropped something the sound walk kept
		}
	}
	t.Fatal("UnsoundStaleThreadLiveSet never changed any slice; the planted bug is inert")
}

// concStaleProbe needs main's two global writes interleaved with the
// reader's two reads (write gz, read gz, write gx, read gx): backward,
// the first merge from the reader snapshots its live set before the gz
// demand exists, so the stale mode drops main's gz write.
const concStaleProbe = `
int gx;
int gz;
int sx;
int sz;

void reader() {
  sz = gz;
  sx = gx;
}

void main() {
  spawn reader();
  gz = 5;
  gx = 3;
  join;
  if (sz == 5) {
    if (sx == 3) {
      error;
    }
  }
}
`

// TestConcSliceSharedSlicer slices the same interleaved trace from 8
// goroutines through one shared Slicer (shared alias/modref/dataflow
// tables) with concurrent feasibility checks against the shared solver
// cache; under -race this is the thread-safety proof for conc slicing.
func TestConcSliceSharedSlicer(t *testing.T) {
	prog := compile.MustSource(concWriterJoined)
	tr := concErrorTrace(t, prog, 50)
	s := core.New(prog)
	want, err := s.ConcSlice(tr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := s.ConcSlice(tr)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if res.Slice.String() != want.Slice.String() {
					t.Errorf("goroutine %d: slice diverged", g)
					return
				}
				// Exercise the shared solver path under -race too; the
				// verdict itself is not the point here.
				s.CheckFeasibility(res.Slice.ThreadPath(0))
			}
		}(g)
	}
	wg.Wait()
}

// TestConcSliceRejectsMalformed: validation runs before slicing.
func TestConcSliceRejectsMalformed(t *testing.T) {
	prog := compile.MustSource(concWriterJoined)
	tr := concErrorTrace(t, prog, 50)
	mangled := append(cfa.ConcTrace{}, tr...)
	mangled[0].TID = 3 // thread 3 was never spawned
	if _, err := core.New(prog).ConcSlice(mangled); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
