package core_test

import (
	"sync"
	"testing"

	"pathslice/internal/cfa"
)

// TestSharedSlicerConcurrentSlices runs one Slicer over the same paths
// from many goroutines. The Slicer itself is stateless per Slice call;
// the shared mutable state is the dataflow.Info cache layer, so under
// -race this is the end-to-end check that a bench worker pool can share
// one Slicer. Results must match a sequential run exactly.
func TestSharedSlicerConcurrentSlices(t *testing.T) {
	s, prog := slicerFor(t, ex2Shaded)
	short := errorPath(t, prog, false)
	long := errorPath(t, prog, true)

	want, err := s.Slice(long)
	if err != nil {
		t.Fatal(err)
	}
	wantShort, err := s.Slice(short)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path, ref := long, want
				if (g+i)%2 == 0 {
					path, ref = short, wantShort
				}
				res, err := s.Slice(path)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if res.Slice.String() != ref.Slice.String() {
					t.Errorf("goroutine %d: slice diverged from sequential", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSharedSlicerDistinctPaths mixes different ex1 paths (then/else
// arms) through one shared Slicer concurrently.
func TestSharedSlicerDistinctPaths(t *testing.T) {
	s, prog := slicerFor(t, ex1)
	paths := []cfa.Path{
		errorPath(t, prog, false),
		errorPath(t, prog, true),
	}
	refs := make([]string, len(paths))
	for i, p := range paths {
		r, err := s.Slice(p)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r.Slice.String()
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (g + i) % len(paths)
				r, err := s.Slice(paths[k])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if r.Slice.String() != refs[k] {
					t.Errorf("goroutine %d: path %d slice diverged", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
