// Package core implements Algorithm PathSlice, the primary contribution
// of "Path Slicing" (Jhala & Majumdar, PLDI 2005).
//
// Given a (possibly infeasible) program path π to a target location,
// PathSlice computes a subsequence of π's edges — a path slice — that is
//
//   - sound: if the slice's trace is infeasible, π is infeasible, and
//   - complete: if the slice's trace is feasible, then every state that
//     can execute it either reaches the target location along some
//     (possibly different) program path, or diverges (§3.2).
//
// The algorithm (Figure 1 / Algorithm 1) iterates backward over the
// path, maintaining the set of live lvalues and the step location (the
// source of the last edge taken), and decides each edge with the Take
// predicate of Figure 3, generalized to pointers (§3.4) and procedure
// calls (§4). The optimizations of §4.2 — stopping as soon as the
// accumulated slice constraints are unsatisfiable, and skipping
// irrelevant guard chains on deep call stacks — are available through
// Options.
package core

import (
	"context"
	"fmt"
	"time"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/dataflow"
	"pathslice/internal/lang/ast"
	"pathslice/internal/logic"
	"pathslice/internal/modref"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// Registry metrics for the slicer (see docs/OBSERVABILITY.md).
var (
	mSlices       = obs.Default().Counter("pathslice_slices_total")
	mInputEdges   = obs.Default().Counter("pathslice_input_edges_total")
	mSliceEdges   = obs.Default().Counter("pathslice_slice_edges_total")
	mEarlyStops   = obs.Default().Counter("pathslice_early_stops_total")
	mRatioPercent = obs.Default().Histogram("pathslice_slice_ratio_percent")
	mSliceNS      = obs.Default().Histogram("pathslice_slice_ns")

	// mDegraded counts slices that fell back to a conservative
	// over-approximation (deadline expiry or an analysis query that
	// could not be answered). mRecoveredPanics is the process-wide
	// recovered-panic counter shared with the other API boundaries
	// (the registry returns the same handle for the same name).
	mDegraded        = obs.Default().Counter("pathslice_degraded_total")
	mRecoveredPanics = obs.Default().Counter("recovered_panics_total")
)

// Options configures the slicer.
type Options struct {
	// EarlyUnsatStop enables the §4.2 "unsatisfiable path slices"
	// optimization: every taken operation is asserted (backward SSA) to
	// an incremental decision procedure, and slicing stops at the first
	// unsatisfiable prefix, since adding more operations cannot make it
	// satisfiable again. The solver is genuinely incremental: each
	// check pays only for the operations asserted since the last one
	// (warm-started simplex, persistent interval facts — see
	// docs/PERFORMANCE.md), so checking after every assume
	// (CheckEvery=1) costs O(delta) per check rather than re-solving
	// the whole growing prefix.
	EarlyUnsatStop bool
	// CheckEvery controls how many taken assume edges elapse between
	// satisfiability checks when EarlyUnsatStop is set (default 1).
	CheckEvery int
	// SkipFunctions enables the §4.2 "skipping functions" optimization:
	// when an edge is not taken and no live lvalue can be written
	// between the enclosing function's entry and the edge, the rest of
	// the frame (its guard chain) is skipped. The resulting slice is
	// still sound but no longer guaranteed complete.
	SkipFunctions bool
	// SolverLimits bounds the incremental solver.
	SolverLimits smt.Limits
	// RecordTrace captures the live set and step location at every
	// point of the backward pass (Result.Trace) — the annotations of
	// the paper's Figures 1(C) and 2(B). Costs a live-set copy per
	// edge; leave off in production runs.
	RecordTrace bool
	// Unsound deliberately weakens one Take rule (test-only). The
	// oracle suite flips these modes on to prove it would catch a real
	// soundness or completeness regression in the slicer; production
	// callers must leave it at UnsoundNone.
	Unsound UnsoundMode
}

// UnsoundMode selects a deliberately broken variant of the Take
// predicate for oracle self-tests. Each mode drops exactly one
// relevance rule that Theorem 1 depends on.
type UnsoundMode int

const (
	// UnsoundNone is the correct slicer.
	UnsoundNone UnsoundMode = iota
	// UnsoundDropGuards skips the By test on branch assumes: a guard
	// that doesn't write live lvalues is dropped even when the branch
	// point could bypass the step location.
	UnsoundDropGuards
	// UnsoundDropAliasedWrites takes an assignment only when the
	// written lvalue is syntactically live, ignoring may-alias writes
	// through pointers.
	UnsoundDropAliasedWrites
	// UnsoundSkipCallees never takes a return edge, skipping every
	// callee frame regardless of its mod set.
	UnsoundSkipCallees
)

// TracePoint is the slicer's state when it considered one path edge:
// the live lvalues and step location *before* processing the edge (the
// values shown to the right of each edge in Fig. 1(C)), and the
// decision taken.
type TracePoint struct {
	Index    int // index into the input path
	Live     cfa.LvalSet
	StepLoc  *cfa.Loc
	Taken    bool
	Skipped  bool // reached via a frame/guard-chain skip, not examined
	EdgeRepr string
}

// Stats describes one slicing run.
type Stats struct {
	InputEdges  int
	SliceEdges  int
	InputBlocks int
	SliceBlocks int

	TakenAssign, TakenAssume, TakenCall, TakenReturn int
	SkippedFrames                                    int // frames skipped at an untaken return
	SkippedGuardChains                               int // §4.2 function-skipping jumps
	SolverChecks                                     int
	EarlyStopped                                     bool
}

// Ratio returns slice size as a fraction of the input size (in edges).
func (s Stats) Ratio() float64 {
	if s.InputEdges == 0 {
		return 0
	}
	return float64(s.SliceEdges) / float64(s.InputEdges)
}

// Result is the outcome of slicing one path.
type Result struct {
	// Slice is the computed path slice (a subsequence of the input).
	Slice cfa.Path
	// Taken[i] reports whether input edge i is in the slice.
	Taken []bool
	// Live is the live lvalue set at the point slicing stopped (the
	// start of the path unless EarlyStopped).
	Live cfa.LvalSet
	// KnownInfeasible is set when the early-stop optimization proved
	// the slice trace unsatisfiable during slicing.
	KnownInfeasible bool
	// Degraded is set when the slicer fell back to a conservative
	// answer at some step: the context deadline expired (every
	// remaining edge was kept), or a relevance query could not be
	// answered (the edge was kept). A degraded slice is still sound —
	// it is a superset of the precise slice — but may be larger than
	// necessary (see docs/ROBUSTNESS.md).
	Degraded bool
	// Trace is the per-edge analysis record (only with
	// Options.RecordTrace), in backward processing order.
	Trace []TracePoint
	Stats Stats
}

// Slicer holds the program and the precomputed analyses PathSlice
// queries (alias, mod-ref, WrBt/By). Build one per program and reuse it
// across paths: the analyses are cached.
type Slicer struct {
	Prog  *cfa.Program
	Alias *alias.Info
	Mods  *modref.Info
	DF    *dataflow.Info
	Addrs *wp.AddrMap
	Opts  Options
}

// New builds a Slicer with default options, running all required
// analyses.
func New(prog *cfa.Program) *Slicer {
	return NewWithOptions(prog, Options{})
}

// NewWithOptions builds a Slicer with the given options.
func NewWithOptions(prog *cfa.Program, opts Options) *Slicer {
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	df := dataflow.Analyze(prog, al, mr)
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 1
	}
	return &Slicer{
		Prog:  prog,
		Alias: al,
		Mods:  mr,
		DF:    df,
		Addrs: wp.NewAddrMap(prog),
		Opts:  opts,
	}
}

// Slice runs Algorithm PathSlice on path (which must be a valid program
// path ending at the location of interest).
func (s *Slicer) Slice(path cfa.Path) (*Result, error) {
	return s.SliceCtx(context.Background(), path)
}

// SliceCtx is Slice under a context. When the context is cancelled or
// its deadline expires mid-pass, the slicer does not abort: it
// conservatively keeps every not-yet-examined edge and returns a
// Degraded result, which is still a sound slice (a superset of the
// precise one — soundness only shrinks when edges are dropped, §3.2).
// A panic escaping the analysis layers is contained here and converted
// to an error, so a shared Slicer cannot take down a caller's worker
// pool.
func (s *Slicer) SliceCtx(ctx context.Context, path cfa.Path) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan(obs.PhasePathSlice)
	start := time.Now()
	defer func() {
		mSliceNS.ObserveDuration(time.Since(start))
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			mRecoveredPanics.Inc()
			res, err = nil, fmt.Errorf("core: panic during slicing: %v", r)
		}
	}()
	if verr := path.Validate(s.Prog); verr != nil {
		return nil, fmt.Errorf("core: %w", verr)
	}
	res = &Result{
		Taken: make([]bool, len(path)),
		Live:  cfa.NewLvalSet(),
	}
	res.Stats.InputEdges = len(path)
	res.Stats.InputBlocks = path.BasicBlocks()

	callIdx := path.CallIdx()
	live := res.Live
	pcStep := path[len(path)-1].Dst

	var enc *wp.TraceEncoder
	var solver *smt.Solver
	if s.Opts.EarlyUnsatStop {
		enc = wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
		solver = smt.NewSolverWithLimits(s.Opts.SolverLimits)
	}
	assumesSinceCheck := 0

	record := func(i int, taken bool) {
		if !s.Opts.RecordTrace {
			return
		}
		res.Trace = append(res.Trace, TracePoint{
			Index:    i,
			Live:     live.Copy(),
			StepLoc:  pcStep,
			Taken:    taken,
			EdgeRepr: path[i].String(),
		})
	}

	i := len(path) - 1
	for i >= 0 {
		if ctx.Err() != nil {
			// Deadline expired or caller cancelled: keep every edge not
			// yet examined. The result is a superset of the precise
			// slice, hence still sound; only completeness (minimality)
			// degrades. See docs/ROBUSTNESS.md.
			for j := i; j >= 0; j-- {
				if !res.Taken[j] {
					res.Taken[j] = true
					switch path[j].Op.Kind {
					case cfa.OpAssign:
						res.Stats.TakenAssign++
					case cfa.OpAssume:
						res.Stats.TakenAssume++
					case cfa.OpCall:
						res.Stats.TakenCall++
					case cfa.OpReturn:
						res.Stats.TakenReturn++
					}
				}
			}
			res.Degraded = true
			break
		}
		e := path[i]
		op := e.Op
		tk, deg := s.take(op, e, live, pcStep)
		if deg {
			res.Degraded = true
		}
		record(i, tk)
		if tk {
			res.Taken[i] = true
			s.updateLive(op, live)
			pcStep = e.Src
			switch op.Kind {
			case cfa.OpAssign:
				res.Stats.TakenAssign++
			case cfa.OpAssume:
				res.Stats.TakenAssume++
			case cfa.OpCall:
				res.Stats.TakenCall++
			case cfa.OpReturn:
				res.Stats.TakenReturn++
			}
			if s.Opts.EarlyUnsatStop {
				solver.Assert(enc.EncodeOpBackward(op))
				if op.Kind == cfa.OpAssume {
					assumesSinceCheck++
					if assumesSinceCheck >= s.Opts.CheckEvery {
						assumesSinceCheck = 0
						res.Stats.SolverChecks++
						// An Unknown verdict here (limit, deadline, or
						// injected fault) simply means no early stop:
						// slicing continues and the slice can only grow.
						if r := solver.CheckCtx(ctx); r.Status == smt.StatusUnsat {
							res.KnownInfeasible = true
							res.Stats.EarlyStopped = true
							i-- // the current edge is already taken
							break
						}
					}
				}
			}
			i--
			continue
		}
		// Not taken: Algorithm 1 line 12 with the §4 and §4.2 index
		// adjustments.
		recordSkipped := func(from, to int) {
			if !s.Opts.RecordTrace {
				return
			}
			for j := from; j > to; j-- {
				res.Trace = append(res.Trace, TracePoint{
					Index: j, Live: live.Copy(), StepLoc: pcStep,
					Skipped: true, EdgeRepr: path[j].String(),
				})
			}
		}
		// §4.2 frame-entry relevance: when the query cannot be answered,
		// assume a live lvalue may be written (no skip) — degrading to a
		// larger but sound slice.
		entryMayWrite := true
		if s.Opts.SkipFunctions && callIdx[i] >= 0 {
			wr, werr := s.DF.WrBt(e.Src.Fn.Entry, e.Src, live)
			if werr != nil {
				res.Degraded = true
				wr = true
			}
			entryMayWrite = wr
		}
		switch {
		case op.Kind == cfa.OpReturn:
			// Skip the entire irrelevant frame: resume just before the
			// call edge that opened it.
			res.Stats.SkippedFrames++
			next := callIdx[i] - 1
			recordSkipped(i-1, next)
			i = next
		case s.Opts.SkipFunctions && callIdx[i] >= 0 && !entryMayWrite:
			// §4.2: no live lvalue can be written between the frame's
			// entry and here — jump straight to the call edge (which is
			// then taken), dropping the guard chain. Sacrifices
			// completeness.
			res.Stats.SkippedGuardChains++
			next := callIdx[i]
			recordSkipped(i-1, next)
			i = next
		default:
			i--
		}
	}

	// Collect the taken edges in order.
	for idx, tk := range res.Taken {
		if tk {
			res.Slice = append(res.Slice, path[idx])
		}
	}
	res.Stats.SliceEdges = len(res.Slice)
	res.Stats.SliceBlocks = res.Slice.BasicBlocks()
	mSlices.Inc()
	mInputEdges.Add(int64(res.Stats.InputEdges))
	mSliceEdges.Add(int64(res.Stats.SliceEdges))
	if res.Stats.EarlyStopped {
		mEarlyStops.Inc()
	}
	mRatioPercent.Observe(int64(100 * res.Stats.Ratio()))
	if res.Degraded {
		mDegraded.Inc()
	}
	return res, nil
}

// take implements the Take predicate (Figure 3, with the §3.4 pointer
// generalization and the §4 call/return rules). The second result
// reports degradation: a relevance query that could not be answered,
// in which case the edge is conservatively taken (sound — a kept edge
// never invalidates the slice).
func (s *Slicer) take(op cfa.Op, e *cfa.Edge, live cfa.LvalSet, pcStep *cfa.Loc) (bool, bool) {
	switch op.Kind {
	case cfa.OpAssign:
		if s.Opts.Unsound == UnsoundDropAliasedWrites {
			// Broken on purpose: syntactic liveness only, no aliasing.
			return live.Has(op.LHS), false
		}
		// Take if the written lvalue may alias a live lvalue.
		for l := range live {
			if s.Alias.MayAlias(op.LHS, l) {
				return true, false
			}
		}
		return false, false
	case cfa.OpAssume:
		// A lone assume with no sibling branch (MiniC's `assume(p);`
		// statement) can halt the program outright; the paper's model
		// only has complementary branch pairs, where the By test covers
		// this. Taking such an edge is always sound and strengthens
		// completeness beyond the paper's "cannot reach pc_out" escape
		// clause — see DESIGN.md §6. Trivially-true assumes (the
		// builder's skip/jump edges) can never block and keep the
		// original rule.
		if len(e.Src.Out) == 1 && !predIsTriviallyTrue(op.Pred) {
			return true, false
		}
		// Take if a live lvalue may be written between here and the
		// step location, or if this location can bypass it.
		wr, werr := s.DF.WrBt(e.Src, pcStep, live)
		if werr != nil {
			return true, true
		}
		if wr {
			return true, false
		}
		if s.Opts.Unsound == UnsoundDropGuards {
			// Broken on purpose: no By test — bypassing guards dropped.
			return false, false
		}
		by, berr := s.DF.By(e.Src, pcStep)
		if berr != nil {
			return true, true
		}
		return by, false
	case cfa.OpCall:
		// Calls are always taken, keeping WrBt/By queries
		// intraprocedural (§4.1).
		return true, false
	case cfa.OpReturn:
		if s.Opts.Unsound == UnsoundSkipCallees {
			// Broken on purpose: every callee frame skipped, mod-ref
			// ignored.
			return false, false
		}
		// Take (and hence analyze the call body) only if the callee
		// may modify a live lvalue.
		return s.Mods.ModsAny(e.Src.Fn.Name, live), false
	}
	return false, false
}

// predIsTriviallyTrue recognizes the builder's unconditional edges.
func predIsTriviallyTrue(p ast.Expr) bool {
	lit, ok := p.(*ast.IntLit)
	return ok && lit.Value != 0
}

// updateLive applies Live := (Live \ Wt.op) ∪ Rd.op with the must-alias
// kill set of §3.4.
func (s *Slicer) updateLive(op cfa.Op, live cfa.LvalSet) {
	if op.Kind == cfa.OpAssign {
		for _, l := range s.Alias.MustWritten(op.LHS) {
			live.Remove(l)
		}
	}
	live.AddAll(op.Rd())
}

// CheckFeasibility encodes the trace of a slice (or any path) and asks
// the decision procedure for a verdict. On StatusSat the returned model
// gives an initial state witnessing WP.true.(Tr.slice).
func (s *Slicer) CheckFeasibility(p cfa.Path) (smt.Result, *wp.TraceEncoder) {
	return s.CheckFeasibilityCtx(context.Background(), p)
}

// CheckFeasibilityCtx is CheckFeasibility under a context: when it is
// cancelled or times out the solve returns StatusUnknown — never a
// wrong Sat or Unsat.
func (s *Slicer) CheckFeasibilityCtx(ctx context.Context, p cfa.Path) (smt.Result, *wp.TraceEncoder) {
	sp := obs.StartSpan(obs.PhaseFeasibility)
	defer sp.End()
	enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
	f := enc.EncodeTrace(p.Ops())
	return smt.SolveCtx(ctx, f, s.Opts.SolverLimits), enc
}

// TraceFormula returns the forward SSA constraint formula of a path's
// trace, for callers that want to inspect or reuse it.
func (s *Slicer) TraceFormula(p cfa.Path) logic.Formula {
	enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
	return enc.EncodeTrace(p.Ops())
}
