// Package core implements Algorithm PathSlice, the primary contribution
// of "Path Slicing" (Jhala & Majumdar, PLDI 2005).
//
// Given a (possibly infeasible) program path π to a target location,
// PathSlice computes a subsequence of π's edges — a path slice — that is
//
//   - sound: if the slice's trace is infeasible, π is infeasible, and
//   - complete: if the slice's trace is feasible, then every state that
//     can execute it either reaches the target location along some
//     (possibly different) program path, or diverges (§3.2).
//
// The algorithm (Figure 1 / Algorithm 1) iterates backward over the
// path, maintaining the set of live lvalues and the step location (the
// source of the last edge taken), and decides each edge with the Take
// predicate of Figure 3, generalized to pointers (§3.4) and procedure
// calls (§4). The optimizations of §4.2 — stopping as soon as the
// accumulated slice constraints are unsatisfiable, and skipping
// irrelevant guard chains on deep call stacks — are available through
// Options.
//
// Two scaling layers target the paper's Figure 6 regime (gcc-class
// subjects: ~80k-block traces over ~2000 procedures):
//
//   - Options.Summaries memoizes context-keyed callee frame summaries
//     (package summ): the first walk of a (frame segment, projected
//     live set) context records its per-edge decisions and live-set
//     transfer; every repeat costs a lookup instead of re-running the
//     Take predicate edge by edge.
//   - The walk reads its input through the PathSource interface, so a
//     trace can stream from a cfa.PathReader trace file with only a
//     bounded window of frames resident (SliceStream), instead of a
//     fully materialized cfa.Path.
package core

import (
	"context"
	"fmt"
	"time"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/dataflow"
	"pathslice/internal/lang/ast"
	"pathslice/internal/logic"
	"pathslice/internal/modref"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
	"pathslice/internal/summ"
	"pathslice/internal/wp"
)

// Registry metrics for the slicer (see docs/OBSERVABILITY.md).
var (
	mSlices       = obs.Default().Counter("pathslice_slices_total")
	mInputEdges   = obs.Default().Counter("pathslice_input_edges_total")
	mSliceEdges   = obs.Default().Counter("pathslice_slice_edges_total")
	mEarlyStops   = obs.Default().Counter("pathslice_early_stops_total")
	mRatioPercent = obs.Default().Histogram("pathslice_slice_ratio_percent")
	mSliceNS      = obs.Default().Histogram("pathslice_slice_ns")

	// mDegraded counts slices that fell back to a conservative
	// over-approximation (deadline expiry or an analysis query that
	// could not be answered). mRecoveredPanics is the process-wide
	// recovered-panic counter shared with the other API boundaries
	// (the registry returns the same handle for the same name).
	mDegraded        = obs.Default().Counter("pathslice_degraded_total")
	mRecoveredPanics = obs.Default().Counter("recovered_panics_total")
)

// Options configures the slicer.
type Options struct {
	// EarlyUnsatStop enables the §4.2 "unsatisfiable path slices"
	// optimization: every taken operation is asserted (backward SSA) to
	// an incremental decision procedure, and slicing stops at the first
	// unsatisfiable prefix, since adding more operations cannot make it
	// satisfiable again. The solver is genuinely incremental: each
	// check pays only for the operations asserted since the last one
	// (warm-started simplex, persistent interval facts — see
	// docs/PERFORMANCE.md), so checking after every assume
	// (CheckEvery=1) costs O(delta) per check rather than re-solving
	// the whole growing prefix.
	EarlyUnsatStop bool
	// CheckEvery controls how many taken assume edges elapse between
	// satisfiability checks when EarlyUnsatStop is set (default 1).
	CheckEvery int
	// SkipFunctions enables the §4.2 "skipping functions" optimization:
	// when an edge is not taken and no live lvalue can be written
	// between the enclosing function's entry and the edge, the rest of
	// the frame (its guard chain) is skipped. The resulting slice is
	// still sound but no longer guaranteed complete.
	SkipFunctions bool
	// Summaries enables context-keyed callee frame summaries (package
	// summ, docs/PERFORMANCE.md): repeated calls to the same procedure
	// under the same projected live set cost O(summary) instead of a
	// full frame walk. The summarized slice is bit-identical to the
	// plain walk's (same kept edges, same Stats counters) — the root
	// summary differential gate and the oracle campaign enforce this.
	// Ignored when RecordTrace is set (the annotated trace needs every
	// edge examined for real).
	Summaries bool
	// SolverLimits bounds the incremental solver.
	SolverLimits smt.Limits
	// RecordTrace captures the live set and step location at every
	// point of the backward pass (Result.Trace) — the annotations of
	// the paper's Figures 1(C) and 2(B). Costs a live-set copy per
	// edge; leave off in production runs.
	RecordTrace bool
	// Portfolio routes feasibility checks through the smt portfolio
	// front-end (incremental vs stateless vs interval prefilter racing
	// per query; docs/PERFORMANCE.md) instead of the stateless solver
	// alone. Verdicts are bit-identical — only latency changes.
	Portfolio bool
	// Unsound deliberately weakens one Take rule (test-only). The
	// oracle suite flips these modes on to prove it would catch a real
	// soundness or completeness regression in the slicer; production
	// callers must leave it at UnsoundNone.
	Unsound UnsoundMode
}

// UnsoundMode selects a deliberately broken variant of the Take
// predicate for oracle self-tests. Each mode drops exactly one
// relevance rule that Theorem 1 depends on.
type UnsoundMode int

const (
	// UnsoundNone is the correct slicer.
	UnsoundNone UnsoundMode = iota
	// UnsoundDropGuards skips the By test on branch assumes: a guard
	// that doesn't write live lvalues is dropped even when the branch
	// point could bypass the step location.
	UnsoundDropGuards
	// UnsoundDropAliasedWrites takes an assignment only when the
	// written lvalue is syntactically live, ignoring may-alias writes
	// through pointers.
	UnsoundDropAliasedWrites
	// UnsoundSkipCallees never takes a return edge, skipping every
	// callee frame regardless of its mod set.
	UnsoundSkipCallees
	// UnsoundStaleSummaries reuses a memoized frame summary across
	// differing live sets (the summ.Options.StaleReuse planted bug):
	// the summary key drops its live-context half, so the first
	// context recorded for a segment answers every later call site.
	// Only meaningful with Options.Summaries; the oracle campaign's
	// summary-differential pillar must catch it.
	UnsoundStaleSummaries
	// UnsoundDropRacyEdges makes the concurrent walker (ConcSlice)
	// ignore conflicting-access racy edges: no cross-thread live-set
	// transfer happens, so a write in one thread that feeds a read in
	// another is dropped from the slice. The concurrent oracle campaign
	// must catch it. Sequential slicing is unaffected.
	UnsoundDropRacyEdges
	// UnsoundStaleThreadLiveSet makes the concurrent walker reuse the
	// live-set snapshot captured at the first cross-thread merge from a
	// given thread for every later merge from that thread, missing
	// demands that accumulate as its backward walk proceeds. The
	// concurrent oracle campaign must catch it. Sequential slicing is
	// unaffected.
	UnsoundStaleThreadLiveSet
)

// TracePoint is the slicer's state when it considered one path edge:
// the live lvalues and step location *before* processing the edge (the
// values shown to the right of each edge in Fig. 1(C)), and the
// decision taken.
type TracePoint struct {
	Index    int // index into the input path
	Live     cfa.LvalSet
	StepLoc  *cfa.Loc
	Taken    bool
	Skipped  bool // reached via a frame/guard-chain skip, not examined
	EdgeRepr string
}

// Stats describes one slicing run.
type Stats struct {
	InputEdges  int
	SliceEdges  int
	InputBlocks int
	SliceBlocks int

	TakenAssign, TakenAssume, TakenCall, TakenReturn int
	TakenSpawn, TakenJoin                            int // concurrent traces only
	SkippedFrames                                    int // frames skipped at an untaken return
	SkippedGuardChains                               int // §4.2 function-skipping jumps
	SolverChecks                                     int
	EarlyStopped                                     bool
	// SummaryHits/SummaryMisses count frame-summary lookups at taken
	// return edges (Options.Summaries; see docs/PERFORMANCE.md).
	SummaryHits   int
	SummaryMisses int
	// WalkedEdges counts the edges whose Take decision was actually
	// computed by the walker — as opposed to replayed from a frame
	// summary or bypassed by a skip jump. It is the deterministic
	// measure of summarization: on a plain walk it tracks the input
	// length; with a warm memo it collapses to the inter-call skeleton
	// plus one recording pass per distinct context. `make bench-diff`
	// gates the gcc-class sublinearity claim on this counter, not on
	// wall time (docs/PERFORMANCE.md).
	WalkedEdges int
}

// Ratio returns slice size as a fraction of the input size (in edges).
func (s Stats) Ratio() float64 {
	if s.InputEdges == 0 {
		return 0
	}
	return float64(s.SliceEdges) / float64(s.InputEdges)
}

// Result is the outcome of slicing one path.
type Result struct {
	// Slice is the computed path slice (a subsequence of the input).
	Slice cfa.Path
	// Taken[i] reports whether input edge i is in the slice.
	Taken []bool
	// Live is the live lvalue set at the point slicing stopped (the
	// start of the path unless EarlyStopped).
	Live cfa.LvalSet
	// KnownInfeasible is set when the early-stop optimization proved
	// the slice trace unsatisfiable during slicing.
	KnownInfeasible bool
	// Degraded is set when the slicer fell back to a conservative
	// answer at some step: the context deadline expired (every
	// remaining edge was kept), or a relevance query could not be
	// answered (the edge was kept). A degraded slice is still sound —
	// it is a superset of the precise slice — but may be larger than
	// necessary (see docs/ROBUSTNESS.md).
	Degraded bool
	// Trace is the per-edge analysis record (only with
	// Options.RecordTrace), in backward processing order.
	Trace []TracePoint
	Stats Stats
}

// PathSource is the walk's view of its input: random access to edges
// and the §4 call structure. A materialized cfa.Path is adapted
// internally (SliceCtx); a cfa.PathReader streams the same interface
// from a trace file with only a bounded window of frames resident
// (SliceStream). Edge returns nil on a read failure, with the cause in
// Err.
type PathSource interface {
	Len() int
	Edge(i int) *cfa.Edge
	CallIdx(i int) int
	Err() error
}

// pathAdapter adapts a validated, materialized cfa.Path.
type pathAdapter struct {
	p       cfa.Path
	callIdx []int
}

func (a *pathAdapter) Len() int             { return len(a.p) }
func (a *pathAdapter) Edge(i int) *cfa.Edge { return a.p[i] }
func (a *pathAdapter) CallIdx(i int) int    { return a.callIdx[i] }
func (a *pathAdapter) Err() error           { return nil }

// Slicer holds the program and the precomputed analyses PathSlice
// queries (alias, mod-ref, WrBt/By), plus the frame-summary memo when
// Options.Summaries is set. Build one per program and reuse it across
// paths: the analyses and the summary table are cached.
type Slicer struct {
	Prog  *cfa.Program
	Alias *alias.Info
	Mods  *modref.Info
	DF    *dataflow.Info
	Addrs *wp.AddrMap
	Summ  *summ.Table // nil unless Options.Summaries
	Opts  Options
}

// New builds a Slicer with default options, running all required
// analyses.
func New(prog *cfa.Program) *Slicer {
	return NewWithOptions(prog, Options{})
}

// NewWithOptions builds a Slicer with the given options.
func NewWithOptions(prog *cfa.Program, opts Options) *Slicer {
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	df := dataflow.Analyze(prog, al, mr)
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 1
	}
	s := &Slicer{
		Prog:  prog,
		Alias: al,
		Mods:  mr,
		DF:    df,
		Addrs: wp.NewAddrMap(prog),
		Opts:  opts,
	}
	if opts.Summaries && !opts.RecordTrace {
		s.Summ = summ.NewTable(al, mr, summ.Options{
			StaleReuse: opts.Unsound == UnsoundStaleSummaries,
		})
	}
	return s
}

// Slice runs Algorithm PathSlice on path (which must be a valid program
// path ending at the location of interest).
func (s *Slicer) Slice(path cfa.Path) (*Result, error) {
	return s.SliceCtx(context.Background(), path)
}

// SliceCtx is Slice under a context. When the context is cancelled or
// its deadline expires mid-pass, the slicer does not abort: it
// conservatively keeps every not-yet-examined edge and returns a
// Degraded result, which is still a sound slice (a superset of the
// precise one — soundness only shrinks when edges are dropped, §3.2).
// A panic escaping the analysis layers is contained here and converted
// to an error, so a shared Slicer cannot take down a caller's worker
// pool.
func (s *Slicer) SliceCtx(ctx context.Context, path cfa.Path) (*Result, error) {
	if verr := path.Validate(s.Prog); verr != nil {
		return nil, fmt.Errorf("core: %w", verr)
	}
	return s.SliceSource(ctx, &pathAdapter{p: path, callIdx: path.CallIdx()})
}

// SliceStream slices a trace streamed from a trace file. The reader
// has already validated the path (cfa.OpenTraceFile); the walk holds
// only the reader's bounded frame window plus O(slice) kept edges
// resident, so memory is independent of trace length. The result is
// identical to SliceCtx over the materialized path.
func (s *Slicer) SliceStream(ctx context.Context, r *cfa.PathReader) (*Result, error) {
	return s.SliceSource(ctx, r)
}

// SliceSource runs the backward walk over any PathSource. The source
// must be a valid program path (SliceCtx validates; cfa.OpenTraceFile
// validates trace files at open).
func (s *Slicer) SliceSource(ctx context.Context, src PathSource) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan(obs.PhasePathSlice)
	start := time.Now()
	defer func() {
		mSliceNS.ObserveDuration(time.Since(start))
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			mRecoveredPanics.Inc()
			res, err = nil, fmt.Errorf("core: panic during slicing: %v", r)
		}
	}()
	n := src.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: cfa: empty path")
	}
	w := &walker{s: s, src: src, n: n}
	return w.run(ctx)
}

// ---------------------------------------------------------------------------
// The backward walk

// walker is the state of one backward pass. It is built per slice call
// and never shared, so a Slicer stays safe for concurrent use.
type walker struct {
	s   *Slicer
	src PathSource
	n   int

	res    *Result
	live   cfa.LvalSet
	pcStep *cfa.Loc
	i      int

	// Early-unsat-stop state (Options.EarlyUnsatStop).
	enc               *wp.TraceEncoder
	solver            *smt.Solver
	assumesSinceCheck int

	// Active frame-summary recordings, outermost first (innermost at
	// the end; frames nest). segIDs is the segment-key scratch buffer.
	recs   []*frameRec
	segIDs []int32
}

// frameRec records one in-progress frame summary (a table miss being
// walked for real). Its dec vector and live-transfer sets are filled
// in as the walk proceeds and stored into the table when the walk
// crosses the frame's call edge.
type frameRec struct {
	lo, hi            int
	callee            string
	segHash, liveHash uint64
	edgeIDs           []int32
	proj              []cfa.Lvalue
	dec               []summ.Decision
	kills, adds       cfa.LvalSet
	base              Stats
	invalid           bool // a degraded query happened inside: do not store
}

func (w *walker) run(ctx context.Context) (*Result, error) {
	s := w.s
	w.res = &Result{
		Taken: make([]bool, w.n),
		Live:  cfa.NewLvalSet(),
	}
	w.res.Stats.InputEdges = w.n
	w.live = w.res.Live

	last := w.src.Edge(w.n - 1)
	if last == nil {
		return nil, w.src.Err()
	}
	w.pcStep = last.Dst

	if s.Opts.EarlyUnsatStop {
		w.enc = wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
		w.solver = smt.NewSolverWithLimits(s.Opts.SolverLimits)
	}

	w.i = w.n - 1
	for w.i >= 0 {
		if ctx.Err() != nil {
			// Deadline expired or caller cancelled: keep every edge not
			// yet examined. The result is a superset of the precise
			// slice, hence still sound; only completeness (minimality)
			// degrades. See docs/ROBUSTNESS.md.
			if err := w.degradeRest(); err != nil {
				return nil, err
			}
			break
		}
		e := w.src.Edge(w.i)
		if e == nil {
			return nil, w.src.Err()
		}
		op := e.Op
		w.res.Stats.WalkedEdges++
		tk, deg := s.take(op, e, w.live, w.pcStep)
		if deg {
			w.res.Degraded = true
			w.invalidateRecs()
		}
		w.record(w.i, tk)
		if tk {
			if op.Kind == cfa.OpReturn && s.Summ != nil {
				handled, stopped, err := w.trySummary(ctx, e)
				if err != nil {
					return nil, err
				}
				if handled {
					if stopped {
						break
					}
					w.finalizeRecs()
					continue
				}
				// Miss: a recorder was pushed; walk the frame for real.
			}
			w.markDec(w.i, summ.DecTaken)
			w.res.Taken[w.i] = true
			w.countTaken(op.Kind)
			w.takeLive(op)
			w.pcStep = e.Src
			if s.Opts.EarlyUnsatStop {
				w.solver.Assert(w.enc.EncodeOpBackward(op))
				if op.Kind == cfa.OpAssume && w.earlyCheck(ctx) {
					w.i-- // the current edge is already taken
					break
				}
			}
			w.i--
			w.finalizeRecs()
			continue
		}
		// Not taken: Algorithm 1 line 12 with the §4 and §4.2 index
		// adjustments.
		// §4.2 frame-entry relevance: when the query cannot be answered,
		// assume a live lvalue may be written (no skip) — degrading to a
		// larger but sound slice.
		entryMayWrite := true
		if s.Opts.SkipFunctions && w.src.CallIdx(w.i) >= 0 {
			wr, werr := s.DF.WrBt(e.Src.Fn.Entry, e.Src, w.live)
			if werr != nil {
				w.res.Degraded = true
				w.invalidateRecs()
				wr = true
			}
			entryMayWrite = wr
		}
		switch {
		case op.Kind == cfa.OpReturn:
			// Skip the entire irrelevant frame: resume just before the
			// call edge that opened it.
			w.markDec(w.i, summ.DecSkipFrame)
			w.res.Stats.SkippedFrames++
			next := w.src.CallIdx(w.i) - 1
			w.recordSkipped(w.i-1, next)
			w.i = next
		case s.Opts.SkipFunctions && w.src.CallIdx(w.i) >= 0 && !entryMayWrite:
			// §4.2: no live lvalue can be written between the frame's
			// entry and here — jump straight to the call edge (which is
			// then taken), dropping the guard chain. Sacrifices
			// completeness.
			w.markDec(w.i, summ.DecSkipChain)
			w.res.Stats.SkippedGuardChains++
			next := w.src.CallIdx(w.i)
			w.recordSkipped(w.i-1, next)
			w.i = next
		default:
			w.markDec(w.i, summ.DecNotTaken)
			w.i--
		}
		w.finalizeRecs()
	}

	// Collect the taken edges in order. With a streaming source this
	// re-reads only the kept blocks, forward.
	res := w.res
	for idx, tk := range res.Taken {
		if tk {
			e := w.src.Edge(idx)
			if e == nil {
				return nil, w.src.Err()
			}
			res.Slice = append(res.Slice, e)
		}
	}
	res.Stats.SliceEdges = len(res.Slice)
	res.Stats.SliceBlocks = res.Slice.BasicBlocks()
	res.Stats.InputBlocks = w.inputBlocks()
	mSlices.Inc()
	mInputEdges.Add(int64(res.Stats.InputEdges))
	mSliceEdges.Add(int64(res.Stats.SliceEdges))
	if res.Stats.EarlyStopped {
		mEarlyStops.Inc()
	}
	mRatioPercent.Observe(int64(100 * res.Stats.Ratio()))
	if res.Degraded {
		mDegraded.Inc()
	}
	return res, nil
}

// inputBlocks counts the input path's basic blocks. For a materialized
// path this delegates to the exact cfa.Path.BasicBlocks; a streaming
// source would need a full forward re-read, so the count is carried by
// the same definition over the source's edges.
func (w *walker) inputBlocks() int {
	if a, ok := w.src.(*pathAdapter); ok {
		return a.p.BasicBlocks()
	}
	blocks := 1
	var prevKind cfa.OpKind
	for i := 0; i < w.n; i++ {
		e := w.src.Edge(i)
		if e == nil {
			return blocks
		}
		if i > 0 && (len(e.Src.Out) > 1 || prevKind == cfa.OpCall || prevKind == cfa.OpReturn) {
			blocks++
		}
		prevKind = e.Op.Kind
	}
	return blocks
}

// degradeRest keeps every not-yet-examined edge (context expiry).
func (w *walker) degradeRest() error {
	for j := w.i; j >= 0; j-- {
		if !w.res.Taken[j] {
			e := w.src.Edge(j)
			if e == nil {
				return w.src.Err()
			}
			w.res.Taken[j] = true
			w.countTaken(e.Op.Kind)
		}
	}
	w.res.Degraded = true
	return nil
}

// countTaken charges one kept edge to its per-kind Stats counter.
func (w *walker) countTaken(k cfa.OpKind) {
	switch k {
	case cfa.OpAssign:
		w.res.Stats.TakenAssign++
	case cfa.OpAssume:
		w.res.Stats.TakenAssume++
	case cfa.OpCall:
		w.res.Stats.TakenCall++
	case cfa.OpReturn:
		w.res.Stats.TakenReturn++
	case cfa.OpSpawn:
		w.res.Stats.TakenSpawn++
	case cfa.OpJoin:
		w.res.Stats.TakenJoin++
	}
}

// takeLive applies Live := (Live \ Wt.op) ∪ Rd.op with the must-alias
// kill set of §3.4, and composes the update into every active frame
// recording (kills ∪= Wt; adds = (adds \ Wt) ∪ Rd).
func (w *walker) takeLive(op cfa.Op) {
	if op.Kind == cfa.OpAssign {
		for _, l := range w.s.Alias.MustWritten(op.LHS) {
			w.live.Remove(l)
			for _, r := range w.recs {
				r.kills.Add(l)
				r.adds.Remove(l)
			}
		}
	}
	rd := op.Rd()
	w.live.AddAll(rd)
	for _, r := range w.recs {
		r.adds.AddAll(rd)
	}
}

// earlyCheck runs the early-unsat-stop satisfiability check at the
// configured cadence; true means the prefix is unsatisfiable and the
// walk must stop.
func (w *walker) earlyCheck(ctx context.Context) bool {
	w.assumesSinceCheck++
	if w.assumesSinceCheck < w.s.Opts.CheckEvery {
		return false
	}
	w.assumesSinceCheck = 0
	w.res.Stats.SolverChecks++
	// An Unknown verdict here (limit, deadline, or injected fault)
	// simply means no early stop: slicing continues and the slice can
	// only grow.
	if r := w.solver.CheckCtx(ctx); r.Status == smt.StatusUnsat {
		w.res.KnownInfeasible = true
		w.res.Stats.EarlyStopped = true
		return true
	}
	return false
}

// record appends a TracePoint (Options.RecordTrace only).
func (w *walker) record(i int, taken bool) {
	if !w.s.Opts.RecordTrace {
		return
	}
	e := w.src.Edge(i)
	if e == nil {
		return
	}
	w.res.Trace = append(w.res.Trace, TracePoint{
		Index:    i,
		Live:     w.live.Copy(),
		StepLoc:  w.pcStep,
		Taken:    taken,
		EdgeRepr: e.String(),
	})
}

// recordSkipped appends TracePoints for a skipped range (from down to
// to, exclusive), Options.RecordTrace only.
func (w *walker) recordSkipped(from, to int) {
	if !w.s.Opts.RecordTrace {
		return
	}
	for j := from; j > to; j-- {
		e := w.src.Edge(j)
		if e == nil {
			return
		}
		w.res.Trace = append(w.res.Trace, TracePoint{
			Index: j, Live: w.live.Copy(), StepLoc: w.pcStep,
			Skipped: true, EdgeRepr: e.String(),
		})
	}
}

// ---------------------------------------------------------------------------
// Frame summaries (Options.Summaries)

// trySummary handles a taken return edge at w.i through the summary
// table. It returns handled=true when a memoized context covered the
// whole frame (w.i has been advanced past the call edge; stopped
// reports an early-unsat stop during replay). On a miss it pushes a
// recorder and returns handled=false: the caller walks the frame for
// real, filling the recording in.
func (w *walker) trySummary(ctx context.Context, e *cfa.Edge) (handled, stopped bool, err error) {
	hi := w.i
	lo := w.src.CallIdx(hi)
	if lo < 0 {
		return false, false, nil
	}
	callee := e.Src.Fn.Name

	// Segment key: the exact edge-ID sequence of the frame.
	ids := w.segIDs[:0]
	var h uint64
	for j := lo; j <= hi; j++ {
		eg := w.src.Edge(j)
		if eg == nil {
			return false, false, w.src.Err()
		}
		ids = append(ids, int32(eg.ID))
		h = summ.HashEdgeID(h, int32(eg.ID))
	}
	w.segIDs = ids

	// Context key: the live set projected onto what the callee can
	// touch.
	proj, lh := w.s.Summ.Project(callee, w.live)

	if sum := w.s.Summ.Lookup(h, ids, lh, proj); sum != nil {
		w.res.Stats.SummaryHits++
		if w.s.Opts.EarlyUnsatStop {
			stopped, err = w.replaySummary(ctx, sum, lo, hi)
			return true, stopped, err
		}
		if err := w.applySummary(sum, lo); err != nil {
			return false, false, err
		}
		return true, false, nil
	}
	w.res.Stats.SummaryMisses++
	w.recs = append(w.recs, &frameRec{
		lo: lo, hi: hi, callee: callee,
		segHash: h, liveHash: lh,
		edgeIDs: append([]int32(nil), ids...),
		proj:    proj,
		dec:     make([]summ.Decision, hi-lo+1),
		kills:   cfa.NewLvalSet(),
		adds:    cfa.NewLvalSet(),
		base:    w.res.Stats,
	})
	return false, false, nil
}

// applySummary replays a memoized frame in O(kept edges): mark the
// kept edges, add the frame's Stats effects, apply the live-set
// transfer, and resume just before the call edge. Only valid without
// EarlyUnsatStop (no solver assertions to replay).
func (w *walker) applySummary(sum *summ.Summary, lo int) error {
	for _, off := range sum.TakenOffs {
		w.res.Taken[lo+int(off)] = true
	}
	st := &w.res.Stats
	st.TakenAssign += sum.Effects.TakenAssign
	st.TakenAssume += sum.Effects.TakenAssume
	st.TakenCall += sum.Effects.TakenCall
	st.TakenReturn += sum.Effects.TakenReturn
	st.SkippedFrames += sum.Effects.SkippedFrames
	st.SkippedGuardChains += sum.Effects.SkippedGuardChains
	for _, l := range sum.Kills {
		w.live.Remove(l)
	}
	for _, l := range sum.Adds {
		w.live.Add(l)
	}
	// Compose into enclosing recordings: their decision vectors absorb
	// the memoized frame verbatim, their live transfers compose as
	// kills ∪= K; adds = (adds \ K) ∪ A.
	for _, r := range w.recs {
		copy(r.dec[lo-r.lo:], sum.Dec)
		for _, l := range sum.Kills {
			r.kills.Add(l)
			r.adds.Remove(l)
		}
		for _, l := range sum.Adds {
			r.adds.Add(l)
		}
	}
	callEdge := w.src.Edge(lo)
	if callEdge == nil {
		return w.src.Err()
	}
	w.pcStep = callEdge.Src
	w.i = lo - 1
	return nil
}

// replaySummary applies a memoized frame edge by edge, re-asserting
// the kept operations to the incremental solver so the early-unsat
// cadence, solver state, and any mid-frame stop are identical to the
// plain walk. The Take predicate's relevance queries — the expensive
// part — are skipped; decisions come from the summary.
func (w *walker) replaySummary(ctx context.Context, sum *summ.Summary, lo, hi int) (stopped bool, err error) {
	for j := hi; j >= lo; j-- {
		switch sum.Dec[j-lo] {
		case summ.DecTaken:
			e := w.src.Edge(j)
			if e == nil {
				return false, w.src.Err()
			}
			op := e.Op
			w.res.Taken[j] = true
			w.countTaken(op.Kind)
			w.takeLive(op)
			w.pcStep = e.Src
			w.solver.Assert(w.enc.EncodeOpBackward(op))
			if op.Kind == cfa.OpAssume && w.earlyCheck(ctx) {
				w.i = j - 1
				return true, nil
			}
		case summ.DecSkipFrame:
			w.res.Stats.SkippedFrames++
		case summ.DecSkipChain:
			w.res.Stats.SkippedGuardChains++
		}
	}
	// Fully replayed: enclosing recordings absorb the decisions (the
	// live transfer already composed through takeLive per kept edge).
	for _, r := range w.recs {
		copy(r.dec[lo-r.lo:], sum.Dec)
	}
	w.i = lo - 1
	return false, nil
}

// markDec records a decision into every active frame recording.
func (w *walker) markDec(i int, d summ.Decision) {
	for _, r := range w.recs {
		if i >= r.lo && i <= r.hi {
			r.dec[i-r.lo] = d
		}
	}
}

// invalidateRecs poisons active recordings after a degraded relevance
// query: conservative decisions must not be memoized as the context's
// truth.
func (w *walker) invalidateRecs() {
	for _, r := range w.recs {
		r.invalid = true
	}
}

// finalizeRecs stores every recording whose frame the walk has fully
// crossed (w.i moved past its call edge). Recordings pop innermost
// first; invalid ones are dropped.
func (w *walker) finalizeRecs() {
	for len(w.recs) > 0 {
		rec := w.recs[len(w.recs)-1]
		if w.i >= rec.lo {
			return
		}
		w.recs = w.recs[:len(w.recs)-1]
		if rec.invalid {
			continue
		}
		cur := w.res.Stats
		sum := &summ.Summary{
			Callee:  rec.callee,
			EdgeIDs: rec.edgeIDs,
			Live:    rec.proj,
			Dec:     rec.dec,
			Kills:   rec.kills.Sorted(),
			Adds:    rec.adds.Sorted(),
			Effects: summ.Effects{
				TakenAssign:        cur.TakenAssign - rec.base.TakenAssign,
				TakenAssume:        cur.TakenAssume - rec.base.TakenAssume,
				TakenCall:          cur.TakenCall - rec.base.TakenCall,
				TakenReturn:        cur.TakenReturn - rec.base.TakenReturn,
				SkippedFrames:      cur.SkippedFrames - rec.base.SkippedFrames,
				SkippedGuardChains: cur.SkippedGuardChains - rec.base.SkippedGuardChains,
			},
		}
		for off, d := range rec.dec {
			if d == summ.DecTaken {
				sum.TakenOffs = append(sum.TakenOffs, int32(off))
			}
		}
		w.s.Summ.Insert(sum, rec.segHash, rec.liveHash)
	}
}

// ---------------------------------------------------------------------------
// The Take predicate

// take implements the Take predicate (Figure 3, with the §3.4 pointer
// generalization and the §4 call/return rules). The second result
// reports degradation: a relevance query that could not be answered,
// in which case the edge is conservatively taken (sound — a kept edge
// never invalidates the slice).
func (s *Slicer) take(op cfa.Op, e *cfa.Edge, live cfa.LvalSet, pcStep *cfa.Loc) (bool, bool) {
	switch op.Kind {
	case cfa.OpAssign:
		if s.Opts.Unsound == UnsoundDropAliasedWrites {
			// Broken on purpose: syntactic liveness only, no aliasing.
			return live.Has(op.LHS), false
		}
		// Take if the written lvalue may alias a live lvalue.
		for l := range live {
			if s.Alias.MayAlias(op.LHS, l) {
				return true, false
			}
		}
		return false, false
	case cfa.OpAssume:
		// A lone assume with no sibling branch (MiniC's `assume(p);`
		// statement) can halt the program outright; the paper's model
		// only has complementary branch pairs, where the By test covers
		// this. Taking such an edge is always sound and strengthens
		// completeness beyond the paper's "cannot reach pc_out" escape
		// clause — see DESIGN.md §6. Trivially-true assumes (the
		// builder's skip/jump edges) can never block and keep the
		// original rule.
		if len(e.Src.Out) == 1 && !predIsTriviallyTrue(op.Pred) {
			return true, false
		}
		// Take if a live lvalue may be written between here and the
		// step location, or if this location can bypass it.
		wr, werr := s.DF.WrBt(e.Src, pcStep, live)
		if werr != nil {
			return true, true
		}
		if wr {
			return true, false
		}
		if s.Opts.Unsound == UnsoundDropGuards {
			// Broken on purpose: no By test — bypassing guards dropped.
			return false, false
		}
		by, berr := s.DF.By(e.Src, pcStep)
		if berr != nil {
			return true, true
		}
		return by, false
	case cfa.OpCall:
		// Calls are always taken, keeping WrBt/By queries
		// intraprocedural (§4.1).
		return true, false
	case cfa.OpReturn:
		if s.Opts.Unsound == UnsoundSkipCallees {
			// Broken on purpose: every callee frame skipped, mod-ref
			// ignored.
			return false, false
		}
		// Take (and hence analyze the call body) only if the callee
		// may modify a live lvalue.
		return s.Mods.ModsAny(e.Src.Fn.Name, live), false
	case cfa.OpSpawn, cfa.OpJoin:
		// Thread operations are always kept: a slice must preserve the
		// thread structure of its trace (docs/CONCURRENCY.md).
		return true, false
	}
	return false, false
}

// predIsTriviallyTrue recognizes the builder's unconditional edges.
func predIsTriviallyTrue(p ast.Expr) bool {
	lit, ok := p.(*ast.IntLit)
	return ok && lit.Value != 0
}

// CheckFeasibility encodes the trace of a slice (or any path) and asks
// the decision procedure for a verdict. On StatusSat the returned model
// gives an initial state witnessing WP.true.(Tr.slice).
func (s *Slicer) CheckFeasibility(p cfa.Path) (smt.Result, *wp.TraceEncoder) {
	return s.CheckFeasibilityCtx(context.Background(), p)
}

// CheckFeasibilityCtx is CheckFeasibility under a context: when it is
// cancelled or times out the solve returns StatusUnknown — never a
// wrong Sat or Unsat.
func (s *Slicer) CheckFeasibilityCtx(ctx context.Context, p cfa.Path) (smt.Result, *wp.TraceEncoder) {
	sp := obs.StartSpan(obs.PhaseFeasibility)
	defer sp.End()
	enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
	f := enc.EncodeTrace(p.Ops())
	if s.Opts.Portfolio {
		return smt.SolvePortfolioCtx(ctx, f, s.Opts.SolverLimits), enc
	}
	return smt.SolveCtx(ctx, f, s.Opts.SolverLimits), enc
}

// CheckFeasibilityBatchCtx decides feasibility of several paths in one
// batched solver call (smt.SolveBatchCtx): queries are answered from
// the cache where possible, grouped by shared variable support, and
// walked on per-group incremental solvers so common trace prefixes are
// asserted once. Results are in input order; workers bounds concurrent
// groups (<=1 means serial). Verdict semantics match per-path
// CheckFeasibilityCtx.
func (s *Slicer) CheckFeasibilityBatchCtx(ctx context.Context, paths []cfa.Path, cache *smt.Cache, workers int) []smt.Result {
	sp := obs.StartSpan(obs.PhaseFeasibility)
	defer sp.End()
	fs := make([]logic.Formula, len(paths))
	for i, p := range paths {
		enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
		fs[i] = enc.EncodeTrace(p.Ops())
	}
	return smt.SolveBatchCtx(ctx, fs, smt.BatchOptions{
		Workers: workers,
		Cache:   cache,
		Lim:     s.Opts.SolverLimits,
	})
}

// TraceFormula returns the forward SSA constraint formula of a path's
// trace, for callers that want to inspect or reuse it.
func (s *Slicer) TraceFormula(p cfa.Path) logic.Formula {
	enc := wp.NewTraceEncoder(s.Prog, s.Alias, s.Addrs)
	return enc.EncodeTrace(p.Ops())
}
