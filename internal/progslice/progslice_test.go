package progslice_test

import (
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/progslice"
)

// ex1 is the paper's Figure 2 program: the static slice CANNOT remove
// complexfn (its result flows into x on one branch), but the path slice
// of the else path can.
const ex1 = `
int a;
int x;

int complexfn(int n) {
  int r = 1;
  for (int i = 0; i < n; i = i + 1) {
    r = r * r + i;
  }
  return r;
}

void main() {
  a = nondet();
  if (a > 0) {
    x = complexfn(a);
  } else {
    x = 5;
  }
  if (x == 5) {
    error;
  }
}
`

func TestStaticSliceRetainsComplex(t *testing.T) {
	prog := compile.MustSource(ex1)
	s := progslice.New(prog)
	target := prog.ErrorLocs()[0]
	res := s.Slice(target)
	if !res.RetainsFunc(prog, "complexfn") {
		t.Fatal("a sound static slice must retain complexfn: its result flows into x on the then branch")
	}
	if res.RetainedEdges() == 0 || res.Ratio() <= 0 {
		t.Fatalf("degenerate slice: %+v", res)
	}
}

func TestPathSliceBeatsStaticSliceOnEx1(t *testing.T) {
	prog := compile.MustSource(ex1)
	target := prog.ErrorLocs()[0]

	static := progslice.New(prog).Slice(target)

	path := cfa.FindPath(prog, target, cfa.FindOptions{})
	if path == nil {
		t.Fatal("no path")
	}
	ps := core.New(prog)
	res, err := ps.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	pathRetainsComplex := false
	for _, e := range res.Slice {
		if e.Src.Fn.Name == "complexfn" {
			pathRetainsComplex = true
		}
	}
	if pathRetainsComplex {
		t.Skip("path finder routed through complexfn; comparison not applicable")
	}
	// The headline comparison: the path slice drops complexfn, the
	// static slice cannot.
	if !static.RetainsFunc(prog, "complexfn") {
		t.Error("static slice dropped complexfn (unsound baseline?)")
	}
	if res.Stats.SliceEdges >= static.RetainedEdges() {
		t.Errorf("path slice (%d edges) should be smaller than static slice (%d edges)",
			res.Stats.SliceEdges, static.RetainedEdges())
	}
}

func TestStaticSliceDropsTrulyIrrelevantCode(t *testing.T) {
	prog := compile.MustSource(`
		int g; int junk;
		void noise() { junk = junk + 1; }
		void main() {
			g = 1;
			noise();
			junk = 5;
			if (g == 1) { error; }
		}`)
	s := progslice.New(prog)
	res := s.Slice(prog.ErrorLocs()[0])
	// junk never flows into g or the branch: noise should be dropped.
	if res.RetainsFunc(prog, "noise") {
		t.Error("noise is data- and control-irrelevant; static slice should drop it")
	}
	if res.Ratio() >= 1.0 {
		t.Errorf("slice kept everything: ratio %f", res.Ratio())
	}
}

func TestControlDependenceKept(t *testing.T) {
	prog := compile.MustSource(`
		int a; int g;
		void main() {
			a = nondet();
			if (a > 0) {
				g = 1;
			}
			if (g == 1) { error; }
		}`)
	s := progslice.New(prog)
	res := s.Slice(prog.ErrorLocs()[0])
	// The branch on a controls the write to g: its assume edges must be
	// retained, and hence a's definition.
	keptBranchOnA := false
	keptDefOfA := false
	for _, e := range prog.Funcs["main"].Edges {
		if !res.Relevant[e.ID] {
			continue
		}
		switch e.Op.String() {
		case "assume((a > 0))", "assume((!(a > 0)))":
			keptBranchOnA = true
		}
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "a" {
			keptDefOfA = true
		}
	}
	if !keptBranchOnA {
		t.Error("control dependence on (a > 0) lost")
	}
	if !keptDefOfA {
		t.Error("data dependence on a lost")
	}
}
