// Package progslice implements a conservative static backward program
// slicer over CFAs — the baseline path slicing is compared against
// (§1 of the paper, Weiser/Horwitz-Reps-Binkley style).
//
// The slicer computes the set of program edges that may affect the
// reachability of a target location, via the transitive closure of
//
//   - data dependence: an assignment that may write a variable read by
//     a relevant edge, and that can reach that edge, is relevant;
//   - control dependence: the branch edges a relevant edge's source is
//     control-dependent on are relevant (computed from postdominators);
//   - call dependence: call edges into functions containing relevant
//     edges are relevant.
//
// Because it must hold over ALL paths, the static slice is typically
// far larger than a path slice of any single path — the phenomenon the
// paper's Ex1 illustrates (the `complex` function cannot be removed
// statically). The comparison benches quantify this.
package progslice

import (
	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/dataflow"
	"pathslice/internal/modref"
	"pathslice/internal/obs"
)

// Registry metrics for the static-slicer baseline (see
// docs/OBSERVABILITY.md).
var (
	mStaticSlices       = obs.Default().Counter("progslice_slices_total")
	mStaticRatioPercent = obs.Default().Histogram("progslice_slice_ratio_percent")
)

// Result is a static slice: a set of relevant edges.
type Result struct {
	// Relevant maps edge ID to membership.
	Relevant map[int]bool
	// ProgramEdges is the total number of edges in the program.
	ProgramEdges int
}

// RetainedEdges returns the number of edges in the slice.
func (r *Result) RetainedEdges() int { return len(r.Relevant) }

// Ratio returns the fraction of program edges retained.
func (r *Result) Ratio() float64 {
	if r.ProgramEdges == 0 {
		return 0
	}
	return float64(len(r.Relevant)) / float64(r.ProgramEdges)
}

// RetainsFunc reports whether any edge of the named function is in the
// slice.
func (r *Result) RetainsFunc(prog *cfa.Program, fn string) bool {
	c := prog.Funcs[fn]
	if c == nil {
		return false
	}
	for _, e := range c.Edges {
		if r.Relevant[e.ID] {
			return true
		}
	}
	return false
}

// Slicer carries the analyses.
type Slicer struct {
	Prog  *cfa.Program
	Alias *alias.Info
	Mods  *modref.Info
	DF    *dataflow.Info
}

// New builds a static slicer, running the required analyses.
func New(prog *cfa.Program) *Slicer {
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	return &Slicer{Prog: prog, Alias: al, Mods: mr, DF: dataflow.Analyze(prog, al, mr)}
}

// Slice computes the backward static slice with respect to reaching
// target.
func (s *Slicer) Slice(target *cfa.Loc) *Result {
	sp := obs.StartSpan("progslice")
	defer func() { sp.End() }()
	res := &Result{Relevant: make(map[int]bool), ProgramEdges: s.Prog.NumEdges()}
	defer func() {
		mStaticSlices.Inc()
		mStaticRatioPercent.Observe(int64(100 * res.Ratio()))
	}()

	// Live variables of the criterion, grown monotonically
	// (flow-insensitive, conservative).
	liveVars := make(map[string]struct{})
	liveLvals := cfa.NewLvalSet()

	var worklist []*cfa.Edge
	addEdge := func(e *cfa.Edge) {
		if !res.Relevant[e.ID] {
			res.Relevant[e.ID] = true
			worklist = append(worklist, e)
		}
	}

	// Seed: edges entering the target location.
	for _, e := range target.In {
		addEdge(e)
	}

	// funcsWithRelevant tracks callees whose bodies contain relevant
	// edges, so their call sites become relevant.
	funcsWithRelevant := make(map[string]bool)

	for len(worklist) > 0 {
		e := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]

		// Reads of the edge become live.
		for l := range e.Op.Rd() {
			liveLvals.Add(l)
			liveVars[l.Var] = struct{}{}
			if l.Deref {
				for _, v := range s.Alias.Pts(l.Var) {
					liveVars[v] = struct{}{}
				}
			}
		}

		// Control dependence: the branch edges e.Src depends on.
		for _, br := range s.controlDeps(e.Src) {
			addEdge(br)
		}

		// Call dependence: mark the enclosing function and its callers.
		fn := e.Src.Fn
		if !funcsWithRelevant[fn.Name] {
			funcsWithRelevant[fn.Name] = true
			for _, caller := range s.Prog.Funcs {
				for _, ce := range caller.Edges {
					if ce.Op.Kind == cfa.OpCall && ce.Op.Callee == fn.Name {
						addEdge(ce)
					}
				}
			}
		}

		// Data dependence: any assignment possibly defining a live
		// variable and reaching a relevant edge. Flow-insensitive: scan
		// all edges once per round; the monotone live set bounds work.
		for _, f := range s.Prog.Funcs {
			for _, de := range f.Edges {
				if res.Relevant[de.ID] {
					continue
				}
				switch de.Op.Kind {
				case cfa.OpAssign:
					for l := range liveLvals {
						if s.Alias.MayAlias(de.Op.LHS, l) {
							addEdge(de)
							break
						}
					}
				case cfa.OpCall:
					if s.Mods.ModsAny(de.Op.Callee, liveLvals) {
						addEdge(de)
					}
				}
			}
		}
	}
	return res
}

// controlDeps returns the assume edges that loc is control-dependent
// on, intraprocedurally: branch edges (b -> t) where loc postdominates
// t but not b.
func (s *Slicer) controlDeps(loc *cfa.Loc) []*cfa.Edge {
	var out []*cfa.Edge
	for _, e := range loc.Fn.Edges {
		if e.Op.Kind != cfa.OpAssume || len(e.Src.Out) < 2 {
			continue
		}
		if e.Dst == loc ||
			(s.DF.MustPostdominates(loc, e.Dst) && !s.DF.MustPostdominates(loc, e.Src)) {
			out = append(out, e)
		}
	}
	return out
}
