package smt

import (
	"context"
	"math/big"
	"sort"
	"time"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
)

// Incremental interface (for the slicer's early-stop optimization and
// the refiner's feasibility checks, §4.2 of the paper — which assumes
// an *incremental* decision procedure).
//
// Unlike the from-scratch SolveCtx, a Solver keeps its decision state
// alive across Check calls:
//
//   - assertions are linearized exactly once, when asserted;
//   - the simplex tableau is retained between checks and warm-started
//     from the last feasible basis — a check after k new assertions
//     re-pivots the existing tableau with k new rows instead of
//     rebuilding and re-solving all n, with a from-scratch rebuild as
//     fallback when warm re-pivoting exhausts its budget;
//   - interval-propagation facts carry forward monotonically within a
//     Push frame (assertions only accumulate, so bounds only tighten),
//     seeded by the delta instead of recomputed;
//   - Push/Pop are trail-based: Pop undoes the recorded deltas (bound
//     changes in the tableau, interval snapshots, slice truncations)
//     rather than discarding the solver state.
//
// The engine handles pure conjunctions of (in)equalities natively —
// the shape every trace-formula assertion has. Assertions with
// residual boolean structure (Or after NNF; pointer-dereference
// guards) make definitive Sat answers fall back to the case-splitting
// SolveCtx; an Unsat from the conjunctive sub-engine is still final,
// because an unsatisfiable subset refutes the whole conjunction. The
// same fallback runs when the incremental engine answers Unknown for
// any reason other than an expired deadline, so the incremental path
// never *loses* verdicts relative to from-scratch solving (see the
// differential harness in diff_test.go).
//
// Verdict invariants match SolveCtx: Unsat is exact, Sat is validated
// against the original formulas whenever nonlinear abstraction was
// involved, Unknown only on limits, deadlines, or injected faults.

// warmPivotBudget bounds the pivots of a single warm-started simplex
// check (and each branch-and-bound node check). Exhaustion triggers a
// from-scratch tableau rebuild, counted in
// smt_warm_start_rebuilds_total.
const warmPivotBudget = 20000

// Solver is an incremental conjunction of formulas with a persistent
// Unsat state: once the asserted set is unsatisfiable it stays so
// until a Pop removes assertions (Push never clears it — pushing only
// adds assertions, which cannot make an unsatisfiable set satisfiable).
type Solver struct {
	asserted []logic.Formula
	frames   []solverFrame
	lim      Limits
	lastUns  bool
	// Stats
	Checks int

	// Persistent conjunctive engine state.
	lin     *linearizer     // shared across checks: atoms linearized once
	atoms   []LinAtom       // conjunctive atoms of all assertions
	nes     []neAtom        // deferred disequalities
	complex []logic.Formula // assertions with boolean structure (fallback)

	icp      *incICP // monotonic interval propagation state
	icpAtoms int     // atoms already fed to icp

	sx      *simplex
	sxAtoms int  // atoms already realized as tableau rows
	sxGen   int  // bumped on rebuild: frames from older generations drop sx on Pop
	warm    bool // a check has run on the current tableau
}

// solverFrame records the deltas a Pop must undo.
type solverFrame struct {
	nAsserted int
	nAtoms    int
	nNes      int
	nComplex  int
	lastUns   bool
	sxMark    int
	sxAtoms   int
	sxGen     int
	icpAtoms  int
	icpBounds map[string]interval // nil when icp did not exist at Push
}

// NewSolver returns an empty incremental solver.
func NewSolver() *Solver { return &Solver{lin: newLinearizer()} }

// NewSolverWithLimits returns an empty solver with custom limits.
func NewSolverWithLimits(lim Limits) *Solver { return &Solver{lin: newLinearizer(), lim: lim} }

// Assert conjoins f to the asserted set. The formula is interned
// (hash-consed) and decomposed into the persistent conjunctive state
// immediately; the next Check only pays for this delta.
func (s *Solver) Assert(f logic.Formula) {
	f = logic.Intern(f)
	s.asserted = append(s.asserted, f)
	if s.lin == nil {
		s.lin = newLinearizer()
	}
	s.addConjuncts(logic.NNF(logic.Simplify(f)))
}

// addConjuncts splits a normalized assertion into linear atoms,
// deferred disequalities, and residual boolean structure.
func (s *Solver) addConjuncts(f logic.Formula) {
	switch f := f.(type) {
	case logic.Bool:
		if !f.V {
			// An asserted contradiction: the atom 1 ≤ 0.
			s.atoms = append(s.atoms, LinAtom{Kind: AtomLe,
				Expr: LinExpr{Coeffs: map[string]*big.Int{}, Const: big.NewInt(1)}})
		}
	case logic.And:
		for _, g := range f.Fs {
			s.addConjuncts(g)
		}
	case logic.Cmp:
		r := s.lin.cmp(f)
		if len(r.split) == 2 {
			s.nes = append(s.nes, neAtom{lt: r.split[0], gt: r.split[1]})
		} else {
			s.atoms = append(s.atoms, r.atoms...)
		}
	default:
		s.complex = append(s.complex, f)
	}
}

// Push saves the current assertion set. The persistent Unsat flag is
// deliberately retained: a Push only opens the door to *more*
// assertions, which cannot make an unsatisfiable set satisfiable, so
// forgetting the flag would force needless re-solves.
func (s *Solver) Push() {
	fr := solverFrame{
		nAsserted: len(s.asserted),
		nAtoms:    len(s.atoms),
		nNes:      len(s.nes),
		nComplex:  len(s.complex),
		lastUns:   s.lastUns,
		sxAtoms:   s.sxAtoms,
		sxGen:     s.sxGen,
		icpAtoms:  s.icpAtoms,
	}
	if s.sx != nil {
		fr.sxMark = s.sx.mark()
	}
	if s.icp != nil {
		fr.icpBounds = s.icp.snapshotBounds()
	}
	s.frames = append(s.frames, fr)
}

// Pop restores the assertion set to the last Push by undoing the
// recorded deltas; the persistent Unsat flag is restored to its value
// at Push time (the flag described exactly the set Pop restores).
func (s *Solver) Pop() {
	if len(s.frames) == 0 {
		return
	}
	fr := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.asserted = s.asserted[:fr.nAsserted]
	s.atoms = s.atoms[:fr.nAtoms]
	s.nes = s.nes[:fr.nNes]
	s.complex = s.complex[:fr.nComplex]
	s.lastUns = fr.lastUns
	if s.sx != nil {
		if s.sxGen != fr.sxGen {
			// The tableau was rebuilt inside the frame: its rows bake in
			// popped assertions, so the trail mark is meaningless. Drop
			// it; the next check rebuilds from the surviving atoms.
			s.sx = nil
			s.sxAtoms = 0
			s.warm = false
		} else {
			s.sx.popTo(fr.sxMark)
			s.sxAtoms = fr.sxAtoms
		}
	}
	if s.icp != nil {
		if fr.icpBounds == nil {
			s.icp = nil
			s.icpAtoms = 0
		} else {
			s.icp.truncate(fr.icpAtoms)
			s.icp.bounds = fr.icpBounds
			s.icpAtoms = fr.icpAtoms
		}
	}
	// The linearizer is kept: abstraction variables for popped nonlinear
	// terms stay bound to the same names, which is consistent (and
	// required — retained atoms may mention them).
}

// Check decides the conjunction of all asserted formulas.
func (s *Solver) Check() Result { return s.CheckCtx(context.Background()) }

// CheckCtx decides the conjunction of all asserted formulas under ctx:
// on cancellation or deadline expiry the verdict is StatusUnknown
// (never recorded as a persistent Unsat).
func (s *Solver) CheckCtx(ctx context.Context) Result {
	if s.lastUns {
		mIncrementalReuse.Inc()
		return Result{Status: StatusUnsat}
	}
	s.Checks++
	if ctx == nil {
		ctx = context.Background()
	}
	lim := s.lim.withDefaults()
	if lim.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Deadline)
		defer cancel()
	}
	r, final := s.checkFast(ctx, lim)
	if !final {
		// Residual boolean structure or an inconclusive incremental
		// answer: decide from scratch with the case-splitting solver.
		r = SolveCtx(ctx, logic.MkAnd(s.asserted...), lim)
	}
	if r.Status == StatusUnsat {
		s.lastUns = true
	}
	return r
}

// checkFast runs the persistent conjunctive engine. final reports
// whether the result is authoritative; when false the caller must
// re-solve from scratch (the span and solve metrics of that path are
// emitted by SolveCtx itself, so this attempt stays silent).
func (s *Solver) checkFast(ctx context.Context, lim Limits) (Result, bool) {
	sp := obs.StartSpan(obs.PhaseSMT)
	defer sp.End()
	start := time.Now()
	// Fault injection, exactly as in SolveCtx (docs/ROBUSTNESS.md).
	if in := faults.Active(); in != nil {
		if in.Should(faults.SolverStall) {
			if d := in.StallDuration(); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
			}
		}
		if in.Should(faults.SolverUnknown) {
			mSolves.Inc()
			mUnknown.Inc()
			return Result{Status: StatusUnknown}, true
		}
	}
	if s.warm {
		mIncrementalReuse.Inc()
	}
	var st Status
	var model map[string]int64
	if ctx.Err() != nil {
		st = StatusUnknown
	} else {
		st, model = s.solveConj(ctx, lim)
	}
	s.warm = true
	final := st == StatusUnsat ||
		(st == StatusSat && len(s.complex) == 0) ||
		(st == StatusUnknown && ctx.Err() != nil) // re-solving under a dead ctx is pointless
	if !final {
		return Result{Status: StatusUnknown}, false
	}
	mSolves.Inc()
	mSolveNS.ObserveDuration(time.Since(start))
	switch st {
	case StatusSat:
		mSat.Inc()
		return Result{Status: StatusSat, Model: model}, true
	case StatusUnsat:
		mUnsat.Inc()
		return Result{Status: StatusUnsat}, true
	default:
		mUnknown.Inc()
		if ctx.Err() != nil {
			mDeadlineExceeded.Inc()
		}
		return Result{Status: StatusUnknown}, true
	}
}

// solveConj decides the conjunction of the persistent linear atoms and
// deferred disequalities, reusing all state from previous checks.
func (s *Solver) solveConj(ctx context.Context, lim Limits) (Status, map[string]int64) {
	// 1. Delta-seeded interval propagation (sound Unsat pre-filter).
	if s.runICP() == StatusUnsat {
		return StatusUnsat, nil
	}
	// 2. Realize tableau rows for the new atoms (with the per-atom GCD
	// integrality test the from-scratch path also applies).
	if s.ensureRows() == StatusUnsat {
		return StatusUnsat, nil
	}
	// 3. Rational feasibility, warm-started from the retained basis.
	warmAttempt := s.warm
	st := s.sx.checkCtx(ctx, warmPivotBudget)
	if st == StatusUnknown && ctx.Err() == nil {
		mWarmStartRebuilds.Inc()
		if s.rebuild() == StatusUnsat {
			return StatusUnsat, nil
		}
		st = s.sx.checkCtx(ctx, s.sx.maxPivots)
	} else if st != StatusUnknown && warmAttempt {
		mWarmStartHits.Inc()
	}
	switch st {
	case StatusUnsat:
		return StatusUnsat, nil
	case StatusUnknown:
		return StatusUnknown, nil
	}
	// 4. Integrality and lazy disequality splitting, branching by
	// pushing trailed bounds/rows onto the retained tableau.
	leaves := 0
	// The tableau was just decided feasible above; the top-level leaf
	// must not re-check it (preChecked) — on the hot early-stop path
	// that second full-tableau scan would double the cost of a check.
	st, bigModel := s.leafInc(ctx, lim, &leaves, s.nes, true)
	mLeafChecks.Add(int64(leaves))
	if st != StatusSat {
		return st, nil
	}
	model := make(map[string]int64, len(bigModel))
	for name, v := range bigModel {
		if !v.IsInt64() {
			return StatusUnknown, nil
		}
		model[name] = v.Int64()
	}
	if s.lin.used {
		// Nonlinear abstraction was involved: the candidate model must
		// satisfy the original formulas. A failure degrades to Unknown
		// and the caller's from-scratch fallback runs the full
		// multi-model search.
		mModelValid.Inc()
		if !s.validateConj(model) {
			return StatusUnknown, nil
		}
	}
	return StatusSat, projectModel(model)
}

// runICP feeds the new atoms into the persistent propagation state and
// propagates from them.
func (s *Solver) runICP() Status {
	if s.icp == nil {
		s.icp = newIncICP()
	}
	var seed []int
	for ; s.icpAtoms < len(s.atoms); s.icpAtoms++ {
		if ca, ok := convertICPAtom(s.atoms[s.icpAtoms]); ok {
			seed = append(seed, s.icp.add(ca))
		}
	}
	if len(seed) == 0 {
		return StatusUnknown // no delta: prior fixpoint still holds
	}
	return s.icp.propagate(seed)
}

// ensureRows appends tableau rows for atoms not yet realized. It
// returns StatusUnsat when a new atom is integer-infeasible on its own
// (GCD test / contradictory constant).
func (s *Solver) ensureRows() Status {
	if s.sx == nil {
		s.sx = newSimplex()
		s.sx.recording = true
		s.sxAtoms = 0
		s.warm = false
	}
	st := StatusUnknown
	for ; s.sxAtoms < len(s.atoms); s.sxAtoms++ {
		a := s.atoms[s.sxAtoms]
		if gcdInfeasible(a) {
			st = StatusUnsat // keep realizing rows so sxAtoms stays in sync
		}
		addAtomRow(s.sx, a)
	}
	return st
}

// rebuild discards the tableau and realizes every live atom afresh —
// the fallback when warm re-pivoting exhausts its budget.
func (s *Solver) rebuild() Status {
	s.sxGen++
	s.sx = nil
	return s.ensureRows()
}

// addAtomRow adds one normalized atom as a bounded slack row.
func addAtomRow(sx *simplex, a LinAtom) {
	rhs := new(big.Rat).SetInt(new(big.Int).Neg(a.Expr.Const))
	switch a.Kind {
	case AtomLe:
		sx.addConstraint(a.Expr.Coeffs, nil, rhs)
	case AtomEq:
		sx.addConstraint(a.Expr.Coeffs, rhs, rhs)
	}
}

// gcdInfeasible reports whether a single atom is integer-infeasible by
// itself: a contradictory constant atom, or an equality Σ cᵢxᵢ = k
// with gcd(cᵢ) ∤ k.
func gcdInfeasible(a LinAtom) bool {
	if len(a.Expr.Coeffs) == 0 {
		if a.Kind == AtomEq {
			return a.Expr.Const.Sign() != 0
		}
		return a.Expr.Const.Sign() > 0
	}
	if a.Kind != AtomEq {
		return false
	}
	g := new(big.Int)
	first := true
	for _, c := range a.Expr.Coeffs {
		if first {
			g.Abs(c)
			first = false
		} else {
			g.GCD(nil, nil, g, new(big.Int).Abs(c))
		}
	}
	if g.Sign() > 0 {
		rem := new(big.Int).Mod(new(big.Int).Neg(a.Expr.Const), g)
		return rem.Sign() != 0
	}
	return false
}

// leafInc is the incremental counterpart of searcher.leaf: decide the
// tableau, branch-and-bound for integrality, and lazily split on a
// disequality the candidate model violates. All branching is done by
// pushing trailed state onto the retained tableau and popping it on
// the way out.
func (s *Solver) leafInc(ctx context.Context, lim Limits, leaves *int, nes []neAtom, preChecked bool) (Status, map[string]*big.Int) {
	*leaves++
	if *leaves > lim.MaxLeaves {
		return StatusUnknown, nil
	}
	if ctx != nil && ctx.Err() != nil {
		return StatusUnknown, nil
	}
	if !preChecked {
		switch s.sx.checkCtx(ctx, warmPivotBudget) {
		case StatusUnsat:
			return StatusUnsat, nil
		case StatusUnknown:
			return StatusUnknown, nil
		}
	}
	st, model := s.bbInc(ctx, lim.MaxBBDepth)
	if st != StatusSat {
		return st, nil
	}
	var sum, tmp big.Int // scratch: the scan runs per check over every deferred disequality
	for i, ne := range nes {
		if linAtomHoldsScratch(ne.lt, model, &sum, &tmp) || linAtomHoldsScratch(ne.gt, model, &sum, &tmp) {
			continue
		}
		// Violated: the model makes both sides equal. Branch on the two
		// strict alternatives.
		rest := make([]neAtom, 0, len(nes)-1)
		rest = append(rest, nes[:i]...)
		rest = append(rest, nes[i+1:]...)
		sawUnknown := false
		for _, side := range [2]LinAtom{ne.lt, ne.gt} {
			m := s.sx.mark()
			addAtomRow(s.sx, side)
			st2, model2 := s.leafInc(ctx, lim, leaves, rest, false)
			s.sx.popTo(m)
			if st2 == StatusSat {
				return StatusSat, model2
			}
			if st2 == StatusUnknown {
				sawUnknown = true
			}
		}
		if sawUnknown {
			return StatusUnknown, nil
		}
		return StatusUnsat, nil
	}
	return StatusSat, model
}

// bbInc is branch-and-bound on the retained tableau: instead of
// rebuilding a simplex per node (the from-scratch path), each branch
// pushes one trailed bound, re-pivots, recurses, and pops.
func (s *Solver) bbInc(ctx context.Context, depth int) (Status, map[string]*big.Int) {
	if ctx != nil && ctx.Err() != nil {
		return StatusUnknown, nil
	}
	name, frac := s.fractionalVar()
	if name == "" {
		return StatusSat, s.intModel()
	}
	if depth <= 0 {
		return StatusUnknown, nil
	}
	floor := ratFloor(frac)
	hi := new(big.Rat).SetInt(floor)
	lo := new(big.Rat).SetInt(new(big.Int).Add(floor, big.NewInt(1)))
	st1, m1 := s.bbBranch(ctx, name, nil, hi, depth)
	if st1 == StatusSat {
		return st1, m1
	}
	st2, m2 := s.bbBranch(ctx, name, lo, nil, depth)
	if st2 == StatusSat {
		return st2, m2
	}
	if st1 == StatusUnsat && st2 == StatusUnsat {
		return StatusUnsat, nil
	}
	return StatusUnknown, nil
}

func (s *Solver) bbBranch(ctx context.Context, name string, lo, hi *big.Rat, depth int) (Status, map[string]*big.Int) {
	m := s.sx.mark()
	defer s.sx.popTo(m)
	if !s.sx.setBounds(name, lo, hi) {
		return StatusUnsat, nil
	}
	switch s.sx.checkCtx(ctx, warmPivotBudget) {
	case StatusUnsat:
		return StatusUnsat, nil
	case StatusUnknown:
		return StatusUnknown, nil
	}
	return s.bbInc(ctx, depth-1)
}

// fractionalVar returns the lexicographically smallest named variable
// with a fractional value (the same branching order as the
// from-scratch path, for reproducible statuses).
func (s *Solver) fractionalVar() (string, *big.Rat) {
	names := make([]string, 0, len(s.sx.index))
	for name := range s.sx.index {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.sx.val[s.sx.index[name]]
		if !v.IsInt() {
			return name, v
		}
	}
	return "", nil
}

// intModel snapshots the (all-integral) named-variable values.
func (s *Solver) intModel() map[string]*big.Int {
	model := make(map[string]*big.Int, len(s.sx.index))
	for name, id := range s.sx.index {
		model[name] = new(big.Int).Set(s.sx.val[id].Num())
	}
	return model
}

// validateConj checks the candidate model against the original
// asserted formulas (0 for variables the model does not mention).
func (s *Solver) validateConj(model map[string]int64) bool {
	env := make(map[string]int64)
	for _, f := range s.asserted {
		for _, v := range logic.Vars(f) {
			if _, ok := env[v]; !ok {
				env[v] = model[v]
			}
		}
	}
	for _, f := range s.asserted {
		ok, err := logic.Eval(f, env)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// Assertions returns the number of asserted formulas.
func (s *Solver) Assertions() int { return len(s.asserted) }

// UnsatCore returns a deletion-minimized subset of the asserted
// formulas whose conjunction is still unsatisfiable. It must be called
// after Check has returned StatusUnsat; it returns nil otherwise. The
// indices into the assertion list are returned alongside the formulas
// so callers can map core members back to trace operations.
//
// Minimization is the standard deletion filter: drop each member in
// turn and keep the drop when the rest stays unsat — O(n) solver calls,
// so it is skipped (returning the full set) beyond MaxCoreCandidates.
// Because assertions are interned, the per-member triviality test is a
// pointer comparison rather than a serialization.
func (s *Solver) UnsatCore() ([]logic.Formula, []int) {
	if !s.lastUns {
		return nil, nil
	}
	const maxCoreCandidates = 256
	idx := make([]int, 0, len(s.asserted))
	for i, f := range s.asserted {
		if _, isTrue := f.(logic.Bool); isTrue && logic.Equal(f, logic.True) {
			continue // trivially irrelevant
		}
		idx = append(idx, i)
	}
	if len(idx) > maxCoreCandidates {
		fs := make([]logic.Formula, len(idx))
		for k, i := range idx {
			fs[k] = s.asserted[i]
		}
		return fs, idx
	}
	core := idx
	for k := 0; k < len(core); k++ {
		trial := make([]logic.Formula, 0, len(core)-1)
		for j, i := range core {
			if j == k {
				continue
			}
			trial = append(trial, s.asserted[i])
		}
		s.Checks++
		if SolveWithLimits(logic.MkAnd(trial...), s.lim).Status == StatusUnsat {
			core = append(core[:k], core[k+1:]...)
			k--
		}
	}
	fs := make([]logic.Formula, len(core))
	for k, i := range core {
		fs[k] = s.asserted[i]
	}
	return fs, core
}
