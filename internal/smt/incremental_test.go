package smt

import (
	"testing"

	"pathslice/internal/logic"
)

// TestPushKeepsUnsat is the regression test for the Push/lastUns bug:
// Push only ever adds assertions, so an unsatisfiable set must stay
// unsatisfiable across Push — and the solver must answer from its
// persistent flag without re-solving.
func TestPushKeepsUnsat(t *testing.T) {
	x := logic.Var{Name: "x"}
	s := NewSolver()
	s.Assert(ge(x, logic.Const{V: 1}))
	s.Assert(le(x, logic.Const{V: 0}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("contradiction: got %v", r.Status)
	}
	checks := s.Checks
	s.Push()
	s.Assert(ge(logic.Var{Name: "y"}, logic.Const{V: 5}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("superset of unsat set must stay unsat, got %v", r.Status)
	}
	if s.Checks != checks {
		t.Fatalf("sticky unsat across Push must not re-solve: %d solver checks, want %d", s.Checks, checks)
	}
	s.Pop()
	// The flag at Push time was true, so Pop restores an unsat state.
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("post-Pop state was unsat at Push, got %v", r.Status)
	}
	if s.Checks != checks {
		t.Fatalf("sticky unsat across Pop must not re-solve: %d solver checks, want %d", s.Checks, checks)
	}
}

// TestPopRestoresSatisfiability exercises the bound trail: popping a
// frame must undo its tableau bound changes so an earlier satisfiable
// state is recovered — on the *same* retained tableau, not a rebuild.
func TestPopRestoresSatisfiability(t *testing.T) {
	x := logic.Var{Name: "x"}
	s := NewSolver()
	s.Assert(le(x, logic.Const{V: 10}))
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("x<=10: got %v", r.Status)
	}
	sx := s.sx
	s.Push()
	s.Assert(ge(x, logic.Const{V: 20}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("x<=10 && x>=20: got %v", r.Status)
	}
	s.Pop()
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("after Pop, x<=10 alone must be sat again: got %v", r.Status)
	}
	if s.sx != sx {
		t.Fatal("Pop within one tableau generation must keep the tableau")
	}
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("repeat check: got %v", r.Status)
	}
}

// TestIncrementalChainReusesState asserts a chain x0=0, x1=x0+1, ...
// one link at a time with a check after each, and verifies the solver
// keeps one linearization and one tableau across the whole chain.
func TestIncrementalChainReusesState(t *testing.T) {
	s := NewSolver()
	prev := logic.Term(logic.Const{V: 0})
	for i := 0; i < 30; i++ {
		v := logic.Var{Name: varName(i)}
		s.Assert(logic.Cmp{Op: logic.CmpEq, X: v, Y: logic.Bin{Op: logic.OpAdd, X: prev, Y: logic.Const{V: 1}}})
		if r := s.Check(); r.Status != StatusSat {
			t.Fatalf("link %d: got %v", i, r.Status)
		}
		prev = v
	}
	if s.sx == nil || s.sxAtoms != len(s.atoms) {
		t.Fatalf("tableau must track all %d atoms, has %d", len(s.atoms), s.sxAtoms)
	}
	if !s.warm {
		t.Fatal("solver must be warm after repeated checks")
	}
	// Contradict the end of the chain: only the delta is new work.
	s.Assert(ge(prev, logic.Const{V: 100}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("x29=30 && x29>=100: got %v", r.Status)
	}
}

func varName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// TestComplexAssertionFallsBack: assertions with residual boolean
// structure (Or after NNF) cannot be decided Sat by the conjunctive
// engine alone; the solver must fall back and still agree with the
// from-scratch verdict.
func TestComplexAssertionFallsBack(t *testing.T) {
	x := logic.Var{Name: "x"}
	s := NewSolver()
	disj := logic.MkOr(
		logic.Cmp{Op: logic.CmpEq, X: x, Y: logic.Const{V: 3}},
		logic.Cmp{Op: logic.CmpEq, X: x, Y: logic.Const{V: 7}},
	)
	s.Assert(disj)
	s.Assert(ge(x, logic.Const{V: 5}))
	r := s.Check()
	if r.Status != StatusSat {
		t.Fatalf("(x=3 || x=7) && x>=5: got %v", r.Status)
	}
	if r.Model["x"] != 7 {
		t.Fatalf("model must pick the feasible disjunct, got x=%d", r.Model["x"])
	}
	// An unsat conjunctive subset refutes the whole set without
	// touching the disjunction.
	s.Push()
	s.Assert(le(x, logic.Const{V: 4}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("x>=5 && x<=4 with disjunct present: got %v", r.Status)
	}
	s.Pop()
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("after Pop: got %v", r.Status)
	}
}

// TestIncrementalNonlinearValidation: nonlinear atoms go through the
// abstraction, so Sat answers must be validated against the originals.
func TestIncrementalNonlinearValidation(t *testing.T) {
	x, y := logic.Var{Name: "x"}, logic.Var{Name: "y"}
	s := NewSolver()
	s.Assert(logic.Cmp{Op: logic.CmpEq, X: logic.Bin{Op: logic.OpMul, X: x, Y: x}, Y: logic.Const{V: 9}})
	s.Assert(ge(x, logic.Const{V: 0}))
	r := s.Check()
	switch r.Status {
	case StatusSat:
		if r.Model["x"]*r.Model["x"] != 9 {
			t.Fatalf("validated model must satisfy x*x=9, got x=%d", r.Model["x"])
		}
	case StatusUnknown:
		// Legal: abstraction may fail to guess the witness.
	default:
		t.Fatalf("x*x=9 && x>=0 cannot be unsat, got %v", r.Status)
	}
	// Incremental disequality splitting on top of persistent state.
	s2 := NewSolver()
	s2.Assert(ge(x, logic.Const{V: 0}))
	s2.Assert(le(x, logic.Const{V: 1}))
	s2.Assert(ge(y, logic.Const{V: 0}))
	s2.Assert(le(y, logic.Const{V: 1}))
	if r := s2.Check(); r.Status != StatusSat {
		t.Fatalf("box: got %v", r.Status)
	}
	s2.Assert(logic.Cmp{Op: logic.CmpNe, X: x, Y: y})
	if r := s2.Check(); r.Status != StatusSat {
		t.Fatalf("box && x!=y: got %v", r.Status)
	}
	s2.Assert(logic.Cmp{Op: logic.CmpEq, X: x, Y: y})
	if r := s2.Check(); r.Status != StatusUnsat {
		t.Fatalf("x!=y && x=y: got %v", r.Status)
	}
}

// TestNestedFramesRestoreExactState drives three nested frames and
// pops them one by one, checking the verdict at every level.
func TestNestedFramesRestoreExactState(t *testing.T) {
	x := logic.Var{Name: "x"}
	s := NewSolver()
	s.Assert(ge(x, logic.Const{V: 0}))
	s.Push()
	s.Assert(le(x, logic.Const{V: 100}))
	s.Push()
	s.Assert(ge(x, logic.Const{V: 50}))
	s.Push()
	s.Assert(le(x, logic.Const{V: 40}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("level 3: got %v", r.Status)
	}
	s.Pop()
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("level 2 (0<=x<=100, x>=50): got %v", r.Status)
	}
	if v := r50(s, t); v < 50 || v > 100 {
		t.Fatalf("level 2 model out of range: %d", v)
	}
	s.Pop()
	s.Pop()
	if s.Assertions() != 1 {
		t.Fatalf("assertions after full unwind: %d, want 1", s.Assertions())
	}
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("base level: got %v", r.Status)
	}
}

func r50(s *Solver, t *testing.T) int64 {
	t.Helper()
	r := s.Check()
	if r.Status != StatusSat {
		t.Fatalf("expected sat, got %v", r.Status)
	}
	return r.Model["x"]
}

// TestUnsatCoreIncremental: the core facility must survive the engine
// swap — after an unsat check the minimized core still pins the
// contradicting pair.
func TestUnsatCoreIncremental(t *testing.T) {
	x := logic.Var{Name: "x"}
	s := NewSolver()
	s.Assert(ge(logic.Var{Name: "a"}, logic.Const{V: 0}))
	s.Assert(ge(x, logic.Const{V: 10}))
	s.Assert(ge(logic.Var{Name: "b"}, logic.Const{V: 0}))
	s.Assert(le(x, logic.Const{V: 5}))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("got %v", r.Status)
	}
	fs, idx := s.UnsatCore()
	if len(fs) != 2 || len(idx) != 2 {
		t.Fatalf("core size %d, want 2 (%v)", len(fs), idx)
	}
	if idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("core indices %v, want [1 3]", idx)
	}
}
