package smt

import (
	"math/big"
	"testing"

	"pathslice/internal/logic"
)

func v(name string) logic.Term       { return logic.Var{Name: name} }
func c(k int64) logic.Term           { return logic.Const{V: k} }
func add(x, y logic.Term) logic.Term { return logic.Bin{Op: logic.OpAdd, X: x, Y: y} }
func sub(x, y logic.Term) logic.Term { return logic.Bin{Op: logic.OpSub, X: x, Y: y} }
func mul(x, y logic.Term) logic.Term { return logic.Bin{Op: logic.OpMul, X: x, Y: y} }

func eq(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpEq, X: x, Y: y} }
func ne(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpNe, X: x, Y: y} }
func lt(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpLt, X: x, Y: y} }
func le(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpLe, X: x, Y: y} }
func gt(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpGt, X: x, Y: y} }
func ge(x, y logic.Term) logic.Formula { return logic.Cmp{Op: logic.CmpGe, X: x, Y: y} }

func wantStatus(t *testing.T, f logic.Formula, want Status) Result {
	t.Helper()
	r := Solve(f)
	if r.Status != want {
		t.Fatalf("Solve(%s) = %s, want %s (model %v)", f, r.Status, want, r.Model)
	}
	return r
}

// checkModel verifies that a SAT result's model actually satisfies f.
func checkModel(t *testing.T, f logic.Formula, r Result) {
	t.Helper()
	env := make(map[string]int64)
	for _, name := range logic.Vars(f) {
		env[name] = r.Model[name]
	}
	ok, err := logic.Eval(f, env)
	if err != nil {
		t.Fatalf("model eval error for %s: %v (model %v)", f, err, r.Model)
	}
	if !ok {
		t.Fatalf("model %v does not satisfy %s", r.Model, f)
	}
}

func TestSolveTrivial(t *testing.T) {
	wantStatus(t, logic.True, StatusSat)
	wantStatus(t, logic.False, StatusUnsat)
	wantStatus(t, eq(c(1), c(1)), StatusSat)
	wantStatus(t, eq(c(1), c(2)), StatusUnsat)
	wantStatus(t, lt(c(3), c(2)), StatusUnsat)
	wantStatus(t, ge(c(3), c(2)), StatusSat)
}

func TestSolveConjunctions(t *testing.T) {
	x, y := v("x"), v("y")
	r := wantStatus(t, logic.MkAnd(eq(x, c(3)), eq(y, add(x, c(1)))), StatusSat)
	checkModel(t, logic.MkAnd(eq(x, c(3)), eq(y, add(x, c(1)))), r)
	if r.Model["x"] != 3 || r.Model["y"] != 4 {
		t.Errorf("model: %v", r.Model)
	}
	wantStatus(t, logic.MkAnd(eq(x, c(3)), lt(x, c(3))), StatusUnsat)
	wantStatus(t, logic.MkAnd(le(x, c(5)), ge(x, c(5)), ne(x, c(5))), StatusUnsat)
	wantStatus(t, logic.MkAnd(lt(x, y), lt(y, x)), StatusUnsat)
}

func TestSolveDisjunctions(t *testing.T) {
	x := v("x")
	f := logic.MkAnd(
		logic.MkOr(eq(x, c(1)), eq(x, c(2))),
		ne(x, c(1)),
	)
	r := wantStatus(t, f, StatusSat)
	if r.Model["x"] != 2 {
		t.Errorf("model: %v", r.Model)
	}
	f2 := logic.MkAnd(
		logic.MkOr(eq(x, c(1)), eq(x, c(2))),
		ne(x, c(1)),
		ne(x, c(2)),
	)
	wantStatus(t, f2, StatusUnsat)
}

func TestSolveNegationNormalization(t *testing.T) {
	x := v("x")
	// !(x < 5) && x <= 5  =>  x == 5
	f := logic.MkAnd(logic.MkNot(lt(x, c(5))), le(x, c(5)))
	r := wantStatus(t, f, StatusSat)
	if r.Model["x"] != 5 {
		t.Errorf("model: %v", r.Model)
	}
	// !(x == x) is unsat.
	wantStatus(t, logic.MkNot(eq(x, x)), StatusUnsat)
	// De Morgan through Not of And.
	g := logic.Not{F: logic.MkAnd(ge(x, c(0)), le(x, c(10)))}
	r = wantStatus(t, logic.MkAnd(g, ge(x, c(0))), StatusSat)
	if r.Model["x"] <= 10 {
		t.Errorf("x must exceed 10: %v", r.Model)
	}
}

func TestSolveIntegrality(t *testing.T) {
	x, y := v("x"), v("y")
	// 2x = 2y + 1 has rational solutions but no integer ones (GCD test).
	f := eq(mul(c(2), x), add(mul(c(2), y), c(1)))
	wantStatus(t, f, StatusUnsat)
	// 4 <= 3x <= 5 has rational solutions (x ∈ [4/3, 5/3]) but no
	// integer one: needs branch and bound.
	g := logic.MkAnd(ge(mul(c(3), x), c(4)), le(mul(c(3), x), c(5)))
	wantStatus(t, g, StatusUnsat)
	// 2 <= 2x <= 4 does have integer solutions.
	h := logic.MkAnd(ge(mul(c(2), x), c(2)), le(mul(c(2), x), c(4)))
	r := wantStatus(t, h, StatusSat)
	checkModel(t, h, r)
}

func TestSolveChainedSSA(t *testing.T) {
	// The shape of trace formulas: x1 = x0+1, x2 = x1+1, ..., x0 = 0,
	// xn == n is sat; xn == n+1 is unsat.
	const n = 30
	mk := func(last int64) logic.Formula {
		fs := []logic.Formula{eq(v(vname(0)), c(0))}
		for i := 1; i <= n; i++ {
			fs = append(fs, eq(v(vname(i)), add(v(vname(i-1)), c(1))))
		}
		fs = append(fs, eq(v(vname(n)), c(last)))
		return logic.MkAnd(fs...)
	}
	r := wantStatus(t, mk(n), StatusSat)
	checkModel(t, mk(n), r)
	wantStatus(t, mk(n+1), StatusUnsat)
}

func vname(i int) string {
	return "x" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSolveNonlinearAbstraction(t *testing.T) {
	x, y := v("x"), v("y")
	// x*y == 6 && x == 2 && y == 3 : abstraction + validation finds it.
	f := logic.MkAnd(eq(mul(x, y), c(6)), eq(x, c(2)), eq(y, c(3)))
	r := wantStatus(t, f, StatusSat)
	checkModel(t, f, r)
	// x*y == 6 && x*y == 7 : same abstract var, contradiction caught.
	g := logic.MkAnd(eq(mul(x, y), c(6)), eq(mul(x, y), c(7)))
	wantStatus(t, g, StatusUnsat)
	// x*y == 5 && x == 2 && y == 3 : abstraction says sat, validation
	// fails; must NOT report sat.
	h := logic.MkAnd(eq(mul(x, y), c(5)), eq(x, c(2)), eq(y, c(3)))
	if got := Solve(h); got.Status == StatusSat {
		t.Fatalf("invalid nonlinear formula reported sat with model %v", got.Model)
	}
}

func TestSolveDivMod(t *testing.T) {
	x := v("x")
	// Constant folding keeps these exact.
	f := eq(logic.Bin{Op: logic.OpDiv, X: c(7), Y: c(2)}, c(3))
	wantStatus(t, f, StatusSat)
	g := eq(logic.Bin{Op: logic.OpMod, X: c(7), Y: c(2)}, c(1))
	wantStatus(t, g, StatusSat)
	// Nonconstant division is abstracted; a consistent assignment
	// validates.
	h := logic.MkAnd(eq(x, c(6)), eq(logic.Bin{Op: logic.OpDiv, X: x, Y: c(2)}, c(3)))
	r := Solve(h)
	if r.Status == StatusUnsat {
		t.Fatalf("x=6 && x/2=3 must not be unsat")
	}
}

func TestUnsatCore_NeverLies(t *testing.T) {
	// Unsat verdicts must hold even with abstraction: if the abstract
	// formula is unsat, so is the original.
	x, y := v("x"), v("y")
	f := logic.MkAnd(
		gt(mul(x, y), c(0)),
		lt(mul(x, y), c(0)),
	)
	wantStatus(t, f, StatusUnsat)
}

func TestIncrementalSolver(t *testing.T) {
	s := NewSolver()
	x := v("x")
	s.Assert(ge(x, c(0)))
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("x>=0: %s", r.Status)
	}
	s.Push()
	s.Assert(lt(x, c(0)))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("x>=0 && x<0: %s", r.Status)
	}
	// Unsat is sticky until Pop.
	s.Assert(eq(x, c(1)))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatal("unsat must be sticky")
	}
	s.Pop()
	if r := s.Check(); r.Status != StatusSat {
		t.Fatalf("after pop: %s", r.Status)
	}
	if s.Assertions() != 1 {
		t.Errorf("assertions: %d", s.Assertions())
	}
}

// Brute-force reference: enumerate all assignments over a small domain
// and compare with the solver. Formulas are linear so the solver must
// agree exactly on UNSAT; for SAT within the domain the solver must
// also say SAT (it may find models outside the domain, which is fine).
func TestSolveAgainstBruteForce(t *testing.T) {
	vars := []string{"a", "b"}
	const lo, hi = -3, 3
	formulas := []logic.Formula{
		logic.MkAnd(lt(v("a"), v("b")), lt(v("b"), v("a"))),
		logic.MkAnd(le(v("a"), v("b")), le(v("b"), v("a")), ne(v("a"), v("b"))),
		logic.MkOr(eq(v("a"), c(2)), eq(v("b"), c(-2))),
		logic.MkAnd(eq(add(v("a"), v("b")), c(4)), eq(sub(v("a"), v("b")), c(2))),
		logic.MkAnd(eq(add(v("a"), v("b")), c(3)), eq(sub(v("a"), v("b")), c(0))),
		logic.MkAnd(ge(v("a"), c(0)), le(v("a"), c(2)), ne(v("a"), c(0)), ne(v("a"), c(1)), ne(v("a"), c(2))),
		logic.MkAnd(gt(mul(c(3), v("a")), c(1)), lt(mul(c(3), v("a")), c(5))),
	}
	for i, f := range formulas {
		bruteSat := false
		for a := int64(lo); a <= hi && !bruteSat; a++ {
			for b := int64(lo); b <= hi && !bruteSat; b++ {
				env := map[string]int64{vars[0]: a, vars[1]: b}
				ok, err := logic.Eval(f, env)
				if err == nil && ok {
					bruteSat = true
				}
			}
		}
		r := Solve(f)
		if bruteSat && r.Status == StatusUnsat {
			t.Errorf("formula %d (%s): brute force found a model but solver says unsat", i, f)
		}
		if !bruteSat && r.Status == StatusSat {
			// The model may legitimately live outside the brute-force
			// domain; verify it.
			checkModel(t, f, r)
		}
	}
}

func TestRatHelpers(t *testing.T) {
	r := big.NewRat(7, 2)
	if f := ratFloor(r); f.Int64() != 3 {
		t.Errorf("floor(7/2) = %v", f)
	}
	if f := ratFloor(big.NewRat(-7, 2)); f.Int64() != -4 {
		t.Errorf("floor(-7/2) = %v", f)
	}
	if got, ok := ratToInt64(big.NewRat(5, 1)); !ok || got != 5 {
		t.Errorf("ratToInt64(5) = %v %v", got, ok)
	}
	if _, ok := ratToInt64(big.NewRat(5, 2)); ok {
		t.Error("5/2 is not an int64")
	}
}

func TestLinearizeSharing(t *testing.T) {
	l := newLinearizer()
	x, y := v("x"), v("y")
	e1 := l.term(mul(x, y))
	e2 := l.term(mul(x, y))
	if e1.String() != e2.String() {
		t.Errorf("identical nonlinear terms must share the abstraction var: %s vs %s", e1, e2)
	}
	e3 := l.term(mul(y, x))
	if e3.String() == e1.String() {
		t.Log("note: x*y and y*x are distinct abstractions (syntactic sharing only)")
	}
	if !l.used {
		t.Error("abstraction flag must be set")
	}
}

func TestSolveLargeConjunctionPerformance(t *testing.T) {
	// 200-variable equality chain should solve fast.
	fs := []logic.Formula{eq(v("y000"), c(7))}
	prev := "y000"
	for i := 1; i < 200; i++ {
		name := vname3(i)
		fs = append(fs, eq(v(name), add(v(prev), c(1))))
		prev = name
	}
	f := logic.MkAnd(fs...)
	r := wantStatus(t, f, StatusSat)
	if r.Model[prev] != 7+199 {
		t.Errorf("chain end: %d", r.Model[prev])
	}
}

func vname3(i int) string {
	return "y" + string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
}
