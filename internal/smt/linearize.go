// Package smt implements the decision procedure used to decide
// (in)feasibility of trace formulas (§4.2 of the paper): satisfiability
// of quantifier-free formulas over linear integer arithmetic.
//
// Architecture:
//
//   - linearize.go turns comparison atoms into normalized linear
//     constraints Σ cᵢ·xᵢ ≤ k / = k over integers, abstracting
//     nonlinear subterms (x*y, x/y, x%y with non-constant operands)
//     into fresh variables with structural sharing;
//   - simplex.go is a Dutertre–de Moura style general simplex over
//     exact rationals deciding conjunctions, with branch-and-bound for
//     integrality;
//   - solve.go performs semantic case-splitting over the boolean
//     structure with eager theory pruning, plus model validation
//     against the original formula whenever abstraction was used.
//
// Verdicts: Unsat is always trustworthy (every abstraction used is an
// over-approximation). Sat comes with a model that has been validated
// against the original formula. Unknown is returned when resource
// limits are hit or no abstract model validates.
//
// Observability: every solve is wrapped in an obs span (phase "smt")
// and the package mirrors its internals — solve counts and verdicts,
// case splits, simplex pivots, per-solve latency, and Cache
// hit/miss/eviction traffic — onto the process-wide obs registry (the
// smt_* metrics; see docs/OBSERVABILITY.md). With observability
// disabled every such update is a single atomic load plus a branch.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"pathslice/internal/logic"
)

// LinExpr is a linear expression Σ coeff·var + Const over integers.
type LinExpr struct {
	Coeffs map[string]*big.Int
	Const  *big.Int
}

func newLinExpr() LinExpr {
	return LinExpr{Coeffs: make(map[string]*big.Int), Const: big.NewInt(0)}
}

func (e LinExpr) addVar(name string, c *big.Int) {
	if cur, ok := e.Coeffs[name]; ok {
		cur.Add(cur, c)
		if cur.Sign() == 0 {
			delete(e.Coeffs, name)
		}
		return
	}
	if c.Sign() != 0 {
		e.Coeffs[name] = new(big.Int).Set(c)
	}
}

func (e LinExpr) add(other LinExpr, scale *big.Int) {
	for v, c := range other.Coeffs {
		e.addVar(v, new(big.Int).Mul(c, scale))
	}
	e.Const.Add(e.Const, new(big.Int).Mul(other.Const, scale))
}

// String renders the expression deterministically.
func (e LinExpr) String() string {
	vars := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s*%s + ", e.Coeffs[v], v)
	}
	fmt.Fprintf(&b, "%s", e.Const)
	return b.String()
}

// AtomKind classifies normalized linear atoms.
type AtomKind int

// Normalized atom kinds: expr ≤ 0 or expr = 0.
const (
	AtomLe AtomKind = iota // Expr ≤ 0
	AtomEq                 // Expr = 0
)

// LinAtom is a normalized linear constraint.
type LinAtom struct {
	Kind AtomKind
	Expr LinExpr
}

// String renders the atom.
func (a LinAtom) String() string {
	op := "<= 0"
	if a.Kind == AtomEq {
		op = "= 0"
	}
	return a.Expr.String() + " " + op
}

// linearizer converts terms to linear expressions, abstracting
// nonlinear subterms into fresh variables ("$u0", "$u1", ...). Two
// structurally identical nonlinear subterms map to the same variable,
// giving functional consistency for free.
type linearizer struct {
	uvars map[string]string // term string -> abstraction variable
	terms map[string]logic.Term
	used  bool // whether any abstraction happened
}

func newLinearizer() *linearizer {
	return &linearizer{uvars: make(map[string]string), terms: make(map[string]logic.Term)}
}

func (l *linearizer) abstractTerm(t logic.Term) string {
	key := t.String()
	if v, ok := l.uvars[key]; ok {
		return v
	}
	v := fmt.Sprintf("$u%d", len(l.uvars))
	l.uvars[key] = v
	l.terms[key] = t
	l.used = true
	return v
}

// term linearizes t, abstracting nonlinear parts.
func (l *linearizer) term(t logic.Term) LinExpr {
	e := newLinExpr()
	l.addTerm(e, t, big.NewInt(1))
	return e
}

func (l *linearizer) addTerm(e LinExpr, t logic.Term, scale *big.Int) {
	switch t := t.(type) {
	case logic.Const:
		e.Const.Add(e.Const, new(big.Int).Mul(big.NewInt(t.V), scale))
	case logic.Var:
		e.addVar(t.Name, scale)
	case logic.Neg:
		l.addTerm(e, t.X, new(big.Int).Neg(scale))
	case logic.Bin:
		switch t.Op {
		case logic.OpAdd:
			l.addTerm(e, t.X, scale)
			l.addTerm(e, t.Y, scale)
		case logic.OpSub:
			l.addTerm(e, t.X, scale)
			l.addTerm(e, t.Y, new(big.Int).Neg(scale))
		case logic.OpMul:
			// Multiplication by a constant side stays linear.
			if c, ok := constTerm(t.X); ok {
				l.addTerm(e, t.Y, new(big.Int).Mul(scale, c))
				return
			}
			if c, ok := constTerm(t.Y); ok {
				l.addTerm(e, t.X, new(big.Int).Mul(scale, c))
				return
			}
			e.addVar(l.abstractTerm(t), scale)
		default: // Div, Mod: abstract
			e.addVar(l.abstractTerm(t), scale)
		}
	default:
		e.addVar(l.abstractTerm(t), scale)
	}
}

// constTerm evaluates a closed term to a constant if possible.
func constTerm(t logic.Term) (*big.Int, bool) {
	switch t := t.(type) {
	case logic.Const:
		return big.NewInt(t.V), true
	case logic.Neg:
		if c, ok := constTerm(t.X); ok {
			return new(big.Int).Neg(c), true
		}
	case logic.Bin:
		x, okx := constTerm(t.X)
		if !okx {
			return nil, false
		}
		y, oky := constTerm(t.Y)
		if !oky {
			return nil, false
		}
		switch t.Op {
		case logic.OpAdd:
			return new(big.Int).Add(x, y), true
		case logic.OpSub:
			return new(big.Int).Sub(x, y), true
		case logic.OpMul:
			return new(big.Int).Mul(x, y), true
		case logic.OpDiv:
			if y.Sign() == 0 {
				return nil, false
			}
			return new(big.Int).Quo(x, y), true
		case logic.OpMod:
			if y.Sign() == 0 {
				return nil, false
			}
			return new(big.Int).Rem(x, y), true
		}
	}
	return nil, false
}

// cmpResult is the linearization of a comparison: either one or two
// atoms (conjunction), or a disjunctive split (for ≠).
type cmpResult struct {
	atoms []LinAtom // conjunction
	split []LinAtom // if non-empty: disjunction of these single atoms
}

// cmp linearizes a comparison x ⋈ y. Over the integers:
//
//	x <  y  ⇒  x - y + 1 ≤ 0
//	x <= y  ⇒  x - y     ≤ 0
//	x =  y  ⇒  x - y     = 0
//	x != y  ⇒  (x - y + 1 ≤ 0) ∨ (y - x + 1 ≤ 0)
func (l *linearizer) cmp(c logic.Cmp) cmpResult {
	diff := func(a, b logic.Term, plus int64) LinExpr {
		e := newLinExpr()
		l.addTerm(e, a, big.NewInt(1))
		l.addTerm(e, b, big.NewInt(-1))
		e.Const.Add(e.Const, big.NewInt(plus))
		return e
	}
	switch c.Op {
	case logic.CmpLt:
		return cmpResult{atoms: []LinAtom{{Kind: AtomLe, Expr: diff(c.X, c.Y, 1)}}}
	case logic.CmpLe:
		return cmpResult{atoms: []LinAtom{{Kind: AtomLe, Expr: diff(c.X, c.Y, 0)}}}
	case logic.CmpGt:
		return cmpResult{atoms: []LinAtom{{Kind: AtomLe, Expr: diff(c.Y, c.X, 1)}}}
	case logic.CmpGe:
		return cmpResult{atoms: []LinAtom{{Kind: AtomLe, Expr: diff(c.Y, c.X, 0)}}}
	case logic.CmpEq:
		return cmpResult{atoms: []LinAtom{{Kind: AtomEq, Expr: diff(c.X, c.Y, 0)}}}
	case logic.CmpNe:
		return cmpResult{split: []LinAtom{
			{Kind: AtomLe, Expr: diff(c.X, c.Y, 1)},
			{Kind: AtomLe, Expr: diff(c.Y, c.X, 1)},
		}}
	}
	panic("smt: unknown comparison")
}
