package smt

import (
	"fmt"
	"sync"
	"testing"

	"pathslice/internal/logic"
)

func satFormula(v string) logic.Formula {
	return logic.Cmp{Op: logic.CmpGt, X: logic.Var{Name: v}, Y: logic.Const{V: 10}}
}

func unsatFormula(v string) logic.Formula {
	return logic.MkAnd(
		logic.Cmp{Op: logic.CmpGt, X: logic.Var{Name: v}, Y: logic.Const{V: 10}},
		logic.Cmp{Op: logic.CmpLt, X: logic.Var{Name: v}, Y: logic.Const{V: 5}},
	)
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(0) // default capacity
	f := unsatFormula("x")
	if r := c.Solve(f); r.Status != StatusUnsat {
		t.Fatalf("status: %v", r.Status)
	}
	if r := c.Solve(f); r.Status != StatusUnsat {
		t.Fatalf("status on hit: %v", r.Status)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats: %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheHitsAcrossFreshRenaming(t *testing.T) {
	// The canonical key makes queries minted under different fresh
	// counters share an entry: the second solve must be a hit.
	c := NewCache(0)
	if r := c.Solve(unsatFormula("$f17")); r.Status != StatusUnsat {
		t.Fatalf("status: %v", r.Status)
	}
	if r := c.Solve(unsatFormula("$f9000")); r.Status != StatusUnsat {
		t.Fatalf("status: %v", r.Status)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("renamed query should hit: %+v", st)
	}
	// A program variable is not renamed: different var, different entry.
	c.Solve(unsatFormula("x"))
	c.Solve(unsatFormula("y"))
	if st := c.Stats(); st.Misses != 3 {
		t.Errorf("program-variable queries must miss separately: %+v", st)
	}
}

func TestCacheHitOmitsModel(t *testing.T) {
	c := NewCache(0)
	first := c.Solve(satFormula("$in1"))
	if first.Status != StatusSat || first.Model == nil {
		t.Fatalf("first solve: %+v", first)
	}
	second := c.Solve(satFormula("$in2"))
	if second.Status != StatusSat {
		t.Fatalf("hit status: %v", second.Status)
	}
	if second.Model != nil {
		t.Error("cache hits answer status only; a model would name stale fresh variables")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	const capacity = 32
	c := NewCache(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Solve(logic.Cmp{Op: logic.CmpGt, X: logic.Var{Name: fmt.Sprintf("v%d", i)}, Y: logic.Const{V: int64(i)}})
	}
	st := c.Stats()
	if st.Entries > capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, capacity)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions after overflowing the capacity")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := unsatFormula(fmt.Sprintf("v%d", i%10))
				if r := c.Solve(f); r.Status != StatusUnsat {
					t.Errorf("goroutine %d: status %v", g, r.Status)
				}
				if r := c.Solve(satFormula(fmt.Sprintf("$f%d", g*100+i))); r.Status != StatusSat {
					t.Errorf("goroutine %d: sat status %v", g, r.Status)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

func TestCachedSolveNilCache(t *testing.T) {
	r := CachedSolve(nil, unsatFormula("x"))
	if r.Status != StatusUnsat {
		t.Errorf("nil cache must fall through to Solve: %v", r.Status)
	}
}
