package smt

import (
	"testing"

	"pathslice/internal/logic"
)

func TestUnsatCoreBasic(t *testing.T) {
	s := NewSolver()
	x, y := v("x"), v("y")
	s.Assert(ge(x, c(0)))      // irrelevant
	s.Assert(eq(y, c(5)))      // core
	s.Assert(le(x, c(100)))    // irrelevant
	s.Assert(ne(y, c(5)))      // core
	s.Assert(gt(x, sub(y, y))) // irrelevant
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatalf("status: %s", r.Status)
	}
	core, idx := s.UnsatCore()
	if len(core) != 2 {
		t.Fatalf("core size %d (want 2): %v", len(core), core)
	}
	if idx[0] != 1 || idx[1] != 3 {
		t.Errorf("core indices: %v", idx)
	}
	// The core itself must be unsat.
	if r := Solve(logic.MkAnd(core...)); r.Status != StatusUnsat {
		t.Error("core is not unsat")
	}
}

func TestUnsatCoreOnSatIsNil(t *testing.T) {
	s := NewSolver()
	s.Assert(ge(v("x"), c(0)))
	if r := s.Check(); r.Status != StatusSat {
		t.Fatal("should be sat")
	}
	if core, idx := s.UnsatCore(); core != nil || idx != nil {
		t.Error("core on sat must be nil")
	}
}

func TestUnsatCoreChain(t *testing.T) {
	// A chain x0=0, x1=x0+1, ..., and a contradiction with only the
	// final element: the core must include the whole defining chain but
	// drop unrelated assertions.
	s := NewSolver()
	s.Assert(eq(v("a"), c(42))) // unrelated
	s.Assert(eq(v("x0"), c(0)))
	s.Assert(eq(v("x1"), add(v("x0"), c(1))))
	s.Assert(eq(v("x2"), add(v("x1"), c(1))))
	s.Assert(eq(v("x2"), c(5)))
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatal("should be unsat")
	}
	core, idx := s.UnsatCore()
	if len(core) != 4 {
		t.Fatalf("core: %v", core)
	}
	for _, i := range idx {
		if i == 0 {
			t.Error("unrelated assertion in core")
		}
	}
}

func TestUnsatCoreSingleton(t *testing.T) {
	s := NewSolver()
	s.Assert(ge(v("x"), c(0)))
	s.Assert(logic.False)
	if r := s.Check(); r.Status != StatusUnsat {
		t.Fatal("should be unsat")
	}
	core, _ := s.UnsatCore()
	if len(core) != 1 || !logic.Equal(core[0], logic.False) {
		t.Errorf("core: %v", core)
	}
}
