package smt

import (
	"fmt"
	"testing"

	"pathslice/internal/logic"
)

// chainLink returns the assertion x_i = x_{i-1} + 1 (x_0 = 1), the
// shape a backward trace encoding produces for a chain of assignments.
func chainLink(i int) logic.Formula {
	if i == 0 {
		return logic.Cmp{Op: logic.CmpEq, X: logic.Var{Name: "x0"}, Y: logic.Const{V: 1}}
	}
	return logic.Cmp{Op: logic.CmpEq,
		X: logic.Var{Name: fmt.Sprintf("x%d", i)},
		Y: logic.Bin{Op: logic.OpAdd, X: logic.Var{Name: fmt.Sprintf("x%d", i-1)}, Y: logic.Const{V: 1}}}
}

// BenchmarkSolverIncremental measures the early-stop access pattern of
// the slicer (§4.2): assert one operation, check, repeat — n checks
// over a growing conjunction. The incremental engine pays O(delta) per
// check; the from-scratch comparator re-solves the whole prefix every
// time, which is quadratic in total.
func BenchmarkSolverIncremental(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewSolver()
				for j := 0; j < n; j++ {
					s.Assert(chainLink(j))
					if r := s.Check(); r.Status != StatusSat {
						b.Fatalf("link %d: %v", j, r.Status)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var fs []logic.Formula
				for j := 0; j < n; j++ {
					fs = append(fs, chainLink(j))
					if r := Solve(logic.MkAnd(fs...)); r.Status != StatusSat {
						b.Fatalf("link %d: %v", j, r.Status)
					}
				}
			}
		})
	}
}

// BenchmarkSolverIncrementalUnsatTail is the payoff case: a long
// satisfiable prefix with a contradiction at the end. The sticky-unsat
// flag then answers every later check for free.
func BenchmarkSolverIncrementalUnsatTail(b *testing.B) {
	const n = 128
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		for j := 0; j < n; j++ {
			s.Assert(chainLink(j))
		}
		s.Assert(logic.Cmp{Op: logic.CmpLe, X: logic.Var{Name: fmt.Sprintf("x%d", n-1)}, Y: logic.Const{V: 0}})
		if r := s.Check(); r.Status != StatusUnsat {
			b.Fatalf("tail: %v", r.Status)
		}
		for j := 0; j < 64; j++ {
			s.Assert(chainLink(n + j))
			if r := s.Check(); r.Status != StatusUnsat {
				b.Fatalf("sticky check %d: %v", j, r.Status)
			}
		}
	}
}
