package smt

import (
	"errors"
	"testing"

	"pathslice/internal/logic"
)

// fuzzFormula decodes arbitrary bytes into a well-formed logic.Formula
// — a structured-fuzzing front end for the linearizer, which only ever
// sees formulas, not bytes. The grammar deliberately produces the
// shapes linearize.go special-cases: nonlinear products and divisions
// (abstracted to fresh variables), negations, constants on either
// side, and boolean structure for the case-splitter.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

var fuzzVars = []string{"x", "y", "z", "w"}

func (d *fuzzDecoder) term(depth int) logic.Term {
	b := d.next()
	if depth <= 0 {
		if b%2 == 0 {
			return logic.Const{V: int64(int8(d.next()))}
		}
		return logic.Var{Name: fuzzVars[int(d.next())%len(fuzzVars)]}
	}
	switch b % 8 {
	case 0:
		return logic.Const{V: int64(int8(d.next()))}
	case 1:
		return logic.Var{Name: fuzzVars[int(d.next())%len(fuzzVars)]}
	case 2:
		return logic.Bin{Op: logic.OpAdd, X: d.term(depth - 1), Y: d.term(depth - 1)}
	case 3:
		return logic.Bin{Op: logic.OpSub, X: d.term(depth - 1), Y: d.term(depth - 1)}
	case 4:
		return logic.Bin{Op: logic.OpMul, X: d.term(depth - 1), Y: d.term(depth - 1)}
	case 5:
		return logic.Bin{Op: logic.OpDiv, X: d.term(depth - 1), Y: d.term(depth - 1)}
	case 6:
		return logic.Bin{Op: logic.OpMod, X: d.term(depth - 1), Y: d.term(depth - 1)}
	default:
		return logic.Neg{X: d.term(depth - 1)}
	}
}

func (d *fuzzDecoder) formula(depth int) logic.Formula {
	b := d.next()
	if depth <= 0 || b%5 == 0 {
		return logic.Cmp{Op: logic.CmpOp(d.next() % 6), X: d.term(2), Y: d.term(2)}
	}
	switch b % 5 {
	case 1:
		return logic.MkNot(d.formula(depth - 1))
	case 2:
		return logic.MkAnd(d.formula(depth-1), d.formula(depth-1))
	case 3:
		return logic.MkOr(d.formula(depth-1), d.formula(depth-1))
	default:
		return logic.Bool{V: b%2 == 0}
	}
}

// FuzzLinearize drives the linearizer (and the solver stack behind it)
// with decoded formulas. The contract under fuzzing
// (docs/ROBUSTNESS.md): no panic for any formula, the status is one of
// the three defined values, and a Sat answer comes with a model that
// actually satisfies the original (pre-abstraction) formula.
func FuzzLinearize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("\x02\x04\x01\x00\x03\x05\x01\x01\x07"))
	f.Add([]byte{2, 2, 4, 1, 0, 1, 1, 0, 3, 0, 5, 1, 2})
	f.Add([]byte{1, 0, 1, 5, 1, 0, 6, 1, 1, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &fuzzDecoder{data: data}
		formula := d.formula(3)
		lim := Limits{MaxLeaves: 200, MaxBBDepth: 12, MaxModels: 8}
		r := SolveWithLimits(formula, lim)
		// Cross-check the incremental solver: asserting the same formula
		// into a fresh Solver must agree on every decided verdict, and
		// must never answer Unknown where from-scratch solving decides
		// (the fallback guarantees it is at least as strong).
		inc := NewSolverWithLimits(lim)
		inc.Assert(formula)
		ri := inc.Check()
		if r.Status != StatusUnknown {
			if ri.Status == StatusUnknown {
				t.Fatalf("incremental Unknown where scratch decided %v for %s", r.Status, formula)
			}
			if ri.Status != r.Status {
				t.Fatalf("incremental %v vs scratch %v for %s", ri.Status, r.Status, formula)
			}
		}
		switch r.Status {
		case StatusSat:
			// The model may be partial: variables not constrained by
			// the satisfied case-split leaf are free, so any
			// completion works. (When abstraction was used, model
			// validation already bound every variable.)
			model := make(map[string]int64, len(r.Model))
			for k, v := range r.Model {
				model[k] = v
			}
			for _, name := range logic.Vars(formula) {
				if _, ok := model[name]; !ok {
					model[name] = 0
				}
			}
			ok, err := logic.Eval(formula, model)
			if err != nil {
				// Eval is strict: a division by zero anywhere — even
				// in a disjunct the model does not rely on — aborts
				// evaluation, while the solver models division as an
				// abstracted total function. Only that mismatch is
				// tolerated.
				var dz logic.ErrDivByZero
				if errors.As(err, &dz) {
					return
				}
				t.Fatalf("Sat model does not evaluate on %s: %v (model %v)", formula, err, model)
			}
			if !ok {
				t.Fatalf("Sat model falsifies %s (model %v)", formula, model)
			}
		case StatusUnsat, StatusUnknown:
			// Unsat is trusted (abstractions over-approximate); Unknown
			// is always a legal answer under limits.
		default:
			t.Fatalf("undefined status %v for %s", r.Status, formula)
		}
	})
}
