package smt

import (
	"context"
	"time"

	"pathslice/internal/logic"
	"pathslice/internal/obs"
)

// Portfolio solving: no single strategy wins on every query shape the
// pipeline produces. The warm incremental engine dominates long
// conjunctive prefixes, the from-scratch case-splitting solver wins on
// disjunctive structure (where the incremental engine would pay for a
// conjunctive attempt and then fall back anyway), and a bare interval
// propagation pass refutes many trace contradictions before either
// engine has built a tableau. The Portfolio front-end races all three
// per query — staggered, with the incremental engine launching first
// and the prefilter and scratch engine joining only when it does not
// settle promptly — and returns the first *sound* answer:
//
//   - Unknown never beats a definite verdict: a strategy that gives up
//     (limits, cancellation, injected fault) just drops out of the
//     race; the portfolio answers Unknown only when every strategy
//     does.
//   - Losers are cancelled through the shared context (the PR 3
//     plumbing): the first definitive answer cancels the race context,
//     the losing strategy unwinds at its next cancellation point, and
//     SolvePortfolioCtx does not return until both racers have — no
//     goroutine outlives the call.
//   - Soundness needs no arbitration: every strategy is individually
//     sound (Unsat exact, Sat model-validated), so whichever answers
//     first answers correctly; the differential harness in
//     portfolio_test.go re-proves agreement with the stateless solver.
//
// Cache semantics are preserved by construction: Cache.SolvePortfolioCtx
// routes portfolio results through the same canonical logic.Key lookup
// and only stores definitive verdicts, so a portfolio-populated cache
// is indistinguishable from a SolveCtx-populated one.

// Strategy names, as reported by SolvePortfolioDetail and counted by
// the smt_portfolio_wins_*_total metrics.
const (
	StrategyIncremental = "incremental"
	StrategyScratch     = "scratch"
	StrategyICP         = "icp"
)

// Portfolio is the racing front-end over the solver strategies. The
// zero value is ready to use; Cache, when set, is consulted before
// racing and definitive verdicts are stored back under the same
// canonical keys the rest of the pipeline uses.
type Portfolio struct {
	Cache *Cache
	Lim   Limits
}

// SolveCtx decides f through the portfolio (and the cache, when one is
// configured).
func (p *Portfolio) SolveCtx(ctx context.Context, f logic.Formula) Result {
	if p.Cache != nil {
		return p.Cache.SolvePortfolioCtx(ctx, f, p.Lim)
	}
	return SolvePortfolioCtx(ctx, f, p.Lim)
}

// SolveBatchCtx decides the batch through the grouping/prefix-sharing
// batch solver (batch.go), sharing the portfolio's cache and limits.
func (p *Portfolio) SolveBatchCtx(ctx context.Context, fs []logic.Formula, workers int) []Result {
	return SolveBatchCtx(ctx, fs, BatchOptions{Workers: workers, Cache: p.Cache, Lim: p.Lim})
}

// SolvePortfolioCtx decides satisfiability of f by racing the solver
// strategies under ctx. The verdict contract matches SolveCtx exactly:
// Unsat is exact, Sat carries a validated model, Unknown only on
// limits, cancellation, or injected faults — and only when every
// strategy degraded.
func SolvePortfolioCtx(ctx context.Context, f logic.Formula, lim Limits) Result {
	r, _ := SolvePortfolioDetail(ctx, f, lim)
	return r
}

// SolvePortfolioDetail is SolvePortfolioCtx, also reporting which
// strategy produced the verdict ("" when every strategy answered
// Unknown). The benchmark suite uses it to build the win-rate table in
// docs/PERFORMANCE.md.
func SolvePortfolioDetail(ctx context.Context, f logic.Formula, lim Limits) (Result, string) {
	if ctx == nil {
		ctx = context.Background()
	}
	lim = lim.withDefaults()
	if lim.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Deadline)
		defer cancel()
	}
	// The race context carries the deadline; the strategies must not
	// start their own timers on top of it.
	slim := lim
	slim.Deadline = 0

	// The PR 3 degradation contract first: a cancelled or expired
	// context answers Unknown before any strategy runs. The ICP
	// prefilter could still soundly refute f here, but "an expired
	// clock proves nothing" is the invariant every layer above relies
	// on (docs/ROBUSTNESS.md), and the portfolio must not weaken it.
	if ctx.Err() != nil {
		mDeadlineExceeded.Inc()
		return Result{Status: StatusUnknown}, ""
	}

	// The race is staggered, not simultaneous. The incremental engine
	// is the favored racer on the query shapes the pipeline produces,
	// and on a single core a simultaneous launch makes every easy query
	// pay for every strategy — the prefilter's linearization alone
	// costs about as much as a full incremental solve on a long trace
	// conjunction. So the incremental engine launches alone; only when
	// it has neither answered nor given up within the stagger window do
	// the interval prefilter (synchronously — it is fast and cannot
	// stall) and then the scratch engine join the race. Hard, stalled,
	// and given-up queries still get all three strategies; easy ones
	// cost exactly one engine. The channel is buffered so a loser can
	// always deliver its answer and exit even after the winner has been
	// chosen.
	type answer struct {
		r   Result
		who string
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan answer, 2)
	spawned := 1
	go func() {
		s := NewSolverWithLimits(slim)
		s.Assert(f)
		ch <- answer{s.CheckCtx(raceCtx), StrategyIncremental}
	}()
	scratch := func() {
		ch <- answer{SolveCtx(raceCtx, f, slim), StrategyScratch}
	}
	stagger := time.NewTimer(portfolioStagger)
	defer stagger.Stop()

	var win answer
	icpTried := false
	// escalate runs once, when the favored engine proves slow or gives
	// up: first the interval prefilter (a refutation is an exact Unsat
	// and wins on the spot), then the scratch engine joins the race.
	escalate := func() {
		if !icpTried {
			icpTried = true
			if icpRefutes(f) && win.who == "" {
				sp := obs.StartSpan(obs.PhaseSMT)
				mSolves.Inc()
				mUnsat.Inc()
				sp.End()
				win = answer{Result{Status: StatusUnsat}, StrategyICP}
				cancel()
				mPortfolioWins.Inc()
				mPortfolioWinsICP.Inc()
			}
		}
		if win.who == "" && spawned < 2 {
			spawned = 2
			go scratch()
		}
	}
	for received := 0; received < spawned; {
		select {
		case a := <-ch:
			received++
			switch {
			case a.r.Status != StatusUnknown && win.who == "":
				win = a
				// First definitive answer: cancel any loser and keep
				// draining so no goroutine outlives this call.
				cancel()
				mPortfolioWins.Inc()
				portfolioWinCounter(a.who).Inc()
			case win.who != "":
				// The race was already decided; this strategy lost.
				mPortfolioCancelled.Inc()
				portfolioCancelledCounter(a.who).Inc()
			default:
				escalate()
			}
		case <-stagger.C:
			escalate()
		}
	}
	if win.who != "" {
		return win.r, win.who
	}
	return Result{Status: StatusUnknown}, ""
}

// portfolioStagger is the escalation delay: long enough that queries
// the incremental engine settles immediately (the vast majority) never
// pay for a second strategy, short enough to be noise against any
// query hard enough to need the race.
const portfolioStagger = 2 * time.Millisecond

func portfolioWinCounter(who string) *obs.Counter {
	switch who {
	case StrategyIncremental:
		return mPortfolioWinsIncremental
	case StrategyICP:
		return mPortfolioWinsICP
	default:
		return mPortfolioWinsScratch
	}
}

func portfolioCancelledCounter(who string) *obs.Counter {
	if who == StrategyIncremental {
		return mPortfolioCancelledIncremental
	}
	return mPortfolioCancelledScratch
}

// icpRefutes runs the interval-only prefilter: it linearizes the
// query's top-level conjuncts (skipping disjunctive structure and
// deferred disequalities, which only make the conjunction harder to
// satisfy) and propagates integer bounds. A true result is an exact
// Unsat; false decides nothing.
func icpRefutes(f logic.Formula) bool {
	atoms, contradiction := conjunctiveAtoms(f)
	if contradiction {
		return true
	}
	if len(atoms) == 0 {
		return false
	}
	return icpCheck(atoms, 0) == StatusUnsat
}

// conjunctiveAtoms collects the linear atoms of f's top-level
// conjunction (after simplification and NNF), abstracting nonlinear
// subterms exactly like the real engines do. A literal false conjunct
// is reported separately — icpCheck propagates per variable, so a
// variable-free contradiction would slip through it.
func conjunctiveAtoms(f logic.Formula) ([]LinAtom, bool) {
	lin := newLinearizer()
	var atoms []LinAtom
	contradiction := false
	var walk func(g logic.Formula)
	walk = func(g logic.Formula) {
		switch g := g.(type) {
		case logic.Bool:
			if !g.V {
				contradiction = true
			}
		case logic.And:
			for _, h := range g.Fs {
				walk(h)
			}
		case logic.Cmp:
			r := lin.cmp(g)
			if len(r.split) != 2 {
				atoms = append(atoms, r.atoms...)
			}
		}
	}
	walk(logic.NNF(logic.Simplify(f)))
	return atoms, contradiction
}
