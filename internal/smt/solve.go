package smt

import (
	"context"
	"math/big"
	"time"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
)

// Result is a solver verdict with a model when satisfiable.
type Result struct {
	Status Status
	// Model assigns integer values to the variables of the formula
	// when Status is StatusSat. Variables that do not constrain the
	// verdict may be absent; treat absent as 0.
	Model map[string]int64
}

// Limits bounds the search effort. Every exhausted limit makes the
// solver answer StatusUnknown — never a wrong Sat or Unsat — so
// callers can treat tight limits as a sound degradation knob (see
// docs/ROBUSTNESS.md).
type Limits struct {
	// MaxLeaves bounds the number of theory leaf checks (branch
	// combinations explored). Default 50000.
	MaxLeaves int
	// MaxBBDepth bounds branch-and-bound depth for integrality.
	// Default 40.
	MaxBBDepth int
	// MaxModels bounds how many abstract models are validated against
	// the original formula before giving up with Unknown. Default 8.
	MaxModels int
	// Deadline, when positive, bounds the wall-clock time of a single
	// solve: the search is cancelled at the deadline and the verdict
	// is StatusUnknown. It composes with a caller context (whichever
	// expires first wins). Zero means no wall-clock bound.
	Deadline time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxLeaves <= 0 {
		l.MaxLeaves = 50000
	}
	if l.MaxBBDepth <= 0 {
		l.MaxBBDepth = 40
	}
	if l.MaxModels <= 0 {
		l.MaxModels = 8
	}
	return l
}

// Solve decides satisfiability of f over the integers.
func Solve(f logic.Formula) Result { return SolveWithLimits(f, Limits{}) }

// SolveWithLimits decides satisfiability of f under explicit limits.
func SolveWithLimits(f logic.Formula, lim Limits) Result {
	return SolveCtx(context.Background(), f, lim)
}

// SolveCtx decides satisfiability of f under ctx and explicit limits.
// Cancellation or an expired deadline (from ctx or lim.Deadline,
// whichever comes first) yields StatusUnknown — the solver never
// hangs past the deadline by more than one theory-leaf check, and
// never converts a timeout into a wrong Sat/Unsat.
func SolveCtx(ctx context.Context, f logic.Formula, lim Limits) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	lim = lim.withDefaults()
	if lim.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Deadline)
		defer cancel()
	}
	sp := obs.StartSpan(obs.PhaseSMT)
	defer sp.End()
	start := time.Now()
	// Fault injection (docs/ROBUSTNESS.md): a stall simulates a hung
	// decision procedure (bounded by ctx); a forced Unknown simulates
	// resource exhaustion. Both are sound weakenings.
	if in := faults.Active(); in != nil {
		if in.Should(faults.SolverStall) {
			if d := in.StallDuration(); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
			}
		}
		if in.Should(faults.SolverUnknown) {
			mSolves.Inc()
			mUnknown.Inc()
			return Result{Status: StatusUnknown}
		}
	}
	var st Status
	s := &searcher{lin: newLinearizer(), lim: lim, orig: f, ctx: ctx}
	if ctx.Err() != nil {
		st = StatusUnknown
	} else {
		nnf := logic.NNF(logic.Simplify(f))
		st = s.search(nil, nil, []logic.Formula{nnf})
	}
	mSolves.Inc()
	mLeafChecks.Add(int64(s.leaves))
	mModelValid.Add(int64(s.tried))
	mSolveNS.ObserveDuration(time.Since(start))
	switch st {
	case StatusSat:
		mSat.Inc()
	case StatusUnsat:
		mUnsat.Inc()
	default:
		mUnknown.Inc()
		if ctx.Err() != nil {
			mDeadlineExceeded.Inc()
		}
	}
	switch {
	case st == StatusSat:
		return Result{Status: StatusSat, Model: s.model}
	case st == StatusUnsat:
		return Result{Status: StatusUnsat}
	default:
		return Result{Status: StatusUnknown}
	}
}

type searcher struct {
	lin    *linearizer
	lim    Limits
	orig   logic.Formula
	ctx    context.Context
	leaves int
	tried  int
	model  map[string]int64
	// sawUnknown records that some branch was cut off, so an overall
	// failure to find a model must be Unknown rather than Unsat.
	sawUnknown bool
}

// cancelled polls the context; a cancelled search degrades to Unknown
// (sawUnknown forces the overall verdict away from Unsat).
func (s *searcher) cancelled() bool {
	if s.ctx == nil || s.ctx.Err() == nil {
		return false
	}
	s.sawUnknown = true
	return true
}

// neAtom is a deferred disequality: lt and gt are the two strict
// alternatives of an x ≠ y atom. Disequalities are not branched on
// eagerly — that costs 2^n leaf checks for n of them. Instead the leaf
// solves without them and only splits on a disequality the candidate
// model actually violates (the standard lazy treatment).
type neAtom struct {
	lt, gt LinAtom
}

// search explores the boolean structure: atoms is the conjunction
// accumulated so far, nes the deferred disequalities, pending the
// formulas still to satisfy. It returns StatusSat as soon as a
// validated model is found.
func (s *searcher) search(atoms []LinAtom, nes []neAtom, pending []logic.Formula) Status {
	for len(pending) > 0 {
		f := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		switch f := f.(type) {
		case logic.Bool:
			if !f.V {
				return StatusUnsat
			}
		case logic.And:
			pending = append(pending, f.Fs...)
		case logic.Cmp:
			r := s.lin.cmp(f)
			if len(r.split) == 2 {
				nes = append(nes, neAtom{lt: r.split[0], gt: r.split[1]})
			} else {
				atoms = append(atoms, r.atoms...)
			}
		case logic.Or:
			return s.branchFormulas(atoms, nes, pending, f.Fs)
		case logic.Not:
			// NNF leaves Not only around atoms in pathological cases;
			// handle by folding.
			inner := logic.NNF(logic.MkNot(logic.MkNot(f)))
			if logic.Equal(inner, f) {
				// Cannot reduce further; treat as unknown branch.
				s.sawUnknown = true
				return StatusUnknown
			}
			pending = append(pending, inner)
		default:
			s.sawUnknown = true
			return StatusUnknown
		}
	}
	return s.leaf(atoms, nes)
}

func (s *searcher) branchFormulas(atoms []LinAtom, nes []neAtom, pending []logic.Formula, alts []logic.Formula) Status {
	mCaseSplits.Inc()
	sawUnknown := false
	for _, alt := range alts {
		branchPending := make([]logic.Formula, len(pending)+1)
		copy(branchPending, pending)
		branchPending[len(pending)] = alt
		branchAtoms := make([]LinAtom, len(atoms))
		copy(branchAtoms, atoms)
		branchNes := make([]neAtom, len(nes))
		copy(branchNes, nes)
		switch s.search(branchAtoms, branchNes, branchPending) {
		case StatusSat:
			return StatusSat
		case StatusUnknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return StatusUnknown
	}
	return StatusUnsat
}

// leaf decides the accumulated conjunction with the theory solver,
// lazily splitting on violated disequalities, and validates the model
// against the original formula when abstraction was involved.
func (s *searcher) leaf(atoms []LinAtom, nes []neAtom) Status {
	s.leaves++
	if s.cancelled() {
		return StatusUnknown
	}
	if s.leaves > s.lim.MaxLeaves {
		s.sawUnknown = true
		return StatusUnknown
	}
	st, bigModel := checkConjCtx(s.ctx, atoms, s.lim.MaxBBDepth)
	if st == StatusSat {
		// Find a violated disequality (its lt-side expression evaluates
		// to > 0 under the model means lt is FALSE... evaluate both).
		for i, ne := range nes {
			if linAtomHolds(ne.lt, bigModel) || linAtomHolds(ne.gt, bigModel) {
				continue
			}
			// Violated: the model makes both sides equal. Branch.
			rest := append(append([]neAtom{}, nes[:i]...), nes[i+1:]...)
			sawUnknown := false
			for _, side := range []LinAtom{ne.lt, ne.gt} {
				branch := make([]LinAtom, len(atoms), len(atoms)+1)
				branch = append(branch, side)
				copy(branch, atoms)
				switch s.leaf(branch, rest) {
				case StatusSat:
					return StatusSat
				case StatusUnknown:
					sawUnknown = true
				}
			}
			if sawUnknown {
				return StatusUnknown
			}
			return StatusUnsat
		}
	}
	if st != StatusSat {
		if st == StatusUnknown {
			s.sawUnknown = true
		}
		return st
	}
	model := make(map[string]int64, len(bigModel))
	for name, v := range bigModel {
		if !v.IsInt64() {
			// Out-of-range model value: clamp? No — reject as unknown.
			s.sawUnknown = true
			return StatusUnknown
		}
		model[name] = v.Int64()
	}
	if !s.lin.used {
		s.model = projectModel(model)
		return StatusSat
	}
	// Abstraction was used: validate against the original formula.
	s.tried++
	if s.validate(model) {
		s.model = projectModel(model)
		return StatusSat
	}
	if s.tried >= s.lim.MaxModels {
		s.sawUnknown = true
		return StatusUnknown
	}
	s.sawUnknown = true
	return StatusUnknown
}

// projectModel drops internal nonlinear-abstraction variables ("$u...")
// from the model; other $-variables (e.g. "$in..." nondet inputs) are
// part of the caller's vocabulary and kept.
func projectModel(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		if len(k) >= 2 && k[0] == '$' && k[1] == 'u' {
			continue
		}
		out[k] = v
	}
	return out
}

// validate checks the abstract model against the original formula,
// supplying 0 for variables the model does not mention.
func (s *searcher) validate(model map[string]int64) bool {
	env := make(map[string]int64)
	for _, v := range logic.Vars(s.orig) {
		env[v] = model[v]
	}
	ok, err := logic.Eval(s.orig, env)
	return err == nil && ok
}

// linAtomHolds evaluates a normalized atom under an integer model
// (missing variables default to 0).
func linAtomHolds(a LinAtom, model map[string]*big.Int) bool {
	var sum, tmp big.Int
	return linAtomHoldsScratch(a, model, &sum, &tmp)
}

// linAtomHoldsScratch is linAtomHolds with caller-provided scratch
// values — the incremental solver's disequality scan calls it for
// every deferred disequality on every check, so per-call allocations
// would dominate that loop.
func linAtomHoldsScratch(a LinAtom, model map[string]*big.Int, sum, tmp *big.Int) bool {
	sum.Set(a.Expr.Const)
	for v, c := range a.Expr.Coeffs {
		if mv, ok := model[v]; ok {
			tmp.Mul(c, mv)
			sum.Add(sum, tmp)
		}
	}
	if a.Kind == AtomEq {
		return sum.Sign() == 0
	}
	return sum.Sign() <= 0
}

// ratToInt64 is a helper kept for tests.
func ratToInt64(r *big.Rat) (int64, bool) {
	if !r.IsInt() {
		return 0, false
	}
	n := r.Num()
	if !n.IsInt64() {
		return 0, false
	}
	return n.Int64(), true
}
