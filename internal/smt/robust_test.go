package smt

import (
	"context"
	"sync"
	"testing"
	"time"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
)

// TestMaxLeavesExhaustionIsUnknown drives the MaxLeaves exit: an unsat
// disjunctive formula whose refutation needs several theory leaves must
// answer Unknown — not Unsat — when the leaf budget is too small for
// all branches, and Unsat once the budget suffices.
func TestMaxLeavesExhaustionIsUnknown(t *testing.T) {
	// (x=0 ∨ x=1) ∧ (x=2 ∨ x=3): unsat, 4 leaves to refute.
	f := logic.MkAnd(
		logic.MkOr(eq(v("x"), c(0)), eq(v("x"), c(1))),
		logic.MkOr(eq(v("x"), c(2)), eq(v("x"), c(3))),
	)
	if st := SolveWithLimits(f, Limits{MaxLeaves: 1}).Status; st != StatusUnknown {
		t.Fatalf("MaxLeaves=1: got %v, want Unknown", st)
	}
	if st := SolveWithLimits(f, Limits{MaxLeaves: 100}).Status; st != StatusUnsat {
		t.Fatalf("MaxLeaves=100: got %v, want Unsat", st)
	}
}

// TestMaxBBDepthExhaustionIsUnknown drives the branch-and-bound depth
// exit: 2x+4y ≥ 3 ∧ 2x+4y ≤ 3 is rationally feasible on an infinite
// line but has no integer point, and bounding one variable always
// leaves the other fractional — so every finite depth must give up
// with Unknown rather than claim Sat or Unsat.
func TestMaxBBDepthExhaustionIsUnknown(t *testing.T) {
	line := logic.Bin{Op: logic.OpAdd,
		X: logic.Bin{Op: logic.OpMul, X: c(2), Y: v("x")},
		Y: logic.Bin{Op: logic.OpMul, X: c(4), Y: v("y")}}
	f := logic.MkAnd(ge(line, c(3)), le(line, c(3)))
	for _, depth := range []int{1, 2, 5} {
		if st := SolveWithLimits(f, Limits{MaxBBDepth: depth}).Status; st != StatusUnknown {
			t.Fatalf("MaxBBDepth=%d: got %v, want Unknown", depth, st)
		}
	}
}

// TestMaxModelsExhaustionIsUnknown drives the model-validation exit:
// x*x = 3 has no integer solution, but the linearizer abstracts the
// product, so candidate models keep failing validation. The solver
// must give up with Unknown — Sat would be wrong, and Unsat unprovable
// through the abstraction.
func TestMaxModelsExhaustionIsUnknown(t *testing.T) {
	f := eq(logic.Bin{Op: logic.OpMul, X: v("x"), Y: v("x")}, c(3))
	for _, mm := range []int{1, 4} {
		if st := SolveWithLimits(f, Limits{MaxModels: mm}).Status; st == StatusSat {
			t.Fatalf("MaxModels=%d: got Sat for unsatisfiable x*x=3", mm)
		}
	}
}

// TestCancelledContextIsUnknown: a context cancelled before the solve
// starts must answer Unknown immediately.
func TestCancelledContextIsUnknown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := SolveCtx(ctx, eq(v("x"), c(1)), Limits{}).Status; st != StatusUnknown {
		t.Fatalf("cancelled ctx: got %v, want Unknown", st)
	}
}

// TestStalledSolverReturnsWithinDeadline simulates a hung decision
// procedure: every solve stalls for 30s, the deadline is 50ms, and the
// call must return Unknown well within deadline + slack.
func TestStalledSolverReturnsWithinDeadline(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  1,
		Rates: map[faults.Kind]float64{faults.SolverStall: 1},
		Stall: 30 * time.Second,
	}))
	defer faults.Install(prev)

	start := time.Now()
	r := SolveWithLimits(eq(v("x"), c(1)), Limits{Deadline: 50 * time.Millisecond})
	elapsed := time.Since(start)
	if r.Status != StatusUnknown {
		t.Fatalf("stalled solve: got %v, want Unknown", r.Status)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled solve took %v, want deadline (50ms) + slack", elapsed)
	}
}

// TestInjectedUnknownNeverFlipsVerdicts: with solver-unknown faults at
// 50%, every definitive answer that does come back must still be the
// correct one.
func TestInjectedUnknownNeverFlipsVerdicts(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  42,
		Rates: map[faults.Kind]float64{faults.SolverUnknown: 0.5},
	}))
	defer faults.Install(prev)

	sat := eq(v("x"), c(7))
	unsat := logic.MkAnd(eq(v("x"), c(1)), eq(v("x"), c(2)))
	sawInjected := false
	for i := 0; i < 40; i++ {
		if st := Solve(sat).Status; st != StatusSat {
			if st != StatusUnknown {
				t.Fatalf("sat formula answered %v", st)
			}
			sawInjected = true
		}
		if st := Solve(unsat).Status; st != StatusUnsat {
			if st != StatusUnknown {
				t.Fatalf("unsat formula answered %v", st)
			}
			sawInjected = true
		}
	}
	if !sawInjected {
		t.Fatal("0 of 80 solves faulted at a 50% injection rate")
	}
}

// TestCacheConcurrentWithInjectedEvictions hammers one shared cache
// from many goroutines while every second lookup has its entry evicted
// first: all verdicts must stay correct and evictions must actually
// fire. The race detector (make race covers this package) checks the
// locking.
func TestCacheConcurrentWithInjectedEvictions(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  3,
		Rates: map[faults.Kind]float64{faults.CacheEvict: 0.5},
	}))
	defer faults.Install(prev)

	type tc struct {
		f    logic.Formula
		want Status
	}
	var cases []tc
	for i := int64(0); i < 8; i++ {
		cases = append(cases,
			tc{eq(v("x"), c(i)), StatusSat},
			tc{logic.MkAnd(eq(v("x"), c(i)), eq(v("x"), c(i+1))), StatusUnsat},
		)
	}
	cache := NewCache(64)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for _, tc := range cases {
					if st := cache.Solve(tc.f).Status; st != tc.want {
						select {
						case errs <- st.String() + " != " + tc.want.String():
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("verdict changed under injected evictions: %s", e)
	}
	if ev := cache.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions fired at a 50% injection rate")
	}
}

// TestUnknownIsNeverCached: an injected Unknown must not poison the
// cache — the next lookup of the same formula re-solves and gets the
// real verdict.
func TestUnknownIsNeverCached(t *testing.T) {
	f := eq(v("x"), c(5))
	cache := NewCache(16)
	prev := faults.Install(faults.New(faults.Config{
		Seed:  9,
		Rates: map[faults.Kind]float64{faults.SolverUnknown: 1},
	}))
	if st := cache.Solve(f).Status; st != StatusUnknown {
		faults.Install(prev)
		t.Fatalf("forced-unknown solve answered %v", st)
	}
	faults.Install(prev)
	if st := cache.Solve(f).Status; st != StatusSat {
		t.Fatalf("post-fault solve answered %v, want Sat (unknown must not be cached)", st)
	}
}
