package smt

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pathslice/internal/logic"
)

// Differential harness for the incremental solver: random
// Assert/Push/Pop/Check sequences are replayed against both the
// persistent Solver and the from-scratch SolveCtx over the conjunction
// of the currently live assertions. Without injected faults the two
// must agree on every decided verdict, and the incremental side must
// never answer Unknown where the from-scratch side decides (the
// fallback design guarantees incremental is at least as strong).
//
// The formula distribution is biased toward what trace encodings
// produce — conjunctions of linear (in)equalities over a small
// variable pool — with occasional disequalities, disjunctions, and
// nonlinear terms to exercise the lazy-split and fallback paths.

type diffGen struct{ r *rand.Rand }

func (g *diffGen) variable() logic.Term {
	return logic.Var{Name: fmt.Sprintf("v%d", g.r.Intn(6))}
}

func (g *diffGen) linTerm() logic.Term {
	t := logic.Term(logic.Const{V: int64(g.r.Intn(21) - 10)})
	for n := g.r.Intn(3); n > 0; n-- {
		v := g.variable()
		if c := int64(g.r.Intn(5) - 2); c != 1 && c != 0 {
			v = logic.Bin{Op: logic.OpMul, X: logic.Const{V: c}, Y: v}
		}
		t = logic.Bin{Op: logic.OpAdd, X: t, Y: v}
	}
	return t
}

func (g *diffGen) atom() logic.Formula {
	ops := []logic.CmpOp{logic.CmpEq, logic.CmpLt, logic.CmpLe, logic.CmpGt, logic.CmpGe}
	op := ops[g.r.Intn(len(ops))]
	if g.r.Intn(10) == 0 {
		op = logic.CmpNe // occasional disequality: lazy splitting
	}
	x, y := g.linTerm(), g.linTerm()
	if g.r.Intn(12) == 0 {
		x = logic.Bin{Op: logic.OpMul, X: g.variable(), Y: g.variable()} // nonlinear: abstraction
	}
	return logic.Cmp{Op: op, X: x, Y: y}
}

func (g *diffGen) assertion() logic.Formula {
	switch g.r.Intn(10) {
	case 0: // disjunction: forces the Sat fallback path
		return logic.MkOr(g.atom(), g.atom())
	case 1:
		return logic.MkAnd(g.atom(), g.atom())
	case 2:
		return logic.MkNot(g.atom())
	default:
		return g.atom()
	}
}

func TestDifferentialIncrementalVsScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow")
	}
	lim := Limits{MaxLeaves: 400, MaxBBDepth: 16, MaxModels: 8}
	const seqsPerSeed = 240
	seeds := []int64{1, 2, 3, 4, 5}
	total, decided := 0, 0
	for _, seed := range seeds {
		g := &diffGen{r: rand.New(rand.NewSource(seed))}
		for seq := 0; seq < seqsPerSeed; seq++ {
			s := NewSolverWithLimits(lim)
			// Shadow state: live assertions per frame, mirrored by hand.
			shadow := [][]logic.Formula{nil}
			steps := 3 + g.r.Intn(12)
			for step := 0; step < steps; step++ {
				switch op := g.r.Intn(10); {
				case op < 5: // Assert
					f := g.assertion()
					s.Assert(f)
					top := len(shadow) - 1
					shadow[top] = append(shadow[top], f)
				case op < 7: // Push
					top := shadow[len(shadow)-1]
					shadow = append(shadow, append([]logic.Formula(nil), top...))
					s.Push()
				case op < 8: // Pop (no-op at base, like the solver's)
					if len(shadow) > 1 {
						shadow = shadow[:len(shadow)-1]
					}
					s.Pop()
				default: // Check
					total++
					live := shadow[len(shadow)-1]
					ri := s.CheckCtx(context.Background())
					rs := SolveCtx(context.Background(), logic.MkAnd(live...), lim)
					if rs.Status == StatusUnknown {
						continue // scratch gave up; nothing to compare
					}
					decided++
					if ri.Status == StatusUnknown {
						t.Fatalf("seed %d seq %d step %d: incremental Unknown where scratch decided %v\nlive: %v",
							seed, seq, step, rs.Status, live)
					}
					if ri.Status != rs.Status {
						t.Fatalf("seed %d seq %d step %d: incremental %v vs scratch %v\nlive: %v",
							seed, seq, step, ri.Status, rs.Status, live)
					}
					if s.Assertions() != len(live) {
						t.Fatalf("seed %d seq %d: assertion count drifted: %d vs shadow %d",
							seed, seq, s.Assertions(), len(live))
					}
				}
			}
		}
	}
	if total < 1000 {
		t.Fatalf("harness too small: only %d checks executed", total)
	}
	if decided == 0 {
		t.Fatal("harness degenerate: no decided comparisons")
	}
	t.Logf("%d checks compared, %d decided by both sides", total, decided)
}
