package smt

import "sort"

// Incremental interval constraint propagation: the persistent,
// delta-driven counterpart of icpCheck (intervals.go) used by the
// incremental Solver. Bounds carry over from check to check — within a
// Push frame the assertion set only grows, so every tightening derived
// earlier stays valid and new atoms start from the already-narrowed
// state instead of from scratch. Propagation is worklist-based and
// seeded with the delta: a check that adds k atoms touches the atoms
// reachable from those k atoms' variables, not the whole conjunction.
//
// Like icpCheck this is a sound Unsat pre-filter only: saturated int64
// arithmetic can widen but never narrow, so an empty interval here is
// empty under exact arithmetic too. Anything else falls through to the
// simplex.

// icpAtom is a LinAtom with int64 coefficients (atoms that do not fit
// are skipped — the simplex decides them exactly).
type icpAtom struct {
	kind   AtomKind
	coeffs map[string]int64
	vars   []string // sorted, for deterministic propagation order
	k      int64
}

// convertICPAtom converts a LinAtom; ok is false when any coefficient
// or the constant exceeds int64.
func convertICPAtom(a LinAtom) (icpAtom, bool) {
	if !a.Expr.Const.IsInt64() {
		return icpAtom{}, false
	}
	conv := icpAtom{kind: a.Kind, coeffs: make(map[string]int64, len(a.Expr.Coeffs)), k: a.Expr.Const.Int64()}
	for v, c := range a.Expr.Coeffs {
		if !c.IsInt64() {
			return icpAtom{}, false
		}
		conv.coeffs[v] = c.Int64()
		conv.vars = append(conv.vars, v)
	}
	sort.Strings(conv.vars)
	return conv, true
}

// incICP is the persistent propagation state.
type incICP struct {
	atoms  []icpAtom
	byVar  map[string][]int    // var -> indices of atoms mentioning it
	bounds map[string]interval // missing = [-icpInf, icpInf]
}

func newIncICP() *incICP {
	return &incICP{byVar: make(map[string][]int), bounds: make(map[string]interval)}
}

func (p *incICP) iv(v string) interval {
	if iv, ok := p.bounds[v]; ok {
		return iv
	}
	return interval{lo: -icpInf, hi: icpInf}
}

// add registers a converted atom and returns its index.
func (p *incICP) add(a icpAtom) int {
	idx := len(p.atoms)
	p.atoms = append(p.atoms, a)
	for _, v := range a.vars {
		p.byVar[v] = append(p.byVar[v], idx)
	}
	return idx
}

// truncate drops atoms from index n on and rebuilds the variable index
// (Pop path; bounds are restored separately from the frame snapshot).
func (p *incICP) truncate(n int) {
	if n >= len(p.atoms) {
		return
	}
	p.atoms = p.atoms[:n]
	p.byVar = make(map[string][]int, len(p.byVar))
	for i, a := range p.atoms {
		for _, v := range a.vars {
			p.byVar[v] = append(p.byVar[v], i)
		}
	}
}

// snapshotBounds copies the current bounds for a Push frame.
func (p *incICP) snapshotBounds() map[string]interval {
	out := make(map[string]interval, len(p.bounds))
	for v, iv := range p.bounds {
		out[v] = iv
	}
	return out
}

// propagate runs worklist propagation seeded with the given atom
// indices; it returns StatusUnsat when some interval empties and
// StatusUnknown otherwise. The work budget bounds total atom
// processings (sound: stopping early just means less tightening).
func (p *incICP) propagate(seed []int) Status {
	const budgetPerAtom = 8
	budget := budgetPerAtom * len(p.atoms)
	if budget < 64 {
		budget = 64
	}
	queue := append([]int(nil), seed...)
	queued := make(map[int]bool, len(seed))
	for _, i := range seed {
		queued[i] = true
	}
	for len(queue) > 0 && budget > 0 {
		i := queue[0]
		queue = queue[1:]
		queued[i] = false
		budget--
		var changed []string
		if p.tighten(p.atoms[i], &changed) {
			return StatusUnsat
		}
		for _, v := range changed {
			for _, j := range p.byVar[v] {
				if j < len(p.atoms) && !queued[j] {
					queued[j] = true
					queue = append(queue, j)
				}
			}
		}
	}
	return StatusUnknown
}

// tighten applies one propagation step of atom a (the same per-atom
// rule as icpCheck): for Σ cᵢxᵢ + k ≤ 0 each xⱼ gets
// cⱼxⱼ ≤ -k - Σ_{i≠j} min(cᵢxᵢ), and for equalities additionally the
// symmetric ≥ rule. It reports true when a bound pair empties and
// appends the names of tightened variables to *changed.
func (p *incICP) tighten(a icpAtom, changed *[]string) bool {
	for _, j := range a.vars {
		cj := a.coeffs[j]
		ivj := p.iv(j)
		restMin := a.k
		okMin := true
		for _, i := range a.vars {
			if i == j {
				continue
			}
			ci := a.coeffs[i]
			iv := p.iv(i)
			var term int64
			if ci > 0 {
				if iv.lo <= -icpInf {
					okMin = false
					break
				}
				term = satMul(ci, iv.lo)
			} else {
				if iv.hi >= icpInf {
					okMin = false
					break
				}
				term = satMul(ci, iv.hi)
			}
			restMin = satAdd(restMin, term)
		}
		dirty := false
		if okMin {
			rhs := -restMin
			if cj > 0 {
				if nb := floorDiv(rhs, cj); nb < ivj.hi {
					ivj.hi = nb
					dirty = true
				}
			} else {
				if lo := ceilDivNeg(rhs, cj); lo > ivj.lo {
					ivj.lo = lo
					dirty = true
				}
			}
		}
		if a.kind == AtomEq {
			restMax := a.k
			okMax := true
			for _, i := range a.vars {
				if i == j {
					continue
				}
				ci := a.coeffs[i]
				iv := p.iv(i)
				var term int64
				if ci > 0 {
					if iv.hi >= icpInf {
						okMax = false
						break
					}
					term = satMul(ci, iv.hi)
				} else {
					if iv.lo <= -icpInf {
						okMax = false
						break
					}
					term = satMul(ci, iv.lo)
				}
				restMax = satAdd(restMax, term)
			}
			if okMax {
				rhs := -restMax
				if cj > 0 {
					if lo := ceilDiv(rhs, cj); lo > ivj.lo {
						ivj.lo = lo
						dirty = true
					}
				} else {
					if hi := floorDivNeg(rhs, cj); hi < ivj.hi {
						ivj.hi = hi
						dirty = true
					}
				}
			}
		}
		if dirty {
			p.bounds[j] = ivj
			*changed = append(*changed, j)
		}
		if ivj.lo > ivj.hi {
			return true
		}
	}
	return false
}
