package smt

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
)

// Portfolio test suite (ISSUE 9 satellites): differential parity with
// the stateless solver (the PR 4 harness generator, >=1000 checks over
// >=5 seeds), batch parity and cache population, goroutine-leak and
// shared-cache races (make race covers this package), and the
// stall-injection scenario where the interval prefilter must win past
// hung engine strategies.

// portfolioLim mirrors the differential harness limits: small enough
// to exercise give-ups, large enough to decide most queries.
var portfolioLim = Limits{MaxLeaves: 400, MaxBBDepth: 16, MaxModels: 8}

// TestDifferentialPortfolioVsScratch: on randomly generated assertion
// sets, the portfolio verdict must be bit-identical to the stateless
// SolveCtx verdict whenever the latter decides — and the portfolio
// must never answer Unknown where scratch decided (one of its racers
// IS the scratch solver, and Unknown never beats a definite verdict).
func TestDifferentialPortfolioVsScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow")
	}
	const perSeed = 220
	seeds := []int64{1, 2, 3, 4, 5}
	total, decided := 0, 0
	for _, seed := range seeds {
		g := &diffGen{r: rand.New(rand.NewSource(seed))}
		for seq := 0; seq < perSeed; seq++ {
			n := 1 + g.r.Intn(6)
			fs := make([]logic.Formula, n)
			for i := range fs {
				fs[i] = g.assertion()
			}
			f := logic.MkAnd(fs...)
			total++
			rs := SolveCtx(context.Background(), f, portfolioLim)
			rp := SolvePortfolioCtx(context.Background(), f, portfolioLim)
			if rs.Status == StatusUnknown {
				continue
			}
			decided++
			if rp.Status == StatusUnknown {
				t.Fatalf("seed %d seq %d: portfolio Unknown where scratch decided %v\nf: %v",
					seed, seq, rs.Status, f)
			}
			if rp.Status != rs.Status {
				t.Fatalf("seed %d seq %d: portfolio %v vs scratch %v\nf: %v",
					seed, seq, rp.Status, rs.Status, f)
			}
		}
	}
	if total < 1000 {
		t.Fatalf("harness too small: only %d checks executed", total)
	}
	if decided == 0 {
		t.Fatal("harness degenerate: no decided comparisons")
	}
	t.Logf("%d portfolio checks compared, %d decided by scratch", total, decided)
}

// TestPortfolioBatchParity: SolveBatchCtx must agree with per-query
// SolveCtx on every scratch-decided query — across worker counts and
// with or without a cache — and a second batched run over a populated
// cache must be answered entirely from it.
func TestPortfolioBatchParity(t *testing.T) {
	g := &diffGen{r: rand.New(rand.NewSource(11))}
	var fs []logic.Formula
	for i := 0; i < 120; i++ {
		n := 1 + g.r.Intn(6)
		conj := make([]logic.Formula, n)
		for j := range conj {
			conj[j] = g.assertion()
		}
		fs = append(fs, logic.MkAnd(conj...))
	}
	ref := make([]Result, len(fs))
	for i, f := range fs {
		ref[i] = SolveCtx(context.Background(), f, portfolioLim)
	}
	for _, workers := range []int{1, 3} {
		for _, withCache := range []bool{false, true} {
			var cache *Cache
			if withCache {
				cache = NewCache(0)
			}
			opt := BatchOptions{Workers: workers, Cache: cache, Lim: portfolioLim}
			got := SolveBatchCtx(context.Background(), fs, opt)
			if len(got) != len(fs) {
				t.Fatalf("workers=%d cache=%v: %d results for %d queries", workers, withCache, len(got), len(fs))
			}
			for i := range fs {
				if ref[i].Status == StatusUnknown {
					continue
				}
				if got[i].Status == StatusUnknown {
					t.Fatalf("workers=%d cache=%v query %d: batch Unknown where scratch decided %v",
						workers, withCache, i, ref[i].Status)
				}
				if got[i].Status != ref[i].Status {
					t.Fatalf("workers=%d cache=%v query %d: batch %v vs scratch %v\nf: %v",
						workers, withCache, i, got[i].Status, ref[i].Status, fs[i])
				}
			}
			if !withCache {
				continue
			}
			// The batch must have stored its definitive verdicts under
			// the canonical keys: a re-run misses only on queries that
			// stayed Unknown (Unknown is never cached).
			unknowns := int64(0)
			for i := range fs {
				if got[i].Status == StatusUnknown {
					unknowns++
				}
			}
			before := cache.Stats()
			again := SolveBatchCtx(context.Background(), fs, opt)
			after := cache.Stats()
			for i := range fs {
				if got[i].Status != StatusUnknown && again[i].Status != got[i].Status {
					t.Fatalf("rerun query %d flipped %v -> %v", i, got[i].Status, again[i].Status)
				}
			}
			if misses := after.Misses - before.Misses; misses > unknowns {
				t.Fatalf("rerun over a populated cache took %d misses, want <= %d (the Unknowns)",
					misses, unknowns)
			}
			if after.Hits <= before.Hits {
				t.Fatal("rerun over a populated cache recorded no hits")
			}
		}
	}
}

// TestPortfolioCacheInterchangeable: a cache populated through the
// portfolio front-end must serve the plain SolveCtx path (and vice
// versa) — same canonical keys, same definitive-only storage.
func TestPortfolioCacheInterchangeable(t *testing.T) {
	cache := NewCache(0)
	sat := eq(v("x"), c(7))
	unsat := logic.MkAnd(eq(v("x"), c(1)), eq(v("x"), c(2)))

	if st := CachedSolvePortfolioCtx(context.Background(), cache, sat, portfolioLim).Status; st != StatusSat {
		t.Fatalf("portfolio solve: got %v, want Sat", st)
	}
	if st := CachedSolvePortfolioCtx(context.Background(), cache, unsat, portfolioLim).Status; st != StatusUnsat {
		t.Fatalf("portfolio solve: got %v, want Unsat", st)
	}
	before := cache.Stats()
	if st := CachedSolveCtx(context.Background(), cache, sat, portfolioLim).Status; st != StatusSat {
		t.Fatalf("plain solve after portfolio population: got %v, want Sat", st)
	}
	if st := CachedSolveCtx(context.Background(), cache, unsat, portfolioLim).Status; st != StatusUnsat {
		t.Fatalf("plain solve after portfolio population: got %v, want Unsat", st)
	}
	after := cache.Stats()
	if after.Hits-before.Hits != 2 || after.Misses != before.Misses {
		t.Fatalf("plain solves over a portfolio-populated cache: %d hits, %d misses (want 2 hits, 0 misses)",
			after.Hits-before.Hits, after.Misses-before.Misses)
	}
}

// TestPortfolioConcurrentSharedCache hammers one shared cache with
// portfolio queries from many goroutines; every verdict must match the
// serial reference. The race detector (make race) checks the locking;
// Unknown is tolerated only where the reference also gave up.
func TestPortfolioConcurrentSharedCache(t *testing.T) {
	g := &diffGen{r: rand.New(rand.NewSource(23))}
	var fs []logic.Formula
	refs := make(map[int]Status)
	for i := 0; i < 24; i++ {
		f := logic.MkAnd(g.assertion(), g.assertion())
		fs = append(fs, f)
		refs[i] = SolveCtx(context.Background(), f, portfolioLim).Status
	}
	cache := NewCache(0)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; n < 40; n++ {
				i := r.Intn(len(fs))
				st := CachedSolvePortfolioCtx(context.Background(), cache, fs[i], portfolioLim).Status
				if st != StatusUnknown && refs[i] != StatusUnknown && st != refs[i] {
					select {
					case errs <- fmt.Sprintf("worker %d query %d: got %v, want %v", w, i, st, refs[i]):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestPortfolioNoGoroutineLeak: after a burst of portfolio solves —
// including races where one strategy loses and is cancelled — the
// goroutine count must return to baseline. SolvePortfolioCtx drains
// both racers before returning, so any leak here is a real one.
func TestPortfolioNoGoroutineLeak(t *testing.T) {
	g := &diffGen{r: rand.New(rand.NewSource(31))}
	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		f := logic.MkAnd(g.assertion(), g.assertion(), g.assertion())
		SolvePortfolioCtx(context.Background(), f, portfolioLim)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPortfolioWinsPastStalledStrategies: with SolverStall injected at
// rate 1.0 and a 10s stall, both engine strategies hang — but the
// interval prefilter (which takes no fault draws: it is the cheap
// redundant check the faults model stresses, not a solver call) must
// still refute interval-contradictory queries within the deadline,
// and fast.
func TestPortfolioWinsPastStalledStrategies(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  7,
		Rates: map[faults.Kind]float64{faults.SolverStall: 1},
		Stall: 10 * time.Second,
	}))
	defer faults.Install(prev)

	// x <= 0 && x >= 1 && y = x+1: an interval contradiction.
	f := logic.MkAnd(
		le(v("x"), c(0)),
		ge(v("x"), c(1)),
		eq(v("y"), logic.Bin{Op: logic.OpAdd, X: v("x"), Y: c(1)}),
	)
	lim := portfolioLim
	lim.Deadline = 2 * time.Second
	start := time.Now()
	for i := 0; i < 20; i++ {
		r, who := SolvePortfolioDetail(context.Background(), f, lim)
		if r.Status != StatusUnsat {
			t.Fatalf("query %d: got %v (winner %q), want Unsat from the prefilter", i, r.Status, who)
		}
		if who != StrategyICP {
			t.Fatalf("query %d: winner %q, want %q (engines are stalled)", i, who, StrategyICP)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("20 prefilter wins took %v — the stalled engines were on the critical path", elapsed)
	}
}

// TestPortfolioStalledSatDecidesWithinDeadline: a satisfiable query the
// prefilter cannot refute forces the race; with a short injected stall
// on every engine draw, the portfolio must still decide well within
// the deadline (the stall is concurrent across strategies, and a
// stalled strategy resumes and answers).
func TestPortfolioStalledSatDecidesWithinDeadline(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  9,
		Rates: map[faults.Kind]float64{faults.SolverStall: 1},
		Stall: 150 * time.Millisecond,
	}))
	defer faults.Install(prev)

	lim := portfolioLim
	lim.Deadline = 5 * time.Second
	const queries = 5
	start := time.Now()
	for i := 0; i < queries; i++ {
		f := logic.MkAnd(eq(v("x"), c(int64(i))), le(v("y"), c(int64(i+3))))
		if st := SolvePortfolioCtx(context.Background(), f, lim).Status; st != StatusSat {
			t.Fatalf("query %d: got %v, want Sat within deadline despite stalls", i, st)
		}
	}
	// Each query pays at most ~one stall window (strategies stall
	// concurrently, not in sequence); 5 queries must come in far under
	// 5 sequential stalls per query.
	if elapsed := time.Since(start); elapsed > queries*400*time.Millisecond {
		t.Fatalf("%d stalled-sat queries took %v — stalls compounded across strategies", queries, elapsed)
	}
}

// TestPortfolioDeadlineProvesNothing: the PR 3 contract — an expired
// context answers Unknown even when the prefilter could refute the
// query synchronously.
func TestPortfolioDeadlineProvesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := logic.MkAnd(le(v("x"), c(0)), ge(v("x"), c(1)))
	if st := SolvePortfolioCtx(ctx, f, portfolioLim).Status; st != StatusUnknown {
		t.Fatalf("expired context: got %v, want Unknown", st)
	}
}

// TestPortfolioBatchGrouping: support-disjoint queries must land in
// separate groups; entangled ones share a group.
func TestPortfolioBatchGrouping(t *testing.T) {
	mk := func(f logic.Formula) *batchQuery { return &batchQuery{f: f} }
	qs := []*batchQuery{
		mk(eq(v("a"), c(1))),
		mk(logic.MkAnd(eq(v("a"), c(2)), eq(v("b"), c(3)))), // entangles a,b
		mk(eq(v("z"), c(4))),
		mk(eq(v("b"), c(5))),
		mk(logic.Bool(logic.True)), // variable-free: singleton group
	}
	groups := groupBySupport(qs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 ({a,b}, {z}, {})", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[3] != 1 || sizes[1] != 2 {
		t.Fatalf("group sizes %v, want one group of 3 and two singletons", sizes)
	}
}
