package smt

import (
	"context"
	"sort"
	"sync"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
)

// Batched solving: the pipeline's feasibility queries arrive in bursts
// of related conjunctions — slice targets along one trace share the
// trace-prefix encoding, a CEGAR refinement round asks about every
// predicate under the same precondition. Solving them one SolveCtx at a
// time re-derives the shared prefix per query. SolveBatchCtx instead:
//
//  1. answers what it can from the cache (same peek/store path and
//     canonical keys as the serial route, so hit/miss accounting and
//     cache contents are indistinguishable);
//  2. groups the remaining queries by connected variable support —
//     queries in different groups constrain disjoint variables, so the
//     groups are independent and fan out onto a bounded worker pool;
//  3. inside each group, orders queries for prefix adjacency and walks
//     them on ONE incremental Solver: Pop back to the longest common
//     asserted prefix, Push the new suffix, Check. Shared prefixes are
//     asserted (and their simplex rows built) once per group instead of
//     once per query — which is what makes batching pay on a single
//     core, where racing goroutines cannot.
//
// Soundness is inherited: every verdict comes from Solver.CheckCtx
// (sticky-Unsat restored by Pop, from-scratch fallback inside), Unknown
// is never cached, and per-query deadlines match the serial path.
type BatchOptions struct {
	// Workers bounds the number of groups solved concurrently;
	// values <= 1 solve groups serially.
	Workers int
	// Cache, when non-nil, is consulted before grouping and receives
	// every definitive verdict under the query's canonical key.
	Cache *Cache
	// Lim applies per query, exactly as it would on the serial path.
	Lim Limits
}

// batchQuery is one pending query: its original formula (for cache
// keys), its flattened interned conjuncts (for prefix sharing), and
// where its result goes.
type batchQuery struct {
	idx  int
	f    logic.Formula
	conj []logic.Formula
	sig  []string // String() of each conjunct, for deterministic ordering
}

// SolveBatchCtx decides each formula in fs, returning results in input
// order. Results match what per-query SolveCtx/Solver runs would
// produce (same status contract; Sat results from cache hits carry no
// model, as everywhere else).
func SolveBatchCtx(ctx context.Context, fs []logic.Formula, opt BatchOptions) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	lim := opt.Lim.withDefaults()
	results := make([]Result, len(fs))

	var pending []*batchQuery
	for i, f := range fs {
		mPortfolioBatch.Inc()
		if opt.Cache != nil {
			key := logic.Key(f)
			// Keep the serial path's fault surface: one CacheEvict draw
			// per query before its lookup.
			if faults.Should(faults.CacheEvict) {
				opt.Cache.evict(key)
			}
			if st, ok := opt.Cache.peek(key); ok {
				results[i] = Result{Status: st}
				continue
			}
		}
		q := &batchQuery{idx: i, f: f, conj: internedConjuncts(f)}
		q.sig = make([]string, len(q.conj))
		for j, cj := range q.conj {
			q.sig[j] = cj.String()
		}
		pending = append(pending, q)
	}
	if len(pending) == 0 {
		return results
	}

	groups := groupBySupport(pending)
	mPortfolioBatchGroups.Add(int64(len(groups)))

	solveGroup := func(g []*batchQuery) {
		// Order for prefix adjacency: queries whose conjunct sequences
		// share a prefix become lexicographic neighbours, so the trie
		// walk below pops as little as possible between them.
		sort.SliceStable(g, func(a, b int) bool {
			return lessSig(g[a].sig, g[b].sig)
		})
		s := NewSolverWithLimits(lim)
		var trail []logic.Formula // interned conjuncts currently pushed, one frame each
		for _, q := range g {
			lcp := 0
			for lcp < len(trail) && lcp < len(q.conj) && logic.Equal(trail[lcp], q.conj[lcp]) {
				lcp++
			}
			for len(trail) > lcp {
				s.Pop()
				trail = trail[:len(trail)-1]
			}
			mPortfolioBatchReused.Add(int64(lcp))
			for _, cj := range q.conj[lcp:] {
				s.Push()
				s.Assert(cj)
				trail = append(trail, cj)
			}
			qctx := ctx
			var cancel context.CancelFunc
			if lim.Deadline > 0 {
				qctx, cancel = context.WithTimeout(ctx, lim.Deadline)
			}
			r := s.CheckCtx(qctx)
			if cancel != nil {
				cancel()
			}
			results[q.idx] = r
			if opt.Cache != nil && r.Status != StatusUnknown {
				opt.Cache.store(logic.Key(q.f), r.Status)
			}
		}
	}

	workers := opt.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			solveGroup(g)
		}
		return results
	}
	jobs := make(chan []*batchQuery)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				solveGroup(g)
			}
		}()
	}
	for _, g := range groups {
		jobs <- g
	}
	close(jobs)
	wg.Wait()
	return results
}

// internedConjuncts flattens f's top-level conjunction and interns each
// conjunct, so prefix comparison inside a group is logic.Equal's O(1)
// shared-meta fast path.
func internedConjuncts(f logic.Formula) []logic.Formula {
	var out []logic.Formula
	var walk func(g logic.Formula)
	walk = func(g logic.Formula) {
		if and, ok := g.(logic.And); ok {
			for _, h := range and.Fs {
				walk(h)
			}
			return
		}
		out = append(out, logic.Intern(g))
	}
	walk(f)
	if len(out) == 0 {
		out = append(out, logic.Intern(f))
	}
	return out
}

// groupBySupport partitions queries into connected components of shared
// variable support (union-find over variable names). Queries in
// different components share no variables; variable-free queries form
// singleton groups. Group order follows each component's first query,
// so the partition is deterministic in input order.
func groupBySupport(qs []*batchQuery) [][]*batchQuery {
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	qvars := make([][]string, len(qs))
	for i, q := range qs {
		qvars[i] = logic.Vars(q.f)
		for j := 1; j < len(qvars[i]); j++ {
			union(qvars[i][0], qvars[i][j])
		}
	}
	byRoot := make(map[string]int)
	var groups [][]*batchQuery
	for i, q := range qs {
		if len(qvars[i]) == 0 {
			groups = append(groups, []*batchQuery{q})
			continue
		}
		root := find(qvars[i][0])
		gi, ok := byRoot[root]
		if !ok {
			gi = len(groups)
			byRoot[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], q)
	}
	return groups
}

// lessSig orders conjunct-signature sequences lexicographically.
func lessSig(a, b []string) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
