package smt

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
)

// mkAtom builds a LinAtom Σ cᵢxᵢ + k (≤ 0 or = 0).
func mkAtom(kind AtomKind, k int64, terms map[string]int64) LinAtom {
	e := newLinExpr()
	for v, c := range terms {
		e.addVar(v, big.NewInt(c))
	}
	e.Const.SetInt64(k)
	return LinAtom{Kind: kind, Expr: e}
}

func TestICPBasicContradictions(t *testing.T) {
	// x ≤ 1 ∧ x ≥ 2: (x - 1 ≤ 0), (-x + 2 ≤ 0).
	atoms := []LinAtom{
		mkAtom(AtomLe, -1, map[string]int64{"x": 1}),
		mkAtom(AtomLe, 2, map[string]int64{"x": -1}),
	}
	if got := icpCheck(atoms, 0); got != StatusUnsat {
		t.Errorf("x<=1, x>=2: %s", got)
	}
	// x ≤ 5 ∧ x ≥ 3: satisfiable → Unknown.
	atoms = []LinAtom{
		mkAtom(AtomLe, -5, map[string]int64{"x": 1}),
		mkAtom(AtomLe, 3, map[string]int64{"x": -1}),
	}
	if got := icpCheck(atoms, 0); got != StatusUnknown {
		t.Errorf("x in [3,5]: %s", got)
	}
}

func TestICPEqualityChains(t *testing.T) {
	// x = 3, y = x + 1, y = 5: contradiction propagates through the
	// chain. Atoms: (x - 3 = 0), (y - x - 1 = 0), (y - 5 = 0).
	atoms := []LinAtom{
		mkAtom(AtomEq, -3, map[string]int64{"x": 1}),
		mkAtom(AtomEq, -1, map[string]int64{"y": 1, "x": -1}),
		mkAtom(AtomEq, -5, map[string]int64{"y": 1}),
	}
	if got := icpCheck(atoms, 0); got != StatusUnsat {
		t.Errorf("chain contradiction: %s", got)
	}
	// Consistent version (y = 4): Unknown.
	atoms[2] = mkAtom(AtomEq, -4, map[string]int64{"y": 1})
	if got := icpCheck(atoms, 0); got != StatusUnknown {
		t.Errorf("consistent chain: %s", got)
	}
}

func TestICPNeverFalseUnsat(t *testing.T) {
	// Random satisfiable systems built from a known witness must never
	// be reported UNSAT by ICP.
	r := rand.New(rand.NewSource(41))
	vars := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		witness := map[string]int64{}
		for _, v := range vars {
			witness[v] = int64(r.Intn(41) - 20)
		}
		var atoms []LinAtom
		for i := 0; i < 1+r.Intn(6); i++ {
			terms := map[string]int64{}
			var lhs int64
			for _, v := range vars {
				if c := int64(r.Intn(9) - 4); c != 0 {
					terms[v] = c
					lhs += c * witness[v]
				}
			}
			if r.Intn(3) == 0 {
				atoms = append(atoms, mkAtom(AtomEq, -lhs, terms))
			} else {
				slack := int64(r.Intn(10))
				atoms = append(atoms, mkAtom(AtomLe, -lhs-slack, terms))
			}
		}
		if got := icpCheck(atoms, 0); got == StatusUnsat {
			t.Fatalf("trial %d: false UNSAT; witness %v atoms %v", trial, witness, atoms)
		}
	}
}

func TestICPAgreesWithSimplexOnRandomSystems(t *testing.T) {
	// ICP-UNSAT must imply simplex-UNSAT.
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		var atoms []LinAtom
		for i := 0; i < 1+r.Intn(5); i++ {
			terms := map[string]int64{}
			for _, v := range []string{"x", "y"} {
				if c := int64(r.Intn(7) - 3); c != 0 {
					terms[v] = c
				}
			}
			kind := AtomLe
			if r.Intn(3) == 0 {
				kind = AtomEq
			}
			atoms = append(atoms, mkAtom(kind, int64(r.Intn(15)-7), terms))
		}
		if icpCheck(atoms, 0) == StatusUnsat {
			st, _ := branchAndBound(context.Background(), atoms, nil, 30)
			if st == StatusSat {
				t.Fatalf("trial %d: ICP says unsat, simplex finds a model; atoms %v", trial, atoms)
			}
		}
	}
}

func TestSaturationHelpers(t *testing.T) {
	if satAdd(icpInf, icpInf) != icpInf {
		t.Error("satAdd overflow")
	}
	if satAdd(-icpInf, -icpInf) != -icpInf {
		t.Error("satAdd underflow")
	}
	if satMul(icpInf, 2) != icpInf || satMul(icpInf, -2) != -icpInf {
		t.Error("satMul saturation")
	}
	if satMul(0, icpInf) != 0 {
		t.Error("satMul zero")
	}
	if floorDiv(7, 2) != 3 || floorDiv(-7, 2) != -4 {
		t.Error("floorDiv")
	}
	if ceilDiv(7, 2) != 4 || ceilDiv(-7, 2) != -3 {
		t.Error("ceilDiv")
	}
	if !bigIsInt64(big.NewInt(42)) {
		t.Error("bigIsInt64")
	}
}

// The end-to-end effect: a long SSA chain contradiction should be
// decided without branch and bound (cheaply). This is a smoke check
// that the pre-filter is wired in.
func TestICPWiredIntoCheckConj(t *testing.T) {
	var atoms []LinAtom
	prev := "v0"
	atoms = append(atoms, mkAtom(AtomEq, 0, map[string]int64{prev: 1})) // v0 = 0
	for i := 1; i <= 50; i++ {
		cur := "v" + itoa(i)
		atoms = append(atoms, mkAtom(AtomEq, -1, map[string]int64{cur: 1, prev: -1}))
		prev = cur
	}
	atoms = append(atoms, mkAtom(AtomEq, -99, map[string]int64{prev: 1})) // v50 = 99 (truth: 50)
	st, _ := checkConj(atoms, 30)
	if st != StatusUnsat {
		t.Fatalf("chain: %s", st)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}
