package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(n int64) *big.Rat { return big.NewRat(n, 1) }

func TestSimplexDirectFeasible(t *testing.T) {
	// x + y <= 4, x >= 1, y >= 2 (as -x <= -1, -y <= -2).
	sx := newSimplex()
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(1), "y": big.NewInt(1)}, nil, rat(4))
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(-1)}, nil, rat(-1))
	sx.addConstraint(map[string]*big.Int{"y": big.NewInt(-1)}, nil, rat(-2))
	if st := sx.check(); st != StatusSat {
		t.Fatalf("status: %s", st)
	}
	x := sx.val[sx.index["x"]]
	y := sx.val[sx.index["y"]]
	sum := new(big.Rat).Add(x, y)
	if x.Cmp(rat(1)) < 0 || y.Cmp(rat(2)) < 0 || sum.Cmp(rat(4)) > 0 {
		t.Errorf("model violates constraints: x=%v y=%v", x, y)
	}
}

func TestSimplexDirectInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	sx := newSimplex()
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(1)}, nil, rat(1))
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(-1)}, nil, rat(-2))
	if st := sx.check(); st != StatusUnsat {
		t.Fatalf("status: %s", st)
	}
}

func TestSimplexEqualities(t *testing.T) {
	// x + y = 10, x - y = 4  =>  x = 7, y = 3.
	sx := newSimplex()
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(1), "y": big.NewInt(1)}, rat(10), rat(10))
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(1), "y": big.NewInt(-1)}, rat(4), rat(4))
	if st := sx.check(); st != StatusSat {
		t.Fatalf("status: %s", st)
	}
	if got := sx.val[sx.index["x"]]; got.Cmp(rat(7)) != 0 {
		t.Errorf("x = %v, want 7", got)
	}
	if got := sx.val[sx.index["y"]]; got.Cmp(rat(3)) != 0 {
		t.Errorf("y = %v, want 3", got)
	}
}

func TestSimplexSetBoundsConflict(t *testing.T) {
	sx := newSimplex()
	sx.addConstraint(map[string]*big.Int{"x": big.NewInt(1)}, nil, rat(10))
	if !sx.setBounds("x", rat(3), nil) {
		t.Fatal("bounds 3..inf fine")
	}
	if sx.setBounds("x", rat(5), rat(4)) {
		t.Fatal("empty interval must be rejected")
	}
}

// Property: on random small systems, the simplex verdict agrees with a
// brute-force rational feasibility check over a grid... instead we do
// the stronger model check: SAT models satisfy all constraints, and
// UNSAT answers agree with integer brute force over a small box (if a
// box point satisfies everything, UNSAT is a bug).
func TestQuickSimplexRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	vars := []string{"x", "y", "z"}
	for trial := 0; trial < 300; trial++ {
		sx := newSimplex()
		type cons struct {
			coeffs map[string]*big.Int
			hi     *big.Rat
		}
		var cs []cons
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			coeffs := make(map[string]*big.Int)
			for _, v := range vars {
				if c := r.Intn(7) - 3; c != 0 {
					coeffs[v] = big.NewInt(int64(c))
				}
			}
			hi := rat(int64(r.Intn(21) - 10))
			sx.addConstraint(coeffs, nil, hi)
			cs = append(cs, cons{coeffs, hi})
		}
		st := sx.check()
		switch st {
		case StatusSat:
			// Verify the model.
			for ci, c := range cs {
				sum := new(big.Rat)
				for v, co := range c.coeffs {
					sum.Add(sum, new(big.Rat).Mul(new(big.Rat).SetInt(co), sx.val[sx.index[v]]))
				}
				if sum.Cmp(c.hi) > 0 {
					t.Fatalf("trial %d: model violates constraint %d: %v > %v", trial, ci, sum, c.hi)
				}
			}
		case StatusUnsat:
			// Brute force over a box.
			for x := int64(-6); x <= 6; x++ {
				for y := int64(-6); y <= 6; y++ {
					for z := int64(-6); z <= 6; z++ {
						env := map[string]int64{"x": x, "y": y, "z": z}
						all := true
						for _, c := range cs {
							var sum int64
							for v, co := range c.coeffs {
								sum += co.Int64() * env[v]
							}
							num := c.hi.Num().Int64()
							if big.NewRat(sum, 1).Cmp(c.hi) > 0 {
								all = false
								_ = num
								break
							}
						}
						if all {
							t.Fatalf("trial %d: simplex says unsat but (%d,%d,%d) satisfies all", trial, x, y, z)
						}
					}
				}
			}
		}
	}
}

// Property: branch and bound never returns a non-integer model, and
// its verdicts are consistent with a relaxation check.
func TestQuickBranchAndBound(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		var atoms []LinAtom
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			e := newLinExpr()
			for _, v := range []string{"x", "y"} {
				if c := r.Intn(9) - 4; c != 0 {
					e.addVar(v, big.NewInt(int64(c)))
				}
			}
			e.Const.SetInt64(int64(r.Intn(13) - 6))
			kind := AtomLe
			if r.Intn(4) == 0 {
				kind = AtomEq
			}
			atoms = append(atoms, LinAtom{Kind: kind, Expr: e})
		}
		st, model := checkConj(atoms, 30)
		if st == StatusSat {
			// Model must satisfy every atom exactly.
			for ai, a := range atoms {
				if !linAtomHolds(a, model) {
					t.Fatalf("trial %d: model %v violates atom %d (%s)", trial, model, ai, a)
				}
			}
		}
		if st == StatusUnsat {
			// Integer brute force on a box must agree.
			for x := int64(-8); x <= 8; x++ {
				for y := int64(-8); y <= 8; y++ {
					m := map[string]*big.Int{"x": big.NewInt(x), "y": big.NewInt(y)}
					all := true
					for _, a := range atoms {
						if !linAtomHolds(a, m) {
							all = false
							break
						}
					}
					if all {
						t.Fatalf("trial %d: unsat but (%d,%d) works; atoms %v", trial, x, y, atoms)
					}
				}
			}
		}
	}
}
