package smt

import "pathslice/internal/obs"

// Registry metrics for the decision procedure. Handles are resolved
// once at init; updates are no-ops while the default registry is
// disabled (see internal/obs). The catalogue is documented in
// docs/OBSERVABILITY.md.
var (
	mSolves        = obs.Default().Counter("smt_solves_total")
	mSat           = obs.Default().Counter("smt_sat_total")
	mUnsat         = obs.Default().Counter("smt_unsat_total")
	mUnknown       = obs.Default().Counter("smt_unknown_total")
	mLeafChecks    = obs.Default().Counter("smt_leaf_checks_total")
	mCaseSplits    = obs.Default().Counter("smt_case_splits_total")
	mModelValid    = obs.Default().Counter("smt_model_validations_total")
	mSimplexPivots = obs.Default().Counter("smt_simplex_pivots_total")
	mSolveNS       = obs.Default().Histogram("smt_solve_ns")

	mCacheHits      = obs.Default().Counter("smt_cache_hits_total")
	mCacheMisses    = obs.Default().Counter("smt_cache_misses_total")
	mCacheEvictions = obs.Default().Counter("smt_cache_evictions_total")

	// mDeadlineExceeded counts solves that returned StatusUnknown
	// because their context was cancelled or its deadline expired.
	mDeadlineExceeded = obs.Default().Counter("smt_deadline_exceeded_total")

	// Incremental-solver metrics (incremental.go).
	// mIncrementalReuse counts Check calls answered from persistent
	// state: sticky-Unsat short-circuits plus warm tableau reuses.
	mIncrementalReuse = obs.Default().Counter("smt_incremental_reuse_total")
	// mWarmStartHits counts warm-started simplex checks that reached a
	// verdict within the re-pivot budget; mWarmStartRebuilds counts
	// budget exhaustions that forced a from-scratch tableau rebuild.
	mWarmStartHits     = obs.Default().Counter("smt_warm_start_hits_total")
	mWarmStartRebuilds = obs.Default().Counter("smt_warm_start_rebuilds_total")

	// Portfolio metrics (portfolio.go, batch.go). Wins are counted per
	// winning strategy; cancelled counts losing strategies whose answer
	// arrived after the race was decided (the ICP prefilter runs
	// synchronously before the race and is therefore never cancelled).
	mPortfolioWins                 = obs.Default().Counter("smt_portfolio_wins_total")
	mPortfolioWinsIncremental      = obs.Default().Counter("smt_portfolio_wins_incremental_total")
	mPortfolioWinsScratch          = obs.Default().Counter("smt_portfolio_wins_scratch_total")
	mPortfolioWinsICP              = obs.Default().Counter("smt_portfolio_wins_icp_total")
	mPortfolioCancelled            = obs.Default().Counter("smt_portfolio_cancelled_total")
	mPortfolioCancelledIncremental = obs.Default().Counter("smt_portfolio_cancelled_incremental_total")
	mPortfolioCancelledScratch     = obs.Default().Counter("smt_portfolio_cancelled_scratch_total")
	// mPortfolioBatch counts queries decided through SolveBatchCtx;
	// groups counts support-disjoint groups formed; reused counts
	// asserted conjuncts answered from a shared prefix already on the
	// group solver's trail (the batch-mode analogue of warm reuse).
	mPortfolioBatch       = obs.Default().Counter("smt_portfolio_batch_total")
	mPortfolioBatchGroups = obs.Default().Counter("smt_portfolio_batch_groups_total")
	mPortfolioBatchReused = obs.Default().Counter("smt_portfolio_batch_reused_total")
)
