package smt

import (
	"math/big"
	"sort"
)

// Interval constraint propagation: a cheap, sound UNSAT pre-filter run
// before the simplex. For a conjunction of normalized linear atoms it
// maintains integer bounds per variable and tightens them until a
// fixpoint, an empty interval (definitely UNSAT), or a round limit.
//
// Arithmetic uses int64 with saturation at ±icpInf/2; saturation only
// ever *widens* bounds, so an empty interval detected here is empty
// under exact arithmetic too — the filter never reports a false UNSAT.

const icpInf = int64(1) << 56

type interval struct {
	lo, hi int64 // [-icpInf, icpInf] encode unbounded sides
}

// satAdd adds with saturation.
func satAdd(a, b int64) int64 {
	s := a + b
	switch {
	case a > 0 && b > 0 && s < 0, s > icpInf:
		return icpInf
	case a < 0 && b < 0 && s > 0, s < -icpInf:
		return -icpInf
	}
	return s
}

// satMul multiplies with saturation.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	s := a * b
	if s/b != a || s > icpInf || s < -icpInf {
		if (a > 0) == (b > 0) {
			return icpInf
		}
		return -icpInf
	}
	return s
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// icpCheck propagates bounds; it returns StatusUnsat when some interval
// empties, and StatusUnknown otherwise (the conjunction may still be
// unsatisfiable — the simplex decides).
func icpCheck(atoms []LinAtom, maxRounds int) Status {
	if maxRounds <= 0 {
		maxRounds = 30
	}
	bounds := make(map[string]*interval)
	get := func(v string) *interval {
		iv, ok := bounds[v]
		if !ok {
			iv = &interval{lo: -icpInf, hi: icpInf}
			bounds[v] = iv
		}
		return iv
	}
	// Pre-register variables and convert coefficients once; atoms with
	// coefficients beyond int64 range are skipped (the simplex handles
	// them exactly).
	type atom struct {
		kind   AtomKind
		coeffs map[string]int64
		// vars holds the coefficient keys in sorted order: propagation
		// tightens bounds in place, so with a bounded round count the
		// visit order decides the state reached at cutoff. Deterministic
		// order keeps solver statuses reproducible across runs.
		vars []string
		k    int64
	}
	var as []atom
	for _, a := range atoms {
		conv := atom{kind: a.Kind, coeffs: make(map[string]int64, len(a.Expr.Coeffs))}
		ok := a.Expr.Const.IsInt64()
		if ok {
			conv.k = a.Expr.Const.Int64()
		}
		for v, c := range a.Expr.Coeffs {
			if !c.IsInt64() {
				ok = false
				break
			}
			conv.coeffs[v] = c.Int64()
			conv.vars = append(conv.vars, v)
			get(v)
		}
		if ok {
			sort.Strings(conv.vars)
			as = append(as, conv)
		}
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, a := range as {
			// Σ cᵢxᵢ + k ≤ 0 (and, for Eq, also ≥ 0).
			// For each variable j: cⱼxⱼ ≤ -k - Σ_{i≠j} min(cᵢxᵢ).
			for _, j := range a.vars {
				cj := a.coeffs[j]
				ivj := get(j)
				// Upper side (≤): uses minima of the other terms.
				restMin := a.k
				okMin := true
				for _, i := range a.vars {
					ci := a.coeffs[i]
					if i == j {
						continue
					}
					iv := get(i)
					var term int64
					if ci > 0 {
						if iv.lo <= -icpInf {
							okMin = false
							break
						}
						term = satMul(ci, iv.lo)
					} else {
						if iv.hi >= icpInf {
							okMin = false
							break
						}
						term = satMul(ci, iv.hi)
					}
					restMin = satAdd(restMin, term)
				}
				if okMin {
					// cj*xj ≤ -restMin
					rhs := -restMin
					if cj > 0 {
						nb := floorDiv(rhs, cj)
						if nb < ivj.hi {
							ivj.hi = nb
							changed = true
						}
					} else {
						// cj*xj ≤ rhs with cj < 0 ⇔ xj ≥ ⌈rhs/cj⌉.
						lo := ceilDivNeg(rhs, cj)
						if lo > ivj.lo {
							ivj.lo = lo
							changed = true
						}
					}
				}
				if a.kind == AtomEq {
					// Also Σ cᵢxᵢ + k ≥ 0: cⱼxⱼ ≥ -k - Σ_{i≠j} max(cᵢxᵢ).
					restMax := a.k
					okMax := true
					for _, i := range a.vars {
						ci := a.coeffs[i]
						if i == j {
							continue
						}
						iv := get(i)
						var term int64
						if ci > 0 {
							if iv.hi >= icpInf {
								okMax = false
								break
							}
							term = satMul(ci, iv.hi)
						} else {
							if iv.lo <= -icpInf {
								okMax = false
								break
							}
							term = satMul(ci, iv.lo)
						}
						restMax = satAdd(restMax, term)
					}
					if okMax {
						rhs := -restMax // cj*xj ≥ rhs
						if cj > 0 {
							lo := ceilDiv(rhs, cj)
							if lo > ivj.lo {
								ivj.lo = lo
								changed = true
							}
						} else {
							// cj*xj ≥ rhs with cj < 0 ⇔ xj ≤ ⌊rhs/cj⌋.
							hi := floorDivNeg(rhs, cj)
							if hi < ivj.hi {
								ivj.hi = hi
								changed = true
							}
						}
					}
				}
				if ivj.lo > ivj.hi {
					return StatusUnsat
				}
			}
		}
		if !changed {
			break
		}
	}
	return StatusUnknown
}

// ceilDivNeg returns the smallest integer x with c*x ≤ rhs for c < 0,
// i.e. x ≥ rhs/c: ⌈rhs/c⌉ with c negative.
func ceilDivNeg(rhs, c int64) int64 {
	// rhs/c with c<0: x ≥ rhs/c  ⇔  x ≥ -rhs/(-c) rounded up.
	return ceilDiv(-rhs, -c)
}

// floorDivNeg returns the largest integer x with c*x ≥ rhs for c < 0,
// i.e. x ≤ rhs/c: ⌊rhs/c⌋ with c negative.
func floorDivNeg(rhs, c int64) int64 {
	return floorDiv(-rhs, -c)
}

// bigIsInt64 reports whether b fits int64 (helper for tests).
func bigIsInt64(b *big.Int) bool { return b.IsInt64() }
