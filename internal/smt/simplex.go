package smt

import (
	"context"
	"math/big"
	"sort"
)

// Status is a solver verdict.
type Status int

// The three verdicts.
const (
	StatusSat Status = iota
	StatusUnsat
	StatusUnknown
)

// String renders the verdict.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	}
	return "?"
}

// simplex is a Dutertre–de Moura style general simplex over exact
// rationals: every constraint is a slack variable defined by a linear
// row and constrained by bounds; the tableau is pivoted until all
// basic variables respect their bounds or a conflict is found.
type simplex struct {
	names []string       // var id -> name ("" for slacks)
	index map[string]int // name -> var id

	lower, upper []*big.Rat // nil = unbounded
	val          []*big.Rat

	rows    map[int]map[int]*big.Rat // basic var -> {nonbasic var -> coeff}
	isBasic []bool

	pivots    int
	maxPivots int

	// Trail-based backtracking for the incremental solver: when
	// recording, every bound assignment is logged so popTo can undo it.
	// Bounds are the only state that needs undoing — rows and pivots
	// are semantically invariant reformulations of the same linear
	// relations, and variable values are just the current assignment,
	// which the next check re-repairs. A constraint "removed" by popTo
	// keeps its (now unbounded, hence inert) slack row: physically
	// deleting rows is unsound once pivoting has mixed their variables
	// into retained rows.
	recording bool
	trail     []boundChange
}

// boundChange is one undo record: variable x's lower (side 0) or upper
// (side 1) bound before it was overwritten.
type boundChange struct {
	x    int
	side int8
	old  *big.Rat
}

// mark returns the current trail position for a later popTo.
func (s *simplex) mark() int { return len(s.trail) }

// popTo undoes every bound change recorded after mark, most recent
// first, restoring the bounds exactly as they were.
func (s *simplex) popTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		c := s.trail[i]
		if c.side == 0 {
			s.lower[c.x] = c.old
		} else {
			s.upper[c.x] = c.old
		}
	}
	s.trail = s.trail[:mark]
}

func newSimplex() *simplex {
	return &simplex{
		index:     make(map[string]int),
		rows:      make(map[int]map[int]*big.Rat),
		maxPivots: 200000,
	}
}

func (s *simplex) varOf(name string) int {
	if id, ok := s.index[name]; ok {
		return id
	}
	id := s.newVar(name)
	s.index[name] = id
	return id
}

func (s *simplex) newVar(name string) int {
	id := len(s.names)
	s.names = append(s.names, name)
	s.lower = append(s.lower, nil)
	s.upper = append(s.upper, nil)
	s.val = append(s.val, new(big.Rat))
	s.isBasic = append(s.isBasic, false)
	return id
}

// addConstraint introduces a slack variable s = Σ coeffs·x with the
// given bounds (nil for unbounded sides) and returns its id.
func (s *simplex) addConstraint(coeffs map[string]*big.Int, lo, hi *big.Rat) int {
	slack := s.newVar("")
	row := make(map[int]*big.Rat, len(coeffs))
	v := new(big.Rat)
	// Sorted iteration: varOf interns ids in first-seen order and
	// Bland's rule pivots on the smallest id, so the iteration order
	// here decides the pivot sequence — and with it whether a borderline
	// instance exhausts maxPivots (Unknown) or finishes. Keep it
	// deterministic so solver statuses are reproducible across runs.
	names := make([]string, 0, len(coeffs))
	for name := range coeffs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := coeffs[name]
		x := s.varOf(name)
		cr := new(big.Rat).SetInt(c)
		if s.isBasic[x] {
			// Substitute the basic variable's row.
			for y, cy := range s.rows[x] {
				addInto(row, y, new(big.Rat).Mul(cr, cy))
			}
			v.Add(v, new(big.Rat).Mul(cr, s.val[x]))
			continue
		}
		addInto(row, x, cr)
		v.Add(v, new(big.Rat).Mul(cr, s.val[x]))
	}
	s.rows[slack] = row
	s.isBasic[slack] = true
	s.val[slack] = v
	if s.recording {
		if lo != nil {
			s.trail = append(s.trail, boundChange{x: slack, side: 0})
		}
		if hi != nil {
			s.trail = append(s.trail, boundChange{x: slack, side: 1})
		}
	}
	s.lower[slack] = lo
	s.upper[slack] = hi
	return slack
}

func addInto(row map[int]*big.Rat, x int, c *big.Rat) {
	if cur, ok := row[x]; ok {
		cur.Add(cur, c)
		if cur.Sign() == 0 {
			delete(row, x)
		}
		return
	}
	if c.Sign() != 0 {
		row[x] = c
	}
}

// setBounds tightens the bounds of a named variable; it reports false
// on an immediately empty interval.
func (s *simplex) setBounds(name string, lo, hi *big.Rat) bool {
	x := s.varOf(name)
	if lo != nil && (s.lower[x] == nil || lo.Cmp(s.lower[x]) > 0) {
		if s.recording {
			s.trail = append(s.trail, boundChange{x: x, side: 0, old: s.lower[x]})
		}
		s.lower[x] = lo
	}
	if hi != nil && (s.upper[x] == nil || hi.Cmp(s.upper[x]) < 0) {
		if s.recording {
			s.trail = append(s.trail, boundChange{x: x, side: 1, old: s.upper[x]})
		}
		s.upper[x] = hi
	}
	if s.lower[x] != nil && s.upper[x] != nil && s.lower[x].Cmp(s.upper[x]) > 0 {
		return false
	}
	if !s.isBasic[x] {
		// Clamp the nonbasic value into its bounds.
		if s.lower[x] != nil && s.val[x].Cmp(s.lower[x]) < 0 {
			s.update(x, s.lower[x])
		} else if s.upper[x] != nil && s.val[x].Cmp(s.upper[x]) > 0 {
			s.update(x, s.upper[x])
		}
	}
	return true
}

// update sets nonbasic variable x to v, adjusting all basic values.
func (s *simplex) update(x int, v *big.Rat) {
	delta := new(big.Rat).Sub(v, s.val[x])
	for b, row := range s.rows {
		if c, ok := row[x]; ok {
			s.val[b] = new(big.Rat).Add(s.val[b], new(big.Rat).Mul(c, delta))
		}
	}
	s.val[x] = new(big.Rat).Set(v)
}

// pivotAndUpdate makes basic b take value v by adjusting nonbasic x,
// then swaps their roles.
func (s *simplex) pivotAndUpdate(b, x int, v *big.Rat) {
	a := s.rows[b][x]
	theta := new(big.Rat).Sub(v, s.val[b])
	theta.Quo(theta, a)
	s.val[b] = new(big.Rat).Set(v)
	s.val[x] = new(big.Rat).Add(s.val[x], theta)
	for b2, row := range s.rows {
		if b2 == b {
			continue
		}
		if c, ok := row[x]; ok {
			s.val[b2] = new(big.Rat).Add(s.val[b2], new(big.Rat).Mul(c, theta))
		}
	}
	s.pivot(b, x)
}

// pivot swaps basic b with nonbasic x.
func (s *simplex) pivot(b, x int) {
	row := s.rows[b]
	a := row[x]
	// x = (1/a)·b - Σ_{y≠x} (c_y/a)·y
	newRow := make(map[int]*big.Rat, len(row))
	inv := new(big.Rat).Inv(a)
	newRow[b] = inv
	for y, c := range row {
		if y == x {
			continue
		}
		nc := new(big.Rat).Mul(c, inv)
		nc.Neg(nc)
		newRow[y] = nc
	}
	delete(s.rows, b)
	s.isBasic[b] = false
	s.rows[x] = newRow
	s.isBasic[x] = true
	// Substitute x in every other row.
	for b2, row2 := range s.rows {
		if b2 == x {
			continue
		}
		c, ok := row2[x]
		if !ok {
			continue
		}
		delete(row2, x)
		for y, cy := range newRow {
			addInto(row2, y, new(big.Rat).Mul(c, cy))
		}
	}
}

// check runs the simplex main loop with Bland's rule; it returns
// StatusSat, StatusUnsat, or StatusUnknown on pivot exhaustion.
func (s *simplex) check() Status {
	return s.checkCtx(nil, s.maxPivots-s.pivots)
}

// checkCtx is check with a per-call pivot budget and cooperative
// cancellation: the incremental solver re-pivots a retained tableau
// many times per session, so exhaustion must be charged per warm start
// rather than cumulatively, and a deadlined caller must get its
// Unknown back without waiting for budget exhaustion. ctx is polled
// every 32 pivots (each pivot is a full-tableau substitution, so the
// poll amortizes to noise).
func (s *simplex) checkCtx(ctx context.Context, budget int) Status {
	pivots := 0
	for {
		pivots++
		s.pivots++
		mSimplexPivots.Inc()
		if pivots > budget {
			return StatusUnknown
		}
		if ctx != nil && pivots&31 == 0 && ctx.Err() != nil {
			return StatusUnknown
		}
		b := -1
		below := false
		// Bland's rule: smallest violating basic variable. A direct
		// min-scan (no sort, no allocation) — equivalent to sorting and
		// taking the first violation, but this runs once per pivot on
		// the incremental hot path, so the constant matters.
		for id := range s.rows {
			if b >= 0 && id >= b {
				continue
			}
			if s.lower[id] != nil && s.val[id].Cmp(s.lower[id]) < 0 {
				b, below = id, true
			} else if s.upper[id] != nil && s.val[id].Cmp(s.upper[id]) > 0 {
				b, below = id, false
			}
		}
		if b < 0 {
			return StatusSat
		}
		row := s.rows[b]
		// Smallest eligible nonbasic, again by direct min-scan.
		x := -1
		for y, c := range row {
			if x >= 0 && y >= x {
				continue
			}
			if below {
				// Need to increase val[b]: increase y when c>0 (y below
				// upper), or decrease y when c<0 (y above lower).
				if c.Sign() > 0 && (s.upper[y] == nil || s.val[y].Cmp(s.upper[y]) < 0) {
					x = y
				} else if c.Sign() < 0 && (s.lower[y] == nil || s.val[y].Cmp(s.lower[y]) > 0) {
					x = y
				}
			} else {
				if c.Sign() < 0 && (s.upper[y] == nil || s.val[y].Cmp(s.upper[y]) < 0) {
					x = y
				} else if c.Sign() > 0 && (s.lower[y] == nil || s.val[y].Cmp(s.lower[y]) > 0) {
					x = y
				}
			}
		}
		if x < 0 {
			return StatusUnsat
		}
		if below {
			s.pivotAndUpdate(b, x, s.lower[b])
		} else {
			s.pivotAndUpdate(b, x, s.upper[b])
		}
	}
}

// ---------------------------------------------------------------------------
// Conjunction-level decision with integrality (branch and bound)

// extraBound is a branch-and-bound bound added on one variable.
type extraBound struct {
	name string
	lo   *big.Rat
	hi   *big.Rat
}

// checkConj decides a conjunction of linear atoms over the integers.
// On StatusSat the returned model assigns integer values to every
// named variable of the atoms.
func checkConj(atoms []LinAtom, maxDepth int) (Status, map[string]*big.Int) {
	return checkConjCtx(nil, atoms, maxDepth)
}

// checkConjCtx is checkConj with cooperative cancellation: the
// branch-and-bound tree polls ctx at every node and degrades to
// StatusUnknown once it is cancelled, so a single deep integrality
// search cannot outlive the caller's deadline.
func checkConjCtx(ctx context.Context, atoms []LinAtom, maxDepth int) (Status, map[string]*big.Int) {
	// Fast sound pre-filters: interval propagation catches most
	// contradictions from trace formulas (constant chains vs branch
	// guards) without touching the simplex.
	if icpCheck(atoms, 0) == StatusUnsat {
		return StatusUnsat, nil
	}
	// Quick GCD test for equalities: Σ cᵢxᵢ = k with gcd(cᵢ) ∤ k is
	// integer-infeasible even when rationally feasible.
	for _, a := range atoms {
		if a.Kind != AtomEq || len(a.Expr.Coeffs) == 0 {
			if a.Kind == AtomEq && len(a.Expr.Coeffs) == 0 && a.Expr.Const.Sign() != 0 {
				return StatusUnsat, nil
			}
			if a.Kind == AtomLe && len(a.Expr.Coeffs) == 0 && a.Expr.Const.Sign() > 0 {
				return StatusUnsat, nil
			}
			continue
		}
		g := new(big.Int)
		first := true
		for _, c := range a.Expr.Coeffs {
			if first {
				g.Abs(c)
				first = false
			} else {
				g.GCD(nil, nil, g, new(big.Int).Abs(c))
			}
		}
		if g.Sign() > 0 {
			rem := new(big.Int).Mod(new(big.Int).Neg(a.Expr.Const), g)
			if rem.Sign() != 0 {
				return StatusUnsat, nil
			}
		}
	}
	return branchAndBound(ctx, atoms, nil, maxDepth)
}

func branchAndBound(ctx context.Context, atoms []LinAtom, extra []extraBound, depth int) (Status, map[string]*big.Int) {
	if ctx != nil && ctx.Err() != nil {
		return StatusUnknown, nil
	}
	sx := newSimplex()
	for _, a := range atoms {
		rhs := new(big.Rat).SetInt(new(big.Int).Neg(a.Expr.Const))
		switch a.Kind {
		case AtomLe:
			sx.addConstraint(a.Expr.Coeffs, nil, rhs)
		case AtomEq:
			sx.addConstraint(a.Expr.Coeffs, rhs, rhs)
		}
	}
	for _, eb := range extra {
		if !sx.setBounds(eb.name, eb.lo, eb.hi) {
			return StatusUnsat, nil
		}
	}
	switch sx.check() {
	case StatusUnsat:
		return StatusUnsat, nil
	case StatusUnknown:
		return StatusUnknown, nil
	}
	// Rational model; find a fractional named variable.
	fracVar := ""
	var fracVal *big.Rat
	names := make([]string, 0, len(sx.index))
	for name := range sx.index {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := sx.val[sx.index[name]]
		if !v.IsInt() {
			fracVar, fracVal = name, v
			break
		}
	}
	if fracVar == "" {
		model := make(map[string]*big.Int, len(names))
		for _, name := range names {
			model[name] = new(big.Int).Set(sx.val[sx.index[name]].Num())
		}
		return StatusSat, model
	}
	if depth <= 0 {
		return StatusUnknown, nil
	}
	// Branch: x ≤ floor(v) or x ≥ floor(v)+1.
	floor := ratFloor(fracVal)
	lo := new(big.Rat).SetInt(new(big.Int).Add(floor, big.NewInt(1)))
	hi := new(big.Rat).SetInt(floor)
	st, m := branchAndBound(ctx, atoms, append(append([]extraBound{}, extra...),
		extraBound{name: fracVar, hi: hi}), depth-1)
	if st == StatusSat {
		return st, m
	}
	st2, m2 := branchAndBound(ctx, atoms, append(append([]extraBound{}, extra...),
		extraBound{name: fracVar, lo: lo}), depth-1)
	if st2 == StatusSat {
		return st2, m2
	}
	if st == StatusUnsat && st2 == StatusUnsat {
		return StatusUnsat, nil
	}
	return StatusUnknown, nil
}

// ratFloor returns ⌊r⌋ as a big.Int.
func ratFloor(r *big.Rat) *big.Int {
	out := new(big.Int)
	rem := new(big.Int)
	out.DivMod(r.Num(), r.Denom(), rem)
	return out
}
