package smt

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"pathslice/internal/faults"
	"pathslice/internal/logic"
)

// DefaultCacheSize is the entry bound NewCache applies when the caller
// passes a non-positive capacity.
const DefaultCacheSize = 1 << 16

// Cache memoizes definitive solver verdicts across queries. Keys are
// canonical serializations (logic.Key), so two queries that differ only
// in the fresh-variable counter they were generated under share one
// entry. Only Sat and Unsat verdicts are stored: they are
// limit-independent (Unsat verdicts are exact, Sat verdicts carry a
// validated model), whereas Unknown depends on the Limits in force and
// must be re-derived. A hit returns the verdict without a model — the
// model of the original solve is not transferable across the renaming
// the canonical key quotients out — so callers that need a witness must
// call Solve directly.
//
// The cache is sharded and safe for concurrent use; each shard is an
// LRU list bounded so the total entry count stays at the configured
// capacity.
type Cache struct {
	shards   []cacheShard
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	st  Status
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
// Misses counts actual decision-procedure runs issued through the
// cache (including ones whose Unknown verdict was not stored).
// The same hits/misses/evictions are mirrored process-wide into the
// obs registry as smt_cache_{hits,misses,evictions}_total; Stats
// remains the per-cache view used for per-check attribution.
type CacheStats struct {
	Hits, Misses, Evictions, Entries int64
}

// NewCache returns a cache bounded to roughly capacity entries
// (DefaultCacheSize when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	const nShards = 16
	per := (capacity + nShards - 1) / nShards
	c := &Cache{shards: make([]cacheShard, nShards), perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Solve decides f, consulting and populating the cache.
func (c *Cache) Solve(f logic.Formula) Result { return c.SolveWithLimits(f, Limits{}) }

// SolveWithLimits decides f under explicit limits, consulting and
// populating the cache. Cached verdicts are returned regardless of lim:
// they are definitive for any limit setting.
func (c *Cache) SolveWithLimits(f logic.Formula, lim Limits) Result {
	return c.SolveCtx(context.Background(), f, lim)
}

// SolveCtx decides f under ctx and explicit limits, consulting and
// populating the cache. A cancelled or deadline-expired solve returns
// StatusUnknown and is never stored, so a timeout can never poison the
// cache with a wrong verdict.
func (c *Cache) SolveCtx(ctx context.Context, f logic.Formula, lim Limits) Result {
	return c.solveVia(ctx, f, lim, SolveCtx)
}

// SolvePortfolioCtx is SolveCtx with the portfolio front-end as the
// decision procedure: same canonical keys, same lookup and store path,
// so a portfolio-populated cache is interchangeable with a
// SolveCtx-populated one.
func (c *Cache) SolvePortfolioCtx(ctx context.Context, f logic.Formula, lim Limits) Result {
	return c.solveVia(ctx, f, lim, SolvePortfolioCtx)
}

// solveVia is the shared cache path: canonical-key lookup, the
// CacheEvict fault draw, one decision-procedure run on miss, and a
// definitive-verdicts-only store.
func (c *Cache) solveVia(ctx context.Context, f logic.Formula, lim Limits, solve func(context.Context, logic.Formula, Limits) Result) Result {
	key := logic.Key(f)
	// Fault injection (docs/ROBUSTNESS.md): drop the entry before the
	// lookup, forcing a re-solve through the concurrent-eviction path.
	// Harmless for correctness — only Sat/Unsat verdicts are cached
	// and re-solving rederives them.
	if faults.Should(faults.CacheEvict) {
		c.evict(key)
	}
	if st, ok := c.peek(key); ok {
		return Result{Status: st}
	}
	r := solve(ctx, f, lim)
	if r.Status != StatusUnknown {
		c.store(key, r.Status)
	}
	return r
}

// peek looks key up, counting a hit or a miss. The batch solver uses it
// to pre-filter batches so its hit/miss accounting matches the serial
// path exactly.
func (c *Cache) peek(key string) (Status, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		sh.order.MoveToFront(el)
		st := el.Value.(*cacheEntry).st
		sh.mu.Unlock()
		c.hits.Add(1)
		mCacheHits.Inc()
		return st, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	mCacheMisses.Inc()
	return StatusUnknown, false
}

// store inserts a definitive verdict (callers must not pass Unknown),
// evicting the shard's LRU entry when over capacity.
func (c *Cache) store(key string, st Status) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, ok := sh.m[key]; !ok {
		sh.m[key] = sh.order.PushFront(&cacheEntry{key: key, st: st})
		if sh.order.Len() > c.perShard {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.m, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
			mCacheEvictions.Inc()
		}
	}
	sh.mu.Unlock()
}

// evict drops key if present (the CacheEvict fault path).
func (c *Cache) evict(key string) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		sh.order.Remove(el)
		delete(sh.m, key)
		c.evictions.Add(1)
		mCacheEvictions.Inc()
	}
	sh.mu.Unlock()
}

// CacheEntry is one exported verdict: the canonical formula key and
// whether the verdict was Sat (false means Unsat — Unknown is never
// cached, so never exported). It is the wire/disk form slicerd's
// warm-state snapshot uses.
type CacheEntry struct {
	Key string
	Sat bool
}

// Export snapshots every cached verdict, most recently used first
// within each shard. Safe to call concurrently with lookups.
func (c *Cache) Export() []CacheEntry {
	var out []CacheEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			ce := el.Value.(*cacheEntry)
			out = append(out, CacheEntry{Key: ce.key, Sat: ce.st == StatusSat})
		}
		sh.mu.Unlock()
	}
	return out
}

// Restore inserts exported verdicts back into the cache, returning how
// many were accepted. Entries with empty keys are dropped and existing
// entries are never overwritten, so restoring can add verdicts (future
// hits) but never change one: a wrong or stale record costs at most a
// miss-equivalent (an entry nothing will ever look up), never a wrong
// answer for a formula the restored process actually queries — keys
// are canonical serializations, so a key either matches the exact
// formula it encodes or matches nothing.
func (c *Cache) Restore(entries []CacheEntry) int {
	restored := 0
	for _, e := range entries {
		if e.Key == "" {
			continue
		}
		st := StatusUnsat
		if e.Sat {
			st = StatusSat
		}
		sh := c.shard(e.Key)
		sh.mu.Lock()
		if _, ok := sh.m[e.Key]; !ok {
			sh.m[e.Key] = sh.order.PushFront(&cacheEntry{key: e.Key, st: st})
			if sh.order.Len() > c.perShard {
				oldest := sh.order.Back()
				sh.order.Remove(oldest)
				delete(sh.m, oldest.Value.(*cacheEntry).key)
				c.evictions.Add(1)
				mCacheEvictions.Inc()
			}
			restored++
		}
		sh.mu.Unlock()
	}
	return restored
}

// Stats snapshots the hit/miss/eviction counters and the current entry
// count.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return s
}

// CachedSolve decides f through cache c; a nil cache falls back to the
// plain solver, so callers can thread an optional cache without
// branching.
func CachedSolve(c *Cache, f logic.Formula) Result {
	return CachedSolveCtx(context.Background(), c, f, Limits{})
}

// CachedSolveCtx is CachedSolve with a context and explicit limits: a
// nil cache falls back to SolveCtx directly.
func CachedSolveCtx(ctx context.Context, c *Cache, f logic.Formula, lim Limits) Result {
	if c == nil {
		return SolveCtx(ctx, f, lim)
	}
	return c.SolveCtx(ctx, f, lim)
}

// CachedSolvePortfolioCtx is CachedSolveCtx with the portfolio
// front-end as the decision procedure; a nil cache falls back to
// SolvePortfolioCtx directly.
func CachedSolvePortfolioCtx(ctx context.Context, c *Cache, f logic.Formula, lim Limits) Result {
	if c == nil {
		return SolvePortfolioCtx(ctx, f, lim)
	}
	return c.SolvePortfolioCtx(ctx, f, lim)
}
