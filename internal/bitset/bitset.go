// Package bitset provides a dense bit set used by the intraprocedural
// fixpoint analyses (reachability, WrBt, By) where universe sizes are
// the location/edge counts of one CFA.
package bitset

import "math/bits"

// Set is a fixed-universe bit set. The zero value is an empty set over
// an empty universe; use New for a sized one.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports membership of i.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionWith adds every element of other; it reports whether s changed.
func (s *Set) UnionWith(other *Set) bool {
	changed := false
	for i, w := range other.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectionWith removes elements not in other.
func (s *Set) IntersectionWith(other *Set) {
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Copy returns an independent copy.
func (s *Set) Copy() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for each element in ascending order; fn returning
// false stops the iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// IntersectsWith reports whether s and other share an element.
func (s *Set) IntersectsWith(other *Set) bool {
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Elements returns the members in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
