package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Count() != 0 || s.Len() != 130 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Errorf("count: %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(-1) || s.Has(1000) {
		t.Error("spurious membership")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("remove failed")
	}
	if got := s.Elements(); len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("elements: %v", got)
	}
}

func TestUnionIntersection(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	if !a.IntersectsWith(b) {
		t.Error("should intersect at 2")
	}
	c := a.Copy()
	if changed := c.UnionWith(b); !changed {
		t.Error("union should change")
	}
	if c.Count() != 3 {
		t.Errorf("union count: %d", c.Count())
	}
	if changed := c.UnionWith(b); changed {
		t.Error("second union should not change")
	}
	c.IntersectionWith(b)
	if c.Count() != 2 || !c.Has(2) || !c.Has(3) {
		t.Errorf("intersection wrong: %v", c.Elements())
	}
	c.Clear()
	if c.Count() != 0 {
		t.Error("clear failed")
	}
}

func TestForEachStops(t *testing.T) {
	s := New(10)
	for i := 0; i < 10; i++ {
		s.Add(i)
	}
	seen := 0
	s.ForEach(func(i int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("ForEach did not stop: %d", seen)
	}
}

// Property: a set built from any list of indices contains exactly the
// distinct indices.
func TestQuickMembership(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		want := make(map[int]bool)
		for _, r := range raw {
			s.Add(int(r))
			want[int(r)] = true
		}
		if s.Count() != len(want) {
			return false
		}
		for i := range want {
			if !s.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative on membership.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a1, b1 := New(256), New(256)
		for _, x := range xs {
			a1.Add(int(x))
		}
		for _, y := range ys {
			b1.Add(int(y))
		}
		u1 := a1.Copy()
		u1.UnionWith(b1)
		u2 := b1.Copy()
		u2.UnionWith(a1)
		if u1.Count() != u2.Count() {
			return false
		}
		eq := true
		u1.ForEach(func(i int) bool {
			if !u2.Has(i) {
				eq = false
				return false
			}
			return true
		})
		return eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
