package bench_test

import (
	"strings"
	"testing"

	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/synth"
)

func TestRunBenchmarkSmallProfile(t *testing.T) {
	p := synth.PaperProfiles(0.1)[0] // fcron-class, tiny
	res, err := bench.RunBenchmark(p, cegar.Options{UseSlicing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters == 0 || res.Safe+res.Err+res.Timeout != res.Clusters {
		t.Errorf("cluster accounting wrong: %+v", res)
	}
	if res.GeneratedLOC < 20 {
		t.Errorf("LOC: %d", res.GeneratedLOC)
	}
	// fcron-class has no seeded bugs: everything should be safe.
	if res.Err != 0 {
		t.Errorf("fcron-class should be all-safe, got %d errors", res.Err)
	}
}

func TestRunBenchmarkFindsSeededBugs(t *testing.T) {
	// wuftpd-class at small scale keeps its 3 seeded bugs only if the
	// scaled check count covers their indices; use a scale that does.
	p := synth.PaperProfiles(1.0)[1]
	p.CheckFns = 13 // covers seeded bug indices 2 and 11
	p.NoiseFns = 6
	res, err := bench.RunBenchmark(p, cegar.Options{
		UseSlicing: true, MaxWork: 20000, MaxRefinements: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err < 2 {
		t.Errorf("expected at least the two covered seeded bugs, got %d errors (safe %d, timeout %d)",
			res.Err, res.Safe, res.Timeout)
	}
}

func TestRenderTable1(t *testing.T) {
	p := synth.PaperProfiles(0.1)[0]
	res, err := bench.RunBenchmark(p, cegar.Options{UseSlicing: true})
	if err != nil {
		t.Fatal(err)
	}
	out := bench.RenderTable1([]*bench.BenchmarkResult{res})
	for _, want := range []string{"fcron", "Refinements", "cron daemon"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSliceSweepAndScatter(t *testing.T) {
	p := synth.PaperProfiles(0.15)[1]
	ins, err := bench.CompileProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := bench.SliceSweep(ins, []int{2, 4, 8}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 10 {
		t.Fatalf("sweep produced too few traces: %d", len(traces))
	}
	pts, skipped := bench.PointsFromTraces(traces)
	if skipped != 0 {
		t.Errorf("sweep traces should all be plottable, skipped %d", skipped)
	}
	bench.SortPoints(pts)
	// The paper's key shape: larger traces have smaller ratios. Compare
	// the mean ratio of the smallest third vs the largest third.
	third := len(pts) / 3
	if third > 0 {
		var small, large float64
		for _, p := range pts[:third] {
			small += p.Percent
		}
		for _, p := range pts[len(pts)-third:] {
			large += p.Percent
		}
		small /= float64(third)
		large /= float64(third)
		if large >= small {
			t.Errorf("slice ratio should fall as traces grow: small-third mean %.2f%%, large-third mean %.2f%%",
				small, large)
		}
	}
	out := bench.RenderScatter("Figure 5 (test)", pts, skipped)
	if !strings.Contains(out, "+") {
		t.Errorf("scatter has no points:\n%s", out)
	}
	if !strings.Contains(out, "mean slice ratio") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := bench.RenderScatter("empty", nil, 0)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty scatter: %q", out)
	}
	out = bench.RenderScatter("empty", nil, 4)
	if !strings.Contains(out, "skipped 4") {
		t.Errorf("empty scatter must still report skips: %q", out)
	}
}

func TestSummarizePoints(t *testing.T) {
	pts := []bench.Point{
		{Blocks: 100, Percent: 10},
		{Blocks: 2000, Percent: 0.5},
	}
	s := bench.SummarizePoints(pts, 0)
	for _, want := range []string{"n=2", ">1000 blocks"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "skipped") {
		t.Errorf("no skips, but summary mentions them: %q", s)
	}
	if s = bench.SummarizePoints(pts, 3); !strings.Contains(s, "skipped 3 degenerate traces") {
		t.Errorf("summary %q missing skip count", s)
	}
}

func TestPointsFromTracesCountsSkips(t *testing.T) {
	traces := []cegar.TraceStat{
		{TraceBlocks: 10, SliceBlocks: 2},
		{TraceBlocks: 0, SliceBlocks: 0}, // degenerate: never analyzed
		{TraceBlocks: 8, SliceBlocks: 8},
	}
	pts, skipped := bench.PointsFromTraces(traces)
	if len(pts) != 2 || skipped != 1 {
		t.Errorf("got %d points, %d skipped; want 2, 1", len(pts), skipped)
	}
}
