package bench

import (
	"context"
	"fmt"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// Portfolio micro-benchmarks (PR 9): the same feasibility-query corpus
// run through (a) the racing portfolio front-end vs the incremental
// engine alone, and (b) the batched group solver vs the serial
// one-query-at-a-time route. Used by cmd/benchjson for the `portfolio`
// section of BENCH_PR9.json, which `make bench-diff` gates on: zero
// verdict divergences, the portfolio never slower than incremental-only
// beyond noise, and the batched route at least 1.5x faster than serial
// on the call-heavy sweep.

// PortfolioComparison is the win-rate table plus the wall-time and
// agreement numbers for the racing front-end over a mixed query corpus.
type PortfolioComparison struct {
	Queries int `json:"queries"`
	// Decided counts queries where the stateless reference produced a
	// definitive verdict; Divergences counts reference-decided queries
	// where the portfolio disagreed or answered Unknown. Any nonzero
	// value is a soundness bug, not a performance note.
	Decided     int `json:"decided"`
	Divergences int `json:"divergences"`
	// Per-strategy win counts: which racer produced the verdict.
	WinsICP         int `json:"wins_icp"`
	WinsIncremental int `json:"wins_incremental"`
	WinsScratch     int `json:"wins_scratch"`
	// PortfolioMS is the corpus wall time through SolvePortfolioCtx;
	// IncrementalMS is the same corpus through a fresh incremental
	// solver per query (the strongest single strategy on this shape).
	PortfolioMS   float64 `json:"portfolio_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
}

// BatchComparison is one serial-vs-batched run over the call-heavy
// prefix-sharing corpus.
type BatchComparison struct {
	Queries     int     `json:"queries"`
	Divergences int     `json:"divergences"`
	SerialMS    float64 `json:"serial_ms"`
	BatchedMS   float64 `json:"batched_ms"`
	// Ratio is SerialMS / BatchedMS: how much the prefix-sharing trie
	// walk buys over solving the same queries one at a time.
	Ratio float64 `json:"ratio"`
}

// portfolioQueries builds the feasibility-query corpus from the
// guard-chain error path (GuardChainSource): the backward prefix
// conjunction at every stride-th taken assume, plus the full path. The
// prefixes are satisfiable (each disequality alone is), the full path
// is an interval contradiction (x > 1000 inside x < 500) — so the
// corpus mixes Sat queries of growing size with an ICP-refutable Unsat,
// and consecutive queries share long conjunct prefixes, exactly like
// the slice targets the pipeline batches.
func portfolioQueries(guards, stride int) ([]logic.Formula, error) {
	prog, path, err := GuardChainSetup(guards)
	if err != nil {
		return nil, err
	}
	slicer := core.New(prog)
	enc := wp.NewTraceEncoder(slicer.Prog, slicer.Alias, slicer.Addrs)
	var fs []logic.Formula
	var conj []logic.Formula
	assumes := 0
	for i := len(path) - 1; i >= 0; i-- {
		op := path[i].Op
		conj = append(conj, enc.EncodeOpBackward(op))
		if op.Kind == cfa.OpAssume {
			assumes++
			if assumes%stride == 0 {
				fs = append(fs, logic.MkAnd(append([]logic.Formula(nil), conj...)...))
			}
		}
	}
	fs = append(fs, logic.MkAnd(conj...))
	return fs, nil
}

// ComparePortfolio runs the corpus through the racing portfolio and
// through a fresh incremental solver per query, recording per-strategy
// wins and checking every verdict against the stateless reference.
func ComparePortfolio(guards, stride int) (*PortfolioComparison, error) {
	fs, err := portfolioQueries(guards, stride)
	if err != nil {
		return nil, err
	}
	var lim smt.Limits
	ctx := context.Background()

	// Reference verdicts first, outside both timed sections.
	refs := make([]smt.Status, len(fs))
	for i, f := range fs {
		refs[i] = smt.SolveCtx(ctx, f, lim).Status
	}

	cmp := &PortfolioComparison{Queries: len(fs)}
	t0 := time.Now()
	for i, f := range fs {
		r, who := smt.SolvePortfolioDetail(ctx, f, lim)
		switch who {
		case smt.StrategyICP:
			cmp.WinsICP++
		case smt.StrategyIncremental:
			cmp.WinsIncremental++
		case smt.StrategyScratch:
			cmp.WinsScratch++
		}
		if refs[i] == smt.StatusUnknown {
			continue
		}
		cmp.Decided++
		if r.Status != refs[i] {
			cmp.Divergences++
		}
	}
	cmp.PortfolioMS = float64(time.Since(t0).Microseconds()) / 1000

	t1 := time.Now()
	for _, f := range fs {
		s := smt.NewSolverWithLimits(lim)
		s.Assert(f)
		s.CheckCtx(ctx)
	}
	cmp.IncrementalMS = float64(time.Since(t1).Microseconds()) / 1000
	return cmp, nil
}

// CompareBatch times the call-heavy corpus through the serial
// per-query portfolio route and through SolveBatchCtx, which shares
// asserted prefixes across the group on one incremental solver. Both
// routes run uncached so the comparison times solving, not lookups.
func CompareBatch(guards, stride int) (*BatchComparison, error) {
	fs, err := portfolioQueries(guards, stride)
	if err != nil {
		return nil, err
	}
	var lim smt.Limits
	ctx := context.Background()

	cmp := &BatchComparison{Queries: len(fs)}
	t0 := time.Now()
	serial := make([]smt.Result, len(fs))
	for i, f := range fs {
		serial[i] = smt.SolvePortfolioCtx(ctx, f, lim)
	}
	cmp.SerialMS = float64(time.Since(t0).Microseconds()) / 1000

	t1 := time.Now()
	batched := smt.SolveBatchCtx(ctx, fs, smt.BatchOptions{Lim: lim})
	cmp.BatchedMS = float64(time.Since(t1).Microseconds()) / 1000

	for i := range fs {
		if serial[i].Status == smt.StatusUnknown || batched[i].Status == smt.StatusUnknown {
			continue
		}
		if serial[i].Status != batched[i].Status {
			cmp.Divergences++
		}
	}
	if cmp.BatchedMS > 0 {
		cmp.Ratio = cmp.SerialMS / cmp.BatchedMS
	}
	return cmp, nil
}

// BestPortfolioComparison runs ComparePortfolio reps times and keeps
// the fastest timing of each side; the deterministic columns (queries,
// wins, divergences) must agree across repetitions.
func BestPortfolioComparison(guards, stride, reps int) (*PortfolioComparison, error) {
	best, err := ComparePortfolio(guards, stride)
	if err != nil {
		return nil, err
	}
	for r := 1; r < reps; r++ {
		again, err := ComparePortfolio(guards, stride)
		if err != nil {
			return nil, err
		}
		if again.Queries != best.Queries || again.Divergences != best.Divergences {
			return nil, fmt.Errorf("bench: portfolio comparison not deterministic: %+v vs %+v", again, best)
		}
		if again.PortfolioMS < best.PortfolioMS {
			best.PortfolioMS = again.PortfolioMS
			best.WinsICP, best.WinsIncremental, best.WinsScratch =
				again.WinsICP, again.WinsIncremental, again.WinsScratch
		}
		if again.IncrementalMS < best.IncrementalMS {
			best.IncrementalMS = again.IncrementalMS
		}
	}
	return best, nil
}

// BestBatchComparison is CompareBatch, best-of-reps per side.
func BestBatchComparison(guards, stride, reps int) (*BatchComparison, error) {
	best, err := CompareBatch(guards, stride)
	if err != nil {
		return nil, err
	}
	for r := 1; r < reps; r++ {
		again, err := CompareBatch(guards, stride)
		if err != nil {
			return nil, err
		}
		if again.Queries != best.Queries || again.Divergences != best.Divergences {
			return nil, fmt.Errorf("bench: batch comparison not deterministic: %+v vs %+v", again, best)
		}
		if again.SerialMS < best.SerialMS {
			best.SerialMS = again.SerialMS
		}
		if again.BatchedMS < best.BatchedMS {
			best.BatchedMS = again.BatchedMS
		}
	}
	if best.BatchedMS > 0 {
		best.Ratio = best.SerialMS / best.BatchedMS
	}
	return best, nil
}
