package bench_test

import (
	"testing"

	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/synth"
)

// TestParallelMatchesSequential: cluster checks are independent, so the
// parallel runner must produce the same verdict counts.
func TestParallelMatchesSequential(t *testing.T) {
	p := synth.PaperProfiles(0.12)[1] // wuftpd-class, has bugs
	opts := cegar.Options{UseSlicing: true, MaxWork: 20000}
	seq, err := bench.RunBenchmark(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.RunBenchmarkParallel(p, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Safe != par.Safe || seq.Err != par.Err || seq.Timeout != par.Timeout {
		t.Errorf("verdicts differ: seq %d/%d/%d vs par %d/%d/%d",
			seq.Safe, seq.Err, seq.Timeout, par.Safe, par.Err, par.Timeout)
	}
	if seq.Refinements != par.Refinements {
		t.Errorf("refinements differ: %d vs %d", seq.Refinements, par.Refinements)
	}
	if len(seq.Checks) != len(par.Checks) {
		t.Fatalf("check counts differ")
	}
	for i := range seq.Checks {
		if seq.Checks[i].Cluster != par.Checks[i].Cluster ||
			seq.Checks[i].Verdict != par.Checks[i].Verdict {
			t.Errorf("check %d: %s/%s vs %s/%s", i,
				seq.Checks[i].Cluster, seq.Checks[i].Verdict,
				par.Checks[i].Cluster, par.Checks[i].Verdict)
		}
	}
}
