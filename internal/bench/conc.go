package bench

import (
	"fmt"
	"strings"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/wp"
)

// Concurrency twin benchmark: the same workload emitted twice, once
// with the workers spawned as threads and once with them called in
// sequence (spawn f() -> f(), join dropped). Any interleaving of the
// threaded twin executes the same per-worker operations as the
// serialized twin, so the cross-thread walk (docs/CONCURRENCY.md) has
// a like-for-like baseline: the extra cost of slicing over racy edges
// is the walked-edge ratio between the two, and cmd/benchdiff gates
// that ratio at 1.5x.

// ConcTwinConfig shapes the twin workload.
type ConcTwinConfig struct {
	// Workers is the number of spawned (or serially called) worker
	// procedures. Each touches its own global, so the racy edges are
	// the worker->main result reads plus the sync edges.
	Workers int
	// BodyOps is the count of straight-line local ops per worker body,
	// bulking up the per-thread segments the walker must traverse.
	BodyOps int
}

// DefaultConcTwinConfig is the shape `make bench-json` records:
// 3 workers x 40 body ops, ~190 trace events.
func DefaultConcTwinConfig() ConcTwinConfig {
	return ConcTwinConfig{Workers: 3, BodyOps: 40}
}

// ConcTwinSource generates the MiniC subject. Worker i reads global
// g<i> into a local, applies BodyOps increments, and writes it back;
// main initializes every global, runs the workers (spawned or
// serial), folds the results into acc, and guards the error on the
// sum — so every worker's write is demanded by the slice and must
// cross threads in the threaded twin.
func ConcTwinSource(cfg ConcTwinConfig, threaded bool) string {
	var sb strings.Builder
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "int g%d;\n", w)
	}
	sb.WriteString("int acc;\n\n")
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "void w%d() {\n  int t = g%d;\n", w, w)
		for op := 0; op < cfg.BodyOps; op++ {
			sb.WriteString("  t = t + 1;\n")
		}
		fmt.Fprintf(&sb, "  g%d = t;\n}\n\n", w)
	}
	sb.WriteString("void main() {\n")
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "  g%d = 1;\n", w)
	}
	for w := 0; w < cfg.Workers; w++ {
		if threaded {
			fmt.Fprintf(&sb, "  spawn w%d();\n", w)
		} else {
			fmt.Fprintf(&sb, "  w%d();\n", w)
		}
	}
	if threaded {
		sb.WriteString("  join;\n")
	}
	sb.WriteString("  acc = 0;\n")
	for w := 0; w < cfg.Workers; w++ {
		fmt.Fprintf(&sb, "  acc = acc + g%d;\n", w)
	}
	fmt.Fprintf(&sb, "  if (acc >= %d) {\n    error;\n  }\n}\n", cfg.Workers)
	return sb.String()
}

// ConcComparison is the twin comparison `make bench-json` records as
// the `concurrency` section; cmd/benchdiff gates WalkRatio.
type ConcComparison struct {
	Workers int `json:"workers"`
	BodyOps int `json:"body_ops"`
	// SchedSeed is the first scheduler seed whose interleaving reached
	// the error; the comparison is deterministic given the seed.
	SchedSeed uint64 `json:"sched_seed"`
	// ThreadedEvents/SerialEvents are the recorded trace lengths.
	ThreadedEvents int `json:"threaded_events"`
	SerialEvents   int `json:"serial_events"`
	// ThreadedWalked/SerialWalked are the deterministic Take
	// evaluation counts (core.Stats.WalkedEdges) of the cross-thread
	// and sequential walks; WalkRatio is their quotient, the price of
	// slicing over racy edges. cmd/benchdiff fails above 1.5.
	ThreadedWalked int     `json:"threaded_walked"`
	SerialWalked   int     `json:"serial_walked"`
	WalkRatio      float64 `json:"walk_ratio"`
	// The inter-thread phase's shape, sanity-gated nonzero so the
	// comparison cannot silently degenerate to one thread.
	Threads    int `json:"threads"`
	RacyEdges  int `json:"racy_edges"`
	Regions    int `json:"regions"`
	SliceEdges int `json:"slice_edges"`
	// Best-of-reps wall times for the two slicer walks.
	ThreadedMS float64 `json:"threaded_ms"`
	SerialMS   float64 `json:"serial_ms"`
}

// CompareConcTwin records one threaded error interleaving and the
// serialized twin's error path, slices both (best of reps timed
// runs, fresh slicer each), and reports the walked-edge ratio.
func CompareConcTwin(cfg ConcTwinConfig, reps int) (*ConcComparison, error) {
	if cfg.Workers == 0 {
		cfg = DefaultConcTwinConfig()
	}
	if reps <= 0 {
		reps = 3
	}
	tprog, err := compile.Source(ConcTwinSource(cfg, true))
	if err != nil {
		return nil, fmt.Errorf("bench: threaded twin: %w", err)
	}
	sprog, err := compile.Source(ConcTwinSource(cfg, false))
	if err != nil {
		return nil, fmt.Errorf("bench: serialized twin: %w", err)
	}

	cmpRes := &ConcComparison{Workers: cfg.Workers, BodyOps: cfg.BodyOps}

	// Record the threaded interleaving: first scheduler seed that
	// reaches the error (the guard holds under every interleaving, so
	// seed 0 already does; the sweep is belt and braces).
	var tr cfa.ConcTrace
	for seed := uint64(0); seed < 64; seed++ {
		st := interp.NewState(tprog, wp.NewAddrMap(tprog))
		res := interp.ConcRun(tprog, st, &interp.SliceInputs{}, interp.ConcRunOptions{
			RecordTrace: true, Seed: seed,
		})
		if res.ReachedError {
			tr, cmpRes.SchedSeed = res.Trace, seed
			break
		}
	}
	if tr == nil {
		return nil, fmt.Errorf("bench: no error interleaving in 64 scheduler seeds")
	}

	// The serialized twin's error path, concretely executed.
	sst := interp.NewState(sprog, wp.NewAddrMap(sprog))
	sres := interp.Run(sprog, sst, &interp.SliceInputs{}, interp.RunOptions{RecordPath: true})
	if !sres.ReachedError {
		return nil, fmt.Errorf("bench: serialized twin did not reach the error")
	}
	cmpRes.ThreadedEvents, cmpRes.SerialEvents = len(tr), len(sres.Path)

	var tcres *core.ConcResult
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		slicer := core.New(tprog)
		t0 := time.Now()
		r, err := slicer.ConcSlice(tr)
		d := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if d < best {
			best = d
		}
		tcres = r
	}
	cmpRes.ThreadedMS = float64(best.Microseconds()) / 1000
	cmpRes.ThreadedWalked = tcres.Stats.WalkedEdges
	cmpRes.Threads = tcres.Stats.Threads
	cmpRes.RacyEdges = tcres.Stats.RacyEdges
	cmpRes.Regions = tcres.Stats.Regions
	cmpRes.SliceEdges = tcres.Stats.SliceEdges

	var scres *core.Result
	cmpRes.SerialMS, scres, err = timeSlice(sprog, sres.Path, core.Options{}, reps)
	if err != nil {
		return nil, err
	}
	cmpRes.SerialWalked = scres.Stats.WalkedEdges
	if cmpRes.SerialWalked > 0 {
		cmpRes.WalkRatio = float64(cmpRes.ThreadedWalked) / float64(cmpRes.SerialWalked)
	}
	return cmpRes, nil
}
