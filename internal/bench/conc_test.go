package bench

import (
	"strings"
	"testing"
)

// TestConcTwinSources pins the twin property at the source level: the
// threaded twin differs from the serialized one only by spawn
// keywords and the join.
func TestConcTwinSources(t *testing.T) {
	cfg := DefaultConcTwinConfig()
	threaded := ConcTwinSource(cfg, true)
	serial := ConcTwinSource(cfg, false)
	despawned := strings.ReplaceAll(threaded, "spawn ", "")
	despawned = strings.ReplaceAll(despawned, "  join;\n", "")
	if despawned != serial {
		t.Fatalf("twins are not spawn/join-only apart:\n--- threaded despawned ---\n%s\n--- serial ---\n%s",
			despawned, serial)
	}
}

// TestCompareConcTwin holds the in-process comparison to the same
// bounds cmd/benchdiff gates the artifact on: a genuinely concurrent
// trace (>= 2 threads, racy edges present) whose cross-thread walk
// stays within 1.5x of the serialized twin's walked edges.
func TestCompareConcTwin(t *testing.T) {
	c, err := CompareConcTwin(DefaultConcTwinConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Threads < 2 {
		t.Errorf("threaded twin ran %d threads, want >= 2", c.Threads)
	}
	if c.RacyEdges == 0 {
		t.Error("threaded twin produced no racy edges — the twin is not concurrent")
	}
	if c.SerialWalked == 0 || c.ThreadedWalked == 0 {
		t.Fatalf("degenerate walk counts: threaded %d, serial %d", c.ThreadedWalked, c.SerialWalked)
	}
	if c.WalkRatio > 1.5 {
		t.Errorf("cross-thread walk visited %.2fx the serialized twin's edges (%d vs %d), gate is 1.5x",
			c.WalkRatio, c.ThreadedWalked, c.SerialWalked)
	}
}
