package bench

import (
	"fmt"
	"strings"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// Early-unsat-stop micro-benchmark (§4.2): the same backward loop run
// two ways — through the incremental solver (assert the delta, check)
// and as the from-scratch baseline that re-solves the whole asserted
// prefix at every check. Used by BenchmarkEarlyUnsatStop at the repo
// root and by cmd/benchjson for BENCH_PR5.json.

// GuardChainSource returns a MiniC program whose error path carries
// guards+2 taken assumes before the backward pass reaches the
// operation that makes the prefix unsatisfiable: the error is guarded
// by x > 1000 deep inside an x < 500 region, separated by a chain of
// individually satisfiable x == -i else-branches. Traversed backward,
// every disequality checks satisfiable; only the x < 500 assume — the
// second-to-last operation — contradicts, so an early-stop slicer
// performs one satisfiability check per guard over a growing
// conjunction. This is the worst case the incremental solver targets.
func GuardChainSource(guards int) string {
	var sb strings.Builder
	sb.WriteString("int x;\n\nvoid main() {\n  x = nondet();\n  if (x < 500) {\n")
	for i := 1; i <= guards; i++ {
		fmt.Fprintf(&sb, "    if (x == -%d) {\n      x = 0;\n    }\n", i)
	}
	sb.WriteString("    if (x > 1000) {\n      error;\n    }\n  }\n}\n")
	return sb.String()
}

// GuardChainSetup compiles GuardChainSource(guards) and finds its
// error path.
func GuardChainSetup(guards int) (*cfa.Program, cfa.Path, error) {
	prog, err := compile.Source(GuardChainSource(guards))
	if err != nil {
		return nil, nil, err
	}
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil {
		return nil, nil, fmt.Errorf("bench: guard chain has no error path")
	}
	return prog, path, nil
}

// EarlyStopIncremental slices the path with the early-unsat-stop
// optimization (checking after every taken assume) and returns the
// slicer result; the caller asserts KnownInfeasible.
func EarlyStopIncremental(prog *cfa.Program, path cfa.Path) (*core.Result, error) {
	slicer := core.NewWithOptions(prog, core.Options{EarlyUnsatStop: true, CheckEvery: 1})
	return slicer.Slice(path)
}

// EarlyStopScratch replays the pre-incremental early-stop loop: walk
// the path backward, encode every operation, and at each assume
// re-solve the conjunction of everything asserted so far from scratch.
// It returns the number of checks performed before the unsatisfiable
// prefix was detected, or an error if the path never became
// unsatisfiable.
func EarlyStopScratch(prog *cfa.Program, path cfa.Path) (int, error) {
	slicer := core.New(prog)
	enc := wp.NewTraceEncoder(slicer.Prog, slicer.Alias, slicer.Addrs)
	var fs []logic.Formula
	checks := 0
	for i := len(path) - 1; i >= 0; i-- {
		op := path[i].Op
		fs = append(fs, enc.EncodeOpBackward(op))
		if op.Kind == cfa.OpAssume {
			checks++
			if smt.Solve(logic.MkAnd(fs...)).Status == smt.StatusUnsat {
				return checks, nil
			}
		}
	}
	return checks, fmt.Errorf("bench: scratch loop never found the prefix unsatisfiable")
}

// EarlyStopComparison is one timed incremental-vs-scratch run.
type EarlyStopComparison struct {
	Guards        int     `json:"guards"`
	TakenAssumes  int     `json:"taken_assumes"`
	SolverChecks  int     `json:"solver_checks"`
	IncrementalMS float64 `json:"incremental_ms"`
	ScratchMS     float64 `json:"scratch_ms"`
	Speedup       float64 `json:"speedup"`
}

// CompareEarlyStop times one pass of each loop variant over the same
// guard-chain path.
func CompareEarlyStop(guards int) (*EarlyStopComparison, error) {
	prog, path, err := GuardChainSetup(guards)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := EarlyStopIncremental(prog, path)
	incMS := float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		return nil, err
	}
	if !res.KnownInfeasible {
		return nil, fmt.Errorf("bench: incremental loop missed the unsatisfiable prefix")
	}
	t1 := time.Now()
	if _, err := EarlyStopScratch(prog, path); err != nil {
		return nil, err
	}
	scrMS := float64(time.Since(t1).Microseconds()) / 1000
	cmp := &EarlyStopComparison{
		Guards:        guards,
		TakenAssumes:  res.Stats.TakenAssume,
		SolverChecks:  res.Stats.SolverChecks,
		IncrementalMS: incMS,
		ScratchMS:     scrMS,
	}
	if incMS > 0 {
		cmp.Speedup = scrMS / incMS
	}
	return cmp, nil
}
