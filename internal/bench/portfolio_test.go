package bench

import "testing"

// The portfolio micro-benchmarks back the BENCH_PR9.json `portfolio`
// section; these tests pin their correctness properties (agreement,
// corpus shape, batch advantage) at a small scale so `go test` stays
// fast — the artifact run uses larger corpora.

func TestComparePortfolioAgrees(t *testing.T) {
	cmp, err := ComparePortfolio(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Divergences != 0 {
		t.Fatalf("portfolio diverged from the stateless reference on %d/%d queries", cmp.Divergences, cmp.Decided)
	}
	if cmp.Decided == 0 {
		t.Fatal("corpus degenerate: reference decided nothing")
	}
	if wins := cmp.WinsICP + cmp.WinsIncremental + cmp.WinsScratch; wins != cmp.Queries {
		t.Fatalf("win table covers %d of %d queries — some query went Unknown", wins, cmp.Queries)
	}
}

func TestCompareBatchAgreesAndShares(t *testing.T) {
	cmp, err := CompareBatch(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Divergences != 0 {
		t.Fatalf("batched route diverged from serial on %d/%d queries", cmp.Divergences, cmp.Queries)
	}
	if cmp.Queries < 10 {
		t.Fatalf("corpus too small to be call-heavy: %d queries", cmp.Queries)
	}
	// The timing gate itself lives in benchdiff over the artifact run;
	// here just require the batch not to be pathologically slower.
	if cmp.Ratio != 0 && cmp.Ratio < 0.5 {
		t.Fatalf("batched route %.2fx vs serial — prefix sharing is not engaging", cmp.Ratio)
	}
}
