// Package bench runs the paper's evaluation (§5) over the synthetic
// benchmark suite and renders its artifacts: Table 1 (per-benchmark
// check outcomes, times, refinement counts), Figure 5 (trace size vs
// slice ratio across application benchmarks), and Figure 6 (the same
// for the gcc-class subject), plus the ablations listed in DESIGN.md.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
	"pathslice/internal/obs"
	"pathslice/internal/synth"
)

// CheckOutcome is the result of one clustered check.
type CheckOutcome struct {
	Cluster     string
	Verdict     cegar.Verdict
	Work        int
	Refinements int
	Duration    time.Duration
	Traces      []cegar.TraceStat
	// SolverCalls counts the decision-procedure runs the abstract post
	// actually issued; CacheHits/CacheMisses are the solver-cache
	// counters and PostMemoHits the abstract-post memo hits, summed
	// over the cluster's checks.
	SolverCalls  int64
	CacheHits    int64
	CacheMisses  int64
	PostMemoHits int64
}

// BenchmarkResult aggregates one benchmark's checks (one Table 1 row).
type BenchmarkResult struct {
	Profile      synth.Profile
	GeneratedLOC int
	Procedures   int
	Clusters     int
	Sites        int

	Safe, Err, Timeout int
	TotalTime          time.Duration
	MaxTime            time.Duration
	Refinements        int
	// SolverCalls/CacheHits/CacheMisses/PostMemoHits aggregate the
	// per-check solver and cache counters over the whole row.
	SolverCalls  int64
	CacheHits    int64
	CacheMisses  int64
	PostMemoHits int64

	Checks []CheckOutcome
	// Traces pools every abstract counterexample analyzed (Figure 5/6
	// raw data).
	Traces []cegar.TraceStat
}

// CompileProfile generates and compiles a profile into an instrumented
// program ready for checking.
func CompileProfile(p synth.Profile) (*instrument.Result, error) {
	src := synth.Generate(p)
	sp := obs.StartSpan(obs.PhaseParse)
	prog, err := parser.Parse([]byte(src))
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench %s: parse: %w", p.Name, err)
	}
	ins, err := instrument.Instrument(prog)
	if err != nil {
		return nil, fmt.Errorf("bench %s: instrument: %w", p.Name, err)
	}
	return ins, nil
}

// RunBenchmark checks every cluster of the profile's program and
// aggregates the row, sequentially.
func RunBenchmark(p synth.Profile, opts cegar.Options) (*BenchmarkResult, error) {
	return RunBenchmarkParallel(p, opts, 1)
}

// RunBenchmarkParallel checks clusters with the given worker count: a
// fixed pool of workers goroutines drains a job channel, so at most
// workers goroutines ever exist regardless of cluster count. Checks are
// independent (each gets its own program copy and checker), so the
// row's verdicts are identical to the sequential run; only the
// wall-clock Total/Max times change meaning (they still sum and max the
// per-check durations, not the elapsed wall time).
func RunBenchmarkParallel(p synth.Profile, opts cegar.Options, workers int) (*BenchmarkResult, error) {
	if workers <= 0 {
		workers = 1
	}
	ins, err := CompileProfile(p)
	if err != nil {
		return nil, err
	}
	src := synth.Generate(p)
	res := &BenchmarkResult{
		Profile:      p,
		GeneratedLOC: strings.Count(src, "\n") + 1,
		Clusters:     len(ins.Clusters),
		Sites:        ins.TotalSites,
		Procedures:   len(ins.Prog.Funcs),
	}
	outs := make([]*CheckOutcome, len(ins.Clusters))
	errs := make([]error, len(ins.Clusters))
	if workers > len(ins.Clusters) {
		workers = len(ins.Clusters)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i], errs[i] = runCluster(ins, ins.Clusters[i].Function, opts)
			}
		}()
	}
	for i := range ins.Clusters {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out := outs[i]
		res.Checks = append(res.Checks, *out)
		switch out.Verdict {
		case cegar.VerdictSafe:
			res.Safe++
		case cegar.VerdictUnsafe:
			res.Err++
		default:
			res.Timeout++
		}
		if out.Verdict != cegar.VerdictTimeout && out.Verdict != cegar.VerdictDiverged {
			res.TotalTime += out.Duration
			if out.Duration > res.MaxTime {
				res.MaxTime = out.Duration
			}
		}
		res.Refinements += out.Refinements
		res.SolverCalls += out.SolverCalls
		res.CacheHits += out.CacheHits
		res.CacheMisses += out.CacheMisses
		res.PostMemoHits += out.PostMemoHits
		res.Traces = append(res.Traces, out.Traces...)
	}
	// One telemetry event per Table-1 row, so a -trace-out log of a
	// benchmark run carries the same aggregates the table prints.
	obs.Event("bench-row", map[string]any{
		"profile":        p.Name,
		"clusters":       res.Clusters,
		"safe":           res.Safe,
		"error":          res.Err,
		"timeout":        res.Timeout,
		"refinements":    res.Refinements,
		"solver_calls":   res.SolverCalls,
		"cache_hits":     res.CacheHits,
		"cache_misses":   res.CacheMisses,
		"post_memo_hits": res.PostMemoHits,
		"total_ms":       res.TotalTime.Milliseconds(),
	})
	return res, nil
}

// CacheHitRate returns the solver-cache hit fraction for the row (0
// when no cached queries ran).
func (r *BenchmarkResult) CacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// runCluster checks one cluster (all error locations of one function's
// sites, checked together like the paper).
func runCluster(ins *instrument.Result, fn string, opts cegar.Options) (*CheckOutcome, error) {
	clusterProg, err := instrument.ForCluster(ins.Prog, fn)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(obs.PhaseTypecheck)
	info, err := types.Check(clusterProg)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("cluster %s: typecheck: %w", fn, err)
	}
	sp = obs.StartSpan(obs.PhaseCFA)
	cprog, err := cfa.Build(info)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("cluster %s: cfa: %w", fn, err)
	}
	out := &CheckOutcome{Cluster: fn, Verdict: cegar.VerdictSafe}
	start := time.Now()
	checker := cegar.New(cprog, opts)
	for _, loc := range cprog.ErrorLocs() {
		r := checker.Check(loc)
		out.Work += r.Work
		out.Refinements += r.Refinements
		out.SolverCalls += r.SolverCalls
		out.CacheHits += r.CacheHits
		out.CacheMisses += r.CacheMisses
		out.PostMemoHits += r.PostMemoHits
		out.Traces = append(out.Traces, r.Traces...)
		switch r.Verdict {
		case cegar.VerdictUnsafe:
			out.Verdict = cegar.VerdictUnsafe
		case cegar.VerdictTimeout, cegar.VerdictDiverged, cegar.VerdictUnknown:
			// Every undecided flavor rolls up into the table's T column:
			// the cluster is not proven safe, but no bug is claimed.
			if out.Verdict != cegar.VerdictUnsafe {
				out.Verdict = cegar.VerdictTimeout
			}
		}
		if out.Verdict == cegar.VerdictUnsafe {
			break // first violation settles the cluster, like the paper's error rows
		}
	}
	out.Duration = time.Since(start)
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 1 rendering

// RenderTable1 renders the measured rows next to the paper's reported
// numbers. Absolute times are not comparable (different hardware,
// substituted subjects); the comparison is the *shape*: which rows are
// all-safe, which contain errors, which time out, and how refinement
// counts scale.
func RenderTable1(rows []*BenchmarkResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: benchmarks and analysis results (measured | paper)\n")
	fmt.Fprintf(&b, "%-9s %-18s %9s %6s %9s %11s %11s %10s %9s %12s\n",
		"Program", "Description", "GenLOC", "Procs", "Checks",
		"Results", "PaperRes", "TotalTime", "MaxTime", "Refinements")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-18s %9d %6d %5d/%-3d %4d/%d/%-4d %11s %10.2fs %8.2fs %5d | %3d\n",
			r.Profile.Name, r.Profile.Description, r.GeneratedLOC, r.Procedures,
			r.Clusters, r.Sites,
			r.Safe, r.Err, r.Timeout,
			r.Profile.PaperResults,
			r.TotalTime.Seconds(), r.MaxTime.Seconds(),
			r.Refinements, r.Profile.PaperRefinements)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 5 and 6: slice-ratio scatter data

// Point is one counterexample trace: its size and its slice's relative
// size.
type Point struct {
	Blocks  int     // original trace size in basic blocks (x)
	Percent float64 // slice size as % of original (y, log scale)
}

// mSkipped counts data silently dropped from the figures: degenerate
// zero-block trace stats and error locations the sweep found no path
// to. A figure that says "n=300 traces" while 40 were skipped is
// misleading, so the count is surfaced both here and in the scatter
// footer.
var mSkipped = obs.Default().Counter("bench_skipped_total")

// PointsFromTraces converts recorded trace stats to scatter points.
// Degenerate traces are dropped; the second result says how many, so
// callers can report the omission rather than hide it.
func PointsFromTraces(traces []cegar.TraceStat) ([]Point, int) {
	var pts []Point
	skipped := 0
	for _, ts := range traces {
		if ts.TraceBlocks <= 0 {
			skipped++
			mSkipped.Add(1)
			continue
		}
		pct := ts.RatioPercent()
		if pct <= 0 {
			pct = 0.01 // clamp empty slices to the plot floor
		}
		pts = append(pts, Point{Blocks: ts.TraceBlocks, Percent: pct})
	}
	return pts, skipped
}

// SliceSweep generates counterexample traces of increasing length
// directly from the CFA (candidate paths from an imprecise analysis,
// like the abstract counterexamples BLAST's DFS produces) and slices
// each, producing the scatter data for the large-trace regime. The
// unrollings list controls trace lengths; maxTraces bounds the total.
func SliceSweep(ins *instrument.Result, unrollings []int, maxTraces int) ([]cegar.TraceStat, error) {
	sp := obs.StartSpan(obs.PhaseTypecheck)
	info, err := types.Check(ins.Prog)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartSpan(obs.PhaseCFA)
	cprog, err := cfa.Build(info)
	sp.End()
	if err != nil {
		return nil, err
	}
	slicer := core.New(cprog)
	var out []cegar.TraceStat
	// Location-outer so every unrolling level is represented even when
	// maxTraces truncates the sweep.
	for _, loc := range cprog.ErrorLocs() {
		for _, k := range unrollings {
			if len(out) >= maxTraces {
				return out, nil
			}
			path := cfa.WalkLongPath(cprog, loc, k, 0)
			if path == nil {
				path = cfa.FindPath(cprog, loc, cfa.FindOptions{})
			}
			if path == nil {
				mSkipped.Add(1)
				continue
			}
			sr, err := slicer.Slice(path)
			if err != nil {
				return nil, err
			}
			out = append(out, cegar.TraceStat{
				TraceEdges:  sr.Stats.InputEdges,
				TraceBlocks: sr.Stats.InputBlocks,
				SliceEdges:  sr.Stats.SliceEdges,
				SliceBlocks: sr.Stats.SliceBlocks,
			})
		}
	}
	return out, nil
}

// RenderScatter renders an ASCII log-log scatter like Figures 5 and 6:
// x = trace size in basic blocks, y = slice size as % of the original.
// skipped is the count PointsFromTraces dropped for this data set; it
// appears in the footer so the figure states its own coverage.
func RenderScatter(title string, pts []Point, skipped int) string {
	const (
		cols = 64
		rows = 16
	)
	if len(pts) == 0 {
		if skipped > 0 {
			return fmt.Sprintf("%s: (no data; skipped %d degenerate traces)\n", title, skipped)
		}
		return title + ": (no data)\n"
	}
	// x: log10 from 1 to max; y: log10 percent from 0.01 to 100.
	maxBlocks := 1
	for _, p := range pts {
		if p.Blocks > maxBlocks {
			maxBlocks = p.Blocks
		}
	}
	xMaxLog := log10f(float64(maxBlocks))
	if xMaxLog < 1 {
		xMaxLog = 1
	}
	const yMinLog, yMaxLog = -2.0, 2.0 // 0.01% .. 100%
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range pts {
		x := int(log10f(float64(p.Blocks)) / xMaxLog * float64(cols-1))
		yl := log10f(p.Percent)
		if yl < yMinLog {
			yl = yMinLog
		}
		if yl > yMaxLog {
			yl = yMaxLog
		}
		y := int((yMaxLog - yl) / (yMaxLog - yMinLog) * float64(rows-1))
		if x >= 0 && x < cols && y >= 0 && y < rows {
			grid[y][x] = '+'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "slice size (%% of original, log scale) vs trace size (basic blocks, log scale)\n")
	labels := []string{"100%", " 10%", "  1%", "0.1%", ".01%"}
	for i, row := range grid {
		label := "     "
		if i%((rows-1)/(len(labels)-1)) == 0 {
			idx := i / ((rows - 1) / (len(labels) - 1))
			if idx < len(labels) {
				label = labels[idx]
			}
		}
		fmt.Fprintf(&b, "%5s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "       1%sblocks≈%d\n", strings.Repeat(" ", cols-12), maxBlocks)
	fmt.Fprintf(&b, "%s\n", SummarizePoints(pts, skipped))
	return b.String()
}

// SummarizePoints reports the headline statistics the paper quotes:
// average ratio, the max, and the ratio for large traces — plus how
// many traces were skipped as degenerate, if any.
func SummarizePoints(pts []Point, skipped int) string {
	if len(pts) == 0 {
		return "no traces"
	}
	var sum, maxPct float64
	var largeSum float64
	largeN := 0
	maxBlocks, maxOps := 0, 0
	for _, p := range pts {
		sum += p.Percent
		if p.Percent > maxPct {
			maxPct = p.Percent
		}
		if p.Blocks > 1000 {
			largeSum += p.Percent
			largeN++
		}
		if p.Blocks > maxBlocks {
			maxBlocks = p.Blocks
			maxOps = int(float64(p.Blocks) * p.Percent / 100)
		}
	}
	s := fmt.Sprintf("n=%d traces; mean slice ratio %.2f%%; max %.2f%%; largest trace %d blocks -> %d blocks",
		len(pts), sum/float64(len(pts)), maxPct, maxBlocks, maxOps)
	if largeN > 0 {
		s += fmt.Sprintf("; traces >1000 blocks: mean %.3f%% (n=%d)", largeSum/float64(largeN), largeN)
	}
	if skipped > 0 {
		s += fmt.Sprintf("; skipped %d degenerate traces", skipped)
	}
	return s
}

// SortPoints orders points by trace size (for stable output).
func SortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Blocks < pts[j].Blocks })
}

func log10f(x float64) float64 {
	if x <= 0 {
		return -10
	}
	return math.Log10(x)
}
