package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
)

// Gcc-class summary sweep: the frame-summary benchmark behind
// BenchmarkSummarizedSlice and the `summary_sweep` series of
// BENCH_PR6.json. The subject is a program whose error trace is
// dominated by deep, repeated call chains — the shape of the paper's
// gcc counterexamples (§5, Figure 6), where a depth-first model
// checker unrolls the same procedures thousands of times. A plain
// backward walk pays the full Take evaluation on every edge of every
// repetition; the context-keyed summaries (internal/summ) pay it once
// per distinct (frame, projected live set) and replay the memoized
// decisions afterwards, so doubling the trace length grows slice time
// by well under 2x. `make bench-diff` gates on exactly that ratio.

// CallHeavyConfig shapes the gcc-class subject for the summary sweep.
type CallHeavyConfig struct {
	// Chains is how many distinct call chains the main loop invokes
	// per iteration. Every chain is relevant (its leaf increments the
	// guarded variable), so every frame is entered by the backward
	// walk rather than skipped at an untaken return.
	Chains int
	// Depth is the number of nested functions per chain; summaries for
	// inner frames compose into the enclosing recording, so the hit at
	// the chain head covers the whole subtree.
	Depth int
	// BodyOps is the count of straight-line noise assignments in each
	// chain's leaf. They write a variable nothing reads, so they bulk
	// up the frame the baseline must walk while staying out of the
	// slice — the summarized replay cost is O(kept), not O(frame).
	BodyOps int
}

// DefaultGccConfig is the sweep shape used by `make bench-json`:
// roughly 330 trace operations per loop iteration, of which only ~60
// land in the slice.
func DefaultGccConfig() CallHeavyConfig {
	return CallHeavyConfig{Chains: 4, Depth: 6, BodyOps: 40}
}

// CallHeavySource generates the MiniC subject. Each chain c is
// main -> c<i>f0 -> ... -> c<i>f<Depth-1>; the leaf performs BodyOps
// noise writes to a dead variable and one increment of the guarded
// accumulator x. The loop bound is far above any realistic unrolling,
// so WalkLongPath's budget k alone controls trace length.
func CallHeavySource(cfg CallHeavyConfig) string {
	var sb strings.Builder
	sb.WriteString("int x;\nint noise;\n\n")
	for c := 0; c < cfg.Chains; c++ {
		// Leaf first: MiniC callees must be defined before use.
		fmt.Fprintf(&sb, "void c%df%d() {\n", c, cfg.Depth-1)
		for op := 0; op < cfg.BodyOps; op++ {
			fmt.Fprintf(&sb, "  noise = noise + %d;\n", op+1)
		}
		sb.WriteString("  x = x + 1;\n}\n\n")
		for d := cfg.Depth - 2; d >= 0; d-- {
			fmt.Fprintf(&sb, "void c%df%d() {\n  noise = noise * 2;\n  c%df%d();\n}\n\n", c, d, c, d+1)
		}
	}
	sb.WriteString("void main() {\n  x = 0;\n  noise = 0;\n  for (int i = 0; i < 1000000; i = i + 1) {\n")
	for c := 0; c < cfg.Chains; c++ {
		fmt.Fprintf(&sb, "    c%df0();\n", c)
	}
	sb.WriteString("  }\n  if (x > 1000000) {\n    error;\n  }\n}\n")
	return sb.String()
}

// CallHeavySetup compiles the subject and returns the program plus its
// error location (the WalkLongPath target).
func CallHeavySetup(cfg CallHeavyConfig) (*cfa.Program, *cfa.Loc, error) {
	prog, err := compile.Source(CallHeavySource(cfg))
	if err != nil {
		return nil, nil, err
	}
	errs := prog.ErrorLocs()
	if len(errs) == 0 {
		return nil, nil, fmt.Errorf("bench: call-heavy subject has no error location")
	}
	return prog, errs[0], nil
}

// SummarySweepRow is one trace-length point of the sweep.
type SummarySweepRow struct {
	Unroll     int `json:"unroll"`
	TraceOps   int `json:"trace_ops"`
	SliceEdges int `json:"slice_edges"`
	// BaselineWalked/SummarizedWalked are the deterministic Take
	// evaluation counts (core.Stats.WalkedEdges) of the two walks.
	// The summarized series is the machine-checked sublinearity claim:
	// cmd/benchdiff requires its per-doubling growth to stay under
	// 1.8x, which wall time — noisy on shared hosts — could not gate
	// reliably.
	BaselineWalked   int     `json:"baseline_walked"`
	SummarizedWalked int     `json:"summarized_walked"`
	BaselineMS       float64 `json:"baseline_ms"`
	SummarizedMS     float64 `json:"summarized_ms"`
	Speedup          float64 `json:"speedup"`
	SummaryHits      int     `json:"summary_hits"`
	SummaryMisses    int     `json:"summary_misses"`
	StreamPeakFrames int     `json:"stream_peak_frames"`
}

// SummarySweep slices one WalkLongPath trace per unrolling bound, each
// both ways — plain walk and summarized — and reports the better of
// reps timed runs per variant (fresh slicer each run: the memo warms
// within a trace, not across runs, so the sublinearity shown is the
// honest cold-slicer curve). Each trace is also round-tripped through
// a PSTRC file and sliced with SliceStream to record the bounded
// resident-frame peak and to cross-check that the streamed slice is
// identical. Rows are gated by cmd/benchdiff: the per-doubling growth
// of SummarizedWalked must stay under 1.8x.
func SummarySweep(cfg CallHeavyConfig, unrolls []int, reps int) ([]SummarySweepRow, error) {
	if reps <= 0 {
		reps = 3
	}
	prog, target, err := CallHeavySetup(cfg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "summsweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []SummarySweepRow
	for _, k := range unrolls {
		path := cfa.WalkLongPath(prog, target, k, 0)
		if path == nil {
			return nil, fmt.Errorf("bench: no length-%d walk to the error location", k)
		}
		row := SummarySweepRow{Unroll: k, TraceOps: len(path)}

		var base, summ *core.Result
		row.BaselineMS, base, err = timeSlice(prog, path, core.Options{}, reps)
		if err != nil {
			return nil, err
		}
		row.SummarizedMS, summ, err = timeSlice(prog, path, core.Options{Summaries: true}, reps)
		if err != nil {
			return nil, err
		}
		if base.Stats.SliceEdges != summ.Stats.SliceEdges {
			return nil, fmt.Errorf("bench: summarized slice diverged at k=%d: %d edges vs %d",
				k, summ.Stats.SliceEdges, base.Stats.SliceEdges)
		}
		row.SliceEdges = base.Stats.SliceEdges
		row.BaselineWalked = base.Stats.WalkedEdges
		row.SummarizedWalked = summ.Stats.WalkedEdges
		row.SummaryHits = summ.Stats.SummaryHits
		row.SummaryMisses = summ.Stats.SummaryMisses
		if row.SummarizedMS > 0 {
			row.Speedup = row.BaselineMS / row.SummarizedMS
		}

		traceFile := filepath.Join(dir, fmt.Sprintf("k%d.pstrc", k))
		if err := cfa.WriteTraceFile(traceFile, prog, path); err != nil {
			return nil, err
		}
		r, err := cfa.OpenTraceFile(traceFile, prog)
		if err != nil {
			return nil, err
		}
		streamed, err := core.NewWithOptions(prog, core.Options{Summaries: true}).SliceStream(context.Background(), r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if streamed.Stats.SliceEdges != base.Stats.SliceEdges {
			return nil, fmt.Errorf("bench: streamed slice diverged at k=%d: %d edges vs %d",
				k, streamed.Stats.SliceEdges, base.Stats.SliceEdges)
		}
		row.StreamPeakFrames = r.FramesPeak()
		rows = append(rows, row)
	}
	return rows, nil
}

// timeSlice runs reps cold slices of path under opts and returns the
// fastest wall time in milliseconds plus the (identical) last result.
func timeSlice(prog *cfa.Program, path cfa.Path, opts core.Options, reps int) (float64, *core.Result, error) {
	best := time.Duration(1<<63 - 1)
	var res *core.Result
	for i := 0; i < reps; i++ {
		slicer := core.NewWithOptions(prog, opts)
		t0 := time.Now()
		r, err := slicer.Slice(path)
		d := time.Since(t0)
		if err != nil {
			return 0, nil, err
		}
		if d < best {
			best = d
		}
		res = r
	}
	return float64(best.Microseconds()) / 1000, res, nil
}

// RenderSummarySweep formats the sweep as an aligned table for
// EXPERIMENTS.md and the experiments command.
func RenderSummarySweep(rows []SummarySweepRow) string {
	var sb strings.Builder
	sb.WriteString("trace_ops  slice  walked(base)  walked(summ)  baseline_ms  summarized_ms  speedup  hits   misses  peak_frames\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%9d  %5d  %12d  %12d  %11.2f  %13.2f  %6.1fx  %5d  %6d  %11d\n",
			r.TraceOps, r.SliceEdges, r.BaselineWalked, r.SummarizedWalked,
			r.BaselineMS, r.SummarizedMS, r.Speedup,
			r.SummaryHits, r.SummaryMisses, r.StreamPeakFrames)
	}
	return sb.String()
}
