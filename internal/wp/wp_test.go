package wp_test

import (
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/interp"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// setup compiles src and returns the program plus the analyses the
// encoder needs.
func setup(t *testing.T, src string) (*cfa.Program, *alias.Info, *wp.AddrMap) {
	t.Helper()
	prog := compile.MustSource(src)
	return prog, alias.Analyze(prog), wp.NewAddrMap(prog)
}

// pathToError finds a path to the first error location.
func pathToError(t *testing.T, prog *cfa.Program, long bool) cfa.Path {
	t.Helper()
	p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: long})
	if p == nil {
		t.Fatal("no path to error location")
	}
	return p
}

// encodePath encodes a path's trace and returns encoder + formula.
func encodePath(prog *cfa.Program, al *alias.Info, addrs *wp.AddrMap, p cfa.Path) (*wp.TraceEncoder, logic.Formula) {
	enc := wp.NewTraceEncoder(prog, al, addrs)
	return enc, enc.EncodeTrace(p.Ops())
}

func TestFeasibleStraightTrace(t *testing.T) {
	prog, al, addrs := setup(t, `
		int a;
		void main() {
			a = nondet();
			if (a > 5) { error; }
		}`)
	p := pathToError(t, prog, false)
	enc, f := encodePath(prog, al, addrs, p)
	r := smt.Solve(f)
	if r.Status != smt.StatusSat {
		t.Fatalf("trace should be feasible: %s\n%s", r.Status, f)
	}
	// The model's initial state must actually execute the trace.
	st := interp.NewState(prog, addrs)
	init := enc.DecodeInitialState(r.Model, prog)
	for k, v := range init {
		st.Set(k, v)
	}
	// Nondet inputs come from the model's $in variables in order.
	var ins []int64
	for i := 1; i <= 10; i++ {
		ins = append(ins, r.Model[inName(i)])
	}
	if !st.CanExecuteTrace(p.Ops(), &interp.SliceInputs{Vals: ins}) {
		t.Fatal("solver model does not execute the trace in the interpreter")
	}
}

func inName(i int) string {
	if i < 10 {
		return "$in" + string(rune('0'+i))
	}
	return "$in1" + string(rune('0'+i-10))
}

func TestInfeasibleTrace(t *testing.T) {
	prog, al, addrs := setup(t, `
		int a;
		void main() {
			a = 1;
			if (a == 0) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusUnsat {
		t.Fatalf("trace must be infeasible: %s\n%s", r.Status, f)
	}
}

func TestLoopUnrollingInfeasibility(t *testing.T) {
	// The paper's Ex2 phenomenon: a single unrolling of a 1000-bound
	// loop is infeasible.
	prog, al, addrs := setup(t, `
		void main() {
			int i = 1;
			while (i <= 3) { i = i + 1; }
			if (i == 100) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusUnsat {
		t.Fatalf("want unsat (i can only be 4 at loop exit): %s", r.Status)
	}
}

func TestSSAVersioning(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x;
		void main() {
			x = 1;
			x = x + 1;
			if (x == 2) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusSat {
		t.Fatalf("x goes 1 -> 2; trace feasible: %s\n%s", r.Status, f)
	}
	// Target the wrong final value.
	prog2, al2, addrs2 := setup(t, `
		int x;
		void main() {
			x = 1;
			x = x + 1;
			if (x == 3) { error; }
		}`)
	p2 := pathToError(t, prog2, false)
	enc2 := wp.NewTraceEncoder(prog2, al2, addrs2)
	f2 := enc2.EncodeTrace(p2.Ops())
	if r := smt.Solve(f2); r.Status != smt.StatusUnsat {
		t.Fatalf("want unsat: %s", r.Status)
	}
}

func TestPointerStoreSingleTarget(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x; int *p;
		void main() {
			p = &x;
			*p = 7;
			if (x == 7) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusSat {
		t.Fatalf("store through singleton pointer: %s\n%s", r.Status, f)
	}
}

func TestPointerStoreMultiTarget(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x; int y; int *p;
		void main() {
			x = 0;
			y = 0;
			if (nondet()) { p = &x; } else { p = &y; }
			*p = 7;
			if (x == 7) { error; }
		}`)
	// Path through the then branch (p = &x) must be feasible.
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	r := smt.Solve(f)
	if r.Status == smt.StatusUnsat {
		t.Fatalf("some branch direction must make the trace feasible:\n%s", f)
	}
}

func TestPointerStoreWrongTargetInfeasible(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x; int y; int *p;
		void main() {
			x = 0;
			p = &y;
			*p = 7;
			if (x == 7) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusUnsat {
		t.Fatalf("store hits y, not x: want unsat, got %s\n%s", r.Status, f)
	}
}

func TestDerefReadGuards(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x; int *p;
		void main() {
			x = 5;
			p = &x;
			int v = *p;
			if (v == 5) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusSat {
		t.Fatalf("read through pointer: %s\n%s", r.Status, f)
	}
}

func TestNullDerefInfeasible(t *testing.T) {
	prog, al, addrs := setup(t, `
		int x; int *p;
		void main() {
			p = 0;
			if (nondet()) { p = &x; }
			assume(p == 0);
			*p = 1;
			error;
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusUnsat {
		t.Fatalf("null deref cannot execute: want unsat, got %s", r.Status)
	}
}

func TestCallsAreIdentity(t *testing.T) {
	prog, al, addrs := setup(t, `
		int g;
		int inc(int k) { return k + 1; }
		void main() {
			g = inc(4);
			if (g == 5) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusSat {
		t.Fatalf("call protocol feasible: %s\n%s", r.Status, f)
	}
}

func TestBooleanValueEncoding(t *testing.T) {
	// A comparison used as a value: x = (a > 3).
	prog, al, addrs := setup(t, `
		int a; int x;
		void main() {
			a = 10;
			x = a > 3;
			if (x == 1) { error; }
		}`)
	p := pathToError(t, prog, false)
	_, f := encodePath(prog, al, addrs, p)
	if r := smt.Solve(f); r.Status != smt.StatusSat {
		t.Fatalf("boolean value: %s\n%s", r.Status, f)
	}
}

// Property: over many paths of a branching program, the solver verdict
// on the trace encoding must match the interpreter's ability to execute
// the trace from the decoded model (SAT case) and brute-force search
// over small initial states (UNSAT case: no state executes it).
func TestEncoderAgainstInterpreter(t *testing.T) {
	src := `
		int a; int b;
		void main() {
			if (a > 0) { b = a + 1; } else { b = 0 - a; }
			if (b > 2) {
				if (a == 2) { error; }
			}
		}`
	prog, al, addrs := setup(t, src)
	target := prog.ErrorLocs()[0]
	// Enumerate several paths by varying bounds.
	paths := []cfa.Path{
		cfa.FindPath(prog, target, cfa.FindOptions{}),
		cfa.FindPath(prog, target, cfa.FindOptions{PreferLong: true}),
	}
	for pi, p := range paths {
		if p == nil {
			continue
		}
		enc, f := encodePath(prog, al, addrs, p)
		r := smt.Solve(f)
		switch r.Status {
		case smt.StatusSat:
			st := interp.NewState(prog, addrs)
			for k, v := range enc.DecodeInitialState(r.Model, prog) {
				st.Set(k, v)
			}
			if !st.CanExecuteTrace(p.Ops(), interp.ZeroInputs{}) {
				t.Errorf("path %d: model does not replay", pi)
			}
		case smt.StatusUnsat:
			// Brute force small initial states.
			for a := int64(-4); a <= 4; a++ {
				st := interp.NewState(prog, addrs)
				st.Set("a", a)
				if st.CanExecuteTrace(p.Ops(), interp.ZeroInputs{}) {
					t.Errorf("path %d: solver says unsat but a=%d executes it", pi, a)
				}
			}
		}
	}
}

// opByString digs the built CFA edge with the given op rendering out of
// a function, so WP tests use exactly what the builder produced.
func opByString(t *testing.T, prog *cfa.Program, fn, opStr string) cfa.Op {
	t.Helper()
	for _, e := range prog.Funcs[fn].Edges {
		if e.Op.String() == opStr {
			return e.Op
		}
	}
	var all string
	for _, e := range prog.Funcs[fn].Edges {
		all += e.Op.String() + "\n"
	}
	t.Fatalf("no op %q in %s; have:\n%s", opStr, fn, all)
	return cfa.Op{}
}

func TestWPOpFig3(t *testing.T) {
	prog, al, addrs := setup(t, `int x; int y; void main() { x = y + 1; assume(x > 0); }`)
	phi := logic.Cmp{Op: logic.CmpEq, X: logic.Var{Name: "x"}, Y: logic.Const{V: 3}}
	fresh := 0
	// WP(x == 3, x := y + 1) == (y + 1 == 3).
	assignOp := opByString(t, prog, "main", "x := (y + 1)")
	got := wp.WPOp(phi, assignOp, al, addrs, &fresh)
	yEq := func(k int64) logic.Formula {
		return logic.Cmp{Op: logic.CmpEq, X: logic.Var{Name: "y"}, Y: logic.Const{V: k}}
	}
	if r := smt.Solve(logic.MkAnd(got, yEq(2))); r.Status != smt.StatusSat {
		t.Fatalf("WP %s: y=2 should satisfy", got)
	}
	if r := smt.Solve(logic.MkAnd(got, yEq(5))); r.Status != smt.StatusUnsat {
		t.Fatalf("WP %s: y=5 must not satisfy", got)
	}
	// WP over assume: conjunction (WP(φ, assume p) = φ ∧ p).
	assumeOp := opByString(t, prog, "main", "assume((x > 0))")
	got2 := wp.WPOp(phi, assumeOp, al, addrs, &fresh)
	r := smt.Solve(got2)
	if r.Status != smt.StatusSat || r.Model["x"] != 3 {
		t.Fatalf("WP over assume: %s, model %v", got2, r.Model)
	}
	// WP over call/return: identity.
	callOp := cfa.Op{Kind: cfa.OpCall, Callee: "main"}
	if g := wp.WPOp(phi, callOp, al, addrs, &fresh); !logic.Equal(g, phi) {
		t.Fatalf("WP over call must be identity: %s", g)
	}
	retOp := cfa.Op{Kind: cfa.OpReturn}
	if g := wp.WPOp(phi, retOp, al, addrs, &fresh); !logic.Equal(g, phi) {
		t.Fatalf("WP over return must be identity: %s", g)
	}
}

// WPTrace over a simple trace must be satisfiable exactly when the
// trace is feasible.
func TestWPTraceMatchesEncoder(t *testing.T) {
	src := `
		int x;
		void main() {
			x = 1;
			x = x + 2;
			if (x == 3) { error; }
		}`
	prog, al, addrs := setup(t, src)
	p := pathToError(t, prog, false)
	phi := wp.WPTrace(logic.True, p.Ops(), al, addrs)
	if r := smt.Solve(phi); r.Status != smt.StatusSat {
		t.Fatalf("WP.true over feasible trace must be sat: %s (%s)", r.Status, phi)
	}
	// Make it infeasible.
	src2 := `
		int x;
		void main() {
			x = 1;
			x = x + 2;
			if (x == 4) { error; }
		}`
	prog2, al2, addrs2 := setup(t, src2)
	p2 := pathToError(t, prog2, false)
	phi2 := wp.WPTrace(logic.True, p2.Ops(), al2, addrs2)
	if r := smt.Solve(phi2); r.Status != smt.StatusUnsat {
		t.Fatalf("WP.true over infeasible trace must be unsat: %s (%s)", r.Status, phi2)
	}
}
