package wp_test

// Golden tests for the encoding of pointer writes through may-aliased
// pointers — the case Section 3's Tr function handles with the
// case-split over the points-to set. The exact formula text is pinned
// down for both traversal directions: the forward SSA encoding
// (EncodeOp, used by CheckFeasibility) and the backward encoding
// (EncodeOpBackward, used by the incremental early-unsat stop). A
// change to either shape shows up here as a readable string diff, and
// an equisatisfiability check guards against "both changed, both
// wrong".

import (
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

func TestAliasedWriteEncodingGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// Expected encoding of the (single) `*p = rhs` op on the path.
		wantFwd string
		wantBwd string
	}{
		{
			// One must-alias target: the case split degenerates to
			// "p points at a, so a gets the value", but the guard
			// disjuncts are still emitted.
			name: "single-target",
			src: `
				int a; int *p;
				void main() {
					a = 3;
					p = &a;
					*p = 5;
					if (a == 5) { error; }
				}`,
			wantFwd: "(((p@1 != 1) || (a@2 == 5)) && ((p@1 == 1) || (a@2 == a@1)) && (p@1 == 1))",
			wantBwd: "(((p@0 != 1) || (a@0 == 5)) && ((p@0 == 1) || (a@0 == a@1)) && (p@0 == 1))",
		},
		{
			// Two may-alias targets: each target x gets the update
			// clause (p==&x => x'=rhs) plus the frame clause
			// (p!=&x => x'=x), and the final disjunct says p must
			// point at one of them (no wild writes).
			name: "two-targets",
			src: `
				int x; int y; int *p;
				void main() {
					x = 1;
					y = 2;
					if (nondet() > 0) { p = &x; } else { p = &y; }
					*p = 5;
					if (x == 5) { error; }
				}`,
			wantFwd: "(((p@1 != 2) || (x@2 == 5)) && ((p@1 == 2) || (x@2 == x@1)) && ((p@1 != 3) || (y@2 == 5)) && ((p@1 == 3) || (y@2 == y@1)) && ((p@1 == 2) || (p@1 == 3)))",
			wantBwd: "(((p@0 != 2) || (x@0 == 5)) && ((p@0 == 2) || (x@0 == x@1)) && ((p@0 != 3) || (y@0 == 5)) && ((p@0 == 3) || (y@0 == y@1)) && ((p@0 == 2) || (p@0 == 3)))",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, al, addrs := setup(t, tc.src)
			path := pathToError(t, prog, false)
			ops := path.Ops()

			derefAt := -1
			for i, op := range ops {
				if op.Kind == cfa.OpAssign && op.LHS.Deref {
					if derefAt >= 0 {
						t.Fatalf("more than one pointer write on the path (%d and %d)", derefAt, i)
					}
					derefAt = i
				}
			}
			if derefAt < 0 {
				t.Fatal("no pointer write on the path")
			}

			// Forward: encode every op in trace order, pin the deref's text.
			fwd := wp.NewTraceEncoder(prog, al, addrs)
			var fwdAll []logic.Formula
			for i, op := range ops {
				f := fwd.EncodeOp(op)
				fwdAll = append(fwdAll, f)
				if i == derefAt && f.String() != tc.wantFwd {
					t.Errorf("forward encoding drifted:\n got  %s\n want %s", f, tc.wantFwd)
				}
			}

			// Backward: a fresh encoder, ops in reverse (how the
			// early-unsat stop asserts them into the solver).
			bwd := wp.NewTraceEncoder(prog, al, addrs)
			var bwdAll []logic.Formula
			for i := len(ops) - 1; i >= 0; i-- {
				f := bwd.EncodeOpBackward(ops[i])
				bwdAll = append(bwdAll, f)
				if i == derefAt && f.String() != tc.wantBwd {
					t.Errorf("backward encoding drifted:\n got  %s\n want %s", f, tc.wantBwd)
				}
			}

			// Both directions must agree on feasibility (here: Sat —
			// every case's trace is concretely executable).
			rf := smt.Solve(logic.MkAnd(fwdAll...))
			rb := smt.Solve(logic.MkAnd(bwdAll...))
			if rf.Status != smt.StatusSat || rb.Status != smt.StatusSat {
				t.Errorf("feasible trace: forward %v, backward %v, want sat/sat", rf.Status, rb.Status)
			}
		})
	}
}

// TestAliasedWriteInfeasibleBothDirections pins the soundness half: a
// trace made infeasible only by the aliased write (the overwritten
// pre-value survives in the guard) must be Unsat under both encodings.
func TestAliasedWriteInfeasibleBothDirections(t *testing.T) {
	prog, al, addrs := setup(t, `
		int a; int *p;
		void main() {
			a = 3;
			p = &a;
			*p = 5;
			if (a == 3) { error; }
		}`)
	path := pathToError(t, prog, false)
	ops := path.Ops()

	fwd := wp.NewTraceEncoder(prog, al, addrs)
	if r := smt.Solve(fwd.EncodeTrace(ops)); r.Status != smt.StatusUnsat {
		t.Errorf("forward: overwritten guard value should be unsat, got %v", r.Status)
	}
	bwd := wp.NewTraceEncoder(prog, al, addrs)
	var fs []logic.Formula
	for i := len(ops) - 1; i >= 0; i-- {
		fs = append(fs, bwd.EncodeOpBackward(ops[i]))
	}
	if r := smt.Solve(logic.MkAnd(fs...)); r.Status != smt.StatusUnsat {
		t.Errorf("backward: overwritten guard value should be unsat, got %v", r.Status)
	}
}
