package wp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// randStraightProgram generates pointer-free programs whose WP
// semantics has no havoc approximations, so the classic backward WP
// (Fig. 3) and the forward SSA encoding must be equisatisfiable.
func randStraightProgram(r *rand.Rand) string {
	var b strings.Builder
	n := 2 + r.Intn(2)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int g%d;\n", i)
	}
	gv := func() string { return fmt.Sprintf("g%d", r.Intn(n)) }
	fmt.Fprintf(&b, "void main() {\n")
	stmts := 2 + r.Intn(5)
	for i := 0; i < stmts; i++ {
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  %s = %s + %d;\n", gv(), gv(), r.Intn(7)-3)
		case 1:
			fmt.Fprintf(&b, "  %s = %d;\n", gv(), r.Intn(9)-4)
		default:
			fmt.Fprintf(&b, "  if (%s > %d) { %s = %s; } else { %s = %s - 1; }\n",
				gv(), r.Intn(5)-2, gv(), gv(), gv(), gv())
		}
	}
	fmt.Fprintf(&b, "  if (%s == %d) {\n    if (%s <= %d) {\n      error;\n    }\n  }\n",
		gv(), r.Intn(7)-3, gv(), r.Intn(7)-3)
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// TestWPTraceEquisatisfiableWithEncoder is the DESIGN.md §5 invariant:
// WP.true.(Tr.π) is satisfiable exactly when the SSA trace encoding is.
func TestWPTraceEquisatisfiableWithEncoder(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 80 && checked < 40; trial++ {
		src := randStraightProgram(r)
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatalf("generated program: %v\n%s", err, src)
		}
		locs := prog.ErrorLocs()
		if len(locs) == 0 {
			continue
		}
		path := cfa.FindPath(prog, locs[0], cfa.FindOptions{})
		if path == nil {
			continue
		}
		checked++
		al := alias.Analyze(prog)
		addrs := wp.NewAddrMap(prog)
		enc := wp.NewTraceEncoder(prog, al, addrs)
		forward := smt.Solve(enc.EncodeTrace(path.Ops()))
		backward := smt.Solve(wp.WPTrace(logic.True, path.Ops(), al, addrs))
		if forward.Status != backward.Status {
			t.Fatalf("encoder %s vs WPTrace %s\n%s\npath:\n%s",
				forward.Status, backward.Status, src, path)
		}
	}
	if checked < 20 {
		t.Fatalf("too few cases: %d", checked)
	}
}
