// Package wp implements the weakest-precondition semantics of Figure 3
// of the paper, and the SSA-renamed trace constraint generation of
// §4.2 ("an alternative way to compute the weakest precondition of a
// trace is to first rename the variables so that they are in SSA form,
// so that the weakest precondition is the conjunction of a set of
// constraints, with each constraint directly corresponding to a
// (SSA-renamed) operation").
//
// Memory model: every int variable has a distinct nonzero integer
// address; pointers hold addresses (0 is null); &x is the address
// constant of x; a dereference *p resolves against the may-points-to
// set of p with equality guards. A trace is feasible iff its constraint
// conjunction is satisfiable.
package wp

import (
	"fmt"
	"sort"
	"strings"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
)

// Registry metrics for WP computation and trace encoding (see
// docs/OBSERVABILITY.md).
var (
	mWPOps            = obs.Default().Counter("wp_ops_total")
	mTraceEncodes     = obs.Default().Counter("wp_trace_encodes_total")
	mTraceFormulaSize = obs.Default().Histogram("wp_trace_formula_size")
)

// AddrMap assigns each program variable a distinct nonzero address.
type AddrMap struct {
	addr map[string]int64
}

// NewAddrMap builds the address map for all variables of prog, in
// deterministic (sorted) order starting at 1.
func NewAddrMap(prog *cfa.Program) *AddrMap {
	names := make([]string, 0, len(prog.Types))
	for name := range prog.Types {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &AddrMap{addr: make(map[string]int64, len(names))}
	for i, name := range names {
		m.addr[name] = int64(i + 1)
	}
	return m
}

// UnknownVarError reports an address lookup for a variable the
// program does not declare — the API-misuse case that used to panic.
type UnknownVarError struct{ Name string }

// Error describes the missing variable.
func (e *UnknownVarError) Error() string {
	return "wp: no address for variable " + e.Name
}

// Addr returns the address of a variable, or an UnknownVarError when
// the program does not declare it.
func (m *AddrMap) Addr(name string) (int64, error) {
	a, ok := m.addr[name]
	if !ok {
		return 0, &UnknownVarError{Name: name}
	}
	return a, nil
}

// MustAddr is Addr, panicking on an unknown variable. The encoder and
// WP builders use it internally: NewAddrMap covers every variable of
// the program, so a miss means the caller mixed programs — a bug that
// the pipeline's public API boundaries (core, cegar) contain by
// converting the panic to a per-task error.
func (m *AddrMap) MustAddr(name string) int64 {
	a, err := m.Addr(name)
	if err != nil {
		panic(err.Error())
	}
	return a
}

// VarAt returns the variable living at an address, if any.
func (m *AddrMap) VarAt(a int64) (string, bool) {
	for name, addr := range m.addr {
		if addr == a {
			return name, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// SSA trace encoding

// TraceEncoder incrementally converts a trace (operation sequence) into
// SSA constraints, one operation at a time — the interface the slicer's
// early-stop optimization needs (§4.2).
type TraceEncoder struct {
	prog    *cfa.Program
	alias   *alias.Info
	addrs   *AddrMap
	version map[string]int
	inputs  int
	// nondet records the SSA input names allocated for ast.Nondet
	// occurrences, in allocation (= evaluation) order. The concrete
	// oracle (internal/oracle) projects a solver model onto this list
	// to feed an interpreter replay the same input sequence the
	// constraints were solved under.
	nondet []string
}

// NewTraceEncoder returns an encoder with all variables at version 0
// (their unconstrained initial values).
func NewTraceEncoder(prog *cfa.Program, al *alias.Info, addrs *AddrMap) *TraceEncoder {
	return &TraceEncoder{prog: prog, alias: al, addrs: addrs, version: make(map[string]int)}
}

// ssaName renders the SSA instance of a variable at a version.
func ssaName(name string, version int) string {
	return fmt.Sprintf("%s@%d", name, version)
}

// cur returns the current SSA term for a variable.
func (e *TraceEncoder) cur(name string) logic.Term {
	return logic.Var{Name: ssaName(name, e.version[name])}
}

// next bumps the version of a variable and returns its new SSA term.
func (e *TraceEncoder) next(name string) logic.Term {
	e.version[name]++
	return e.cur(name)
}

// freshInput returns a fresh unconstrained input variable. It is used
// both for nondet occurrences and for internal reification (boolean
// values in term position); only the former correspond to interpreter
// input draws — see freshNondet.
func (e *TraceEncoder) freshInput() logic.Term {
	e.inputs++
	return logic.Var{Name: fmt.Sprintf("$in%d", e.inputs)}
}

// freshNondet allocates a fresh input for an ast.Nondet occurrence and
// records its name for NondetInputs.
func (e *TraceEncoder) freshNondet() logic.Term {
	t := e.freshInput()
	e.nondet = append(e.nondet, t.(logic.Var).Name)
	return t
}

// NondetInputs returns the SSA names of the inputs allocated for
// nondet() occurrences, in the order the trace evaluates them. A
// solver model restricted to these names is the input sequence under
// which the encoded trace was decided.
func (e *TraceEncoder) NondetInputs() []string {
	out := make([]string, len(e.nondet))
	copy(out, e.nondet)
	return out
}

// InitialName returns the SSA name holding the initial value of a
// variable (version 0).
func (e *TraceEncoder) InitialName(name string) string { return ssaName(name, 0) }

// CurrentName returns the SSA name holding the current value.
func (e *TraceEncoder) CurrentName(name string) string {
	return ssaName(name, e.version[name])
}

// EncodeOp returns the constraint contributed by op and advances the
// SSA state. Calls and returns contribute true (identity semantics,
// §4). The result is interned: the CEGAR loop re-encodes the same
// trace operations across iterations, and hash-consing makes those
// repeats share one node — so solver-cache key computation and
// equality tests on them are O(1) (see internal/logic's interner).
func (e *TraceEncoder) EncodeOp(op cfa.Op) logic.Formula {
	switch op.Kind {
	case cfa.OpAssume:
		f, side := e.pred(op.Pred)
		return logic.Intern(logic.MkAnd(append(side, f)...))
	case cfa.OpAssign:
		return logic.Intern(e.assign(op.LHS, op.RHS))
	default:
		return logic.True
	}
}

// EncodeTrace encodes a whole operation sequence as one conjunction.
func (e *TraceEncoder) EncodeTrace(ops []cfa.Op) logic.Formula {
	sp := obs.StartSpan(obs.PhaseWP)
	fs := make([]logic.Formula, 0, len(ops))
	for _, op := range ops {
		fs = append(fs, e.EncodeOp(op))
	}
	f := logic.Intern(logic.MkAnd(fs...))
	mTraceEncodes.Inc()
	mTraceFormulaSize.Observe(int64(logic.Size(f)))
	sp.End()
	return f
}

func (e *TraceEncoder) assign(lhs cfa.Lvalue, rhs ast.Expr) logic.Formula {
	rhsTerm, side := e.term(rhs)
	if !lhs.Deref {
		nv := e.next(lhs.Var)
		return logic.MkAnd(append(side, logic.Cmp{Op: logic.CmpEq, X: nv, Y: rhsTerm})...)
	}
	// Store through *p: guarded updates of every may-target.
	p := e.cur(lhs.Var)
	targets := e.alias.Pts(lhs.Var)
	var fs []logic.Formula
	fs = append(fs, side...)
	if len(targets) == 0 {
		// Dereference of a pointer with empty points-to set: stuck.
		return logic.False
	}
	var valid []logic.Formula
	for _, x := range targets {
		ax := logic.Const{V: e.addrs.MustAddr(x)}
		old := e.cur(x)
		nv := e.next(x)
		eqA := logic.Cmp{Op: logic.CmpEq, X: p, Y: ax}
		fs = append(fs,
			logic.MkOr(logic.MkNot(eqA), logic.Cmp{Op: logic.CmpEq, X: nv, Y: rhsTerm}),
			logic.MkOr(eqA, logic.Cmp{Op: logic.CmpEq, X: nv, Y: old}),
		)
		valid = append(valid, eqA)
	}
	fs = append(fs, logic.MkOr(valid...))
	return logic.MkAnd(fs...)
}

// term converts an expression to a term under the current SSA state,
// returning side constraints from dereferences.
func (e *TraceEncoder) term(expr ast.Expr) (logic.Term, []logic.Formula) {
	switch expr := expr.(type) {
	case *ast.IntLit:
		return logic.Const{V: expr.Value}, nil
	case *ast.Nondet:
		return e.freshNondet(), nil
	case *ast.Ident:
		return e.cur(expr.Name), nil
	case *ast.Unary:
		switch expr.Op {
		case token.MINUS:
			t, side := e.term(expr.X)
			return logic.Neg{X: t}, side
		case token.NOT:
			// !e as a value: 1 if e==0 else 0. Encode with a fresh
			// variable and guards.
			f, side := e.pred(expr)
			r := e.freshInput()
			one := logic.Cmp{Op: logic.CmpEq, X: r, Y: logic.Const{V: 1}}
			zero := logic.Cmp{Op: logic.CmpEq, X: r, Y: logic.Const{V: 0}}
			side = append(side,
				logic.MkOr(logic.MkNot(f), one),
				logic.MkOr(f, zero))
			return r, side
		case token.AMP:
			id := expr.X.(*ast.Ident)
			return logic.Const{V: e.addrs.MustAddr(id.Name)}, nil
		case token.STAR:
			id, ok := expr.X.(*ast.Ident)
			if !ok {
				return e.freshInput(), nil
			}
			return e.deref(id.Name)
		}
	case *ast.Binary:
		switch expr.Op {
		case token.LAND, token.LOR,
			token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
			// Boolean-valued expression in term position: 0/1 encode.
			f, side := e.pred(expr)
			r := e.freshInput()
			side = append(side,
				logic.MkOr(logic.MkNot(f), logic.Cmp{Op: logic.CmpEq, X: r, Y: logic.Const{V: 1}}),
				logic.MkOr(f, logic.Cmp{Op: logic.CmpEq, X: r, Y: logic.Const{V: 0}}))
			return r, side
		}
		x, sx := e.term(expr.X)
		y, sy := e.term(expr.Y)
		side := append(sx, sy...)
		var op logic.BinOp
		switch expr.Op {
		case token.PLUS:
			op = logic.OpAdd
		case token.MINUS:
			op = logic.OpSub
		case token.STAR:
			op = logic.OpMul
		case token.SLASH:
			op = logic.OpDiv
		case token.PERCENT:
			op = logic.OpMod
		default:
			return e.freshInput(), side
		}
		return logic.Bin{Op: op, X: x, Y: y}, side
	}
	return e.freshInput(), nil
}

// deref reads through pointer p: a fresh variable constrained by
// equality guards against every may-target.
func (e *TraceEncoder) deref(p string) (logic.Term, []logic.Formula) {
	targets := e.alias.Pts(p)
	if len(targets) == 0 {
		// Reading through a dangling pointer: infeasible.
		return e.freshInput(), []logic.Formula{logic.False}
	}
	pv := e.cur(p)
	if len(targets) == 1 {
		x := targets[0]
		ax := logic.Const{V: e.addrs.MustAddr(x)}
		return e.cur(x), []logic.Formula{logic.Cmp{Op: logic.CmpEq, X: pv, Y: ax}}
	}
	r := e.freshInput()
	var side []logic.Formula
	var valid []logic.Formula
	for _, x := range targets {
		ax := logic.Const{V: e.addrs.MustAddr(x)}
		eqA := logic.Cmp{Op: logic.CmpEq, X: pv, Y: ax}
		side = append(side, logic.MkOr(logic.MkNot(eqA), logic.Cmp{Op: logic.CmpEq, X: r, Y: e.cur(x)}))
		valid = append(valid, eqA)
	}
	side = append(side, logic.MkOr(valid...))
	return r, side
}

// pred converts a predicate expression to a formula under the current
// SSA state, returning dereference side constraints.
func (e *TraceEncoder) pred(expr ast.Expr) (logic.Formula, []logic.Formula) {
	switch expr := expr.(type) {
	case *ast.IntLit:
		return logic.Bool{V: expr.Value != 0}, nil
	case *ast.Unary:
		if expr.Op == token.NOT {
			f, side := e.pred(expr.X)
			return logic.MkNot(f), side
		}
	case *ast.Binary:
		switch expr.Op {
		case token.LAND:
			x, sx := e.pred(expr.X)
			y, sy := e.pred(expr.Y)
			return logic.MkAnd(x, y), append(sx, sy...)
		case token.LOR:
			x, sx := e.pred(expr.X)
			y, sy := e.pred(expr.Y)
			return logic.MkOr(x, y), append(sx, sy...)
		case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
			x, sx := e.term(expr.X)
			y, sy := e.term(expr.Y)
			var op logic.CmpOp
			switch expr.Op {
			case token.EQ:
				op = logic.CmpEq
			case token.NEQ:
				op = logic.CmpNe
			case token.LT:
				op = logic.CmpLt
			case token.LEQ:
				op = logic.CmpLe
			case token.GT:
				op = logic.CmpGt
			case token.GEQ:
				op = logic.CmpGe
			}
			return logic.Cmp{Op: op, X: x, Y: y}, append(sx, sy...)
		}
	}
	// Any other int expression used as a predicate: e != 0.
	t, side := e.term(expr)
	return logic.Cmp{Op: logic.CmpNe, X: t, Y: logic.Const{V: 0}}, side
}

// DecodeInitialState projects a solver model onto the initial (version
// 0) values of program variables, defaulting to 0: the witness state s
// with s ∈ WP.true.τ.
func (e *TraceEncoder) DecodeInitialState(model map[string]int64, prog *cfa.Program) map[string]int64 {
	out := make(map[string]int64)
	for name := range prog.Types {
		out[name] = model[ssaName(name, 0)]
	}
	return out
}

// ---------------------------------------------------------------------------
// Classic backward WP (Fig. 3), used by the CEGAR abstraction queries.

// WPOp computes WP.φ.op following Figure 3: φ[e/l] for assignments,
// φ ∧ p for assumes, φ for calls and returns. Dereferences and nondet
// right-hand sides are handled by havocking (fresh variables), which
// over-approximates the precondition for the satisfiability queries the
// model checker performs.
func WPOp(phi logic.Formula, op cfa.Op, al *alias.Info, addrs *AddrMap, freshID *int) logic.Formula {
	mWPOps.Inc()
	switch op.Kind {
	case cfa.OpAssume:
		pred, side := predNoSSA(op.Pred, al, addrs, freshID)
		return logic.MkAnd(append(side, pred, phi)...)
	case cfa.OpAssign:
		rhs, side := termNoSSA(op.RHS, al, addrs, freshID)
		if !op.LHS.Deref {
			sub := map[string]logic.Term{op.LHS.Var: rhs}
			return logic.MkAnd(append(side, logic.Subst(phi, sub))...)
		}
		// Store through a pointer. With a singleton points-to set the
		// target is definite: substitute exactly like a direct
		// assignment. Otherwise havoc all may-targets (sound for the
		// reachability overapproximation the checker needs).
		targets := al.Pts(op.LHS.Var)
		if len(targets) == 1 {
			sub := map[string]logic.Term{targets[0]: rhs}
			return logic.MkAnd(append(side, logic.Subst(phi, sub))...)
		}
		sub := make(map[string]logic.Term)
		for _, x := range targets {
			*freshID++
			sub[x] = logic.Var{Name: fmt.Sprintf("$h%d", *freshID)}
		}
		return logic.MkAnd(append(side, logic.Subst(phi, sub))...)
	default:
		return phi
	}
}

// WPTrace folds WPOp backward over a trace: WP.φ.(τ';op) =
// WP.(WP.φ.op).τ'.
func WPTrace(phi logic.Formula, ops []cfa.Op, al *alias.Info, addrs *AddrMap) logic.Formula {
	fresh := 0
	for i := len(ops) - 1; i >= 0; i-- {
		phi = WPOp(phi, ops[i], al, addrs, &fresh)
	}
	return phi
}

// predNoSSA converts a predicate over plain (non-SSA) variable names.
// Fresh variables ($in from nondet or boolean reification) are renamed
// through freshID so distinct operations never share them.
func predNoSSA(expr ast.Expr, al *alias.Info, addrs *AddrMap, freshID *int) (logic.Formula, []logic.Formula) {
	enc := &TraceEncoder{alias: al, addrs: addrs, version: map[string]int{}}
	f, side := enc.pred(expr)
	sub := stripSubst(append([]logic.Formula{f}, side...), freshID)
	out := make([]logic.Formula, len(side))
	for i, s := range side {
		out[i] = logic.Subst(s, sub)
	}
	return logic.Subst(f, sub), out
}

// termNoSSA converts an expression over plain variable names.
func termNoSSA(expr ast.Expr, al *alias.Info, addrs *AddrMap, freshID *int) (logic.Term, []logic.Formula) {
	enc := &TraceEncoder{alias: al, addrs: addrs, version: map[string]int{}}
	t, side := enc.term(expr)
	vars := make(map[string]struct{})
	logic.TermVars(t, vars)
	fs := make([]logic.Formula, 0, len(side)+1)
	fs = append(fs, side...)
	sub := stripSubstNames(vars, freshID)
	addSubstFromFormulas(fs, sub, freshID)
	out := make([]logic.Formula, len(side))
	for i, s := range side {
		out[i] = logic.Subst(s, sub)
	}
	return logic.SubstTerm(t, sub), out
}

// stripSubst builds a substitution that removes "@0" SSA suffixes and
// uniquifies fresh "$in" variables across calls.
func stripSubst(fs []logic.Formula, freshID *int) map[string]logic.Term {
	sub := make(map[string]logic.Term)
	addSubstFromFormulas(fs, sub, freshID)
	return sub
}

func addSubstFromFormulas(fs []logic.Formula, sub map[string]logic.Term, freshID *int) {
	names := make(map[string]struct{})
	for _, f := range fs {
		for _, v := range logic.Vars(f) {
			names[v] = struct{}{}
		}
	}
	// Sorted iteration: freshID is consumed per name, so the order
	// decides which $f number each variable gets. Keeping it
	// deterministic keeps the emitted formulas — and hence the solver
	// cache keys — identical across runs.
	for _, name := range sortedNames(names) {
		addStrip(name, sub, freshID)
	}
}

func stripSubstNames(names map[string]struct{}, freshID *int) map[string]logic.Term {
	sub := make(map[string]logic.Term)
	for _, name := range sortedNames(names) {
		addStrip(name, sub, freshID)
	}
	return sub
}

func sortedNames(names map[string]struct{}) []string {
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func addStrip(name string, sub map[string]logic.Term, freshID *int) {
	if _, done := sub[name]; done {
		return
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		sub[name] = logic.Var{Name: base}
		return
	}
	if strings.HasPrefix(name, "$in") {
		*freshID++
		sub[name] = logic.Var{Name: fmt.Sprintf("$f%d", *freshID)}
	}
}
