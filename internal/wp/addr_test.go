package wp_test

import (
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/logic"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

func TestAddrMapBasics(t *testing.T) {
	prog := compile.MustSource(`int a; int b; int *p; void main() { p = &a; }`)
	m := wp.NewAddrMap(prog)
	seen := map[int64]string{}
	for name := range prog.Types {
		addr, err := m.Addr(name)
		if err != nil {
			t.Fatalf("Addr(%s): %v", name, err)
		}
		if addr == 0 {
			t.Errorf("%s has the null address", name)
		}
		if prev, dup := seen[addr]; dup {
			t.Errorf("address collision: %s and %s at %d", prev, name, addr)
		}
		seen[addr] = name
		back, ok := m.VarAt(addr)
		if !ok || back != name {
			t.Errorf("VarAt(%d) = %q, want %q", addr, back, name)
		}
	}
	if _, ok := m.VarAt(1 << 40); ok {
		t.Error("phantom variable at unused address")
	}
	if _, err := m.Addr("nonexistent"); err == nil {
		t.Error("Addr of unknown variable must return an error")
	} else if _, ok := err.(*wp.UnknownVarError); !ok {
		t.Errorf("Addr error has type %T, want *wp.UnknownVarError", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddr of unknown variable must panic")
		}
	}()
	m.MustAddr("nonexistent")
}

func TestDecodeInitialStateDefaults(t *testing.T) {
	prog := compile.MustSource(`int a; int b; void main() { if (a == 5) { error; } }`)
	al := alias.Analyze(prog)
	addrs := wp.NewAddrMap(prog)
	enc := wp.NewTraceEncoder(prog, al, addrs)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	f := enc.EncodeTrace(path.Ops())
	r := smt.Solve(f)
	if r.Status != smt.StatusSat {
		t.Fatalf("status: %s", r.Status)
	}
	init := enc.DecodeInitialState(r.Model, prog)
	if init["a"] != 5 {
		t.Errorf("a must be 5 initially: %v", init)
	}
	// b is unconstrained and must still be present (defaulted).
	if _, ok := init["b"]; !ok {
		t.Error("unconstrained variable missing from decoded state")
	}
}

func TestEncoderNames(t *testing.T) {
	prog := compile.MustSource(`int x; void main() { x = 1; x = 2; }`)
	al := alias.Analyze(prog)
	enc := wp.NewTraceEncoder(prog, al, wp.NewAddrMap(prog))
	if got := enc.InitialName("x"); got != "x@0" {
		t.Errorf("initial name: %s", got)
	}
	if got := enc.CurrentName("x"); got != "x@0" {
		t.Errorf("current before any op: %s", got)
	}
	main := prog.Funcs["main"]
	for _, e := range main.Edges {
		enc.EncodeOp(e.Op)
	}
	if got := enc.CurrentName("x"); got != "x@2" {
		t.Errorf("current after two assignments: %s", got)
	}
}

func TestWPTraceHavocOnAmbiguousStore(t *testing.T) {
	// With a two-target pointer, the backward WP havocs: the result
	// must still be an over-approximation (SAT whenever the precise
	// encoding is SAT).
	prog := compile.MustSource(`
		int x; int y; int *p;
		void main() {
			x = 0;
			if (nondet()) { p = &x; } else { p = &y; }
			*p = 3;
			if (x == 3) { error; }
		}`)
	al := alias.Analyze(prog)
	addrs := wp.NewAddrMap(prog)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	enc := wp.NewTraceEncoder(prog, al, addrs)
	precise := smt.Solve(enc.EncodeTrace(path.Ops()))
	havoc := smt.Solve(wp.WPTrace(logic.True, path.Ops(), al, addrs))
	if precise.Status == smt.StatusSat && havoc.Status == smt.StatusUnsat {
		t.Fatal("havoc WP must over-approximate the precise encoding")
	}
}

func TestNotAsValueEncoding(t *testing.T) {
	// x = !y as a value.
	prog := compile.MustSource(`
		int x; int y;
		void main() {
			y = 0;
			x = !y;
			if (x == 1) { error; }
		}`)
	al := alias.Analyze(prog)
	addrs := wp.NewAddrMap(prog)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	enc := wp.NewTraceEncoder(prog, al, addrs)
	if r := smt.Solve(enc.EncodeTrace(path.Ops())); r.Status != smt.StatusSat {
		t.Fatalf("!0 == 1: %s", r.Status)
	}
	prog2 := compile.MustSource(`
		int x; int y;
		void main() {
			y = 7;
			x = !y;
			if (x == 1) { error; }
		}`)
	al2 := alias.Analyze(prog2)
	addrs2 := wp.NewAddrMap(prog2)
	path2 := cfa.FindPathToError(prog2, cfa.FindOptions{})
	enc2 := wp.NewTraceEncoder(prog2, al2, addrs2)
	if r := smt.Solve(enc2.EncodeTrace(path2.Ops())); r.Status != smt.StatusUnsat {
		t.Fatalf("!7 == 0, not 1: %s", r.Status)
	}
}

func TestDivModInTraces(t *testing.T) {
	prog := compile.MustSource(`
		int x;
		void main() {
			x = 17;
			int q = x / 5;
			int m = x % 5;
			if (q == 3) {
				if (m == 2) { error; }
			}
		}`)
	al := alias.Analyze(prog)
	addrs := wp.NewAddrMap(prog)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	enc := wp.NewTraceEncoder(prog, al, addrs)
	r := smt.Solve(enc.EncodeTrace(path.Ops()))
	if r.Status == smt.StatusUnsat {
		t.Fatalf("17/5 = 3 rem 2; trace must not be unsat")
	}
}
