package wp

import (
	"pathslice/internal/cfa"
	"pathslice/internal/lang/ast"
	"pathslice/internal/logic"
)

// EncodeOpBackward returns the SSA constraint for op when the trace is
// being traversed backward (as Algorithm PathSlice does): version
// numbers count assignments seen from the right, so "current" names
// denote values flowing into the already-processed suffix. Asserting
// these constraints in backward order yields a conjunction
// equisatisfiable with the forward encoding — this is what the
// "unsatisfiable path slices" optimization of §4.2 asserts
// incrementally into the decision procedure.
func (e *TraceEncoder) EncodeOpBackward(op cfa.Op) logic.Formula {
	switch op.Kind {
	case cfa.OpAssume:
		f, side := e.pred(op.Pred)
		return logic.Intern(logic.MkAnd(append(side, f)...))
	case cfa.OpAssign:
		return logic.Intern(e.assignBackward(op.LHS, op.RHS))
	default:
		return logic.True
	}
}

func (e *TraceEncoder) assignBackward(lhs cfa.Lvalue, rhs ast.Expr) logic.Formula {
	if !lhs.Deref {
		post := e.cur(lhs.Var)
		e.version[lhs.Var]++ // older occurrences now read the pre-value
		rhsTerm, side := e.term(rhs)
		return logic.MkAnd(append(side, logic.Cmp{Op: logic.CmpEq, X: post, Y: rhsTerm})...)
	}
	targets := e.alias.Pts(lhs.Var)
	if len(targets) == 0 {
		return logic.False
	}
	// Post-values of all may-targets, then bump to expose pre-values.
	posts := make([]logic.Term, len(targets))
	for i, x := range targets {
		posts[i] = e.cur(x)
		e.version[x]++
	}
	rhsTerm, side := e.term(rhs)
	p := e.cur(lhs.Var) // pointers are never targets; version unaffected
	fs := append([]logic.Formula{}, side...)
	var valid []logic.Formula
	for i, x := range targets {
		ax := logic.Const{V: e.addrs.MustAddr(x)}
		pre := e.cur(x)
		eqA := logic.Cmp{Op: logic.CmpEq, X: p, Y: ax}
		fs = append(fs,
			logic.MkOr(logic.MkNot(eqA), logic.Cmp{Op: logic.CmpEq, X: posts[i], Y: rhsTerm}),
			logic.MkOr(eqA, logic.Cmp{Op: logic.CmpEq, X: posts[i], Y: pre}),
		)
		valid = append(valid, eqA)
	}
	fs = append(fs, logic.MkOr(valid...))
	return logic.MkAnd(fs...)
}
