package logic

import (
	"fmt"
	"sync"
	"testing"
)

// buildChain returns x0+x1+...+x(n-1) <= n && ... nested structure used
// by the interning and Equal tests — big enough that the string-based
// comparison Equal replaced would dominate a profile.
func buildChain(n int) Formula {
	var fs []Formula
	for i := 0; i < n; i++ {
		sum := Term(Var{Name: fmt.Sprintf("x%d", i)})
		for j := 0; j < 4; j++ {
			sum = Bin{Op: OpAdd, X: sum, Y: Var{Name: fmt.Sprintf("x%d", (i+j)%n)}}
		}
		fs = append(fs, Cmp{Op: CmpLe, X: sum, Y: Const{V: int64(n)}})
	}
	return MkAnd(fs...)
}

func TestInternSharesNodes(t *testing.T) {
	a := Intern(buildChain(8))
	b := Intern(buildChain(8))
	if !Interned(a) || !Interned(b) {
		t.Fatal("interned formulas must carry a hash-consing record")
	}
	if formulaMeta(a) != formulaMeta(b) {
		t.Fatal("structurally equal formulas must share one interned node")
	}
	if !Equal(a, b) {
		t.Fatal("interned equal formulas must be Equal")
	}
	c := Intern(buildChain(9))
	if formulaMeta(a) == formulaMeta(c) {
		t.Fatal("different formulas must not share a node")
	}
	if Equal(a, c) {
		t.Fatal("different formulas must not be Equal")
	}
}

func TestInternPreservesStructure(t *testing.T) {
	cases := []Formula{
		True,
		False,
		buildChain(5),
		MkNot(MkOr(Cmp{Op: CmpEq, X: Var{Name: "x"}, Y: Const{V: 3}}, buildChain(2))),
		Not{F: Or{Fs: []Formula{Bool{V: true}, Cmp{Op: CmpNe, X: Neg{X: Var{Name: "y"}}, Y: Const{V: 0}}}}},
		Cmp{Op: CmpLt, X: Bin{Op: OpDiv, X: Var{Name: "a"}, Y: Var{Name: "b"}}, Y: Const{V: 7}},
	}
	for _, f := range cases {
		g := Intern(f)
		if f.String() != g.String() {
			t.Fatalf("interning changed structure:\n  before %s\n  after  %s", f, g)
		}
		if !Equal(f, g) || !Equal(g, f) {
			t.Fatalf("interned node must equal its original: %s", f)
		}
		if Key(f) != Key(g) {
			t.Fatalf("interning changed the canonical key of %s", f)
		}
	}
}

func TestEqualStructuralWalk(t *testing.T) {
	// Mixed interned / non-interned operands must agree with the
	// string-comparison semantics Equal used to have.
	type pair struct {
		a, b Formula
		want bool
	}
	x, y := Var{Name: "x"}, Var{Name: "y"}
	pairs := []pair{
		{True, True, true},
		{True, False, false},
		{Cmp{Op: CmpEq, X: x, Y: y}, Cmp{Op: CmpEq, X: x, Y: y}, true},
		{Cmp{Op: CmpEq, X: x, Y: y}, Cmp{Op: CmpEq, X: y, Y: x}, false},
		{Cmp{Op: CmpEq, X: x, Y: y}, Cmp{Op: CmpNe, X: x, Y: y}, false},
		{MkAnd(Cmp{Op: CmpLt, X: x, Y: y}), Cmp{Op: CmpLt, X: x, Y: y}, true},
		{And{Fs: []Formula{True}}, And{Fs: []Formula{True, True}}, false},
		{Not{F: True}, Not{F: True}, true},
		{Not{F: True}, True, false},
		{Cmp{Op: CmpEq, X: Neg{X: x}, Y: Const{V: 0}}, Cmp{Op: CmpEq, X: Neg{X: x}, Y: Const{V: 0}}, true},
		{Cmp{Op: CmpEq, X: Bin{Op: OpMul, X: x, Y: y}, Y: Const{V: 0}},
			Cmp{Op: CmpEq, X: Bin{Op: OpAdd, X: x, Y: y}, Y: Const{V: 0}}, false},
	}
	for _, p := range pairs {
		for _, swap := range []bool{false, true} {
			a, b := p.a, p.b
			if swap {
				a, b = b, a
			}
			if got := Equal(a, b); got != p.want {
				t.Errorf("Equal(%s, %s) = %v, want %v", a, b, got, p.want)
			}
			if got := Equal(Intern(a), b); got != p.want {
				t.Errorf("Equal(Intern(%s), %s) = %v, want %v", a, b, got, p.want)
			}
			if got := Equal(Intern(a), Intern(b)); got != p.want {
				t.Errorf("Equal(Intern(%s), Intern(%s)) = %v, want %v", a, b, got, p.want)
			}
			if stringEq := a.String() == b.String(); stringEq != p.want {
				t.Errorf("test vector inconsistent with string semantics: %s vs %s", a, b)
			}
		}
	}
}

func TestKeyCachedOnInternedRoot(t *testing.T) {
	f := Intern(MkAnd(
		Cmp{Op: CmpEq, X: Var{Name: "$in0"}, Y: Var{Name: "x"}},
		Cmp{Op: CmpLt, X: Var{Name: "$in1"}, Y: Const{V: 4}},
	))
	k1 := Key(f)
	k2 := Key(f)
	if k1 != k2 {
		t.Fatalf("cached key differs: %q vs %q", k1, k2)
	}
	// The canonical renaming must still quotient out fresh-counter
	// offsets, cached or not.
	g := Intern(MkAnd(
		Cmp{Op: CmpEq, X: Var{Name: "$in7"}, Y: Var{Name: "x"}},
		Cmp{Op: CmpLt, X: Var{Name: "$in9"}, Y: Const{V: 4}},
	))
	if Key(f) != Key(g) {
		t.Fatalf("keys must be renaming-invariant: %q vs %q", Key(f), Key(g))
	}
	// A subformula key must be computed in its own root context, not
	// inherited from the enclosing formula's renaming.
	sub := f.(And).Fs[1]
	if want := Key(Cmp{Op: CmpLt, X: Var{Name: "$k0"}, Y: Const{V: 4}}); Key(sub) != want {
		t.Fatalf("subformula key %q, want root-context %q", Key(sub), want)
	}
}

func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := Intern(buildChain(3 + i%5))
				if !Equal(f, Intern(buildChain(3+i%5))) {
					t.Error("concurrent intern lost equality")
					return
				}
				_ = Key(f)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkEqual(b *testing.B) {
	raw1, raw2 := buildChain(32), buildChain(32)
	int1, int2 := Intern(raw1), Intern(raw2)
	b.Run("structural-walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !Equal(raw1, raw2) {
				b.Fatal("unexpected inequality")
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !Equal(int1, int2) {
				b.Fatal("unexpected inequality")
			}
		}
	})
	b.Run("string-compare-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if raw1.String() != raw2.String() {
				b.Fatal("unexpected inequality")
			}
		}
	})
}

func BenchmarkKeyInterned(b *testing.B) {
	f := Intern(buildChain(32))
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		_ = Key(f) // warm the cache
		for i := 0; i < b.N; i++ {
			_ = Key(f)
		}
	})
	raw := buildChain(32)
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Key(raw)
		}
	})
}
