package logic

import (
	"strconv"
	"strings"
)

// Key returns a canonical cache key for f: the structural serialization
// of the formula with every solver-internal variable (the "$"-prefixed
// names the WP machinery and trace encoder mint from fresh counters —
// $in nondet inputs, $f/$h havocs, $u nonlinear abstractions) renamed
// to its first-occurrence index. Two formulas that differ only in the
// value of the fresh-variable counter they were generated under map to
// the same key, and a key collision implies the formulas are identical
// up to a bijective renaming of those variables — which preserves
// satisfiability, since a solver query is a closed formula whose
// variables are all implicitly existential. Program variables (and
// their "@k" SSA versions) are never renamed, so keys stay readable and
// distinct program facts stay distinct.
// Interned formulas (see Intern) cache their Key on the shared
// hash-consing record, so repeated cache lookups of the same node skip
// re-serialization. Caching is root-only: a subformula's canonical
// renaming depends on the first-occurrence order of fresh variables in
// the enclosing formula, so only the key computed for a node *as a
// root* is context-free.
func Key(f Formula) string {
	m := formulaMeta(f)
	if m != nil {
		if p := m.key.Load(); p != nil {
			return *p
		}
	}
	c := canonizer{names: make(map[string]string)}
	var b strings.Builder
	c.formula(&b, f)
	k := b.String()
	if m != nil {
		m.key.Store(&k)
	}
	return k
}

type canonizer struct {
	names map[string]string // fresh-variable name → canonical name
}

func (c *canonizer) name(v string) string {
	if !strings.HasPrefix(v, "$") {
		return v
	}
	r, ok := c.names[v]
	if !ok {
		r = "$k" + strconv.Itoa(len(c.names))
		c.names[v] = r
	}
	return r
}

func (c *canonizer) term(b *strings.Builder, t Term) {
	switch t := t.(type) {
	case Const:
		b.WriteString(strconv.FormatInt(t.V, 10))
	case Var:
		b.WriteString(c.name(t.Name))
	case Bin:
		b.WriteByte('(')
		c.term(b, t.X)
		b.WriteByte(' ')
		b.WriteString(t.Op.String())
		b.WriteByte(' ')
		c.term(b, t.Y)
		b.WriteByte(')')
	case Neg:
		b.WriteString("(-")
		c.term(b, t.X)
		b.WriteByte(')')
	}
}

func (c *canonizer) formula(b *strings.Builder, f Formula) {
	switch f := f.(type) {
	case Bool:
		b.WriteString(f.String())
	case Cmp:
		b.WriteByte('(')
		c.term(b, f.X)
		b.WriteByte(' ')
		b.WriteString(f.Op.String())
		b.WriteByte(' ')
		c.term(b, f.Y)
		b.WriteByte(')')
	case Not:
		b.WriteByte('!')
		c.formula(b, f.F)
	case And:
		c.join(b, f.Fs, " && ", "true")
	case Or:
		c.join(b, f.Fs, " || ", "false")
	}
}

func (c *canonizer) join(b *strings.Builder, fs []Formula, sep, empty string) {
	if len(fs) == 0 {
		b.WriteString(empty)
		return
	}
	b.WriteByte('(')
	for i, f := range fs {
		if i > 0 {
			b.WriteString(sep)
		}
		c.formula(b, f)
	}
	b.WriteByte(')')
}
