package logic

import (
	"sync"
	"sync/atomic"
)

// Hash consing: Intern maps structurally equal terms and formulas to a
// single shared node carrying a precomputed 64-bit structural hash and
// a cache slot for the canonical Key. Interned nodes make Equal an O(1)
// pointer-or-hash comparison on the fast path, and let Key skip
// re-serialization on repeated cache lookups of the same formula — the
// two hot operations in the incremental solver's assert loop and
// UnsatCore's deletion filter.
//
// Nodes are plain value structs, so "sharing one node" means sharing
// the unexported meta pointer (and the child slices) of the canonical
// copy. The meta pointer doubles as the identity: two formulas with the
// same meta are structurally equal. The converse direction is only used
// as a hint — the intern table is bounded and may be flushed, after
// which a structure can be re-interned under a fresh meta — so Equal
// falls back to a hash comparison and then a structural walk whenever
// the pointers differ.

// hcMeta is the per-node hash-consing record. epoch is the interner
// epoch the node was last returned from the table in; CollectInterned
// uses it to drop entries no recent work has touched (a removed entry's
// meta stays valid — only future sharing is lost).
type hcMeta struct {
	hash  uint64
	key   atomic.Pointer[string] // cached canonical Key of this node as a root
	epoch uint64                 // guarded by the owning interner's mu
}

// maxInternedNodes bounds the global intern table; on overflow the
// table is flushed (existing metas stay valid, only sharing is lost).
const maxInternedNodes = 1 << 20

type interner struct {
	mu    sync.Mutex
	fs    map[uint64][]Formula
	ts    map[uint64][]Term
	count int
	epoch uint64
}

var globalInterner = &interner{
	fs: make(map[uint64][]Formula),
	ts: make(map[uint64][]Term),
}

// Intern returns the canonical shared node for f: structurally equal
// formulas interned through the same table return copies sharing one
// meta pointer, one hash, and one cached Key slot. Safe for concurrent
// use.
func Intern(f Formula) Formula {
	if formulaMeta(f) != nil {
		return f // already canonical
	}
	globalInterner.mu.Lock()
	defer globalInterner.mu.Unlock()
	return globalInterner.formula(f)
}

// InternTerm is Intern for terms.
func InternTerm(t Term) Term {
	if termMeta(t) != nil {
		return t
	}
	globalInterner.mu.Lock()
	defer globalInterner.mu.Unlock()
	return globalInterner.term(t)
}

// Interned reports whether f carries a hash-consing record (leaves
// never do — they are cheaper to compare than to intern).
func Interned(f Formula) bool { return formulaMeta(f) != nil }

func (in *interner) flushIfFull() {
	if in.count >= maxInternedNodes {
		in.fs = make(map[uint64][]Formula)
		in.ts = make(map[uint64][]Term)
		in.count = 0
	}
}

func (in *interner) formula(f Formula) Formula {
	switch f := f.(type) {
	case Bool:
		return f // leaf: no meta
	case Cmp:
		if f.meta != nil {
			return f
		}
		x, y := in.term(f.X), in.term(f.Y)
		h := mix(mix(mix(hashSeed, tagCmp), uint64(f.Op)), mix(hashTerm(x), hashTerm(y)))
		for _, cand := range in.fs[h] {
			if c, ok := cand.(Cmp); ok && c.Op == f.Op && equalTerm(c.X, x) && equalTerm(c.Y, y) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nf := Cmp{Op: f.Op, X: x, Y: y, meta: &hcMeta{hash: h}}
		in.register(h, nf)
		return nf
	case Not:
		if f.meta != nil {
			return f
		}
		g := in.formula(f.F)
		h := mix(mix(hashSeed, tagNot), hashFormula(g))
		for _, cand := range in.fs[h] {
			if c, ok := cand.(Not); ok && equalFormula(c.F, g) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nf := Not{F: g, meta: &hcMeta{hash: h}}
		in.register(h, nf)
		return nf
	case And:
		if f.meta != nil {
			return f
		}
		fs, h := in.formulas(f.Fs, tagAnd)
		for _, cand := range in.fs[h] {
			if c, ok := cand.(And); ok && equalFormulaSlices(c.Fs, fs) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nf := And{Fs: fs, meta: &hcMeta{hash: h}}
		in.register(h, nf)
		return nf
	case Or:
		if f.meta != nil {
			return f
		}
		fs, h := in.formulas(f.Fs, tagOr)
		for _, cand := range in.fs[h] {
			if c, ok := cand.(Or); ok && equalFormulaSlices(c.Fs, fs) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nf := Or{Fs: fs, meta: &hcMeta{hash: h}}
		in.register(h, nf)
		return nf
	}
	return f
}

func (in *interner) formulas(fs []Formula, tag uint64) ([]Formula, uint64) {
	out := make([]Formula, len(fs))
	h := mix(mix(hashSeed, tag), uint64(len(fs)))
	for i, g := range fs {
		out[i] = in.formula(g)
		h = mix(h, hashFormula(out[i]))
	}
	return out, h
}

func (in *interner) term(t Term) Term {
	switch t := t.(type) {
	case Const, Var:
		return t // leaves: no meta
	case Bin:
		if t.meta != nil {
			return t
		}
		x, y := in.term(t.X), in.term(t.Y)
		h := mix(mix(mix(hashSeed, tagBin), uint64(t.Op)), mix(hashTerm(x), hashTerm(y)))
		for _, cand := range in.ts[h] {
			if c, ok := cand.(Bin); ok && c.Op == t.Op && equalTerm(c.X, x) && equalTerm(c.Y, y) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nt := Bin{Op: t.Op, X: x, Y: y, meta: &hcMeta{hash: h}}
		in.registerTerm(h, nt)
		return nt
	case Neg:
		if t.meta != nil {
			return t
		}
		x := in.term(t.X)
		h := mix(mix(hashSeed, tagNeg), hashTerm(x))
		for _, cand := range in.ts[h] {
			if c, ok := cand.(Neg); ok && equalTerm(c.X, x) {
				c.meta.epoch = in.epoch
				return c
			}
		}
		nt := Neg{X: x, meta: &hcMeta{hash: h}}
		in.registerTerm(h, nt)
		return nt
	}
	return t
}

func (in *interner) register(h uint64, f Formula) {
	in.flushIfFull()
	formulaMeta(f).epoch = in.epoch
	in.fs[h] = append(in.fs[h], f)
	in.count++
}

func (in *interner) registerTerm(h uint64, t Term) {
	in.flushIfFull()
	termMeta(t).epoch = in.epoch
	in.ts[h] = append(in.ts[h], t)
	in.count++
}

// ---------------------------------------------------------------------------
// Epoch-based garbage collection
//
// A long-running process (cmd/slicerd) interns formulas forever, so the
// table cannot rely on the overflow flush alone: flushing drops *all*
// sharing, including the hot entries a warm service exists to keep. The
// epoch mechanism collects selectively. Time is divided into epochs
// (AdvanceInternEpoch); every table hit or registration stamps the
// entry with the current epoch; CollectInterned removes entries whose
// stamp is older than the retention window. Collection is always sound:
// an evicted node's meta (hash, cached Key) stays valid on every copy
// already handed out — only the table's ability to share it with
// *future* structurally equal nodes is lost. Nodes that bypass the
// table because they already carry a meta do not refresh their stamp;
// their table entry may be collected while the nodes themselves remain
// in use, which again costs only future sharing.

// InternEpoch returns the current interner epoch.
func InternEpoch() uint64 {
	globalInterner.mu.Lock()
	defer globalInterner.mu.Unlock()
	return globalInterner.epoch
}

// AdvanceInternEpoch begins a new interner epoch and returns it. A
// resident service calls this on a timer; one epoch then corresponds to
// one GC interval of table activity.
func AdvanceInternEpoch() uint64 {
	globalInterner.mu.Lock()
	defer globalInterner.mu.Unlock()
	globalInterner.epoch++
	return globalInterner.epoch
}

// CollectInterned removes every intern-table entry not used within the
// last keep epochs (keep < 1 is treated as 1: only entries touched in
// the current epoch survive) and returns how many entries it removed.
func CollectInterned(keep int) int {
	if keep < 1 {
		keep = 1
	}
	in := globalInterner
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.epoch < uint64(keep) {
		return 0 // retention window still covers epoch 0
	}
	cutoff := in.epoch - uint64(keep) + 1
	removed := 0
	for h, bucket := range in.fs {
		kept := bucket[:0]
		for _, f := range bucket {
			if formulaMeta(f).epoch >= cutoff {
				kept = append(kept, f)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(in.fs, h)
		} else {
			in.fs[h] = kept
		}
	}
	for h, bucket := range in.ts {
		kept := bucket[:0]
		for _, t := range bucket {
			if termMeta(t).epoch >= cutoff {
				kept = append(kept, t)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(in.ts, h)
		} else {
			in.ts[h] = kept
		}
	}
	in.count -= removed
	return removed
}

// InternedCount returns the number of entries currently in the global
// intern table.
func InternedCount() int {
	globalInterner.mu.Lock()
	defer globalInterner.mu.Unlock()
	return globalInterner.count
}

// ---------------------------------------------------------------------------
// Structural hashing (FNV-1a style mixing with per-node type tags)

const (
	hashSeed  = uint64(1469598103934665603)
	hashPrime = uint64(1099511628211)

	tagBool = 0x42
	tagCmp  = 0x43
	tagNot  = 0x4e
	tagAnd  = 0x41
	tagOr   = 0x4f
	tagBin  = 0x62
	tagNeg  = 0x6e
	tagCon  = 0x63
	tagVar  = 0x76
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= hashPrime
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= hashPrime
	}
	return h
}

func hashFormula(f Formula) uint64 {
	switch f := f.(type) {
	case Bool:
		v := uint64(0)
		if f.V {
			v = 1
		}
		return mix(mix(hashSeed, tagBool), v)
	case Cmp:
		if f.meta != nil {
			return f.meta.hash
		}
		return mix(mix(mix(hashSeed, tagCmp), uint64(f.Op)), mix(hashTerm(f.X), hashTerm(f.Y)))
	case Not:
		if f.meta != nil {
			return f.meta.hash
		}
		return mix(mix(hashSeed, tagNot), hashFormula(f.F))
	case And:
		if f.meta != nil {
			return f.meta.hash
		}
		h := mix(mix(hashSeed, tagAnd), uint64(len(f.Fs)))
		for _, g := range f.Fs {
			h = mix(h, hashFormula(g))
		}
		return h
	case Or:
		if f.meta != nil {
			return f.meta.hash
		}
		h := mix(mix(hashSeed, tagOr), uint64(len(f.Fs)))
		for _, g := range f.Fs {
			h = mix(h, hashFormula(g))
		}
		return h
	}
	return hashSeed
}

func hashTerm(t Term) uint64 {
	switch t := t.(type) {
	case Const:
		return mix(mix(hashSeed, tagCon), uint64(t.V))
	case Var:
		return mixString(mix(hashSeed, tagVar), t.Name)
	case Bin:
		if t.meta != nil {
			return t.meta.hash
		}
		return mix(mix(mix(hashSeed, tagBin), uint64(t.Op)), mix(hashTerm(t.X), hashTerm(t.Y)))
	case Neg:
		if t.meta != nil {
			return t.meta.hash
		}
		return mix(mix(hashSeed, tagNeg), hashTerm(t.X))
	}
	return hashSeed
}

func formulaMeta(f Formula) *hcMeta {
	switch f := f.(type) {
	case Cmp:
		return f.meta
	case Not:
		return f.meta
	case And:
		return f.meta
	case Or:
		return f.meta
	}
	return nil
}

func termMeta(t Term) *hcMeta {
	switch t := t.(type) {
	case Bin:
		return t.meta
	case Neg:
		return t.meta
	}
	return nil
}

// ---------------------------------------------------------------------------
// Allocation-free structural equality

func equalFormula(a, b Formula) bool {
	if ma, mb := formulaMeta(a), formulaMeta(b); ma != nil && mb != nil {
		if ma == mb {
			return true
		}
		if ma.hash != mb.hash {
			return false
		}
	}
	switch a := a.(type) {
	case Bool:
		b, ok := b.(Bool)
		return ok && a.V == b.V
	case Cmp:
		b, ok := b.(Cmp)
		return ok && a.Op == b.Op && equalTerm(a.X, b.X) && equalTerm(a.Y, b.Y)
	case Not:
		b, ok := b.(Not)
		return ok && equalFormula(a.F, b.F)
	case And:
		b, ok := b.(And)
		return ok && equalFormulaSlices(a.Fs, b.Fs)
	case Or:
		b, ok := b.(Or)
		return ok && equalFormulaSlices(a.Fs, b.Fs)
	}
	return false
}

func equalFormulaSlices(a, b []Formula) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalFormula(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalTerm(a, b Term) bool {
	if ma, mb := termMeta(a), termMeta(b); ma != nil && mb != nil {
		if ma == mb {
			return true
		}
		if ma.hash != mb.hash {
			return false
		}
	}
	switch a := a.(type) {
	case Const:
		b, ok := b.(Const)
		return ok && a.V == b.V
	case Var:
		b, ok := b.(Var)
		return ok && a.Name == b.Name
	case Bin:
		b, ok := b.(Bin)
		return ok && a.Op == b.Op && equalTerm(a.X, b.X) && equalTerm(a.Y, b.Y)
	case Neg:
		b, ok := b.(Neg)
		return ok && equalTerm(a.X, b.X)
	}
	return false
}
