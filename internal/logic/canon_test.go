package logic

import "testing"

func TestKeyNormalizesFreshVariables(t *testing.T) {
	// x@1 == $f3 + 1 && $f3 < $in7  vs  the same formula minted under a
	// different fresh counter: x@1 == $f90 + 1 && $f90 < $in4.
	mk := func(f, in string) Formula {
		return MkAnd(
			Cmp{Op: CmpEq, X: Var{Name: "x@1"}, Y: Bin{Op: OpAdd, X: Var{Name: f}, Y: Const{V: 1}}},
			Cmp{Op: CmpLt, X: Var{Name: f}, Y: Var{Name: in}},
		)
	}
	a, b := mk("$f3", "$in7"), mk("$f90", "$in4")
	if a.String() == b.String() {
		t.Fatal("test premise broken: String() should differ")
	}
	if Key(a) != Key(b) {
		t.Errorf("alpha-variant formulas must share a key:\n%s\n%s", Key(a), Key(b))
	}
}

func TestKeyPreservesProgramVariables(t *testing.T) {
	a := Cmp{Op: CmpEq, X: Var{Name: "x"}, Y: Const{V: 0}}
	b := Cmp{Op: CmpEq, X: Var{Name: "y"}, Y: Const{V: 0}}
	if Key(a) == Key(b) {
		t.Error("distinct program variables must keep distinct keys")
	}
	c := Cmp{Op: CmpEq, X: Var{Name: "x@2"}, Y: Const{V: 0}}
	if Key(a) == Key(c) {
		t.Error("SSA versions of a variable must keep distinct keys")
	}
}

func TestKeyRespectsOccurrenceOrder(t *testing.T) {
	// $a < $b and $b < $a both canonize variable-wise to $k0 < $k1, and
	// that is correct: each is a closed existential query and both are
	// satisfiable in the same way. But a formula where the SAME fresh
	// variable appears twice must not collide with one using two.
	same := Cmp{Op: CmpLt, X: Var{Name: "$f1"}, Y: Var{Name: "$f1"}}
	diff := Cmp{Op: CmpLt, X: Var{Name: "$f1"}, Y: Var{Name: "$f2"}}
	if Key(same) == Key(diff) {
		t.Error("repeated fresh variable must not collide with distinct ones")
	}
}

func TestKeyDistinguishesStructure(t *testing.T) {
	and := MkAnd(Cmp{Op: CmpLt, X: Var{Name: "$f1"}, Y: Const{V: 3}}, Cmp{Op: CmpGt, X: Var{Name: "x"}, Y: Const{V: 0}})
	or := MkOr(Cmp{Op: CmpLt, X: Var{Name: "$f1"}, Y: Const{V: 3}}, Cmp{Op: CmpGt, X: Var{Name: "x"}, Y: Const{V: 0}})
	not := MkNot(and)
	keys := map[string]string{"and": Key(and), "or": Key(or), "not": Key(not)}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, ok := seen[k]; ok {
			t.Errorf("%s and %s collide on key %q", name, prev, k)
		}
		seen[k] = name
	}
	if Key(True) != "true" || Key(False) != "false" {
		t.Errorf("constants: got %q / %q", Key(True), Key(False))
	}
}
