// Package logic defines the term and formula language used for weakest
// preconditions and trace constraints (§3.1 of the paper): integer
// terms with the MiniC arithmetic operators, and quantifier-free
// boolean combinations of arithmetic comparisons.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Terms

// Term is an integer-valued term.
type Term interface {
	termNode()
	String() string
}

// Const is an integer constant.
type Const struct{ V int64 }

// Var is a variable reference (SSA-renamed or plain).
type Var struct{ Name string }

// BinOp identifies an arithmetic operator.
type BinOp int

// The arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // truncated toward zero, as in C
	OpMod // sign follows the dividend, as in C
)

// String renders the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// Bin is a binary arithmetic term.
type Bin struct {
	Op   BinOp
	X, Y Term

	meta *hcMeta // hash-consing record; nil unless interned (intern.go)
}

// Neg is arithmetic negation.
type Neg struct {
	X Term

	meta *hcMeta
}

func (Const) termNode() {}
func (Var) termNode()   {}
func (Bin) termNode()   {}
func (Neg) termNode()   {}

// String renders the constant.
func (t Const) String() string { return fmt.Sprintf("%d", t.V) }

// String renders the variable name.
func (t Var) String() string { return t.Name }

// String renders the operation with explicit parentheses.
func (t Bin) String() string {
	return "(" + t.X.String() + " " + t.Op.String() + " " + t.Y.String() + ")"
}

// String renders the negation.
func (t Neg) String() string { return "(-" + t.X.String() + ")" }

// ---------------------------------------------------------------------------
// Formulas

// Formula is a quantifier-free boolean formula over comparisons.
type Formula interface {
	formulaNode()
	String() string
}

// Bool is a truth constant.
type Bool struct{ V bool }

// True and False are the formula constants.
var (
	True  = Bool{V: true}
	False = Bool{V: false}
)

// CmpOp identifies a comparison operator.
type CmpOp int

// The comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the comparison operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Negated returns the complementary comparison (valid over integers).
func (op CmpOp) Negated() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	return op
}

// Cmp is an atomic comparison between two terms.
type Cmp struct {
	Op   CmpOp
	X, Y Term

	meta *hcMeta // hash-consing record; nil unless interned (intern.go)
}

// Not is logical negation.
type Not struct {
	F Formula

	meta *hcMeta
}

// And is n-ary conjunction (true when empty).
type And struct {
	Fs []Formula

	meta *hcMeta
}

// Or is n-ary disjunction (false when empty).
type Or struct {
	Fs []Formula

	meta *hcMeta
}

func (Bool) formulaNode() {}
func (Cmp) formulaNode()  {}
func (Not) formulaNode()  {}
func (And) formulaNode()  {}
func (Or) formulaNode()   {}

// String renders the truth constant.
func (f Bool) String() string {
	if f.V {
		return "true"
	}
	return "false"
}

// String renders the comparison.
func (f Cmp) String() string {
	return "(" + f.X.String() + " " + f.Op.String() + " " + f.Y.String() + ")"
}

// String renders the negation.
func (f Not) String() string { return "!" + f.F.String() }

// String renders the conjunction.
func (f And) String() string { return joinFormulas(f.Fs, " && ", "true") }

// String renders the disjunction.
func (f Or) String() string { return joinFormulas(f.Fs, " || ", "false") }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// MkAnd builds a conjunction, flattening nested Ands and dropping
// trivially-true conjuncts; it short-circuits on false.
func MkAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Bool:
			if !f.V {
				return False
			}
		case And:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// MkOr builds a disjunction, flattening nested Ors and dropping
// trivially-false disjuncts; it short-circuits on true.
func MkOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Bool:
			if f.V {
				return True
			}
		case Or:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

// MkNot builds a negation, eliminating double negations, flipping
// comparisons, and applying De Morgan on truth constants.
func MkNot(f Formula) Formula {
	switch f := f.(type) {
	case Bool:
		return Bool{V: !f.V}
	case Not:
		return f.F
	case Cmp:
		return Cmp{Op: f.Op.Negated(), X: f.X, Y: f.Y}
	}
	return Not{F: f}
}

// ---------------------------------------------------------------------------
// Traversals

// TermVars adds the variables of t to out.
func TermVars(t Term, out map[string]struct{}) {
	switch t := t.(type) {
	case Const:
	case Var:
		out[t.Name] = struct{}{}
	case Bin:
		TermVars(t.X, out)
		TermVars(t.Y, out)
	case Neg:
		TermVars(t.X, out)
	}
}

// Vars returns the sorted variable names occurring in f.
func Vars(f Formula) []string {
	set := make(map[string]struct{})
	collectVars(f, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(f Formula, out map[string]struct{}) {
	switch f := f.(type) {
	case Bool:
	case Cmp:
		TermVars(f.X, out)
		TermVars(f.Y, out)
	case Not:
		collectVars(f.F, out)
	case And:
		for _, g := range f.Fs {
			collectVars(g, out)
		}
	case Or:
		for _, g := range f.Fs {
			collectVars(g, out)
		}
	}
}

// SubstTerm replaces variables in t according to sub (variables not in
// sub are kept).
func SubstTerm(t Term, sub map[string]Term) Term {
	switch t := t.(type) {
	case Const:
		return t
	case Var:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return t
	case Bin:
		return Bin{Op: t.Op, X: SubstTerm(t.X, sub), Y: SubstTerm(t.Y, sub)}
	case Neg:
		return Neg{X: SubstTerm(t.X, sub)}
	}
	return t
}

// Subst replaces variables in f according to sub.
func Subst(f Formula, sub map[string]Term) Formula {
	switch f := f.(type) {
	case Bool:
		return f
	case Cmp:
		return Cmp{Op: f.Op, X: SubstTerm(f.X, sub), Y: SubstTerm(f.Y, sub)}
	case Not:
		return Not{F: Subst(f.F, sub)}
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, sub)
		}
		return And{Fs: out}
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, sub)
		}
		return Or{Fs: out}
	}
	return f
}

// NNF converts f to negation normal form: negations appear only on
// atoms, and atomic negations are folded into the comparison operator.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch f := f.(type) {
	case Bool:
		return Bool{V: f.V != neg}
	case Cmp:
		if neg {
			return Cmp{Op: f.Op.Negated(), X: f.X, Y: f.Y}
		}
		return f
	case Not:
		return nnf(f.F, !neg)
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnf(g, neg)
		}
		if neg {
			return MkOr(out...)
		}
		return MkAnd(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnf(g, neg)
		}
		if neg {
			return MkAnd(out...)
		}
		return MkOr(out...)
	}
	return f
}

// ---------------------------------------------------------------------------
// Evaluation

// ErrDivByZero reports division or modulo by zero during evaluation.
type ErrDivByZero struct{ T Term }

// Error implements the error interface.
func (e ErrDivByZero) Error() string { return "division by zero in " + e.T.String() }

// ErrUnbound reports an unbound variable during evaluation.
type ErrUnbound struct{ Name string }

// Error implements the error interface.
func (e ErrUnbound) Error() string { return "unbound variable " + e.Name }

// EvalTerm evaluates t under env using C semantics for / and %.
func EvalTerm(t Term, env map[string]int64) (int64, error) {
	switch t := t.(type) {
	case Const:
		return t.V, nil
	case Var:
		v, ok := env[t.Name]
		if !ok {
			return 0, ErrUnbound{Name: t.Name}
		}
		return v, nil
	case Bin:
		x, err := EvalTerm(t.X, env)
		if err != nil {
			return 0, err
		}
		y, err := EvalTerm(t.Y, env)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case OpAdd:
			return x + y, nil
		case OpSub:
			return x - y, nil
		case OpMul:
			return x * y, nil
		case OpDiv:
			if y == 0 {
				return 0, ErrDivByZero{T: t}
			}
			return x / y, nil // Go's / truncates toward zero, like C
		case OpMod:
			if y == 0 {
				return 0, ErrDivByZero{T: t}
			}
			return x % y, nil
		}
	case Neg:
		x, err := EvalTerm(t.X, env)
		if err != nil {
			return 0, err
		}
		return -x, nil
	}
	return 0, fmt.Errorf("logic: unknown term %T", t)
}

// Eval evaluates f under env.
func Eval(f Formula, env map[string]int64) (bool, error) {
	switch f := f.(type) {
	case Bool:
		return f.V, nil
	case Cmp:
		x, err := EvalTerm(f.X, env)
		if err != nil {
			return false, err
		}
		y, err := EvalTerm(f.Y, env)
		if err != nil {
			return false, err
		}
		switch f.Op {
		case CmpEq:
			return x == y, nil
		case CmpNe:
			return x != y, nil
		case CmpLt:
			return x < y, nil
		case CmpLe:
			return x <= y, nil
		case CmpGt:
			return x > y, nil
		case CmpGe:
			return x >= y, nil
		}
	case Not:
		v, err := Eval(f.F, env)
		return !v, err
	case And:
		for _, g := range f.Fs {
			v, err := Eval(g, env)
			if err != nil {
				return false, err
			}
			if !v {
				return false, nil
			}
		}
		return true, nil
	case Or:
		for _, g := range f.Fs {
			v, err := Eval(g, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("logic: unknown formula %T", f)
}

// Equal reports structural equality of formulas. Interned formulas
// (see Intern) compare in O(1) — shared meta pointers are equal, and
// differing precomputed hashes are unequal; everything else falls back
// to an allocation-free structural walk.
func Equal(a, b Formula) bool { return equalFormula(a, b) }

// EqualTerms reports structural equality of terms, with the same
// interned fast path as Equal.
func EqualTerms(a, b Term) bool { return equalTerm(a, b) }

// Size returns the number of nodes (formula connectives, comparison
// atoms, and term operators/leaves) in f — the formula-size measure
// the observability layer reports for WP and trace formulas.
func Size(f Formula) int {
	switch f := f.(type) {
	case Bool:
		return 1
	case Cmp:
		return 1 + termSize(f.X) + termSize(f.Y)
	case Not:
		return 1 + Size(f.F)
	case And:
		n := 1
		for _, g := range f.Fs {
			n += Size(g)
		}
		return n
	case Or:
		n := 1
		for _, g := range f.Fs {
			n += Size(g)
		}
		return n
	}
	return 1
}

func termSize(t Term) int {
	switch t := t.(type) {
	case Bin:
		return 1 + termSize(t.X) + termSize(t.Y)
	case Neg:
		return 1 + termSize(t.X)
	default:
		return 1
	}
}
