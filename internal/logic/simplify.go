package logic

// Simplify performs sound, cheap rewrites: constant folding in terms,
// evaluation of ground comparisons, unit laws in connectives, and
// recognition of syntactically identical operands (x == x, x < x).
// Trace formulas are full of such ground facts (SSA constants, the
// builder's assume(1) edges), and folding them before the solver runs
// shrinks the boolean search.
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case Bool:
		return f
	case Cmp:
		x := SimplifyTerm(f.X)
		y := SimplifyTerm(f.Y)
		if cx, ok := x.(Const); ok {
			if cy, ok := y.(Const); ok {
				return Bool{V: evalCmp(f.Op, cx.V, cy.V)}
			}
		}
		if x.String() == y.String() {
			switch f.Op {
			case CmpEq, CmpLe, CmpGe:
				return True
			case CmpNe, CmpLt, CmpGt:
				return False
			}
		}
		return Cmp{Op: f.Op, X: x, Y: y}
	case Not:
		return MkNot(Simplify(f.F))
	case And:
		out := make([]Formula, 0, len(f.Fs))
		for _, g := range f.Fs {
			out = append(out, Simplify(g))
		}
		return MkAnd(out...)
	case Or:
		out := make([]Formula, 0, len(f.Fs))
		for _, g := range f.Fs {
			out = append(out, Simplify(g))
		}
		return MkOr(out...)
	}
	return f
}

func evalCmp(op CmpOp, x, y int64) bool {
	switch op {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpLt:
		return x < y
	case CmpLe:
		return x <= y
	case CmpGt:
		return x > y
	case CmpGe:
		return x >= y
	}
	return false
}

// SimplifyTerm folds constants and applies identity/absorption laws.
// Overflow-prone folds are guarded: addition and multiplication only
// fold when the result provably fits int64.
func SimplifyTerm(t Term) Term {
	switch t := t.(type) {
	case Const, Var:
		return t
	case Neg:
		x := SimplifyTerm(t.X)
		if c, ok := x.(Const); ok && c.V != -c.V { // guard MinInt64
			return Const{V: -c.V}
		}
		if n, ok := x.(Neg); ok {
			return n.X
		}
		return Neg{X: x}
	case Bin:
		x := SimplifyTerm(t.X)
		y := SimplifyTerm(t.Y)
		cx, xConst := x.(Const)
		cy, yConst := y.(Const)
		switch t.Op {
		case OpAdd:
			if xConst && yConst {
				if s, ok := safeAdd(cx.V, cy.V); ok {
					return Const{V: s}
				}
			}
			if xConst && cx.V == 0 {
				return y
			}
			if yConst && cy.V == 0 {
				return x
			}
		case OpSub:
			if xConst && yConst {
				if s, ok := safeAdd(cx.V, -cy.V); ok && cy.V != -cy.V {
					return Const{V: s}
				}
			}
			if yConst && cy.V == 0 {
				return x
			}
			if x.String() == y.String() {
				return Const{V: 0}
			}
		case OpMul:
			if xConst && yConst {
				if p, ok := safeMul(cx.V, cy.V); ok {
					return Const{V: p}
				}
			}
			if xConst {
				switch cx.V {
				case 0:
					return Const{V: 0}
				case 1:
					return y
				}
			}
			if yConst {
				switch cy.V {
				case 0:
					return Const{V: 0}
				case 1:
					return x
				}
			}
		case OpDiv:
			if yConst && cy.V == 1 {
				return x
			}
			if xConst && yConst && cy.V != 0 {
				return Const{V: cx.V / cy.V}
			}
		case OpMod:
			if xConst && yConst && cy.V != 0 {
				return Const{V: cx.V % cy.V}
			}
			if yConst && cy.V == 1 {
				return Const{V: 0}
			}
		}
		return Bin{Op: t.Op, X: x, Y: y}
	}
	return t
}

func safeAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s > 0) {
		return 0, false
	}
	return s, true
}

func safeMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
