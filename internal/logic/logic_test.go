package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func v(name string) Term { return Var{Name: name} }
func c(k int64) Term     { return Const{V: k} }

func TestStrings(t *testing.T) {
	f := MkAnd(
		Cmp{Op: CmpLt, X: Bin{Op: OpAdd, X: v("x"), Y: c(1)}, Y: v("y")},
		MkOr(Cmp{Op: CmpEq, X: v("z"), Y: c(0)}, Not{F: True}),
	)
	want := "(((x + 1) < y) && ((z == 0) || !true))"
	if got := f.String(); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
	if got := (Neg{X: v("a")}).String(); got != "(-a)" {
		t.Errorf("Neg: %s", got)
	}
}

func TestMkAndOrSimplification(t *testing.T) {
	if f := MkAnd(); !Equal(f, True) {
		t.Errorf("empty and: %s", f)
	}
	if f := MkOr(); !Equal(f, False) {
		t.Errorf("empty or: %s", f)
	}
	a := Cmp{Op: CmpEq, X: v("a"), Y: c(1)}
	if f := MkAnd(True, a, True); !Equal(f, a) {
		t.Errorf("and simplification: %s", f)
	}
	if f := MkAnd(a, False); !Equal(f, False) {
		t.Errorf("and false: %s", f)
	}
	if f := MkOr(False, a); !Equal(f, a) {
		t.Errorf("or simplification: %s", f)
	}
	if f := MkOr(a, True); !Equal(f, True) {
		t.Errorf("or true: %s", f)
	}
	// Flattening.
	b := Cmp{Op: CmpEq, X: v("b"), Y: c(2)}
	cc := Cmp{Op: CmpEq, X: v("c"), Y: c(3)}
	f := MkAnd(MkAnd(a, b), cc)
	if and, ok := f.(And); !ok || len(and.Fs) != 3 {
		t.Errorf("flattening: %s", f)
	}
}

func TestMkNot(t *testing.T) {
	a := Cmp{Op: CmpLt, X: v("x"), Y: c(5)}
	n := MkNot(a)
	if cmp, ok := n.(Cmp); !ok || cmp.Op != CmpGe {
		t.Errorf("negated comparison: %s", n)
	}
	if !Equal(MkNot(MkNot(a)), a) {
		t.Error("double negation")
	}
	if !Equal(MkNot(True), False) || !Equal(MkNot(False), True) {
		t.Error("boolean negation")
	}
}

func TestVars(t *testing.T) {
	f := MkAnd(
		Cmp{Op: CmpEq, X: Bin{Op: OpMul, X: v("b"), Y: v("a")}, Y: c(1)},
		MkOr(Cmp{Op: CmpLt, X: Neg{X: v("c")}, Y: v("a")}),
	)
	if got := Vars(f); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("vars: %v", got)
	}
}

func TestSubst(t *testing.T) {
	f := Cmp{Op: CmpEq, X: v("x"), Y: Bin{Op: OpAdd, X: v("y"), Y: c(1)}}
	g := Subst(f, map[string]Term{"x": c(5), "y": v("z")})
	if g.String() != "(5 == (z + 1))" {
		t.Errorf("subst: %s", g)
	}
	// Original untouched.
	if f.String() != "(x == (y + 1))" {
		t.Errorf("original mutated: %s", f)
	}
}

func TestEvalCSemantics(t *testing.T) {
	env := map[string]int64{"x": -7, "y": 2}
	div := Bin{Op: OpDiv, X: v("x"), Y: v("y")}
	got, err := EvalTerm(div, env)
	if err != nil || got != -3 {
		t.Errorf("-7/2 = %d (err %v), want -3 (truncation toward zero)", got, err)
	}
	mod := Bin{Op: OpMod, X: v("x"), Y: v("y")}
	got, err = EvalTerm(mod, env)
	if err != nil || got != -1 {
		t.Errorf("-7%%2 = %d (err %v), want -1", got, err)
	}
	if _, err := EvalTerm(Bin{Op: OpDiv, X: c(1), Y: c(0)}, env); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := EvalTerm(v("missing"), env); err == nil {
		t.Error("unbound variable must error")
	}
}

func TestEvalFormulas(t *testing.T) {
	env := map[string]int64{"a": 3, "b": 4}
	cases := []struct {
		f    Formula
		want bool
	}{
		{Cmp{Op: CmpLt, X: v("a"), Y: v("b")}, true},
		{Cmp{Op: CmpGe, X: v("a"), Y: v("b")}, false},
		{MkAnd(Cmp{Op: CmpEq, X: v("a"), Y: c(3)}, Cmp{Op: CmpNe, X: v("b"), Y: c(3)}), true},
		{MkOr(Cmp{Op: CmpGt, X: v("a"), Y: c(10)}, Cmp{Op: CmpLe, X: v("b"), Y: c(4)}), true},
		{Not{F: Cmp{Op: CmpEq, X: v("a"), Y: c(3)}}, false},
	}
	for i, cse := range cases {
		got, err := Eval(cse.f, env)
		if err != nil || got != cse.want {
			t.Errorf("case %d (%s): got %v err %v", i, cse.f, got, err)
		}
	}
}

// randFormula builds a random formula over vars a..c with bounded depth.
func randFormula(r *rand.Rand, depth int) Formula {
	vars := []string{"a", "b", "c"}
	randTerm := func() Term {
		switch r.Intn(3) {
		case 0:
			return Const{V: int64(r.Intn(11) - 5)}
		case 1:
			return Var{Name: vars[r.Intn(len(vars))]}
		default:
			return Bin{Op: BinOp(r.Intn(3)), // + - * only: total
				X: Var{Name: vars[r.Intn(len(vars))]},
				Y: Const{V: int64(r.Intn(5) + 1)}}
		}
	}
	if depth <= 0 || r.Intn(3) == 0 {
		return Cmp{Op: CmpOp(r.Intn(6)), X: randTerm(), Y: randTerm()}
	}
	switch r.Intn(3) {
	case 0:
		return MkAnd(randFormula(r, depth-1), randFormula(r, depth-1))
	case 1:
		return MkOr(randFormula(r, depth-1), randFormula(r, depth-1))
	default:
		return Not{F: randFormula(r, depth-1)}
	}
}

// Property: NNF preserves evaluation on random formulas/environments.
func TestQuickNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		g := NNF(f)
		env := map[string]int64{
			"a": int64(r.Intn(11) - 5),
			"b": int64(r.Intn(11) - 5),
			"c": int64(r.Intn(11) - 5),
		}
		vf, err1 := Eval(f, env)
		vg, err2 := Eval(g, env)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval errors: %v %v", err1, err2)
		}
		if vf != vg {
			t.Fatalf("NNF changed semantics:\n f=%s (%v)\n g=%s (%v)\n env=%v", f, vf, g, vg, env)
		}
	}
}

// Property: NNF output contains no Not nodes.
func TestQuickNNFShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var hasNot func(f Formula) bool
	hasNot = func(f Formula) bool {
		switch f := f.(type) {
		case Not:
			return true
		case And:
			for _, g := range f.Fs {
				if hasNot(g) {
					return true
				}
			}
		case Or:
			for _, g := range f.Fs {
				if hasNot(g) {
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		if g := NNF(f); hasNot(g) {
			t.Fatalf("NNF left a Not: %s -> %s", f, g)
		}
	}
}

// Property: MkNot produces the complement under evaluation.
func TestQuickMkNotComplement(t *testing.T) {
	f := func(a, b int8, op uint8) bool {
		cmp := Cmp{Op: CmpOp(op % 6), X: v("a"), Y: v("b")}
		env := map[string]int64{"a": int64(a), "b": int64(b)}
		x, _ := Eval(cmp, env)
		y, _ := Eval(MkNot(cmp), env)
		return x != y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: substitution then evaluation equals evaluation with updated env.
func TestQuickSubstEval(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		f := randFormula(r, 3)
		k := int64(r.Intn(7) - 3)
		g := Subst(f, map[string]Term{"a": Const{V: k}})
		env := map[string]int64{
			"a": k,
			"b": int64(r.Intn(7) - 3),
			"c": int64(r.Intn(7) - 3),
		}
		vf, _ := Eval(f, env)
		vg, _ := Eval(g, env)
		if vf != vg {
			t.Fatalf("subst broke semantics: %s vs %s under %v", f, g, env)
		}
	}
}
