package logic

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyGroundComparisons(t *testing.T) {
	cases := []struct {
		in   Formula
		want Formula
	}{
		{Cmp{Op: CmpEq, X: c(3), Y: c(3)}, True},
		{Cmp{Op: CmpLt, X: c(5), Y: c(3)}, False},
		{Cmp{Op: CmpEq, X: v("x"), Y: v("x")}, True},
		{Cmp{Op: CmpNe, X: v("x"), Y: v("x")}, False},
		{Cmp{Op: CmpLe, X: v("x"), Y: v("x")}, True},
		{Cmp{Op: CmpGt, X: v("x"), Y: v("x")}, False},
	}
	for i, cse := range cases {
		if got := Simplify(cse.in); !Equal(got, cse.want) {
			t.Errorf("case %d: %s -> %s, want %s", i, cse.in, got, cse.want)
		}
	}
}

func TestSimplifyTermFolding(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Bin{Op: OpAdd, X: c(2), Y: c(3)}, "5"},
		{Bin{Op: OpAdd, X: v("x"), Y: c(0)}, "x"},
		{Bin{Op: OpAdd, X: c(0), Y: v("x")}, "x"},
		{Bin{Op: OpMul, X: c(1), Y: v("x")}, "x"},
		{Bin{Op: OpMul, X: c(0), Y: v("x")}, "0"},
		{Bin{Op: OpSub, X: v("x"), Y: v("x")}, "0"},
		{Bin{Op: OpSub, X: v("x"), Y: c(0)}, "x"},
		{Bin{Op: OpDiv, X: c(7), Y: c(2)}, "3"},
		{Bin{Op: OpMod, X: v("x"), Y: c(1)}, "0"},
		{Neg{X: Neg{X: v("x")}}, "x"},
		{Neg{X: c(4)}, "-4"},
	}
	for i, cse := range cases {
		if got := SimplifyTerm(cse.in).String(); got != cse.want {
			t.Errorf("case %d: %s -> %s, want %s", i, cse.in, got, cse.want)
		}
	}
}

func TestSimplifyConnectives(t *testing.T) {
	a := Cmp{Op: CmpGt, X: v("a"), Y: c(0)}
	f := MkAnd(a, Cmp{Op: CmpEq, X: c(1), Y: c(1)})
	if got := Simplify(f); !Equal(got, a) {
		t.Errorf("true conjunct not dropped: %s", got)
	}
	g := MkOr(a, Cmp{Op: CmpEq, X: c(1), Y: c(1)})
	if got := Simplify(g); !Equal(got, True) {
		t.Errorf("or with true: %s", got)
	}
	h := Not{F: Cmp{Op: CmpLt, X: c(1), Y: c(2)}}
	if got := Simplify(h); !Equal(got, False) {
		t.Errorf("negated ground truth: %s", got)
	}
}

func TestSimplifyOverflowGuards(t *testing.T) {
	big := Const{V: math.MaxInt64}
	f := Bin{Op: OpAdd, X: big, Y: big}
	if _, folded := SimplifyTerm(f).(Const); folded {
		t.Error("overflowing add must not fold")
	}
	g := Bin{Op: OpMul, X: big, Y: Const{V: 3}}
	if _, folded := SimplifyTerm(g).(Const); folded {
		t.Error("overflowing mul must not fold")
	}
	h := Neg{X: Const{V: math.MinInt64}}
	if _, folded := SimplifyTerm(h).(Const); folded {
		t.Error("-MinInt64 must not fold")
	}
}

// Property: Simplify preserves evaluation.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		g := Simplify(f)
		env := map[string]int64{
			"a": int64(r.Intn(11) - 5),
			"b": int64(r.Intn(11) - 5),
			"c": int64(r.Intn(11) - 5),
		}
		vf, e1 := Eval(f, env)
		vg, e2 := Eval(g, env)
		if e1 != nil || e2 != nil {
			// Division by zero can appear in random terms; both must
			// agree on erroring only if the simplifier didn't remove
			// the division. Skip these.
			continue
		}
		if vf != vg {
			t.Fatalf("Simplify changed semantics:\n in:  %s = %v\n out: %s = %v\n env: %v",
				f, vf, g, vg, env)
		}
	}
}
