package logic

import (
	"fmt"
	"sync"
	"testing"
)

// gcFormula builds a distinct small formula per (tag, i) so tests can
// populate the intern table with controllable, non-colliding entries.
func gcFormula(tag string, i int) Formula {
	return Cmp{
		Op: CmpLe,
		X:  Bin{Op: OpAdd, X: Var{Name: fmt.Sprintf("%s%d", tag, i)}, Y: Const{V: int64(i)}},
		Y:  Const{V: int64(i + 1)},
	}
}

func TestInternEpochCollect(t *testing.T) {
	base := InternedCount()

	old := make([]Formula, 10)
	for i := range old {
		old[i] = Intern(gcFormula("gcold", i))
	}
	if InternedCount() <= base {
		t.Fatal("interning must grow the table")
	}

	// Two epochs pass; "hot" entries are touched in the newest epoch by
	// re-interning a meta-free copy (a node that already carries its
	// meta bypasses the table and cannot refresh its stamp).
	AdvanceInternEpoch()
	AdvanceInternEpoch()
	hot := Intern(gcFormula("gcold", 3))

	removed := CollectInterned(2)
	if removed == 0 {
		t.Fatal("collection must remove the stale entries")
	}

	// The hot entry survived: re-interning still shares its node.
	if formulaMeta(Intern(gcFormula("gcold", 3))) != formulaMeta(hot) {
		t.Fatal("entry touched within the retention window must survive collection")
	}

	// Collected nodes stay fully usable: metas remain valid, equality
	// and canonical keys are unaffected; only sharing is rebuilt fresh.
	for i, f := range old {
		if !Equal(f, gcFormula("gcold", i)) {
			t.Fatalf("collected node %d must still compare equal to its structure", i)
		}
		g := Intern(gcFormula("gcold", i))
		if !Equal(f, g) {
			t.Fatalf("re-interned node %d must equal the collected one", i)
		}
		if Key(f) != Key(g) {
			t.Fatalf("canonical keys must agree across collection for node %d", i)
		}
	}
}

func TestInternCollectKeepFloor(t *testing.T) {
	Intern(gcFormula("gcfloor", 1))
	ep := AdvanceInternEpoch()
	if ep == 0 {
		t.Fatal("AdvanceInternEpoch must move forward")
	}
	cur := Intern(gcFormula("gcfloor", 2))
	// keep < 1 clamps to 1: only the current epoch survives.
	CollectInterned(0)
	if formulaMeta(Intern(gcFormula("gcfloor", 2))) != formulaMeta(cur) {
		t.Fatal("current-epoch entry must survive a keep=0 collection")
	}
}

// TestInternGCUnderLoad hammers the interner from many goroutines while
// another advances epochs and collects — the resident-service pattern.
// The race detector (logic is in RACE_PKGS) checks synchronization; the
// assertions check that concurrent collection never breaks equality or
// key stability.
func TestInternGCUnderLoad(t *testing.T) {
	const workers = 8
	const rounds = 200
	var collector sync.WaitGroup
	stop := make(chan struct{})
	collector.Add(1)
	go func() {
		defer collector.Done()
		for {
			select {
			case <-stop:
				return
			default:
				AdvanceInternEpoch()
				CollectInterned(2)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				f := Intern(gcFormula("gcload", i%17))
				g := Intern(gcFormula("gcload", i%17))
				if !Equal(f, g) {
					t.Errorf("worker %d: interned copies must stay equal under GC", w)
					return
				}
				if Key(f) != Key(g) {
					t.Errorf("worker %d: canonical keys must stay stable under GC", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	collector.Wait()
}
