// Package alias implements the may- and must-alias analyses required by
// the pointer generalization of path slicing (§3.4 of the paper).
//
// The analysis is a flow-insensitive, Andersen-style points-to
// computation specialized to MiniC, where pointers arise only from
// address-of expressions (&x), pointer copies (p := q), and null
// (p := 0); MiniC has no pointers-to-pointers, so no indirect stores of
// pointers exist and the constraint system is a pure copy graph.
//
// MayAlias is an over-approximation and MustAlias an under-approximation
// of the true aliasing relation, as §3.4 requires.
package alias

import (
	"sort"

	"pathslice/internal/cfa"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
)

// Info is the result of the points-to analysis over a whole program.
type Info struct {
	prog *cfa.Program
	// pts maps each pointer variable to the set of variables it may
	// point to.
	pts map[string]map[string]struct{}
}

// Analyze computes points-to sets for every pointer variable in prog.
func Analyze(prog *cfa.Program) *Info {
	in := &Info{prog: prog, pts: make(map[string]map[string]struct{})}

	// Copy graph: copyTo[q] = pointers that receive q's points-to set.
	copyTo := make(map[string][]string)
	ensure := func(p string) map[string]struct{} {
		s, ok := in.pts[p]
		if !ok {
			s = make(map[string]struct{})
			in.pts[p] = s
		}
		return s
	}

	for _, fname := range prog.Order {
		fn := prog.Funcs[fname]
		for _, e := range fn.Edges {
			if e.Op.Kind != cfa.OpAssign || e.Op.LHS.Deref {
				continue // stores through *p cannot store pointers in MiniC
			}
			lhs := e.Op.LHS.Var
			if prog.Types[lhs] != ast.TypeIntPtr {
				continue
			}
			switch rhs := e.Op.RHS.(type) {
			case *ast.Unary:
				if rhs.Op == token.AMP {
					if id, ok := rhs.X.(*ast.Ident); ok {
						ensure(lhs)[id.Name] = struct{}{}
					}
				}
			case *ast.Ident:
				copyTo[rhs.Name] = append(copyTo[rhs.Name], lhs)
				ensure(lhs)
			case *ast.IntLit:
				// p := 0 (null): points to nothing.
				ensure(lhs)
			}
		}
	}

	// Propagate to a fixpoint over the copy graph.
	changed := true
	for changed {
		changed = false
		for src, dsts := range copyTo {
			srcSet := in.pts[src]
			for _, dst := range dsts {
				dstSet := ensure(dst)
				for v := range srcSet {
					if _, ok := dstSet[v]; !ok {
						dstSet[v] = struct{}{}
						changed = true
					}
				}
			}
		}
	}
	return in
}

// Pts returns the points-to set of pointer variable p, sorted.
func (in *Info) Pts(p string) []string {
	set := in.pts[p]
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// MayAlias reports whether two lvalues may denote the same storage
// location (over-approximation).
func (in *Info) MayAlias(a, b cfa.Lvalue) bool {
	if a == b {
		return true
	}
	switch {
	case !a.Deref && !b.Deref:
		return a.Var == b.Var
	case a.Deref && !b.Deref:
		_, ok := in.pts[a.Var][b.Var]
		return ok
	case !a.Deref && b.Deref:
		_, ok := in.pts[b.Var][a.Var]
		return ok
	default: // both derefs
		pa, pb := in.pts[a.Var], in.pts[b.Var]
		if len(pb) < len(pa) {
			pa, pb = pb, pa
		}
		for v := range pa {
			if _, ok := pb[v]; ok {
				return true
			}
		}
		return false
	}
}

// MustAlias reports whether two lvalues definitely denote the same
// storage location (under-approximation). *p must-aliases x exactly
// when the over-approximate points-to set of p is the singleton {x}:
// then every run-time target of p is x.
func (in *Info) MustAlias(a, b cfa.Lvalue) bool {
	if a == b {
		return true
	}
	single := func(p string) (string, bool) {
		s := in.pts[p]
		if len(s) != 1 {
			return "", false
		}
		for v := range s {
			return v, true
		}
		return "", false
	}
	switch {
	case a.Deref && !b.Deref:
		v, ok := single(a.Var)
		return ok && v == b.Var
	case !a.Deref && b.Deref:
		v, ok := single(b.Var)
		return ok && v == a.Var
	case a.Deref && b.Deref:
		va, oka := single(a.Var)
		vb, okb := single(b.Var)
		return oka && okb && va == vb
	}
	return false
}

// WrittenVars returns the concrete variables that assigning to lv may
// write: {x} for a variable, pts(p) for *p.
func (in *Info) WrittenVars(lv cfa.Lvalue) []string {
	if !lv.Deref {
		return []string{lv.Var}
	}
	return in.Pts(lv.Var)
}

// Touches reports whether writing the variables in written may change
// the value or meaning of lvalue lv: a variable is touched if written;
// a dereference *p is touched if p itself is written (retargeting the
// pointer) or any may-target of p is written.
func (in *Info) Touches(lv cfa.Lvalue, written map[string]struct{}) bool {
	if _, ok := written[lv.Var]; ok {
		return true
	}
	if !lv.Deref {
		return false
	}
	for v := range in.pts[lv.Var] {
		if _, ok := written[v]; ok {
			return true
		}
	}
	return false
}

// MustWritten returns the lvalues certainly overwritten by an
// assignment to lv (used to kill entries of the live set, §3.4): lv
// itself when it is a variable; the must-alias target for *p. An
// assignment to a variable x also certainly overwrites *q for every
// pointer q whose points-to set is exactly {x}.
func (in *Info) MustWritten(lv cfa.Lvalue) []cfa.Lvalue {
	if lv.Deref {
		s := in.pts[lv.Var]
		if len(s) == 1 {
			for v := range s {
				return []cfa.Lvalue{lv, {Var: v}}
			}
		}
		return []cfa.Lvalue{lv}
	}
	out := []cfa.Lvalue{lv}
	for p, s := range in.pts {
		if len(s) == 1 {
			if _, ok := s[lv.Var]; ok {
				out = append(out, cfa.Lvalue{Var: p, Deref: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return !out[i].Deref && out[j].Deref
	})
	return out
}
