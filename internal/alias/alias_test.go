package alias_test

import (
	"reflect"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
)

func analyze(t *testing.T, src string) *alias.Info {
	t.Helper()
	return alias.Analyze(compile.MustSource(src))
}

func lv(v string) cfa.Lvalue    { return cfa.Lvalue{Var: v} }
func deref(v string) cfa.Lvalue { return cfa.Lvalue{Var: v, Deref: true} }

func TestPtsDirect(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p; int *q;
		void main() {
			p = &x;
			q = &y;
		}`)
	if got := in.Pts("p"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("pts(p) = %v", got)
	}
	if got := in.Pts("q"); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestPtsCopyPropagation(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p; int *q; int *r;
		void main() {
			p = &x;
			q = p;
			r = q;
			q = &y;
		}`)
	if got := in.Pts("r"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("pts(r) = %v (flow-insensitive: q's &y flows through the copy)", got)
	}
	if got := in.Pts("q"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestPtsThroughCalls(t *testing.T) {
	// Pointer parameters flow through the $arg transfer variables.
	in := analyze(t, `
		int x; int *g;
		void set(int *p) { g = p; }
		void main() { set(&x); }`)
	if got := in.Pts("g"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("pts(g) = %v", got)
	}
	if got := in.Pts("set::p"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("pts(set::p) = %v", got)
	}
}

func TestMayAlias(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p; int *q;
		void main() {
			if (nondet()) { p = &x; } else { p = &y; }
			q = &y;
		}`)
	cases := []struct {
		a, b cfa.Lvalue
		want bool
	}{
		{lv("x"), lv("x"), true},
		{lv("x"), lv("y"), false},
		{deref("p"), lv("x"), true},
		{deref("p"), lv("y"), true},
		{deref("q"), lv("x"), false},
		{deref("q"), lv("y"), true},
		{deref("p"), deref("q"), true}, // both may target y
		{lv("p"), deref("p"), false},   // the pointer is not its target
	}
	for _, c := range cases {
		if got := in.MayAlias(c.a, c.b); got != c.want {
			t.Errorf("MayAlias(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := in.MayAlias(c.b, c.a); got != c.want {
			t.Errorf("MayAlias(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestMustAlias(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p; int *q; int *r;
		void main() {
			p = &x;
			if (nondet()) { q = &x; } else { q = &y; }
			r = &x;
		}`)
	if !in.MustAlias(deref("p"), lv("x")) {
		t.Error("*p must alias x (singleton points-to)")
	}
	if in.MustAlias(deref("q"), lv("x")) {
		t.Error("*q may also be y: not a must alias")
	}
	if !in.MustAlias(deref("p"), deref("r")) {
		t.Error("*p and *r both must target x")
	}
	if !in.MustAlias(lv("x"), lv("x")) {
		t.Error("reflexivity")
	}
	if in.MustAlias(lv("x"), lv("y")) {
		t.Error("distinct variables never must-alias")
	}
}

func TestMustAliasUnderapproximatesMayAlias(t *testing.T) {
	in := analyze(t, `
		int a; int b; int *p; int *q;
		void main() {
			p = &a;
			q = p;
			if (nondet()) { q = &b; }
			*p = 1;
			*q = 2;
		}`)
	all := []cfa.Lvalue{lv("a"), lv("b"), lv("p"), lv("q"), deref("p"), deref("q")}
	for _, x := range all {
		for _, y := range all {
			if in.MustAlias(x, y) && !in.MayAlias(x, y) {
				t.Errorf("MustAlias(%v,%v) without MayAlias", x, y)
			}
		}
	}
}

func TestWrittenVarsAndTouches(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p;
		void main() {
			if (nondet()) { p = &x; } else { p = &y; }
			*p = 3;
		}`)
	if got := in.WrittenVars(deref("p")); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("WrittenVars(*p) = %v", got)
	}
	if got := in.WrittenVars(lv("x")); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("WrittenVars(x) = %v", got)
	}
	written := map[string]struct{}{"x": {}}
	if !in.Touches(lv("x"), written) {
		t.Error("x touched by writing x")
	}
	if in.Touches(lv("y"), written) {
		t.Error("y not touched by writing x")
	}
	if !in.Touches(deref("p"), written) {
		t.Error("*p touched by writing a may-target")
	}
	if !in.Touches(deref("p"), map[string]struct{}{"p": {}}) {
		t.Error("*p touched by retargeting p")
	}
}

func TestMustWritten(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p; int *q;
		void main() {
			p = &x;
			if (nondet()) { q = &x; } else { q = &y; }
			*p = 1;
			x = 2;
		}`)
	// Assigning *p (pts(p) = {x}) certainly writes x too.
	got := in.MustWritten(deref("p"))
	wantHas := func(l cfa.Lvalue) {
		for _, g := range got {
			if g == l {
				return
			}
		}
		t.Errorf("MustWritten(*p) = %v missing %v", got, l)
	}
	wantHas(deref("p"))
	wantHas(lv("x"))
	// Assigning x certainly overwrites *p (singleton pts) but not *q.
	got = in.MustWritten(lv("x"))
	found := map[cfa.Lvalue]bool{}
	for _, g := range got {
		found[g] = true
	}
	if !found[lv("x")] || !found[deref("p")] {
		t.Errorf("MustWritten(x) = %v", got)
	}
	if found[deref("q")] {
		t.Errorf("MustWritten(x) must not include *q: %v", got)
	}
}
