package bddrel_test

import (
	"reflect"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/bddrel"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/dataflow"
	"pathslice/internal/modref"
	"pathslice/internal/synth"
)

func build(t *testing.T, src string) (*cfa.Program, *dataflow.Info, *bddrel.Info) {
	t.Helper()
	prog := compile.MustSource(src)
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	return prog, dataflow.Analyze(prog, al, mr), bddrel.Analyze(prog, al, mr)
}

var crossCheckSources = []string{
	`int a; int b;
	 void main() {
		a = 1;
		if (a > 0) { b = 2; } else { a = 3; }
		while (b < 5) { b = b + 1; }
		a = b;
	 }`,
	`int x; int y; int *p;
	 void sub() { y = 7; }
	 void main() {
		p = &x;
		*p = 1;
		sub();
		if (x == y) { x = 0; }
	 }`,
	`int g;
	 void f() { g = g * 2; }
	 void main() {
		g = 1;
		for (int i = 0; i < 4; i = i + 1) { f(); }
		if (g > 8) { error; }
	 }`,
}

// TestAgreesWithBitsetImplementation: the BDD-backed relations must be
// definitionally equal to the dense ones, on every location pair.
func TestAgreesWithBitsetImplementation(t *testing.T) {
	for si, src := range crossCheckSources {
		prog, df, br := build(t, src)
		for _, fn := range prog.Funcs {
			for _, a := range fn.Locs {
				for _, b := range fn.Locs {
					want := df.MustWrittenBetween(a, b)
					got := br.WrittenBetween(a, b)
					if !reflect.DeepEqual(normalize(got), normalize(want)) {
						t.Errorf("src %d %s: WrittenBetween(%v,%v): bdd %v vs bitset %v",
							si, fn.Name, a, b, got, want)
					}
					if a != b {
						wb := df.MustBy(a, b)
						gb := br.By(a, b)
						if wb != gb {
							t.Errorf("src %d %s: By(%v,%v): bdd %v vs bitset %v",
								si, fn.Name, a, b, gb, wb)
						}
					}
				}
			}
		}
	}
}

func normalize(m map[string]struct{}) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// TestAgreesOnGeneratedBenchmark runs the cross-check over a synthetic
// benchmark program (larger CFAs, call edges contributing Mods sets).
func TestAgreesOnGeneratedBenchmark(t *testing.T) {
	src := synth.Generate(synth.PaperProfiles(0.1)[0])
	// The raw benchmark calls intrinsics; strip them by regenerating a
	// noise-only profile instead.
	p := synth.Profile{
		Name: "xcheck", CheckFns: 0, NoiseFns: 6, ComplexFns: 2,
		LoopBound: 5, Seed: 77,
	}
	src = synth.Generate(p)
	prog, df, br := build(t, src)
	for _, fnName := range prog.Order {
		fn := prog.Funcs[fnName]
		for ai := 0; ai < len(fn.Locs); ai += 2 {
			for bi := 1; bi < len(fn.Locs); bi += 3 {
				a, b := fn.Locs[ai], fn.Locs[bi]
				if !reflect.DeepEqual(normalize(br.WrittenBetween(a, b)), normalize(df.MustWrittenBetween(a, b))) {
					t.Fatalf("%s: WrittenBetween(%v,%v) disagrees", fnName, a, b)
				}
				if a != b && br.By(a, b) != df.MustBy(a, b) {
					t.Fatalf("%s: By(%v,%v) disagrees", fnName, a, b)
				}
			}
		}
	}
	if br.Nodes() == 0 {
		t.Error("no BDD nodes allocated?")
	}
}

// TestWrBtQueryInterface checks the live-set query wrapper.
func TestWrBtQueryInterface(t *testing.T) {
	prog, df, br := build(t, crossCheckSources[0])
	main := prog.Funcs["main"]
	live := cfa.NewLvalSet(cfa.Lvalue{Var: "b"})
	for _, a := range main.Locs {
		for _, b := range main.Locs {
			if df.MustWrBt(a, b, live) != br.WrBt(a, b, live) {
				t.Errorf("WrBt(%v,%v,{b}) disagrees", a, b)
			}
		}
	}
}
