// Package bddrel implements the WrBt and By analyses of §4.1 with
// BDD-encoded sets — the scaling avenue the paper proposes in §5
// ("efficient implementations of these analyses using state-of-the-art
// techniques like BDDs ... can ensure that the techniques scale to
// large programs. We are currently investigating such algorithms.").
//
// Encoding: within each CFA, edges are numbered 0..m-1 and locations
// 0..n-1; a set is a BDD over ⌈log₂⌉ boolean variables holding the
// binary encoding of the member index. Reach-from/reach-to sets per
// location are computed with the same least-fixpoint equations as
// internal/dataflow, but unions become BDD disjunctions that share
// structure across locations.
//
// The results are definitionally equal to internal/dataflow's; the
// equivalence is asserted by this package's tests, and the ablation
// benchmark in the repository root compares the two.
package bddrel

import (
	"math/bits"

	"pathslice/internal/alias"
	"pathslice/internal/bdd"
	"pathslice/internal/cfa"
	"pathslice/internal/modref"
)

// Info answers WrBt/By queries with BDD-backed sets.
type Info struct {
	prog  *cfa.Program
	alias *alias.Info
	mods  *modref.Info
	fns   map[string]*fnInfo
}

type fnInfo struct {
	fn *cfa.CFA
	m  *bdd.Manager
	// edgeBits / locBits: width of the index encodings.
	edgeBits, locBits int
	// edgeOf[i]: minterm for edge i (variables 0..edgeBits-1).
	edgeOf []bdd.Ref
	// out[loc] / in[loc]: edge sets reachable-from / reaching.
	out, in []bdd.Ref
	// writes[edge]: variables the edge may write.
	writes []map[string]struct{}
	// byCache[pcStep]: location set that can bypass pcStep.
	byCache map[int]bdd.Ref
	// locOf[i]: minterm for location i.
	locOf []bdd.Ref
	// wrBtCache: per (src,dst) written-variable union.
	wrBtCache map[int]map[string]struct{}
}

// Analyze computes the per-function relations.
func Analyze(prog *cfa.Program, al *alias.Info, mr *modref.Info) *Info {
	info := &Info{prog: prog, alias: al, mods: mr, fns: make(map[string]*fnInfo)}
	for _, name := range prog.Order {
		info.fns[name] = info.analyzeFn(prog.Funcs[name])
	}
	return info
}

func width(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

func (info *Info) analyzeFn(fn *cfa.CFA) *fnInfo {
	nLocs, nEdges := len(fn.Locs), len(fn.Edges)
	fi := &fnInfo{
		fn:        fn,
		m:         bdd.New(),
		edgeBits:  width(nEdges),
		locBits:   width(nLocs),
		edgeOf:    make([]bdd.Ref, nEdges),
		locOf:     make([]bdd.Ref, nLocs),
		out:       make([]bdd.Ref, nLocs),
		in:        make([]bdd.Ref, nLocs),
		writes:    make([]map[string]struct{}, nEdges),
		byCache:   make(map[int]bdd.Ref),
		wrBtCache: make(map[int]map[string]struct{}),
	}
	for i := range fi.edgeOf {
		fi.edgeOf[i] = fi.m.Minterm(i, 0, fi.edgeBits)
	}
	// Location minterms live above the edge variables so the two
	// vocabularies never collide.
	for i := range fi.locOf {
		fi.locOf[i] = fi.m.Minterm(i, fi.edgeBits, fi.locBits)
	}
	for _, e := range fn.Edges {
		w := make(map[string]struct{})
		switch e.Op.Kind {
		case cfa.OpAssign:
			for _, v := range info.alias.WrittenVars(e.Op.LHS) {
				w[v] = struct{}{}
			}
		case cfa.OpCall:
			for v := range info.mods.ModsVarSet(e.Op.Callee) {
				w[v] = struct{}{}
			}
		}
		fi.writes[e.Index] = w
	}
	for i := range fi.out {
		fi.out[i] = bdd.False
		fi.in[i] = bdd.False
	}
	// Least fixpoints, as in §4.1:
	//   Out.pc = ∪_{e:(pc,·,pc')} {e} ∪ Out.pc'
	//   In.pc  = ∪_{e:(pc',·,pc)} {e} ∪ In.pc'
	changed := true
	for changed {
		changed = false
		for i := nEdges - 1; i >= 0; i-- {
			e := fn.Edges[i]
			src := fi.out[e.Src.Index]
			next := fi.m.Or(src, fi.m.Or(fi.edgeOf[e.Index], fi.out[e.Dst.Index]))
			if next != src {
				fi.out[e.Src.Index] = next
				changed = true
			}
		}
	}
	changed = true
	for changed {
		changed = false
		for i := 0; i < nEdges; i++ {
			e := fn.Edges[i]
			dst := fi.in[e.Dst.Index]
			next := fi.m.Or(dst, fi.m.Or(fi.edgeOf[e.Index], fi.in[e.Src.Index]))
			if next != dst {
				fi.in[e.Dst.Index] = next
				changed = true
			}
		}
	}
	return fi
}

func (info *Info) fnOf(loc *cfa.Loc) *fnInfo { return info.fns[loc.Fn.Name] }

// WrittenBetween returns the variables that may be written on some path
// from src to dst (same CFA): the members of Out.src ∧ In.dst.
func (info *Info) WrittenBetween(src, dst *cfa.Loc) map[string]struct{} {
	if src.Fn != dst.Fn {
		panic("bddrel: WrittenBetween across CFAs")
	}
	fi := info.fnOf(src)
	key := src.Index*len(fi.fn.Locs) + dst.Index
	if cached, ok := fi.wrBtCache[key]; ok {
		return cached
	}
	between := fi.m.And(fi.out[src.Index], fi.in[dst.Index])
	union := make(map[string]struct{})
	fi.m.AllSat(between, fi.edgeBits, func(b []bool) bool {
		idx := 0
		for i, set := range b {
			if set {
				idx |= 1 << uint(i)
			}
		}
		if idx < len(fi.writes) {
			for v := range fi.writes[idx] {
				union[v] = struct{}{}
			}
		}
		return true
	})
	fi.wrBtCache[key] = union
	return union
}

// WrBt reports WrBt.(src, dst).L.
func (info *Info) WrBt(src, dst *cfa.Loc, live cfa.LvalSet) bool {
	written := info.WrittenBetween(src, dst)
	if len(written) == 0 {
		return false
	}
	for l := range live {
		if info.alias.Touches(l, written) {
			return true
		}
	}
	return false
}

// By reports pc ∈ By.pcStep: pc can reach the exit avoiding pcStep. The
// bypass set is computed as a BDD over the location vocabulary with the
// backward fixpoint of §4.1.
func (info *Info) By(pc, pcStep *cfa.Loc) bool {
	if pc.Fn != pcStep.Fn {
		panic("bddrel: By across CFAs")
	}
	fi := info.fnOf(pc)
	set, ok := fi.byCache[pcStep.Index]
	if !ok {
		set = info.computeBy(fi, pcStep)
		fi.byCache[pcStep.Index] = set
	}
	// Membership: evaluate the set BDD at pc's encoding.
	idx := pc.Index
	return fi.m.Eval(set, func(v int) bool {
		bit := v - fi.edgeBits
		return bit >= 0 && idx&(1<<uint(bit)) != 0
	})
}

// computeBy: least fixpoint By.pcStep = ({exit} ∪ {pc' | ∃ succ ∈ By})
// \ {pcStep}, as a location-set BDD.
func (info *Info) computeBy(fi *fnInfo, stepIdx *cfa.Loc) bdd.Ref {
	fn := fi.fn
	set := bdd.False
	if fn.Exit != stepIdx {
		set = fi.locOf[fn.Exit.Index]
	} else {
		return bdd.False
	}
	changed := true
	for changed {
		changed = false
		for _, e := range fn.Edges {
			if e.Src == stepIdx || e.Src.Fn != fn {
				continue
			}
			// e.Src joins when e.Dst is in the set.
			if !info.member(fi, set, e.Dst.Index) {
				continue
			}
			next := fi.m.Or(set, fi.locOf[e.Src.Index])
			if next != set {
				set = next
				changed = true
			}
		}
	}
	return set
}

func (info *Info) member(fi *fnInfo, set bdd.Ref, locIdx int) bool {
	return fi.m.Eval(set, func(v int) bool {
		bit := v - fi.edgeBits
		return bit >= 0 && locIdx&(1<<uint(bit)) != 0
	})
}

// Nodes returns the total BDD nodes allocated across all functions, a
// proxy for the representation's footprint.
func (info *Info) Nodes() int {
	total := 0
	for _, fi := range info.fns {
		total += fi.m.NumNodes()
	}
	return total
}
