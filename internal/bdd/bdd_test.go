package bdd

import (
	"math/rand"
	"testing"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New()
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal ops wrong")
	}
	x := m.Var(0)
	if m.And(x, x) != x || m.Or(x, x) != x {
		t.Error("idempotence")
	}
	if m.And(x, m.Not(x)) != False {
		t.Error("x ∧ ¬x must be false")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Error("x ∨ ¬x must be true")
	}
	if m.NVar(0) != m.Not(x) {
		t.Error("NVar must equal Not(Var)")
	}
}

func TestHashConsing(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	a := m.And(x, y)
	b := m.And(y, x)
	if a != b {
		t.Error("structural equality must give identical refs (canonicity)")
	}
	c := m.Or(m.And(x, y), m.And(x, y))
	if c != a {
		t.Error("or-idempotence through cache")
	}
}

// evalFormula is the reference: evaluate the boolean combination
// directly.
func TestAgainstTruthTables(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(x, m.Not(y)), m.Xor(y, z)) // x¬y ∨ (y⊕z)
	for bits := 0; bits < 8; bits++ {
		bx, by, bz := bits&1 != 0, bits&2 != 0, bits&4 != 0
		want := (bx && !by) || (by != bz)
		got := m.Eval(f, func(v int) bool {
			switch v {
			case 0:
				return bx
			case 1:
				return by
			default:
				return bz
			}
		})
		if got != want {
			t.Errorf("bits %03b: got %v want %v", bits, got, want)
		}
	}
}

func TestIteAndDiff(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	ite := m.Ite(x, y, z)
	for bits := 0; bits < 8; bits++ {
		bx, by, bz := bits&1 != 0, bits&2 != 0, bits&4 != 0
		want := (bx && by) || (!bx && bz)
		got := m.Eval(ite, func(v int) bool { return []bool{bx, by, bz}[v] })
		if got != want {
			t.Errorf("ite bits %03b", bits)
		}
	}
	if m.Diff(x, x) != False {
		t.Error("x \\ x = false")
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		r    Ref
		want int64
	}{
		{True, 8},
		{False, 0},
		{x, 4},
		{m.And(x, y), 2},
		{m.And(m.And(x, y), z), 1},
		{m.Or(x, y), 6},
	}
	for i, c := range cases {
		if got := m.SatCount(c.r, 3); got.Int64() != c.want {
			t.Errorf("case %d: %d want %d", i, got.Int64(), c.want)
		}
	}
}

func TestExists(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	// ∃x. x∧y == y
	if got := m.Exists(m.And(x, y), []int{0}); got != y {
		t.Error("∃x. x∧y must be y")
	}
	// ∃x. x∧¬x == false
	if got := m.Exists(m.And(x, m.Not(x)), []int{0}); got != False {
		t.Error("∃x. false must be false")
	}
	// ∃y. x⊕y == true
	if got := m.Exists(m.Xor(x, y), []int{1}); got != True {
		t.Error("∃y. x⊕y must be true")
	}
}

func TestAllSatAndMinterm(t *testing.T) {
	m := New()
	const width = 4
	// The set {3, 5, 11}.
	set := False
	for _, v := range []int{3, 5, 11} {
		set = m.Or(set, m.Minterm(v, 0, width))
	}
	var got []int
	m.AllSat(set, width, func(bits []bool) bool {
		v := 0
		for i, b := range bits {
			if b {
				v |= 1 << uint(i)
			}
		}
		got = append(got, v)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("members: %v", got)
	}
	want := map[int]bool{3: true, 5: true, 11: true}
	for _, v := range got {
		if !want[v] {
			t.Errorf("spurious member %d", v)
		}
	}
	if m.SatCount(set, width).Int64() != 3 {
		t.Error("satcount disagrees")
	}
	// Early stop.
	n := 0
	m.AllSat(set, width, func([]bool) bool { n++; return false })
	if n != 1 {
		t.Errorf("AllSat did not stop: %d", n)
	}
}

// Property: random formulas vs truth tables over 5 variables.
func TestQuickRandomFormulas(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const nvars = 5
	type tree struct {
		op   int // 0 var, 1 not, 2 and, 3 or, 4 xor
		v    int
		l, r *tree
	}
	var gen func(depth int) *tree
	gen = func(depth int) *tree {
		if depth == 0 || r.Intn(4) == 0 {
			return &tree{op: 0, v: r.Intn(nvars)}
		}
		op := 1 + r.Intn(4)
		tr := &tree{op: op, l: gen(depth - 1)}
		if op != 1 {
			tr.r = gen(depth - 1)
		}
		return tr
	}
	var build func(m *Manager, t *tree) Ref
	build = func(m *Manager, tr *tree) Ref {
		switch tr.op {
		case 0:
			return m.Var(tr.v)
		case 1:
			return m.Not(build(m, tr.l))
		case 2:
			return m.And(build(m, tr.l), build(m, tr.r))
		case 3:
			return m.Or(build(m, tr.l), build(m, tr.r))
		default:
			return m.Xor(build(m, tr.l), build(m, tr.r))
		}
	}
	var eval func(tr *tree, bits int) bool
	eval = func(tr *tree, bits int) bool {
		switch tr.op {
		case 0:
			return bits&(1<<uint(tr.v)) != 0
		case 1:
			return !eval(tr.l, bits)
		case 2:
			return eval(tr.l, bits) && eval(tr.r, bits)
		case 3:
			return eval(tr.l, bits) || eval(tr.r, bits)
		default:
			return eval(tr.l, bits) != eval(tr.r, bits)
		}
	}
	m := New()
	for trial := 0; trial < 200; trial++ {
		tr := gen(5)
		f := build(m, tr)
		count := 0
		for bits := 0; bits < 1<<nvars; bits++ {
			want := eval(tr, bits)
			b := bits
			got := m.Eval(f, func(v int) bool { return b&(1<<uint(v)) != 0 })
			if got != want {
				t.Fatalf("trial %d bits %05b: got %v want %v", trial, bits, got, want)
			}
			if want {
				count++
			}
		}
		if got := m.SatCount(f, nvars); got.Int64() != int64(count) {
			t.Fatalf("trial %d: satcount %d want %d", trial, got.Int64(), count)
		}
	}
}

// Canonicity: equivalent formulas share one node.
func TestQuickCanonicity(t *testing.T) {
	m := New()
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	// De Morgan.
	a := m.Not(m.And(x, y))
	b := m.Or(m.Not(x), m.Not(y))
	if a != b {
		t.Error("De Morgan pairs must be the same node")
	}
	// Distribution.
	c := m.And(x, m.Or(y, z))
	d := m.Or(m.And(x, y), m.And(x, z))
	if c != d {
		t.Error("distribution pairs must be the same node")
	}
}
