// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with hash-consing and memoized apply operations — the
// representation the paper proposes for scaling the By and WrBt
// analyses ("efficient implementations of these analyses using
// state-of-the-art techniques like BDDs [5, 26, 20] ... can ensure that
// the techniques scale to large programs", §5). Package bddrel builds
// the relational analyses on top.
package bdd

import (
	"fmt"
	"math/big"
)

// Ref is a node reference in a Manager. The constants False and True
// are the terminal nodes.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = int32(1<<31 - 1)

// Manager owns a DAG of hash-consed BDD nodes over variables
// 0..NumVars-1 in natural order.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	// operation caches
	andCache map[[2]Ref]Ref
	orCache  map[[2]Ref]Ref
	xorCache map[[2]Ref]Ref
	notCache map[Ref]Ref
}

// New returns an empty manager.
func New() *Manager {
	m := &Manager{
		unique:   make(map[node]Ref),
		andCache: make(map[[2]Ref]Ref),
		orCache:  make(map[[2]Ref]Ref),
		xorCache: make(map[[2]Ref]Ref),
		notCache: make(map[Ref]Ref),
	}
	// Terminals at indices 0 and 1.
	m.nodes = append(m.nodes,
		node{level: maxLevel}, // False
		node{level: maxLevel}, // True
	)
	return m
}

// NumNodes returns the number of live nodes (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[n]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

// Var returns the BDD for variable v (hi branch true).
func (m *Manager) Var(v int) Ref {
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD for ¬variable v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(int32(v), True, False)
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// And returns a ∧ b.
func (m *Manager) And(a, b Ref) Ref {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := m.andCache[key]; ok {
		return r
	}
	la, lb := m.level(a), m.level(b)
	top := la
	if lb < top {
		top = lb
	}
	alo, ahi := m.cofactors(a, top)
	blo, bhi := m.cofactors(b, top)
	r := m.mk(top, m.And(alo, blo), m.And(ahi, bhi))
	m.andCache[key] = r
	return r
}

// Or returns a ∨ b.
func (m *Manager) Or(a, b Ref) Ref {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := m.orCache[key]; ok {
		return r
	}
	la, lb := m.level(a), m.level(b)
	top := la
	if lb < top {
		top = lb
	}
	alo, ahi := m.cofactors(a, top)
	blo, bhi := m.cofactors(b, top)
	r := m.mk(top, m.Or(alo, blo), m.Or(ahi, bhi))
	m.orCache[key] = r
	return r
}

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Ref) Ref {
	switch {
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return False
	case a == True:
		return m.Not(b)
	case b == True:
		return m.Not(a)
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := m.xorCache[key]; ok {
		return r
	}
	la, lb := m.level(a), m.level(b)
	top := la
	if lb < top {
		top = lb
	}
	alo, ahi := m.cofactors(a, top)
	blo, bhi := m.cofactors(b, top)
	r := m.mk(top, m.Xor(alo, blo), m.Xor(ahi, bhi))
	m.xorCache[key] = r
	return r
}

// Not returns ¬a.
func (m *Manager) Not(a Ref) Ref {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.notCache[a]; ok {
		return r
	}
	n := m.nodes[a]
	r := m.mk(n.level, m.Not(n.lo), m.Not(n.hi))
	m.notCache[a] = r
	return r
}

// Ite returns if-then-else(f, g, h) = (f∧g) ∨ (¬f∧h).
func (m *Manager) Ite(f, g, h Ref) Ref {
	return m.Or(m.And(f, g), m.And(m.Not(f), h))
}

// Diff returns a ∧ ¬b.
func (m *Manager) Diff(a, b Ref) Ref { return m.And(a, m.Not(b)) }

// cofactors returns the (lo, hi) cofactors of r with respect to the
// variable at the given level.
func (m *Manager) cofactors(r Ref, level int32) (Ref, Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Eval evaluates r under the assignment (indexed by variable level).
func (m *Manager) Eval(r Ref, assign func(v int) bool) bool {
	for r != True && r != False {
		n := m.nodes[r]
		if assign(int(n.level)) {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Exists existentially quantifies the given variables out of r.
func (m *Manager) Exists(r Ref, vars []int) Ref {
	want := make(map[int32]bool, len(vars))
	for _, v := range vars {
		want[int32(v)] = true
	}
	memo := make(map[Ref]Ref)
	var ex func(x Ref) Ref
	ex = func(x Ref) Ref {
		if x == True || x == False {
			return x
		}
		if r, ok := memo[x]; ok {
			return r
		}
		n := m.nodes[x]
		lo, hi := ex(n.lo), ex(n.hi)
		var out Ref
		if want[n.level] {
			out = m.Or(lo, hi)
		} else {
			out = m.mk(n.level, lo, hi)
		}
		memo[x] = out
		return out
	}
	return ex(r)
}

// SatCount returns the number of satisfying assignments of r over
// nvars variables.
func (m *Manager) SatCount(r Ref, nvars int) *big.Int {
	memo := make(map[Ref]*big.Rat)
	var count func(x Ref) *big.Rat
	count = func(x Ref) *big.Rat {
		switch x {
		case False:
			return new(big.Rat)
		case True:
			return big.NewRat(1, 1)
		}
		if c, ok := memo[x]; ok {
			return c
		}
		n := m.nodes[x]
		half := big.NewRat(1, 2)
		c := new(big.Rat).Add(
			new(big.Rat).Mul(half, count(n.lo)),
			new(big.Rat).Mul(half, count(n.hi)))
		memo[x] = c
		return c
	}
	frac := count(r)
	total := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(nvars)))
	out := new(big.Rat).Mul(frac, total)
	if !out.IsInt() {
		// r mentions variables ≥ nvars; caller error.
		panic(fmt.Sprintf("bdd: SatCount with nvars=%d too small", nvars))
	}
	return out.Num()
}

// AllSat calls fn for every satisfying assignment over variables
// 0..nvars-1, presented as a bit slice. fn returning false stops the
// enumeration.
func (m *Manager) AllSat(r Ref, nvars int, fn func(bits []bool) bool) {
	bits := make([]bool, nvars)
	var walk func(x Ref, v int) bool
	walk = func(x Ref, v int) bool {
		if x == False {
			return true
		}
		if v == nvars {
			return fn(bits)
		}
		n := m.nodes[x]
		if x == True || n.level > int32(v) {
			// Free variable: both branches.
			bits[v] = false
			if !walk(x, v+1) {
				return false
			}
			bits[v] = true
			return walk(x, v+1)
		}
		bits[v] = false
		if !walk(n.lo, v+1) {
			return false
		}
		bits[v] = true
		return walk(n.hi, v+1)
	}
	walk(r, 0)
}

// Minterm returns the conjunction of literals encoding the integer
// value over the given consecutive variable levels (LSB first).
func (m *Manager) Minterm(value, firstVar, width int) Ref {
	r := True
	for i := width - 1; i >= 0; i-- {
		v := firstVar + i
		if value&(1<<uint(i)) != 0 {
			r = m.And(m.Var(v), r)
		} else {
			r = m.And(m.NVar(v), r)
		}
	}
	return r
}
