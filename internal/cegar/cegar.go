// Package cegar implements a BLAST-style counterexample-guided
// abstraction refinement model checker over CFAs (§5 of the paper: the
// application context in which path slicing runs).
//
// The checker performs predicate-abstraction reachability: abstract
// states are (location, call stack, three-valued predicate valuation);
// the abstract post is computed with weakest-precondition entailment
// queries against the SMT solver. When an abstract path reaches the
// target location, the counterexample-analysis phase runs Algorithm
// PathSlice on it (exactly as the paper's implementation does inside
// BLAST), decides feasibility of the *slice*, and either reports a bug
// with the succinct slice as the witness, or mines new predicates from
// the infeasible slice and restarts.
//
// Without slicing (Options.UseSlicing = false), the raw counterexample
// is analyzed instead — the configuration the paper reports "did not
// scale to any of these examples".
//
// The loop is instrumented through internal/obs: every Check emits a
// "check" span, every refinement round a "cegar-iteration" span (with
// predicate counts and counterexample/slice sizes as attributes), and
// the registry accumulates cegar_* counters — solver calls, abstract
// posts, post-memo hits, states explored, and the solver-worker queue
// high-water mark. See docs/OBSERVABILITY.md for the catalogue.
package cegar

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/faults"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
	"pathslice/internal/logic"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// Registry metrics for the CEGAR loop (see docs/OBSERVABILITY.md).
// Totals accumulate across every Checker in the process; per-check
// attribution stays on Result.
var (
	mChecks           = obs.Default().Counter("cegar_checks_total")
	mRefinements      = obs.Default().Counter("cegar_refinements_total")
	mSolverCalls      = obs.Default().Counter("cegar_solver_calls_total")
	mPostMemoHits     = obs.Default().Counter("cegar_post_memo_hits_total")
	mAbstractPosts    = obs.Default().Counter("cegar_abstract_posts_total")
	mStatesExplored   = obs.Default().Counter("cegar_states_explored_total")
	mPredicates       = obs.Default().Gauge("cegar_predicates")
	mSolverQueueDepth = obs.Default().Gauge("cegar_solver_queue_depth_max")

	// mRecoveredPanics is the process-wide recovered-panic counter
	// shared with internal/core (same registry name → same handle). It
	// counts panics contained at the worker-pool and Check boundaries.
	mRecoveredPanics = obs.Default().Counter("recovered_panics_total")
)

// Verdict classifies a check outcome.
type Verdict int

// The verdicts.
const (
	// VerdictSafe: the target location is unreachable.
	VerdictSafe Verdict = iota
	// VerdictUnsafe: a feasible (slice of a) path to the target exists.
	VerdictUnsafe
	// VerdictTimeout: the work budget or wall-clock deadline was
	// exhausted.
	VerdictTimeout
	// VerdictDiverged: refinement found no new predicates.
	VerdictDiverged
	// VerdictUnknown: a feasibility query could not be decided (solver
	// limit, fault, or contained internal error), so the check can
	// assert neither safety nor a bug. New verdicts append here so the
	// numeric values above stay stable.
	VerdictUnknown
)

// String renders the verdict like the paper's Results column.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "error"
	case VerdictTimeout:
		return "timeout"
	case VerdictDiverged:
		return "diverged"
	case VerdictUnknown:
		return "unknown"
	}
	return "?"
}

// Decided reports whether the verdict is a definitive Safe/Unsafe
// answer (as opposed to a resource- or fault-induced give-up).
func (v Verdict) Decided() bool {
	return v == VerdictSafe || v == VerdictUnsafe
}

// Options configures a check.
type Options struct {
	// UseSlicing runs PathSlice on abstract counterexamples before
	// feasibility analysis and refinement (the paper's contribution).
	UseSlicing bool
	// SlicerOpts forwards options to the path slicer.
	SlicerOpts core.Options
	// MaxRefinements bounds refinement rounds (default 40).
	MaxRefinements int
	// MaxWork bounds total work units — abstract states explored plus
	// solver queries — emulating the paper's wall-clock timeout
	// deterministically (default 200000).
	MaxWork int
	// MaxTraceLen aborts counterexamples longer than this (default
	// 200000 edges).
	MaxTraceLen int
	// DFS makes the reachability search depth-first, which produces the
	// long counterexamples the paper observes with BLAST (§5,
	// Limitations); otherwise breadth-first.
	DFS bool
	// MaxPreds caps the predicate set (default 60).
	MaxPreds int
	// ExactCover disables subsumption-based covering: a state is then
	// only covered by an identical (location, stack, valuation) state.
	// With subsumption (the default, as in lazy abstraction), a state
	// is covered by any visited state at the same location and stack
	// whose valuation is weaker — it represents a superset of concrete
	// states, so exploring the new state cannot reach anything new.
	ExactCover bool
	// NoLocalize disables predicate localization. With localization
	// (the default, in the spirit of lazy abstraction's per-region
	// predicates), a predicate mentioning some function's locals is
	// only evaluated while that function is on the call stack; outside
	// it the value is unknown. This is sound (unknown never constrains)
	// and loses no precision: a MiniC local is always written before it
	// is read within an activation, so stale cross-activation facts are
	// never needed.
	NoLocalize bool
	// SolverWorkers fans the independent per-predicate entailment pairs
	// of the abstract post out over this many goroutines (values <= 1
	// keep the post sequential). The computed valuations, verdicts,
	// refinement counts, and Work are identical to the sequential run:
	// only wall-clock time changes.
	SolverWorkers int
	// Portfolio routes every entailment query through the smt portfolio
	// front-end (incremental vs stateless vs interval-prefilter racing;
	// docs/PERFORMANCE.md). Verdicts are unchanged — every strategy is
	// individually sound — and cached results land under the same
	// canonical keys.
	Portfolio bool
	// PortfolioBatch solves the abstract post's independent entailment
	// queries as one batched solver call per round instead of one
	// SolveCtx per query: the shared precondition prefix is asserted
	// once per support group on an incremental solver (smt.SolveBatchCtx).
	// Valuations, Work, and cache accounting match the serial run.
	PortfolioBatch bool
	// DisableSolverCache turns off the formula-level solver result
	// cache (identical formulas are then re-solved every time).
	DisableSolverCache bool
	// DisablePostMemo turns off abstract-post memoization (every
	// (edge, valuation) successor is then recomputed from scratch).
	DisablePostMemo bool
	// SolverCacheSize bounds the solver cache entries (default
	// smt.DefaultCacheSize).
	SolverCacheSize int
	// SharedCache, when non-nil, replaces the checker's private solver
	// cache with a caller-owned one, letting many checkers (and the
	// slice-feasibility path) share one long-lived verdict store.
	// Cached verdicts are pure facts about formulas, so sharing across
	// programs is sound. Overrides DisableSolverCache/SolverCacheSize.
	// Per-check CacheHits/CacheMisses attribution assumes the cache is
	// not used concurrently by others during the check.
	SharedCache *smt.Cache
	// Deadline bounds the wall-clock time of one Check; zero means no
	// deadline. On expiry the check stops at the next cancellation
	// point and returns VerdictTimeout. Deadlines are sound: they can
	// weaken a verdict to Timeout/Unknown but never flip Safe and
	// Unsafe (docs/ROBUSTNESS.md).
	Deadline time.Duration
	// SolverLimits bounds the abstract-post entailment and refinement
	// queries (the per-query analogue of Deadline). Zero fields keep
	// the solver defaults.
	SolverLimits smt.Limits
	// OnRefinement, when set, observes every counterexample verdict the
	// loop acts on: the raw abstract counterexample, the path actually
	// analyzed (the slice when UseSlicing), and the feasibility status
	// the decision was based on (StatusUnsat for early-stop proofs).
	// The oracle subsystem uses it to cross-check each refinement
	// verdict against concrete replay; it must not mutate the paths.
	OnRefinement func(trace, analyzed cfa.Path, status smt.Status)
}

func (o Options) withDefaults() Options {
	if o.MaxRefinements <= 0 {
		o.MaxRefinements = 40
	}
	if o.MaxWork <= 0 {
		o.MaxWork = 200000
	}
	if o.MaxTraceLen <= 0 {
		o.MaxTraceLen = 200000
	}
	if o.MaxPreds <= 0 {
		o.MaxPreds = 60
	}
	return o
}

// TraceStat records one abstract counterexample and its slice — the
// per-trace data behind Figures 5 and 6.
type TraceStat struct {
	TraceEdges  int
	TraceBlocks int
	SliceEdges  int
	SliceBlocks int
	Feasible    bool
}

// RatioPercent returns slice size as a percentage of trace size (in
// basic blocks), the y-axis of Figures 5 and 6.
func (ts TraceStat) RatioPercent() float64 {
	if ts.TraceBlocks == 0 {
		return 0
	}
	return 100 * float64(ts.SliceBlocks) / float64(ts.TraceBlocks)
}

// Result reports one check.
type Result struct {
	Verdict     Verdict
	Refinements int
	Work        int
	Predicates  int
	// SolverCalls counts the decision-procedure invocations actually
	// issued by the abstract post (branch-pruning and predicate
	// entailment queries). Work, in contrast, is the logical query
	// count — the cost model that feeds MaxWork — and is independent of
	// the cache and memo configuration, so enabling them stretches the
	// same budget over more real progress without changing verdicts.
	SolverCalls int64
	// CacheHits and CacheMisses are the solver-cache counters
	// accumulated during this check (both zero when the cache is
	// disabled; CacheMisses then equals 0 while SolverCalls counts the
	// uncached solves).
	CacheHits, CacheMisses int64
	// PostMemoHits counts abstract-post computations answered (fully or
	// partially) from the (edge, valuation) memo table.
	PostMemoHits int64
	// Witness is the feasible slice (or raw trace without slicing)
	// demonstrating the bug, when Verdict is VerdictUnsafe.
	Witness cfa.Path
	// RawCounterexample is the last abstract counterexample.
	RawCounterexample cfa.Path
	// Traces records every abstract counterexample analyzed.
	Traces []TraceStat
	// Err carries the contained internal error when Verdict is
	// VerdictUnknown because a panic was recovered at the Check
	// boundary; nil otherwise.
	Err error
}

// Checker holds the per-program machinery shared across checks.
type Checker struct {
	prog      *cfa.Program
	slicer    *core.Slicer
	opts      Options
	predScope map[string][]string // predicate → functions whose locals it mentions

	// cache memoizes solver verdicts across states, refinement
	// iterations, and targets; nil when disabled.
	cache *smt.Cache
	// postMemo memoizes abstract-post results keyed by (edge, determined
	// predicate valuation, localization scope). Entries stay valid
	// across refinement iterations — the predicate list only grows, an
	// old predicate's WP entailment depends only on the edge and the
	// determined conjuncts captured in the key, and undetermined new
	// predicates add no conjunct — so a lookup reuses the old prefix
	// and computes only the newly-added predicates. Reset per Check
	// (predicate indices restart).
	postMemo map[string]*postMemoEntry

	// uncachedCalls counts smt.Solve invocations when the cache is
	// disabled (with the cache on, its miss counter plays this role).
	uncachedCalls atomic.Int64
	memoHits      int64
}

// New builds a checker for prog.
func New(prog *cfa.Program, opts Options) *Checker {
	opts = opts.withDefaults()
	c := &Checker{
		prog:      prog,
		slicer:    core.NewWithOptions(prog, opts.SlicerOpts),
		opts:      opts,
		predScope: make(map[string][]string),
	}
	if opts.SharedCache != nil {
		c.cache = opts.SharedCache
	} else if !opts.DisableSolverCache {
		c.cache = smt.NewCache(opts.SolverCacheSize)
	}
	return c
}

// maxPostMemoEntries caps the persistent abstract-post memo; crossing
// it flushes the table at the next Check (a warm service trades the
// occasional cold start for bounded memory).
const maxPostMemoEntries = 1 << 17

// solve routes an abstract-post query through the solver cache, under
// the check's context and per-query limits. A cancelled or
// limit-exhausted query answers StatusUnknown — never a wrong verdict.
func (c *Checker) solve(ctx context.Context, f logic.Formula) smt.Result {
	if c.cache == nil {
		c.uncachedCalls.Add(1)
	}
	if c.opts.Portfolio {
		return smt.CachedSolvePortfolioCtx(ctx, c.cache, f, c.opts.SolverLimits)
	}
	return smt.CachedSolveCtx(ctx, c.cache, f, c.opts.SolverLimits)
}

// solveBatch is the batched analogue of solve: one smt.SolveBatchCtx
// call deciding every formula, with the same cache routing and the same
// uncached-call accounting (one solver call per query).
func (c *Checker) solveBatch(ctx context.Context, fs []logic.Formula) []smt.Result {
	if c.cache == nil {
		c.uncachedCalls.Add(int64(len(fs)))
	}
	return smt.SolveBatchCtx(ctx, fs, smt.BatchOptions{
		Workers: c.opts.SolverWorkers,
		Cache:   c.cache,
		Lim:     c.opts.SolverLimits,
	})
}

// cacheStats snapshots the checker's solver-cache counters (zero when
// the cache is disabled). The process-wide totals live on the obs
// registry (smt_cache_*_total); this private view exists only to
// compute per-check deltas for Result.
func (c *Checker) cacheStats() smt.CacheStats {
	if c.cache == nil {
		return smt.CacheStats{}
	}
	return c.cache.Stats()
}

// Check decides reachability of target. It never panics: internal
// failures are contained and reported as VerdictUnknown with Result.Err
// set.
func (c *Checker) Check(target *cfa.Loc) *Result {
	res, err := c.CheckCtx(context.Background(), target)
	if err != nil {
		return &Result{Verdict: VerdictUnknown, Err: err}
	}
	return res
}

// CheckCtx is Check under a context. The context (and Options.Deadline,
// whichever expires first) bounds wall-clock time: on expiry the check
// stops at the next cancellation point — including inside a running
// solver query — and returns VerdictTimeout. A panic escaping any layer
// below is recovered here and returned as an error, leaving the Checker
// usable for further checks.
func (c *Checker) CheckCtx(ctx context.Context, target *cfa.Loc) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			mRecoveredPanics.Inc()
			res, err = nil, fmt.Errorf("cegar: panic during check: %v", r)
		}
	}()
	csp := obs.StartNamedSpan(obs.PhaseCheck, "check "+target.String())
	res = &Result{}
	// The abstract-post memo persists across checks: its keys are
	// content-based (edge, determined conjuncts by predicate string,
	// scope), so entries from an earlier check of the same program stay
	// valid even though predicate indices restart. A long-lived Checker
	// (cmd/slicerd) therefore answers repeat traffic from a warm memo;
	// the cap below bounds its memory on pathological workloads.
	if c.postMemo == nil || len(c.postMemo) > maxPostMemoEntries {
		c.postMemo = make(map[string]*postMemoEntry)
	}
	startUncached := c.uncachedCalls.Load()
	startCache := c.cacheStats()
	startMemo := c.memoHits
	defer func() {
		cs := c.cacheStats()
		res.CacheHits = cs.Hits - startCache.Hits
		res.CacheMisses = cs.Misses - startCache.Misses
		res.SolverCalls = res.CacheMisses + c.uncachedCalls.Load() - startUncached
		res.PostMemoHits = c.memoHits - startMemo
		mChecks.Inc()
		mRefinements.Add(int64(res.Refinements))
		mSolverCalls.Add(res.SolverCalls)
		mPostMemoHits.Add(res.PostMemoHits)
		csp.EndWith(map[string]any{
			"verdict":      res.Verdict.String(),
			"refinements":  res.Refinements,
			"work":         res.Work,
			"predicates":   res.Predicates,
			"solver_calls": res.SolverCalls,
		})
	}()
	var preds []logic.Formula
	seen := make(map[string]bool) // predicate strings, for dedup

	for iter := 1; ; iter++ {
		isp := obs.StartNamedSpan(obs.PhaseCEGARIter, fmt.Sprintf("iteration %d", iter))
		attrs := map[string]any{"predicates": len(preds)}
		mPredicates.Set(int64(len(preds)))
		done := c.checkIteration(ctx, target, res, &preds, seen, attrs)
		isp.EndWith(attrs)
		if done {
			return res, nil
		}
	}
}

// checkIteration runs one round of the CEGAR loop — abstract
// reachability, counterexample analysis (slice + feasibility), and
// refinement — mutating res and preds. It reports whether the check
// is decided; attrs collects the per-iteration trace attributes
// (predicate count, counterexample and slice sizes, outcome).
func (c *Checker) checkIteration(ctx context.Context, target *cfa.Loc, res *Result, preds *[]logic.Formula, seen map[string]bool, attrs map[string]any) bool {
	if res.Refinements >= c.opts.MaxRefinements || ctx.Err() != nil {
		res.Verdict = VerdictTimeout
		attrs["outcome"] = res.Verdict.String()
		return true
	}
	path, work, exhausted := c.reach(ctx, target, *preds, c.opts.MaxWork-res.Work)
	res.Work += work
	if path == nil {
		if exhausted || res.Work >= c.opts.MaxWork {
			res.Verdict = VerdictTimeout
		} else {
			res.Verdict = VerdictSafe
		}
		res.Predicates = len(*preds)
		attrs["outcome"] = res.Verdict.String()
		return true
	}
	res.RawCounterexample = path
	res.Refinements++
	attrs["trace_edges"] = len(path)

	// Counterexample analysis phase: slice, then decide.
	analyzed := path
	var stat TraceStat
	stat.TraceEdges = len(path)
	stat.TraceBlocks = path.BasicBlocks()
	if c.opts.UseSlicing {
		sr, err := c.slicer.SliceCtx(ctx, path)
		if err != nil {
			// Invalid path or a panic contained inside the slicer:
			// neither safety nor a bug is established.
			res.Verdict = VerdictUnknown
			res.Err = err
			attrs["outcome"] = res.Verdict.String()
			return true
		}
		analyzed = sr.Slice
		stat.SliceEdges = sr.Stats.SliceEdges
		stat.SliceBlocks = sr.Stats.SliceBlocks
		attrs["slice_edges"] = stat.SliceEdges
		if sr.KnownInfeasible {
			// Early-stop already proved infeasibility.
			if c.opts.OnRefinement != nil {
				c.opts.OnRefinement(path, analyzed, smt.StatusUnsat)
			}
			res.Traces = append(res.Traces, stat)
			newPreds, grew := c.refine(ctx, analyzed, *preds, seen)
			if !grew {
				res.Verdict = VerdictDiverged
				res.Predicates = len(*preds)
				attrs["outcome"] = res.Verdict.String()
				return true
			}
			*preds = newPreds
			attrs["outcome"] = "refined-early-stop"
			return false
		}
	} else {
		stat.SliceEdges = stat.TraceEdges
		stat.SliceBlocks = stat.TraceBlocks
	}

	fr, _ := c.slicer.CheckFeasibilityCtx(ctx, analyzed)
	res.Work += 50 // a feasibility query is heavy
	if c.opts.OnRefinement != nil {
		c.opts.OnRefinement(path, analyzed, fr.Status)
	}
	switch fr.Status {
	case smt.StatusSat:
		// Feasible slice (completeness: the target is reachable, or
		// the program diverges).
		stat.Feasible = true
		res.Traces = append(res.Traces, stat)
		res.Verdict = VerdictUnsafe
		res.Witness = analyzed
		res.Predicates = len(*preds)
		attrs["outcome"] = res.Verdict.String()
		return true
	case smt.StatusUnknown:
		// The feasibility of the counterexample could not be decided
		// (deadline, solver limit, or injected fault). Degrade soundly:
		// report Timeout/Unknown rather than guessing a Safe or Unsafe
		// verdict (docs/ROBUSTNESS.md).
		res.Traces = append(res.Traces, stat)
		if ctx.Err() != nil {
			res.Verdict = VerdictTimeout
		} else {
			res.Verdict = VerdictUnknown
		}
		res.RawCounterexample = path
		res.Predicates = len(*preds)
		attrs["outcome"] = res.Verdict.String()
		return true
	default: // smt.StatusUnsat
		res.Traces = append(res.Traces, stat)
		newPreds, grew := c.refine(ctx, analyzed, *preds, seen)
		if !grew {
			res.Verdict = VerdictDiverged
			res.Predicates = len(*preds)
			attrs["outcome"] = res.Verdict.String()
			return true
		}
		*preds = newPreds
		attrs["outcome"] = "refined"
		return false
	}
}

// ---------------------------------------------------------------------------
// Abstract reachability

// absState is an abstract state: location, call stack, and a
// three-valued predicate valuation (+1 true, -1 false, 0 unknown).
type absState struct {
	loc   *cfa.Loc
	stack []*cfa.Edge // call edges; Dst is the resume location
	vals  []int8
	// parent and via reconstruct the abstract counterexample.
	parent *absState
	via    *cfa.Edge
}

// ctxKey identifies a state's control context (location + stack); the
// predicate valuation is handled by the covering relation.
func (st *absState) ctxKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", st.loc.ID)
	for _, e := range st.stack {
		fmt.Fprintf(&b, "%d,", e.ID)
	}
	return b.String()
}

// covers reports whether a visited valuation a subsumes b: every
// literal a determines, b determines the same way. Then a represents a
// superset of b's concrete states, and b's successors add nothing.
func covers(a, b []int8) bool {
	for i := range a {
		if a[i] != 0 && a[i] != b[i] {
			return false
		}
	}
	return true
}

// coverSet tracks visited valuations per control context.
type coverSet struct {
	exact bool
	m     map[string][][]int8
}

func newCoverSet(exact bool) *coverSet {
	return &coverSet{exact: exact, m: make(map[string][][]int8)}
}

// add registers the state and reports whether it was already covered.
func (cs *coverSet) add(st *absState) bool {
	k := st.ctxKey()
	for _, vals := range cs.m[k] {
		if cs.exact {
			same := true
			for i := range vals {
				if vals[i] != st.vals[i] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		} else if covers(vals, st.vals) {
			return true
		}
	}
	cs.m[k] = append(cs.m[k], st.vals)
	return false
}

// stateFormula is the conjunction of determined predicates.
func stateFormula(preds []logic.Formula, vals []int8) logic.Formula {
	var fs []logic.Formula
	for i, v := range vals {
		switch v {
		case 1:
			fs = append(fs, preds[i])
		case -1:
			fs = append(fs, logic.MkNot(preds[i]))
		}
	}
	return logic.MkAnd(fs...)
}

// reach explores the abstract state space; it returns an abstract path
// to target (or nil), the work spent, and whether the budget ran out
// before the frontier was exhausted.
func (c *Checker) reach(ctx context.Context, target *cfa.Loc, preds []logic.Formula, budget int) (cfa.Path, int, bool) {
	if budget <= 0 {
		return nil, 0, true
	}
	sp := obs.StartSpan(obs.PhaseReach)
	defer sp.End()
	// Warm the predicate-scope table sequentially so the parallel post
	// workers only ever read it.
	if !c.opts.NoLocalize {
		for _, p := range preds {
			c.scopeOf(p)
		}
	}
	work := 0
	main := c.prog.Funcs[c.prog.Main]
	root := &absState{loc: main.Entry, vals: make([]int8, len(preds))}
	visited := newCoverSet(c.opts.ExactCover)
	visited.add(root)
	frontier := []*absState{root}

	pop := func() *absState {
		var st *absState
		if c.opts.DFS {
			st = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			st = frontier[0]
			frontier = frontier[1:]
		}
		return st
	}

	for len(frontier) > 0 {
		if work >= budget || ctx.Err() != nil {
			// Budget or wall-clock deadline exhausted mid-search: report
			// "ran out" so the check answers Timeout, never a premature
			// Safe.
			return nil, work, true
		}
		st := pop()
		if st.loc == target {
			return extractPath(st), work, false
		}
		work++
		mStatesExplored.Inc()
		for _, e := range st.loc.Out {
			succ, w := c.post(ctx, st, e, preds)
			work += w
			if succ == nil {
				continue
			}
			if visited.add(succ) {
				continue // covered
			}
			frontier = append(frontier, succ)
		}
	}
	return nil, work, false
}

// postMemoEntry is one memoized abstract-post computation. vals maps a
// predicate's canonical string to its successor value, so an entry is
// valid for any predicate list: a lookup reuses every predicate it has
// seen before (under the same determined source conjuncts, captured by
// the memo key) and computes only the rest. Content keying is what lets
// the memo outlive a single Check — indices restart per check, but a
// predicate's meaning does not (cmd/slicerd keeps one Checker per
// program and reuses this memo across requests).
type postMemoEntry struct {
	prunedKnown bool
	pruned      bool
	vals        map[string]int8
}

// freshStride separates the fresh-variable namespaces of the per-
// predicate WP computations so each predicate's formulas are identical
// regardless of the order (or concurrency) in which they are built.
// A single WPOp mints at most a handful of fresh variables per havoc
// or nondet read, far below the stride.
const freshStride = 4096

// memoKey identifies an abstract-post computation: the edge, the
// determined entries of the source valuation (exactly what stateFormula
// conjoins — undetermined predicates contribute nothing), and the
// localization scope (the set of functions on the stack decides which
// predicates are evaluated at all). Determined conjuncts are keyed by
// predicate content, not index, so a key stays valid across checks
// whose predicate lists differ (the predicate index space restarts per
// Check; its contents do not).
func (c *Checker) memoKey(st *absState, e *cfa.Edge, preds []logic.Formula) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", e.ID)
	for i, v := range st.vals {
		if v != 0 {
			fmt.Fprintf(&b, "%s:%d,", preds[i], v)
		}
	}
	if !c.opts.NoLocalize && len(st.stack) > 0 {
		names := make([]string, 0, len(st.stack))
		for _, call := range st.stack {
			names = append(names, call.Src.Fn.Name)
		}
		sort.Strings(names)
		b.WriteByte('|')
		for _, n := range names {
			b.WriteString(n)
			b.WriteByte(',')
		}
	}
	return b.String()
}

// post computes the abstract successor of st via edge e, or nil when
// the edge is abstractly infeasible. The work counter counts logical
// solver queries — the same number whether or not they were answered
// from the memo or cache, so budgets behave identically across
// configurations.
func (c *Checker) post(ctx context.Context, st *absState, e *cfa.Edge, preds []logic.Formula) (*absState, int) {
	work := 0
	mAbstractPosts.Inc()

	switch e.Op.Kind {
	case cfa.OpCall:
		callee := c.prog.Funcs[e.Op.Callee]
		if callee == nil {
			return nil, work
		}
		succ := &absState{loc: callee.Entry, vals: st.vals, parent: st, via: e}
		succ.stack = append(append([]*cfa.Edge{}, st.stack...), e)
		return succ, work
	case cfa.OpReturn:
		if len(st.stack) == 0 {
			return nil, work // program exit: never the target
		}
		resume := st.stack[len(st.stack)-1].Dst
		succ := &absState{loc: resume, vals: st.vals, parent: st, via: e}
		succ.stack = append([]*cfa.Edge{}, st.stack[:len(st.stack)-1]...)
		return succ, work
	}

	cur := stateFormula(preds, st.vals)
	var memo *postMemoEntry
	if !c.opts.DisablePostMemo {
		key := c.memoKey(st, e, preds)
		var ok bool
		if memo, ok = c.postMemo[key]; ok {
			c.memoHits++
		} else {
			memo = &postMemoEntry{vals: make(map[string]int8)}
			c.postMemo[key] = memo
		}
	}

	if e.Op.Kind == cfa.OpAssume {
		// Prune when the state cannot take the branch.
		work++
		if memo == nil || !memo.prunedKnown {
			fresh := 0
			predF, side := assumeFormula(e.Op, c.slicer, &fresh)
			pruned := c.solve(ctx, logic.MkAnd(append(side, cur, predF)...)).Status == smt.StatusUnsat
			if memo != nil {
				memo.prunedKnown, memo.pruned = true, pruned
			} else if pruned {
				return nil, work
			}
		}
		if memo != nil && memo.pruned {
			return nil, work
		}
	}

	// New valuation via WP entailment per predicate. Localization:
	// predicates scoped to functions not on the successor's stack stay
	// unknown and cost no solver queries. Predicates already covered by
	// the memo keep their cached value; the rest fan out over the
	// worker pool.
	vals := make([]int8, len(preds))
	var need []int
	var predKeys []string
	if memo != nil {
		predKeys = make([]string, len(preds))
	}
	for i, p := range preds {
		if !c.opts.NoLocalize && !c.predInScope(p, e.Dst, st.stack) {
			vals[i] = 0
			continue
		}
		work += 2
		if memo != nil {
			predKeys[i] = p.String()
			if v, ok := memo.vals[predKeys[i]]; ok {
				vals[i] = v
				continue // memoized
			}
		}
		need = append(need, i)
	}
	compute := func(i int) {
		// Contain panics per task: a crashed entailment leaves the
		// predicate unknown (0), which only weakens the abstraction —
		// sound — instead of taking the whole worker pool (and with it
		// the enclosing Check) down. WorkerPanic faults exercise
		// exactly this path (docs/ROBUSTNESS.md).
		defer func() {
			if r := recover(); r != nil {
				mRecoveredPanics.Inc()
				vals[i] = 0
			}
		}()
		if faults.Should(faults.WorkerPanic) {
			panic("faults: injected worker panic")
		}
		fresh := (i + 1) * freshStride
		p := preds[i]
		wpP := wp.WPOp(p, e.Op, c.slicer.Alias, c.slicer.Addrs, &fresh)
		wpNotP := wp.WPOp(logic.MkNot(p), e.Op, c.slicer.Alias, c.slicer.Addrs, &fresh)
		pre := cur
		if e.Op.Kind == cfa.OpAssume {
			predF, side := assumeFormula(e.Op, c.slicer, &fresh)
			pre = logic.MkAnd(append(side, cur, predF)...)
		}
		switch {
		case c.solve(ctx, logic.MkAnd(pre, wpNotP)).Status == smt.StatusUnsat:
			vals[i] = 1 // every post-state satisfies p
		case c.solve(ctx, logic.MkAnd(pre, wpP)).Status == smt.StatusUnsat:
			vals[i] = -1
		default:
			vals[i] = 0
		}
	}
	mSolverQueueDepth.SetMax(int64(len(need)))
	if c.opts.PortfolioBatch && len(need) > 1 {
		// Batched post: build every entailment pair first (same panic
		// containment and WorkerPanic fault draw per predicate as the
		// serial path — a crashed build leaves that predicate unknown),
		// then decide each round in one batched solver call. All pairs
		// share the precondition, so the batch solver asserts it once
		// per support group instead of once per query. Round 2 only
		// re-asks the predicates round 1 left undecided, mirroring the
		// serial short-circuit.
		type entailPair struct {
			idx        int
			notP, impP logic.Formula
		}
		var pairs []entailPair
		for _, i := range need {
			func(i int) {
				defer func() {
					if r := recover(); r != nil {
						mRecoveredPanics.Inc()
						vals[i] = 0
					}
				}()
				if faults.Should(faults.WorkerPanic) {
					panic("faults: injected worker panic")
				}
				fresh := (i + 1) * freshStride
				p := preds[i]
				wpP := wp.WPOp(p, e.Op, c.slicer.Alias, c.slicer.Addrs, &fresh)
				wpNotP := wp.WPOp(logic.MkNot(p), e.Op, c.slicer.Alias, c.slicer.Addrs, &fresh)
				pre := cur
				if e.Op.Kind == cfa.OpAssume {
					predF, side := assumeFormula(e.Op, c.slicer, &fresh)
					pre = logic.MkAnd(append(side, cur, predF)...)
				}
				pairs = append(pairs, entailPair{idx: i,
					notP: logic.MkAnd(pre, wpNotP), impP: logic.MkAnd(pre, wpP)})
			}(i)
		}
		fs := make([]logic.Formula, len(pairs))
		for j, pr := range pairs {
			fs[j] = pr.notP
		}
		var undecided []entailPair
		for j, r := range c.solveBatch(ctx, fs) {
			if r.Status == smt.StatusUnsat {
				vals[pairs[j].idx] = 1 // every post-state satisfies p
			} else {
				undecided = append(undecided, pairs[j])
			}
		}
		if len(undecided) > 0 {
			fs = make([]logic.Formula, len(undecided))
			for j, pr := range undecided {
				fs[j] = pr.impP
			}
			for j, r := range c.solveBatch(ctx, fs) {
				if r.Status == smt.StatusUnsat {
					vals[undecided[j].idx] = -1
				} else {
					vals[undecided[j].idx] = 0
				}
			}
		}
	} else if nw := c.opts.SolverWorkers; nw > 1 && len(need) > 1 {
		if nw > len(need) {
			nw = len(need)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					compute(i)
				}
			}()
		}
		for _, i := range need {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for _, i := range need {
			compute(i)
		}
	}
	if memo != nil {
		for _, i := range need {
			memo.vals[predKeys[i]] = vals[i]
		}
	}
	succ := &absState{loc: e.Dst, vals: vals, parent: st, via: e,
		stack: st.stack}
	return succ, work
}

// scopeOf returns (computing and caching on first use) the functions
// whose locals predicate p mentions. It must be called from a single
// goroutine; reach warms the table before any parallel post runs, so
// predInScope only ever reads it.
func (c *Checker) scopeOf(p logic.Formula) []string {
	key := p.String()
	fns, ok := c.predScope[key]
	if !ok {
		seen := map[string]struct{}{}
		for _, v := range logic.Vars(p) {
			if fn := c.prog.FuncOf(v); fn != nil && !cfa.IsTransferVar(v) {
				seen[fn.Name] = struct{}{}
			}
		}
		for name := range seen {
			fns = append(fns, name)
		}
		c.predScope[key] = fns
	}
	return fns
}

// predInScope reports whether predicate p may be evaluated at a state
// whose location is loc with the given stack: every function whose
// locals the predicate mentions must be the current function or on the
// stack. Global-only predicates are always in scope.
func (c *Checker) predInScope(p logic.Formula, loc *cfa.Loc, stack []*cfa.Edge) bool {
	for _, name := range c.scopeOf(p) {
		if loc.Fn.Name == name {
			continue
		}
		onStack := false
		for _, call := range stack {
			if call.Src.Fn.Name == name {
				onStack = true
				break
			}
		}
		if !onStack {
			return false
		}
	}
	return true
}

// assumeFormula converts an assume predicate to a formula over plain
// variable names (reusing the WP machinery's conversion).
func assumeFormula(op cfa.Op, s *core.Slicer, fresh *int) (logic.Formula, []logic.Formula) {
	f := wp.WPOp(logic.True, op, s.Alias, s.Addrs, fresh)
	return f, nil
}

// extractPath walks parent pointers back to the root.
func extractPath(st *absState) cfa.Path {
	var rev cfa.Path
	for cur := st; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make(cfa.Path, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

// ---------------------------------------------------------------------------
// Refinement

// refine mines new predicates from the atoms of the infeasible slice's
// trace formula, mapped back to unversioned program variables ("the
// refinement algorithm analyzes the output of the path slicer to find
// why a path is infeasible" — §1, after [16]).
func (c *Checker) refine(ctx context.Context, slice cfa.Path, preds []logic.Formula, seen map[string]bool) ([]logic.Formula, bool) {
	sp := obs.StartSpan(obs.PhaseRefine)
	defer sp.End()
	grew := false
	add := func(g logic.Formula) {
		if g == nil || len(preds) >= c.opts.MaxPreds {
			return
		}
		key := g.String()
		if seen[key] {
			return
		}
		seen[key] = true
		preds = append(preds, g)
		grew = true
	}
	// 1. Atoms of the slice's trace formula, unversioned. When the
	// formula is unsatisfiable (the usual case during refinement), mine
	// only the atoms of a minimized unsat core: the operations that
	// actually cause the infeasibility, per the parsimonious-abstraction
	// idea the paper cites ([16], "Abstractions from proofs").
	enc := wp.NewTraceEncoder(c.slicer.Prog, c.slicer.Alias, c.slicer.Addrs)
	solver := smt.NewSolverWithLimits(c.opts.SolverLimits)
	for _, op := range slice.Ops() {
		solver.Assert(enc.EncodeOp(op))
	}
	// An Unknown here (deadline, limit, or injected fault) falls back
	// to mining the whole trace formula — a superset of the unsat
	// core's atoms, so refinement can only get more predicates, never
	// wrong ones.
	var mineFrom []logic.Formula
	if r := solver.CheckCtx(ctx); r.Status == smt.StatusUnsat {
		core, _ := solver.UnsatCore()
		mineFrom = core
	} else {
		mineFrom = []logic.Formula{c.slicer.TraceFormula(slice)}
	}
	for _, f := range mineFrom {
		for _, a := range collectAtoms(f) {
			add(unversion(a))
		}
	}
	// 2. Constant facts established along the slice: propagate known
	// constants forward through the slice's assignments and record
	// `x == c` at every point a constant is produced. This recovers the
	// facts an interpolating prover would find for increment chains
	// ("Abstractions from proofs"-lite).
	consts := make(map[string]int64)
	for _, e := range slice {
		op := e.Op
		if op.Kind != cfa.OpAssign {
			continue
		}
		if op.LHS.Deref {
			// A store through a pointer invalidates may-targets.
			for _, v := range c.slicer.Alias.Pts(op.LHS.Var) {
				delete(consts, v)
			}
			continue
		}
		if v, ok := evalConst(op.RHS, consts); ok {
			consts[op.LHS.Var] = v
			add(logic.Cmp{Op: logic.CmpEq,
				X: logic.Var{Name: op.LHS.Var}, Y: logic.Const{V: v}})
		} else {
			delete(consts, op.LHS.Var)
		}
	}
	return preds, grew
}

// evalConst evaluates an expression under a constant environment.
func evalConst(e ast.Expr, consts map[string]int64) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Ident:
		v, ok := consts[e.Name]
		return v, ok
	case *ast.Unary:
		if e.Op == token.MINUS {
			v, ok := evalConst(e.X, consts)
			return -v, ok
		}
		if e.Op == token.NOT {
			v, ok := evalConst(e.X, consts)
			if !ok {
				return 0, false
			}
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		x, okx := evalConst(e.X, consts)
		y, oky := evalConst(e.Y, consts)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case token.PLUS:
			return x + y, true
		case token.MINUS:
			return x - y, true
		case token.STAR:
			return x * y, true
		case token.SLASH:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case token.PERCENT:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		}
		return 0, false
	}
	return 0, false
}

// collectAtoms gathers the comparison atoms of a formula.
func collectAtoms(f logic.Formula) []logic.Cmp {
	var out []logic.Cmp
	var walk func(g logic.Formula)
	walk = func(g logic.Formula) {
		switch g := g.(type) {
		case logic.Cmp:
			out = append(out, g)
		case logic.Not:
			walk(g.F)
		case logic.And:
			for _, h := range g.Fs {
				walk(h)
			}
		case logic.Or:
			for _, h := range g.Fs {
				walk(h)
			}
		}
	}
	walk(f)
	return out
}

// unversion strips SSA "@k" suffixes from an atom's variables and drops
// atoms that mention solver-internal variables ($in, $u, $f, $h).
func unversion(a logic.Cmp) logic.Formula {
	vars := make(map[string]struct{})
	logic.TermVars(a.X, vars)
	logic.TermVars(a.Y, vars)
	if len(vars) == 0 {
		return nil // ground atom: useless as a predicate
	}
	sub := make(map[string]logic.Term, len(vars))
	for name := range vars {
		if strings.HasPrefix(name, "$") {
			return nil
		}
		base := name
		if i := strings.LastIndex(name, "@"); i >= 0 {
			base = name[:i]
		}
		sub[name] = logic.Var{Name: base}
	}
	return logic.Subst(logic.Formula(a), sub)
}

// PredicateStrings renders a predicate list deterministically (for
// tests and debugging).
func PredicateStrings(preds []logic.Formula) []string {
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}
