package cegar_test

import (
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
)

func check(t *testing.T, src string, opts cegar.Options) *cegar.Result {
	t.Helper()
	prog := compile.MustSource(src)
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		t.Fatal("program has no error location")
	}
	c := cegar.New(prog, opts)
	return c.Check(locs[0])
}

func defaultOpts() cegar.Options {
	return cegar.Options{UseSlicing: true}
}

func TestCheckTrivialUnsafe(t *testing.T) {
	res := check(t, `void main() { error; }`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdict: %s (%+v)", res.Verdict, res)
	}
	// The slice witness may legitimately be EMPTY here: main's entry
	// cannot bypass the error location, so no edge is taken and the
	// empty (trivially feasible) slice proves reachability.
	if len(res.RawCounterexample) == 0 {
		t.Error("missing raw counterexample")
	}
}

func TestCheckTrivialSafe(t *testing.T) {
	res := check(t, `void main() { if (1 == 2) { error; } }`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
}

func TestCheckNeedsRefinement(t *testing.T) {
	// Safe, but only visible after tracking x == 0.
	res := check(t, `
		int x;
		void main() {
			x = 0;
			x = x + 1;
			if (x == 0) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s (refinements %d, preds %d)", res.Verdict, res.Refinements, res.Predicates)
	}
	if res.Refinements == 0 {
		t.Error("expected at least one refinement round")
	}
}

func TestCheckRealBugFound(t *testing.T) {
	res := check(t, `
		int a;
		void main() {
			a = nondet();
			if (a > 10) {
				if (a < 20) {
					error;
				}
			}
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
	if len(res.Witness) == 0 || !res.Witness.Subsequence(res.Witness) {
		t.Error("bad witness")
	}
}

func TestCheckGuardedUpdateSafe(t *testing.T) {
	// The shaded-Ex2 pattern: x set to 1 exactly when the error branch
	// needs x == 0 under the same guard.
	res := check(t, `
		int x = 0;
		int a;
		void main() {
			if (a >= 0) { x = 1; }
			if (a >= 0) {
				if (x == 0) { error; }
			}
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s (refinements %d)", res.Verdict, res.Refinements)
	}
}

// The paper's headline claim: with slicing, the loop that bounds the
// refinement loop's progress is cut out of the counterexample, so the
// checker proves reachability without unrolling; without slicing it
// diverges or times out.
func TestSlicingEnablesLoopVerdict(t *testing.T) {
	src := `
		int x;
		int a;
		void f() { skip; }
		void main() {
			for (int i = 1; i <= 50; i = i + 1) { f(); }
			if (a >= 0) {
				if (x == 0) { error; }
			}
		}`
	withSlicing := check(t, src, cegar.Options{UseSlicing: true, MaxWork: 400000})
	if withSlicing.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("with slicing: %s (refinements %d, work %d)",
			withSlicing.Verdict, withSlicing.Refinements, withSlicing.Work)
	}
	// The witness must not contain the loop.
	for _, e := range withSlicing.Witness {
		if e.Src.Fn.Name == "f" {
			t.Errorf("witness contains irrelevant f edge: %s", e)
		}
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "main::i" {
			t.Errorf("witness contains loop counter: %s", e)
		}
	}

	noSlicing := check(t, src, cegar.Options{UseSlicing: false, MaxWork: 60000, MaxRefinements: 12})
	if noSlicing.Verdict == cegar.VerdictUnsafe {
		// Without slicing the loop's infeasible unrolling pollutes the
		// trace: refinement keeps discovering loop facts. If it does
		// terminate Unsafe it must at least work much harder.
		if noSlicing.Work <= withSlicing.Work {
			t.Errorf("no-slicing should cost more: %d <= %d", noSlicing.Work, withSlicing.Work)
		}
	}
}

func TestCheckInterprocedural(t *testing.T) {
	res := check(t, `
		int g;
		void set(int v) { g = v; }
		void main() {
			set(3);
			if (g == 3) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
	res = check(t, `
		int g;
		void set(int v) { g = v; }
		void main() {
			set(3);
			if (g == 4) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s (refinements %d)", res.Verdict, res.Refinements)
	}
}

func TestCheckTimeout(t *testing.T) {
	res := check(t, `
		int x;
		void main() {
			x = 0;
			while (x < 1000000) { x = x + 1; }
			if (x == 999) { error; }
		}`, cegar.Options{UseSlicing: true, MaxWork: 500, MaxRefinements: 2})
	if res.Verdict == cegar.VerdictUnsafe {
		t.Fatalf("tiny budget must not prove unsafe: %s", res.Verdict)
	}
}

func TestTraceStatsRecorded(t *testing.T) {
	res := check(t, `
		int x;
		void main() {
			x = 0;
			x = x + 1;
			x = x + 1;
			if (x == 0) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
	if len(res.Traces) == 0 {
		t.Fatal("no trace stats recorded")
	}
	for _, ts := range res.Traces {
		if ts.SliceBlocks > ts.TraceBlocks {
			t.Errorf("slice larger than trace: %+v", ts)
		}
		if ts.RatioPercent() < 0 || ts.RatioPercent() > 100 {
			t.Errorf("ratio out of range: %+v", ts)
		}
	}
}

func TestDFSProducesLongerTraces(t *testing.T) {
	src := `
		int x;
		void main() {
			int i = 0;
			while (i < 3) { i = i + 1; }
			if (x == 0) { error; }
		}`
	prog := compile.MustSource(src)
	target := prog.ErrorLocs()[0]
	bfs := cegar.New(prog, cegar.Options{UseSlicing: true, DFS: false}).Check(target)
	dfs := cegar.New(prog, cegar.Options{UseSlicing: true, DFS: true}).Check(target)
	if bfs.Verdict != cegar.VerdictUnsafe || dfs.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdicts: bfs=%s dfs=%s", bfs.Verdict, dfs.Verdict)
	}
	if len(bfs.Traces) == 0 || len(dfs.Traces) == 0 {
		t.Fatal("missing traces")
	}
	if dfs.Traces[0].TraceEdges < bfs.Traces[0].TraceEdges {
		t.Errorf("DFS trace (%d) should be at least as long as BFS trace (%d)",
			dfs.Traces[0].TraceEdges, bfs.Traces[0].TraceEdges)
	}
}

func TestEarlyUnsatStopInsideCegar(t *testing.T) {
	res := check(t, `
		int x;
		void main() {
			x = 5;
			if (x == 5) {
				if (x == 6) { error; }
			}
		}`, cegar.Options{
		UseSlicing: true,
		SlicerOpts: core.Options{EarlyUnsatStop: true},
	})
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
}
