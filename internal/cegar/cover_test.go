package cegar_test

import (
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/compile"
)

const coverProg = `
int a; int b; int c;
void main() {
	a = nondet();
	b = nondet();
	c = 0;
	if (a > 0) { c = c + 1; }
	if (b > 0) { c = c + 1; }
	if (a > 0) {
		if (b > 0) {
			if (c == 0) { error; }
		}
	}
}
`

// TestSubsumptionAgreesWithExact: both covering modes must reach the
// same verdict; subsumption should not explore more work.
func TestSubsumptionAgreesWithExact(t *testing.T) {
	prog := compile.MustSource(coverProg)
	target := prog.ErrorLocs()[0]
	sub := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
	exact := cegar.New(prog, cegar.Options{UseSlicing: true, ExactCover: true}).Check(target)
	if sub.Verdict != exact.Verdict {
		t.Fatalf("verdicts differ: subsumption %s vs exact %s", sub.Verdict, exact.Verdict)
	}
	if sub.Verdict != cegar.VerdictSafe {
		t.Fatalf("program is safe (c >= 2 on the error-guarded branch): %s", sub.Verdict)
	}
	if sub.Work > exact.Work {
		t.Errorf("subsumption covering should not cost more: %d > %d", sub.Work, exact.Work)
	}
}

// TestLocalizationAgreesWithGlobal: predicate localization must not
// change any verdict (it only skips queries whose answers cannot
// matter).
func TestLocalizationAgreesWithGlobal(t *testing.T) {
	sources := []string{
		coverProg,
		`int g;
		 void set(int v) { int tmp = v + 1; g = tmp - 1; }
		 void main() { set(3); if (g != 3) { error; } }`,
		`int g;
		 void a() { int x = 1; g = g + x; }
		 void b() { int x = 2; g = g + x; }
		 void main() { g = 0; a(); b(); if (g != 3) { error; } }`,
		`int u;
		 void helper(int k) {
			int local = k * 2;
			if (local > 100) { u = 1; }
		 }
		 void main() {
			u = 0;
			helper(3);
			if (u == 1) { error; }
		 }`,
	}
	for i, src := range sources {
		prog := compile.MustSource(src)
		target := prog.ErrorLocs()[0]
		loc := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
		glob := cegar.New(prog, cegar.Options{UseSlicing: true, NoLocalize: true}).Check(target)
		if loc.Verdict != glob.Verdict {
			t.Errorf("source %d: localized %s vs global %s", i, loc.Verdict, glob.Verdict)
		}
		if loc.Work > glob.Work {
			t.Errorf("source %d: localization should not cost more (%d > %d)", i, loc.Work, glob.Work)
		}
	}
}

// TestSubsumptionAcrossVerdicts spot-checks agreement on a batch of
// small programs with different outcomes.
func TestSubsumptionAcrossVerdicts(t *testing.T) {
	sources := []string{
		`int x; void main() { x = 1; if (x == 2) { error; } }`,
		`int x; void main() { x = nondet(); if (x == 2) { error; } }`,
		`int g;
		 void up() { g = g + 1; }
		 void main() { g = 0; up(); up(); if (g != 2) { error; } }`,
		`int a;
		 void main() {
			int s = 0;
			for (int i = 0; i < 3; i = i + 1) { s = s + 1; }
			if (s == 3) { if (a > a) { error; } }
		 }`,
	}
	for i, src := range sources {
		prog := compile.MustSource(src)
		target := prog.ErrorLocs()[0]
		sub := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
		exact := cegar.New(prog, cegar.Options{UseSlicing: true, ExactCover: true}).Check(target)
		if sub.Verdict != exact.Verdict {
			t.Errorf("source %d: subsumption %s vs exact %s", i, sub.Verdict, exact.Verdict)
		}
	}
}
