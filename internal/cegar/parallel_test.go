package cegar_test

import (
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/compile"
)

// determinismPrograms exercise refinement loops, pruned branches, call
// stacks (localization scopes), and feasible bugs — every abstract-post
// code path the memo and worker pool touch.
var determinismPrograms = map[string]string{
	"loop-guard": `
		int x;
		int a;
		void f() { skip; }
		void main() {
			for (int i = 1; i <= 20; i = i + 1) { f(); }
			if (a >= 0) {
				if (x == 0) { error; }
			}
		}`,
	"safe-increment": `
		int x;
		void main() {
			x = 0;
			x = x + 1;
			x = x + 1;
			if (x == 0) { error; }
		}`,
	"call-chain": `
		int g;
		void sink() {
			if (g == 1) {
				if (g == 2) { error; }
			}
		}
		void level1(int k) {
			int t = k + 1;
			if (t > 0) { sink(); }
		}
		void level0(int k) {
			int t = k + 1;
			if (t > 0) { level1(t); }
		}
		void main() {
			g = 1;
			level0(1);
		}`,
	"nondet-bug": `
		int a;
		void main() {
			a = nondet();
			if (a > 10) {
				if (a < 20) { error; }
			}
		}`,
}

func summarize(r *cegar.Result) [4]int {
	return [4]int{int(r.Verdict), r.Refinements, r.Work, r.Predicates}
}

// TestParallelPostDeterminism verifies the tentpole guarantee: with
// SolverWorkers > 1 (and with the cache or memo toggled), a check
// produces identical verdicts, refinement counts, work, predicates,
// and per-trace slice statistics to the sequential default. Run under
// -race this also exercises the worker pool and shared solver cache
// for data races.
func TestParallelPostDeterminism(t *testing.T) {
	for name, src := range determinismPrograms {
		t.Run(name, func(t *testing.T) {
			prog := compile.MustSource(src)
			target := prog.ErrorLocs()[0]
			base := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
			variants := map[string]cegar.Options{
				"workers-4":          {UseSlicing: true, SolverWorkers: 4},
				"workers-8-nocache":  {UseSlicing: true, SolverWorkers: 8, DisableSolverCache: true},
				"workers-4-nomemo":   {UseSlicing: true, SolverWorkers: 4, DisablePostMemo: true},
				"sequential-nocache": {UseSlicing: true, DisableSolverCache: true, DisablePostMemo: true},
			}
			for vn, opts := range variants {
				got := cegar.New(prog, opts).Check(target)
				if summarize(got) != summarize(base) {
					t.Errorf("%s: result diverged: got %v, want %v", vn, summarize(got), summarize(base))
				}
				if len(got.Traces) != len(base.Traces) {
					t.Errorf("%s: trace count %d != %d", vn, len(got.Traces), len(base.Traces))
					continue
				}
				for i := range got.Traces {
					if got.Traces[i] != base.Traces[i] {
						t.Errorf("%s: trace %d: got %+v, want %+v", vn, i, got.Traces[i], base.Traces[i])
					}
				}
				if got.Witness.String() != base.Witness.String() {
					t.Errorf("%s: witness slice diverged", vn)
				}
			}
		})
	}
}

// TestSolverCacheCountsCalls verifies the counters: with the cache and
// memo enabled (the default) the hot loop issues strictly fewer real
// decision-procedure calls than with both disabled, at identical
// verdicts, and the hit/miss counters are coherent.
func TestSolverCacheCountsCalls(t *testing.T) {
	src := determinismPrograms["loop-guard"]
	prog := compile.MustSource(src)
	target := prog.ErrorLocs()[0]

	on := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
	off := cegar.New(prog, cegar.Options{
		UseSlicing: true, DisableSolverCache: true, DisablePostMemo: true,
	}).Check(target)

	if on.Verdict != off.Verdict || on.Refinements != off.Refinements {
		t.Fatalf("verdicts diverged: cache-on %s/%d, cache-off %s/%d",
			on.Verdict, on.Refinements, off.Verdict, off.Refinements)
	}
	if off.SolverCalls == 0 || on.SolverCalls == 0 {
		t.Fatalf("expected nonzero solver calls (on %d, off %d)", on.SolverCalls, off.SolverCalls)
	}
	if on.SolverCalls >= off.SolverCalls {
		t.Errorf("cache should reduce solver calls: on %d >= off %d", on.SolverCalls, off.SolverCalls)
	}
	if on.SolverCalls != on.CacheMisses {
		t.Errorf("with the cache on, SolverCalls (%d) must equal CacheMisses (%d)", on.SolverCalls, on.CacheMisses)
	}
	if off.CacheHits != 0 || off.CacheMisses != 0 || off.PostMemoHits != 0 {
		t.Errorf("disabled run must report zero cache counters, got %d/%d/%d",
			off.CacheHits, off.CacheMisses, off.PostMemoHits)
	}
	if on.CacheHits == 0 {
		t.Error("expected cache hits during refinement iterations")
	}
}

// TestMemoSurvivesRefinement checks that abstract-post memo entries are
// reused across refinement iterations: a check that refines at least
// once must report memo hits.
func TestMemoSurvivesRefinement(t *testing.T) {
	prog := compile.MustSource(determinismPrograms["safe-increment"])
	target := prog.ErrorLocs()[0]
	r := cegar.New(prog, cegar.Options{UseSlicing: true}).Check(target)
	if r.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s", r.Verdict)
	}
	if r.Refinements == 0 {
		t.Fatal("workload needs at least one refinement to exercise the memo")
	}
	if r.PostMemoHits == 0 {
		t.Error("expected post-memo hits across refinement iterations")
	}
}
