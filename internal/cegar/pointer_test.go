package cegar_test

import (
	"testing"

	"pathslice/internal/cegar"
)

func TestCheckPointerSafe(t *testing.T) {
	// The store through *p definitely hits x (singleton points-to), so
	// the guard makes the error unreachable.
	res := check(t, `
		int x; int *p;
		void main() {
			p = &x;
			*p = 5;
			if (x != 5) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("verdict: %s (refinements %d)", res.Verdict, res.Refinements)
	}
}

func TestCheckPointerAmbiguousUnsafe(t *testing.T) {
	// p may point to x or y; one resolution reaches the error.
	res := check(t, `
		int x; int y; int *p;
		void main() {
			x = 0;
			if (nondet()) { p = &x; } else { p = &y; }
			*p = 5;
			if (x == 5) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
}

func TestCheckNullCheckPattern(t *testing.T) {
	// The classic: error guarded by two contradictory tests on one
	// variable, across a helper call.
	res := check(t, `
		int v;
		int pick(int a, int b) {
			if (a > b) { return a; }
			return b;
		}
		void main() {
			v = pick(3, 7);
			if (v == 7) { skip; } else { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("pick(3,7)=7 always: %s (refinements %d)", res.Verdict, res.Refinements)
	}
}

func TestCheckAssumeBlocks(t *testing.T) {
	res := check(t, `
		int a;
		void main() {
			assume(a > 10);
			if (a < 5) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("assume must block the error branch: %s", res.Verdict)
	}
}

func TestCheckAssertSugar(t *testing.T) {
	res := check(t, `
		int a;
		void main() {
			a = 3;
			assert(a == 3);
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("valid assert: %s", res.Verdict)
	}
	res = check(t, `
		int a;
		void main() {
			a = nondet();
			assert(a == 3);
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("failing assert: %s", res.Verdict)
	}
}

func TestCheckNestedCallsAndGlobals(t *testing.T) {
	res := check(t, `
		int acc;
		void addone() { acc = acc + 1; }
		void addtwo() { addone(); addone(); }
		void main() {
			acc = 0;
			addtwo();
			addone();
			if (acc != 3) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictSafe {
		t.Fatalf("acc is always 3: %s (refinements %d, preds %d)",
			res.Verdict, res.Refinements, res.Predicates)
	}
}

func TestCheckWitnessIsSubsequenceOfRaw(t *testing.T) {
	res := check(t, `
		int a;
		void noise() { int t = 0; for (int i = 0; i < 4; i = i + 1) { t = t + 1; } }
		void main() {
			a = nondet();
			noise();
			if (a == 9) { error; }
		}`, defaultOpts())
	if res.Verdict != cegar.VerdictUnsafe {
		t.Fatalf("verdict: %s", res.Verdict)
	}
	if !res.RawCounterexample.Subsequence(res.Witness) {
		t.Error("witness must be a subsequence of the raw counterexample")
	}
	if len(res.Witness) >= len(res.RawCounterexample) {
		t.Errorf("witness (%d) should be smaller than the raw trace (%d)",
			len(res.Witness), len(res.RawCounterexample))
	}
}
