// Package interp is a concrete interpreter for CFA programs: it
// executes operations, traces, and whole programs over integer states.
// It provides the ground-truth semantics (§3.1) against which weakest
// preconditions, the solver, and the path slicer's soundness and
// completeness guarantees are tested.
package interp

import (
	"fmt"

	"pathslice/internal/cfa"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
	"pathslice/internal/wp"
)

// State is a valuation of all program variables. Pointer variables hold
// addresses from the shared AddrMap (0 = null).
type State struct {
	Vals  map[string]int64
	prog  *cfa.Program
	addrs *wp.AddrMap
	// strict makes reads of never-assigned variables fail with a typed
	// UninitReadError instead of silently yielding the zero value. The
	// oracle uses it to distinguish "this trace is infeasible" from
	// "the replay read a value the model never pinned down" (an
	// interpreter gap, not a soundness verdict).
	strict   bool
	assigned map[string]bool
}

// NewState returns a state with every variable at 0 (null for
// pointers), using the given address map.
func NewState(prog *cfa.Program, addrs *wp.AddrMap) *State {
	vals := make(map[string]int64, len(prog.Types))
	for name := range prog.Types {
		vals[name] = 0
	}
	return &State{Vals: vals, prog: prog, addrs: addrs}
}

// NewStrictState is NewState in strict-initialization mode: every
// variable still starts at 0, but reading one before it has been Set
// (or written by an executed operation) is an error of type
// *UninitReadError. Replay harnesses use it to detect reads the
// initial state never covered.
func NewStrictState(prog *cfa.Program, addrs *wp.AddrMap) *State {
	st := NewState(prog, addrs)
	st.strict = true
	st.assigned = make(map[string]bool)
	return st
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	vals := make(map[string]int64, len(s.Vals))
	for k, v := range s.Vals {
		vals[k] = v
	}
	out := &State{Vals: vals, prog: s.prog, addrs: s.addrs, strict: s.strict}
	if s.assigned != nil {
		out.assigned = make(map[string]bool, len(s.assigned))
		for k, v := range s.assigned {
			out.assigned[k] = v
		}
	}
	return out
}

// Set assigns a variable (and, in strict mode, marks it initialized).
func (s *State) Set(name string, v int64) {
	s.Vals[name] = v
	if s.assigned != nil {
		s.assigned[name] = true
	}
}

// read is Get under the strict-initialization check.
func (s *State) read(name string) (int64, error) {
	if s.strict && !s.assigned[name] {
		return 0, &UninitReadError{Var: name}
	}
	return s.Vals[name], nil
}

// Get reads a variable.
func (s *State) Get(name string) int64 { return s.Vals[name] }

// Addrs exposes the address map.
func (s *State) Addrs() *wp.AddrMap { return s.addrs }

// Inputs supplies values for nondet() occurrences during execution.
type Inputs interface {
	Next() int64
}

// SliceInputs feeds from a fixed list, then zeros.
type SliceInputs struct {
	Vals []int64
	pos  int
}

// Next returns the next input, or 0 when exhausted.
func (si *SliceInputs) Next() int64 {
	if si.pos < len(si.Vals) {
		v := si.Vals[si.pos]
		si.pos++
		return v
	}
	return 0
}

// ZeroInputs supplies only zeros.
type ZeroInputs struct{}

// Next returns 0.
func (ZeroInputs) Next() int64 { return 0 }

// ExecError reports a stuck execution (bad dereference, division by
// zero, or — in strict mode — an uninitialized read).
type ExecError struct {
	Op  cfa.Op
	Msg string
	Err error // underlying cause, when typed (e.g. *UninitReadError)
}

// Error implements the error interface.
func (e *ExecError) Error() string { return fmt.Sprintf("exec %s: %s", e.Op, e.Msg) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ExecError) Unwrap() error { return e.Err }

// UninitReadError reports a strict-mode read of a variable that was
// never assigned — neither seeded via Set nor written by an executed
// operation. Replay oracles treat it as "the initial state does not
// cover this trace" rather than an infeasibility verdict.
type UninitReadError struct {
	Var string
}

// Error implements the error interface.
func (e *UninitReadError) Error() string {
	return fmt.Sprintf("interp: read of uninitialized variable %s", e.Var)
}

// EvalExpr evaluates an expression in the state; nondet draws from in.
func (s *State) EvalExpr(e ast.Expr, in Inputs) (int64, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.Nondet:
		return in.Next(), nil
	case *ast.Ident:
		return s.read(e.Name)
	case *ast.Unary:
		switch e.Op {
		case token.MINUS:
			v, err := s.EvalExpr(e.X, in)
			return -v, err
		case token.NOT:
			v, err := s.EvalExpr(e.X, in)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case token.AMP:
			id := e.X.(*ast.Ident)
			return s.addrs.Addr(id.Name)
		case token.STAR:
			id, ok := e.X.(*ast.Ident)
			if !ok {
				return 0, fmt.Errorf("interp: dereference of non-variable")
			}
			return s.loadThrough(id.Name)
		}
	case *ast.Binary:
		x, err := s.EvalExpr(e.X, in)
		if err != nil {
			return 0, err
		}
		// Short-circuit for && and ||.
		switch e.Op {
		case token.LAND:
			if x == 0 {
				return 0, nil
			}
			y, err := s.EvalExpr(e.Y, in)
			if err != nil {
				return 0, err
			}
			return boolToInt(y != 0), nil
		case token.LOR:
			if x != 0 {
				return 1, nil
			}
			y, err := s.EvalExpr(e.Y, in)
			if err != nil {
				return 0, err
			}
			return boolToInt(y != 0), nil
		}
		y, err := s.EvalExpr(e.Y, in)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.PLUS:
			return x + y, nil
		case token.MINUS:
			return x - y, nil
		case token.STAR:
			return x * y, nil
		case token.SLASH:
			if y == 0 {
				return 0, fmt.Errorf("interp: division by zero")
			}
			return x / y, nil
		case token.PERCENT:
			if y == 0 {
				return 0, fmt.Errorf("interp: modulo by zero")
			}
			return x % y, nil
		case token.EQ:
			return boolToInt(x == y), nil
		case token.NEQ:
			return boolToInt(x != y), nil
		case token.LT:
			return boolToInt(x < y), nil
		case token.LEQ:
			return boolToInt(x <= y), nil
		case token.GT:
			return boolToInt(x > y), nil
		case token.GEQ:
			return boolToInt(x >= y), nil
		}
	}
	return 0, fmt.Errorf("interp: cannot evaluate %T", e)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// loadThrough reads the variable a pointer currently targets.
func (s *State) loadThrough(p string) (int64, error) {
	a, err := s.read(p)
	if err != nil {
		return 0, err
	}
	target, ok := s.addrs.VarAt(a)
	if !ok {
		return 0, fmt.Errorf("interp: dereference of invalid address %d in *%s", a, p)
	}
	return s.read(target)
}

// ExecOp executes one operation. For assumes it returns (false, nil)
// when the predicate is false (the program halts, §3.1); calls and
// returns are identity. A non-nil error means the execution is stuck
// (invalid dereference or division by zero).
func (s *State) ExecOp(op cfa.Op, in Inputs) (bool, error) {
	switch op.Kind {
	case cfa.OpAssume:
		v, err := s.EvalExpr(op.Pred, in)
		if err != nil {
			return false, &ExecError{Op: op, Msg: err.Error(), Err: err}
		}
		return v != 0, nil
	case cfa.OpAssign:
		v, err := s.EvalExpr(op.RHS, in)
		if err != nil {
			return false, &ExecError{Op: op, Msg: err.Error(), Err: err}
		}
		if !op.LHS.Deref {
			s.Set(op.LHS.Var, v)
			return true, nil
		}
		a, err := s.read(op.LHS.Var)
		if err != nil {
			return false, &ExecError{Op: op, Msg: err.Error(), Err: err}
		}
		target, ok := s.addrs.VarAt(a)
		if !ok {
			return false, &ExecError{Op: op, Msg: fmt.Sprintf("store through invalid address %d", a)}
		}
		s.Set(target, v)
		return true, nil
	default:
		return true, nil
	}
}

// ExecTrace executes the whole operation sequence (§3.1: s can execute
// τ), mutating the state as execution proceeds. It returns (true, nil)
// when every operation executed, (false, nil) when a false assume
// halted the run, and (false, err) when the execution got stuck — err
// wraps the typed cause (e.g. *UninitReadError in strict mode).
func (s *State) ExecTrace(ops []cfa.Op, in Inputs) (bool, error) {
	for _, op := range ops {
		ok, err := s.ExecOp(op, in)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// CanExecuteTrace reports whether the state can execute the whole
// operation sequence. Stuck executions count as cannot-execute.
func (s *State) CanExecuteTrace(ops []cfa.Op, in Inputs) bool {
	ok, err := s.ExecTrace(ops, in)
	return ok && err == nil
}

// ---------------------------------------------------------------------------
// Whole-program execution

// RunResult describes a bounded concrete run.
type RunResult struct {
	ReachedError bool
	ErrorLoc     *cfa.Loc
	Steps        int
	ExitNormally bool
	Stuck        bool
	Path         cfa.Path // the executed path (when recording enabled)
}

// RunOptions configures Run.
type RunOptions struct {
	MaxSteps   int  // default 100000
	RecordPath bool // keep the executed edge sequence
}

// Run executes the program from main's entry in the given state,
// choosing at each location the first out-edge whose operation can
// execute (assume edges evaluate their predicate; the builder
// guarantees the alternatives are mutually exclusive unless nondet is
// involved, in which case the first truthy branch wins). It stops on
// reaching an error location, normal exit, the step bound, or a stuck
// state.
func Run(prog *cfa.Program, st *State, in Inputs, opts RunOptions) RunResult {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 100000
	}
	var res RunResult
	main := prog.Funcs[prog.Main]
	loc := main.Entry
	var stack []*cfa.Edge // call edges; Dst is the resume location
	for res.Steps < opts.MaxSteps {
		if loc.IsError {
			res.ReachedError = true
			res.ErrorLoc = loc
			return res
		}
		if len(loc.Out) == 0 {
			// Dead end that is not an error location.
			res.Stuck = true
			return res
		}
		var chosen *cfa.Edge
		for _, e := range loc.Out {
			if e.Op.Kind == cfa.OpAssume {
				ok, err := st.ExecOp(e.Op, in)
				if err != nil {
					continue // stuck on this edge; try another
				}
				if ok {
					chosen = e
					break
				}
				continue
			}
			// Non-assume edges are unconditional.
			ok, err := st.ExecOp(e.Op, in)
			if err != nil || !ok {
				res.Stuck = true
				return res
			}
			chosen = e
			break
		}
		if chosen == nil {
			// All assumes false: program halts (e.g. assume(false)).
			res.Stuck = true
			return res
		}
		res.Steps++
		if opts.RecordPath {
			res.Path = append(res.Path, chosen)
		}
		switch chosen.Op.Kind {
		case cfa.OpCall:
			callee := prog.Funcs[chosen.Op.Callee]
			stack = append(stack, chosen)
			loc = callee.Entry
		case cfa.OpReturn:
			if len(stack) == 0 {
				res.ExitNormally = true
				return res
			}
			loc = stack[len(stack)-1].Dst
			stack = stack[:len(stack)-1]
		default:
			loc = chosen.Dst
		}
	}
	return res
}

// CanReachTarget searches for a concrete execution from st that reaches
// target, exploring both directions of nondet-controlled branches up to
// the given bounds. It returns the reaching path when found. Branch
// exploration is exponential; keep bounds small in tests.
func CanReachTarget(prog *cfa.Program, st *State, target *cfa.Loc, maxSteps, maxNondetFlips int) (cfa.Path, bool) {
	// Enumerate input prefixes of 0/1 up to maxNondetFlips positions.
	// nondet values beyond the prefix are 0.
	var prefix []int64
	var try func(depth int) (cfa.Path, bool)
	try = func(depth int) (cfa.Path, bool) {
		run := Run(prog, st.Clone(), &SliceInputs{Vals: append([]int64{}, prefix...)},
			RunOptions{MaxSteps: maxSteps, RecordPath: true})
		if run.ReachedError && (target == nil || run.ErrorLoc == target) {
			return run.Path, true
		}
		if depth >= maxNondetFlips {
			return nil, false
		}
		for _, v := range []int64{0, 1} {
			prefix = append(prefix, v)
			if p, ok := try(depth + 1); ok {
				return p, true
			}
			prefix = prefix[:len(prefix)-1]
		}
		return nil, false
	}
	return try(0)
}
