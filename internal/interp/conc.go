// Concurrent execution: a deterministic seeded scheduler that runs a
// CFA program with spawn/join threads over one shared State, recording
// the interleaving as a cfa.ConcTrace (docs/CONCURRENCY.md).
//
// Threads share all memory — including locals and the $arg/$ret
// transfer variables, which are semantically global (§4) — so a single
// State is the whole machine state and replaying a recorded trace is
// just ExecTrace over its total-order operation sequence.

package interp

import (
	"pathslice/internal/cfa"
)

// ConcRunResult describes a bounded concurrent run.
type ConcRunResult struct {
	ReachedError bool
	ErrorLoc     *cfa.Loc
	ErrorTID     int // thread that reached the error location
	Steps        int
	ExitNormally bool // every thread ran to completion
	Stuck        bool
	Trace        cfa.ConcTrace // the executed interleaving (when recording)
}

// ConcRunOptions configures ConcRun.
type ConcRunOptions struct {
	MaxSteps    int    // default 100000
	RecordTrace bool   // keep the executed interleaving
	Seed        uint64 // scheduler seed; equal seeds replay equal interleavings
}

// schedRNG is a splitmix64 generator: tiny, deterministic, and good
// enough to diversify interleavings across seeds.
type schedRNG struct{ s uint64 }

func (r *schedRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *schedRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}

// concThread is one thread's control state during ConcRun.
type concThread struct {
	loc      *cfa.Loc
	stack    []*cfa.Edge // open call edges; Dst is the resume location
	done     bool
	children []int
}

// ConcRun executes the program from main's entry on thread 0, picking
// at every step a uniformly random runnable thread (seeded, so runs
// are reproducible) and advancing it by one edge with the same
// first-executable-out-edge rule as Run. OpSpawn edges start the
// callee on a fresh thread — the k-th spawn creates thread k, matching
// cfa.ConcTrace's positional thread IDs — and a thread whose next edge
// is OpJoin is not runnable until every thread it spawned is done. The
// run stops when any thread reaches an error location, when all
// threads terminate, on the step bound, or when no thread can move.
func ConcRun(prog *cfa.Program, st *State, in Inputs, opts ConcRunOptions) ConcRunResult {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 100000
	}
	rng := &schedRNG{s: opts.Seed}
	var res ConcRunResult
	threads := []*concThread{{loc: prog.Funcs[prog.Main].Entry}}

	// runnable reports whether thread t can take a step right now.
	runnable := func(t *concThread) bool {
		if t.done || len(t.loc.Out) == 0 {
			return false
		}
		if e := t.loc.Out[0]; e.Op.Kind == cfa.OpJoin {
			for _, c := range t.children {
				if !threads[c].done {
					return false
				}
			}
		}
		return true
	}

	for res.Steps < opts.MaxSteps {
		var ready []int
		allDone := true
		for tid, t := range threads {
			if t.done {
				continue
			}
			allDone = false
			if t.loc.IsError {
				res.ReachedError = true
				res.ErrorLoc = t.loc
				res.ErrorTID = tid
				return res
			}
			if runnable(t) {
				ready = append(ready, tid)
			}
		}
		if allDone {
			res.ExitNormally = true
			return res
		}
		if len(ready) == 0 {
			// A thread at a dead-end non-error location, or a join cycle:
			// nothing can move.
			res.Stuck = true
			return res
		}
		tid := ready[rng.intn(len(ready))]
		t := threads[tid]

		var chosen *cfa.Edge
		for _, e := range t.loc.Out {
			if e.Op.Kind == cfa.OpAssume {
				ok, err := st.ExecOp(e.Op, in)
				if err != nil {
					continue // stuck on this edge; try another
				}
				if ok {
					chosen = e
					break
				}
				continue
			}
			ok, err := st.ExecOp(e.Op, in)
			if err != nil || !ok {
				res.Stuck = true
				return res
			}
			chosen = e
			break
		}
		if chosen == nil {
			// All assumes false: the thread halts the machine, as in Run.
			res.Stuck = true
			return res
		}
		res.Steps++
		if opts.RecordTrace {
			res.Trace = append(res.Trace, cfa.ConcEvent{TID: tid, Edge: chosen})
		}
		switch chosen.Op.Kind {
		case cfa.OpCall:
			t.stack = append(t.stack, chosen)
			t.loc = prog.Funcs[chosen.Op.Callee].Entry
		case cfa.OpReturn:
			if len(t.stack) == 0 {
				t.done = true
			} else {
				t.loc = t.stack[len(t.stack)-1].Dst
				t.stack = t.stack[:len(t.stack)-1]
			}
		case cfa.OpSpawn:
			child := len(threads)
			threads = append(threads, &concThread{loc: prog.Funcs[chosen.Op.Callee].Entry})
			t.children = append(t.children, child)
			t.loc = chosen.Dst
		default:
			t.loc = chosen.Dst
		}
	}
	return res
}
