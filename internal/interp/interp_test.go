package interp_test

import (
	"errors"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/interp"
	"pathslice/internal/lang/ast"
	"pathslice/internal/wp"
)

func setup(t *testing.T, src string) (*cfa.Program, *interp.State) {
	t.Helper()
	prog := compile.MustSource(src)
	_ = alias.Analyze(prog)
	return prog, interp.NewState(prog, wp.NewAddrMap(prog))
}

func TestRunStraightLine(t *testing.T) {
	prog, st := setup(t, `
		int a; int b;
		void main() {
			a = 3;
			b = a * 2 + 1;
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally || res.ReachedError {
		t.Fatalf("result: %+v", res)
	}
	if st.Get("a") != 3 || st.Get("b") != 7 {
		t.Errorf("a=%d b=%d", st.Get("a"), st.Get("b"))
	}
}

func TestRunBranchesAndError(t *testing.T) {
	prog, st := setup(t, `
		int a;
		void main() {
			if (a > 0) { error; }
			skip;
		}`)
	st.Set("a", 5)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ReachedError {
		t.Fatal("a=5 must reach error")
	}
	st2 := interp.NewState(prog, st.Addrs())
	st2.Set("a", -1)
	res = interp.Run(prog, st2, interp.ZeroInputs{}, interp.RunOptions{})
	if res.ReachedError || !res.ExitNormally {
		t.Fatalf("a=-1 must exit normally: %+v", res)
	}
}

func TestRunLoops(t *testing.T) {
	prog, st := setup(t, `
		int s;
		void main() {
			s = 0;
			for (int i = 1; i <= 10; i = i + 1) {
				s = s + i;
			}
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally {
		t.Fatalf("%+v", res)
	}
	if st.Get("s") != 55 {
		t.Errorf("s=%d", st.Get("s"))
	}
}

func TestRunCalls(t *testing.T) {
	prog, st := setup(t, `
		int g;
		int fib(int n) {
			if (n <= 1) { return n; }
			// no recursion: iterative
			int a = 0;
			int b = 1;
			for (int i = 2; i <= n; i = i + 1) {
				int tmp = a + b;
				a = b;
				b = tmp;
			}
			return b;
		}
		void main() {
			g = fib(10);
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally {
		t.Fatalf("%+v", res)
	}
	if st.Get("g") != 55 {
		t.Errorf("fib(10)=%d", st.Get("g"))
	}
}

func TestRunPointers(t *testing.T) {
	prog, st := setup(t, `
		int x; int y; int *p;
		void swapvia() {
			int t = *p;
			*p = t + 100;
		}
		void main() {
			x = 1;
			p = &x;
			swapvia();
			y = *p;
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally {
		t.Fatalf("%+v", res)
	}
	if st.Get("x") != 101 || st.Get("y") != 101 {
		t.Errorf("x=%d y=%d", st.Get("x"), st.Get("y"))
	}
}

func TestRunNullDerefIsStuck(t *testing.T) {
	prog, st := setup(t, `
		int *p;
		void main() {
			p = 0;
			*p = 1;
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.Stuck {
		t.Fatalf("null store must be stuck: %+v", res)
	}
}

func TestRunNondetInputs(t *testing.T) {
	prog, st := setup(t, `
		int a;
		void main() {
			a = nondet();
			if (a == 42) { error; }
		}`)
	res := interp.Run(prog, st.Clone(), &interp.SliceInputs{Vals: []int64{42}}, interp.RunOptions{})
	if !res.ReachedError {
		t.Fatal("input 42 must reach error")
	}
	res = interp.Run(prog, st.Clone(), &interp.SliceInputs{Vals: []int64{7}}, interp.RunOptions{})
	if res.ReachedError {
		t.Fatal("input 7 must not reach error")
	}
}

func TestRunStepBound(t *testing.T) {
	prog, st := setup(t, `
		void main() {
			while (1) { skip; }
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{MaxSteps: 50})
	if res.ExitNormally || res.ReachedError {
		t.Fatalf("infinite loop must hit the bound: %+v", res)
	}
	if res.Steps != 50 {
		t.Errorf("steps=%d", res.Steps)
	}
}

func TestRunRecordsValidPath(t *testing.T) {
	prog, st := setup(t, `
		int a;
		void f() { a = a + 1; }
		void main() {
			a = 0;
			f();
			if (a == 1) { error; }
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{RecordPath: true})
	if !res.ReachedError {
		t.Fatalf("%+v", res)
	}
	if err := res.Path.Validate(prog); err != nil {
		t.Fatalf("recorded path invalid: %v\n%s", err, res.Path)
	}
	if !res.Path.Target().IsError {
		t.Error("recorded path must end at the error location")
	}
}

func TestCanExecuteTrace(t *testing.T) {
	prog, st := setup(t, `
		int a;
		void main() {
			a = 1;
			assume(a == 1);
		}`)
	path := cfa.FindPath(prog, prog.Funcs["main"].Exit, cfa.FindOptions{})
	if path == nil {
		t.Fatal("no path to exit")
	}
	if !st.Clone().CanExecuteTrace(path.Ops(), interp.ZeroInputs{}) {
		t.Error("trace must execute")
	}
	// Flip the assumption by starting from a poisoned state: the first
	// op overwrites a, so still executable; instead check a trace with
	// an unsatisfied assume.
	prog2, st2 := setup(t, `
		int a;
		void main() {
			assume(a == 1);
		}`)
	path2 := cfa.FindPath(prog2, prog2.Funcs["main"].Exit, cfa.FindOptions{})
	if st2.Clone().CanExecuteTrace(path2.Ops(), interp.ZeroInputs{}) {
		t.Error("assume(a==1) with a=0 must block")
	}
	st2.Set("a", 1)
	if !st2.Clone().CanExecuteTrace(path2.Ops(), interp.ZeroInputs{}) {
		t.Error("assume(a==1) with a=1 must pass")
	}
}

func TestCanReachTarget(t *testing.T) {
	prog, st := setup(t, `
		void main() {
			int a = nondet();
			int b = nondet();
			if (a == 1) {
				if (b == 1) {
					error;
				}
			}
		}`)
	target := prog.ErrorLocs()[0]
	path, ok := interp.CanReachTarget(prog, st, target, 1000, 4)
	if !ok {
		t.Fatal("inputs a=1,b=1 reach the target")
	}
	if err := path.Validate(prog); err != nil {
		t.Fatalf("path invalid: %v", err)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// (a != 0 && 10/a > 1) must not divide by zero when a == 0.
	prog, st := setup(t, `
		int a; int r;
		void main() {
			a = 0;
			if (a != 0 && 10 / a > 1) { r = 1; } else { r = 2; }
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally {
		t.Fatalf("short-circuit must avoid the division: %+v", res)
	}
	if st.Get("r") != 2 {
		t.Errorf("r=%d", st.Get("r"))
	}
}

func TestExecErrors(t *testing.T) {
	prog, st := setup(t, `
		int a; int b;
		void main() {
			a = 10;
			b = 0;
			a = a / b;
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.Stuck {
		t.Fatalf("division by zero must stick: %+v", res)
	}
}

func TestCanReachTargetFails(t *testing.T) {
	prog, st := setup(t, `
		int a;
		void main() {
			a = 1;
			if (a == 2) { error; }
		}`)
	if _, ok := interp.CanReachTarget(prog, st, prog.ErrorLocs()[0], 1000, 3); ok {
		t.Fatal("unreachable target reported reachable")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	prog, st := setup(t, `int a; void main() { a = 1; }`)
	_ = prog
	st.Set("a", 7)
	c := st.Clone()
	c.Set("a", 9)
	if st.Get("a") != 7 {
		t.Fatal("clone mutated the original")
	}
}

func TestStrictUninitReadOnIdent(t *testing.T) {
	prog, _ := setup(t, `
		int g; int h;
		void main() {
			h = g + 1;
		}`)
	st := interp.NewStrictState(prog, wp.NewAddrMap(prog))
	path := cfa.FindPath(prog, prog.Funcs["main"].Exit, cfa.FindOptions{})
	ok, err := st.ExecTrace(path.Ops(), interp.ZeroInputs{})
	if ok || err == nil {
		t.Fatalf("read of never-assigned g must fail: ok=%v err=%v", ok, err)
	}
	var ur *interp.UninitReadError
	if !errors.As(err, &ur) || ur.Var != "g" {
		t.Fatalf("want UninitReadError{g}, got %v", err)
	}
	// Seeding g makes the same trace executable.
	st2 := interp.NewStrictState(prog, st.Addrs())
	st2.Set("g", 4)
	ok, err = st2.ExecTrace(path.Ops(), interp.ZeroInputs{})
	if !ok || err != nil {
		t.Fatalf("seeded state must execute: ok=%v err=%v", ok, err)
	}
	if st2.Get("h") != 5 {
		t.Errorf("h=%d", st2.Get("h"))
	}
}

func TestStrictUninitReadThroughPointer(t *testing.T) {
	prog, _ := setup(t, `
		int x; int y; int *p;
		void main() {
			p = &x;
			y = *p;
		}`)
	// p is assigned on the trace, but its target x never is: the
	// dereference must surface x, not p.
	st := interp.NewStrictState(prog, wp.NewAddrMap(prog))
	path := cfa.FindPath(prog, prog.Funcs["main"].Exit, cfa.FindOptions{})
	_, err := st.ExecTrace(path.Ops(), interp.ZeroInputs{})
	var ur *interp.UninitReadError
	if !errors.As(err, &ur) || ur.Var != "x" {
		t.Fatalf("want UninitReadError{x}, got %v", err)
	}
}

func TestStrictAssignMarksInitialized(t *testing.T) {
	prog, _ := setup(t, `
		int a; int b;
		void main() {
			a = 2;
			b = a * a;
		}`)
	st := interp.NewStrictState(prog, wp.NewAddrMap(prog))
	path := cfa.FindPath(prog, prog.Funcs["main"].Exit, cfa.FindOptions{})
	ok, err := st.ExecTrace(path.Ops(), interp.ZeroInputs{})
	if !ok || err != nil {
		t.Fatalf("writes on the trace cover the reads: ok=%v err=%v", ok, err)
	}
	// Clone must preserve both strictness and the assigned set.
	c := st.Clone()
	if _, err := c.EvalExpr(&ast.Ident{Name: "b"}, interp.ZeroInputs{}); err != nil {
		t.Fatalf("b assigned before clone: %v", err)
	}
	prog2, _ := setup(t, `int z; void main() { skip; }`)
	st3 := interp.NewStrictState(prog2, wp.NewAddrMap(prog2)).Clone()
	if _, err := st3.EvalExpr(&ast.Ident{Name: "z"}, interp.ZeroInputs{}); err == nil {
		t.Fatal("clone must stay strict")
	}
}

func TestNonStrictReadsStayZero(t *testing.T) {
	prog, st := setup(t, `
		int g; int h;
		void main() {
			h = g + 1;
		}`)
	res := interp.Run(prog, st, interp.ZeroInputs{}, interp.RunOptions{})
	if !res.ExitNormally {
		t.Fatalf("default mode keeps zero-value reads: %+v", res)
	}
	if st.Get("h") != 1 {
		t.Errorf("h=%d", st.Get("h"))
	}
}

func TestSliceInputsExhaustion(t *testing.T) {
	in := &interp.SliceInputs{Vals: []int64{5}}
	if in.Next() != 5 || in.Next() != 0 || in.Next() != 0 {
		t.Fatal("SliceInputs must zero-fill after exhaustion")
	}
}
