package cfa_test

import (
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
)

const walkProg = `
int g;
void helper() {
  int t = 0;
  for (int j = 0; j < 3; j = j + 1) { t = t + j; }
}
void main() {
  for (int i = 0; i < 10; i = i + 1) {
    helper();
  }
  if (g == 0) { error; }
}
`

func TestWalkLongPathValidAndLong(t *testing.T) {
	prog := compile.MustSource(walkProg)
	target := prog.ErrorLocs()[0]
	short := cfa.FindPath(prog, target, cfa.FindOptions{})
	for _, k := range []int{1, 2, 5, 10} {
		p := cfa.WalkLongPath(prog, target, k, 0)
		if p == nil {
			t.Fatalf("k=%d: walker stuck", k)
		}
		if err := p.Validate(prog); err != nil {
			t.Fatalf("k=%d: invalid path: %v", k, err)
		}
		if p.Target() != target {
			t.Fatalf("k=%d: wrong target", k)
		}
		if k >= 5 && len(p) <= len(short) {
			t.Errorf("k=%d: walk (%d edges) should exceed short path (%d)", k, len(p), len(short))
		}
	}
	// Monotone-ish growth with k.
	p2 := cfa.WalkLongPath(prog, target, 2, 0)
	p8 := cfa.WalkLongPath(prog, target, 8, 0)
	if len(p8) <= len(p2) {
		t.Errorf("k=8 path (%d) should be longer than k=2 path (%d)", len(p8), len(p2))
	}
}

func TestWalkLongPathCallBudgetNotThrottled(t *testing.T) {
	// A helper called more times than k must still be traversable:
	// only loop edges consume budget.
	prog := compile.MustSource(`
		void h() { skip; }
		void main() {
			h(); h(); h(); h(); h(); h();
			error;
		}`)
	target := prog.ErrorLocs()[0]
	p := cfa.WalkLongPath(prog, target, 2, 0)
	if p == nil {
		t.Fatal("walker must not be throttled by call counts")
	}
	if err := p.Validate(prog); err != nil {
		t.Fatal(err)
	}
}

func TestWalkLongPathAvoidsForeignDeadEnds(t *testing.T) {
	// Another error location lies on the way; the walker must not fall
	// into it.
	prog := compile.MustSource(`
		int a;
		void first() { if (a == 1) { error; } }
		void second() { if (a == 2) { error; } }
		void main() { first(); second(); }`)
	locs := prog.ErrorLocs()
	if len(locs) != 2 {
		t.Fatalf("locs: %d", len(locs))
	}
	// Target the error in second(): the walk passes through first().
	var target *cfa.Loc
	for _, l := range locs {
		if l.Fn.Name == "second" {
			target = l
		}
	}
	p := cfa.WalkLongPath(prog, target, 3, 0)
	if p == nil {
		t.Fatal("walker stuck")
	}
	if p.Target() != target {
		t.Fatal("reached the wrong error location")
	}
	if err := p.Validate(prog); err != nil {
		t.Fatal(err)
	}
}

func TestWalkLongPathUnreachable(t *testing.T) {
	prog := compile.MustSource(`void main() { skip; }`)
	// Use a location that is graph-unreachable from entry: none exists
	// here, so aim at main's exit — reachable, fine; then aim at a
	// fabricated dead target via an unreachable-error program.
	prog2 := compile.MustSource(`
		void never() { error; }
		void main() { skip; }`)
	target := prog2.ErrorLocs()[0]
	if p := cfa.WalkLongPath(prog2, target, 2, 0); p != nil {
		t.Fatal("never() is not called; no path must exist")
	}
	_ = prog
}
