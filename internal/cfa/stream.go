// Streaming trace ingestion: a compact binary on-disk format for
// program paths and a random-access reader that keeps only a bounded
// window of trace frames resident.
//
// A path over a known Program is fully determined by its edge-ID
// sequence, so the trace file is a fixed-size-record stream:
//
//	offset 0   8 bytes  magic "PSTRC01\n"
//	offset 8   8 bytes  program fingerprint (little-endian uint64)
//	offset 16  4 bytes  per edge: program edge ID (little-endian uint32)
//
// Fixed records make the i-th edge seekable without an index, which is
// what the backward slicing walk needs: it reads the file mostly
// back-to-front, with occasional forward jumps at frame skips, and a
// final forward pass that re-reads only the kept edges. PathReader
// serves that access pattern from a small LRU of decoded blocks, so
// peak resident trace frames are O(window), independent of trace
// length (the `slice_stream_frames_peak` gauge records the high-water
// mark; see docs/OBSERVABILITY.md).
//
// Robustness contract (docs/ROBUSTNESS.md): every malformed input —
// bad magic, program mismatch, truncated record, unknown edge ID, or a
// sequence that is not a well-formed program path — surfaces as a
// typed *TraceFormatError from OpenTraceFile, never as a panic.
// OpenTraceFile validates the whole file in one forward pass (the same
// checks as Path.Validate) and builds the §4 call-structure index, so
// a successfully opened reader hands the slicer a known-good path.

package cfa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pathslice/internal/obs"
)

const (
	traceMagic      = "PSTRC01\n"
	traceHeaderSize = 16
	traceRecordSize = 4

	// streamBlockEdges is the decode granularity (4 KiB reads);
	// streamCacheBlocks caps the resident window. Peak frames =
	// streamBlockEdges * streamCacheBlocks regardless of trace length.
	streamBlockEdges  = 1024
	streamCacheBlocks = 4
)

// mStreamFramesPeak is the high-water mark of trace frames resident in
// PathReader block caches (docs/OBSERVABILITY.md).
var mStreamFramesPeak = obs.Default().Gauge("slice_stream_frames_peak")

// TraceFormatError reports a malformed or mismatched trace file.
type TraceFormatError struct {
	Path   string // file path, when known
	Offset int64  // byte offset of the problem, -1 when structural
	Msg    string
}

func (e *TraceFormatError) Error() string {
	where := e.Path
	if where == "" {
		where = "trace"
	}
	if e.Offset >= 0 {
		return fmt.Sprintf("cfa: %s: offset %d: %s", where, e.Offset, e.Msg)
	}
	return fmt.Sprintf("cfa: %s: %s", where, e.Msg)
}

// ProgramFingerprint hashes the program's shape (function order, edge
// and location counts, per-edge endpoints and operation kinds) so a
// trace file recorded against one program is rejected when replayed
// against another.
func ProgramFingerprint(prog *Program) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0x1f)
	}
	mix(uint64(prog.NumLocs()))
	mix(uint64(prog.NumEdges()))
	for _, name := range prog.Order {
		mixStr(name)
		for _, e := range prog.Funcs[name].Edges {
			mix(uint64(e.ID)<<32 | uint64(uint32(e.Src.ID)))
			mix(uint64(uint32(e.Dst.ID))<<8 | uint64(e.Op.Kind))
		}
	}
	return h
}

// edgeTable returns the program's edges indexed by global edge ID.
func edgeTable(prog *Program) []*Edge {
	tbl := make([]*Edge, prog.NumEdges())
	for _, fn := range prog.Funcs {
		for _, e := range fn.Edges {
			if e.ID >= 0 && e.ID < len(tbl) {
				tbl[e.ID] = e
			}
		}
	}
	return tbl
}

// ---------------------------------------------------------------------------
// Writer

// TraceWriter streams path edges into the binary trace format.
type TraceWriter struct {
	w *bufio.Writer
	n int
}

// NewTraceWriter writes the header for prog and returns a writer ready
// to Append edges.
func NewTraceWriter(w io.Writer, prog *Program) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], ProgramFingerprint(prog))
	if _, err := bw.Write(fp[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

// Append writes one edge record.
func (tw *TraceWriter) Append(e *Edge) error {
	var rec [traceRecordSize]byte
	binary.LittleEndian.PutUint32(rec[:], uint32(e.ID))
	if _, err := tw.w.Write(rec[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Len returns the number of edges appended so far.
func (tw *TraceWriter) Len() int { return tw.n }

// Flush drains buffered records to the underlying writer.
func (tw *TraceWriter) Flush() error { return tw.w.Flush() }

// WriteTraceFile writes the whole path to a trace file at name.
func WriteTraceFile(name string, prog *Program, p Path) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	tw, err := NewTraceWriter(f, prog)
	if err != nil {
		f.Close()
		return err
	}
	for _, e := range p {
		if err := tw.Append(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// Reader

// PathReader is a random-access view of a trace file that keeps only a
// bounded window of frames decoded. It implements core.PathSource. Not
// safe for concurrent use; each slicing goroutine opens its own.
type PathReader struct {
	f       *os.File
	name    string
	prog    *Program
	edges   []*Edge // by global edge ID
	n       int
	callIdx []int32

	blocks     [streamCacheBlocks]streamBlock
	clock      uint64 // LRU tick
	frames     int    // decoded records currently resident
	framesPeak int
	err        error
}

type streamBlock struct {
	idx  int // block number, -1 when empty
	used uint64
	ids  []uint32
}

// OpenTraceFile opens, fully validates, and indexes a trace file for
// prog. The validation pass streams: it holds O(1) frames plus the §4
// call-index array (4 bytes per edge — structure metadata, not trace
// frames). Any malformation yields a *TraceFormatError.
func OpenTraceFile(name string, prog *Program) (*PathReader, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	r, err := newPathReader(f, name, prog)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newPathReader(f *os.File, name string, prog *Program) (*PathReader, error) {
	badf := func(off int64, format string, args ...any) error {
		return &TraceFormatError{Path: name, Offset: off, Msg: fmt.Sprintf(format, args...)}
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < traceHeaderSize {
		return nil, badf(size, "truncated header: %d bytes, want %d", size, traceHeaderSize)
	}
	var hdr [traceHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != traceMagic {
		if string(hdr[:8]) == concTraceMagic {
			return nil, badf(0, "version 2 (concurrent) trace; decode it with ReadConcTraceFile")
		}
		return nil, badf(0, "bad magic %q", hdr[:8])
	}
	if fp := binary.LittleEndian.Uint64(hdr[8:]); fp != ProgramFingerprint(prog) {
		return nil, badf(8, "trace was recorded against a different program (fingerprint %#x)", fp)
	}
	body := size - traceHeaderSize
	if body%traceRecordSize != 0 {
		return nil, badf(size, "truncated record: %d trailing bytes", body%traceRecordSize)
	}
	n := int(body / traceRecordSize)
	if n == 0 {
		return nil, badf(-1, "empty path")
	}

	r := &PathReader{f: f, name: name, prog: prog, edges: edgeTable(prog), n: n}
	for i := range r.blocks {
		r.blocks[i].idx = -1
	}

	// Forward validation pass: decode each record once, check the path
	// is well-formed (the same invariants as Path.Validate), and build
	// the call-structure index. Only the previous edge and the open
	// call stack stay resident; the stack carries each call edge's
	// resume location so return checking never needs random access.
	r.callIdx = make([]int32, n)
	br := bufio.NewReaderSize(f, 32*1024)
	var prev *Edge
	type openCall struct {
		idx    int32
		resume *Loc // the call edge's Dst: where the matching return resumes
	}
	var stack []openCall
	var pendingResume *Loc   // set when a return edge pops its frame
	var pendingCallIdx int32 // the popped frame's enclosing call index
	var rec [traceRecordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, badf(traceHeaderSize+int64(i)*traceRecordSize, "read: %v", err)
		}
		id := binary.LittleEndian.Uint32(rec[:])
		if int(id) >= len(r.edges) || r.edges[id] == nil {
			return nil, badf(traceHeaderSize+int64(i)*traceRecordSize, "edge %d: unknown edge ID %d", i, id)
		}
		e := r.edges[id]
		if i == 0 {
			r.callIdx[0] = -1
		} else {
			switch prev.Op.Kind {
			case OpCall:
				callee := prog.Funcs[prev.Op.Callee]
				if callee == nil {
					return nil, badf(-1, "edge %d calls unknown function %s", i-1, prev.Op.Callee)
				}
				if e.Src != callee.Entry {
					return nil, badf(-1, "edge %d after call to %s starts at %s, want entry %s",
						i, prev.Op.Callee, e.Src, callee.Entry)
				}
				r.callIdx[i] = int32(i - 1)
			case OpReturn:
				if e.Src != pendingResume {
					return nil, badf(-1, "edge %d after return resumes at %s, want %s",
						i, e.Src, pendingResume)
				}
				r.callIdx[i] = pendingCallIdx
			default:
				if e.Src != prev.Dst {
					return nil, badf(-1, "edge %d source %s does not follow edge %d target %s",
						i, e.Src, i-1, prev.Dst)
				}
				r.callIdx[i] = r.callIdx[i-1]
			}
		}
		switch e.Op.Kind {
		case OpCall:
			stack = append(stack, openCall{idx: int32(i), resume: e.Dst})
		case OpReturn:
			if len(stack) == 0 {
				return nil, badf(-1, "edge %d returns from the outermost frame", i)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pendingResume = top.resume
			pendingCallIdx = r.callIdx[top.idx]
		}
		prev = e
	}
	return r, nil
}

// Len returns the path length in edges.
func (r *PathReader) Len() int { return r.n }

// CallIdx returns the §4 call-structure index for edge i (the index of
// the call edge opening edge i's frame, or -1 in the outermost frame).
func (r *PathReader) CallIdx(i int) int { return int(r.callIdx[i]) }

// Err returns the sticky read error, set when Edge returned nil.
func (r *PathReader) Err() error { return r.err }

// FramesPeak returns the high-water mark of resident decoded frames.
func (r *PathReader) FramesPeak() int { return r.framesPeak }

// Edge returns the i-th path edge, decoding through the bounded block
// cache. On an I/O failure it returns nil and records the error in
// Err (OpenTraceFile has already proven the file well-formed, so this
// only trips when the file changes or vanishes underneath us).
func (r *PathReader) Edge(i int) *Edge {
	if i < 0 || i >= r.n {
		r.err = &TraceFormatError{Path: r.name, Offset: -1, Msg: fmt.Sprintf("edge index %d out of range [0,%d)", i, r.n)}
		return nil
	}
	blk := i / streamBlockEdges
	b := r.block(blk)
	if b == nil {
		return nil
	}
	return r.edges[b.ids[i-blk*streamBlockEdges]]
}

func (r *PathReader) block(blk int) *streamBlock {
	r.clock++
	var victim *streamBlock
	for bi := range r.blocks {
		b := &r.blocks[bi]
		if b.idx == blk {
			b.used = r.clock
			return b
		}
		if victim == nil || b.used < victim.used {
			victim = b
		}
	}
	// Miss: evict the least-recently-used block and load.
	lo := blk * streamBlockEdges
	count := r.n - lo
	if count > streamBlockEdges {
		count = streamBlockEdges
	}
	buf := make([]byte, count*traceRecordSize)
	if _, err := r.f.ReadAt(buf, traceHeaderSize+int64(lo)*traceRecordSize); err != nil {
		r.err = &TraceFormatError{Path: r.name, Offset: traceHeaderSize + int64(lo)*traceRecordSize,
			Msg: fmt.Sprintf("read block %d: %v", blk, err)}
		return nil
	}
	r.frames -= len(victim.ids)
	if cap(victim.ids) < count {
		victim.ids = make([]uint32, count)
	}
	victim.ids = victim.ids[:count]
	for k := 0; k < count; k++ {
		victim.ids[k] = binary.LittleEndian.Uint32(buf[k*traceRecordSize:])
	}
	victim.idx = blk
	victim.used = r.clock
	r.frames += count
	if r.frames > r.framesPeak {
		r.framesPeak = r.frames
		mStreamFramesPeak.SetMax(int64(r.framesPeak))
	}
	return victim
}

// Close releases the underlying file.
func (r *PathReader) Close() error { return r.f.Close() }
