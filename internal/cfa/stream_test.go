package cfa_test

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
)

const streamProg = `
int g;
void helper() {
  g = g + 1;
}
void main() {
  for (int i = 0; i < 10; i = i + 1) {
    helper();
  }
  if (g == 0) { error; }
}
`

func streamFixture(t *testing.T) (*cfa.Program, cfa.Path, string) {
	t.Helper()
	prog := compile.MustSource(streamProg)
	p := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 2})
	if p == nil {
		t.Fatal("no path to error")
	}
	file := filepath.Join(t.TempDir(), "trace.pstrc")
	if err := cfa.WriteTraceFile(file, prog, p); err != nil {
		t.Fatal(err)
	}
	return prog, p, file
}

func TestTraceRoundtrip(t *testing.T) {
	prog, p, file := streamFixture(t)
	r, err := cfa.OpenTraceFile(file, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(p) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(p))
	}
	want := p.CallIdx()
	// Read backward, the slicer's access pattern.
	for i := r.Len() - 1; i >= 0; i-- {
		e := r.Edge(i)
		if e == nil {
			t.Fatalf("Edge(%d) failed: %v", i, r.Err())
		}
		if e != p[i] {
			t.Fatalf("Edge(%d) = %v, want %v", i, e, p[i])
		}
		if r.CallIdx(i) != want[i] {
			t.Fatalf("CallIdx(%d) = %d, want %d", i, r.CallIdx(i), want[i])
		}
	}
	if r.FramesPeak() == 0 || r.FramesPeak() > r.Len() {
		t.Fatalf("FramesPeak = %d out of range", r.FramesPeak())
	}
}

// TestTraceLongPathBoundedWindow: on a trace spanning many cache
// blocks, the resident window must stay at the cache bound while the
// whole path remains readable.
func TestTraceLongPathBoundedWindow(t *testing.T) {
	prog := compile.MustSource(streamProg)
	target := prog.ErrorLocs()[0]
	p := cfa.WalkLongPath(prog, target, 1200, 0)
	if p == nil {
		t.Fatal("walker stuck")
	}
	if len(p) < 5000 {
		t.Fatalf("want a multi-block path, got %d edges", len(p))
	}
	file := filepath.Join(t.TempDir(), "long.pstrc")
	if err := cfa.WriteTraceFile(file, prog, p); err != nil {
		t.Fatal(err)
	}
	r, err := cfa.OpenTraceFile(file, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := r.Len() - 1; i >= 0; i-- {
		if r.Edge(i) != p[i] {
			t.Fatalf("Edge(%d) mismatch (err %v)", i, r.Err())
		}
	}
	// 4 blocks × 1024 edges is the documented bound.
	if peak := r.FramesPeak(); peak > 4096 {
		t.Fatalf("FramesPeak = %d, want ≤ 4096 despite %d-edge trace", peak, len(p))
	}
}

// corrupt writes a mutated copy of the fixture file and reports the
// typed error OpenTraceFile yields for it.
func corrupt(t *testing.T, file string, mutate func([]byte) []byte) error {
	t.Helper()
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corrupt.pstrc")
	if err := os.WriteFile(out, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := compile.MustSource(streamProg)
	r, err := cfa.OpenTraceFile(out, prog)
	if r != nil {
		r.Close()
		t.Fatal("corrupt file must not open")
	}
	return err
}

func wantFormatError(t *testing.T, name string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: want error, got nil", name)
	}
	var fe *cfa.TraceFormatError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: want *cfa.TraceFormatError, got %T: %v", name, err, err)
	}
	if fe.Error() == "" {
		t.Fatalf("%s: empty error message", name)
	}
}

// TestTraceCorruptionTypedErrors: every malformation class must yield
// a *TraceFormatError from OpenTraceFile, never a panic or a reader.
func TestTraceCorruptionTypedErrors(t *testing.T) {
	_, _, file := streamFixture(t)
	cases := map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:10] },
		"bad magic":        func(b []byte) []byte { b[0] = 'X'; return b },
		"wrong program": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 0xdeadbeef)
			return b
		},
		"truncated record": func(b []byte) []byte { return b[:len(b)-2] },
		"empty path":       func(b []byte) []byte { return b[:16] },
		"unknown edge ID": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0xffff)
			return b
		},
		"broken adjacency": func(b []byte) []byte {
			// Swap two interior records: the edge sequence stops being a
			// connected path.
			copy(b[24:28], b[20:24])
			return b
		},
	}
	for name, mutate := range cases {
		wantFormatError(t, name, corrupt(t, file, mutate))
	}
}

// TestTraceWrongProgramRejected: a structurally different program has
// a different fingerprint.
func TestTraceWrongProgramRejected(t *testing.T) {
	_, _, file := streamFixture(t)
	other := compile.MustSource(`int z; void main() { if (z == 0) { error; } }`)
	r, err := cfa.OpenTraceFile(file, other)
	if r != nil {
		r.Close()
		t.Fatal("trace must not open against a different program")
	}
	wantFormatError(t, "wrong program", err)
}

func TestTraceMissingFile(t *testing.T) {
	prog := compile.MustSource(streamProg)
	if _, err := cfa.OpenTraceFile(filepath.Join(t.TempDir(), "nope.pstrc"), prog); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestTraceWriterIncremental exercises the streaming writer the way a
// model checker would use it: append edges one at a time, then replay.
func TestTraceWriterIncremental(t *testing.T) {
	prog, p, _ := streamFixture(t)
	file := filepath.Join(t.TempDir(), "incr.pstrc")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := cfa.NewTraceWriter(f, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p {
		if err := tw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Len() != len(p) {
		t.Fatalf("Len = %d, want %d", tw.Len(), len(p))
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := cfa.OpenTraceFile(file, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(p) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(p))
	}
}
