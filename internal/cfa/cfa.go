// Package cfa implements control flow automata (CFA), the program
// representation of the paper: per-procedure rooted directed graphs
// whose edges are labeled with operations (assignments, assumes, calls,
// returns), plus program paths over them (§3.1, §4).
//
// Variable naming: globals keep their source names; locals and
// parameters of a function f are qualified as "f::x". Parameter and
// return-value passing is desugared through per-function transfer
// variables "f::$argN" and "f::$ret", which are treated as globals —
// exactly the convention of §4 of the paper ("parameters are passed to
// procedures via global variables").
package cfa

import (
	"fmt"
	"strings"

	"pathslice/internal/lang/ast"
)

// Lvalue is a storage location reference: a variable x, or a
// dereference *p of a pointer variable p.
type Lvalue struct {
	Var   string
	Deref bool
}

// String renders the lvalue in source syntax.
func (l Lvalue) String() string {
	if l.Deref {
		return "*" + l.Var
	}
	return l.Var
}

// OpKind classifies CFA edge operations.
type OpKind int

// The four operation kinds of the paper (§3.1, §4), plus the two
// thread operations of the concurrent extension (docs/CONCURRENCY.md):
// OpSpawn starts the callee on a fresh thread, OpJoin blocks until
// every thread spawned by the current thread has terminated.
const (
	OpAssign OpKind = iota
	OpAssume
	OpCall
	OpReturn
	OpSpawn
	OpJoin
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpAssign:
		return "assign"
	case OpAssume:
		return "assume"
	case OpCall:
		return "call"
	case OpReturn:
		return "return"
	case OpSpawn:
		return "spawn"
	case OpJoin:
		return "join"
	}
	return "?"
}

// Op is a CFA edge label.
//
//   - OpAssign: LHS := RHS (RHS is an ast.Expr over qualified names;
//     it may be *ast.Nondet, meaning an unconstrained input).
//   - OpAssume: Pred must evaluate to true (nonzero) to pass.
//   - OpCall: transfer of control to Callee's entry location.
//   - OpReturn: transfer back to the successor of the matching call.
//   - OpSpawn: start Callee on a fresh thread; control continues to the
//     edge's destination while the new thread runs Callee's body.
//   - OpJoin: block until all threads spawned by this thread terminate.
type Op struct {
	Kind   OpKind
	LHS    Lvalue   // OpAssign
	RHS    ast.Expr // OpAssign
	Pred   ast.Expr // OpAssume
	Callee string   // OpCall
}

// String renders the operation in source-like syntax.
func (op Op) String() string {
	switch op.Kind {
	case OpAssign:
		return op.LHS.String() + " := " + ast.ExprString(op.RHS)
	case OpAssume:
		return "assume(" + ast.ExprString(op.Pred) + ")"
	case OpCall:
		return op.Callee + "()"
	case OpReturn:
		return "return"
	case OpSpawn:
		return "spawn " + op.Callee + "()"
	case OpJoin:
		return "join"
	}
	return "?"
}

// Loc is a CFA control location.
type Loc struct {
	ID      int  // unique within the whole Program
	Index   int  // index within Fn.Locs
	Fn      *CFA // owning automaton
	In, Out []*Edge
	IsError bool // the target (error) location of the paper
	// Line is the source line this location corresponds to (best effort).
	Line int
}

// String renders the location as fn#index.
func (l *Loc) String() string {
	tag := ""
	if l.IsError {
		tag = "!"
	}
	return fmt.Sprintf("%s#%d%s", l.Fn.Name, l.Index, tag)
}

// Edge is a CFA edge (pc, op, pc').
type Edge struct {
	ID       int // unique within the whole Program
	Index    int // index within Fn.Edges
	Src, Dst *Loc
	Op       Op
}

// String renders the edge with its operation.
func (e *Edge) String() string {
	return fmt.Sprintf("%s -[%s]-> %s", e.Src, e.Op, e.Dst)
}

// CFA is the control flow automaton of one procedure.
type CFA struct {
	Name        string
	Entry, Exit *Loc
	Locs        []*Loc
	Edges       []*Edge
	Params      []string // qualified parameter names, in order
	ArgVars     []string // "f::$argN" transfer variables, in order
	RetVar      string   // "f::$ret", or "" for void procedures
	Locals      []string // qualified local names (excluding params)
}

// ErrorLocs returns the error locations of the CFA.
func (c *CFA) ErrorLocs() []*Loc {
	var out []*Loc
	for _, l := range c.Locs {
		if l.IsError {
			out = append(out, l)
		}
	}
	return out
}

// Program is a set of CFAs with shared globals (§4).
type Program struct {
	Funcs      map[string]*CFA
	Order      []string // callee-before-caller topological order
	Globals    []string // source globals plus transfer variables
	GlobalInit map[string]int64
	Types      map[string]ast.Type // every qualified variable
	Main       string
	nextLocID  int
	nextEdgeID int
}

// NumLocs returns the total number of locations across all CFAs.
func (p *Program) NumLocs() int { return p.nextLocID }

// NumEdges returns the total number of edges across all CFAs.
func (p *Program) NumEdges() int { return p.nextEdgeID }

// FuncOf returns the CFA owning the given qualified variable name, or
// nil for globals.
func (p *Program) FuncOf(qualified string) *CFA {
	if i := strings.Index(qualified, "::"); i >= 0 {
		return p.Funcs[qualified[:i]]
	}
	return nil
}

// IsGlobal reports whether the qualified name names a global (including
// transfer variables).
func (p *Program) IsGlobal(qualified string) bool {
	return !strings.Contains(qualified, "::")
}

// ErrorLocs returns every error location in the program.
func (p *Program) ErrorLocs() []*Loc {
	var out []*Loc
	for _, name := range p.Order {
		out = append(out, p.Funcs[name].ErrorLocs()...)
	}
	return out
}

func (p *Program) newLoc(fn *CFA, line int) *Loc {
	l := &Loc{ID: p.nextLocID, Index: len(fn.Locs), Fn: fn, Line: line}
	p.nextLocID++
	fn.Locs = append(fn.Locs, l)
	return l
}

func (p *Program) newEdge(src, dst *Loc, op Op) *Edge {
	e := &Edge{ID: p.nextEdgeID, Index: len(src.Fn.Edges), Src: src, Dst: dst, Op: op}
	p.nextEdgeID++
	src.Fn.Edges = append(src.Fn.Edges, e)
	src.Out = append(src.Out, e)
	dst.In = append(dst.In, e)
	return e
}

// Qualify returns the qualified name of a variable declared in function
// fn ("fn::name").
func Qualify(fn, name string) string { return fn + "::" + name }

// ArgVar returns the i-th argument transfer variable of fn.
func ArgVar(fn string, i int) string { return fmt.Sprintf("%s::$arg%d", fn, i) }

// RetVar returns the return transfer variable of fn.
func RetVar(fn string) string { return fn + "::$ret" }

// IsTransferVar reports whether the qualified name is an $arg/$ret
// transfer variable (which are semantically global, per §4).
func IsTransferVar(name string) bool {
	return strings.Contains(name, "::$")
}

// Dump renders the whole program's CFAs as text, for debugging and
// golden tests.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, name := range p.Order {
		fn := p.Funcs[name]
		fmt.Fprintf(&b, "cfa %s entry=%s exit=%s\n", fn.Name, fn.Entry, fn.Exit)
		for _, e := range fn.Edges {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}
