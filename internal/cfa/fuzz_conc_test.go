package cfa_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/interp"
	"pathslice/internal/wp"
)

const fuzzConcProg = `
int g;
int done;
void wrk() {
  g = 42;
  done = 1;
}
void main() {
  spawn wrk();
  join;
  if (done == 1) {
    if (g == 42) { error; }
  }
}
`

// FuzzConcurrentTrace feeds arbitrary bytes to the PSTRC02 decoder.
// The contract (docs/ROBUSTNESS.md): DecodeConcTrace never panics on
// any input; every malformation — bad magic, a PSTRC01 header (version
// mismatch in either direction), wrong fingerprint, truncated or
// out-of-range records, structurally invalid event sequences — is a
// typed *TraceFormatError; and a successful decode yields a trace that
// re-validates and re-encodes to the same bytes.
func FuzzConcurrentTrace(f *testing.F) {
	prog := compile.MustSource(fuzzConcProg)

	// A genuine recorded trace as the prime seed.
	var genuine []byte
	for seed := uint64(0); seed < 64; seed++ {
		st := interp.NewState(prog, wp.NewAddrMap(prog))
		r := interp.ConcRun(prog, st, interp.ZeroInputs{}, interp.ConcRunOptions{RecordTrace: true, Seed: seed})
		if r.ReachedError {
			genuine = cfa.AppendConcTrace(nil, prog, r.Trace)
			break
		}
	}
	if genuine == nil {
		f.Fatal("no error interleaving found for the fuzz fixture")
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add([]byte("PSTRC02\n"))
	f.Add([]byte("PSTRC01\n01234567")) // v1 header at the v2 decoder
	f.Add(append([]byte("PSTRC02\n"), genuine[8:]...))
	f.Add(genuine[:len(genuine)-3]) // truncated record
	corrupt := append([]byte(nil), genuine...)
	binary.LittleEndian.PutUint32(corrupt[16:], 1<<20) // absurd thread ID
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := cfa.DecodeConcTrace(data, prog)
		if err != nil {
			var tfe *cfa.TraceFormatError
			if !errors.As(err, &tfe) {
				t.Fatalf("non-typed decode error %T: %v", err, err)
			}
			return
		}
		if verr := tr.Validate(prog); verr != nil {
			t.Fatalf("decoded trace does not re-validate: %v", verr)
		}
		if got := cfa.AppendConcTrace(nil, prog, tr); string(got) != string(data) {
			t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(got), len(data))
		}
	})
}
