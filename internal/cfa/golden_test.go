package cfa_test

import (
	"strings"
	"testing"

	"pathslice/internal/compile"
)

// TestGoldenDump pins the exact CFA lowering of a representative
// program: any change to the builder's conventions (transfer variables,
// branch desugaring, global initializers, implicit returns) shows up
// here first.
func TestGoldenDump(t *testing.T) {
	prog := compile.MustSource(`
int g = 2;
int inc(int k) {
  return k + 1;
}
void main() {
  int v = inc(g);
  if (v > 2) {
    error;
  }
}
`)
	got := prog.Dump()
	want := strings.TrimLeft(`
cfa inc entry=inc#0 exit=inc#1
  inc#0 -[inc::k := inc::$arg0]-> inc#2
  inc#2 -[inc::$ret := (inc::k + 1)]-> inc#4
  inc#4 -[return]-> inc#1
  inc#3 -[return]-> inc#1
cfa main entry=main#0 exit=main#1
  main#0 -[g := 2]-> main#2
  main#2 -[inc::$arg0 := g]-> main#5
  main#5 -[inc()]-> main#6
  main#6 -[main::v := inc::$ret]-> main#4
  main#4 -[assume((main::v > 2))]-> main#7
  main#4 -[assume((!(main::v > 2)))]-> main#3
  main#7 -[assume(1)]-> main#8!
  main#3 -[return]-> main#1
`, "\n")
	if got != want {
		t.Errorf("CFA lowering changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
