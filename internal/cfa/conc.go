// Concurrent traces: interleaved multi-threaded program paths and
// their on-disk format (docs/CONCURRENCY.md).
//
// A concurrent trace is a totally ordered sequence of events, each an
// edge executed by one thread. Thread IDs are positional: thread 0 is
// the initial thread running main, and the k-th OpSpawn event in the
// trace (counting from 1) creates thread k. Projecting the events of
// one thread yields an ordinary program path for that thread, starting
// at the spawned callee's entry (or wherever main starts for thread 0),
// so all of the §3/§4 per-path machinery applies thread-locally; the
// cross-thread structure (spawn ordering, join barriers, conflicting
// accesses) is what the concurrent slicer's inter-thread phase
// consumes.
//
// On-disk, version 2 of the trace format extends PSTRC01 with a thread
// ID per record:
//
//	offset 0   8 bytes  magic "PSTRC02\n"
//	offset 8   8 bytes  program fingerprint (little-endian uint64)
//	offset 16  8 bytes  per event: thread ID then program edge ID
//	                    (two little-endian uint32s)
//
// Robustness contract (docs/ROBUSTNESS.md): every malformed input —
// bad or version-mismatched magic, program mismatch, truncated record,
// unknown edge ID, out-of-order thread IDs, or a projection that is
// not a well-formed path — surfaces as a typed *TraceFormatError,
// never as a panic. A version-1 file handed to the concurrent decoder
// (or vice versa) is reported as a version mismatch, not bad magic.

package cfa

import (
	"encoding/binary"
	"fmt"
	"os"
)

const (
	concTraceMagic      = "PSTRC02\n"
	concTraceHeaderSize = 16
	concTraceRecordSize = 8

	// maxConcThreads bounds the thread IDs a decoded trace may use, so
	// hostile inputs cannot force huge per-thread allocations.
	maxConcThreads = 1 << 16
)

// ConcEvent is one step of a concurrent trace: thread TID executes Edge.
type ConcEvent struct {
	TID  int
	Edge *Edge
}

// ConcTrace is an interleaved multi-threaded trace: a total order over
// per-thread program paths. The zero value is an empty trace.
type ConcTrace []ConcEvent

// LiftPath wraps a sequential path as a single-threaded concurrent
// trace (every event on thread 0). Slicing the lifted trace must agree
// bit-for-bit with slicing the path directly; the differential test in
// core proves it.
func LiftPath(p Path) ConcTrace {
	tr := make(ConcTrace, len(p))
	for i, e := range p {
		tr[i] = ConcEvent{TID: 0, Edge: e}
	}
	return tr
}

// NumThreads returns 1 + the largest thread ID in the trace (0 for an
// empty trace).
func (tr ConcTrace) NumThreads() int {
	n := 0
	for _, ev := range tr {
		if ev.TID+1 > n {
			n = ev.TID + 1
		}
	}
	return n
}

// Sequential reports whether every event runs on thread 0, and if so
// returns the underlying sequential path.
func (tr ConcTrace) Sequential() (Path, bool) {
	for _, ev := range tr {
		if ev.TID != 0 {
			return nil, false
		}
	}
	p := make(Path, len(tr))
	for i, ev := range tr {
		p[i] = ev.Edge
	}
	return p, true
}

// ThreadIndex returns, per thread, the trace indices of its events in
// order. Projecting tr through one row yields that thread's path.
func (tr ConcTrace) ThreadIndex() [][]int {
	idx := make([][]int, tr.NumThreads())
	for i, ev := range tr {
		idx[ev.TID] = append(idx[ev.TID], i)
	}
	return idx
}

// Ops returns the total-order operation sequence of the trace. Because
// threads share all memory, replaying a concurrent trace is executing
// exactly this sequence (spawn and join are identity on the state).
func (tr ConcTrace) Ops() []Op {
	ops := make([]Op, len(tr))
	for i, ev := range tr {
		ops[i] = ev.Edge.Op
	}
	return ops
}

// ThreadPath returns thread t's projected program path.
func (tr ConcTrace) ThreadPath(t int) Path {
	var p Path
	for _, ev := range tr {
		if ev.TID == t {
			p = append(p, ev.Edge)
		}
	}
	return p
}

// String renders the trace one event per line, for debugging.
func (tr ConcTrace) String() string {
	out := ""
	for i, ev := range tr {
		out += fmt.Sprintf("%4d: T%d %s\n", i, ev.TID, ev.Edge)
	}
	return out
}

// concThreadState tracks one thread's progress during validation.
type concThreadState struct {
	started bool
	done    bool  // executed its outermost return
	prev    *Edge // last edge executed
	// stack carries each open call's resume location, as in the PSTRC01
	// validation pass, so return checking is O(1).
	stack  []*Loc
	parent int
	entry  *Loc // required source of the thread's first edge (nil: any)
}

// Validate checks that tr is a well-formed concurrent trace over prog:
// the first event runs on thread 0; the k-th spawn event creates
// thread k, whose events all follow the spawn and begin at the spawned
// callee's entry; each thread's projection satisfies the §3.1/§4 path
// invariants (frame-wise adjacency, calls entering callee entries,
// returns resuming after the matching call); no thread runs past its
// outermost return; and every join waits for threads that have in fact
// terminated earlier in the total order.
func (tr ConcTrace) Validate(prog *Program) error {
	badf := func(i int, format string, args ...any) error {
		return &TraceFormatError{Offset: -1,
			Msg: fmt.Sprintf("event %d: %s", i, fmt.Sprintf(format, args...))}
	}
	if len(tr) == 0 {
		return &TraceFormatError{Offset: -1, Msg: "empty trace"}
	}
	if tr[0].TID != 0 {
		return badf(0, "trace starts on thread %d, want thread 0", tr[0].TID)
	}
	threads := []*concThreadState{{parent: -1}}
	children := map[int][]int{} // spawner tid -> spawned tids
	for i, ev := range tr {
		if ev.Edge == nil {
			return badf(i, "nil edge")
		}
		if ev.TID < 0 || ev.TID >= len(threads) {
			return badf(i, "thread %d has not been spawned (%d threads so far)", ev.TID, len(threads))
		}
		st := threads[ev.TID]
		if st.done {
			return badf(i, "thread %d runs past its outermost return", ev.TID)
		}
		e := ev.Edge
		if !st.started {
			st.started = true
			if st.entry != nil && e.Src != st.entry {
				return badf(i, "thread %d starts at %s, want spawned entry %s", ev.TID, e.Src, st.entry)
			}
		} else {
			prev := st.prev
			switch prev.Op.Kind {
			case OpCall:
				callee := prog.Funcs[prev.Op.Callee]
				if callee == nil {
					return badf(i, "thread %d calls unknown function %s", ev.TID, prev.Op.Callee)
				}
				if e.Src != callee.Entry {
					return badf(i, "thread %d after call to %s starts at %s, want entry %s",
						ev.TID, prev.Op.Callee, e.Src, callee.Entry)
				}
			case OpReturn:
				resume := st.stack[len(st.stack)-1]
				st.stack = st.stack[:len(st.stack)-1]
				if e.Src != resume {
					return badf(i, "thread %d after return resumes at %s, want %s", ev.TID, e.Src, resume)
				}
			default:
				if e.Src != prev.Dst {
					return badf(i, "thread %d edge source %s does not follow %s", ev.TID, e.Src, prev.Dst)
				}
			}
		}
		switch e.Op.Kind {
		case OpCall:
			st.stack = append(st.stack, e.Dst)
		case OpReturn:
			if len(st.stack) == 0 {
				// Outermost return: the thread terminates. Leave the resume
				// pop to the next event check, which must not exist.
				st.done = true
			}
			// Non-outermost returns pop lazily above, when the next event
			// of this thread is checked against the resume location.
		case OpSpawn:
			callee := prog.Funcs[e.Op.Callee]
			if callee == nil {
				return badf(i, "thread %d spawns unknown function %s", ev.TID, e.Op.Callee)
			}
			child := len(threads)
			if child >= maxConcThreads {
				return badf(i, "too many threads (max %d)", maxConcThreads)
			}
			threads = append(threads, &concThreadState{parent: ev.TID, entry: callee.Entry})
			children[ev.TID] = append(children[ev.TID], child)
		case OpJoin:
			for _, c := range children[ev.TID] {
				if !threads[c].done {
					return badf(i, "thread %d joins before spawned thread %d terminated", ev.TID, c)
				}
			}
		}
		st.prev = e
	}
	return nil
}

// ---------------------------------------------------------------------------
// PSTRC02 encode/decode

// AppendConcTrace encodes tr in the PSTRC02 format, appending to buf.
func AppendConcTrace(buf []byte, prog *Program, tr ConcTrace) []byte {
	buf = append(buf, concTraceMagic...)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], ProgramFingerprint(prog))
	buf = append(buf, u64[:]...)
	var rec [concTraceRecordSize]byte
	for _, ev := range tr {
		binary.LittleEndian.PutUint32(rec[:4], uint32(ev.TID))
		binary.LittleEndian.PutUint32(rec[4:], uint32(ev.Edge.ID))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// WriteConcTraceFile writes the whole concurrent trace to name.
func WriteConcTraceFile(name string, prog *Program, tr ConcTrace) error {
	return os.WriteFile(name, AppendConcTrace(nil, prog, tr), 0o644)
}

// IsConcTraceImage reports whether data begins with the PSTRC02 magic
// — a cheap format probe for callers (the slicerd trace upload, the
// CLIs) that accept both sequential and concurrent trace images.
func IsConcTraceImage(data []byte) bool {
	return len(data) >= len(concTraceMagic) && string(data[:len(concTraceMagic)]) == concTraceMagic
}

// DecodeConcTrace decodes and fully validates a PSTRC02 byte image
// against prog. Any malformation — including a PSTRC01 header, which
// is reported as a version mismatch — yields a *TraceFormatError.
func DecodeConcTrace(data []byte, prog *Program) (ConcTrace, error) {
	badf := func(off int64, format string, args ...any) error {
		return &TraceFormatError{Offset: off, Msg: fmt.Sprintf(format, args...)}
	}
	if len(data) < concTraceHeaderSize {
		return nil, badf(int64(len(data)), "truncated header: %d bytes, want %d", len(data), concTraceHeaderSize)
	}
	switch string(data[:8]) {
	case concTraceMagic:
	case traceMagic:
		return nil, badf(0, "version 1 (sequential) trace; decode it with OpenTraceFile")
	default:
		return nil, badf(0, "bad magic %q", data[:8])
	}
	if fp := binary.LittleEndian.Uint64(data[8:16]); fp != ProgramFingerprint(prog) {
		return nil, badf(8, "trace was recorded against a different program (fingerprint %#x)", fp)
	}
	body := data[concTraceHeaderSize:]
	if len(body)%concTraceRecordSize != 0 {
		return nil, badf(int64(len(data)), "truncated record: %d trailing bytes", len(body)%concTraceRecordSize)
	}
	n := len(body) / concTraceRecordSize
	edges := edgeTable(prog)
	tr := make(ConcTrace, n)
	for i := 0; i < n; i++ {
		rec := body[i*concTraceRecordSize:]
		tid := binary.LittleEndian.Uint32(rec[:4])
		id := binary.LittleEndian.Uint32(rec[4:8])
		off := int64(concTraceHeaderSize + i*concTraceRecordSize)
		if tid >= maxConcThreads {
			return nil, badf(off, "event %d: thread ID %d out of range", i, tid)
		}
		if int(id) >= len(edges) || edges[id] == nil {
			return nil, badf(off, "event %d: unknown edge ID %d", i, id)
		}
		tr[i] = ConcEvent{TID: int(tid), Edge: edges[id]}
	}
	if err := tr.Validate(prog); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadConcTraceFile reads, decodes and validates a PSTRC02 trace file.
func ReadConcTraceFile(name string, prog *Program) (ConcTrace, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	tr, err := DecodeConcTrace(data, prog)
	if err != nil {
		if tfe, ok := err.(*TraceFormatError); ok {
			tfe.Path = name
		}
		return nil, err
	}
	return tr, nil
}
