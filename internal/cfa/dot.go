package cfa

import (
	"fmt"
	"sort"
	"strings"
)

// DotOptions configures Graphviz export.
type DotOptions struct {
	// Highlight marks the given edges (by ID) in bold red — used to
	// show a path slice on top of the CFA.
	Highlight map[int]bool
	// Funcs restricts output to the named functions (nil = all).
	Funcs []string
	// RankDir is the graph direction ("TB" default, "LR" for wide CFAs).
	RankDir string
}

// Dot renders the program's CFAs as a Graphviz digraph, one cluster per
// function. Error locations are drawn as red double circles, entry and
// exit as labeled boxes.
func (p *Program) Dot(opts DotOptions) string {
	if opts.RankDir == "" {
		opts.RankDir = "TB"
	}
	include := func(name string) bool {
		if opts.Funcs == nil {
			return true
		}
		for _, f := range opts.Funcs {
			if f == name {
				return true
			}
		}
		return false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph program {\n")
	fmt.Fprintf(&b, "  rankdir=%s;\n", opts.RankDir)
	fmt.Fprintf(&b, "  node [shape=circle, fontsize=10];\n")
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		if include(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for ci, name := range names {
		fn := p.Funcs[name]
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", ci)
		fmt.Fprintf(&b, "    label=%q;\n", name)
		for _, l := range fn.Locs {
			attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%d", l.Index))
			switch {
			case l.IsError:
				attrs += ", shape=doublecircle, color=red"
			case l == fn.Entry:
				attrs += ", shape=box, style=rounded, label=\"entry\""
			case l == fn.Exit:
				attrs += ", shape=box, style=rounded, label=\"exit\""
			}
			fmt.Fprintf(&b, "    n%d [%s];\n", l.ID, attrs)
		}
		for _, e := range fn.Edges {
			attrs := fmt.Sprintf("label=%q", e.Op.String())
			if opts.Highlight[e.ID] {
				attrs += ", color=red, penwidth=2"
			}
			if e.Op.Kind == OpCall {
				attrs += ", style=dashed"
			}
			fmt.Fprintf(&b, "    n%d -> n%d [%s];\n", e.Src.ID, e.Dst.ID, attrs)
		}
		fmt.Fprintf(&b, "  }\n")
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// HighlightPath builds a Highlight set from a path or slice.
func HighlightPath(p Path) map[int]bool {
	out := make(map[int]bool, len(p))
	for _, e := range p {
		out[e.ID] = true
	}
	return out
}
