package cfa

// WalkLongPath generates a long candidate path to target with a single
// greedy forward walk: at each location it takes the first out-edge (in
// builder order, which puts loop-entering and call edges first) whose
// use budget is not exhausted and from which the target remains
// reachable. Only edges lying on an intraprocedural cycle consume
// budget, so the bound k controls loop unrolling without throttling how
// often straight-line code (and hence call sites) may be traversed.
// Loops are unrolled up to k times before their exit edge is taken —
// the long, possibly-infeasible counterexamples a depth-first model
// checker produces (§5, Limitations) — with no backtracking.
//
// It returns nil when the walk gets stuck or exceeds maxLen; callers
// should fall back to FindPath or try a smaller k.
func WalkLongPath(prog *Program, target *Loc, k int, maxLen int) Path {
	if k <= 0 {
		k = 2
	}
	if maxLen <= 0 {
		maxLen = 2_000_000
	}
	main := prog.Funcs[prog.Main]
	if main == nil {
		return nil
	}
	dist := computeDistToTarget(prog, target)
	exitable := computeCanExit(prog)
	cyclic := computeCycleEdges(prog)
	canReach := func(l *Loc) bool { return dist[l.ID] >= 0 }
	reachable := func(l *Loc, stack []*Edge) bool {
		return stackReachable(l, stack, canReach, exitable)
	}
	overBudget := func(e *Edge, uses map[int]int) bool {
		return cyclic[e.ID] && uses[e.ID] >= k
	}

	uses := make(map[int]int)
	var path Path
	var stack []*Edge
	loc := main.Entry
	for len(path) < maxLen {
		if loc == target {
			return path
		}
		var chosen *Edge
		for _, e := range loc.Out {
			if overBudget(e, uses) {
				continue
			}
			viable := false
			switch e.Op.Kind {
			case OpCall:
				callee := prog.Funcs[e.Op.Callee]
				if callee != nil {
					ns := append(stack, e)
					if reachable(callee.Entry, ns) {
						viable = true
					}
				}
			case OpReturn:
				if len(stack) == 0 {
					viable = e.Dst == target
				} else {
					viable = reachable(stack[len(stack)-1].Dst, stack[:len(stack)-1])
				}
			default:
				viable = reachable(e.Dst, stack)
			}
			if viable {
				chosen = e
				break
			}
		}
		if chosen == nil {
			return nil // stuck: caller falls back
		}
		uses[chosen.ID]++
		path = append(path, chosen)
		switch chosen.Op.Kind {
		case OpCall:
			// Copy before push: the popped slot must stay intact.
			ns := make([]*Edge, len(stack)+1)
			copy(ns, stack)
			ns[len(stack)] = chosen
			stack = ns
			loc = prog.Funcs[chosen.Op.Callee].Entry
		case OpReturn:
			if len(stack) == 0 {
				if chosen.Dst == target {
					return path
				}
				return nil
			}
			loc = stack[len(stack)-1].Dst
			stack = stack[:len(stack)-1]
		default:
			loc = chosen.Dst
		}
	}
	return nil
}

// stackReachable reports whether the target can still be reached from l
// given the call stack: either directly, or by exiting the current
// function and resuming at some stack frame from which the target is
// reachable — where every frame popped on the way must itself be
// exitable from its resume point.
func stackReachable(l *Loc, stack []*Edge, canReach func(*Loc) bool, exitable []bool) bool {
	if canReach(l) {
		return true
	}
	if !exitable[l.ID] {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		resume := stack[i].Dst
		if canReach(resume) {
			return true
		}
		if !exitable[resume.ID] {
			return false
		}
	}
	return false
}

// computeCanExit computes, for every location, whether its own
// function's exit is reachable from it intraprocedurally (call edges
// count as traversable, i.e. callees are assumed to return).
func computeCanExit(prog *Program) []bool {
	out := make([]bool, prog.NumLocs())
	for _, fn := range prog.Funcs {
		stack := []*Loc{fn.Exit}
		out[fn.Exit.ID] = true
		for len(stack) > 0 {
			l := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range l.In {
				if !out[e.Src.ID] {
					out[e.Src.ID] = true
					stack = append(stack, e.Src)
				}
			}
		}
	}
	return out
}

// computeCycleEdges marks every edge whose source and destination lie
// in the same nontrivial strongly connected component of its function's
// graph — the edges that can be traversed repeatedly within one frame.
func computeCycleEdges(prog *Program) map[int]bool {
	cyclic := make(map[int]bool)
	for _, fn := range prog.Funcs {
		comp := sccLocs(fn)
		for _, e := range fn.Edges {
			// Trivial single-node SCCs without self-loops get distinct
			// component ids in sccLocs, so equality means a real cycle.
			if comp[e.Src.Index] == comp[e.Dst.Index] {
				cyclic[e.ID] = true
			}
		}
	}
	return cyclic
}

// sccLocs computes strongly connected components of a function's
// locations (iterative Tarjan), assigning trivial single-location
// components unique ids so that only true cycles compare equal.
func sccLocs(fn *CFA) []int {
	n := len(fn.Locs)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter := 0
	compCount := 0
	sizes := make(map[int]int)

	type frame struct {
		v  int
		ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			outs := fn.Locs[v].Out
			if f.ei < len(outs) {
				w := outs[f.ei].Dst.Index
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// Finish v.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				id := compCount
				compCount++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					sizes[id]++
					if w == v {
						break
					}
				}
			}
		}
	}
	// Re-id trivial components (size 1 without self-loop) uniquely so
	// edge-cycle detection only fires on real cycles.
	next := compCount
	selfLoop := make(map[int]bool)
	for _, e := range fn.Edges {
		if e.Src == e.Dst {
			selfLoop[e.Src.Index] = true
		}
	}
	for i := 0; i < n; i++ {
		if sizes[comp[i]] == 1 && !selfLoop[i] {
			comp[i] = next
			next++
		}
	}
	return comp
}
