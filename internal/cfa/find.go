package cfa

import (
	"fmt"
)

// FindOptions configures FindPath.
type FindOptions struct {
	// MaxEdgeUses bounds how many times a single edge may appear on the
	// path (loop unrolling bound). Default 2.
	MaxEdgeUses int
	// MaxLen bounds the total path length. Default 100000.
	MaxLen int
	// PreferLong makes the search explore loop-entering and
	// call-entering edges first, mimicking the depth-first search of
	// BLAST that the paper notes "results in very long counterexamples"
	// (§5, Limitations). When false, edges that make progress toward
	// the target are preferred, yielding short paths.
	PreferLong bool
}

func (o FindOptions) withDefaults() FindOptions {
	if o.MaxEdgeUses <= 0 {
		o.MaxEdgeUses = 2
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 100000
	}
	return o
}

// FindPath searches for a program path from main's entry to target,
// ignoring all data (every assume is treated as passable). This is the
// kind of possibly-infeasible candidate path an overapproximate static
// analysis returns (§1). It returns nil if the target is unreachable in
// the CFA graph within the configured bounds.
func FindPath(prog *Program, target *Loc, opts FindOptions) Path {
	opts = opts.withDefaults()
	main := prog.Funcs[prog.Main]
	if main == nil {
		return nil
	}
	f := &finder{prog: prog, target: target, opts: opts,
		edgeUses: make(map[int]int),
		dist:     computeDistToTarget(prog, target),
		exitable: computeCanExit(prog),
	}
	if f.dfs(main.Entry, nil) {
		// The path was accumulated in reverse during unwinding.
		for i, j := 0, len(f.path)-1; i < j; i, j = i+1, j-1 {
			f.path[i], f.path[j] = f.path[j], f.path[i]
		}
		return f.path
	}
	return nil
}

// FindPathToError returns a path to the first error location of the
// program (in topological CFA order), or nil.
func FindPathToError(prog *Program, opts FindOptions) Path {
	for _, loc := range prog.ErrorLocs() {
		if p := FindPath(prog, loc, opts); p != nil {
			return p
		}
	}
	return nil
}

type finder struct {
	prog     *Program
	target   *Loc
	opts     FindOptions
	edgeUses map[int]int
	path     Path // reversed: filled during unwind
	length   int
	// dist[loc.ID] is the BFS distance from loc to the target in the
	// interprocedural graph (ignoring the call stack), or -1 when the
	// target is unreachable; used for pruning and short-path ordering.
	dist []int
	// exitable[loc.ID]: the enclosing function's exit is reachable.
	exitable []bool
}

func (f *finder) canReach(l *Loc) bool { return f.dist[l.ID] >= 0 }

// dfs explores from loc with the given call stack (innermost last).
// The stack holds the call edges whose Dst is the resume location.
func (f *finder) dfs(loc *Loc, stack []*Edge) bool {
	if loc == f.target {
		return true
	}
	if f.length >= f.opts.MaxLen {
		return false
	}
	if !f.reachable(loc, stack) {
		return false
	}
	order := loc.Out
	if !f.opts.PreferLong {
		// Prefer edges with the shortest remaining distance to the
		// target, so the found path is close to minimal. In PreferLong
		// mode, source order is kept: the builder emits loop-entering
		// and call edges first, so DFS unrolls loops to the bound —
		// mimicking BLAST's long DFS counterexamples.
		order = make([]*Edge, len(loc.Out))
		copy(order, loc.Out)
		key := func(e *Edge) int {
			d := f.dist[e.Dst.ID]
			if d < 0 {
				return int(^uint(0) >> 1) // unreachable last
			}
			return d
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if key(order[j]) < key(order[i]) {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
	}
	for _, e := range order {
		if f.edgeUses[e.ID] >= f.opts.MaxEdgeUses {
			continue
		}
		f.edgeUses[e.ID]++
		f.length++
		ok := false
		switch e.Op.Kind {
		case OpCall:
			callee := f.prog.Funcs[e.Op.Callee]
			if callee != nil {
				// Copy: plain append could overwrite a popped slot that
				// a backtracking caller still references.
				newStack := make([]*Edge, len(stack)+1)
				copy(newStack, stack)
				newStack[len(stack)] = e
				ok = f.dfs(callee.Entry, newStack)
			}
		case OpReturn:
			if len(stack) > 0 {
				resume := stack[len(stack)-1].Dst
				ok = f.dfs(resume, stack[:len(stack)-1])
			} else {
				// A return in the outermost frame ends the program; it
				// reaches the target only if the exit IS the target.
				ok = e.Dst == f.target
			}
		default:
			ok = f.dfs(e.Dst, stack)
		}
		f.length--
		f.edgeUses[e.ID]--
		if ok {
			f.path = append(f.path, e)
			return true
		}
	}
	return false
}

// reachable prunes states from which the target is graph-unreachable:
// either directly, or by returning into some frame on the stack from
// which it is reachable.
func (f *finder) reachable(loc *Loc, stack []*Edge) bool {
	return stackReachable(loc, stack, f.canReach, f.exitable)
}

// computeDistToTarget computes, for every location, the BFS distance to
// target in the interprocedural edge graph where call edges jump to
// callee entries and exits connect back to every call site's successor
// (-1 when unreachable). This overapproximates stack-respecting
// reachability and is used for pruning and edge ordering.
func computeDistToTarget(prog *Program, target *Loc) []int {
	n := prog.NumLocs()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	// Build reverse adjacency.
	radj := make([][]int, n)
	addArc := func(from, to *Loc) {
		radj[to.ID] = append(radj[to.ID], from.ID)
	}
	for _, fn := range prog.Funcs {
		for _, e := range fn.Edges {
			switch e.Op.Kind {
			case OpCall:
				callee := prog.Funcs[e.Op.Callee]
				if callee != nil {
					addArc(e.Src, callee.Entry)
					addArc(callee.Exit, e.Dst)
				}
			case OpReturn:
				addArc(e.Src, e.Dst) // e.Dst is the function exit
			default:
				addArc(e.Src, e.Dst)
			}
		}
	}
	// BFS from target in the reverse graph.
	queue := []int{target.ID}
	dist[target.ID] = 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, pred := range radj[id] {
			if dist[pred] < 0 {
				dist[pred] = dist[id] + 1
				queue = append(queue, pred)
			}
		}
	}
	return dist
}

// LocByLine returns the first location in fn whose source line matches,
// for test convenience.
func LocByLine(fn *CFA, line int) (*Loc, error) {
	for _, l := range fn.Locs {
		if l.Line == line {
			return l, nil
		}
	}
	return nil, fmt.Errorf("cfa: no location at line %d in %s", line, fn.Name)
}
