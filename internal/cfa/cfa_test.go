package cfa_test

import (
	"strings"
	"testing"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
)

// ex2 is the paper's Figure 1 program Ex2 including the shaded code
// (the initial `x = 0` and the `if (a >= 0) x = 1;` guard).
const ex2Shaded = `
int x = 0;
int a;

void f() { skip; }

void main() {
  a = nondet();
  if (a >= 0) {
    x = 1;
  }
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a > 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func TestBuildEx2(t *testing.T) {
	prog := compile.MustSource(ex2Shaded)
	main := prog.Funcs["main"]
	if main == nil {
		t.Fatal("no main CFA")
	}
	errs := main.ErrorLocs()
	if len(errs) != 1 {
		t.Fatalf("error locations: got %d, want 1", len(errs))
	}
	if len(errs[0].Out) != 0 {
		t.Error("error location must have no successors")
	}
	// The global initializer `x = 0` must appear as main's first edge.
	first := main.Entry.Out
	if len(first) != 1 || first[0].Op.Kind != cfa.OpAssign || first[0].Op.LHS.Var != "x" {
		t.Errorf("main entry edge: %v", first)
	}
	// f has an entry, an exit, and a return edge.
	f := prog.Funcs["f"]
	foundRet := false
	for _, e := range f.Edges {
		if e.Op.Kind == cfa.OpReturn {
			foundRet = true
			if e.Dst != f.Exit {
				t.Error("return edge must target the exit location")
			}
		}
	}
	if !foundRet {
		t.Error("f has no return edge")
	}
}

func TestBuildCallProtocol(t *testing.T) {
	prog := compile.MustSource(`
		int add(int a, int b) { return a + b; }
		void main() { int r = add(1, 2); assert(r == 3); }`)
	main := prog.Funcs["main"]
	var kinds []string
	for _, e := range main.Edges {
		kinds = append(kinds, e.Op.String())
	}
	joined := strings.Join(kinds, "; ")
	for _, want := range []string{
		"add::$arg0 := 1",
		"add::$arg1 := 2",
		"add()",
		"main::r := add::$ret",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing edge %q in:\n%s", want, joined)
		}
	}
	add := prog.Funcs["add"]
	var addOps []string
	for _, e := range add.Edges {
		addOps = append(addOps, e.Op.String())
	}
	j := strings.Join(addOps, "; ")
	for _, want := range []string{
		"add::a := add::$arg0",
		"add::b := add::$arg1",
		"add::$ret := (add::a + add::b)",
	} {
		if !strings.Contains(j, want) {
			t.Errorf("missing callee edge %q in:\n%s", want, j)
		}
	}
}

func TestBuildBranchPredicates(t *testing.T) {
	prog := compile.MustSource(`int a; void main() { if (a) { skip; } else { skip; } if (a > 1) skip; }`)
	main := prog.Funcs["main"]
	var assumes []string
	for _, e := range main.Edges {
		if e.Op.Kind == cfa.OpAssume {
			assumes = append(assumes, e.Op.String())
		}
	}
	j := strings.Join(assumes, "; ")
	// Non-boolean condition becomes (a != 0), negation wraps with !.
	for _, want := range []string{"assume((a != 0))", "assume((!(a != 0)))", "assume((a > 1))", "assume((!(a > 1)))"} {
		if !strings.Contains(j, want) {
			t.Errorf("missing assume %q in %s", want, j)
		}
	}
}

func TestBuildUninitializedLocalIsHavoc(t *testing.T) {
	prog := compile.MustSource(`void main() { int x; assert(x == 0); }`)
	main := prog.Funcs["main"]
	found := false
	for _, e := range main.Edges {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS.Var == "main::x" &&
			strings.Contains(e.Op.String(), "nondet()") {
			found = true
		}
	}
	if !found {
		t.Error("uninitialized local must become x := nondet()")
	}
}

func TestBuildRejectsNoMain(t *testing.T) {
	if _, err := compile.Source(`void f() { skip; }`); err == nil {
		t.Fatal("program without main must be rejected")
	}
}

func TestBuildBreakContinue(t *testing.T) {
	prog := compile.MustSource(`
		void main() {
			int i = 0;
			while (i < 10) {
				i = i + 1;
				if (i == 5) { break; }
				if (i == 2) { continue; }
				skip;
			}
		}`)
	if prog.Funcs["main"] == nil {
		t.Fatal("build failed")
	}
	if _, err := compile.Source(`void main() { break; }`); err == nil {
		t.Error("break outside loop must be rejected")
	}
	if _, err := compile.Source(`void main() { continue; }`); err == nil {
		t.Error("continue outside loop must be rejected")
	}
}

func TestFindPathEx2(t *testing.T) {
	prog := compile.MustSource(ex2Shaded)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil {
		t.Fatal("no path to error found")
	}
	if err := path.Validate(prog); err != nil {
		t.Fatalf("invalid path: %v\n%s", err, path)
	}
	if !path.Target().IsError {
		t.Error("path does not end at the error location")
	}
}

func TestFindPathPreferLongUnrollsLoop(t *testing.T) {
	prog := compile.MustSource(ex2Shaded)
	short := cfa.FindPathToError(prog, cfa.FindOptions{MaxEdgeUses: 3})
	long := cfa.FindPathToError(prog, cfa.FindOptions{MaxEdgeUses: 3, PreferLong: true})
	if short == nil || long == nil {
		t.Fatal("paths not found")
	}
	if len(long) <= len(short) {
		t.Errorf("PreferLong path (%d edges) should exceed short path (%d edges)", len(long), len(short))
	}
	if err := long.Validate(prog); err != nil {
		t.Fatalf("long path invalid: %v", err)
	}
}

func TestFindPathUnreachable(t *testing.T) {
	prog := compile.MustSource(`void main() { if (1 == 2) { skip; } }`)
	// No error statement at all: pick exit of main as target via a probe.
	main := prog.Funcs["main"]
	p := cfa.FindPath(prog, main.Exit, cfa.FindOptions{})
	if p == nil {
		t.Fatal("exit should be reachable")
	}
	// An artificial unreachable location.
	if locs := prog.ErrorLocs(); len(locs) != 0 {
		t.Fatal("program has no error locations")
	}
}

func TestCallIdxAndValidate(t *testing.T) {
	prog := compile.MustSource(`
		void g() { skip; }
		void f() { g(); }
		void main() { f(); error; }`)
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil {
		t.Fatal("no path")
	}
	if err := path.Validate(prog); err != nil {
		t.Fatalf("validate: %v\n%s", err, path)
	}
	call := path.CallIdx()
	// Every edge inside g's frame must map to the call edge into g.
	for i, e := range path {
		if e.Src.Fn.Name == "g" {
			j := call[i]
			if j < 0 || path[j].Op.Callee != "g" {
				t.Errorf("edge %d in g maps to call idx %d", i, j)
			}
		}
		if e.Src.Fn.Name == "main" && call[i] != -1 {
			t.Errorf("edge %d in main should be outermost, got %d", i, call[i])
		}
	}
}

func TestValidateRejectsBadPaths(t *testing.T) {
	prog := compile.MustSource(`void f() { skip; } void main() { f(); error; }`)
	good := cfa.FindPathToError(prog, cfa.FindOptions{})
	if good == nil {
		t.Fatal("no path")
	}
	// Dropping an interior edge must break adjacency.
	bad := append(cfa.Path{}, good[:1]...)
	bad = append(bad, good[2:]...)
	if err := bad.Validate(prog); err == nil {
		t.Error("gap in path should fail validation")
	}
	if err := (cfa.Path{}).Validate(prog); err == nil {
		t.Error("empty path should fail validation")
	}
}

func TestBasicBlocksMonotone(t *testing.T) {
	prog := compile.MustSource(ex2Shaded)
	short := cfa.FindPathToError(prog, cfa.FindOptions{})
	long := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxEdgeUses: 4})
	if short.BasicBlocks() <= 0 {
		t.Error("block count must be positive")
	}
	if long.BasicBlocks() < short.BasicBlocks() {
		t.Errorf("longer path has fewer blocks: %d < %d", long.BasicBlocks(), short.BasicBlocks())
	}
	if short.BasicBlocks() > len(short) {
		t.Error("block count cannot exceed edge count")
	}
}

func TestSubsequence(t *testing.T) {
	prog := compile.MustSource(ex2Shaded)
	p := cfa.FindPathToError(prog, cfa.FindOptions{})
	if !p.Subsequence(nil) {
		t.Error("empty is a subsequence")
	}
	if !p.Subsequence(p) {
		t.Error("path is a subsequence of itself")
	}
	sub := cfa.Path{p[0], p[len(p)-1]}
	if !p.Subsequence(sub) {
		t.Error("first+last is a subsequence")
	}
	rev := cfa.Path{p[len(p)-1], p[0]}
	if p.Subsequence(rev) && p[0] != p[len(p)-1] {
		t.Error("reversed pair is not a subsequence")
	}
}

func TestQualificationHelpers(t *testing.T) {
	prog := compile.MustSource(`int g; void f(int a) { int b; b = a + g; } void main() { f(1); }`)
	if !prog.IsGlobal("g") {
		t.Error("g is global")
	}
	if prog.IsGlobal("f::a") {
		t.Error("f::a is not global")
	}
	if fn := prog.FuncOf("f::b"); fn == nil || fn.Name != "f" {
		t.Errorf("FuncOf(f::b) = %v", fn)
	}
	if fn := prog.FuncOf("g"); fn != nil {
		t.Errorf("FuncOf(g) = %v, want nil", fn)
	}
	if !cfa.IsTransferVar("f::$arg0") || cfa.IsTransferVar("f::a") {
		t.Error("IsTransferVar misclassifies")
	}
}

func TestLvsAndRd(t *testing.T) {
	prog := compile.MustSource(`
		int x; int y; int *p;
		void main() {
			p = &x;
			*p = y + 1;
			if (*p > x) { skip; }
		}`)
	main := prog.Funcs["main"]
	for _, e := range main.Edges {
		switch e.Op.String() {
		case "p := (&x)":
			rd := e.Op.Rd()
			if rd.Has(cfa.Lvalue{Var: "x"}) {
				t.Error("&x must not read x")
			}
		case "*p := (y + 1)":
			rd := e.Op.Rd()
			if !rd.Has(cfa.Lvalue{Var: "y"}) || !rd.Has(cfa.Lvalue{Var: "p"}) {
				t.Errorf("write through *p must read p and y: %v", rd)
			}
			if lv, ok := e.Op.WtSyntactic(); !ok || !lv.Deref || lv.Var != "p" {
				t.Errorf("WtSyntactic: %v %v", lv, ok)
			}
		case "assume(((*p) > x))":
			rd := e.Op.Rd()
			for _, want := range []cfa.Lvalue{{Var: "p"}, {Var: "p", Deref: true}, {Var: "x"}} {
				if !rd.Has(want) {
					t.Errorf("assume read set missing %v: %v", want, rd)
				}
			}
		}
	}
}

func TestLvalSetOps(t *testing.T) {
	a := cfa.NewLvalSet(cfa.Lvalue{Var: "x"}, cfa.Lvalue{Var: "p", Deref: true})
	b := cfa.NewLvalSet(cfa.Lvalue{Var: "y"})
	if a.Intersects(b) {
		t.Error("disjoint sets intersect")
	}
	b.Add(cfa.Lvalue{Var: "x"})
	if !a.Intersects(b) {
		t.Error("sets share x")
	}
	c := a.Copy()
	c.Remove(cfa.Lvalue{Var: "x"})
	if !a.Has(cfa.Lvalue{Var: "x"}) {
		t.Error("copy is not independent")
	}
	if got := a.String(); got != "{p*, x}" && got != "{*p, x}" {
		t.Errorf("String: %s", got)
	}
}
