package cfa

import (
	"sort"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
)

// LvalSet is a set of lvalues. The zero value is an empty, usable set
// for reads; use NewLvalSet or Add.
type LvalSet map[Lvalue]struct{}

// NewLvalSet returns a set containing the given lvalues.
func NewLvalSet(ls ...Lvalue) LvalSet {
	s := make(LvalSet, len(ls))
	for _, l := range ls {
		s[l] = struct{}{}
	}
	return s
}

// Add inserts l.
func (s LvalSet) Add(l Lvalue) { s[l] = struct{}{} }

// Has reports membership.
func (s LvalSet) Has(l Lvalue) bool {
	_, ok := s[l]
	return ok
}

// Remove deletes l.
func (s LvalSet) Remove(l Lvalue) { delete(s, l) }

// Copy returns an independent copy.
func (s LvalSet) Copy() LvalSet {
	c := make(LvalSet, len(s))
	for l := range s {
		c[l] = struct{}{}
	}
	return c
}

// AddAll inserts every element of other.
func (s LvalSet) AddAll(other LvalSet) {
	for l := range other {
		s[l] = struct{}{}
	}
}

// Intersects reports whether the two sets share an element.
func (s LvalSet) Intersects(other LvalSet) bool {
	a, b := s, other
	if len(b) < len(a) {
		a, b = b, a
	}
	for l := range a {
		if b.Has(l) {
			return true
		}
	}
	return false
}

// Sorted returns the elements in deterministic order.
func (s LvalSet) Sorted() []Lvalue {
	out := make([]Lvalue, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return !out[i].Deref && out[j].Deref
	})
	return out
}

// String renders the set as {a, b, *p}.
func (s LvalSet) String() string {
	out := "{"
	for i, l := range s.Sorted() {
		if i > 0 {
			out += ", "
		}
		out += l.String()
	}
	return out + "}"
}

// Lvs returns the lvalues read when evaluating expression e (the Lvs
// relation of §3.3). A dereference *p reads both p and *p; an
// address-of &x reads neither (only the address is taken).
func Lvs(e ast.Expr) LvalSet {
	s := make(LvalSet)
	addLvs(e, s)
	return s
}

func addLvs(e ast.Expr, s LvalSet) {
	switch e := e.(type) {
	case *ast.IntLit, *ast.Nondet:
	case *ast.Ident:
		s.Add(Lvalue{Var: e.Name})
	case *ast.Unary:
		switch e.Op {
		case token.STAR:
			if id, ok := e.X.(*ast.Ident); ok {
				s.Add(Lvalue{Var: id.Name})
				s.Add(Lvalue{Var: id.Name, Deref: true})
				return
			}
			addLvs(e.X, s)
		case token.AMP:
			// &x reads no value.
		default:
			addLvs(e.X, s)
		}
	case *ast.Binary:
		addLvs(e.X, s)
		addLvs(e.Y, s)
	case *ast.CallExpr:
		for _, a := range e.Args {
			addLvs(a, s)
		}
	}
}

// Rd returns the set of lvalues read by op (Fig. 3 of the paper,
// extended so that an assignment through *p also reads p).
func (op Op) Rd() LvalSet {
	switch op.Kind {
	case OpAssign:
		s := Lvs(op.RHS)
		if op.LHS.Deref {
			s.Add(Lvalue{Var: op.LHS.Var})
		}
		return s
	case OpAssume:
		return Lvs(op.Pred)
	}
	return make(LvalSet)
}

// WtSyntactic returns the lvalue written by op without alias
// information: {LHS} for assignments, nothing otherwise. Call edges
// write Mods(f), which requires the modref analysis and is handled by
// the callers that need it.
func (op Op) WtSyntactic() (Lvalue, bool) {
	if op.Kind == OpAssign {
		return op.LHS, true
	}
	return Lvalue{}, false
}

// AddrTaken collects variables whose address is taken in e (&x).
func AddrTaken(e ast.Expr, out map[string]struct{}) {
	switch e := e.(type) {
	case *ast.Unary:
		if e.Op == token.AMP {
			if id, ok := e.X.(*ast.Ident); ok {
				out[id.Name] = struct{}{}
				return
			}
		}
		AddrTaken(e.X, out)
	case *ast.Binary:
		AddrTaken(e.X, out)
		AddrTaken(e.Y, out)
	case *ast.CallExpr:
		for _, a := range e.Args {
			AddrTaken(a, out)
		}
	}
}
