package cfa

import (
	"fmt"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/token"
	"pathslice/internal/lang/types"
)

// Build lowers a type-checked program to control flow automata.
//
// Lowering conventions:
//   - Conditions become assume edges: `if (e)` yields assume(pred(e))
//     and assume(!pred(e)) edges, where pred(e) is e itself when e is
//     already boolean-structured and (e != 0) otherwise.
//   - `assert(p)` desugars to `if (!p) error;` (§2: asserts are branch
//     checks guarding the target location).
//   - `error;` jumps to a fresh error location with no successors.
//   - Call `x = f(a, b)` becomes: f::$arg0 := a; f::$arg1 := b; call f();
//     x := f::$ret — parameter passing through transfer variables (§4).
//   - Uninitialized local declarations become havoc assignments
//     `x := nondet()` (C garbage values are unconstrained inputs).
//   - Global initializers become assignment edges at the entry of main;
//     globals without initializers are unconstrained inputs.
func Build(info *types.Info) (*Program, error) {
	b := &builder{
		info: info,
		prog: &Program{
			Funcs:      make(map[string]*CFA),
			Order:      info.TopoOrder,
			GlobalInit: make(map[string]int64),
			Types:      make(map[string]ast.Type),
			Main:       "main",
		},
	}
	if _, ok := info.Funcs["main"]; !ok {
		return nil, fmt.Errorf("cfa: program has no main function")
	}
	for _, g := range info.Prog.Globals {
		b.prog.Globals = append(b.prog.Globals, g.Name)
		b.prog.Types[g.Name] = g.Type
		if g.Init != nil {
			b.prog.GlobalInit[g.Name] = g.Init.Value
		}
	}
	// Declare transfer variables before building bodies so that every
	// function can reference every other's $arg/$ret.
	for _, name := range info.TopoOrder {
		fi := info.Funcs[name]
		for i, p := range fi.Decl.Params {
			av := ArgVar(name, i)
			b.prog.Globals = append(b.prog.Globals, av)
			b.prog.Types[av] = p.Type
		}
		if fi.Decl.Result != ast.TypeVoid {
			rv := RetVar(name)
			b.prog.Globals = append(b.prog.Globals, rv)
			b.prog.Types[rv] = fi.Decl.Result
		}
	}
	for _, name := range info.TopoOrder {
		if err := b.buildFunc(info.Funcs[name]); err != nil {
			return nil, err
		}
	}
	return b.prog, nil
}

// MustBuild builds the CFA program for a checked program, panicking on
// error. Intended for tests and embedded examples.
func MustBuild(info *types.Info) *Program {
	p, err := Build(info)
	if err != nil {
		panic("cfa.MustBuild: " + err.Error())
	}
	return p
}

type loopCtx struct {
	breakTo    *Loc
	continueTo *Loc
}

type builder struct {
	info  *types.Info
	prog  *Program
	fn    *CFA
	fi    *types.FuncInfo
	loops []loopCtx
	err   error
}

func (b *builder) setErr(pos fmt.Stringer, format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func trueExpr() ast.Expr { return &ast.IntLit{Value: 1} }

func (b *builder) buildFunc(fi *types.FuncInfo) error {
	name := fi.Decl.Name
	fn := &CFA{Name: name}
	b.fn = fn
	b.fi = fi
	b.prog.Funcs[name] = fn

	for _, p := range fi.Decl.Params {
		q := Qualify(name, p.Name)
		fn.Params = append(fn.Params, q)
		b.prog.Types[q] = p.Type
	}
	for i := range fi.Decl.Params {
		fn.ArgVars = append(fn.ArgVars, ArgVar(name, i))
	}
	if fi.Decl.Result != ast.TypeVoid {
		fn.RetVar = RetVar(name)
	}
	for v, t := range fi.Vars {
		q := Qualify(name, v)
		b.prog.Types[q] = t
		isParam := false
		for _, p := range fi.Decl.Params {
			if p.Name == v {
				isParam = true
				break
			}
		}
		if !isParam {
			fn.Locals = append(fn.Locals, q)
		}
	}

	fn.Entry = b.prog.newLoc(fn, fi.Decl.PosInfo.Line)
	fn.Exit = b.prog.newLoc(fn, fi.Decl.PosInfo.Line)

	cur := fn.Entry
	// Global initializers at the start of main.
	if name == b.prog.Main {
		for _, g := range b.info.Prog.Globals {
			if g.Init == nil {
				continue
			}
			next := b.prog.newLoc(fn, g.PosInfo.Line)
			b.prog.newEdge(cur, next, Op{Kind: OpAssign,
				LHS: Lvalue{Var: g.Name},
				RHS: &ast.IntLit{Value: g.Init.Value, PosInfo: g.PosInfo}})
			cur = next
		}
	}
	// Parameter copies from transfer variables (§4: the called procedure
	// copies the values from the globals into its own locals).
	for i, q := range fn.Params {
		next := b.prog.newLoc(fn, fi.Decl.PosInfo.Line)
		b.prog.newEdge(cur, next, Op{Kind: OpAssign,
			LHS: Lvalue{Var: q},
			RHS: &ast.Ident{Name: fn.ArgVars[i], PosInfo: fi.Decl.PosInfo}})
		cur = next
	}

	preExit := b.prog.newLoc(fn, fi.Decl.PosInfo.Line)
	b.buildBlock(fi.Decl.Body, cur, preExit)
	// Implicit return for control that falls off the end.
	b.prog.newEdge(preExit, fn.Exit, Op{Kind: OpReturn})

	b.fn = nil
	b.fi = nil
	return b.err
}

// buildBlock wires the statements of blk between entry and exit.
func (b *builder) buildBlock(blk *ast.BlockStmt, entry, exit *Loc) {
	cur := entry
	for i, s := range blk.Stmts {
		var next *Loc
		if i == len(blk.Stmts)-1 {
			next = exit
		} else {
			next = b.prog.newLoc(b.fn, s.Pos().Line)
		}
		b.buildStmt(s, cur, next)
		cur = next
	}
	if len(blk.Stmts) == 0 {
		b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: trueExpr()})
	}
}

// buildStmt wires statement s between entry and exit.
func (b *builder) buildStmt(s ast.Stmt, entry, exit *Loc) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		q := Qualify(b.fn.Name, s.Name)
		init := s.Init
		if init == nil {
			init = &ast.Nondet{PosInfo: s.PosInfo}
		}
		b.buildAssign(Lvalue{Var: q}, init, entry, exit, s.PosInfo.Line)
	case *ast.AssignStmt:
		lv := Lvalue{Var: b.qualifyName(s.LHS), Deref: s.Deref}
		b.buildAssign(lv, s.RHS, entry, exit, s.PosInfo.Line)
	case *ast.ExprStmt:
		b.buildCall(s.Call, nil, entry, exit)
	case *ast.IfStmt:
		pred := b.condPred(s.Cond)
		thenEntry := b.prog.newLoc(b.fn, s.PosInfo.Line)
		b.prog.newEdge(entry, thenEntry, Op{Kind: OpAssume, Pred: pred})
		if s.Else == nil {
			b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: negate(pred)})
			b.buildBlock(s.Then, thenEntry, exit)
		} else {
			elseEntry := b.prog.newLoc(b.fn, s.PosInfo.Line)
			b.prog.newEdge(entry, elseEntry, Op{Kind: OpAssume, Pred: negate(pred)})
			b.buildBlock(s.Then, thenEntry, exit)
			b.buildBlock(s.Else, elseEntry, exit)
		}
	case *ast.WhileStmt:
		pred := b.condPred(s.Cond)
		bodyEntry := b.prog.newLoc(b.fn, s.PosInfo.Line)
		b.prog.newEdge(entry, bodyEntry, Op{Kind: OpAssume, Pred: pred})
		b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: negate(pred)})
		b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: entry})
		b.buildBlock(s.Body, bodyEntry, entry)
		b.loops = b.loops[:len(b.loops)-1]
	case *ast.ForStmt:
		head := entry
		if s.Init != nil {
			head = b.prog.newLoc(b.fn, s.PosInfo.Line)
			b.buildStmt(s.Init, entry, head)
		}
		cond := s.Cond
		if cond == nil {
			cond = &ast.IntLit{Value: 1, PosInfo: s.PosInfo}
		}
		pred := b.condPred(cond)
		bodyEntry := b.prog.newLoc(b.fn, s.PosInfo.Line)
		b.prog.newEdge(head, bodyEntry, Op{Kind: OpAssume, Pred: pred})
		b.prog.newEdge(head, exit, Op{Kind: OpAssume, Pred: negate(pred)})
		// The continue target is the post statement (or the head).
		contTo := head
		var postEntry *Loc
		if s.Post != nil {
			postEntry = b.prog.newLoc(b.fn, s.PosInfo.Line)
			contTo = postEntry
		}
		b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: contTo})
		if s.Post != nil {
			b.buildBlock(s.Body, bodyEntry, postEntry)
			b.buildStmt(s.Post, postEntry, head)
		} else {
			b.buildBlock(s.Body, bodyEntry, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
	case *ast.ReturnStmt:
		cur := entry
		if s.Value != nil {
			mid := b.prog.newLoc(b.fn, s.PosInfo.Line)
			b.buildAssign(Lvalue{Var: b.fn.RetVar}, s.Value, cur, mid, s.PosInfo.Line)
			cur = mid
		}
		b.prog.newEdge(cur, b.fn.Exit, Op{Kind: OpReturn})
		// exit is left unconnected: code after return is unreachable.
	case *ast.BreakStmt:
		if len(b.loops) == 0 {
			b.setErr(s.PosInfo, "break outside loop")
			return
		}
		b.prog.newEdge(entry, b.loops[len(b.loops)-1].breakTo, Op{Kind: OpAssume, Pred: trueExpr()})
	case *ast.ContinueStmt:
		if len(b.loops) == 0 {
			b.setErr(s.PosInfo, "continue outside loop")
			return
		}
		b.prog.newEdge(entry, b.loops[len(b.loops)-1].continueTo, Op{Kind: OpAssume, Pred: trueExpr()})
	case *ast.AssumeStmt:
		b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: b.condPred(s.Pred)})
	case *ast.AssertStmt:
		// assert(p) == if (!p) error;
		pred := b.condPred(s.Pred)
		errLoc := b.prog.newLoc(b.fn, s.PosInfo.Line)
		errLoc.IsError = true
		b.prog.newEdge(entry, errLoc, Op{Kind: OpAssume, Pred: negate(pred)})
		b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: pred})
	case *ast.SpawnStmt:
		// spawn f(a, b) lowers like a call — argument transfers through
		// f::$argN — but the control edge is OpSpawn: the spawner falls
		// through to exit while the new thread runs f's body.
		callee := s.Call.Callee
		cur := entry
		for i, a := range s.Call.Args {
			next := b.prog.newLoc(b.fn, s.PosInfo.Line)
			b.prog.newEdge(cur, next, Op{Kind: OpAssign,
				LHS: Lvalue{Var: ArgVar(callee, i)},
				RHS: b.qualifyExpr(a)})
			cur = next
		}
		b.prog.newEdge(cur, exit, Op{Kind: OpSpawn, Callee: callee})
	case *ast.JoinStmt:
		b.prog.newEdge(entry, exit, Op{Kind: OpJoin})
	case *ast.ErrorStmt:
		errLoc := b.prog.newLoc(b.fn, s.PosInfo.Line)
		errLoc.IsError = true
		b.prog.newEdge(entry, errLoc, Op{Kind: OpAssume, Pred: trueExpr()})
	case *ast.SkipStmt:
		b.prog.newEdge(entry, exit, Op{Kind: OpAssume, Pred: trueExpr()})
	case *ast.BlockStmt:
		b.buildBlock(s, entry, exit)
	default:
		b.setErr(s.Pos(), "cfa: unknown statement %T", s)
	}
}

// buildAssign wires `lv := rhs` between entry and exit, expanding call
// right-hand sides into the transfer-variable protocol.
func (b *builder) buildAssign(lv Lvalue, rhs ast.Expr, entry, exit *Loc, line int) {
	if call, ok := rhs.(*ast.CallExpr); ok {
		b.buildCall(call, &lv, entry, exit)
		return
	}
	b.prog.newEdge(entry, exit, Op{Kind: OpAssign, LHS: lv, RHS: b.qualifyExpr(rhs)})
}

// buildCall wires a call (optionally assigning its result to dst)
// between entry and exit: argument transfers, the call edge, and the
// result copy.
func (b *builder) buildCall(call *ast.CallExpr, dst *Lvalue, entry, exit *Loc) {
	callee := call.Callee
	cur := entry
	for i, a := range call.Args {
		next := b.prog.newLoc(b.fn, call.PosInfo.Line)
		b.prog.newEdge(cur, next, Op{Kind: OpAssign,
			LHS: Lvalue{Var: ArgVar(callee, i)},
			RHS: b.qualifyExpr(a)})
		cur = next
	}
	if dst == nil {
		b.prog.newEdge(cur, exit, Op{Kind: OpCall, Callee: callee})
		return
	}
	mid := b.prog.newLoc(b.fn, call.PosInfo.Line)
	b.prog.newEdge(cur, mid, Op{Kind: OpCall, Callee: callee})
	b.prog.newEdge(mid, exit, Op{Kind: OpAssign,
		LHS: *dst,
		RHS: &ast.Ident{Name: RetVar(callee), PosInfo: call.PosInfo}})
}

// qualifyName maps a source variable name to its qualified CFA name.
func (b *builder) qualifyName(name string) string {
	if _, ok := b.fi.Vars[name]; ok {
		return Qualify(b.fn.Name, name)
	}
	return name
}

// qualifyExpr clones e with all variable references qualified.
func (b *builder) qualifyExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.IntLit, *ast.Nondet:
		return e
	case *ast.Ident:
		return &ast.Ident{Name: b.qualifyName(e.Name), PosInfo: e.PosInfo}
	case *ast.Unary:
		return &ast.Unary{Op: e.Op, X: b.qualifyExpr(e.X), PosInfo: e.PosInfo}
	case *ast.Binary:
		return &ast.Binary{Op: e.Op, X: b.qualifyExpr(e.X), Y: b.qualifyExpr(e.Y), PosInfo: e.PosInfo}
	case *ast.CallExpr:
		b.setErr(e.PosInfo, "cfa: call %s(...) in expression position survived type checking", e.Callee)
		return &ast.IntLit{Value: 0}
	}
	b.setErr(e.Pos(), "cfa: unknown expression %T", e)
	return &ast.IntLit{Value: 0}
}

// condPred converts a condition expression (qualified) into a boolean
// predicate: boolean-structured expressions are kept, anything else
// becomes (e != 0).
func (b *builder) condPred(e ast.Expr) ast.Expr {
	return condToPred(b.qualifyExpr(e))
}

func condToPred(e ast.Expr) ast.Expr {
	switch ex := e.(type) {
	case *ast.Binary:
		switch ex.Op {
		case token.LAND, token.LOR:
			return &ast.Binary{Op: ex.Op, X: condToPred(ex.X), Y: condToPred(ex.Y), PosInfo: ex.PosInfo}
		case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
			return ex
		}
	case *ast.Unary:
		if ex.Op == token.NOT {
			return negate(condToPred(ex.X))
		}
	case *ast.IntLit:
		return ex // literal truth values stay literal
	}
	return &ast.Binary{Op: token.NEQ, X: e, Y: &ast.IntLit{Value: 0}, PosInfo: e.Pos()}
}

// negate returns the logical negation of a predicate, pushing through
// nothing (normalization happens in the logic package).
func negate(p ast.Expr) ast.Expr {
	if u, ok := p.(*ast.Unary); ok && u.Op == token.NOT {
		return u.X
	}
	if lit, ok := p.(*ast.IntLit); ok {
		if lit.Value != 0 {
			return &ast.IntLit{Value: 0, PosInfo: lit.PosInfo}
		}
		return &ast.IntLit{Value: 1, PosInfo: lit.PosInfo}
	}
	return &ast.Unary{Op: token.NOT, X: p, PosInfo: p.Pos()}
}
