package cfa

import (
	"fmt"
	"strings"
)

// Path is a program path: a sequence of CFA edges where calls and
// returns are balanced and, within each frame, each edge's source is
// the previous edge's target (§3.1, §4).
type Path []*Edge

// CallIdx computes the Call relation of §4: CallIdx[i] is the index of
// the call edge that begins the frame to which the i-th edge belongs,
// or -1 for edges in the outermost frame. (The paper's Call.i points at
// the call edge itself; we use -1 rather than 1 for the outermost frame
// so callers can distinguish it.)
func (p Path) CallIdx() []int {
	call := make([]int, len(p))
	for i := range p {
		if i == 0 {
			call[0] = -1
			continue
		}
		prev := p[i-1]
		switch prev.Op.Kind {
		case OpCall:
			call[i] = i - 1
		case OpReturn:
			// Pop: the frame of the edge before the matching call.
			j := call[i-1]
			if j < 0 {
				call[i] = -1 // unbalanced return; Validate reports it
			} else {
				call[i] = call[j]
			}
		default:
			call[i] = call[i-1]
		}
	}
	return call
}

// Validate checks that p is a well-formed program path: non-empty,
// frame-wise edge adjacency, calls entering callee entries, and returns
// resuming at the successor of the matching call.
func (p Path) Validate(prog *Program) error {
	if len(p) == 0 {
		return fmt.Errorf("cfa: empty path")
	}
	call := p.CallIdx()
	for i := 1; i < len(p); i++ {
		prev, cur := p[i-1], p[i]
		switch prev.Op.Kind {
		case OpCall:
			callee := prog.Funcs[prev.Op.Callee]
			if callee == nil {
				return fmt.Errorf("cfa: edge %d calls unknown function %s", i-1, prev.Op.Callee)
			}
			if cur.Src != callee.Entry {
				return fmt.Errorf("cfa: edge %d after call to %s starts at %s, want entry %s",
					i, prev.Op.Callee, cur.Src, callee.Entry)
			}
		case OpReturn:
			j := call[i-1]
			if j < 0 {
				return fmt.Errorf("cfa: edge %d returns from the outermost frame", i-1)
			}
			callEdge := p[j]
			if cur.Src != callEdge.Dst {
				return fmt.Errorf("cfa: edge %d after return resumes at %s, want %s (successor of call at %d)",
					i, cur.Src, callEdge.Dst, j)
			}
		default:
			if cur.Src != prev.Dst {
				return fmt.Errorf("cfa: edge %d source %s does not follow edge %d target %s",
					i, cur.Src, i-1, prev.Dst)
			}
		}
	}
	return nil
}

// Target returns the final location of the path.
func (p Path) Target() *Loc {
	if len(p) == 0 {
		return nil
	}
	return p[len(p)-1].Dst
}

// Ops returns the trace Tr.π: the operation sequence labeling the path.
func (p Path) Ops() []Op {
	ops := make([]Op, len(p))
	for i, e := range p {
		ops[i] = e.Op
	}
	return ops
}

// BasicBlocks counts the basic blocks along the path: maximal runs of
// edges whose interior locations have a single successor. This is the
// unit the paper's Figures 5 and 6 use for trace size.
func (p Path) BasicBlocks() int {
	if len(p) == 0 {
		return 0
	}
	blocks := 1
	for i := 1; i < len(p); i++ {
		// A new block starts where the previous location branches or a
		// call/return transfers control.
		if len(p[i].Src.Out) > 1 || p[i-1].Op.Kind == OpCall || p[i-1].Op.Kind == OpReturn {
			blocks++
		}
	}
	return blocks
}

// String renders the path compactly, one edge per line.
func (p Path) String() string {
	var b strings.Builder
	for i, e := range p {
		fmt.Fprintf(&b, "%4d: %s\n", i, e)
	}
	return b.String()
}

// Subsequence reports whether sub is a subsequence of p (edge identity,
// in order) — the defining property of a path slice (§3.2).
func (p Path) Subsequence(sub Path) bool {
	i := 0
	for _, e := range p {
		if i < len(sub) && sub[i] == e {
			i++
		}
	}
	return i == len(sub)
}
