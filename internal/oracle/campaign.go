// The campaign driver: a coverage-guided loop that renders seed specs,
// runs every oracle pillar over the resulting program/trace pairs, and
// feeds specs that exercised new slicer behavior back into the queue as
// mutation candidates. Coverage is fingerprinted from the slicer's
// Stats plus which smt_/pathslice_/summ_ obs counters each pair moved — cheap,
// deterministic, and sensitive to exactly the branches (early-stop,
// degradation, frame skips, solver case splits) the oracle wants the
// corpus to reach.
package oracle

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
)

// Config drives one campaign.
type Config struct {
	// Seeds is how many specs to process (default 120).
	Seeds int
	// Budget is the wall-clock cap; the campaign stops cleanly when it
	// is exceeded (default 30s).
	Budget time.Duration
	// Seed makes the whole campaign deterministic (default 1).
	Seed int64
	// MetaEvery/BruteEvery/CegarEvery run the heavier pillars on every
	// Nth spec (defaults 2, 4, 8; 0 disables the pillar).
	MetaEvery  int
	BruteEvery int
	CegarEvery int
	// Unsound injects a deliberately broken Take rule — the oracle's
	// self-test that it would catch a real regression.
	Unsound core.UnsoundMode
	// Summaries adds the summary-differential pillar: every pair is
	// also sliced with context-keyed frame summaries on, and any
	// observable divergence from the plain walk is a violation. With
	// Unsound == core.UnsoundStaleSummaries this is the pillar that
	// must catch the planted stale-reuse bug.
	Summaries bool
	// CallHeavy biases generated specs toward deep, repeated call
	// chains (CallHeavySpec), the regime the summaries target.
	CallHeavy bool
	// Portfolio runs every slicer feasibility check and CEGAR
	// entailment through the smt portfolio front-end (strategy racing;
	// docs/PERFORMANCE.md), re-proving the Theorem-1 contract under
	// concurrent solving. The cross-check reference solver stays
	// stateless either way, so a racing-induced wrong verdict would
	// surface as a violation.
	Portfolio bool
	// CorpusDir, when set, loads regression specs from
	// <CorpusDir>/seeds.txt ahead of the starter corpus.
	CorpusDir string
	Check     CheckOptions
	Brute     BruteOptions
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 120
	}
	if c.Budget <= 0 {
		c.Budget = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MetaEvery == 0 {
		c.MetaEvery = 2
	}
	if c.BruteEvery == 0 {
		c.BruteEvery = 4
	}
	if c.CegarEvery == 0 {
		c.CegarEvery = 8
	}
	return c
}

// Stats summarizes a campaign run; BENCH artifacts and the slicecheck
// CLI both render it.
type Stats struct {
	Seeds              int           `json:"seeds"`
	Programs           int           `json:"programs"`
	Pairs              int           `json:"pairs"`
	Inconclusive       int           `json:"inconclusive"`
	CoverageEdges      int           `json:"coverage_edges"`
	BruteTraces        int           `json:"brute_traces"`
	BruteAgree         int           `json:"brute_agree"`
	SkeletonMismatches int           `json:"skeleton_mismatches"`
	CegarChecks        int           `json:"cegar_checks"`
	Elapsed            time.Duration `json:"elapsed_ns"`
	Violations         []Violation   `json:"-"`
}

// MinAgreeRate is the fraction of brute-force comparisons whose minimal
// sufficient subtrace matched the production slice size exactly.
func (s *Stats) MinAgreeRate() float64 {
	if s.BruteTraces == 0 {
		return 0
	}
	return float64(s.BruteAgree) / float64(s.BruteTraces)
}

// Summary renders the stats as a one-paragraph report.
func (s *Stats) Summary() string {
	return fmt.Sprintf(
		"oracle: %d seeds, %d programs, %d pairs, %d violations, %d inconclusive, "+
			"%d coverage edges, brute %d/%d minimal-size agreement (%.0f%%), "+
			"%d skeleton mismatches, %d cegar cross-checks, %.1fs",
		s.Seeds, s.Programs, s.Pairs, len(s.Violations), s.Inconclusive,
		s.CoverageEdges, s.BruteAgree, s.BruteTraces, 100*s.MinAgreeRate(),
		s.SkeletonMismatches, s.CegarChecks, s.Elapsed.Seconds())
}

// Run executes a campaign. Determinism: the same Config always checks
// the same pairs in the same order (the Budget cutoff is the only
// wall-clock dependence, and it only truncates the tail).
func Run(cfg Config) *Stats {
	cfg = cfg.withDefaults()
	start := time.Now()
	stats := &Stats{}
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	rng := rand.New(rand.NewSource(cfg.Seed))
	queue := LoadCorpus(cfg.CorpusDir)
	queue = append(queue, StarterSpecs()...)
	fingerprints := map[string]bool{}

	for stats.Seeds < cfg.Seeds {
		if time.Since(start) > cfg.Budget {
			break
		}
		var spec SeedSpec
		switch {
		case len(queue) > 0:
			spec, queue = queue[0], queue[1:]
		case cfg.CallHeavy:
			spec = CallHeavySpec(rng)
		default:
			spec = RandomSpec(rng)
		}
		stats.Seeds++
		newCov := runSpec(spec, cfg, stats, fingerprints)
		if newCov && len(queue) < 4*cfg.Seeds {
			queue = append(queue, Mutate(spec, rng))
		}
	}
	stats.CoverageEdges = len(fingerprints)
	stats.Elapsed = time.Since(start)
	return stats
}

// runSpec checks one spec across slicer configurations and pillars. It
// reports whether any pair produced a previously unseen coverage
// fingerprint.
func runSpec(spec SeedSpec, cfg Config, stats *Stats, fingerprints map[string]bool) bool {
	src := Render(spec, renderOpts{})
	prog, err := compile.Source(src)
	if err != nil {
		// A generator bug, not a slicer bug — but it must not pass
		// silently: the campaign's job is to exercise the slicer, and a
		// spec that fails to compile exercises nothing.
		stats.Violations = append(stats.Violations, Violation{
			Kind: "generator", Detail: fmt.Sprintf("spec does not compile: %v", err), Spec: SpecString(spec),
		})
		return false
	}
	stats.Programs++

	// Repeated chain invocations reuse the callee's body edges once per
	// call, so the edge-use budget must cover every repeat (the default
	// of 2 otherwise makes call-heavy targets unreachable in the graph).
	uses := 0 // 0 = the finder's default
	if spec.CallRepeat > 0 {
		uses = spec.CallRepeat + 2
	}
	short := cfa.FindPathToError(prog, cfa.FindOptions{MaxEdgeUses: uses})
	long := cfa.FindPathToError(prog, cfa.FindOptions{PreferLong: true, MaxLen: 600, MaxEdgeUses: uses})
	if short == nil {
		stats.Violations = append(stats.Violations, Violation{
			Kind: "generator", Detail: "no path to the error location", Spec: SpecString(spec),
		})
		return false
	}

	slicerOpts := []core.Options{
		{Unsound: cfg.Unsound, Portfolio: cfg.Portfolio},
		{EarlyUnsatStop: true, CheckEvery: 1, Unsound: cfg.Unsound, Portfolio: cfg.Portfolio},
	}
	copts := cfg.Check
	copts.ReachCheck = true

	newCov := false
	for oi, sopts := range slicerOpts {
		paths := []cfa.Path{short}
		if oi == 0 && long != nil && len(long) != len(short) {
			paths = append(paths, long)
		}
		for _, path := range paths {
			before := counterSnapshot()
			rep := CheckTrace(prog, path, sopts, copts)
			stats.Pairs++
			stats.Inconclusive += len(rep.Inconclusive)
			for _, v := range rep.Violations {
				v.Spec = SpecString(spec)
				stats.Violations = append(stats.Violations, v)
			}
			if cfg.Summaries {
				stats.Pairs++
				for _, v := range CheckSummaryDiff(prog, path, sopts) {
					v.Spec = SpecString(spec)
					stats.Violations = append(stats.Violations, v)
				}
			}
			fp := fingerprint(rep, before)
			if !fingerprints[fp] {
				fingerprints[fp] = true
				newCov = true
			}
		}
	}

	if cfg.MetaEvery > 0 && stats.Seeds%cfg.MetaEvery == 0 {
		mr := CheckMetamorphic(spec, slicerOpts[0], copts)
		stats.Pairs += mr.Pairs
		stats.Programs += mr.Pairs // one program per variant pair
		stats.Inconclusive += len(mr.Inconclusive)
		stats.SkeletonMismatches += mr.SkeletonMismatches
		for _, v := range mr.Violations {
			v.Spec = SpecString(spec)
			stats.Violations = append(stats.Violations, v)
		}
	}

	if cfg.BruteEvery > 0 && stats.Seeds%cfg.BruteEvery == 0 {
		runBrute(spec, cfg, stats)
	}

	if cfg.CegarEvery > 0 && stats.Seeds%cfg.CegarEvery == 0 {
		checkCegarPair(prog, SpecString(spec), cfg, stats)
	}
	return newCov
}

// runBrute shrinks the spec to a brute-enumerable size and compares the
// production slice against the enumerated minimal sufficient subtrace.
func runBrute(spec SeedSpec, cfg Config, stats *Stats) {
	tiny := spec.tiny()
	prog, err := compile.Source(Render(tiny, renderOpts{}))
	if err != nil {
		return
	}
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil || len(path) > cfg.Brute.withDefaults().MaxEdges {
		return
	}
	slicer := core.NewWithOptions(prog, core.Options{Unsound: cfg.Unsound})
	res, err := slicer.Slice(path)
	if err != nil {
		return
	}
	fr, _ := slicer.CheckFeasibility(path)
	br := BruteCompare(prog, path, res, fr.Status, tiny.Seed, cfg.Brute)
	if !br.Ran {
		return
	}
	stats.BruteTraces++
	if br.Agree {
		stats.BruteAgree++
	}
	stats.Inconclusive += len(br.Inconclusive)
	for _, v := range br.Violations {
		v.Spec = SpecString(tiny)
		stats.Violations = append(stats.Violations, v)
	}
}

// counterSnapshot captures the smt_/pathslice_ counters the coverage
// fingerprint tracks.
func counterSnapshot() map[string]int64 {
	snap := obs.Default().Snapshot()
	out := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "smt_") || strings.HasPrefix(c.Name, "pathslice_") || strings.HasPrefix(c.Name, "summ_") {
			out[c.Name] = c.Value
		}
	}
	return out
}

// fingerprint summarizes which slicer/solver behaviors one pair
// exercised: boolean slicer stats, bucketized slice ratio and length,
// the verdict pair, and the set of tracked counters that moved.
func fingerprint(rep *Report, before map[string]int64) string {
	var b strings.Builder
	if rep.Res != nil {
		st := rep.Res.Stats
		fmt.Fprintf(&b, "a%db%dc%dr%d|sf%d|gc%d|",
			boolBit(st.TakenAssign > 0), boolBit(st.TakenAssume > 0),
			boolBit(st.TakenCall > 0), boolBit(st.TakenReturn > 0),
			st.SkippedFrames, st.SkippedGuardChains)
		fmt.Fprintf(&b, "es%dkd%ddg%d|", boolBit(st.EarlyStopped),
			boolBit(rep.Res.KnownInfeasible), boolBit(rep.Res.Degraded))
		fmt.Fprintf(&b, "ratio%d|len%d|", int(st.Ratio()*4), lenBucket(st.InputEdges))
	}
	fmt.Fprintf(&b, "%v/%v|", rep.SliceStatus, rep.FullStatus)
	after := counterSnapshot()
	moved := make([]string, 0, 8)
	for name, v := range after {
		if v > before[name] {
			moved = append(moved, name)
		}
	}
	sort.Strings(moved)
	b.WriteString(strings.Join(moved, ","))
	return b.String()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func lenBucket(n int) int {
	switch {
	case n <= 8:
		return 0
	case n <= 16:
		return 1
	case n <= 32:
		return 2
	case n <= 64:
		return 3
	}
	return 4
}

// LoadCorpus reads regression specs from <dir>/seeds.txt (one
// SpecString per line, '#' comments). A missing file is fine; a
// malformed line is a loud failure surfaced as a generator violation at
// the head of the run — checked-in seeds must stay parseable.
func LoadCorpus(dir string) []SeedSpec {
	if dir == "" {
		return nil
	}
	f, err := os.Open(filepath.Join(dir, "seeds.txt"))
	if err != nil {
		return nil
	}
	defer f.Close()
	var specs []SeedSpec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if spec, err := ParseSpec(line); err == nil {
			specs = append(specs, spec)
		}
	}
	return specs
}

// ---------------------------------------------------------------------------
// CEGAR oracle mode

// checkCegarPair runs the CEGAR checker over the program with the
// refinement-verdict hook installed: every counterexample feasibility
// verdict the loop acts on is cross-checked against the stateless
// solver and, on Sat, against a concrete model replay. Final verdicts
// are checked against bounded concrete execution: Unsafe needs a
// replayable witness, Safe must survive an input search from the real
// initial state (all globals zero).
func checkCegarPair(prog *cfa.Program, spec string, cfg Config, stats *Stats) {
	stats.CegarChecks++
	ref := core.New(prog) // reference slicer for cross-checks
	violate := func(format string, args ...any) {
		stats.Violations = append(stats.Violations, Violation{
			Kind: "cegar", Detail: fmt.Sprintf(format, args...), Spec: spec,
		})
	}
	opts := cegar.Options{
		UseSlicing:     true,
		SlicerOpts:     core.Options{Unsound: cfg.Unsound, Portfolio: cfg.Portfolio},
		Portfolio:      cfg.Portfolio,
		PortfolioBatch: cfg.Portfolio,
		MaxRefinements: 12,
		MaxWork:        4000,
		Deadline:       2 * time.Second,
	}
	opts.OnRefinement = func(trace, analyzed cfa.Path, status smt.Status) {
		rs, enc := ref.CheckFeasibility(analyzed)
		switch {
		case status == smt.StatusUnsat && rs.Status == smt.StatusSat:
			violate("refinement verdict Unsat but the stateless solver finds the analyzed slice Sat")
		case status == smt.StatusSat && rs.Status == smt.StatusUnsat:
			violate("refinement verdict Sat but the stateless solver finds the analyzed slice Unsat")
		case status == smt.StatusSat && rs.Status == smt.StatusSat:
			if ok, err := replayModel(prog, ref, analyzed, rs.Model, enc.NondetInputs()); err == nil && !ok {
				violate("refinement Sat model does not replay the analyzed slice")
			}
		default:
			if rs.Status == smt.StatusUnknown {
				stats.Inconclusive++
			}
		}
	}
	targets := prog.ErrorLocs()
	if len(targets) == 0 {
		return
	}
	res := cegar.New(prog, opts).Check(targets[0])
	switch res.Verdict {
	case cegar.VerdictUnsafe:
		if res.Witness == nil {
			violate("Unsafe verdict without a witness slice")
			return
		}
		rs, enc := ref.CheckFeasibility(res.Witness)
		if rs.Status == smt.StatusSat {
			if ok, err := replayModel(prog, ref, res.Witness, rs.Model, enc.NondetInputs()); err == nil && !ok {
				violate("Unsafe witness model does not replay")
			}
		}
	case cegar.VerdictSafe:
		st := interp.NewState(prog, ref.Addrs)
		reached, _ := searchReach(prog, st, targets[0], candidateValues(prog), cfg.Check.withDefaults())
		if reached {
			violate("Safe verdict but a concrete input sequence reaches the target")
		}
	}
}
