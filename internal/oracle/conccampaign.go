package oracle

import (
	"fmt"
	"math/rand"
	"time"

	"pathslice/internal/core"
	"pathslice/internal/obs"
)

// ConcConfig drives a concurrent campaign: generated multi-threaded
// programs, scheduler-seed sweeps for error interleavings, and the
// extended judge on every distinct trace found.
type ConcConfig struct {
	// Pairs is the minimum number of program/trace pairs to judge
	// (default 300); the campaign keeps drawing specs until it is met
	// or the Budget runs out.
	Pairs int
	// Budget is the wall-clock cap (default 60s).
	Budget time.Duration
	// Seed makes the campaign deterministic (default 1).
	Seed int64
	// Unsound plants a deliberately broken concurrent walk — the
	// campaign's self-test that it would catch a real regression.
	Unsound core.UnsoundMode
	// SchedSeeds is how many scheduler seeds to sweep per program
	// hunting error interleavings (default 64); TracesPerProgram caps
	// how many distinct interleavings each program contributes
	// (default 3).
	SchedSeeds       int
	TracesPerProgram int
	// CommuteEvery runs the commute metamorphic pillar on every Nth
	// program (default 2; 0 disables it).
	CommuteEvery int
	Check        CheckOptions
}

func (c ConcConfig) withDefaults() ConcConfig {
	if c.Pairs <= 0 {
		c.Pairs = 300
	}
	if c.Budget <= 0 {
		c.Budget = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SchedSeeds <= 0 {
		c.SchedSeeds = 64
	}
	if c.TracesPerProgram <= 0 {
		c.TracesPerProgram = 3
	}
	if c.CommuteEvery == 0 {
		c.CommuteEvery = 2
	}
	return c
}

// ConcStats summarizes a concurrent campaign.
type ConcStats struct {
	Specs        int           `json:"specs"`
	Programs     int           `json:"programs"`
	Traces       int           `json:"traces"`
	Pairs        int           `json:"pairs"`
	Reorderings  int           `json:"reorderings"`
	CommutePairs int           `json:"commute_pairs"`
	RacyEdges    int           `json:"racy_edges"`
	Regions      int           `json:"regions"`
	Inconclusive int           `json:"inconclusive"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Violations   []Violation   `json:"-"`
}

// Summary renders the stats as a one-paragraph report.
func (s *ConcStats) Summary() string {
	return fmt.Sprintf(
		"conc oracle: %d specs, %d programs, %d traces, %d pairs "+
			"(%d commute), %d reorderings replayed, %d racy edges / %d regions, "+
			"%d violations, %d inconclusive, %.1fs",
		s.Specs, s.Programs, s.Traces, s.Pairs, s.CommutePairs,
		s.Reorderings, s.RacyEdges, s.Regions,
		len(s.Violations), s.Inconclusive, s.Elapsed.Seconds())
}

// RunConc executes a concurrent campaign. Determinism mirrors Run: the
// same config judges the same pairs in the same order, the Budget only
// truncates the tail.
func RunConc(cfg ConcConfig) *ConcStats {
	cfg = cfg.withDefaults()
	start := time.Now()
	stats := &ConcStats{}
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)

	rng := rand.New(rand.NewSource(cfg.Seed))
	queue := StarterConcSpecs()
	for stats.Pairs < cfg.Pairs {
		if time.Since(start) > cfg.Budget {
			break
		}
		var spec ConcSpec
		if len(queue) > 0 {
			spec, queue = queue[0], queue[1:]
		} else {
			spec = RandomConcSpec(rng)
		}
		stats.Specs++
		runConcSpec(spec, cfg, stats)
	}
	stats.Elapsed = time.Since(start)
	return stats
}

func runConcSpec(spec ConcSpec, cfg ConcConfig, stats *ConcStats) {
	prog, err := CompileConc(spec)
	if err != nil {
		stats.Violations = append(stats.Violations, Violation{
			Kind: "generator", Detail: fmt.Sprintf("spec does not compile: %v", err),
			Spec: ConcSpecString(spec),
		})
		return
	}
	stats.Programs++
	ref := core.New(prog)

	traces, _ := CollectConcTraces(prog, ref, cfg.SchedSeeds, cfg.TracesPerProgram)
	if len(traces) == 0 {
		// Every generated shape reaches error under some schedule (the
		// guards compare the snoops against the worker's constants, and
		// the all-ones nondet feed opens every prologue guard); a spec
		// with no error interleaving in the sweep means the generator
		// or scheduler regressed.
		stats.Violations = append(stats.Violations, Violation{
			Kind: "generator", Detail: "no error interleaving found in the scheduler sweep",
			Spec: ConcSpecString(spec),
		})
		return
	}

	sopts := core.Options{Unsound: cfg.Unsound}
	for _, tr := range traces {
		stats.Traces++
		rep := CheckConcTrace(prog, tr, sopts, cfg.Check)
		stats.Pairs++
		stats.Reorderings += rep.Reorderings
		stats.Inconclusive += len(rep.Inconclusive)
		if rep.Res != nil {
			stats.RacyEdges += rep.Res.Stats.RacyEdges
			stats.Regions += rep.Res.Stats.Regions
		}
		for _, v := range rep.Violations {
			v.Spec = ConcSpecString(spec)
			stats.Violations = append(stats.Violations, v)
		}
	}

	if cfg.CommuteEvery > 0 && stats.Specs%cfg.CommuteEvery == 0 {
		rep, checked := CheckConcCommute(prog, traces[0], sopts)
		stats.Pairs += checked
		stats.CommutePairs += checked
		stats.Inconclusive += len(rep.Inconclusive)
		for _, v := range rep.Violations {
			v.Spec = ConcSpecString(spec)
			stats.Violations = append(stats.Violations, v)
		}
	}
}
