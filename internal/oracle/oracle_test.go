package oracle

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
)

func mustPair(t *testing.T, src string) (*cfa.Program, cfa.Path) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil {
		t.Fatal("no path to error")
	}
	return prog, path
}

func checkClean(t *testing.T, prog *cfa.Program, path cfa.Path, sopts core.Options) *Report {
	t.Helper()
	rep := CheckTrace(prog, path, sopts, CheckOptions{ReachCheck: true})
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
	return rep
}

func checkCaught(t *testing.T, prog *cfa.Program, path cfa.Path, mode core.UnsoundMode, wantKind string) {
	t.Helper()
	rep := CheckTrace(prog, path, core.Options{Unsound: mode}, CheckOptions{ReachCheck: true})
	for _, v := range rep.Violations {
		if v.Kind == wantKind {
			return
		}
	}
	t.Fatalf("unsound mode %d not caught (want %q): violations=%v inconclusive=%v",
		mode, wantKind, rep.Violations, rep.Inconclusive)
}

// The canonical alias-soundness witness: dropping the may-aliased write
// *p = 5 leaves a slice {a = 3; assume(a == 5)} that is Unsat while the
// full trace is Sat.
const aliasSrc = `
	int a; int *p;
	void main() {
		a = 3;
		p = &a;
		*p = 5;
		if (a == 5) { error; }
	}`

func TestCheckTraceCleanOnCorrectSlicer(t *testing.T) {
	prog, path := mustPair(t, aliasSrc)
	rep := checkClean(t, prog, path, core.Options{})
	if rep.SliceStatus.String() != "sat" {
		t.Errorf("alias program is feasible, got slice status %v", rep.SliceStatus)
	}
}

func TestOracleCatchesDroppedAliasedWrites(t *testing.T) {
	prog, path := mustPair(t, aliasSrc)
	checkCaught(t, prog, path, core.UnsoundDropAliasedWrites, "soundness")
}

func TestOracleCatchesSkippedCallees(t *testing.T) {
	prog, path := mustPair(t, `
		int g;
		void setg() { g = 1; }
		void main() {
			g = 5;
			setg();
			if (g == 1) { error; }
		}`)
	checkClean(t, prog, path, core.Options{})
	checkCaught(t, prog, path, core.UnsoundSkipCallees, "soundness")
}

func TestOracleCatchesDroppedGuards(t *testing.T) {
	prog, path := mustPair(t, `
		int a; int b;
		void main() {
			a = nondet();
			b = 1;
			if (b > 2) {
				if (a == 3) { error; }
			}
		}`)
	checkClean(t, prog, path, core.Options{})
	checkCaught(t, prog, path, core.UnsoundDropGuards, "completeness")
}

func TestCheckTraceEarlyStopDifferential(t *testing.T) {
	// Contradictory guards: the incremental early-stop check fires on
	// the second assume (backward) and proves the prefix Unsat; the
	// stateless solver must agree, and the oracle must not flag it.
	prog, path := mustPair(t, `
		int a;
		void main() {
			a = nondet();
			if (a > 5) {
				if (a < 3) { error; }
			}
		}`)
	rep := checkClean(t, prog, path, core.Options{EarlyUnsatStop: true, CheckEvery: 1})
	if rep.Res == nil || !rep.Res.KnownInfeasible {
		t.Fatal("early-stop should prove this slice infeasible")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		spec := RandomSpec(rng)
		line := SpecString(spec)
		back, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		if back != spec {
			t.Fatalf("round trip changed the spec:\n  in:  %+v\n  out: %+v", spec, back)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	if _, err := ParseSpec("seed=1 bogus=2"); err == nil {
		t.Error("unknown key must be rejected")
	}
	if _, err := ParseSpec("seed=x"); err == nil {
		t.Error("non-integer value must be rejected")
	}
}

func TestRenderedSpecsCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specs := StarterSpecs()
	for i := 0; i < 60; i++ {
		specs = append(specs, RandomSpec(rng))
	}
	for _, spec := range specs {
		for _, opts := range []renderOpts{{}, {rename: true}, {junkExtra: 2}, {permute: true}, {unroll: true}} {
			src := Render(spec, opts)
			prog, err := compile.Source(src)
			if err != nil {
				t.Fatalf("spec %s (opts %+v) does not compile: %v\n%s", SpecString(spec), opts, err, src)
			}
			// Call-heavy specs re-enter the shared chain body CallRepeat
			// times, which the finder's default per-edge use budget of 2
			// cannot cover (same adjustment the campaign makes).
			uses := 0
			if spec.CallRepeat > 0 {
				uses = spec.CallRepeat + 2
			}
			if cfa.FindPathToError(prog, cfa.FindOptions{MaxEdgeUses: uses}) == nil {
				t.Fatalf("spec %s (opts %+v): error unreachable", SpecString(spec), opts)
			}
		}
	}
}

func TestBruteAgreesOnTinyTrace(t *testing.T) {
	prog, path := mustPair(t, `
		int a; int b;
		void main() {
			a = 4;
			b = 7;
			if (a == 4) { error; }
		}`)
	slicer := core.New(prog)
	res, err := slicer.Slice(path)
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := slicer.CheckFeasibility(path)
	br := BruteCompare(prog, path, res, fr.Status, 1, BruteOptions{})
	if !br.Ran {
		t.Fatalf("path of %d edges should be brute-enumerable", len(path))
	}
	for _, v := range br.Violations {
		t.Errorf("unexpected brute violation: %s", v)
	}
	if br.MinSize < 0 {
		t.Fatalf("minimal size undecided: %v", br.Inconclusive)
	}
	if br.MinSize > br.ProdSize {
		t.Errorf("minimal %d > production %d", br.MinSize, br.ProdSize)
	}
}

func TestMetamorphicInvariantsHold(t *testing.T) {
	for _, spec := range StarterSpecs() {
		mr := CheckMetamorphic(spec, core.Options{}, CheckOptions{ReachCheck: true})
		for _, v := range mr.Violations {
			t.Errorf("spec %s: %s", SpecString(spec), v)
		}
	}
}

func TestCampaignSmokeClean(t *testing.T) {
	stats := Run(Config{Seeds: 24, Budget: 60 * time.Second, Seed: 5})
	if len(stats.Violations) != 0 {
		for _, v := range stats.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if stats.Pairs < 24 {
		t.Errorf("campaign checked only %d pairs", stats.Pairs)
	}
	if stats.CoverageEdges < 5 {
		t.Errorf("coverage fingerprints too uniform: %d", stats.CoverageEdges)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := Config{Seeds: 10, Budget: 60 * time.Second, Seed: 9}
	a, b := Run(cfg), Run(cfg)
	if a.Pairs != b.Pairs || a.Programs != b.Programs || a.CoverageEdges != b.CoverageEdges {
		t.Errorf("same config diverged: %s vs %s", a.Summary(), b.Summary())
	}
}

func TestCampaignCatchesUnsoundModes(t *testing.T) {
	modes := []core.UnsoundMode{
		core.UnsoundDropGuards,
		core.UnsoundDropAliasedWrites,
		core.UnsoundSkipCallees,
	}
	for _, mode := range modes {
		stats := Run(Config{Seeds: 40, Budget: 60 * time.Second, Seed: 3, Unsound: mode})
		if len(stats.Violations) == 0 {
			t.Errorf("unsound mode %d survived a %d-seed campaign (%s)", mode, stats.Seeds, stats.Summary())
		}
	}
}

func TestLoadCorpusMissingDirIsEmpty(t *testing.T) {
	if specs := LoadCorpus("does/not/exist"); len(specs) != 0 {
		t.Errorf("got %d specs from a missing dir", len(specs))
	}
	if specs := LoadCorpus(""); specs != nil {
		t.Error("empty dir must load nothing")
	}
}

func TestSummaryMentionsKeyStats(t *testing.T) {
	s := &Stats{Seeds: 3, Pairs: 9, BruteTraces: 2, BruteAgree: 1}
	out := s.Summary()
	for _, want := range []string{"3 seeds", "9 pairs", "1/2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}
