// The summary-differential pillar: summary-on and summary-off slicing
// must be bit-identical — same kept edges, same live set, same verdict
// flags, same observable Stats. This is the oracle hook for the PR's
// context-keyed frame summaries (internal/summ): the memo is a pure
// cache, so ANY observable divergence is a bug, which makes the check
// both cheap and maximally sensitive. The planted
// core.UnsoundStaleSummaries mode (stale summary reuse across
// differing live contexts) must fail exactly here.
package oracle

import (
	"fmt"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
)

// CheckSummaryDiff slices path with and without frame summaries under
// otherwise identical options and reports every observable divergence.
// The summarized slicer runs the path twice — the second pass hits a
// fully warm memo, the state a long-running checker lives in.
func CheckSummaryDiff(prog *cfa.Program, path cfa.Path, sopts core.Options) []Violation {
	offOpts := sopts
	offOpts.Summaries = false
	onOpts := sopts
	onOpts.Summaries = true

	var vs []Violation
	violate := func(format string, args ...any) {
		vs = append(vs, Violation{Kind: "summ-diff", Detail: fmt.Sprintf(format, args...)})
	}

	off, err := core.NewWithOptions(prog, offOpts).Slice(path)
	if err != nil {
		violate("summary-off slicer failed: %v", err)
		return vs
	}
	onSlicer := core.NewWithOptions(prog, onOpts)
	for pass := 0; pass < 2; pass++ {
		on, err := onSlicer.Slice(path)
		if err != nil {
			violate("summary-on slicer failed (pass %d): %v", pass, err)
			return vs
		}
		vs = append(vs, diffResults(off, on, pass)...)
		if len(vs) > 0 {
			return vs // one pass of divergence detail is enough to reproduce
		}
	}
	return vs
}

// diffResults compares every observable of the two walks, ignoring
// only the summary hit/miss and walked-edge counters (which exist to
// differ).
func diffResults(off, on *core.Result, pass int) []Violation {
	var vs []Violation
	violate := func(format string, args ...any) {
		vs = append(vs, Violation{
			Kind:   "summ-diff",
			Detail: fmt.Sprintf("pass %d: ", pass) + fmt.Sprintf(format, args...),
		})
	}
	for i := range off.Taken {
		if off.Taken[i] != on.Taken[i] {
			violate("kept-edge sets diverge at path index %d: off=%v on=%v", i, off.Taken[i], on.Taken[i])
			break
		}
	}
	if off.KnownInfeasible != on.KnownInfeasible {
		violate("KnownInfeasible diverges: off=%v on=%v", off.KnownInfeasible, on.KnownInfeasible)
	}
	if off.Degraded != on.Degraded {
		violate("Degraded diverges: off=%v on=%v", off.Degraded, on.Degraded)
	}
	if len(off.Live) != len(on.Live) {
		violate("final live sets diverge: off=%v on=%v", off.Live.Sorted(), on.Live.Sorted())
	} else {
		for l := range off.Live {
			if !on.Live.Has(l) {
				violate("final live set misses %v with summaries on", l)
				break
			}
		}
	}
	a, b := off.Stats, on.Stats
	a.SummaryHits, a.SummaryMisses, a.WalkedEdges = 0, 0, 0
	b.SummaryHits, b.SummaryMisses, b.WalkedEdges = 0, 0, 0
	if a != b {
		violate("stats diverge: off=%+v on=%+v", a, b)
	}
	return vs
}
