// Judging concurrent slices: the extended oracle pillars for
// multi-threaded traces (see conc.go for the generator side).
package oracle

import (
	"fmt"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/smt"
)

// ConcReport is the outcome of judging one concurrent pair.
type ConcReport struct {
	Res          *core.ConcResult
	SliceStatus  smt.Status
	FullStatus   smt.Status
	Reorderings  int // legal linearizations replayed beyond the recorded one
	Violations   []Violation
	Inconclusive []string
}

func (r *ConcReport) violate(kind, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

func (r *ConcReport) undecided(format string, args ...any) {
	r.Inconclusive = append(r.Inconclusive, fmt.Sprintf(format, args...))
}

// maxLinearizations caps the interleaving-closure enumeration; a trace
// whose slice admits more legal reorderings is checked up to the cap
// and the remainder is counted as inconclusive coverage, never skipped
// silently.
const maxLinearizations = 160

// CheckConcTrace judges one concurrent program/trace pair: slice under
// sopts, then check the extended Theorem-1 contract. The reference
// slicer used for racy-edge recomputation and solver cross-checks is
// always built with sound defaults, so a planted-unsound slicer under
// test cannot corrupt its own judge.
func CheckConcTrace(prog *cfa.Program, tr cfa.ConcTrace, sopts core.Options, copts CheckOptions) *ConcReport {
	copts = copts.withDefaults()
	rep := &ConcReport{}
	mPairs.Inc()
	defer func() {
		mViolations.Add(int64(len(rep.Violations)))
		mInconclusive.Add(int64(len(rep.Inconclusive)))
	}()

	sut := core.NewWithOptions(prog, sopts)
	ref := core.New(prog)

	res, err := sut.ConcSlice(tr)
	if err != nil {
		rep.violate("slicer-error", "ConcSlice failed on a valid trace: %v", err)
		return rep
	}
	rep.Res = res

	// Structural: the slice is a per-thread subsequence of the input in
	// the original total order, Taken agrees with it, and every thread
	// operation survives (spawn/join are always kept — a slice missing
	// one would not even describe a runnable thread structure).
	taken := 0
	for _, t := range res.Taken {
		if t {
			taken++
		}
	}
	if taken != len(res.Slice) {
		rep.violate("structural", "Taken marks %d events but the slice has %d", taken, len(res.Slice))
		return rep
	}
	for t := 0; t < tr.NumThreads(); t++ {
		if !tr.ThreadPath(t).Subsequence(res.Slice.ThreadPath(t)) {
			rep.violate("structural", "thread %d slice is not a subsequence of its projection", t)
			return rep
		}
	}
	for i, ev := range tr {
		if k := ev.Edge.Op.Kind; (k == cfa.OpSpawn || k == cfa.OpJoin) && !res.Taken[i] {
			rep.violate("structural", "thread operation %s at event %d dropped from the slice", ev.Edge.Op, i)
		}
	}

	// Feasibility of the slice and the full trace under the recorded
	// interleaving, through the stateless reference encoder.
	rs, encS := ref.CheckConcFeasibility(res.Slice)
	rf, encF := ref.CheckConcFeasibility(tr)
	rep.SliceStatus, rep.FullStatus = rs.Status, rf.Status

	// Soundness: slice infeasible ⇒ original infeasible. A Sat full
	// trace is convicted by concrete replay of its model, so the
	// verdict rests on the interpreter, not on either encoder.
	if rs.Status == smt.StatusUnsat && rf.Status == smt.StatusSat {
		ok, rerr := replayConcModel(prog, ref, tr.Ops(), rf.Model, encF.NondetInputs())
		switch {
		case ok:
			rep.violate("soundness",
				"slice Unsat but the original interleaving replays concretely from the solver model")
		case rerr != nil:
			rep.undecided("soundness witness model did not replay (%v)", rerr)
		default:
			rep.violate("model-replay", "full-trace Sat model does not execute the interleaving")
		}
	}
	if rs.Status == smt.StatusUnknown || rf.Status == smt.StatusUnknown {
		rep.undecided("solver Unknown (slice=%v full=%v)", rs.Status, rf.Status)
	}

	// A Sat slice must be witnessed under the recorded interleaving,
	// and then under every legal reordering of it: linearizations that
	// respect per-thread program order, conflicting-access order, and
	// spawn/join synchronization are semantically equivalent, so each
	// must replay to the target from the same model.
	if rs.Status == smt.StatusSat {
		ok, rerr := replayConcModel(prog, ref, res.Slice.Ops(), rs.Model, encS.NondetInputs())
		switch {
		case rerr != nil:
			rep.undecided("slice model replay undecided: %v", rerr)
		case !ok:
			rep.violate("model-replay", "slice Sat model does not execute the slice under the recorded interleaving")
		default:
			checkReorderings(rep, prog, ref, res.Slice, rs.Model, encS.NondetInputs())
		}
	}
	return rep
}

// replayConcModel replays a total-order operation sequence from a
// solver model's initial state and nondet feed.
func replayConcModel(prog *cfa.Program, ref *core.Slicer, ops []cfa.Op, model map[string]int64, nondets []string) (bool, error) {
	init := decodeInit(ref, prog, model)
	st := interp.NewState(prog, ref.Addrs)
	for name, v := range init {
		st.Set(name, v)
	}
	vals := make([]int64, len(nondets))
	for i, name := range nondets {
		vals[i] = model[name]
	}
	return st.ExecTrace(ops, &interp.SliceInputs{Vals: vals})
}

// checkReorderings enumerates the legal linearizations of the slice
// and replays each from the model. The constraint graph is recomputed
// by the reference slicer — per-thread order plus conflicting-access
// and sync racy edges — so a slicer under test that dropped an edge
// cannot hide the resulting non-equivalent reordering.
//
// Nondet alignment: generated programs draw nondet() only on thread 0,
// whose events keep their relative order in every linearization, so
// the model's nondet value sequence feeds identically.
func checkReorderings(rep *ConcReport, prog *cfa.Program, ref *core.Slicer, slice cfa.ConcTrace, model map[string]int64, nondets []string) {
	n := len(slice)
	if n == 0 {
		return
	}
	// succ[i] lists events that must come after i; indeg counts.
	succ := make([][]int, n)
	indeg := make([]int, n)
	addEdge := func(a, b int) {
		succ[a] = append(succ[a], b)
		indeg[b]++
	}
	last := map[int]int{} // thread -> last event index seen
	for i, ev := range slice {
		if j, ok := last[ev.TID]; ok {
			addEdge(j, i)
		}
		last[ev.TID] = i
	}
	for _, re := range ref.RacyEdges(slice) {
		addEdge(re.From, re.To)
	}

	order := make([]int, 0, n)
	count := 0
	truncated := false
	var rec func() bool // returns false to abort (violation or cap)
	rec = func() bool {
		if count >= maxLinearizations {
			truncated = true
			return false
		}
		if len(order) == n {
			count++
			ops := make([]cfa.Op, n)
			identity := true
			for k, idx := range order {
				ops[k] = slice[idx].Edge.Op
				if idx != k {
					identity = false
				}
			}
			if identity {
				return true // the recorded order was already replayed
			}
			rep.Reorderings++
			ok, err := replayConcModel(prog, ref, ops, model, nondets)
			if err != nil {
				rep.undecided("reordering replay undecided: %v", err)
				return true
			}
			if !ok {
				rep.violate("reorder",
					"a legal reordering of the slice (per-thread order and all racy edges preserved) fails to replay: %v", order)
				return false
			}
			return true
		}
		for i := 0; i < n; i++ {
			if indeg[i] != 0 {
				continue
			}
			indeg[i] = -1
			order = append(order, i)
			for _, j := range succ[i] {
				indeg[j]--
			}
			cont := rec()
			for _, j := range succ[i] {
				indeg[j]++
			}
			order = order[:len(order)-1]
			indeg[i] = 0
			if !cont {
				return false
			}
		}
		return true
	}
	rec()
	if truncated {
		rep.undecided("reordering enumeration truncated at %d linearizations", maxLinearizations)
	}
}

// ---------------------------------------------------------------------------
// The commute metamorphic invariant

// CommutablePairs returns the positions i such that swapping events i
// and i+1 is a legal, meaning-preserving transformation: the events
// run on different threads, neither is a thread operation, no racy
// edge (conflict or sync) connects them, and the swap cannot demote
// thread 0's leading event. Swaps across a racy edge are refused by
// construction — commuting conflicting accesses changes which write a
// read observes, so no invariant holds there.
func CommutablePairs(ref *core.Slicer, tr cfa.ConcTrace) []int {
	racyAdj := map[int]bool{}
	for _, re := range ref.RacyEdges(tr) {
		if re.To == re.From+1 {
			racyAdj[re.From] = true
		}
	}
	var pairs []int
	for i := 0; i+1 < len(tr); i++ {
		a, b := tr[i], tr[i+1]
		if a.TID == b.TID || racyAdj[i] || i == 0 {
			continue
		}
		if k := a.Edge.Op.Kind; k == cfa.OpSpawn || k == cfa.OpJoin {
			continue
		}
		if k := b.Edge.Op.Kind; k == cfa.OpSpawn || k == cfa.OpJoin {
			continue
		}
		pairs = append(pairs, i)
	}
	return pairs
}

// CheckConcCommute runs the commute invariant over one trace: for each
// commutable adjacent pair (capped), the swapped trace's slice must be
// bit-identical modulo the swap — same taken bits with positions i and
// i+1 exchanged, same live set, same racy-edge and region counts —
// and the feasibility verdict must not move. Checked pairs are
// reported so the campaign can count them.
func CheckConcCommute(prog *cfa.Program, tr cfa.ConcTrace, sopts core.Options) (*ConcReport, int) {
	rep := &ConcReport{}
	sut := core.NewWithOptions(prog, sopts)
	ref := core.New(prog)
	base, err := sut.ConcSlice(tr)
	if err != nil {
		rep.violate("slicer-error", "ConcSlice failed on the base trace: %v", err)
		return rep, 0
	}
	rbase, _ := ref.CheckConcFeasibility(base.Slice)

	pairs := CommutablePairs(ref, tr)
	const maxSwaps = 6
	if len(pairs) > maxSwaps {
		pairs = pairs[:maxSwaps]
	}
	checked := 0
	for _, i := range pairs {
		swapped := append(cfa.ConcTrace{}, tr...)
		swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
		if verr := swapped.Validate(prog); verr != nil {
			rep.violate("metamorphic", "commutable swap at %d produced an invalid trace: %v", i, verr)
			continue
		}
		res, err := sut.ConcSlice(swapped)
		if err != nil {
			rep.violate("slicer-error", "ConcSlice failed on a commuted trace: %v", err)
			continue
		}
		checked++
		mPairs.Inc()
		for j := range res.Taken {
			want := base.Taken[j]
			switch j {
			case i:
				want = base.Taken[i+1]
			case i + 1:
				want = base.Taken[i]
			}
			if res.Taken[j] != want {
				rep.violate("metamorphic",
					"commuting independent events %d,%d changed the slice at event %d", i, i+1, j)
				break
			}
		}
		if res.Live.String() != base.Live.String() {
			rep.violate("metamorphic", "commuting independent events %d,%d changed the live set (%s → %s)",
				i, i+1, base.Live, res.Live)
		}
		// Region COUNTS are positional (boundary gaps can merge under a
		// swap), so only the racy-edge set's cardinality is invariant.
		if res.Stats.RacyEdges != base.Stats.RacyEdges {
			rep.violate("metamorphic",
				"commuting independent events %d,%d changed the racy-edge count (%d → %d)",
				i, i+1, base.Stats.RacyEdges, res.Stats.RacyEdges)
		}
		rswap, _ := ref.CheckConcFeasibility(res.Slice)
		if rbase.Status != smt.StatusUnknown && rswap.Status != smt.StatusUnknown &&
			rbase.Status != rswap.Status {
			rep.violate("metamorphic", "commuting independent events %d,%d changed the verdict (%v → %v)",
				i, i+1, rbase.Status, rswap.Status)
		}
	}
	mViolations.Add(int64(len(rep.Violations)))
	return rep, checked
}
