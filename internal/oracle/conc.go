// The concurrent oracle: generation and judging for multi-threaded
// trace slicing (docs/CONCURRENCY.md). The sequential pillars carry
// over — structural subsequence, solver cross-checks, model replay —
// but two are genuinely new:
//
//   - interleaving closure: a Sat slice is replayed not just under the
//     recorded interleaving but under every legal reordering of it —
//     linearizations preserving each thread's program order, the
//     relative order of every conflicting access pair, and spawn/join
//     synchronization. If some legal reordering fails to replay, the
//     slicer treated two operations as independent that are not: a
//     missed racy edge, the concurrent analogue of a missed data
//     dependence.
//
//   - the commute invariant (CheckConcCommute): swapping two adjacent
//     trace events with no happens-before constraint between them must
//     leave the slice bit-identical (modulo the swapped positions) and
//     the feasibility verdict unchanged. The pair generator refuses —
//     by construction, enforced in its own test — to propose swaps
//     across a racy edge, where commuting is not meaning-preserving.
//
// Generated programs follow one discipline beyond the sequential
// generator's: nondet() appears only in main's prologue, before any
// spawn, so a model's nondet values align with replay in every legal
// reordering (other threads never consume inputs).
package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/instrument"
	"pathslice/internal/interp"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

// ConcSpec describes one generated concurrent program. The central
// shape: a worker thread writes NPairs globals w0..w{n-1} that main
// snoops into s0..s{n-1} while both threads run, with the error guard
// demanding the worker's values. PreWrite plants conflicting constants
// in main before the spawn — the contradiction anchor that turns a
// dropped cross-thread write into an Unsat slice the solver pillar can
// convict (without it, a lost write is merely an unconstrained initial
// value the model can repair silently).
type ConcSpec struct {
	Seed     int64
	NPairs   int  // worker-written globals main snoops (1..2)
	PreWrite bool // main writes conflicting constants before spawning
	Junk     bool // second spawned thread writing only junk
	UseLock  bool // guard every shared access with lock(l)/unlock(l)
	Nondets  int  // nondet-fed guard variables in main's prologue (0..1)
}

func (s ConcSpec) normalize() ConcSpec {
	if s.NPairs < 1 {
		s.NPairs = 1
	}
	if s.NPairs > 2 {
		s.NPairs = 2
	}
	if s.Nondets < 0 {
		s.Nondets = 0
	}
	if s.Nondets > 1 {
		s.Nondets = 1
	}
	return s
}

// ConcSpecString serializes a spec for violation reports.
func ConcSpecString(s ConcSpec) string {
	return fmt.Sprintf("conc seed=%d npairs=%d prewrite=%d junk=%d lock=%d nondets=%d",
		s.Seed, s.NPairs, b2i(s.PreWrite), b2i(s.Junk), b2i(s.UseLock), s.Nondets)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RandomConcSpec draws a spec; PreWrite is biased on because it is
// what gives the solver pillars teeth.
func RandomConcSpec(rng *rand.Rand) ConcSpec {
	return ConcSpec{
		Seed:     rng.Int63n(1 << 30),
		NPairs:   1 + rng.Intn(2),
		PreWrite: rng.Intn(4) > 0,
		Junk:     rng.Intn(3) == 0,
		UseLock:  rng.Intn(3) == 0,
		Nondets:  rng.Intn(2),
	}.normalize()
}

// StarterConcSpecs seeds the campaign with the shape families the
// concurrent walker can get wrong: single and double snoop pairs,
// with and without the contradiction anchor, junk threads, locks.
func StarterConcSpecs() []ConcSpec {
	return []ConcSpec{
		{Seed: 101, NPairs: 1, PreWrite: true},
		{Seed: 102, NPairs: 2, PreWrite: true},
		{Seed: 103, NPairs: 2, PreWrite: true, Junk: true},
		{Seed: 104, NPairs: 1, PreWrite: false, Nondets: 1},
		{Seed: 105, NPairs: 2, PreWrite: true, Nondets: 1},
		{Seed: 106, NPairs: 1, PreWrite: true, UseLock: true},
		{Seed: 107, NPairs: 2, PreWrite: true, UseLock: true, Junk: true},
	}
}

// RenderConc emits the MiniC source of a spec.
func RenderConc(s ConcSpec) string {
	s = s.normalize()
	rng := rand.New(rand.NewSource(s.Seed))
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	// Worker constants and main's conflicting pre-write constants.
	wc := make([]int64, s.NPairs)
	pc := make([]int64, s.NPairs)
	for i := range wc {
		wc[i] = 1 + int64(rng.Intn(7))
		pc[i] = wc[i] + 1 + int64(rng.Intn(3)) // provably != wc[i]
	}

	p("// %s\n", ConcSpecString(s))
	for i := 0; i < s.NPairs; i++ {
		p("int w%d;\nint s%d;\n", i, i)
	}
	for i := 0; i < s.Nondets; i++ {
		p("int n%d;\n", i)
	}
	if s.Junk {
		p("int jk;\n")
	}
	if s.UseLock {
		p("int l;\n")
	}
	p("\n")

	locked := func(stmt string) {
		if s.UseLock {
			p("  lock(l);\n%s  unlock(l);\n", stmt)
		} else {
			p("%s", stmt)
		}
	}

	p("void wrk() {\n")
	for i := 0; i < s.NPairs; i++ {
		locked(fmt.Sprintf("  w%d = %d;\n", i, wc[i]))
	}
	p("}\n\n")
	if s.Junk {
		p("void jnk() {\n  jk = jk + 1;\n  jk = jk + 2;\n}\n\n")
	}

	p("void main() {\n")
	for i := 0; i < s.Nondets; i++ {
		p("  n%d = nondet();\n", i)
	}
	if s.PreWrite {
		for i := 0; i < s.NPairs; i++ {
			p("  w%d = %d;\n", i, pc[i])
		}
	}
	p("  spawn wrk();\n")
	if s.Junk {
		p("  spawn jnk();\n")
	}
	for i := 0; i < s.NPairs; i++ {
		locked(fmt.Sprintf("  s%d = w%d;\n", i, i))
	}
	p("  join;\n")
	indent := "  "
	var closes []string
	for i := 0; i < s.Nondets; i++ {
		p("%sif (n%d > 0) {\n", indent, i)
		closes = append(closes, indent+"}\n")
		indent += "  "
	}
	for i := 0; i < s.NPairs; i++ {
		p("%sif (s%d == %d) {\n", indent, i, wc[i])
		closes = append(closes, indent+"}\n")
		indent += "  "
	}
	p("%serror;\n", indent)
	for i := len(closes) - 1; i >= 0; i-- {
		p("%s", closes[i])
	}
	p("}\n")
	return b.String()
}

// CompileConc compiles a spec's source. Lock specs run through the
// lock-discipline instrumentation first, so their happens-before
// structure arrives as ordinary conflicting accesses on the l__lk
// shadow variable.
func CompileConc(s ConcSpec) (*cfa.Program, error) {
	src := RenderConc(s)
	if !s.UseLock {
		return compile.Source(src)
	}
	astProg, err := parser.Parse([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	ins, err := instrument.InstrumentLocks(astProg)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	info, err := types.Check(ins.Prog)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return cfa.Build(info)
}

// concInputs returns the concrete nondet feed used to hunt error
// interleavings: ones satisfy every generated `n > 0` guard.
func concInputs() interp.Inputs { return &interp.SliceInputs{Vals: []int64{1, 1, 1, 1}} }

// CollectConcTraces sweeps scheduler seeds and returns up to max
// distinct error interleavings of prog, with the seeds that produced
// them.
func CollectConcTraces(prog *cfa.Program, slicer *core.Slicer, seeds, max int) ([]cfa.ConcTrace, []uint64) {
	var traces []cfa.ConcTrace
	var used []uint64
	seen := map[string]bool{}
	for seed := uint64(0); seed < uint64(seeds) && len(traces) < max; seed++ {
		st := interp.NewState(prog, slicer.Addrs)
		r := interp.ConcRun(prog, st, concInputs(), interp.ConcRunOptions{
			RecordTrace: true, Seed: seed,
		})
		if !r.ReachedError {
			continue
		}
		key := r.Trace.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		traces = append(traces, r.Trace)
		used = append(used, seed)
	}
	return traces, used
}
