// Brute-force reference slicer: on tiny traces it enumerates subtraces
// in size order and decides, for each, whether it would be a *sufficient*
// slice — sound (its infeasibility implies the full trace's) and
// complete (every probe state that can execute it reaches the target in
// the full program, or diverges). The smallest sufficient subtrace is an
// independent witness the production slicer is compared against: the
// production slice must itself be sufficient (never unsoundly small),
// and agreement between its size and the brute-force minimum is tracked
// as a corpus statistic.
//
// Completeness is approximated over a probe family (the zero state,
// seeded pseudo-random states over the program's literal values, and
// the solver's model states), with reach outcomes cached per probe —
// evaluating a candidate subtrace then costs one solver call plus a few
// cached lookups. Any sub-check that exhausts its budget makes the
// verdict for that subtrace "unknown", which can cost minimality
// precision but can never produce a false violation.
package oracle

import (
	"fmt"
	"math/rand"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/lang/ast"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

// BruteOptions bounds the enumeration.
type BruteOptions struct {
	// MaxEdges is the longest path the brute slicer accepts (default 12).
	MaxEdges int
	// MaxCandidates caps how many subtraces are evaluated (default 600).
	MaxCandidates int
	// Probes is the number of pseudo-random probe states (default 4).
	Probes int
	Check  CheckOptions
}

func (o BruteOptions) withDefaults() BruteOptions {
	if o.MaxEdges <= 0 {
		o.MaxEdges = 12
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 600
	}
	if o.Probes <= 0 {
		o.Probes = 4
	}
	o.Check = o.Check.withDefaults()
	return o
}

// BruteReport is the outcome of one brute-force comparison.
type BruteReport struct {
	Ran          bool // false when the path was too long or budgets ran dry
	MinSize      int  // size of the smallest sufficient subtrace (-1 unknown)
	ProdSize     int  // size of the production slice
	Agree        bool // MinSize decided and equal to ProdSize
	Violations   []Violation
	Inconclusive []string
}

type verdict int

const (
	vInsufficient verdict = iota
	vSufficient
	vUnknown
)

// bruteChecker holds the per-pair caches.
type bruteChecker struct {
	prog   *cfa.Program
	slicer *core.Slicer
	path   cfa.Path
	opts   BruteOptions
	probes []*interp.State
	reach  []reachOutcome // cached per probe, lazily computed
	values []int64
	spent  int // candidate budget consumed
}

type reachOutcome struct {
	done       bool
	reached    bool
	exhaustive bool
}

// BruteCompare enumerates subtraces of a tiny path and checks the
// production slice against the minimal sufficient one. fullStatus is
// the stateless verdict for the whole path, already computed by the
// replay oracle.
func BruteCompare(prog *cfa.Program, path cfa.Path, res *core.Result, fullStatus smt.Status, seed int64, opts BruteOptions) *BruteReport {
	opts = opts.withDefaults()
	rep := &BruteReport{MinSize: -1, ProdSize: len(res.Slice)}
	if len(path) > opts.MaxEdges {
		return rep
	}
	rep.Ran = true
	bc := &bruteChecker{
		prog:   prog,
		slicer: core.New(prog), // reference runs without optimizations
		path:   path,
		opts:   opts,
		values: candidateValues(prog),
	}
	bc.buildProbes(seed)

	// The production slice must be sufficient on its own.
	prodIdx := make([]int, 0, len(res.Slice))
	for i, t := range res.Taken {
		if t {
			prodIdx = append(prodIdx, i)
		}
	}
	switch v, why := bc.evaluate(prodIdx, fullStatus); v {
	case vInsufficient:
		rep.Violations = append(rep.Violations, Violation{
			Kind:   "brute",
			Detail: fmt.Sprintf("production slice (%d edges) is not a sufficient subtrace: %s", len(prodIdx), why),
		})
	case vUnknown:
		rep.Inconclusive = append(rep.Inconclusive, "production slice sufficiency undecided: "+why)
	}

	// Minimal sufficient subtrace, smallest-first so the first hit is
	// the minimum. Budget exhaustion or an unknown verdict below the
	// found size leaves MinSize undecided.
	decisive := true
	n := len(path)
	idx := make([]int, 0, n)
	var enumerate func(start, size int) verdict
	enumerate = func(start, size int) verdict {
		if len(idx) == size {
			if bc.spent >= opts.MaxCandidates {
				decisive = false
				return vUnknown
			}
			bc.spent++
			v, _ := bc.evaluate(idx, fullStatus)
			if v == vUnknown {
				decisive = false
			}
			return v
		}
		for i := start; i <= n-(size-len(idx)); i++ {
			idx = append(idx, i)
			v := enumerate(i+1, size)
			idx = idx[:len(idx)-1]
			if v == vSufficient {
				return v
			}
			if bc.spent >= opts.MaxCandidates {
				decisive = false
				return vUnknown
			}
		}
		return vInsufficient
	}
	for size := 0; size <= n; size++ {
		if enumerate(0, size) == vSufficient {
			if decisive {
				rep.MinSize = size
			}
			break
		}
		if !decisive {
			break
		}
	}
	if rep.MinSize >= 0 {
		rep.Agree = rep.MinSize == rep.ProdSize
		if rep.MinSize > rep.ProdSize {
			// The production slice is smaller than any sufficient
			// subtrace — yet it passed its own sufficiency check above;
			// the two can only disagree through an oracle bug.
			rep.Violations = append(rep.Violations, Violation{
				Kind:   "brute",
				Detail: fmt.Sprintf("minimal sufficient size %d exceeds production slice size %d", rep.MinSize, rep.ProdSize),
			})
		}
	} else {
		rep.Inconclusive = append(rep.Inconclusive, "minimal sufficient subtrace undecided within budget")
	}
	return rep
}

// buildProbes seeds the probe family: the zero state plus Probes
// pseudo-random states over the candidate values. Probes are strict
// (satellite: interp.UninitReadError) and seed only the variables the
// path mentions, so a read the path cannot justify surfaces as a typed
// error instead of a silent zero. Pointer variables stay null: a probe
// has no way to guess a meaningful address, and a stuck dereference
// simply means that probe cannot execute the candidate.
func (bc *bruteChecker) buildProbes(seed int64) {
	vars := pathVars(bc.path)
	rng := rand.New(rand.NewSource(seed))
	mk := func(fill func(string) int64) *interp.State {
		st := interp.NewStrictState(bc.prog, bc.slicer.Addrs)
		for _, name := range vars {
			if bc.prog.Types[name] == ast.TypeIntPtr {
				st.Set(name, 0)
				continue
			}
			st.Set(name, fill(name))
		}
		return st
	}
	bc.probes = append(bc.probes, mk(func(string) int64 { return 0 }))
	for i := 0; i < bc.opts.Probes; i++ {
		bc.probes = append(bc.probes, mk(func(string) int64 {
			return bc.values[rng.Intn(len(bc.values))]
		}))
	}
	bc.reach = make([]reachOutcome, len(bc.probes))
}

// evaluate decides sufficiency for one candidate subtrace.
func (bc *bruteChecker) evaluate(idx []int, fullStatus smt.Status) (verdict, string) {
	ops := make([]cfa.Op, len(idx))
	sub := make(cfa.Path, len(idx))
	for i, k := range idx {
		ops[i] = bc.path[k].Op
		sub[i] = bc.path[k]
	}
	enc := wp.NewTraceEncoder(bc.prog, bc.slicer.Alias, bc.slicer.Addrs)
	r := smt.SolveWithLimits(enc.EncodeTrace(ops), bc.slicer.Opts.SolverLimits)
	switch r.Status {
	case smt.StatusUnknown:
		return vUnknown, "subtrace feasibility unknown"
	case smt.StatusUnsat:
		// Sound only if the full trace is infeasible too.
		switch fullStatus {
		case smt.StatusSat:
			return vInsufficient, "subtrace Unsat but the full trace is Sat"
		case smt.StatusUnknown:
			return vUnknown, "full-trace feasibility unknown"
		}
		return vSufficient, ""
	}
	// Sat: the model state must execute the subtrace and reach the
	// target; so must every probe that can execute it.
	model := interp.NewState(bc.prog, bc.slicer.Addrs)
	for name, v := range enc.DecodeInitialState(r.Model, bc.prog) {
		model.Set(name, v)
	}
	nd := enc.NondetInputs()
	vals := make([]int64, len(nd))
	for i, name := range nd {
		vals[i] = r.Model[name]
	}
	if ok, err := model.Clone().ExecTrace(ops, &interp.SliceInputs{Vals: vals}); err != nil || !ok {
		return vUnknown, "subtrace Sat model does not replay"
	}
	searchVals := append([]int64{}, bc.values...)
	for _, v := range vals {
		searchVals = addValue(searchVals, v)
	}
	reached, exhaustive := searchReach(bc.prog, model, bc.path.Target(), searchVals, bc.opts.Check)
	if !reached && exhaustive {
		return vInsufficient, "subtrace Sat model cannot reach the target"
	}
	if !reached {
		return vUnknown, "model reach search inconclusive"
	}
	for pi, probe := range bc.probes {
		ok := bc.probeExecutes(probe, ops)
		if !ok {
			continue
		}
		out := bc.probeReach(pi, probe)
		switch {
		case out.reached:
		case out.exhaustive:
			return vInsufficient, fmt.Sprintf("probe %d executes the subtrace but cannot reach the target", pi)
		default:
			return vUnknown, fmt.Sprintf("probe %d reach search inconclusive", pi)
		}
	}
	return vSufficient, ""
}

// probeExecutes reports whether some small input sequence lets the
// probe state execute the candidate subtrace. Strict-mode uninit reads
// and stuck executions count as cannot-execute.
func (bc *bruteChecker) probeExecutes(probe *interp.State, ops []cfa.Op) bool {
	nondets := 0
	for _, op := range ops {
		nondets += countNondets(op)
	}
	if nondets > 2 {
		nondets = 2 // budget: deeper input spaces fall back to prefixes
	}
	var try func(prefix []int64, depth int) bool
	try = func(prefix []int64, depth int) bool {
		if ok, err := probe.Clone().ExecTrace(ops, &interp.SliceInputs{Vals: prefix}); err == nil && ok {
			return true
		}
		if depth == 0 {
			return false
		}
		for _, v := range bc.values {
			if try(append(prefix, v), depth-1) {
				return true
			}
		}
		return false
	}
	return try(nil, nondets)
}

// probeReach runs (and caches) the reach search for one probe. Reach
// uses a non-strict copy of the probe's values: whole-program execution
// legitimately reads unseeded globals as zero.
func (bc *bruteChecker) probeReach(pi int, probe *interp.State) reachOutcome {
	if bc.reach[pi].done {
		return bc.reach[pi]
	}
	st := interp.NewState(bc.prog, bc.slicer.Addrs)
	for name, v := range probe.Vals {
		st.Set(name, v)
	}
	reached, exhaustive := searchReach(bc.prog, st, bc.path.Target(), bc.values, bc.opts.Check)
	bc.reach[pi] = reachOutcome{done: true, reached: reached, exhaustive: exhaustive}
	return bc.reach[pi]
}

// pathVars collects every variable the path's operations mention.
func pathVars(p cfa.Path) []string {
	set := map[string]bool{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			set[e.Name] = true
		case *ast.Unary:
			walk(e.X)
		case *ast.Binary:
			walk(e.X)
			walk(e.Y)
		}
	}
	for _, e := range p {
		if e.Op.LHS.Var != "" {
			set[e.Op.LHS.Var] = true
		}
		walk(e.Op.Pred)
		walk(e.Op.RHS)
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	return out
}

func countNondets(op cfa.Op) int {
	n := 0
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Nondet:
			n++
		case *ast.Unary:
			walk(e.X)
		case *ast.Binary:
			walk(e.X)
			walk(e.Y)
		}
	}
	walk(op.Pred)
	walk(op.RHS)
	return n
}
