// Seed specs and the MiniC renderer for the oracle's program
// generator. A SeedSpec is a small, fully serializable description of
// one generated program; rendering is deterministic in the spec, so a
// failing seed can be checked into testdata/oracle/ and replayed
// forever. The shapes concentrate on what the slicer can get wrong:
// writes through aliased pointers, cross-procedure mod-ref, loop-carried
// dependences, and nested guards whose By-test relevance is subtle.
//
// One generator discipline matters for the replay oracle: nondet()
// appears only as a standalone assignment RHS, never inside && / ||.
// The interpreter short-circuits boolean operators while the SSA
// encoder does not, so nondet inside them would consume inputs at
// different rates and break the model-to-replay input alignment
// (wp.TraceEncoder.NondetInputs).
package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// SeedSpec describes one generated program. All fields are small
// integers so the spec round-trips through SpecString/ParseSpec.
type SeedSpec struct {
	Seed    int64 // drives literal and filler choices
	NVars   int   // int globals g0..g{NVars-1} (2..4)
	Nondets int   // g0..g{Nondets-1} read nondet() in the prologue (0..2)
	// PtrShape: 0 none; 1 overwrite-through-alias (gT = c1; p = &gT;
	// *p = c2; error guard compares gT against c2 — the shape that
	// exposes an alias-blind Take); 2 read-through (p = &gT; gR = *p + 1).
	PtrShape  int
	PtrTarget int // which global p points at
	// CalleeShape: 0 none; 1 callee writes the error-guard variable
	// (mod-ref must keep the frame); 2 callee writes only a junk
	// variable (mod-ref may skip it); 3 both callees are called.
	CalleeShape int
	// LoopShape: 0 none; 1 loop-carried accumulation into the error
	// variable; 2 guarded write inside the loop.
	LoopShape int
	LoopBound int // 1..3
	Guards    int // extra nested guards around the error guard (0..2)
	GuardVar  int // global tested by the outermost extra guard
	// GuardSat: whether the prologue initializer of GuardVar satisfies
	// the extra guard (feasible path) or refutes it (infeasible path).
	GuardSat bool
	ErrVar   int   // global compared at the error site
	ErrCmp   int64 // the comparison constant
	Junk     int   // junk statements in the prologue (0..2)
	// CallDepth/CallRepeat shape the gcc-class call structure the frame
	// summaries target: a chain of CallDepth nested procedures whose
	// deepest member writes the error variable plus one other global,
	// invoked CallRepeat times from main with a liveness-changing write
	// between repeats. The repeats make the backward walk meet the same
	// frame segment several times; the interleaved write splits those
	// meetings across different projected live sets, which is exactly
	// the distinction a stale summary reuse (core.UnsoundStaleSummaries)
	// erases. Both zero renders the pre-knob program byte-identically.
	CallDepth  int // nested call chain depth (0..3)
	CallRepeat int // repeated chain invocations in main (0..4)
}

// normalize clamps every field into its valid range; mutation and
// parsing both funnel through it.
func (s SeedSpec) normalize() SeedSpec {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	s.NVars = clamp(s.NVars, 2, 4)
	s.Nondets = clamp(s.Nondets, 0, 2)
	if s.Nondets > s.NVars {
		s.Nondets = s.NVars
	}
	s.PtrShape = clamp(s.PtrShape, 0, 2)
	s.PtrTarget = clamp(s.PtrTarget, 0, s.NVars-1)
	// The alias-overwrite shape needs a deterministic initializer for
	// the pointee, so keep it off nondet-fed globals.
	if s.PtrShape == 1 && s.PtrTarget < s.Nondets {
		s.PtrTarget = s.Nondets % s.NVars
		if s.PtrTarget < s.Nondets {
			s.PtrShape = 2
		}
	}
	s.CalleeShape = clamp(s.CalleeShape, 0, 3)
	s.LoopShape = clamp(s.LoopShape, 0, 2)
	s.LoopBound = clamp(s.LoopBound, 1, 3)
	s.Guards = clamp(s.Guards, 0, 2)
	s.GuardVar = clamp(s.GuardVar, 0, s.NVars-1)
	s.ErrVar = clamp(s.ErrVar, 0, s.NVars-1)
	if s.PtrShape == 1 {
		s.ErrVar = s.PtrTarget
	}
	if s.ErrCmp < -9 || s.ErrCmp > 9 {
		s.ErrCmp = s.ErrCmp % 10
	}
	s.Junk = clamp(s.Junk, 0, 2)
	s.CallDepth = clamp(s.CallDepth, 0, 3)
	s.CallRepeat = clamp(s.CallRepeat, 0, 4)
	// The knobs only mean something together: a chain nobody calls (or
	// calls without a chain) normalizes to the minimal call-heavy shape.
	if s.CallDepth == 0 && s.CallRepeat > 0 {
		s.CallDepth = 1
	}
	if s.CallDepth > 0 && s.CallRepeat == 0 {
		s.CallRepeat = 1
	}
	return s
}

// tiny returns a shrunken copy whose paths are short enough for the
// brute-force reference slicer to enumerate subtraces exhaustively.
func (s SeedSpec) tiny() SeedSpec {
	s.LoopShape = 0
	s.CalleeShape = 0
	s.CallDepth = 0
	s.CallRepeat = 0
	s.Guards = min(s.Guards, 1)
	s.Junk = 0
	s.NVars = min(s.NVars, 3)
	return s.normalize()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SpecString serializes a spec as sorted key=value pairs on one line —
// the on-disk format of testdata/oracle/seeds.txt.
func SpecString(s SeedSpec) string {
	kv := map[string]int64{
		"seed": s.Seed, "nvars": int64(s.NVars), "nondets": int64(s.Nondets),
		"ptr": int64(s.PtrShape), "ptrtgt": int64(s.PtrTarget),
		"callee": int64(s.CalleeShape), "loop": int64(s.LoopShape),
		"loopbound": int64(s.LoopBound), "guards": int64(s.Guards),
		"guardvar": int64(s.GuardVar), "guardsat": 0,
		"errvar": int64(s.ErrVar), "errcmp": s.ErrCmp, "junk": int64(s.Junk),
		"calldepth": int64(s.CallDepth), "callrepeat": int64(s.CallRepeat),
	}
	if s.GuardSat {
		kv["guardsat"] = 1
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, kv[k])
	}
	return strings.Join(parts, " ")
}

// ParseSpec parses the SpecString format. Unknown keys are errors so a
// corrupted corpus line fails loudly; missing keys keep zero values and
// are then normalized.
func ParseSpec(line string) (SeedSpec, error) {
	var s SeedSpec
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("oracle: bad spec field %q", field)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return s, fmt.Errorf("oracle: bad spec value %q: %v", field, err)
		}
		switch k {
		case "seed":
			s.Seed = n
		case "nvars":
			s.NVars = int(n)
		case "nondets":
			s.Nondets = int(n)
		case "ptr":
			s.PtrShape = int(n)
		case "ptrtgt":
			s.PtrTarget = int(n)
		case "callee":
			s.CalleeShape = int(n)
		case "loop":
			s.LoopShape = int(n)
		case "loopbound":
			s.LoopBound = int(n)
		case "guards":
			s.Guards = int(n)
		case "guardvar":
			s.GuardVar = int(n)
		case "guardsat":
			s.GuardSat = n != 0
		case "errvar":
			s.ErrVar = int(n)
		case "errcmp":
			s.ErrCmp = n
		case "junk":
			s.Junk = int(n)
		case "calldepth":
			s.CallDepth = int(n)
		case "callrepeat":
			s.CallRepeat = int(n)
		default:
			return s, fmt.Errorf("oracle: unknown spec key %q", k)
		}
	}
	return s.normalize(), nil
}

// RandomSpec draws a fresh spec from the rng.
func RandomSpec(rng *rand.Rand) SeedSpec {
	return SeedSpec{
		Seed:        rng.Int63n(1 << 30),
		NVars:       2 + rng.Intn(3),
		Nondets:     rng.Intn(3),
		PtrShape:    rng.Intn(3),
		PtrTarget:   rng.Intn(4),
		CalleeShape: rng.Intn(4),
		LoopShape:   rng.Intn(3),
		LoopBound:   1 + rng.Intn(3),
		Guards:      rng.Intn(3),
		GuardVar:    rng.Intn(4),
		GuardSat:    rng.Intn(5) < 3,
		ErrVar:      rng.Intn(4),
		ErrCmp:      int64(rng.Intn(7)),
		Junk:        rng.Intn(3),
		CallDepth:   rng.Intn(3),
		CallRepeat:  rng.Intn(4),
	}.normalize()
}

// CallHeavySpec draws a spec biased toward the gcc-class call regime:
// the chain knobs are always on and deep, so every pair exercises
// repeated frame segments — the inputs the summary memo (and its
// planted stale-reuse bug) live on.
func CallHeavySpec(rng *rand.Rand) SeedSpec {
	s := RandomSpec(rng)
	s.CallDepth = 1 + rng.Intn(3)
	s.CallRepeat = 2 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		s.CalleeShape = 1 + rng.Intn(3)
	}
	if s.Guards == 0 {
		s.Guards = 1 // a guard var distinct from ErrVar splits live contexts
	}
	return s.normalize()
}

// Mutate tweaks 1-2 fields of a spec that hit new coverage, steering
// the corpus toward unexplored slicer behavior.
func Mutate(s SeedSpec, rng *rand.Rand) SeedSpec {
	for n := 1 + rng.Intn(2); n > 0; n-- {
		switch rng.Intn(12) {
		case 0:
			s.Seed = rng.Int63n(1 << 30)
		case 1:
			s.Nondets = rng.Intn(3)
		case 2:
			s.PtrShape = rng.Intn(3)
		case 3:
			s.CalleeShape = rng.Intn(4)
		case 4:
			s.LoopShape = rng.Intn(3)
		case 5:
			s.Guards = rng.Intn(3)
		case 6:
			s.GuardSat = !s.GuardSat
		case 7:
			s.ErrVar = rng.Intn(4)
		case 8:
			s.ErrCmp = int64(rng.Intn(7))
		case 9:
			s.Junk = rng.Intn(3)
		case 10:
			s.CallDepth = rng.Intn(4)
		default:
			s.CallRepeat = rng.Intn(5)
		}
	}
	return s.normalize()
}

// renderOpts selects a metamorphic variant of a spec's program.
type renderOpts struct {
	rename    bool // gN→vN, jN→wN, callees too: a pure alpha-renaming
	junkExtra int  // extra never-read prologue writes
	permute   bool // reverse the independent prologue init block
	unroll    bool // peel the first loop iteration (LoopBound ≥ 1)
}

// Render emits the MiniC source of a spec, optionally transformed.
func Render(s SeedSpec, opts renderOpts) string {
	s = s.normalize()
	rng := rand.New(rand.NewSource(s.Seed))
	v := func(i int) string {
		if opts.rename {
			return fmt.Sprintf("v%d", i)
		}
		return fmt.Sprintf("g%d", i)
	}
	j := func(i int) string {
		if opts.rename {
			return fmt.Sprintf("w%d", i)
		}
		return fmt.Sprintf("j%d", i)
	}
	fn := func(name string) string {
		if opts.rename {
			return "r" + name
		}
		return name
	}
	lit := func() int64 { return int64(rng.Intn(9)) }

	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	p("// oracle seed: %s\n", SpecString(s))
	for i := 0; i < s.NVars; i++ {
		p("int %s;\n", v(i))
	}
	nJunk := s.Junk + opts.junkExtra
	for i := 0; i < nJunk; i++ {
		p("int %s;\n", j(i))
	}
	if s.PtrShape > 0 {
		p("int *%s;\n", fn("p"))
	}
	p("\n")

	// Callees: bump writes the error variable (mod-ref must keep its
	// frame); jnk writes only junk (mod-ref may skip it). bump either
	// sets the error variable to the guard constant (a skipped frame is
	// a soundness bug) or increments it.
	bumpSets := rng.Intn(2) == 0
	bumpDelta := 1 + int64(rng.Intn(3))
	if s.CalleeShape == 1 || s.CalleeShape == 3 {
		if bumpSets {
			p("void %s() {\n  %s = %d;\n}\n\n", fn("bump"), v(s.ErrVar), s.ErrCmp)
		} else {
			p("void %s() {\n  %s = %s + %d;\n}\n\n", fn("bump"), v(s.ErrVar), v(s.ErrVar), bumpDelta)
		}
	}
	if s.CalleeShape == 2 || s.CalleeShape == 3 {
		name := j(0)
		if nJunk == 0 {
			// Callee-written junk still needs a variable.
			name = fn("jg")
			p("int %s;\n", name)
		}
		p("void %s() {\n  %s = %s + 1;\n}\n\n", fn("jnk"), name, name)
	}

	// The call-heavy chain (CallDepth/CallRepeat): deepest member writes
	// the error variable plus one other global, the rest just descend.
	// Defined deepest-first so every call refers to an earlier function.
	// Chain literals come from their own rng stream: the metamorphic
	// transforms (junkExtra in particular) add draws to the main stream,
	// and chain constants are semantic — shifting them would change
	// feasibility under a supposedly meaning-preserving transform.
	chainRng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	chain := func(i int) string { return fn(fmt.Sprintf("chain%d", i)) }
	chainOther := s.GuardVar
	if chainOther == s.ErrVar {
		chainOther = (s.ErrVar + 1) % s.NVars
	}
	if s.CallDepth > 0 && s.CallRepeat > 0 {
		p("void %s() {\n  %s = %s + %d;\n  %s = %s + 1;\n}\n\n",
			chain(s.CallDepth-1), v(s.ErrVar), v(s.ErrVar), 1+chainRng.Intn(2),
			v(chainOther), v(chainOther))
		for i := s.CallDepth - 2; i >= 0; i-- {
			p("void %s() {\n  %s();\n}\n\n", chain(i), chain(i+1))
		}
	}

	p("void main() {\n")
	// Prologue: nondet reads first, then the independent init block
	// (assignments to distinct globals with no cross-reads — the
	// permutable region), then junk writes.
	for i := 0; i < s.Nondets; i++ {
		p("  %s = nondet();\n", v(i))
	}
	guardInit := lit()
	guardCmp := guardInit - 1 - int64(rng.Intn(2)) // init > cmp: guard satisfied
	if !s.GuardSat {
		guardCmp = guardInit + 1 + int64(rng.Intn(2)) // init < cmp: guard refuted
	}
	var inits []string
	for i := s.Nondets; i < s.NVars; i++ {
		val := lit()
		if i == s.GuardVar {
			val = guardInit
		}
		inits = append(inits, fmt.Sprintf("  %s = %d;\n", v(i), val))
	}
	if opts.permute {
		for l, r := 0, len(inits)-1; l < r; l, r = l+1, r-1 {
			inits[l], inits[r] = inits[r], inits[l]
		}
	}
	for _, line := range inits {
		p("%s", line)
	}
	for i := 0; i < nJunk; i++ {
		if i == 0 {
			p("  %s = %d;\n", j(i), lit())
		} else {
			p("  %s = %s + %d;\n", j(i), j(i-1), lit())
		}
	}

	switch s.PtrShape {
	case 1: // overwrite through alias; the error guard watches the pointee
		p("  %s = %d;\n", v(s.PtrTarget), s.ErrCmp+1+int64(rng.Intn(3)))
		p("  %s = &%s;\n", fn("p"), v(s.PtrTarget))
		p("  *%s = %d;\n", fn("p"), s.ErrCmp)
	case 2: // read through the pointer
		p("  %s = &%s;\n", fn("p"), v(s.PtrTarget))
		p("  %s = *%s + 1;\n", v((s.PtrTarget+1)%s.NVars), fn("p"))
	}

	acc, src := v(s.ErrVar), v((s.ErrVar+1)%s.NVars)
	switch s.LoopShape {
	case 1: // loop-carried accumulation into the error variable
		if opts.unroll {
			p("  %s = %s + %s;\n", acc, acc, src)
			p("  for (int i = 1; i < %d; i = i + 1) {\n    %s = %s + %s;\n  }\n",
				s.LoopBound, acc, acc, src)
		} else {
			p("  for (int i = 0; i < %d; i = i + 1) {\n    %s = %s + %s;\n  }\n",
				s.LoopBound, acc, acc, src)
		}
	case 2: // guarded write inside the loop
		if opts.unroll {
			p("  if (%s > 0) {\n    %s = %s + 1;\n  }\n", src, acc, acc)
			p("  for (int i = 1; i < %d; i = i + 1) {\n    if (%s > i) {\n      %s = %s + 1;\n    }\n  }\n",
				s.LoopBound, src, acc, acc)
		} else {
			p("  for (int i = 0; i < %d; i = i + 1) {\n    if (%s > i) {\n      %s = %s + 1;\n    }\n  }\n",
				s.LoopBound, src, acc, acc)
		}
	}

	switch s.CalleeShape {
	case 1:
		p("  %s();\n", fn("bump"))
	case 2:
		p("  %s();\n", fn("jnk"))
	case 3:
		p("  %s();\n  %s();\n", fn("jnk"), fn("bump"))
	}

	// Repeated chain invocations. The write between repeats kills the
	// chain's second output backward, so the same frame segment is met
	// under different projected live sets — earlier repeats must drop
	// the assignment to it, later ones must keep it.
	if s.CallDepth > 0 && s.CallRepeat > 0 {
		for r := 0; r < s.CallRepeat; r++ {
			if r > 0 {
				p("  %s = %d;\n", v(chainOther), chainRng.Intn(9))
			}
			p("  %s();\n", chain(0))
		}
	}

	// Guard nest around the error site. Guards test globals the error
	// comparison does not mention, so their relevance rests entirely on
	// the By test.
	indent := "  "
	var closes []string
	if s.Guards >= 1 {
		p("%sif (%s > %d) {\n", indent, v(s.GuardVar), guardCmp)
		closes = append(closes, indent+"}\n")
		indent += "  "
	}
	if s.Guards >= 2 {
		g2 := v((s.GuardVar + 1) % s.NVars)
		p("%sif (%s != %d) {\n", indent, g2, 100+rng.Intn(20))
		closes = append(closes, indent+"}\n")
		indent += "  "
	}
	p("%sif (%s == %d) {\n%s  error;\n%s}\n", indent, v(s.ErrVar), s.ErrCmp, indent, indent)
	for i := len(closes) - 1; i >= 0; i-- {
		p("%s", closes[i])
	}
	p("}\n")
	return b.String()
}

// StarterSpecs is the hand-seeded corpus: one spec per interesting
// shape family, so the first campaign round already exercises aliasing,
// mod-ref skipping, loop carry, and infeasible guard nests.
func StarterSpecs() []SeedSpec {
	specs := []SeedSpec{
		// Plain straight-line, feasible and infeasible error guards.
		{Seed: 11, NVars: 2, ErrVar: 0, ErrCmp: 0},
		{Seed: 12, NVars: 2, ErrVar: 1, ErrCmp: 5},
		// Nondet-fed error variable: Sat slices with model replay.
		{Seed: 21, NVars: 3, Nondets: 1, ErrVar: 0, ErrCmp: 3},
		{Seed: 22, NVars: 3, Nondets: 2, ErrVar: 1, ErrCmp: 4, Guards: 1, GuardSat: true, GuardVar: 2},
		// Alias overwrite: the UnsoundDropAliasedWrites witness shape.
		{Seed: 31, NVars: 3, PtrShape: 1, PtrTarget: 2, ErrCmp: 5},
		{Seed: 32, NVars: 3, Nondets: 1, PtrShape: 1, PtrTarget: 1, ErrCmp: 2, Guards: 1, GuardSat: true},
		// Pointer read-through.
		{Seed: 33, NVars: 3, PtrShape: 2, PtrTarget: 0, ErrVar: 1, ErrCmp: 1},
		// Callee mod-ref: frame must be kept / may be skipped.
		{Seed: 41, NVars: 3, CalleeShape: 1, ErrVar: 0, ErrCmp: 6},
		{Seed: 42, NVars: 3, CalleeShape: 2, ErrVar: 1, ErrCmp: 0, Junk: 1},
		{Seed: 43, NVars: 3, Nondets: 1, CalleeShape: 3, ErrVar: 2, ErrCmp: 3, Junk: 2},
		// Loop-carried accumulation and guarded loop writes.
		{Seed: 51, NVars: 3, LoopShape: 1, LoopBound: 2, ErrVar: 0, ErrCmp: 4},
		{Seed: 52, NVars: 3, Nondets: 1, LoopShape: 2, LoopBound: 3, ErrVar: 1, ErrCmp: 2},
		// Guard nests: satisfied and refuted outer guards (the refuted
		// ones make infeasible paths whose By relevance a broken slicer
		// drops).
		{Seed: 61, NVars: 3, Guards: 2, GuardSat: true, GuardVar: 1, Nondets: 1, ErrVar: 0, ErrCmp: 1},
		{Seed: 62, NVars: 3, Guards: 1, GuardSat: false, GuardVar: 2, Nondets: 1, ErrVar: 0, ErrCmp: 1},
		{Seed: 63, NVars: 4, Guards: 2, GuardSat: false, GuardVar: 3, ErrVar: 1, ErrCmp: 0, Junk: 1},
		// Everything at once.
		{Seed: 71, NVars: 4, Nondets: 2, PtrShape: 1, PtrTarget: 2, CalleeShape: 3,
			LoopShape: 1, LoopBound: 2, Guards: 2, GuardSat: true, GuardVar: 3, ErrCmp: 3, Junk: 2},
		// Call-heavy chains: repeated frame segments under differing
		// projected live sets — the summary memo's home turf.
		{Seed: 81, NVars: 3, CallDepth: 1, CallRepeat: 3, Guards: 1, GuardSat: true, GuardVar: 1, ErrVar: 0, ErrCmp: 2},
		{Seed: 82, NVars: 3, Nondets: 1, CallDepth: 2, CallRepeat: 2, Guards: 1, GuardSat: false, GuardVar: 2, ErrVar: 0, ErrCmp: 4},
		{Seed: 83, NVars: 4, CallDepth: 3, CallRepeat: 4, CalleeShape: 3, Guards: 2, GuardSat: true, GuardVar: 3, ErrVar: 1, ErrCmp: 1, Junk: 1},
	}
	for i := range specs {
		specs[i] = specs[i].normalize()
	}
	return specs
}
