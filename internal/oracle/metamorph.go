// Metamorphic transformations over generated programs. Each transform
// rewrites a SeedSpec's source in a way with a known effect on the
// slicer's answer, giving oracle invariants that need no reference
// implementation:
//
//   - rename: a pure alpha-renaming keeps the CFA structure identical,
//     so the slice must select exactly the same edge positions;
//   - junk: inserting never-read prologue writes must not change the
//     slice beyond shifting positions — junk edges are never taken and
//     the slice size is unchanged;
//   - permute: reordering the independent prologue initializers must
//     keep the same slice operations (as a multiset) and verdict;
//   - unroll: peeling one loop iteration preserves program semantics,
//     so concrete target reachability from the zero state is unchanged.
//
// When a transform unexpectedly changes the path skeleton (the finder
// picked a structurally different route), position-level invariants are
// skipped and counted as skeleton mismatches rather than failures.
package oracle

import (
	"fmt"
	"strings"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/smt"
)

// MetamorphReport aggregates the variant checks for one spec.
type MetamorphReport struct {
	Pairs              int // program/trace pairs checked (variants incl. base reuse)
	SkeletonMismatches int
	Violations         []Violation
	Inconclusive       []string
}

type checkedPair struct {
	prog *cfa.Program
	path cfa.Path
	rep  *Report
}

// preparePair compiles a rendered source and checks its shortest
// error path with the replay oracle. A nil return means the variant
// could not be prepared (counted by the caller as inconclusive).
func preparePair(src string, uses int, sopts core.Options, copts CheckOptions) *checkedPair {
	prog, err := compile.Source(src)
	if err != nil {
		return nil
	}
	path := cfa.FindPathToError(prog, cfa.FindOptions{MaxEdgeUses: uses})
	if path == nil {
		return nil
	}
	return &checkedPair{prog: prog, path: path, rep: CheckTrace(prog, path, sopts, copts)}
}

// CheckMetamorphic renders a spec and its transforms, runs the replay
// oracle on every variant, and checks the cross-variant invariants.
func CheckMetamorphic(spec SeedSpec, sopts core.Options, copts CheckOptions) *MetamorphReport {
	mr := &MetamorphReport{}
	// Call-heavy specs reuse callee body edges once per chain repeat;
	// the finder's edge-use budget must cover that (see runSpec).
	uses := 0
	if spec.CallRepeat > 0 {
		uses = spec.CallRepeat + 2
	}
	base := preparePair(Render(spec, renderOpts{}), uses, sopts, copts)
	if base == nil {
		mr.Inconclusive = append(mr.Inconclusive, "base variant did not prepare")
		return mr
	}
	mr.absorb(base.rep)

	// Rename: identical structure, identical slice positions.
	if ren := preparePair(Render(spec, renderOpts{rename: true}), uses, sopts, copts); ren == nil {
		mr.Inconclusive = append(mr.Inconclusive, "rename variant did not prepare")
	} else {
		mr.absorb(ren.rep)
		if !sameSkeleton(base.path, ren.path) {
			mr.SkeletonMismatches++
		} else if base.rep.Res != nil && ren.rep.Res != nil {
			if !sameTaken(base.rep.Res.Taken, ren.rep.Res.Taken) {
				mr.violate("renaming locals changed the slice positions (base %d edges, renamed %d)",
					len(base.rep.Res.Slice), len(ren.rep.Res.Slice))
			}
			mr.compareVerdicts("rename", base.rep, ren.rep)
		}
	}

	// Junk: two extra never-read writes; slice size unchanged, junk
	// edges never taken.
	if jnk := preparePair(Render(spec, renderOpts{junkExtra: 2}), uses, sopts, copts); jnk == nil {
		mr.Inconclusive = append(mr.Inconclusive, "junk variant did not prepare")
	} else {
		mr.absorb(jnk.rep)
		if jnk.rep.Res != nil {
			for i, t := range jnk.rep.Res.Taken {
				if t && isJunkEdge(jnk.path[i]) {
					mr.violate("irrelevant junk write %s was taken into the slice", jnk.path[i].Op)
				}
			}
		}
		if len(jnk.path) != len(base.path)+2 {
			mr.SkeletonMismatches++
		} else if base.rep.Res != nil && jnk.rep.Res != nil {
			if len(jnk.rep.Res.Slice) != len(base.rep.Res.Slice) {
				mr.violate("junk insertion changed the slice size (%d → %d)",
					len(base.rep.Res.Slice), len(jnk.rep.Res.Slice))
			}
			mr.compareVerdicts("junk", base.rep, jnk.rep)
		}
	}

	// Permute: only meaningful when the independent init block has at
	// least two assignments.
	if spec.NVars-spec.Nondets >= 2 {
		if prm := preparePair(Render(spec, renderOpts{permute: true}), uses, sopts, copts); prm == nil {
			mr.Inconclusive = append(mr.Inconclusive, "permute variant did not prepare")
		} else {
			mr.absorb(prm.rep)
			if !sameSkeleton(base.path, prm.path) {
				mr.SkeletonMismatches++
			} else if base.rep.Res != nil && prm.rep.Res != nil {
				if a, b := sliceOpSet(base.rep.Res.Slice), sliceOpSet(prm.rep.Res.Slice); a != b {
					mr.violate("permuting independent initializers changed the slice contents:\n  base: %s\n  perm: %s", a, b)
				}
				mr.compareVerdicts("permute", base.rep, prm.rep)
			}
		}
	}

	// Unroll: semantics preserved, so zero-state target reachability
	// must match whenever both searches are exhaustive.
	if spec.LoopShape > 0 {
		if unr := preparePair(Render(spec, renderOpts{unroll: true}), uses, sopts, copts); unr == nil {
			mr.Inconclusive = append(mr.Inconclusive, "unroll variant did not prepare")
		} else {
			mr.absorb(unr.rep)
			br, be := zeroReach(base.prog, copts)
			ur, ue := zeroReach(unr.prog, copts)
			switch {
			case be && ue && br != ur:
				mr.violate("loop peeling changed zero-state reachability (base %v, unrolled %v)", br, ur)
			case !be || !ue:
				mr.Inconclusive = append(mr.Inconclusive, "unroll reach comparison inconclusive")
			}
		}
	}
	return mr
}

func (mr *MetamorphReport) violate(format string, args ...any) {
	mr.Violations = append(mr.Violations, Violation{Kind: "metamorphic", Detail: fmt.Sprintf(format, args...)})
}

// absorb folds one variant's replay-oracle report into the aggregate.
func (mr *MetamorphReport) absorb(rep *Report) {
	mr.Pairs++
	mr.Violations = append(mr.Violations, rep.Violations...)
	mr.Inconclusive = append(mr.Inconclusive, rep.Inconclusive...)
}

// compareVerdicts asserts two structurally equivalent variants got the
// same feasibility verdict; Unknown on either side is inconclusive.
func (mr *MetamorphReport) compareVerdicts(transform string, a, b *Report) {
	if a.SliceStatus == smt.StatusUnknown || b.SliceStatus == smt.StatusUnknown {
		mr.Inconclusive = append(mr.Inconclusive, transform+": verdict comparison inconclusive (Unknown)")
		return
	}
	if a.SliceStatus != b.SliceStatus {
		mr.violate("%s changed the slice feasibility verdict (%v → %v)", transform, a.SliceStatus, b.SliceStatus)
	}
}

// sameSkeleton reports whether two paths have the same length and
// per-edge operation kinds — the structural frame position-level
// invariants rely on.
func sameSkeleton(a, b cfa.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op.Kind != b[i].Op.Kind {
			return false
		}
	}
	return true
}

func sameTaken(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sliceOpSet renders a slice's operations as a sorted multiset key.
func sliceOpSet(p cfa.Path) string {
	ops := make([]string, len(p))
	for i, e := range p {
		ops[i] = e.Op.String()
	}
	// Insertion sort: slices here are tiny.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	return strings.Join(ops, " | ")
}

// isJunkEdge recognizes writes to the generator's junk variables.
func isJunkEdge(e *cfa.Edge) bool {
	if e.Op.Kind != cfa.OpAssign || e.Op.LHS.Deref {
		return false
	}
	name := e.Op.LHS.Var
	return strings.HasPrefix(name, "j") || strings.HasPrefix(name, "w")
}

// zeroReach runs the bounded reach search from the all-zero state.
func zeroReach(prog *cfa.Program, copts CheckOptions) (reached, exhaustive bool) {
	sl := core.New(prog)
	st := interp.NewState(prog, sl.Addrs)
	return searchReach(prog, st, nil, candidateValues(prog), copts.withDefaults())
}
