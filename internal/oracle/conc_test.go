package oracle

import (
	"math/rand"
	"testing"
	"time"

	"pathslice/internal/core"
)

func TestRenderConcCompiles(t *testing.T) {
	specs := StarterConcSpecs()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		specs = append(specs, RandomConcSpec(rng))
	}
	for _, spec := range specs {
		prog, err := CompileConc(spec)
		if err != nil {
			t.Fatalf("%s: %v\nsource:\n%s", ConcSpecString(spec), err, RenderConc(spec))
		}
		if len(prog.ErrorLocs()) == 0 {
			t.Fatalf("%s: no error locations", ConcSpecString(spec))
		}
	}
}

func TestCollectConcTracesFindsErrors(t *testing.T) {
	for _, spec := range StarterConcSpecs() {
		prog, err := CompileConc(spec)
		if err != nil {
			t.Fatalf("%s: %v", ConcSpecString(spec), err)
		}
		ref := core.New(prog)
		traces, seeds := CollectConcTraces(prog, ref, 64, 3)
		if len(traces) == 0 {
			t.Fatalf("%s: no error interleaving in 64 scheduler seeds\nsource:\n%s",
				ConcSpecString(spec), RenderConc(spec))
		}
		for i, tr := range traces {
			if err := tr.Validate(prog); err != nil {
				t.Fatalf("%s seed %d: invalid recorded trace: %v", ConcSpecString(spec), seeds[i], err)
			}
		}
	}
}

func TestCheckConcTraceSoundStarters(t *testing.T) {
	for _, spec := range StarterConcSpecs() {
		prog, err := CompileConc(spec)
		if err != nil {
			t.Fatalf("%s: %v", ConcSpecString(spec), err)
		}
		ref := core.New(prog)
		traces, _ := CollectConcTraces(prog, ref, 64, 3)
		for _, tr := range traces {
			rep := CheckConcTrace(prog, tr, core.Options{}, CheckOptions{})
			for _, v := range rep.Violations {
				t.Errorf("%s: %s: %s", ConcSpecString(spec), v.Kind, v.Detail)
			}
		}
	}
}

// TestCommutablePairsRefusesRacy is the generator self-test promised in
// the package doc: no proposed swap may cross a racy edge, and the
// refusal must be load-bearing — at least one adjacent cross-thread
// pair in the sweep is racy-adjacent and therefore rejected.
func TestCommutablePairsRefusesRacy(t *testing.T) {
	rejected := 0
	for _, spec := range StarterConcSpecs() {
		prog, err := CompileConc(spec)
		if err != nil {
			t.Fatalf("%s: %v", ConcSpecString(spec), err)
		}
		ref := core.New(prog)
		traces, _ := CollectConcTraces(prog, ref, 64, 3)
		for _, tr := range traces {
			racyAdj := map[int]bool{}
			for _, re := range ref.RacyEdges(tr) {
				if re.To == re.From+1 {
					racyAdj[re.From] = true
				}
			}
			proposed := map[int]bool{}
			for _, i := range CommutablePairs(ref, tr) {
				proposed[i] = true
				if racyAdj[i] {
					t.Fatalf("%s: CommutablePairs proposed swap at %d across a racy edge", ConcSpecString(spec), i)
				}
				if tr[i].TID == tr[i+1].TID {
					t.Fatalf("%s: CommutablePairs proposed a same-thread swap at %d", ConcSpecString(spec), i)
				}
			}
			for i := range racyAdj {
				if i > 0 && tr[i].TID != tr[i+1].TID && !proposed[i] {
					rejected++
				}
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no cross-thread racy-adjacent pair was ever rejected; the refusal clause is inert")
	}
}

func TestCheckConcCommuteStarters(t *testing.T) {
	checked := 0
	for _, spec := range StarterConcSpecs() {
		prog, err := CompileConc(spec)
		if err != nil {
			t.Fatalf("%s: %v", ConcSpecString(spec), err)
		}
		ref := core.New(prog)
		traces, _ := CollectConcTraces(prog, ref, 64, 2)
		for _, tr := range traces {
			rep, n := CheckConcCommute(prog, tr, core.Options{})
			checked += n
			for _, v := range rep.Violations {
				t.Errorf("%s: %s: %s", ConcSpecString(spec), v.Kind, v.Detail)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no commutable pair was ever checked; the pillar is inert")
	}
}

func TestRunConcSmall(t *testing.T) {
	stats := RunConc(ConcConfig{Pairs: 30, Budget: 60 * time.Second, Seed: 2})
	t.Log(stats.Summary())
	if stats.Pairs < 30 {
		t.Fatalf("campaign judged only %d pairs", stats.Pairs)
	}
	for _, v := range stats.Violations {
		t.Errorf("%s: %s (%s)", v.Kind, v.Detail, v.Spec)
	}
	if stats.RacyEdges == 0 || stats.Reorderings == 0 {
		t.Fatalf("campaign exercised no racy edges (%d) or reorderings (%d)",
			stats.RacyEdges, stats.Reorderings)
	}
}

func TestRunConcCatchesPlantedBugs(t *testing.T) {
	modes := map[string]core.UnsoundMode{
		"DropRacyEdges":      core.UnsoundDropRacyEdges,
		"StaleThreadLiveSet": core.UnsoundStaleThreadLiveSet,
	}
	for name, mode := range modes {
		mode := mode
		t.Run(name, func(t *testing.T) {
			stats := RunConc(ConcConfig{Pairs: 60, Budget: 90 * time.Second, Seed: 2, Unsound: mode})
			if len(stats.Violations) == 0 {
				t.Fatalf("planted %v survived %d pairs undetected", mode, stats.Pairs)
			}
			t.Logf("%v: %d violations in %d pairs; first: %s: %s",
				mode, len(stats.Violations), stats.Pairs,
				stats.Violations[0].Kind, stats.Violations[0].Detail)
		})
	}
}
