// Package oracle is a differential and metamorphic verification
// subsystem that treats core.Slicer as the system under test. For each
// program/trace pair it machine-checks the Theorem-1 contract:
//
//   - soundness: if the slice's trace is infeasible, the original trace
//     is infeasible too — cross-checked three ways (stateless solver on
//     both traces, the slicer's incremental early-stop verdict, and a
//     concrete interpreter replay of any satisfying model);
//   - completeness: a state satisfying the slice's constraints reaches
//     the target in the full program or diverges — checked by replaying
//     the solver model concretely and exhaustively enumerating nondet
//     inputs where that is affordable.
//
// Every check that cannot be decided within its budget is counted as
// inconclusive, never as a violation: the oracle is allowed to miss
// bugs under resource pressure but must not produce flaky failures in
// `make check`. See docs/TESTING.md for how the pieces fit the test
// pyramid.
package oracle

import (
	"fmt"
	"sort"

	"pathslice/internal/cfa"
	"pathslice/internal/core"
	"pathslice/internal/interp"
	"pathslice/internal/lang/ast"
	"pathslice/internal/obs"
	"pathslice/internal/smt"
	"pathslice/internal/wp"
)

var (
	mPairs        = obs.Default().Counter("oracle_pairs_total")
	mViolations   = obs.Default().Counter("oracle_violations_total")
	mInconclusive = obs.Default().Counter("oracle_inconclusive_total")
)

// Violation is one broken Theorem-1 implication, with enough detail to
// reproduce it. Kind is one of: slicer-error, structural, differential,
// soundness, model-replay, completeness, brute, metamorphic, cegar,
// summ-diff.
type Violation struct {
	Kind   string
	Detail string
	Spec   string // generator spec line, when the campaign produced it
}

func (v Violation) String() string {
	if v.Spec == "" {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("[%s] %s (seed: %s)", v.Kind, v.Detail, v.Spec)
}

// Report is the outcome of checking one program/trace pair.
type Report struct {
	Res          *core.Result
	SliceStatus  smt.Status
	FullStatus   smt.Status
	Violations   []Violation
	Inconclusive []string
}

func (r *Report) violate(kind, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) undecided(format string, args ...any) {
	r.Inconclusive = append(r.Inconclusive, fmt.Sprintf(format, args...))
}

// CheckOptions bounds the concrete side of the oracle.
type CheckOptions struct {
	// ReachCheck enables the completeness reach search (requires the
	// slicer to run without SkipFunctions, which sacrifices
	// completeness by design).
	ReachCheck bool
	// MaxRuns bounds the number of concrete runs one reach search may
	// spend (default 512).
	MaxRuns int
	// MaxSteps bounds each concrete run (default 2000).
	MaxSteps int
	// MaxDepth bounds the enumerated nondet input prefix (default 3).
	MaxDepth int
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxRuns <= 0 {
		o.MaxRuns = 512
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	return o
}

// CheckTrace runs the full replay oracle on one pair: slice the path,
// then verify every Theorem-1 implication the available budgets can
// decide. The slicer is constructed from sopts, so callers can exercise
// early-stop, function-skipping, or the deliberately Unsound modes.
func CheckTrace(prog *cfa.Program, path cfa.Path, sopts core.Options, copts CheckOptions) *Report {
	slicer := core.NewWithOptions(prog, sopts)
	res, err := slicer.Slice(path)
	if err != nil {
		rep := &Report{}
		mPairs.Inc()
		rep.violate("slicer-error", "Slice failed on a valid path: %v", err)
		mViolations.Add(int64(len(rep.Violations)))
		return rep
	}
	return CheckResult(prog, path, res, sopts, copts)
}

// CheckResult verifies an already-computed slice against the same
// contract. Use it directly when the result came from a run CheckTrace
// cannot reproduce itself — a context-deadlined SliceCtx call whose
// Degraded superset must still be sound, say. sopts must be the
// options res was produced under: the differential check interprets
// res.KnownInfeasible, which only an EarlyUnsatStop slicer sets.
func CheckResult(prog *cfa.Program, path cfa.Path, res *core.Result, sopts core.Options, copts CheckOptions) *Report {
	copts = copts.withDefaults()
	rep := &Report{Res: res}
	mPairs.Inc()
	defer func() {
		mViolations.Add(int64(len(rep.Violations)))
		mInconclusive.Add(int64(len(rep.Inconclusive)))
	}()

	slicer := core.NewWithOptions(prog, sopts)

	// Structural: a path slice is by definition a subsequence of its
	// input (§3.2), and Taken must agree with it.
	if !path.Subsequence(res.Slice) {
		rep.violate("structural", "slice is not a subsequence of the input path")
		return rep
	}
	taken := 0
	for _, t := range res.Taken {
		if t {
			taken++
		}
	}
	if taken != len(res.Slice) {
		rep.violate("structural", "Taken marks %d edges but the slice has %d", taken, len(res.Slice))
	}

	// Feasibility of both traces through the stateless solver. These
	// also anchor the differential check against the incremental
	// early-stop verdict.
	rs, encS := slicer.CheckFeasibility(res.Slice)
	rf, encF := slicer.CheckFeasibility(path)
	rep.SliceStatus, rep.FullStatus = rs.Status, rf.Status

	if res.KnownInfeasible {
		// The incremental backward encoding proved Unsat during
		// slicing; the stateless forward encoding must agree.
		switch rs.Status {
		case smt.StatusSat:
			rep.violate("differential", "early-stop proved the slice Unsat but the stateless solver says Sat")
		case smt.StatusUnknown:
			rep.undecided("stateless solver Unknown on an early-stop Unsat slice")
		}
	}

	// Soundness (Theorem 1): slice infeasible ⇒ original infeasible.
	// When the solver claims the original IS feasible, its model is a
	// concrete counterexample we can replay end to end — a confirmed
	// violation needs no trust in either encoder.
	if rs.Status == smt.StatusUnsat && rf.Status == smt.StatusSat {
		ok, rerr := replayModel(prog, slicer, path, rf.Model, encF.NondetInputs())
		switch {
		case ok:
			rep.violate("soundness",
				"slice Unsat but the original trace replays concretely from the solver model")
		case rerr != nil:
			rep.undecided("soundness witness model did not replay (%v)", rerr)
		default:
			// The model fails to replay: the Sat verdict itself is
			// suspect. That is a solver/encoder disagreement, which the
			// model-replay check below also polices for slices.
			rep.violate("model-replay", "full-trace Sat model does not execute the trace")
		}
	}
	if rs.Status == smt.StatusUnknown || rf.Status == smt.StatusUnknown {
		rep.undecided("solver Unknown (slice=%v full=%v)", rs.Status, rf.Status)
	}

	// A Sat slice must be witnessed: the model's initial state executes
	// the slice's trace concretely.
	if rs.Status == smt.StatusSat {
		ok, rerr := replayModel(prog, slicer, res.Slice, rs.Model, encS.NondetInputs())
		if rerr != nil {
			rep.undecided("slice model replay undecided: %v", rerr)
		} else if !ok {
			rep.violate("model-replay", "slice Sat model does not execute the slice trace")
		} else if copts.ReachCheck && !sopts.SkipFunctions {
			// Completeness: from that same initial state the FULL
			// program must reach the target or diverge. Divergence and
			// budget exhaustion are indistinguishable here, so only an
			// exhaustive terminating search may claim a violation.
			checkCompleteness(rep, prog, slicer, path, rs.Model, encS.NondetInputs(), copts)
		}
	}
	return rep
}

// replayModel decodes a solver model into an initial state and input
// sequence and executes the given trace with the concrete interpreter.
// It returns (executed, nil) on a decisive run and a non-nil error when
// the replay itself is not trustworthy (e.g. a stuck execution).
func replayModel(prog *cfa.Program, slicer *core.Slicer, trace cfa.Path, model map[string]int64, nondets []string) (bool, error) {
	init := decodeInit(slicer, prog, model)
	st := interp.NewState(prog, slicer.Addrs)
	for name, v := range init {
		st.Set(name, v)
	}
	vals := make([]int64, len(nondets))
	for i, name := range nondets {
		vals[i] = model[name]
	}
	ok, err := st.ExecTrace(trace.Ops(), &interp.SliceInputs{Vals: vals})
	if err != nil {
		return false, err
	}
	return ok, nil
}

// checkCompleteness runs the bounded reach search from the model state.
func checkCompleteness(rep *Report, prog *cfa.Program, slicer *core.Slicer, path cfa.Path, model map[string]int64, nondets []string, copts CheckOptions) {
	init := decodeInit(slicer, prog, model)
	st := interp.NewState(prog, slicer.Addrs)
	for name, v := range init {
		st.Set(name, v)
	}
	values := candidateValues(prog)
	for _, name := range nondets {
		values = addValue(values, model[name])
	}
	reached, exhaustive := searchReach(prog, st, path.Target(), values, copts)
	switch {
	case reached:
		// Theorem 1 completeness holds concretely.
	case exhaustive:
		rep.violate("completeness",
			"slice Sat model cannot reach the target in the full program (exhaustive %d-deep input search)",
			copts.MaxDepth)
	default:
		rep.undecided("reach search exhausted its budget without a verdict")
	}
}

// decodeInit projects a solver model onto the program's variables at
// SSA version 0 — the initial state the trace was decided under. A
// fresh encoder suffices: initial names do not depend on any encoding
// run.
func decodeInit(slicer *core.Slicer, prog *cfa.Program, model map[string]int64) map[string]int64 {
	return wp.NewTraceEncoder(prog, slicer.Alias, slicer.Addrs).DecodeInitialState(model, prog)
}

// ---------------------------------------------------------------------------
// Concrete reach search

// countInputs feeds a fixed prefix then zeros, recording whether the
// run consumed more inputs than the prefix supplied — the signal that a
// deeper enumeration could steer the run differently.
type countInputs struct {
	vals     []int64
	pos      int
	overflow bool
}

func (c *countInputs) Next() int64 {
	if c.pos < len(c.vals) {
		v := c.vals[c.pos]
		c.pos++
		return v
	}
	c.pos++
	c.overflow = true
	return 0
}

// searchReach reports whether some nondet input sequence drives the
// full program from st to the target. The second result is true only
// when the search provably covered every behavior: every run terminated
// within the step bound, and no run consumed inputs beyond the deepest
// enumerated prefix. Input values are drawn from the candidate set
// (program literals, their successors, and the model's inputs), which
// is exhaustive for programs whose branch predicates only compare
// against those values — the generator guarantees that shape.
func searchReach(prog *cfa.Program, st *interp.State, target *cfa.Loc, values []int64, copts CheckOptions) (reached, exhaustive bool) {
	runs := 0
	exhaustive = true
	var rec func(prefix []int64) bool
	rec = func(prefix []int64) bool {
		if runs >= copts.MaxRuns {
			exhaustive = false
			return false
		}
		runs++
		in := &countInputs{vals: prefix}
		res := interp.Run(prog, st.Clone(), in, interp.RunOptions{MaxSteps: copts.MaxSteps})
		if res.ReachedError && (target == nil || res.ErrorLoc == target) {
			return true
		}
		if res.Steps >= copts.MaxSteps {
			exhaustive = false // possible divergence
			return false
		}
		if !in.overflow {
			return false // the prefix fully determined this run
		}
		if len(prefix) >= copts.MaxDepth {
			exhaustive = false // would need deeper inputs than we enumerate
			return false
		}
		for _, v := range values {
			if rec(append(prefix, v)) {
				return true
			}
		}
		return false
	}
	return rec(nil), exhaustive
}

// candidateValues collects the integer literals appearing anywhere in
// the program, plus each literal's successor (to cross strict
// inequalities) and {0, 1}, capped to keep the branching factor sane.
func candidateValues(prog *cfa.Program) []int64 {
	set := map[int64]bool{0: true, 1: true}
	for _, fn := range prog.Funcs {
		for _, loc := range fn.Locs {
			for _, e := range loc.Out {
				exprLits(e.Op.Pred, set)
				exprLits(e.Op.RHS, set)
			}
		}
	}
	out := make([]int64, 0, 2*len(set))
	for v := range set {
		out = append(out, v, v+1)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	out = dedupSorted(out)
	const maxValues = 10
	if len(out) > maxValues {
		out = out[:maxValues]
	}
	return out
}

func exprLits(e ast.Expr, set map[int64]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.IntLit:
		set[e.Value] = true
	case *ast.Unary:
		exprLits(e.X, set)
	case *ast.Binary:
		exprLits(e.X, set)
		exprLits(e.Y, set)
	}
}

func addValue(vals []int64, v int64) []int64 {
	for _, x := range vals {
		if x == v {
			return vals
		}
	}
	return append(vals, v)
}

func dedupSorted(vals []int64) []int64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}
