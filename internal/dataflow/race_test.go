package dataflow_test

import (
	"sync"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/dataflow"
	"pathslice/internal/modref"
)

// branchy has enough locations to generate distinct WrBt/By/postdom
// queries from many goroutines.
const branchy = `
int a; int b; int c;
void g() { c = c + 1; }
void main() {
  a = 1;
  if (a > 0) {
    b = 2;
  } else {
    g();
  }
  c = 3;
}
`

// TestInfoConcurrentQueries hammers one shared Info with every lazy
// query kind from many goroutines. Under -race this verifies the
// documented guarantee on Analyze: a single Info is safe for concurrent
// use.
func TestInfoConcurrentQueries(t *testing.T) {
	prog, df := analyze(t, branchy)
	main := prog.Funcs["main"]
	liveB := cfa.NewLvalSet(cfa.Lvalue{Var: "b"})
	liveC := cfa.NewLvalSet(cfa.Lvalue{Var: "c"})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				for _, src := range main.Locs {
					for _, dst := range main.Locs {
						df.MustWrBt(src, dst, liveB)
						df.MustWrBt(src, dst, liveC)
						df.MustWrittenBetween(src, dst)
						df.MustBy(src, dst)
						df.MustPostdominates(dst, src)
					}
				}
			}
		}()
	}
	wg.Wait()

	st := df.Snapshot()
	n := len(main.Locs)
	wantQueries := 8 * 20 * n * n
	if st.WrBtQueries != 2*wantQueries {
		t.Errorf("WrBtQueries = %d, want %d", st.WrBtQueries, 2*wantQueries)
	}
	if st.ByQueries != wantQueries {
		t.Errorf("ByQueries = %d, want %d", st.ByQueries, wantQueries)
	}
	// Each distinct (src, dst) pair misses exactly once no matter how
	// many goroutines race to compute it.
	if st.WrBtCacheMiss != n*n {
		t.Errorf("WrBtCacheMiss = %d, want %d (one per pair)", st.WrBtCacheMiss, n*n)
	}
	if st.ByCacheMiss != n {
		t.Errorf("ByCacheMiss = %d, want %d (one per pc')", st.ByCacheMiss, n)
	}
}

// TestConcurrentAnswersMatchSequential checks that answers computed
// under contention equal the ones a fresh sequential Info gives. The
// fresh Info is built over the SAME program (location numbering is not
// guaranteed stable across separate compiles).
func TestConcurrentAnswersMatchSequential(t *testing.T) {
	prog, shared := analyze(t, branchy)
	al := alias.Analyze(prog)
	fresh := dataflow.Analyze(prog, al, modref.Analyze(prog, al))
	main := prog.Funcs["main"]
	live := cfa.NewLvalSet(cfa.Lvalue{Var: "c"})

	type answer struct{ wrbt, by, pd bool }
	got := make([]map[int]answer, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := make(map[int]answer)
			for i, src := range main.Locs {
				for j, dst := range main.Locs {
					m[i*len(main.Locs)+j] = answer{
						wrbt: shared.MustWrBt(src, dst, live),
						by:   shared.MustBy(src, dst),
						pd:   shared.MustPostdominates(dst, src),
					}
				}
			}
			got[g] = m
		}(g)
	}
	wg.Wait()

	for i, src := range main.Locs {
		for j, dst := range main.Locs {
			want := answer{
				wrbt: fresh.MustWrBt(src, dst, live),
				by:   fresh.MustBy(src, dst),
				pd:   fresh.MustPostdominates(dst, src),
			}
			key := i*len(main.Locs) + j
			for g := 0; g < 8; g++ {
				if got[g][key] != want {
					t.Fatalf("goroutine %d pair (%s,%s): got %+v, want %+v", g, src, dst, got[g][key], want)
				}
			}
		}
	}
}
